# Tier-1 gate: everything `make ci` runs must stay green.

GO ?= go

# Pinned external tool versions. Both run through `go run pkg@version`
# so no go.mod dependency is added; when the module proxy is
# unreachable (offline/sandboxed builds) the targets skip with a notice
# instead of failing, keeping `make ci` green without network.
STATICCHECK = honnef.co/go/tools/cmd/staticcheck@2024.1.1
GOVULNCHECK = golang.org/x/vuln/cmd/govulncheck@v1.1.3

.PHONY: ci fmt-check vet vet-invariants lint staticcheck govulncheck \
	build test race bench bench-smoke chaos experiments

ci: fmt-check vet vet-invariants build race chaos lint bench-smoke staticcheck govulncheck

# Custom invariant passes (tools/analyzers): compiled programs are
# immutable after construction, serve/rest never store a
# context.Context in a struct, only internal/dom/index reads the
# per-document index maps / raw cache slots (always behind the version
# stamp), the optimizer/closure-compiler never mutate shared AST
# nodes (rewrites must copy), the store's raw shard state is only
# touched by shard.go's lock-upholding methods, and DOM mutation in the
# query/serving layers only happens through the pending-update list.
# Stdlib-only stand-ins for the `go vet -vettool` analyzers, which
# would need golang.org/x/tools.
vet-invariants:
	$(GO) run ./tools/analyzers -check progmutate internal/xquery internal/xquery/runtime
	$(GO) run ./tools/analyzers -check ctxstruct internal/serve internal/rest internal/fed
	$(GO) run ./tools/analyzers -check idxversion internal/dom/index internal/dom internal/xquery/runtime internal/xquery/funclib internal/serve
	$(GO) run ./tools/analyzers -check ftversion internal/fulltext/index internal/dom internal/xquery/runtime internal/xquery/funclib internal/xmldb internal/serve
	$(GO) run ./tools/analyzers -check planpure internal/xquery/plan internal/xquery/compile
	$(GO) run ./tools/analyzers -check storesync internal/xmldb
	$(GO) run ./tools/analyzers -check pulapply internal/serve internal/rest internal/fed \
		internal/fulltext internal/xmldb internal/dom/index internal/xdm \
		internal/xquery internal/xquery/plan internal/xquery/compile \
		internal/xquery/analysis internal/xquery/funclib internal/xquery/parser \
		internal/xquery/ast internal/xquery/lexer
	$(GO) run ./tools/analyzers -check recovercheck $(shell $(GO) list -f '{{.Dir}}' ./...)

# Static analysis of the shipped example programs: every embedded
# XQuery script block must lint clean, warnings included.
lint:
	$(GO) run ./cmd/xqlint -werror $(wildcard examples/*/*.go)

staticcheck:
	@if $(GO) run $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK) ./...; \
	else echo "staticcheck: $(STATICCHECK) unavailable (offline); skipped"; fi

govulncheck:
	@if $(GO) run $(GOVULNCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(GOVULNCHECK) ./...; \
	else echo "govulncheck: $(GOVULNCHECK) unavailable (offline); skipped"; fi

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection suite: drives the faultpoint matrix (dispatch panics,
# mid-apply update faults, resolver failures, index-build faults, load
# shedding, torn store commits and aborted store recoveries, plus the
# federation matrix: flaky/torn/hung backends, injected fed.call /
# fed.merge faults, suppressed hedges and caller cancellation)
# race-enabled and checks the pool stays serviceable with atomic
# documents, the store recovers byte-identical state, federated queries
# return byte-identical results or typed errors without goroutine
# leaks, and the failure counters advance.
chaos:
	$(GO) test -race -count=1 ./internal/faultpoint
	$(GO) test -race -count=1 -run 'Chaos|Rollback|Fault|Restore' \
		./internal/serve ./internal/xquery/update ./internal/dom/index \
		./internal/xmldb ./internal/fed ./internal/rest

# Full serving-layer benchmark: asserts the program cache wins >=5x over
# compile-per-request and writes the BENCH_serve.json snapshot.
bench:
	$(GO) test -bench . -benchmem -run xxx . ./internal/serve
	$(GO) run ./cmd/benchserve -check -out BENCH_serve.json
	$(GO) run ./cmd/benchpath -check -out BENCH_pathindex.json
	$(GO) run ./cmd/benchcompile -check -out BENCH_compile.json
	$(GO) run ./cmd/benchstore -check -out BENCH_store.json
	$(GO) run ./cmd/benchpul -check -out BENCH_pul.json
	$(GO) run ./cmd/benchft -check -out BENCH_ft.json
	$(GO) run ./cmd/benchfed -check -out BENCH_fed.json

# Cheap CI gates: one iteration per serving scenario (cache/metrics
# accounting stays exact), a short fixed-iteration path-index run
# (indexed //x at least 5x faster than the scan, identical results),
# the compile-backend gate (FLWOR-heavy compiled runs at least 2x
# faster than the walker, identical results from both backends), the
# store gate (4-shard parallel collection scan at least 2x faster than
# 1 shard, identical document sets), the update gate (partitioned
# parallel PUL apply at least 2x faster than serial, identical
# documents), and the full-text gate (indexed ftcontains at least 5x
# faster than the tokenize-and-scan baseline, byte-identical results),
# and the federation gate (hedged p99 at least 2x better than unhedged
# with one stalled backend of four, identical merged results).
bench-smoke:
	$(GO) run ./cmd/benchserve -smoke -out BENCH_serve.json
	$(GO) run ./cmd/benchpath -smoke -out BENCH_pathindex.json
	$(GO) run ./cmd/benchcompile -smoke -out BENCH_compile.json
	$(GO) run ./cmd/benchstore -smoke -out BENCH_store.json
	$(GO) run ./cmd/benchpul -smoke -out BENCH_pul.json
	$(GO) run ./cmd/benchft -smoke -out BENCH_ft.json
	$(GO) run ./cmd/benchfed -smoke -out BENCH_fed.json

experiments:
	$(GO) run ./cmd/experiments
