# Tier-1 gate: everything `make ci` runs must stay green.

GO ?= go

.PHONY: ci fmt-check vet build test race bench experiments

ci: fmt-check vet build race

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run xxx .

experiments:
	$(GO) run ./cmd/experiments
