# Tier-1 gate: everything `make ci` runs must stay green.

GO ?= go

.PHONY: ci fmt-check vet build test race bench bench-smoke experiments

ci: fmt-check vet build race bench-smoke

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full serving-layer benchmark: asserts the program cache wins >=5x over
# compile-per-request and writes the BENCH_serve.json snapshot.
bench:
	$(GO) test -bench . -benchmem -run xxx . ./internal/serve
	$(GO) run ./cmd/benchserve -check -out BENCH_serve.json

# One iteration per scenario: a cheap CI gate that the serving scenarios
# run and the cache/metrics accounting stays exact.
bench-smoke:
	$(GO) run ./cmd/benchserve -smoke -out BENCH_serve.json

experiments:
	$(GO) run ./cmd/experiments
