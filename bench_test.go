package xqib

// One benchmark per experiment of DESIGN.md §4 (E1..E9). The same
// workloads back cmd/experiments, which prints paper-shaped tables;
// these testing.B entry points give statistically solid per-op numbers:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/experiments"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// --- E1: plug-in pipeline (Figure 1) -----------------------------------------

func e1Page(divs int) string {
	var b strings.Builder
	b.WriteString(`<html><head><script type="text/xquery">
declare updating function local:onClick($evt, $obj) {
  replace value of node //span[@id="count"]
  with xs:integer(string(//span[@id="count"])) + 1
};
on event "click" at //input[@id="button"]
attach listener local:onClick
</script></head><body>
<input id="button" type="button"/><span id="count">0</span>`)
	for i := 0; i < divs; i++ {
		fmt.Fprintf(&b, `<div class="filler" id="d%d">content %d</div>`, i, i)
	}
	b.WriteString(`</body></html>`)
	return b.String()
}

// BenchmarkE1_PipelineLoad measures the full load pipeline: parse page,
// init plug-in, compile the script, run main (listener registration).
func BenchmarkE1_PipelineLoad(b *testing.B) {
	for _, divs := range []int{10, 100, 1000} {
		page := e1Page(divs)
		b.Run(fmt.Sprintf("divs=%d", divs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.LoadPage(page, "http://example.com/"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE1_PipelineDispatch measures stage 4: one browser event
// through capture/target/bubble plus the XQuery listener and its
// update application.
func BenchmarkE1_PipelineDispatch(b *testing.B) {
	for _, divs := range []int{10, 100, 1000} {
		h, err := core.LoadPage(e1Page(divs), "http://example.com/")
		if err != nil {
			b.Fatal(err)
		}
		btn := h.Page.ElementByID("button")
		b.Run(fmt.Sprintf("divs=%d", divs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h.Dispatch(&dom.Event{Type: "click", Bubbles: true, Button: 1}, btn)
			}
		})
	}
}

// --- E2: server-to-client migration (Figure 2) ---------------------------------

func benchReference20(b *testing.B, replay func(r *apps.Reference20, session []apps.Interaction) (apps.Metrics, error)) {
	r, err := apps.NewReference20(apps.DefaultCorpus)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	session := r.Session(20, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := replay(r, session); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_ServerSide(b *testing.B) {
	benchReference20(b, func(r *apps.Reference20, session []apps.Interaction) (apps.Metrics, error) {
		app, err := apps.NewServerSideApp(r)
		if err != nil {
			return apps.Metrics{}, err
		}
		return app.Replay(session)
	})
}

func BenchmarkE2_ClientSideCached(b *testing.B) {
	benchReference20(b, func(r *apps.Reference20, session []apps.Interaction) (apps.Metrics, error) {
		app, err := apps.NewClientSideApp(r, true)
		if err != nil {
			return apps.Metrics{}, err
		}
		return app.Replay(session)
	})
}

func BenchmarkE2_ClientSideUncached(b *testing.B) {
	benchReference20(b, func(r *apps.Reference20, session []apps.Interaction) (apps.Metrics, error) {
		app, err := apps.NewClientSideApp(r, false)
		if err != nil {
			return apps.Metrics{}, err
		}
		return app.Replay(session)
	})
}

// --- E3: mash-up co-existence (Figure 3) ----------------------------------------

func BenchmarkE3_MashupEvent(b *testing.B) {
	m, err := apps.NewMashup()
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	cities := []string{"Madrid", "Zurich", "Oslo", "Lisbon"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Search(cities[i%len(cities)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: lines of code / table generation ----------------------------------------

func BenchmarkE4_MultiplicationTableXQuery(b *testing.B) {
	h, err := apps.RunMultiplicationXQuery(10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Click("generate"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4_MultiplicationTableJS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := apps.RunMultiplicationJS(10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: XQuery vs imperative DOM scripting ---------------------------------------

func BenchmarkE5(b *testing.B) {
	cases, err := experiments.E5Cases()
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range cases {
		name := strings.ReplaceAll(c.Name, " ", "_")
		b.Run(name+"/xquery", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := c.XQuery(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/imperative", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := c.Imperative(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5 addendum: streaming early exit ---------------------------------------
//
// The lazy iterator runtime decides (//div)[1], fn:exists(//div) and
// some-satisfies after pulling O(1) items; the eager baseline
// (DisableStreaming) materializes every div first. Run with -benchmem:
// the allocs/op gap is the experiment.

func earlyExitDoc(b *testing.B, n int) *dom.Node {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `<div id="d%d">content %d</div>`, i, i)
	}
	sb.WriteString("</root>")
	d, err := markup.Parse(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func benchEarlyExit(b *testing.B, query string) {
	e := xquery.New()
	p := e.MustCompile(query)
	for _, size := range []int{10_000, 100_000} {
		item := xdm.NewNode(earlyExitDoc(b, size))
		for _, mode := range []struct {
			name     string
			noStream bool
		}{{"stream", false}, {"eager", true}} {
			b.Run(fmt.Sprintf("n=%d/%s", size, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := p.Run(xquery.RunConfig{
						ContextItem:      item,
						DisableStreaming: mode.noStream,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkE5_EarlyExitFirst(b *testing.B) {
	benchEarlyExit(b, `(//div)[1]`)
}

func BenchmarkE5_EarlyExitExists(b *testing.B) {
	benchEarlyExit(b, `fn:exists(//div)`)
}

func BenchmarkE5_EarlyExitSome(b *testing.B) {
	benchEarlyExit(b, `some $d in //div satisfies $d/@id = "d3"`)
}

// --- E5 addendum: path indexes ------------------------------------------------
//
// The version-stamped per-document index (internal/dom/index) answers
// planned //x steps from the element-name index instead of walking the
// whole subtree. Indexed vs scan over the same wide page is the
// speedup the path-planner PR claims; cmd/benchpath asserts the ratio
// in CI.

// pathIndexDoc builds a wide page of n nodes, a fraction of which are
// the <item> elements the queries look for.
func pathIndexDoc(tb testing.TB, n int) *dom.Node {
	tb.Helper()
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < n/2; i++ {
		if i%10 == 0 {
			fmt.Fprintf(&sb, `<item id="i%d">v%d</item>`, i, i)
		} else {
			fmt.Fprintf(&sb, `<div id="d%d">c%d</div>`, i, i)
		}
	}
	sb.WriteString("</root>")
	d, err := markup.Parse(sb.String())
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

func benchDescendant(b *testing.B, disableIndexes bool) {
	e := xquery.New()
	p := e.MustCompile(`count(//item)`)
	item := xdm.NewNode(pathIndexDoc(b, 10_000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(xquery.RunConfig{
			ContextItem:    item,
			DisableIndexes: disableIndexes,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDescendantIndexed(b *testing.B) { benchDescendant(b, false) }

func BenchmarkDescendantScan(b *testing.B) { benchDescendant(b, true) }

// --- E6: asynchronous behind-calls --------------------------------------------------

func BenchmarkE6_AsyncSuggest(b *testing.B) {
	s, err := apps.NewSuggest()
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	inputs := []string{"A", "B", "Li", "Gu"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Type(inputs[i%len(inputs)]); err != nil {
			b.Fatal(err)
		}
		if errs := s.Wait(); len(errs) > 0 {
			b.Fatal(errs[0])
		}
	}
}

// --- E7: same-origin security --------------------------------------------------------

func BenchmarkE7_SecurityCheck(b *testing.B) {
	h, err := core.LoadPage(`<html><head><script type="text/xquery">
declare sequential function local:probe($evt, $obj) {
  browser:alert(string(count(browser:top()//window)));
};
on event "click" at //input[@id="go"] attach listener local:probe
</script></head><body><input id="go"/></body></html>`, "http://a.example.com/")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Click("go"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: event registration routes ----------------------------------------------------

func BenchmarkE8_EventRegistration(b *testing.B) {
	pages := map[string]string{
		"grammar": `<html><head><script type="text/xquery">
declare updating function local:l($evt, $obj) {
  replace value of node //span[@id="c"] with "hit"
};
on event "click" at //input[@id="b"] attach listener local:l
</script></head><body><input id="b"/><span id="c">0</span></body></html>`,
		"hof": `<html><head><script type="text/xquery">
declare updating function local:l($evt, $obj) {
  replace value of node //span[@id="c"] with "hit"
};
browser:addEventListener(//input[@id="b"], "click", "local:l")
</script></head><body><input id="b"/><span id="c">0</span></body></html>`,
	}
	for name, page := range pages {
		h, err := core.LoadPage(page, "http://example.com/")
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := h.Click("b"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E9: endpoint granularity -----------------------------------------------------------

func BenchmarkE9_EndpointGranularity(b *testing.B) {
	r, err := apps.NewReference20(apps.DefaultCorpus)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	session := r.Session(20, 7)
	b.Run("per-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := apps.ReplayPerQueryClient(r, session); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("whole-doc-cached", func(b *testing.B) {
		app, err := apps.NewClientSideApp(r, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := app.Replay(session); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- engine microbenchmarks (supporting E5 and the paper's
// "highly optimisable" claim in §1) ------------------------------------------------------

func BenchmarkEngineCompile(b *testing.B) {
	e := xquery.New()
	src := `declare function local:f($x) { $x * 2 };
	for $i in 1 to 10 where $i mod 2 = 0 order by -$i return local:f($i)`
	for i := 0; i < b.N; i++ {
		if _, err := e.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineFLWOR(b *testing.B) {
	e := xquery.New()
	prog, err := e.Compile(`sum(for $i in 1 to 1000 where $i mod 3 = 0 return $i)`)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := prog.Run(xquery.RunConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnginePathQuery(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<lib>")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&sb, `<book year="%d"><title>T%d</title></book>`, 1990+i%20, i)
	}
	sb.WriteString("</lib>")
	doc, err := markup.Parse(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	e := xquery.New()
	prog, err := e.Compile(`count(//book[@year > 2000]/title)`)
	if err != nil {
		b.Fatal(err)
	}
	cfg := xquery.RunConfig{ContextItem: xdm.NewNode(doc)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineFullText(b *testing.B) {
	e := xquery.New()
	prog, err := e.Compile(`"the quick brown foxes were running" ftcontains ("fox" with stemming) ftand "running"`)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := prog.Run(xquery.RunConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDOMParseHTML(b *testing.B) {
	page := e1Page(200)
	b.SetBytes(int64(len(page)))
	for i := 0; i < b.N; i++ {
		if _, err := markup.ParseHTML(page); err != nil {
			b.Fatal(err)
		}
	}
}
