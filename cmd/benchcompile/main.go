// Command benchcompile measures the compile-to-closures backend (the
// plan → optimize → compile pipeline) against the tree-walker baseline
// and writes a machine-readable snapshot (BENCH_compile.json by
// default):
//
//	benchcompile -out BENCH_compile.json      # full timed run
//	benchcompile -check                       # also assert the FLWOR-heavy win is >=2x
//	benchcompile -smoke                       # short fixed-iteration run (CI gate)
//
// Scenarios (each timed compiled and walked over the same synthetic
// shop document):
//
//	flwor_join       a two-variable FLWOR whose equality predicate the
//	                 optimizer lowers to a hash join — O(n+m) compiled
//	                 versus the walker's O(n*m) nested loop
//	flwor_hoist      a loop-invariant let recomputed per tuple by the
//	                 walker, memoized per FLWOR entry when compiled
//	flwor_pushdown   a where conjunct pushed into the domain path,
//	                 upgrading the step to an id-index probe
//	flwor_core       a plain compute-bound FLWOR: closures versus the
//	                 walker's per-node dispatch, no rewrite wins
//
// -check and -smoke assert the acceptance bar: identical results from
// both backends for every scenario (gated before any timing), and the
// FLWOR-heavy scenarios (join, hoist, pushdown) each at least 2x
// faster compiled than walked.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// smokeIters is the fixed per-scenario iteration count for -smoke:
// enough that the compiled/walked ratio is stable (the walked join is
// the slowest op at a few ms), small enough to keep CI fast.
const smokeIters = 40

// shopDoc builds the synthetic page: entries items with string ids,
// entries orders referencing them (every third order dangling), plus
// div padding so the pushdown scenario has an id index worth probing.
func shopDoc(entries int) (xdm.Item, error) {
	var sb strings.Builder
	sb.WriteString("<shop>")
	for i := 0; i < entries; i++ {
		fmt.Fprintf(&sb, `<item id="sku%d" n="i%d"/>`, i, i)
	}
	for i := 0; i < entries; i++ {
		ref := i
		if i%3 == 0 {
			ref = entries + i // dangling reference: empty probe group
		}
		fmt.Fprintf(&sb, `<order ref="sku%d" n="o%d"/>`, ref, i)
	}
	for i := 0; i < entries*10; i++ {
		fmt.Fprintf(&sb, `<div id="d%d">c%d</div>`, i, i)
	}
	sb.WriteString("</shop>")
	d, err := markup.Parse(sb.String())
	if err != nil {
		return nil, err
	}
	return xdm.NewNode(d), nil
}

type result struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op,omitempty"`
}

type snapshot struct {
	Timestamp string             `json:"timestamp"`
	GoVersion string             `json:"go_version"`
	Smoke     bool               `json:"smoke"`
	Scenarios []result           `json:"scenarios"`
	Speedups  map[string]float64 `json:"speedups"`
	Rewrites  map[string]int     `json:"rewrites"`
}

type scenario struct {
	name  string
	query string
	// heavy marks the FLWOR-heavy scenarios held to the 2x bar.
	heavy bool
}

func main() {
	out := flag.String("out", "BENCH_compile.json", "snapshot output file")
	smoke := flag.Bool("smoke", false, "short fixed-iteration run (CI regression gate)")
	check := flag.Bool("check", false, "assert the FLWOR-heavy compiled runs are >=2x faster")
	flag.Parse()

	item, err := shopDoc(150)
	if err != nil {
		fatal(err)
	}
	e := xquery.New()

	scenarios := []scenario{
		{"flwor_join", `for $o in //order for $i in //item where $o/@ref eq $i/@id
			return concat($o/@n, ":", $i/@n)`, true},
		{"flwor_hoist", `for $i in //item
			let $total := sum(for $o in //order return string-length(string($o/@ref)))
			where $total > 0 return concat($i/@n, "/", $total)`, true},
		{"flwor_pushdown", `for $d in //div where $d/@id = "d71" return string($d)`, true},
		{"flwor_core", `for $i in 1 to 2000 return $i * 3 + 1`, false},
	}

	progs := map[string]*xquery.Program{}
	rewrites := map[string]int{}
	for _, sc := range scenarios {
		p, err := e.Compile(sc.query)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", sc.name, err))
		}
		progs[sc.name] = p
		st := p.RewriteStats()
		rewrites["fold"] += st.Folds
		rewrites["pushdown"] += st.Pushdowns
		rewrites["hoist"] += st.Hoists
		rewrites["join"] += st.Joins
	}
	if rewrites["join"] == 0 || rewrites["hoist"] == 0 || rewrites["pushdown"] == 0 {
		fatal(fmt.Errorf("optimizer rewrites missing: %v", rewrites))
	}

	run := func(name string, walk bool) (*xquery.Result, error) {
		return progs[name].Run(xquery.RunConfig{ContextItem: item, DisableCompile: walk})
	}

	// Correctness gate before any timing: both backends must agree on
	// every scenario.
	for _, sc := range scenarios {
		compiled, err := run(sc.name, false)
		if err != nil {
			fatal(fmt.Errorf("%s compiled: %w", sc.name, err))
		}
		walked, err := run(sc.name, true)
		if err != nil {
			fatal(fmt.Errorf("%s walked: %w", sc.name, err))
		}
		got := xquery.FormatSequence(compiled.Value, markup.Serialize)
		want := xquery.FormatSequence(walked.Value, markup.Serialize)
		if got != want {
			fatal(fmt.Errorf("%s: compiled result %q differs from walker %q", sc.name, clip(got), clip(want)))
		}
		if len(compiled.Value) == 0 {
			fatal(fmt.Errorf("%s: empty result, scenario measures nothing", sc.name))
		}
	}

	snap := snapshot{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Smoke:     *smoke,
		Speedups:  map[string]float64{},
		Rewrites:  rewrites,
	}
	perOp := map[string]int64{}
	for _, sc := range scenarios {
		for _, walk := range []bool{false, true} {
			name := sc.name
			if walk {
				name += "_walk"
			}
			var r result
			if *smoke {
				start := time.Now()
				for i := 0; i < smokeIters; i++ {
					if _, err := run(sc.name, walk); err != nil {
						fatal(fmt.Errorf("%s: %w", name, err))
					}
				}
				r = result{Name: name, Iterations: smokeIters,
					NsPerOp: time.Since(start).Nanoseconds() / smokeIters}
			} else {
				br := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := run(sc.name, walk); err != nil {
							b.Fatal(err)
						}
					}
				})
				r = result{Name: name, Iterations: br.N, NsPerOp: br.NsPerOp(),
					AllocsPerOp: br.AllocsPerOp()}
			}
			perOp[name] = r.NsPerOp
			snap.Scenarios = append(snap.Scenarios, r)
		}
		if perOp[sc.name] > 0 {
			snap.Speedups[sc.name] = float64(perOp[sc.name+"_walk"]) / float64(perOp[sc.name])
		}
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchcompile: wrote %s (join %.1fx, hoist %.1fx, pushdown %.1fx, core %.1fx)\n",
		*out, snap.Speedups["flwor_join"], snap.Speedups["flwor_hoist"],
		snap.Speedups["flwor_pushdown"], snap.Speedups["flwor_core"])

	if *check || *smoke {
		for _, sc := range scenarios {
			if sc.heavy && snap.Speedups[sc.name] < 2 {
				fatal(fmt.Errorf("%s compiled speedup %.2fx, want >= 2x", sc.name, snap.Speedups[sc.name]))
			}
		}
	}
}

func clip(s string) string {
	if len(s) > 120 {
		return s[:120] + "…"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcompile:", err)
	os.Exit(1)
}
