// Command benchfed measures the federated scatter-gather executor
// under a slow backend and writes a machine-readable snapshot
// (BENCH_fed.json by default):
//
//	benchfed -out BENCH_fed.json          # full timed run
//	benchfed -check                       # also assert the hedged p99 wins >=2x
//	benchfed -smoke                       # short fixed-iteration run (CI gate)
//
// Topology: 4 shards, each with a primary and a replica backend. One
// primary is stalled (-stall, default 40ms) — the tail-latency straggler
// hedging exists for. Scenarios:
//
//	unhedged    DisableHedge: every query waits out the stalled
//	            primary — the straggler sets the latency floor
//	hedged      a hedge fires after -hedge-delay and the healthy
//	            replica answers; first success wins, the straggler
//	            is cancelled
//
// Both scenarios must return byte-identical merged results (asserted
// before any timing); -check and -smoke assert the hedged p99 is
// >=2x better than unhedged.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/dom"
	"repro/internal/fed"
	"repro/internal/markup"
	"repro/internal/rest"
	"repro/internal/xdm"
)

// smokeIters is the fixed per-scenario query count for -smoke: the
// unhedged op costs one stall (~40ms), so this keeps the smoke run
// a few seconds while leaving p99 two samples deep.
const smokeIters = 50

// fullIters is the per-scenario query count for the full run.
const fullIters = 200

type scenario struct {
	Name       string    `json:"name"`
	Iterations int       `json:"iterations"`
	P50Ns      int64     `json:"p50_ns"`
	P95Ns      int64     `json:"p95_ns"`
	P99Ns      int64     `json:"p99_ns"`
	MeanNs     int64     `json:"mean_ns"`
	Counters   fed.Stats `json:"counters"`
}

type snapshot struct {
	Timestamp       string     `json:"timestamp"`
	GoVersion       string     `json:"go_version"`
	Smoke           bool       `json:"smoke"`
	Shards          int        `json:"shards"`
	DocsPerShard    int        `json:"docs_per_shard"`
	StallNs         int64      `json:"stall_ns"`
	HedgeDelayNs    int64      `json:"hedge_delay_ns"`
	Scenarios       []scenario `json:"scenarios"`
	HedgedSpeedup99 float64    `json:"hedged_p99_speedup"`
}

// startBackend serves one shard's documents through the stock shard
// module; stall > 0 delays every call (the straggler).
func startBackend(docs []*dom.Node, stall time.Duration) (*httptest.Server, error) {
	srv, err := rest.NewModuleServer(fed.ShardModule, nil)
	if err != nil {
		return nil, err
	}
	srv.Collections = func(uri string) ([]*dom.Node, error) { return docs, nil }
	h := http.Handler(srv.Handler())
	if stall > 0 {
		inner := h
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(stall)
			inner.ServeHTTP(w, r)
		})
	}
	return httptest.NewServer(h), nil
}

// buildTopology starts nShards shard groups of {primary, replica};
// shard 0's primary is stalled. Returns the endpoint groups and a
// close-all func.
func buildTopology(nShards, docsPerShard int, stall time.Duration) ([][]string, func(), error) {
	var servers []*httptest.Server
	closeAll := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	var shards [][]string
	for s := 0; s < nShards; s++ {
		var docs []*dom.Node
		for i := 0; i < docsPerShard; i++ {
			// Interleave URIs across shards so the k-way merge works.
			uri := fmt.Sprintf("doc-%04d", i*nShards+s)
			d, err := markup.Parse(fmt.Sprintf(`<doc uri="%s" shard="%d"/>`, uri, s))
			if err != nil {
				closeAll()
				return nil, nil, err
			}
			d.BaseURI = uri
			docs = append(docs, d)
		}
		var group []string
		for r := 0; r < 2; r++ {
			st := time.Duration(0)
			if s == 0 && r == 0 {
				st = stall
			}
			ts, err := startBackend(docs, st)
			if err != nil {
				closeAll()
				return nil, nil, err
			}
			servers = append(servers, ts)
			group = append(group, ts.URL)
		}
		shards = append(shards, group)
	}
	return shards, closeAll, nil
}

// flatten serializes a merged sequence for the correctness gate.
func flatten(seq xdm.Sequence) string {
	var b strings.Builder
	for _, it := range seq {
		if n, ok := xdm.IsNode(it); ok {
			b.WriteString(markup.Serialize(n))
		} else {
			b.WriteString(it.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// percentile picks the p-th percentile from sorted samples.
func percentile(sorted []time.Duration, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx].Nanoseconds()
}

// run executes iters federated collection queries and returns the
// latency samples plus the flattened first result.
func run(x *fed.Executor, iters int) ([]time.Duration, string, error) {
	ctx := context.Background()
	var first string
	samples := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		start := time.Now()
		seq, err := x.Collection(ctx, "/")
		if err != nil {
			return nil, "", err
		}
		samples = append(samples, time.Since(start))
		if i == 0 {
			first = flatten(seq)
		}
	}
	return samples, first, nil
}

func main() {
	out := flag.String("out", "BENCH_fed.json", "snapshot output file")
	smoke := flag.Bool("smoke", false, "short fixed-iteration run (CI regression gate)")
	check := flag.Bool("check", false, "assert the hedged p99 is >=2x better than unhedged")
	nShards := flag.Int("fed-shards", 4, "shard count (each with a primary and a replica)")
	docs := flag.Int("docs", 8, "documents per shard")
	stall := flag.Duration("stall", 40*time.Millisecond, "stall on the straggler primary")
	hedgeDelay := flag.Duration("hedge-delay", 3*time.Millisecond, "fixed hedge delay")
	flag.Parse()

	shards, closeAll, err := buildTopology(*nShards, *docs, *stall)
	if err != nil {
		fatal(err)
	}
	defer closeAll()

	iters := fullIters
	if *smoke {
		iters = smokeIters
	}

	snap := snapshot{
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		Smoke:        *smoke,
		Shards:       *nShards,
		DocsPerShard: *docs,
		StallNs:      stall.Nanoseconds(),
		HedgeDelayNs: hedgeDelay.Nanoseconds(),
	}
	p99 := map[string]int64{}
	firsts := map[string]string{}

	for _, sc := range []struct {
		name string
		cfg  fed.Config
	}{
		{"unhedged", fed.Config{Shards: shards, DisableHedge: true}},
		{"hedged", fed.Config{Shards: shards, HedgeDelay: *hedgeDelay}},
	} {
		x, err := fed.New(sc.cfg)
		if err != nil {
			fatal(err)
		}
		fed.ResetStats()
		samples, first, err := run(x, iters)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", sc.name, err))
		}
		counters := fed.Snapshot()
		firsts[sc.name] = first

		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		var total time.Duration
		for _, s := range samples {
			total += s
		}
		r := scenario{
			Name:       sc.name,
			Iterations: iters,
			P50Ns:      percentile(samples, 50),
			P95Ns:      percentile(samples, 95),
			P99Ns:      percentile(samples, 99),
			MeanNs:     (total / time.Duration(iters)).Nanoseconds(),
			Counters:   counters,
		}
		p99[sc.name] = r.P99Ns
		snap.Scenarios = append(snap.Scenarios, r)
	}

	// Correctness gate: hedging must not change the merged stream.
	if firsts["hedged"] != firsts["unhedged"] || firsts["hedged"] == "" {
		fatal(fmt.Errorf("hedged and unhedged merged results differ"))
	}
	if p99["hedged"] > 0 {
		snap.HedgedSpeedup99 = float64(p99["unhedged"]) / float64(p99["hedged"])
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchfed: wrote %s (hedged p99 %.1fms vs unhedged %.1fms, speedup %.1fx)\n",
		*out, float64(p99["hedged"])/1e6, float64(p99["unhedged"])/1e6, snap.HedgedSpeedup99)

	if (*check || *smoke) && snap.HedgedSpeedup99 < 2 {
		fatal(fmt.Errorf("hedged p99 speedup %.2fx over unhedged, want >= 2x", snap.HedgedSpeedup99))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfed:", err)
	os.Exit(1)
}
