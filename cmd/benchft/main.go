// Command benchft measures the version-stamped full-text indexes
// against the tokenize-and-scan baseline and writes a machine-readable
// snapshot (BENCH_ft.json by default):
//
//	benchft -out BENCH_ft.json       # full timed run
//	benchft -check                   # also assert indexed ftcontains wins ≥5×
//	benchft -smoke                   # short fixed-iteration run (CI gate)
//
// Scenarios (all over the same article-heavy synthetic page):
//
//	ft_word_indexed     count(//article[. ftcontains "marlin"]) with the
//	                    planner's full-text probes enabled (the default)
//	ft_word_scan        the same query under DisableIndexes — the
//	                    tokenize-every-article baseline
//	ft_phrase_indexed   a two-word phrase selection: candidates come
//	                    from posting-list intersection, the phrase is
//	                    verified against candidate token windows only
//	ft_score_indexed    top-scoring article via ft:score with an
//	                    order-by clause — TF-IDF over index statistics
//
// Both -check and -smoke assert the acceptance bar: the indexed
// ftcontains run at least 5× faster than the scan, byte-identical
// results under both modes, and the process-wide full-text counters
// showing actual index hits. -smoke times a short fixed iteration
// count so the gate runs on every CI pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	ftindex "repro/internal/fulltext/index"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// smokeIters is the fixed per-scenario iteration count for -smoke: big
// enough that the indexed/scan ratio is stable, small enough that the
// scan baseline (which re-tokenizes every article per iteration) keeps
// CI fast.
const smokeIters = 60

// filler is the background vocabulary articles are filled from; none
// of these words appear in the benchmark queries, so the scan baseline
// pays for tokenizing them without ever matching.
var filler = []string{
	"the", "browser", "engine", "evaluates", "queries", "against",
	"documents", "while", "pages", "render", "nodes", "update",
	"scripts", "dispatch", "events", "forms", "submit", "values",
	"windows", "layout", "styles", "cascade", "trees", "traverse",
}

// ftDoc builds the article-heavy page: entries articles of ~32 filler
// words each; every 50th article also contains the rare word "marlin",
// every 40th the phrase "coral reef".
func ftDoc(entries int) (xdm.Item, error) {
	var sb strings.Builder
	sb.WriteString("<root>")
	seed := uint32(1)
	for i := 0; i < entries; i++ {
		fmt.Fprintf(&sb, `<article id="a%d"><h>report %d</h><p>`, i, i)
		for w := 0; w < 32; w++ {
			seed = seed*1664525 + 1013904223 // deterministic filler pick
			sb.WriteString(filler[seed%uint32(len(filler))])
			sb.WriteByte(' ')
		}
		if i%50 == 0 {
			sb.WriteString("marlin ")
		}
		if i%40 == 0 {
			sb.WriteString("coral reef ")
		}
		sb.WriteString("</p></article>")
	}
	sb.WriteString("</root>")
	d, err := markup.Parse(sb.String())
	if err != nil {
		return nil, err
	}
	return xdm.NewNode(d), nil
}

type result struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op,omitempty"`
}

type snapshot struct {
	Timestamp string   `json:"timestamp"`
	GoVersion string   `json:"go_version"`
	Smoke     bool     `json:"smoke"`
	Scenarios []result `json:"scenarios"`
	Speedup   float64  `json:"ftcontains_speedup"`
	FTBuilds  int64    `json:"ft_builds"`
	FTHits    int64    `json:"ft_hits"`
}

func main() {
	out := flag.String("out", "BENCH_ft.json", "snapshot output file")
	smoke := flag.Bool("smoke", false, "short fixed-iteration run (CI regression gate)")
	check := flag.Bool("check", false, "assert indexed ftcontains is >=5x faster than the scan")
	flag.Parse()

	item, err := ftDoc(2500)
	if err != nil {
		fatal(err)
	}
	e := xquery.New()
	word, err := e.Compile(`count(//article[. ftcontains "marlin"])`)
	if err != nil {
		fatal(err)
	}
	phrase, err := e.Compile(`count(//article[. ftcontains "coral reef"])`)
	if err != nil {
		fatal(err)
	}
	score, err := e.Compile(`(for $a in //article[. ftcontains "marlin"]
		order by ft:score($a) descending
		return string($a/@id))[1]`)
	if err != nil {
		fatal(err)
	}

	run := func(p *xquery.Program, disable bool) (*xquery.Result, error) {
		return p.Run(xquery.RunConfig{ContextItem: item, DisableIndexes: disable})
	}
	format := func(r *xquery.Result) string {
		return xquery.FormatSequence(r.Value, markup.Serialize)
	}

	// Correctness gate before any timing: every program must produce
	// byte-identical output with and without indexes — this is the same
	// differential oracle the test suite fuzzes.
	for _, p := range []*xquery.Program{word, phrase, score} {
		indexed, err := run(p, false)
		if err != nil {
			fatal(err)
		}
		scanned, err := run(p, true)
		if err != nil {
			fatal(err)
		}
		if got, want := format(indexed), format(scanned); got != want {
			fatal(fmt.Errorf("indexed result %q differs from scan result %q", got, want))
		}
	}

	scenarios := []struct {
		name    string
		prog    *xquery.Program
		disable bool
	}{
		{"ft_word_indexed", word, false},
		{"ft_word_scan", word, true},
		{"ft_phrase_indexed", phrase, false},
		{"ft_score_indexed", score, false},
	}

	snap := snapshot{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Smoke:     *smoke,
	}
	perOp := map[string]int64{}
	for _, sc := range scenarios {
		var r result
		if *smoke {
			start := time.Now()
			for i := 0; i < smokeIters; i++ {
				if _, err := run(sc.prog, sc.disable); err != nil {
					fatal(fmt.Errorf("%s: %w", sc.name, err))
				}
			}
			r = result{
				Name:       sc.name,
				Iterations: smokeIters,
				NsPerOp:    time.Since(start).Nanoseconds() / smokeIters,
			}
		} else {
			br := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := run(sc.prog, sc.disable); err != nil {
						b.Fatal(err)
					}
				}
			})
			r = result{
				Name:        sc.name,
				Iterations:  br.N,
				NsPerOp:     br.NsPerOp(),
				AllocsPerOp: br.AllocsPerOp(),
			}
		}
		perOp[sc.name] = r.NsPerOp
		snap.Scenarios = append(snap.Scenarios, r)
	}

	if perOp["ft_word_indexed"] > 0 {
		snap.Speedup = float64(perOp["ft_word_scan"]) /
			float64(perOp["ft_word_indexed"])
	}
	st := ftindex.Snapshot()
	snap.FTBuilds = st.Builds
	snap.FTHits = st.Hits

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchft: wrote %s (%d scenarios, ftcontains speedup %.1fx, %d ft builds, %d hits)\n",
		*out, len(snap.Scenarios), snap.Speedup, snap.FTBuilds, snap.FTHits)

	// The counters must show the index actually answered the
	// selections: the tree never mutates here, so one lazy build serves
	// every indexed iteration, and hits grow with them.
	if st.Builds < 1 || st.Builds > 4 {
		fatal(fmt.Errorf("ft index builds = %d over an immutable tree, want 1..4", st.Builds))
	}
	if st.Hits < int64(smokeIters) {
		fatal(fmt.Errorf("ft index hits = %d, want >= %d (one per indexed iteration)", st.Hits, smokeIters))
	}
	if (*check || *smoke) && snap.Speedup < 5 {
		fatal(fmt.Errorf("indexed ftcontains speedup %.2fx, want >= 5x", snap.Speedup))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchft:", err)
	os.Exit(1)
}
