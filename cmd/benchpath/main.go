// Command benchpath measures the version-stamped document indexes
// against the scan baseline and writes a machine-readable snapshot
// (BENCH_pathindex.json by default):
//
//	benchpath -out BENCH_pathindex.json       # full timed run
//	benchpath -check                          # also assert indexed //x wins ≥5×
//	benchpath -smoke                          # short fixed-iteration run (CI gate)
//
// Scenarios (all over the same wide ~10k-node synthetic page):
//
//	descendant_indexed   count(//item) with the path planner's index
//	                     probes enabled (the default)
//	descendant_scan      the same query under DisableIndexes — the
//	                     axis-walk baseline
//	id_probe             //div[@id = "d71"] — the planner's id-index
//	                     access path
//
// Both -check and -smoke assert the acceptance bar: the indexed //x
// run at least 5× faster than the scan, identical results under both
// modes, and the process-wide index counters showing actual probe
// hits. -smoke times a short fixed iteration count so the gate runs on
// every CI pass without benchserve-scale wall time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/dom/index"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// smokeIters is the fixed per-scenario iteration count for -smoke: big
// enough that the indexed/scan ratio is stable (each op is µs-scale),
// small enough to keep CI fast.
const smokeIters = 300

// pathDoc builds the wide synthetic page: entries/1 elements each with
// an id attribute and a text child (~3 nodes per entry), every tenth
// one an <item>.
func pathDoc(entries int) (xdm.Item, error) {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < entries; i++ {
		if i%10 == 0 {
			fmt.Fprintf(&sb, `<item id="i%d">v%d</item>`, i, i)
		} else {
			fmt.Fprintf(&sb, `<div id="d%d">c%d</div>`, i, i)
		}
	}
	sb.WriteString("</root>")
	d, err := markup.Parse(sb.String())
	if err != nil {
		return nil, err
	}
	return xdm.NewNode(d), nil
}

type result struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op,omitempty"`
}

type snapshot struct {
	Timestamp   string   `json:"timestamp"`
	GoVersion   string   `json:"go_version"`
	Smoke       bool     `json:"smoke"`
	Scenarios   []result `json:"scenarios"`
	Speedup     float64  `json:"descendant_speedup"`
	IndexBuilds int64    `json:"index_builds"`
	IndexHits   int64    `json:"index_hits"`
}

func main() {
	out := flag.String("out", "BENCH_pathindex.json", "snapshot output file")
	smoke := flag.Bool("smoke", false, "short fixed-iteration run (CI regression gate)")
	check := flag.Bool("check", false, "assert indexed //x is >=5x faster than the scan")
	flag.Parse()

	item, err := pathDoc(5000)
	if err != nil {
		fatal(err)
	}
	e := xquery.New()
	descendant, err := e.Compile(`count(//item)`)
	if err != nil {
		fatal(err)
	}
	idProbe, err := e.Compile(`//div[@id = "d71"]`)
	if err != nil {
		fatal(err)
	}

	run := func(p *xquery.Program, disable bool) (*xquery.Result, error) {
		return p.Run(xquery.RunConfig{ContextItem: item, DisableIndexes: disable})
	}
	format := func(r *xquery.Result) string {
		return xquery.FormatSequence(r.Value, markup.Serialize)
	}

	// Correctness gate before any timing: indexed and scan runs must
	// agree, and the id probe must find its one element.
	indexed, err := run(descendant, false)
	if err != nil {
		fatal(err)
	}
	scanned, err := run(descendant, true)
	if err != nil {
		fatal(err)
	}
	if got, want := format(indexed), format(scanned); got != want {
		fatal(fmt.Errorf("indexed result %q differs from scan result %q", got, want))
	}
	if hit, err := run(idProbe, false); err != nil {
		fatal(err)
	} else if len(hit.Value) != 1 {
		fatal(fmt.Errorf("id probe returned %d items, want 1", len(hit.Value)))
	}

	scenarios := []struct {
		name    string
		prog    *xquery.Program
		disable bool
	}{
		{"descendant_indexed", descendant, false},
		{"descendant_scan", descendant, true},
		{"id_probe", idProbe, false},
	}

	snap := snapshot{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Smoke:     *smoke,
	}
	perOp := map[string]int64{}
	for _, sc := range scenarios {
		var r result
		if *smoke {
			start := time.Now()
			for i := 0; i < smokeIters; i++ {
				if _, err := run(sc.prog, sc.disable); err != nil {
					fatal(fmt.Errorf("%s: %w", sc.name, err))
				}
			}
			r = result{
				Name:       sc.name,
				Iterations: smokeIters,
				NsPerOp:    time.Since(start).Nanoseconds() / smokeIters,
			}
		} else {
			br := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := run(sc.prog, sc.disable); err != nil {
						b.Fatal(err)
					}
				}
			})
			r = result{
				Name:        sc.name,
				Iterations:  br.N,
				NsPerOp:     br.NsPerOp(),
				AllocsPerOp: br.AllocsPerOp(),
			}
		}
		perOp[sc.name] = r.NsPerOp
		snap.Scenarios = append(snap.Scenarios, r)
	}

	if perOp["descendant_indexed"] > 0 {
		snap.Speedup = float64(perOp["descendant_scan"]) /
			float64(perOp["descendant_indexed"])
	}
	st := index.Snapshot()
	snap.IndexBuilds = st.Builds
	snap.IndexHits = st.Hits

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchpath: wrote %s (%d scenarios, descendant speedup %.1fx, %d index builds, %d hits)\n",
		*out, len(snap.Scenarios), snap.Speedup, snap.IndexBuilds, snap.IndexHits)

	// The counters must show the index actually answered the probes:
	// the tree never mutates here, so one build serves every indexed
	// iteration, and hits grow with them.
	if st.Builds < 1 || st.Builds > 4 {
		fatal(fmt.Errorf("index builds = %d over an immutable tree, want 1..4 (one per probed program at most)", st.Builds))
	}
	if st.Hits < int64(smokeIters) {
		fatal(fmt.Errorf("index hits = %d, want >= %d (one per indexed iteration)", st.Hits, smokeIters))
	}
	if (*check || *smoke) && snap.Speedup < 5 {
		fatal(fmt.Errorf("indexed descendant speedup %.2fx, want >= 5x", snap.Speedup))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchpath:", err)
	os.Exit(1)
}
