// Command benchpul measures the parallel pending-update-list apply and
// writes a machine-readable snapshot (BENCH_pul.json by default):
//
//	benchpul -out BENCH_pul.json          # full timed run
//	benchpul -check                       # also assert parallel wins >=2x
//	benchpul -smoke                       # short fixed-iteration run (CI gate)
//
// Scenarios:
//
//	apply_serial      one event-dispatch mutation batch applied on the
//	                  single-goroutine path (PUL.Apply) — the baseline
//	apply_parallel    the same batch through the FLUX-style partitioner
//	                  (PUL.ApplyParallel): independent widget subtrees
//	                  apply on a bounded worker pool
//
// The batch models a dispatch turn of a widget-heavy page: every
// widget's listener queues an insert (event log entry), a replace-value
// (counter) and a rename (state class) against its own subtree. Each
// primitive charges a fixed stall (-stall, default 200µs) through the
// update.apply faultpoint, modelling the per-primitive work a real
// apply pays — listener bookkeeping, style invalidation, downstream
// notification. The partitioner proves the widget subtrees disjoint and
// overlaps those stalls across workers, so the win holds on any
// machine, single-core CI included; -check and -smoke assert it at
// >=2x along with byte-identical documents from both paths.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/dom"
	"repro/internal/faultpoint"
	"repro/internal/markup"
	"repro/internal/xquery/update"
)

// smokeIters is the fixed per-scenario iteration count for -smoke: one
// op is milliseconds-scale (prims x stall / workers), so a handful of
// iterations gives a stable ratio without long wall time.
const smokeIters = 8

type result struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`
	NsPerOp    int64  `json:"ns_per_op"`
}

type snapshot struct {
	Timestamp  string   `json:"timestamp"`
	GoVersion  string   `json:"go_version"`
	Smoke      bool     `json:"smoke"`
	Widgets    int      `json:"widgets"`
	Primitives int      `json:"primitives"`
	StallNs    int64    `json:"stall_ns"`
	Scenarios  []result `json:"scenarios"`
	Speedup    float64  `json:"speedup"`
}

// buildPage parses a page with n independent widget subtrees.
func buildPage(n int) (*dom.Node, error) {
	src := "<app>"
	for i := 0; i < n; i++ {
		src += fmt.Sprintf(`<widget id="w%d"><count>0</count><label>idle</label></widget>`, i)
	}
	src += "</app>"
	return markup.Parse(src)
}

// buildBatch assembles the dispatch turn's PUL: three primitives per
// widget, each confined to that widget's subtree so the partitioner
// can prove the groups independent.
func buildBatch(doc *dom.Node, widgets int) (*update.PUL, error) {
	app := doc.DocumentElement()
	pul := &update.PUL{}
	for i, w := range app.Children() {
		if i >= widgets {
			break
		}
		var count, label *dom.Node
		for _, c := range w.Children() {
			switch c.Name.Local {
			case "count":
				count = c
			case "label":
				label = c
			}
		}
		for _, pr := range []update.Primitive{
			{Kind: update.InsertIntoLast, Target: w,
				Content: []*dom.Node{dom.NewElement(dom.QName{Local: "evt"})}},
			{Kind: update.ReplaceValue, Target: count, Value: "1"},
			{Kind: update.Rename, Target: label, Name: dom.QName{Local: "status"}},
		} {
			if err := pul.Add(pr); err != nil {
				return nil, err
			}
		}
	}
	return pul, nil
}

// applyOnce builds a fresh page plus batch and applies it on the given
// path, returning the post-apply serialization for the correctness
// gate.
func applyOnce(widgets int, parallel bool) (string, error) {
	doc, err := buildPage(widgets)
	if err != nil {
		return "", err
	}
	pul, err := buildBatch(doc, widgets)
	if err != nil {
		return "", err
	}
	if parallel {
		err = pul.ApplyParallel(nil, update.ParallelConfig{})
	} else {
		err = pul.Apply(nil)
	}
	if err != nil {
		return "", err
	}
	return markup.Serialize(doc), nil
}

func main() {
	out := flag.String("out", "BENCH_pul.json", "snapshot output file")
	smoke := flag.Bool("smoke", false, "short fixed-iteration run (CI regression gate)")
	check := flag.Bool("check", false, "assert the parallel apply is >=2x faster than serial")
	widgets := flag.Int("widgets", 16, "independent widget subtrees in the page")
	stall := flag.Duration("stall", 200*time.Microsecond, "modelled per-primitive apply cost")
	flag.Parse()

	// Correctness gate before any timing: both paths must produce the
	// identical document.
	serialDoc, err := applyOnce(*widgets, false)
	if err != nil {
		fatal(err)
	}
	parallelDoc, err := applyOnce(*widgets, true)
	if err != nil {
		fatal(err)
	}
	if serialDoc != parallelDoc {
		fatal(fmt.Errorf("documents differ between apply paths:\nserial:   %s\nparallel: %s",
			serialDoc, parallelDoc))
	}

	snap := snapshot{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Smoke:      *smoke,
		Widgets:    *widgets,
		Primitives: 3 * *widgets,
		StallNs:    stall.Nanoseconds(),
	}

	// The stall charges every primitive through the same faultpoint the
	// chaos suite injects into, on both paths.
	faultpoint.Enable(faultpoint.PointUpdateApply, faultpoint.Delay(*stall))
	defer faultpoint.Reset()

	perOp := map[string]int64{}
	for _, sc := range []struct {
		name     string
		parallel bool
	}{
		{"apply_serial", false},
		{"apply_parallel", true},
	} {
		var r result
		if *smoke {
			start := time.Now()
			for i := 0; i < smokeIters; i++ {
				if _, err := applyOnce(*widgets, sc.parallel); err != nil {
					fatal(fmt.Errorf("%s: %w", sc.name, err))
				}
			}
			r = result{Name: sc.name, Iterations: smokeIters,
				NsPerOp: time.Since(start).Nanoseconds() / smokeIters}
		} else {
			br := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := applyOnce(*widgets, sc.parallel); err != nil {
						b.Fatal(err)
					}
				}
			})
			r = result{Name: sc.name, Iterations: br.N, NsPerOp: br.NsPerOp()}
		}
		perOp[sc.name] = r.NsPerOp
		snap.Scenarios = append(snap.Scenarios, r)
	}

	if perOp["apply_parallel"] > 0 {
		snap.Speedup = float64(perOp["apply_serial"]) / float64(perOp["apply_parallel"])
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchpul: wrote %s (%d scenarios, parallel apply speedup %.1fx)\n",
		*out, len(snap.Scenarios), snap.Speedup)

	if (*check || *smoke) && snap.Speedup < 2 {
		fatal(fmt.Errorf("parallel apply speedup %.2fx over serial, want >= 2x", snap.Speedup))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchpul:", err)
	os.Exit(1)
}
