// Command benchserve measures the concurrent serving layer and writes
// a machine-readable snapshot (BENCH_serve.json by default):
//
//	benchserve -out BENCH_serve.json          # full timed run
//	benchserve -check                         # also assert the cache wins ≥5×
//	benchserve -smoke                         # 1 iteration per scenario, no timing
//
// Scenarios:
//
//	query_compile_per_request  compile+eval every request (no cache)
//	query_cached               shared engine + program cache (Pool.Eval)
//	page_load_direct           core.LoadPage per session (no cache)
//	page_load_pooled           session pool with shared parse cache
//
// -check verifies the serving-layer acceptance bar: cached repeated
// queries at least 5× faster than compile-per-request, and the metrics
// snapshot's program-hit count exactly matching the cached iterations.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/xquery"
)

// benchQuery has a deliberately heavy prolog (the compile-side work a
// cache amortises) and a cheap body (the per-request work that
// remains).
func benchQuery() string {
	var b strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "declare function local:f%d($x) { $x + %d };\n", i, i)
	}
	b.WriteString("for $i in 1 to 5 return local:f0($i)")
	return b.String()
}

const benchPage = `<html><head><script type="text/xquery">
declare updating function local:hit($evt, $obj) {
  replace value of node //span[@id="n"]
  with xs:integer(string(//span[@id="n"])) + 1
};
on event "click" at //input[@id="b"] attach listener local:hit
</script></head><body><input id="b"/><span id="n">0</span></body></html>`

type result struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

type snapshot struct {
	Timestamp    string            `json:"timestamp"`
	GoVersion    string            `json:"go_version"`
	Smoke        bool              `json:"smoke"`
	Scenarios    []result          `json:"scenarios"`
	QuerySpeedup float64           `json:"query_speedup"`
	QueryMetrics serve.Metrics     `json:"query_metrics"`
	CachedEvals  int64             `json:"cached_evals"`
	CacheStats   xquery.CacheStats `json:"cache_stats"`
	SessionLoads int64             `json:"session_loads"`
}

func main() {
	out := flag.String("out", "BENCH_serve.json", "snapshot output file")
	smoke := flag.Bool("smoke", false, "run each scenario once (CI regression gate)")
	check := flag.Bool("check", false, "assert cached evals are >=5x faster with matching hit counts")
	flag.Parse()

	ctx := context.Background()
	src := benchQuery()

	// Dedicated pools per scenario family so the hit-count check is
	// exact.
	qpool := serve.NewPool(serve.Config{MaxSessions: 16})
	ppool := serve.NewPool(serve.Config{MaxSessions: 16})
	uncachedEngine := xquery.New()

	var cachedEvals int64
	var sessionLoads int64
	scenarios := []struct {
		name string
		op   func() error
	}{
		{"query_compile_per_request", func() error {
			_, err := uncachedEngine.EvalQuery(src, nil)
			return err
		}},
		{"query_cached", func() error {
			cachedEvals++
			_, err := qpool.Eval(ctx, src, nil)
			return err
		}},
		{"page_load_direct", func() error {
			_, err := core.LoadPage(benchPage, "http://bench.example.com/")
			return err
		}},
		{"page_load_pooled", func() error {
			sessionLoads++
			s, err := ppool.Load(ctx, benchPage, "http://bench.example.com/")
			if err != nil {
				return err
			}
			s.Close()
			return nil
		}},
	}

	snap := snapshot{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Smoke:     *smoke,
	}
	perOp := map[string]int64{}
	for _, sc := range scenarios {
		var r result
		if *smoke {
			if err := sc.op(); err != nil {
				fatal(fmt.Errorf("%s: %w", sc.name, err))
			}
			r = result{Name: sc.name, Iterations: 1}
		} else {
			br := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := sc.op(); err != nil {
						b.Fatal(err)
					}
				}
			})
			r = result{
				Name:        sc.name,
				Iterations:  br.N,
				NsPerOp:     br.NsPerOp(),
				AllocsPerOp: br.AllocsPerOp(),
			}
			perOp[sc.name] = br.NsPerOp()
		}
		snap.Scenarios = append(snap.Scenarios, r)
	}

	if !*smoke && perOp["query_cached"] > 0 {
		snap.QuerySpeedup = float64(perOp["query_compile_per_request"]) /
			float64(perOp["query_cached"])
	}
	snap.QueryMetrics = qpool.Metrics()
	snap.CacheStats = qpool.Cache().Stats()
	snap.CachedEvals = cachedEvals
	snap.SessionLoads = sessionLoads

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchserve: wrote %s (%d scenarios", *out, len(snap.Scenarios))
	if !*smoke {
		fmt.Printf(", query speedup %.1fx", snap.QuerySpeedup)
	}
	fmt.Println(")")

	// The cache must account for every cached eval: 1 compile, rest
	// hits. This holds in smoke mode too, so CI catches accounting
	// regressions cheaply.
	st := snap.CacheStats
	if st.Compiles != 1 || st.ProgramHits != cachedEvals-1 {
		fatal(fmt.Errorf("cache accounting mismatch: %d evals but %d compiles + %d hits",
			cachedEvals, st.Compiles, st.ProgramHits))
	}
	if qm := snap.QueryMetrics.Queries.Count; qm != cachedEvals {
		fatal(fmt.Errorf("metrics mismatch: %d evals but latency histogram saw %d", cachedEvals, qm))
	}
	if *check && !*smoke && snap.QuerySpeedup < 5 {
		fatal(fmt.Errorf("cached eval speedup %.2fx, want >= 5x", snap.QuerySpeedup))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchserve:", err)
	os.Exit(1)
}
