// Command benchstore measures the sharded document store and writes a
// machine-readable snapshot (BENCH_store.json by default):
//
//	benchstore -out BENCH_store.json          # full timed run
//	benchstore -check                         # also assert the sharded scan wins >=2x
//	benchstore -smoke                         # short fixed-iteration run (CI gate)
//
// Scenarios:
//
//	scan_1shard     full-collection scan with every document on one
//	                shard — the sequential baseline
//	scan_4shards    the same scan fanned out across 4 shards, one
//	                goroutine per shard
//	put_sync        durable PutDoc with per-commit fsync
//	put_nosync      PutDoc with fsync off (the WithSyncWrites(false)
//	                throughput setting)
//
// Each scanned document charges a fixed stall (-stall, default 300µs)
// modelling the per-document work a real collection scan pays —
// deserialization, page faults, downstream processing. The sharded
// scan overlaps those stalls across shards, so the win holds on any
// machine, single-core CI included; -check and -smoke assert it at
// >=2x on 4 shards along with identical scan results from both
// layouts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dom"
	"repro/internal/xmldb"
)

// smokeIters is the fixed per-scenario iteration count for -smoke: the
// scan op is milliseconds-scale (docs x stall / shards), so a handful
// of iterations gives a stable ratio without benchserve-scale wall
// time.
const smokeIters = 8

// smokePuts is the fixed commit count for the put scenarios under
// -smoke (put_sync pays a real fsync per op).
const smokePuts = 64

type result struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`
	NsPerOp    int64  `json:"ns_per_op"`
}

type snapshot struct {
	Timestamp   string   `json:"timestamp"`
	GoVersion   string   `json:"go_version"`
	Smoke       bool     `json:"smoke"`
	Docs        int      `json:"docs"`
	StallNs     int64    `json:"stall_ns"`
	Scenarios   []result `json:"scenarios"`
	ScanSpeedup float64  `json:"scan_speedup"`
	SyncCostX   float64  `json:"sync_cost_x"`
}

// buildStore opens an ephemeral store with the given shard count and
// fills one collection with docs documents.
func buildStore(shards, docs int) (*xmldb.Store, error) {
	st, err := xmldb.Open("", xmldb.WithShards(shards))
	if err != nil {
		return nil, err
	}
	if err := st.CreateCollection("/db/bench"); err != nil {
		return nil, err
	}
	for i := 0; i < docs; i++ {
		uri := fmt.Sprintf("/db/bench/d%04d.xml", i)
		if err := st.PutXML(uri, fmt.Sprintf(`<doc n="%d"><v>%d</v></doc>`, i, i*i)); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// scanOnce runs one full parallel collection scan, charging stall per
// document, and returns the URIs seen (sorted, for the correctness
// gate).
func scanOnce(st *xmldb.Store, stall time.Duration) ([]string, error) {
	var mu sync.Mutex
	var seen []string
	var work atomic.Int64
	err := st.ScanCollection("/db/bench", func(uri string, doc *dom.Node) error {
		time.Sleep(stall) // the modelled per-document cost
		work.Add(int64(len(uri)))
		mu.Lock()
		seen = append(seen, uri)
		mu.Unlock()
		return nil
	})
	sort.Strings(seen)
	return seen, err
}

func main() {
	out := flag.String("out", "BENCH_store.json", "snapshot output file")
	smoke := flag.Bool("smoke", false, "short fixed-iteration run (CI regression gate)")
	check := flag.Bool("check", false, "assert the 4-shard scan is >=2x faster than 1 shard")
	docs := flag.Int("docs", 64, "documents in the scanned collection")
	stall := flag.Duration("stall", 300*time.Microsecond, "modelled per-document scan cost")
	flag.Parse()

	st1, err := buildStore(1, *docs)
	if err != nil {
		fatal(err)
	}
	defer st1.Close()
	st4, err := buildStore(4, *docs)
	if err != nil {
		fatal(err)
	}
	defer st4.Close()

	// Correctness gate before any timing: both layouts must scan the
	// identical document set.
	seen1, err := scanOnce(st1, 0)
	if err != nil {
		fatal(err)
	}
	seen4, err := scanOnce(st4, 0)
	if err != nil {
		fatal(err)
	}
	if len(seen1) != *docs || fmt.Sprint(seen1) != fmt.Sprint(seen4) {
		fatal(fmt.Errorf("scan results differ between layouts: %d vs %d docs", len(seen1), len(seen4)))
	}

	snap := snapshot{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Smoke:     *smoke,
		Docs:      *docs,
		StallNs:   stall.Nanoseconds(),
	}
	perOp := map[string]int64{}

	scans := []struct {
		name  string
		store *xmldb.Store
	}{
		{"scan_1shard", st1},
		{"scan_4shards", st4},
	}
	for _, sc := range scans {
		var r result
		if *smoke {
			start := time.Now()
			for i := 0; i < smokeIters; i++ {
				if _, err := scanOnce(sc.store, *stall); err != nil {
					fatal(fmt.Errorf("%s: %w", sc.name, err))
				}
			}
			r = result{Name: sc.name, Iterations: smokeIters,
				NsPerOp: time.Since(start).Nanoseconds() / smokeIters}
		} else {
			br := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := scanOnce(sc.store, *stall); err != nil {
						b.Fatal(err)
					}
				}
			})
			r = result{Name: sc.name, Iterations: br.N, NsPerOp: br.NsPerOp()}
		}
		perOp[sc.name] = r.NsPerOp
		snap.Scenarios = append(snap.Scenarios, r)
	}

	// Durable-write cost: per-commit fsync against the no-sync setting,
	// both on a real on-disk store.
	dir, err := os.MkdirTemp("", "benchstore")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	for _, pc := range []struct {
		name string
		sync bool
	}{
		{"put_sync", true},
		{"put_nosync", false},
	} {
		ds, err := xmldb.Open(filepath.Join(dir, pc.name), xmldb.WithSyncWrites(pc.sync))
		if err != nil {
			fatal(err)
		}
		if err := ds.CreateCollection("/db"); err != nil {
			fatal(err)
		}
		n := smokePuts
		start := time.Now()
		for i := 0; i < n; i++ {
			uri := fmt.Sprintf("/db/p%04d.xml", i)
			if err := ds.PutXML(uri, fmt.Sprintf(`<p n="%d"/>`, i)); err != nil {
				fatal(fmt.Errorf("%s: %w", pc.name, err))
			}
		}
		r := result{Name: pc.name, Iterations: n,
			NsPerOp: time.Since(start).Nanoseconds() / int64(n)}
		perOp[pc.name] = r.NsPerOp
		snap.Scenarios = append(snap.Scenarios, r)
		ds.Close()
	}

	if perOp["scan_4shards"] > 0 {
		snap.ScanSpeedup = float64(perOp["scan_1shard"]) / float64(perOp["scan_4shards"])
	}
	if perOp["put_nosync"] > 0 {
		snap.SyncCostX = float64(perOp["put_sync"]) / float64(perOp["put_nosync"])
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchstore: wrote %s (%d scenarios, sharded scan speedup %.1fx, fsync cost %.1fx)\n",
		*out, len(snap.Scenarios), snap.ScanSpeedup, snap.SyncCostX)

	if (*check || *smoke) && snap.ScanSpeedup < 2 {
		fatal(fmt.Errorf("4-shard scan speedup %.2fx over 1 shard, want >= 2x", snap.ScanSpeedup))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchstore:", err)
	os.Exit(1)
}
