// Command experiments regenerates every table and figure of the
// reproduction (DESIGN.md §4, EXPERIMENTS.md):
//
//	experiments            # run all of E1..E9
//	experiments -only E2   # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

import "repro/internal/experiments"

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E9)")
	flag.Parse()

	failed := 0
	for _, run := range experiments.All() {
		table, err := run()
		if *only != "" && !strings.EqualFold(table.ID, *only) {
			continue
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", table.ID, err)
			failed++
			continue
		}
		fmt.Println(table.Format())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
