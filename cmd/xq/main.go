// Command xq runs XQuery programs from the command line (a mini-Zorba):
//
//	xq -q 'for $i in 1 to 3 return $i * $i'
//	xq -f query.xq -ctx data.xml
//	echo '1+1' | xq
//
// Documents referenced with fn:doc(uri) resolve against the filesystem.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery"
	"repro/internal/xquery/runtime"
)

func main() {
	query := flag.String("q", "", "query text")
	file := flag.String("f", "", "read the query from a file")
	ctxFile := flag.String("ctx", "", "XML file bound as the context item")
	indent := flag.Bool("indent", false, "pretty-print node results")
	profile := flag.Bool("profile", false, "print per-expression profiling statistics")
	var vars varFlags
	flag.Var(&vars, "var", "bind an external variable, name=value (repeatable)")
	flag.Parse()

	src, err := querySource(*query, *file)
	if err != nil {
		fatal(err)
	}

	var ctxItem xdm.Item
	if *ctxFile != "" {
		data, err := os.ReadFile(*ctxFile)
		if err != nil {
			fatal(err)
		}
		doc, err := markup.Parse(string(data))
		if err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *ctxFile, err))
		}
		doc.BaseURI = *ctxFile
		ctxItem = xdm.NewNode(doc)
	}

	engine := xquery.New()
	prog, err := engine.Compile(src)
	if err != nil {
		fatal(err)
	}
	cfg := xquery.RunConfig{
		ContextItem: ctxItem,
		Sequential:  true,
		Docs:        fileResolver,
		Variables:   vars.bindings(),
	}
	if *profile {
		cfg.Profiler = runtime.NewProfiler()
	}
	res, err := prog.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if cfg.Profiler != nil {
		fmt.Fprint(os.Stderr, cfg.Profiler.Format())
	}
	serialize := markup.Serialize
	if *indent {
		serialize = markup.SerializeIndent
	}
	out := xquery.FormatSequence(res.Value, serialize)
	if out != "" {
		fmt.Println(out)
	}
	if res.Updates > 0 && ctxItem != nil {
		// An updating query against a context document prints the
		// updated document.
		n, _ := xdm.IsNode(ctxItem)
		fmt.Println(serialize(n))
	}
}

func querySource(q, f string) (string, error) {
	switch {
	case q != "":
		return q, nil
	case f != "":
		data, err := os.ReadFile(f)
		return string(data), err
	default:
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
}

func fileResolver(uri string) (*dom.Node, error) {
	data, err := os.ReadFile(uri)
	if err != nil {
		return nil, err
	}
	doc, err := markup.Parse(string(data))
	if err != nil {
		return nil, err
	}
	doc.BaseURI = uri
	return doc, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xq:", err)
	os.Exit(1)
}

// varFlags collects repeated -var name=value bindings. Values bind as
// xs:string (cast inside the query as needed).
type varFlags []string

func (v *varFlags) String() string { return strings.Join(*v, ",") }

// Set implements flag.Value.
func (v *varFlags) Set(s string) error {
	if !strings.Contains(s, "=") {
		return fmt.Errorf("-var needs name=value, got %q", s)
	}
	*v = append(*v, s)
	return nil
}

func (v *varFlags) bindings() map[dom.QName]xdm.Sequence {
	if len(*v) == 0 {
		return nil
	}
	out := make(map[dom.QName]xdm.Sequence, len(*v))
	for _, b := range *v {
		name, value, _ := strings.Cut(b, "=")
		out[dom.Name(name)] = xdm.Sequence{xdm.String(value)}
	}
	return out
}
