package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestQuerySource(t *testing.T) {
	if src, err := querySource("1+1", ""); err != nil || src != "1+1" {
		t.Errorf("inline source: %q %v", src, err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "q.xq")
	if err := os.WriteFile(path, []byte("2+2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if src, err := querySource("", path); err != nil || src != "2+2" {
		t.Errorf("file source: %q %v", src, err)
	}
	if _, err := querySource("", filepath.Join(dir, "missing.xq")); err == nil {
		t.Error("missing file must fail")
	}
}

func TestFileResolver(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.xml")
	if err := os.WriteFile(path, []byte(`<doc><x>1</x></doc>`), 0o644); err != nil {
		t.Fatal(err)
	}
	doc, err := fileResolver(path)
	if err != nil {
		t.Fatal(err)
	}
	if doc.DocumentElement().Name.Local != "doc" || doc.Base() != path {
		t.Errorf("resolved doc wrong")
	}
	if _, err := fileResolver(filepath.Join(dir, "missing.xml")); err == nil {
		t.Error("missing doc must fail")
	}
	bad := filepath.Join(dir, "bad.xml")
	_ = os.WriteFile(bad, []byte("<unclosed"), 0o644)
	if _, err := fileResolver(bad); err == nil {
		t.Error("malformed doc must fail")
	}
}

func TestVarFlags(t *testing.T) {
	var v varFlags
	if err := v.Set("a=1"); err != nil {
		t.Fatal(err)
	}
	if err := v.Set("b=two=parts"); err != nil {
		t.Fatal(err)
	}
	if err := v.Set("novalue"); err == nil {
		t.Error("missing '=' must fail")
	}
	b := v.bindings()
	if len(b) != 2 {
		t.Fatalf("bindings = %v", b)
	}
	var empty varFlags
	if empty.bindings() != nil {
		t.Error("no flags should bind nothing")
	}
}
