// Command xqib loads an (X)HTML page, executes its XQuery scripts
// through the plug-in pipeline of Figure 1, optionally replays a
// user-interaction script, and dumps the resulting page:
//
//	xqib -page page.html
//	xqib -page page.html -do 'click:generate;key:text1=Br'
//
// The -do script is a ";"-separated list of interactions:
//
//	click:ID         dispatch a click at the element with that id
//	key:ID=TEXT      set @value to TEXT and dispatch keyup
//	set:ID@ATTR=V    set an attribute (no event)
//
// With -sessions N > 1 the page is served through the concurrent
// serving layer instead: N sessions load in parallel through a shared
// program cache, each replays the -do script on its own event loop,
// and -stats dumps the pool's observability snapshot as JSON.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/fed"
	"repro/internal/markup"
	"repro/internal/serve"
	"repro/internal/xmldb"
)

func main() {
	pageFile := flag.String("page", "", "page file to load")
	href := flag.String("href", "http://localhost/page.html", "page URL (origin for the security policy)")
	script := flag.String("do", "", "interaction script (see command doc)")
	quiet := flag.Bool("quiet", false, "suppress the final DOM dump")
	budget := flag.Int64("budget", 0, "max evaluation steps per query, 0 = unlimited")
	timeout := flag.Duration("timeout", 0, "max wall-clock time per query, 0 = unlimited")
	sessions := flag.Int("sessions", 1, "serve the page as this many concurrent sessions")
	maxSessions := flag.Int("max-sessions", 0, "session pool bound (0 = number of sessions)")
	stats := flag.Bool("stats", false, "print the serving metrics snapshot as JSON (pool mode)")
	storeDir := flag.String("store", "", "document store directory: routes fn:doc/fn:collection through the persistent store (empty = no store)")
	shards := flag.Int("shards", 0, "store shard count for parallel collection scans (0 = default)")
	fedSpec := flag.String("fed", "", `federated shard backends: comma-separated shard groups, "|"-separated replicas within a group (e.g. "http://a|http://a2,http://b"); routes fn:collection through the scatter-gather executor (-store wins if both are set)`)
	fedPartial := flag.Bool("fed-partial", false, "degrade federated queries to partial results (with a fed:incomplete diagnostic) instead of failing when a shard is down")
	fedNoHedge := flag.Bool("fed-no-hedge", false, "disable hedged federated requests (one attempt per backend at a time)")
	flag.Parse()

	if *pageFile == "" {
		fatal(fmt.Errorf("-page is required"))
	}
	data, err := os.ReadFile(*pageFile)
	if err != nil {
		fatal(err)
	}
	var st *xmldb.Store
	if *storeDir != "" {
		var sopts []xmldb.Option
		if *shards > 0 {
			sopts = append(sopts, xmldb.WithShards(*shards))
		}
		st, err = xmldb.Open(*storeDir, sopts...)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
	}
	var fx *fed.Executor
	if *fedSpec != "" {
		fx, err = fed.New(fed.Config{
			Shards:         parseFedSpec(*fedSpec),
			PartialResults: *fedPartial,
			DisableHedge:   *fedNoHedge,
		})
		if err != nil {
			fatal(err)
		}
	}
	if *sessions > 1 {
		servePool(string(data), *href, *script, *sessions, *maxSessions,
			*budget, *timeout, *stats, st, fx)
		return
	}
	var opts []core.Option
	if *budget > 0 || *timeout > 0 {
		opts = append(opts, core.WithQueryBudget(*budget, *timeout))
	}
	if st != nil {
		opts = append(opts, core.WithStoreResolvers(st.Resolver(), st.CollectionResolver(), st.CollectionIterResolver()))
	} else if fx != nil {
		ctx := context.Background()
		opts = append(opts, core.WithStoreResolvers(nil, fx.CollectionResolver(ctx), fx.CollectionIterResolver(ctx)))
	}
	h, err := core.LoadPage(string(data), *href, opts...)
	if err != nil {
		fatal(err)
	}

	if *script != "" {
		for _, step := range strings.Split(*script, ";") {
			step = strings.TrimSpace(step)
			if step == "" {
				continue
			}
			if err := apply(h, step); err != nil {
				fatal(err)
			}
		}
	}
	if errs := h.WaitIdle(5 * time.Second); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "xqib: async:", e)
		}
	}

	for _, a := range h.Alerts() {
		fmt.Println("ALERT:", a)
	}
	if h.Window.Status != "" {
		fmt.Println("STATUS:", h.Window.Status)
	}
	if !*quiet {
		fmt.Println(markup.SerializeIndent(h.Page))
	}
}

// servePool runs the pool mode: load the page as n concurrent
// sessions, replay the interaction script on each session's event
// loop, and report aggregate results.
func servePool(page, href, script string, n, maxSessions int, budget int64, timeout time.Duration, stats bool, st *xmldb.Store, fx *fed.Executor) {
	if maxSessions <= 0 {
		maxSessions = n
	}
	pool := serve.NewPool(serve.Config{
		MaxSessions: maxSessions,
		MaxSteps:    budget,
		Timeout:     timeout,
		Store:       st,
		Fed:         fx,
	})
	ctx := context.Background()

	type result struct {
		alerts int
		err    error
	}
	results := make([]result, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { done <- i }()
			// Each session closes before the goroutine exits so its
			// pool slot frees for loads still waiting (n may exceed
			// the pool bound).
			s, err := pool.Load(ctx, page, href)
			if err != nil {
				results[i] = result{err: err}
				return
			}
			defer s.Close()
			run := func(h *core.Host) error {
				for _, step := range strings.Split(script, ";") {
					step = strings.TrimSpace(step)
					if step == "" {
						continue
					}
					if err := apply(h, step); err != nil {
						return err
					}
				}
				if errs := h.WaitIdle(5 * time.Second); len(errs) > 0 {
					return errs[0]
				}
				results[i].alerts = len(h.Alerts())
				return nil
			}
			results[i].err = s.Do(ctx, run)
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}

	failed := 0
	alerts := 0
	for i, r := range results {
		if r.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "xqib: session %d: %v\n", i, r.err)
		}
		alerts += r.alerts
	}
	fmt.Printf("SESSIONS: %d ok, %d failed, %d alerts\n", n-failed, failed, alerts)
	if stats {
		m := pool.Metrics()
		out, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	}
	if err := pool.Shutdown(ctx); err != nil {
		fatal(err)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// parseFedSpec splits a -fed value into shard groups: commas separate
// shards, "|" separates replica endpoints within a shard.
func parseFedSpec(spec string) [][]string {
	var shards [][]string
	for _, group := range strings.Split(spec, ",") {
		group = strings.TrimSpace(group)
		if group == "" {
			continue
		}
		var eps []string
		for _, ep := range strings.Split(group, "|") {
			if ep = strings.TrimSpace(ep); ep != "" {
				eps = append(eps, ep)
			}
		}
		if len(eps) > 0 {
			shards = append(shards, eps)
		}
	}
	return shards
}

func apply(h *core.Host, step string) error {
	kind, rest, ok := strings.Cut(step, ":")
	if !ok {
		return fmt.Errorf("bad interaction %q", step)
	}
	switch kind {
	case "click":
		return h.Click(rest)
	case "key":
		id, text, ok := strings.Cut(rest, "=")
		if !ok {
			return fmt.Errorf("bad key interaction %q", step)
		}
		el := h.Page.ElementByID(id)
		if el == nil {
			return fmt.Errorf("no element with id %q", id)
		}
		el.SetAttr(dom.Name("value"), text)
		key := ""
		if text != "" {
			key = text[len(text)-1:]
		}
		return h.Keyup(id, key)
	case "set":
		target, value, ok := strings.Cut(rest, "=")
		if !ok {
			return fmt.Errorf("bad set interaction %q", step)
		}
		id, attr, ok := strings.Cut(target, "@")
		if !ok {
			return fmt.Errorf("bad set target %q", target)
		}
		el := h.Page.ElementByID(id)
		if el == nil {
			return fmt.Errorf("no element with id %q", id)
		}
		el.SetAttr(dom.Name(attr), value)
		return nil
	default:
		return fmt.Errorf("unknown interaction kind %q", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xqib:", err)
	os.Exit(1)
}
