package main

import (
	"testing"

	"repro/internal/core"
)

const testPage = `<html><head><script type="text/xquery">
declare updating function local:gen($evt, $obj) {
  insert node <p>{string(//input[@id="t"]/@value)}</p> into //body
};
declare sequential function local:key($evt, $obj) {
  browser:alert(concat("typed ", string($evt/key)));
};
{
  on event "click" at //input[@id="b"] attach listener local:gen;
  on event "keyup" at //input[@id="t"] attach listener local:key;
}
</script></head><body><input id="b"/><input id="t" value=""/></body></html>`

func loadTestPage(t *testing.T) *core.Host {
	t.Helper()
	h, err := core.LoadPage(testPage, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestApplyClick(t *testing.T) {
	h := loadTestPage(t)
	if err := apply(h, "set:t@value=hello"); err != nil {
		t.Fatal(err)
	}
	if err := apply(h, "click:b"); err != nil {
		t.Fatal(err)
	}
	body := h.Page.Elements("body")[0]
	if got := body.StringValue(); got != "hello" {
		t.Errorf("body text = %q", got)
	}
}

func TestApplyKey(t *testing.T) {
	h := loadTestPage(t)
	if err := apply(h, "key:t=abc"); err != nil {
		t.Fatal(err)
	}
	a := h.Alerts()
	if len(a) != 1 || a[0] != "typed c" {
		t.Errorf("alerts = %v", a)
	}
	el := h.Page.ElementByID("t")
	if el.AttrValue("value") != "abc" {
		t.Errorf("value = %q", el.AttrValue("value"))
	}
}

func TestApplyErrors(t *testing.T) {
	h := loadTestPage(t)
	for _, step := range []string{
		"nonsense",
		"click:missing",
		"key:missing=x",
		"key:t",   // no '='
		"set:t=v", // no '@'
		"set:missing@a=v",
		"frobnicate:t",
	} {
		if err := apply(h, step); err == nil {
			t.Errorf("step %q should fail", step)
		}
	}
}
