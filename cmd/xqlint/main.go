// Command xqlint statically analyzes XQuery programs without running
// them: the compile-time counterpart of loading a page in XQIB.
//
//	xqlint query.xq                 # lint a standalone module
//	xqlint page.html                # lint <script type="text/xquery"> blocks
//	xqlint -json src/...            # machine-readable diagnostics
//	echo 'fn:put(<a/>, "x")' | xqlint
//
// Files ending in .xq or .xquery are parsed as whole modules; every
// other file is scanned for embedded XQuery script blocks (XHTML pages,
// templates, even Go sources holding pages in string literals), with
// diagnostic positions mapped back to page coordinates. The analyzer
// runs the browser profile by default — fn:doc and fn:put are rejected
// the way XQIB rejects them at runtime — because that is the
// environment shipped pages execute in; -server lifts it for
// server-side modules.
//
// Exit status: 0 clean, 1 if any error diagnostics were reported (or
// any warnings under -werror), 2 on usage or I/O failure.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/browser"
	"repro/internal/xquery/analysis"
	"repro/internal/xquery/funclib"
	"repro/internal/xquery/parser"
	"repro/internal/xquery/runtime"
)

// fileDiag pairs a diagnostic with the file it was found in.
type fileDiag struct {
	File string `json:"file"`
	analysis.Diagnostic
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(argv []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xqlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	werror := fs.Bool("werror", false, "treat warnings as errors for the exit status")
	server := fs.Bool("server", false, "server profile: allow fn:doc/fn:put and skip window-write checks")
	maxSteps := fs.Int64("max-steps", 0, "warn when the estimated step count exceeds this budget (0: no check)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	cfg := analysis.Config{
		Registry:       lintRegistry(),
		BrowserProfile: !*server,
		MaxSteps:       *maxSteps,
	}

	var diags []fileDiag
	ioFailed := false
	if fs.NArg() == 0 {
		src, err := io.ReadAll(stdin)
		if err != nil {
			fmt.Fprintf(stderr, "xqlint: reading stdin: %v\n", err)
			return 2
		}
		diags = append(diags, lintModule("<stdin>", string(src), cfg)...)
	}
	for _, name := range fs.Args() {
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(stderr, "xqlint: %v\n", err)
			ioFailed = true
			continue
		}
		diags = append(diags, lintFile(name, string(data), cfg)...)
	}

	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		return diags[i].Col < diags[j].Col
	})

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []fileDiag{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "xqlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%s\n", d.File, d.Diagnostic)
		}
	}

	switch {
	case ioFailed:
		return 2
	case hasFailure(diags, *werror):
		return 1
	}
	return 0
}

// lintRegistry builds the signature table diagnostics resolve against:
// the full fn:/xs: library plus the browser: extension functions. The
// browser functions are registered against nil host state — xqlint only
// reads signatures, never calls them.
func lintRegistry() *runtime.Registry {
	reg := runtime.NewRegistry()
	// Linting only reads signatures; a stream-attachment failure does
	// not change them, so the error is ignorable here.
	_ = funclib.Register(reg)
	browser.RegisterFunctions(reg, nil, nil)
	return reg
}

// lintFile dispatches on file shape: .xq/.xquery files are whole
// modules, anything else is treated as a page to scan for embedded
// script blocks.
func lintFile(name, src string, cfg analysis.Config) []fileDiag {
	if ext := strings.ToLower(name); strings.HasSuffix(ext, ".xq") || strings.HasSuffix(ext, ".xquery") {
		return lintModule(name, src, cfg)
	}
	return lintPage(name, src, cfg)
}

// lintModule analyzes one standalone module. Syntax errors surface as
// an XQ0000 diagnostic so text and JSON consumers see a single stream.
func lintModule(name, src string, cfg analysis.Config) []fileDiag {
	m, err := parser.ParseModule(src)
	if err != nil {
		return []fileDiag{{File: name, Diagnostic: parseDiag(err)}}
	}
	var out []fileDiag
	for _, d := range analysis.Analyze(m, cfg).Diagnostics {
		out = append(out, fileDiag{File: name, Diagnostic: d})
	}
	return out
}

// lintPage extracts embedded XQuery scripts from page text and lints
// each, translating positions back to page coordinates.
func lintPage(name, src string, cfg analysis.Config) []fileDiag {
	var out []fileDiag
	for _, sc := range analysis.ExtractScripts(src) {
		for _, d := range lintModule(name, sc.Source, cfg) {
			d.Diagnostic = analysis.AdjustPos(d.Diagnostic, sc.Line, sc.Col)
			out = append(out, d)
		}
	}
	return out
}

// parseDiag converts a parser failure into the XQ0000 diagnostic.
func parseDiag(err error) analysis.Diagnostic {
	d := analysis.Diagnostic{Code: analysis.CodeParse, Severity: analysis.SevError, Msg: err.Error()}
	var pe *parser.Error
	if errors.As(err, &pe) {
		d.Line, d.Col, d.Msg = pe.Line, pe.Col, pe.Msg
	}
	return d
}

// hasFailure decides the exit status: errors always fail, warnings fail
// under -werror, and notes (advisory findings like the XQ0404
// independence count) never fail.
func hasFailure(diags []fileDiag, werror bool) bool {
	for _, d := range diags {
		switch d.Severity {
		case analysis.SevError:
			return true
		case analysis.SevWarning:
			if werror {
				return true
			}
		}
	}
	return false
}
