package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runLint executes the CLI against argv with an empty stdin, returning
// exit status and captured stdout.
func runLint(t *testing.T, argv ...string) (int, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(argv, strings.NewReader(""), &out, &errOut)
	return code, out.String()
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAcceptance drives the issue's acceptance triple: fn:put, an
// unbound variable and a misplaced updating expression each fail with
// a distinct code at an accurate position.
func TestAcceptance(t *testing.T) {
	cases := []struct {
		name, src, code, pos string
	}{
		{"put", "fn:put(<a/>, 'f.xml')", "XQ0202", "1:1"},
		{"unbound", "1 +\n$nope", "XQ0001", "2:1"},
		{"misplaced-update", "1 + (delete node /a)", "XQ0101", "1:6"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := writeFile(t, tc.name+".xq", tc.src)
			code, out := runLint(t, f)
			if code != 1 {
				t.Fatalf("exit = %d, want 1 (output: %s)", code, out)
			}
			want := ":" + tc.pos + ": error " + tc.code + ":"
			if !strings.Contains(out, want) {
				t.Errorf("output %q missing %q", out, want)
			}
		})
	}
}

func TestCleanModule(t *testing.T) {
	f := writeFile(t, "ok.xq", "let $x := 1 return $x + 1")
	if code, out := runLint(t, f); code != 0 || out != "" {
		t.Errorf("exit = %d, output = %q; want clean", code, out)
	}
}

func TestWarningExitAndWerror(t *testing.T) {
	f := writeFile(t, "warn.xq", "let $unused := 1 return 2")
	if code, out := runLint(t, f); code != 0 || !strings.Contains(out, "XQ0005") {
		t.Errorf("warnings alone: exit = %d, output = %q", code, out)
	}
	if code, _ := runLint(t, "-werror", f); code != 1 {
		t.Errorf("-werror: exit = %d, want 1", code)
	}
}

func TestServerProfileAllowsDoc(t *testing.T) {
	f := writeFile(t, "doc.xq", "fn:doc('data.xml')")
	if code, out := runLint(t, f); code != 1 || !strings.Contains(out, "XQ0201") {
		t.Errorf("browser profile: exit = %d, output = %q", code, out)
	}
	if code, out := runLint(t, "-server", f); code != 0 {
		t.Errorf("-server: exit = %d, output = %q; want 0", code, out)
	}
}

func TestEmbeddedPagePositions(t *testing.T) {
	page := "<html><head>\n" +
		"<script type=\"text/javascript\">var x = $skip;</script>\n" +
		"<script type=\"text/xquery\">\n" +
		"let $x := 1\n" +
		"return $y\n" +
		"</script>\n" +
		"</head><body/></html>\n"
	f := writeFile(t, "page.html", page)
	code, out := runLint(t, f)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (output: %s)", code, out)
	}
	// $y sits on page line 5 column 8; $x is unused on line 4.
	if !strings.Contains(out, ":5:8: error XQ0001") {
		t.Errorf("output %q missing page-adjusted unbound-variable position", out)
	}
	if !strings.Contains(out, ":4:5: warning XQ0005") {
		t.Errorf("output %q missing page-adjusted unused-variable position", out)
	}
}

func TestSyntaxErrorIsXQ0000(t *testing.T) {
	f := writeFile(t, "bad.xq", "let $x := return")
	code, out := runLint(t, f)
	if code != 1 || !strings.Contains(out, "XQ0000") {
		t.Errorf("exit = %d, output = %q; want XQ0000 error", code, out)
	}
}

func TestJSONOutput(t *testing.T) {
	f := writeFile(t, "put.xq", "fn:put(<a/>, 'f.xml')")
	code, out := runLint(t, "-json", f)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []struct {
		File     string `json:"file"`
		Code     string `json:"code"`
		Severity string `json:"severity"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("invalid JSON %q: %v", out, err)
	}
	if len(diags) != 1 || diags[0].Code != "XQ0202" || diags[0].Severity != "error" ||
		diags[0].Line != 1 || diags[0].Col != 1 || diags[0].File != f {
		t.Errorf("diags = %+v", diags)
	}
}

func TestJSONEmptyArray(t *testing.T) {
	f := writeFile(t, "ok.xq", "1 + 1")
	code, out := runLint(t, "-json", f)
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Errorf("exit = %d, output = %q; want empty JSON array", code, out)
	}
}

func TestMissingFileExit2(t *testing.T) {
	if code, _ := runLint(t, filepath.Join(t.TempDir(), "absent.xq")); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

// TestExamplesStayClean mirrors the make lint gate: the shipped example
// programs must lint without any diagnostics at all.
func TestExamplesStayClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example files: %v", err)
	}
	code, out := runLint(t, append([]string{"-werror"}, files...)...)
	if code != 0 {
		t.Errorf("examples lint dirty (exit %d):\n%s", code, out)
	}
}

// TestUpdateIndependenceCodes drives the XQ04xx pass through the CLI:
// dead updates and no-op deletes warn, guaranteed conflicts error, and
// the independence note reports the group count without ever failing
// the run — not even under -werror.
func TestUpdateIndependenceCodes(t *testing.T) {
	dead := writeFile(t, "dead.xq",
		"insert node <x/> into /app/cart,\nreplace node /app/cart with <cart/>")
	if code, out := runLint(t, dead); code != 0 || !strings.Contains(out, "XQ0401") {
		t.Errorf("dead update: exit = %d, output = %q", code, out)
	}
	if code, _ := runLint(t, "-werror", dead); code != 1 {
		t.Errorf("dead update -werror: exit != 1")
	}

	deadDel := writeFile(t, "deaddel.xq",
		"replace node /app/cart with <cart/>,\ndelete node /app/cart")
	if code, out := runLint(t, deadDel); code != 0 || !strings.Contains(out, "XQ0402") {
		t.Errorf("dead delete: exit = %d, output = %q", code, out)
	}

	conflict := writeFile(t, "conflict.xq",
		"replace value of node /app/title with 'a',\nreplace value of node /app/title with 'b'")
	if code, out := runLint(t, conflict); code != 1 || !strings.Contains(out, "error XQ0403") {
		t.Errorf("conflict: exit = %d, output = %q; want exit 1", code, out)
	}

	groups := writeFile(t, "groups.xq",
		"replace value of node /app/title with 'x',\nrename node /app/menu as 'nav',\ninsert node <i/> into /app/cart")
	code, out := runLint(t, groups)
	if code != 0 || !strings.Contains(out, "note XQ0404: update independence: 3 independent update groups") {
		t.Errorf("groups: exit = %d, output = %q", code, out)
	}
	// Advisory notes must not flip the exit status under -werror.
	if code, _ := runLint(t, "-werror", groups); code != 0 {
		t.Errorf("note under -werror: exit = %d, want 0", code)
	}
}
