package xqib_test

import (
	"fmt"

	xqib "repro"
)

// The paper's §4.1 Hello World page, executed through the plug-in
// pipeline of Figure 1.
func Example_helloWorld() {
	h, err := xqib.LoadPage(`<html><head>
		<title>Hello World Page</title>
		<script type="text/xquery">
			browser:alert("Hello, World!")
		</script>
	</head><body/></html>`, "http://www.example.com/hello.html")
	if err != nil {
		panic(err)
	}
	fmt.Println(h.Alerts()[0])
	// Output: Hello, World!
}

// Direct engine evaluation: FLWOR with full-text search (§3.1).
func ExampleEngine_EvalQuery() {
	doc, err := xqib.ParseXML(`<books>
		<book><title>dogs and a cat</title><author>A</author></book>
		<book><title>a cat tale</title><author>B</author></book>
	</books>`)
	if err != nil {
		panic(err)
	}
	e := xqib.NewEngine()
	seq, err := e.EvalQuery(`
		for $b in /books/book
		where $b/title ftcontains ("dog" with stemming) ftand "cat"
		return string($b/author)`, doc)
	if err != nil {
		panic(err)
	}
	fmt.Println(xqib.FormatSequence(seq))
	// Output: A
}

// The §4.3 event grammar: a listener registered by the page script
// fires when the host dispatches a click.
func ExampleHost_Click() {
	h, err := xqib.LoadPage(`<html><head><script type="text/xquery">
		declare updating function local:buy($evt, $obj) {
			insert node <p>{string($obj/@id)}</p> into //div[@id="cart"]
		};
		on event "click" at //input[@type="button"]
		attach listener local:buy
	</script></head><body>
		<input type="button" id="Mouse"/>
		<div id="cart"/>
	</body></html>`, "http://shop.example.com/")
	if err != nil {
		panic(err)
	}
	if err := h.Click("Mouse"); err != nil {
		panic(err)
	}
	fmt.Println(h.Page.ElementByID("cart").StringValue())
	// Output: Mouse
}

// Updating a document with the XQuery Update Facility: no side effects
// until the end of the query (§3.2).
func ExampleProgram_Run() {
	doc, err := xqib.ParseXML(`<library><book title="Starwars"/></library>`)
	if err != nil {
		panic(err)
	}
	e := xqib.NewEngine()
	prog, err := e.Compile(`
		insert node <comment>6 movies</comment>
		into /library/book[@title="Starwars"]`)
	if err != nil {
		panic(err)
	}
	if _, err := prog.Run(xqib.RunConfig{ContextItem: xqib.NewNode(doc), Sequential: true}); err != nil {
		panic(err)
	}
	fmt.Println(xqib.Serialize(doc))
	// Output: <library><book title="Starwars"><comment>6 movies</comment></book></library>
}

// Local library modules: factoring shared XQuery (§6.1's application
// modules) without a network hop.
func ExampleNewLocalResolver() {
	resolver := xqib.NewLocalResolver(map[string]string{
		"urn:math": `module namespace m = "urn:math";
			declare function m:square($x) { $x * $x };`,
	})
	e := xqib.NewEngine(xqib.WithModuleResolver(resolver))
	seq, err := e.EvalQuery(`import module namespace m = "urn:math"; m:square(7)`, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(xqib.FormatSequence(seq))
	// Output: 49
}
