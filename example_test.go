package xqib_test

import (
	"context"
	"fmt"

	xqib "repro"
)

// The paper's §4.1 Hello World page, executed through the plug-in
// pipeline of Figure 1.
func Example_helloWorld() {
	h, err := xqib.LoadPage(`<html><head>
		<title>Hello World Page</title>
		<script type="text/xquery">
			browser:alert("Hello, World!")
		</script>
	</head><body/></html>`, "http://www.example.com/hello.html")
	if err != nil {
		panic(err)
	}
	fmt.Println(h.Alerts()[0])
	// Output: Hello, World!
}

// Direct engine evaluation: FLWOR with full-text search (§3.1).
func ExampleEngine_EvalQuery() {
	doc, err := xqib.ParseXML(`<books>
		<book><title>dogs and a cat</title><author>A</author></book>
		<book><title>a cat tale</title><author>B</author></book>
	</books>`)
	if err != nil {
		panic(err)
	}
	e := xqib.NewEngine()
	seq, err := e.EvalQuery(`
		for $b in /books/book
		where $b/title ftcontains ("dog" with stemming) ftand "cat"
		return string($b/author)`, doc)
	if err != nil {
		panic(err)
	}
	fmt.Println(xqib.FormatSequence(seq))
	// Output: A
}

// The §4.3 event grammar: a listener registered by the page script
// fires when the host dispatches a click.
func ExampleHost_Click() {
	h, err := xqib.LoadPage(`<html><head><script type="text/xquery">
		declare updating function local:buy($evt, $obj) {
			insert node <p>{string($obj/@id)}</p> into //div[@id="cart"]
		};
		on event "click" at //input[@type="button"]
		attach listener local:buy
	</script></head><body>
		<input type="button" id="Mouse"/>
		<div id="cart"/>
	</body></html>`, "http://shop.example.com/")
	if err != nil {
		panic(err)
	}
	if err := h.Click("Mouse"); err != nil {
		panic(err)
	}
	fmt.Println(h.Page.ElementByID("cart").StringValue())
	// Output: Mouse
}

// Updating a document with the XQuery Update Facility: no side effects
// until the end of the query (§3.2).
func ExampleProgram_Run() {
	doc, err := xqib.ParseXML(`<library><book title="Starwars"/></library>`)
	if err != nil {
		panic(err)
	}
	e := xqib.NewEngine()
	prog, err := e.Compile(`
		insert node <comment>6 movies</comment>
		into /library/book[@title="Starwars"]`)
	if err != nil {
		panic(err)
	}
	if _, err := prog.Run(xqib.RunConfig{ContextItem: xqib.NewNode(doc), Sequential: true}); err != nil {
		panic(err)
	}
	fmt.Println(xqib.Serialize(doc))
	// Output: <library><book title="Starwars"><comment>6 movies</comment></book></library>
}

// The concurrent serving layer: a bounded session pool sharing one
// engine and one compiled-program cache. Loading the same page twice
// parses its script once, and repeated queries skip compilation.
func ExamplePool() {
	pool := xqib.NewPool(xqib.PoolConfig{MaxSessions: 8})
	ctx := context.Background()

	page := `<html><head><script type="text/xquery">
		declare updating function local:hit($evt, $obj) {
			replace value of node //span[@id="n"]
			with xs:integer(string(//span[@id="n"])) + 1
		};
		on event "click" at //input[@id="b"] attach listener local:hit
	</script></head><body><input id="b"/><span id="n">0</span></body></html>`

	for i := 0; i < 2; i++ {
		s, err := pool.Load(ctx, page, "http://shop.example.com/")
		if err != nil {
			panic(err)
		}
		if err := s.Click(ctx, "b"); err != nil {
			panic(err)
		}
		s.Close()
	}
	for i := 0; i < 3; i++ {
		if _, err := pool.Eval(ctx, `sum(1 to 10)`, nil); err != nil {
			panic(err)
		}
	}

	// Two sessions + three evals, but the page script parsed once
	// (the second session shared the module) and the query compiled
	// once (evals two and three hit the program cache).
	m := pool.Metrics()
	fmt.Printf("sessions=%d parses=%d module-hits=%d program-hits=%d\n",
		m.SessionsLoaded, m.Cache.Parses, m.Cache.ModuleHits, m.Cache.ProgramHits)
	_ = pool.Shutdown(ctx)
	// Output: sessions=2 parses=2 module-hits=1 program-hits=2
}

// Local library modules: factoring shared XQuery (§6.1's application
// modules) without a network hop.
func ExampleNewLocalResolver() {
	resolver := xqib.NewLocalResolver(map[string]string{
		"urn:math": `module namespace m = "urn:math";
			declare function m:square($x) { $x * $x };`,
	})
	e := xqib.NewEngine(xqib.WithModuleResolver(resolver))
	seq, err := e.EvalQuery(`import module namespace m = "urn:math"; m:square(7)`, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(xqib.FormatSequence(seq))
	// Output: 49
}
