// Google-Maps-weather mash-up (§6.2, Figure 3): JavaScript and XQuery
// co-exist on one page, listening to the same search-button click; JS
// updates the map via AJAX while XQuery issues REST calls to weather
// and web-cam services and merges the results into the same DOM.
package main

import (
	"fmt"
	"log"
)

import "repro/internal/apps"

func main() {
	m, err := apps.NewMashup()
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	for _, city := range []string{"Madrid", "Zurich", "Redwood City"} {
		if err := m.Search(city); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("searched %-13s → map=%q weather=%q webcams=%d\n",
			city, m.MapLocation(), m.WeatherText(), len(m.WebcamURLs()))
	}
	fmt.Println("\nhandler serialisation (per click, JavaScript first):", m.HandlerOrder)
	for _, svc := range []string{"maps", "weather", "webcams"} {
		fmt.Printf("service %-8s handled %d requests\n", svc, m.Services.Requests(svc))
	}

	// §6.2: the weather service is selected by the browser's language.
	de, err := apps.NewMashupWithLanguage("de")
	if err != nil {
		log.Fatal(err)
	}
	defer de.Close()
	if err := de.Search("Zurich"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngerman-language browser → weather=%q (served by the de service: %d request)\n",
		de.WeatherText(), de.Services.Requests("weather-de"))
}
