// Quickstart: the paper's Hello World page (§4.1) and the
// multiplication-table demo (§6.3), run through the public API.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/apps"
)

func main() {
	// 1. Evaluate XQuery directly.
	engine := xqib.NewEngine()
	seq, err := engine.EvalQuery(`for $i in 1 to 5 return $i * $i`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("squares:", xqib.FormatSequence(seq))

	// 2. The Hello World page of §4.1.
	h, err := xqib.LoadPage(`<html><head>
		<title>Hello World Page</title>
		<script type="text/xquery">
			browser:alert("Hello, World!")
		</script>
	</head><body/></html>`, "http://www.example.com/hello.html")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alerts:", h.Alerts())

	// 3. The multiplication table (§6.3): 29-ish lines of XQuery doing
	// the work of 77-ish lines of JavaScript.
	mult, err := apps.RunMultiplicationXQuery(6)
	if err != nil {
		log.Fatal(err)
	}
	cells := apps.MultiplicationTableCells(mult.Page)
	fmt.Printf("multiplication table: %d cells, first row:", len(cells))
	for i := 0; i < 6; i++ {
		fmt.Printf(" %s", cells[i])
	}
	fmt.Println()
	fmt.Printf("lines of code: XQuery %d vs JavaScript %d\n",
		apps.CountLines(apps.MultiplicationXQueryScript),
		apps.CountLines(apps.MultiplicationJSSource))
}
