// Elsevier Reference 2.0 (§6.1, Figure 2): the server-to-client
// migration. The same page-layout XQuery runs first on an application
// server, then inside the browser with whole-document caching,
// off-loading the server — the paper's motivation for the project.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
)

func main() {
	r, err := apps.NewReference20(apps.DefaultCorpus)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	fmt.Printf("corpus: %d journals × %d volumes × %d issues × %d articles = %d article documents\n",
		r.Cfg.Journals, r.Cfg.Volumes, r.Cfg.Issues, r.Cfg.Articles, len(r.Articles))

	session := r.Session(40, 7)
	fmt.Printf("replaying a browsing session of %d interactions under three architectures\n\n", len(session))

	server, err := apps.NewServerSideApp(r)
	if err != nil {
		log.Fatal(err)
	}
	sm, err := server.Replay(session)
	if err != nil {
		log.Fatal(err)
	}

	cached, err := apps.NewClientSideApp(r, true)
	if err != nil {
		log.Fatal(err)
	}
	cm, err := cached.Replay(session)
	if err != nil {
		log.Fatal(err)
	}

	uncached, err := apps.NewClientSideApp(r, false)
	if err != nil {
		log.Fatal(err)
	}
	um, err := uncached.Replay(session)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %14s %14s %14s %12s %12s\n",
		"architecture", "server reqs", "server bytes", "server queries", "client gets", "cache hits")
	rows := []struct {
		name string
		m    apps.Metrics
	}{
		{"server-side", sm},
		{"client-side, no cache", um},
		{"client-side + cache", cm},
	}
	for _, row := range rows {
		fmt.Printf("%-22s %14d %14d %14d %12d %12d\n",
			row.name, row.m.ServerRequests, row.m.ServerBytes,
			row.m.ServerQueries, row.m.ClientFetches, row.m.ClientCacheHits)
	}
	fmt.Printf("\noff-loading: caching client issued %d server requests for %d interactions (%.0f%% served locally)\n",
		cm.ServerRequests, cm.Interactions,
		100*(1-float64(cm.ServerRequests)/float64(cm.Interactions)))
}
