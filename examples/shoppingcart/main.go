// Shopping cart (§6.3): the same application in the XQuery-only
// architecture and in the JSP+JavaScript+SQL stack, demonstrating the
// paper's "avoid the technology jungle" argument — one language on all
// tiers, same behaviour, less code.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
)

func main() {
	store, err := apps.NewProductStore()
	if err != nil {
		log.Fatal(err)
	}

	page, err := apps.RenderShoppingCartXQuery(store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- server-rendered XQuery-only page ---")
	fmt.Println(page)

	buys := []string{"Mouse", "Computer", "Mouse"}
	cart, _, err := apps.RunShoppingCartXQuery(store, buys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter buying", buys, "the XQuery cart holds (top first):", cart)

	jsCart, err := apps.RunShoppingCartBaseline(store, buys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the JSP+JS+SQL baseline cart holds:          ", jsCart)

	fmt.Printf("\nlines of code: XQuery-only %d vs JSP+JS+SQL stack %d\n",
		apps.CountLines(apps.ShoppingCartXQueryServer),
		apps.CountLines(apps.ShoppingCartJSPSource))
}
