// AJAX suggest (§4.4): asynchronous web-service calls with the paper's
// "behind" construct — typing fires keyup events, the hint service is
// called without blocking the UI, and readyState 4 delivers the result.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
)

func main() {
	s, err := apps.NewSuggest()
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	for _, typed := range []string{"A", "B", "Li", "Gu"} {
		if err := s.Type(typed); err != nil {
			log.Fatal(err)
		}
		if errs := s.Wait(); len(errs) > 0 {
			log.Fatal(errs[0])
		}
		fmt.Printf("typed %-3q → suggestions: %s\n", typed, s.Hint())
	}
}
