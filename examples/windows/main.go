// Browser Object Model demo (§4.2): the window tree as XML, status and
// location manipulation through the Update Facility, history, the
// screen/navigator objects, and the same-origin security policy hiding
// cross-origin frames.
package main

import (
	"fmt"
	"log"

	xqib "repro"
)

func main() {
	loader := func(url string) (*xqib.Node, error) {
		page, err := xqib.ParseHTML(`<html><body><p>page at ` + url + `</p></body></html>`)
		return page, err
	}

	page := `<html><head><script type="text/xqueryp">
{
  (: §4.2.1: manipulate the window through the Update Facility :)
  replace value of node browser:self()/status with "Welcome";

  (: §4.2.2: screen and navigator :)
  browser:alert(concat("screen: ",
    string(browser:screen()/width), "x", string(browser:screen()/height)));
  browser:alert(concat("navigator: ", string(browser:navigator()/appName)));

  (: §4.2.1: find frames by name through the window tree :)
  browser:alert(concat("frames named leftframe: ",
    string(count(browser:top()//window[@name="leftframe"]))));

  (: cross-origin frames expose nothing (§4.2.1) :)
  browser:alert(concat("secret status reads as: [",
    string(browser:top()//window[@name="other"]/status), "]"));
}
	</script></head><body/></html>`

	h, err := xqib.LoadPage(page, "http://demo.example.com/windows.html",
		xqib.WithPageLoader(loader),
		xqib.WithBrowserSetup(func(b *xqib.Browser) {
			left := &xqib.Window{Name: "leftframe", Status: "First child"}
			left.Location, _ = xqib.ParseLocation("http://demo.example.com/left")
			other := &xqib.Window{Name: "other", Status: "top secret"}
			other.Location, _ = xqib.ParseLocation("https://elsewhere.example.org/")
			b.Top().AddFrame(left)
			b.Top().AddFrame(other)
		}))
	if err != nil {
		log.Fatal(err)
	}

	for _, a := range h.Alerts() {
		fmt.Println("alert:", a)
	}
	fmt.Println("status:", h.Window.Status)

	// Navigate by replacing location/href (the §4.2.1 example), then
	// walk the history.
	if err := h.Browser.Navigate(h.Window, "http://demo.example.com/second"); err != nil {
		log.Fatal(err)
	}
	if err := h.Browser.HistoryGo(h.Window, -1); err != nil {
		log.Fatal(err)
	}
	hist, pos := h.Window.History()
	fmt.Printf("history: %v (at %d)\n", hist, pos)
	fmt.Println("location:", h.Window.Location.Href)
}
