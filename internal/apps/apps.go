// Package apps implements the paper's application scenarios — the
// multiplication-table demo (§6.3 / xqib.org samples), the XQuery-only
// shopping cart (§6.3), the Google-Maps-weather mash-up (§6.2,
// Figure 3), the Elsevier Reference 2.0 migration (§6.1, Figure 2) and
// the AJAX suggest application (§4.4). The runnable examples, the
// benchmark harness (bench_test.go) and cmd/experiments all drive these
// scenarios, so the code that reproduces each figure lives in exactly
// one place.
package apps

import (
	"strings"
)

// CountLines counts the non-blank source lines of a program text — the
// measure behind the paper's "77 lines of JavaScript code or
// alternatively only 29 lines of XQuery code" comparison (§6.3).
func CountLines(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}
