package apps

import (
	"strings"
	"testing"

	"repro/internal/dom"
)

// Second batch: the per-query client (E9), session generation
// properties, and the mash-up services in isolation.

func TestPerQueryClientEvaluatesOnServer(t *testing.T) {
	r, err := NewReference20(DefaultCorpus)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	session := r.Session(12, 3)
	m, err := ReplayPerQueryClient(r, session)
	if err != nil {
		t.Fatal(err)
	}
	// Every interaction is a server request AND a server evaluation —
	// the pre-migration architecture's cost profile.
	if m.ServerRequests != 12 || m.ServerQueries != 12 {
		t.Errorf("per-query metrics: reqs=%d queries=%d", m.ServerRequests, m.ServerQueries)
	}
	if m.ClientCacheHits != 0 {
		t.Errorf("per-query caching should be impossible: %d hits", m.ClientCacheHits)
	}
}

func TestPerQueryViewsMatchServerViews(t *testing.T) {
	// The per-query endpoint returns the same rendered views as the
	// server-side app (both are reference20Views shapes).
	r, err := NewReference20(DefaultCorpus)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	server, err := NewServerSideApp(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range []Interaction{
		{Kind: "issue", ID: "j2v1i2"},
		{Kind: "article", ID: "j2v1i2a3"},
		{Kind: "refs", ID: "j2v1i2a3"},
	} {
		want, err := server.Render(it)
		if err != nil {
			t.Fatal(err)
		}
		uri, q := perQueryRequest(it)
		got, err := r.Store.Query(uri, q)
		if err != nil {
			t.Fatalf("%v: %v", it, err)
		}
		if got != want {
			t.Errorf("%v:\nserver: %s\nper-query: %s", it, want, got)
		}
	}
}

func TestSessionGeneration(t *testing.T) {
	r, err := NewReference20(DefaultCorpus)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Deterministic for a seed.
	s1 := r.Session(25, 9)
	s2 := r.Session(25, 9)
	if len(s1) != 25 || len(s2) != 25 {
		t.Fatalf("session lengths: %d %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("session not deterministic at %d: %v vs %v", i, s1[i], s2[i])
		}
	}
	// Different seeds differ.
	s3 := r.Session(25, 10)
	same := true
	for i := range s1 {
		if s1[i] != s3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sessions")
	}
	// Every interaction references a real issue or article.
	issues := map[string]bool{}
	for _, id := range r.Issues() {
		issues[id] = true
	}
	articles := map[string]bool{}
	for _, id := range r.Articles {
		articles[id] = true
	}
	for _, it := range s1 {
		switch it.Kind {
		case "issue":
			if !issues[it.ID] {
				t.Errorf("unknown issue %q", it.ID)
			}
		case "article", "refs":
			if !articles[it.ID] {
				t.Errorf("unknown article %q", it.ID)
			}
		default:
			t.Errorf("unknown interaction kind %q", it.Kind)
		}
	}
	// Sessions contain revisits (the cache's raison d'être).
	seen := map[Interaction]int{}
	revisits := 0
	for _, it := range r.Session(60, 4) {
		seen[it]++
		if seen[it] > 1 {
			revisits++
		}
	}
	if revisits == 0 {
		t.Error("long session has no revisits")
	}
}

func TestMashupServicesDirect(t *testing.T) {
	s := NewMashupServices()
	defer s.Close()
	c := s.Maps.Client()

	get := func(url string) string {
		resp, err := c.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 8192)
		n, _ := resp.Body.Read(buf)
		return string(buf[:n])
	}
	m := get(s.Maps.URL + "?loc=Bern")
	if !strings.Contains(m, `<map location="Bern">`) || !strings.Contains(m, "<tile") {
		t.Errorf("map payload: %s", m)
	}
	w := get(s.Weather.URL + "?loc=Bern")
	if !strings.Contains(w, `<weather location="Bern">`) || !strings.Contains(w, "<temp>") {
		t.Errorf("weather payload: %s", w)
	}
	// Deterministic per location.
	if w2 := get(s.Weather.URL + "?loc=Bern"); w2 != w {
		t.Error("weather must be deterministic per location")
	}
	cams := get(s.Webcams.URL + "?loc=Bern")
	if strings.Count(cams, "<cam ") != 2 {
		t.Errorf("webcams payload: %s", cams)
	}
	if s.Requests("maps") != 1 || s.Requests("weather") != 2 || s.Requests("webcams") != 1 {
		t.Errorf("request counts: %d %d %d",
			s.Requests("maps"), s.Requests("weather"), s.Requests("webcams"))
	}
}

func TestSuggestEmptyInputClearsHint(t *testing.T) {
	s, err := NewSuggest()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Type("B"); err != nil {
		t.Fatal(err)
	}
	_ = s.Wait()
	if s.Hint() == "" {
		t.Fatal("precondition: hint set")
	}
	// Simulate clearing the box: keyup with empty value.
	box := s.Host.Page.ElementByID("text1")
	box.SetAttr(dom.Name("value"), "")
	if err := s.Host.Keyup("text1", "Backspace"); err != nil {
		t.Fatal(err)
	}
	_ = s.Wait()
	if s.Hint() != "" {
		t.Errorf("hint not cleared: %q", s.Hint())
	}
}

func TestReference20CorpusScales(t *testing.T) {
	cfg := CorpusConfig{Journals: 1, Volumes: 1, Issues: 1, Articles: 2, RefsPerArticle: 3, Seed: 1}
	r, err := NewReference20(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(r.Articles) != 2 || r.Store.Len() != 3 {
		t.Errorf("tiny corpus: %d articles, %d docs", len(r.Articles), r.Store.Len())
	}
	out, err := r.Store.Query("articles/"+r.Articles[0]+".xml", `count(//ref)`)
	if err != nil || out != "3" {
		t.Errorf("refs = %s, %v", out, err)
	}
}

func TestMashupWeatherServiceSelectionByLanguage(t *testing.T) {
	// §6.2: "a selection of different weather services is used,
	// depending on the used language".
	de, err := NewMashupWithLanguage("de")
	if err != nil {
		t.Fatal(err)
	}
	defer de.Close()
	if err := de.Search("Zurich"); err != nil {
		t.Fatal(err)
	}
	if got := de.WeatherText(); got != ExpectedWeatherTextDE("Zurich") {
		t.Errorf("german weather = %q, want %q", got, ExpectedWeatherTextDE("Zurich"))
	}
	if de.Services.Requests("weather-de") != 1 || de.Services.Requests("weather") != 0 {
		t.Errorf("service selection wrong: de=%d en=%d",
			de.Services.Requests("weather-de"), de.Services.Requests("weather"))
	}

	en, err := NewMashupWithLanguage("en")
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	if err := en.Search("Zurich"); err != nil {
		t.Fatal(err)
	}
	if en.Services.Requests("weather") != 1 || en.Services.Requests("weather-de") != 0 {
		t.Error("english browser must use the english service")
	}
}
