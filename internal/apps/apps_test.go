package apps

import (
	"strings"
	"testing"
)

func TestCountLines(t *testing.T) {
	if got := CountLines("a\n\n  \nb\nc\n"); got != 3 {
		t.Errorf("CountLines = %d", got)
	}
	if got := CountLines(""); got != 0 {
		t.Errorf("CountLines empty = %d", got)
	}
}

func TestMultiplicationXQuery(t *testing.T) {
	h, err := RunMultiplicationXQuery(5)
	if err != nil {
		t.Fatal(err)
	}
	cells := MultiplicationTableCells(h.Page)
	if len(cells) != 25 {
		t.Fatalf("cells = %d", len(cells))
	}
	if cells[0] != "1" || cells[24] != "25" || cells[7] != "6" {
		t.Errorf("cell values wrong: %v", cells)
	}
	// Regenerating replaces the table.
	_ = h.Click("generate")
	if got := len(MultiplicationTableCells(h.Page)); got != 25 {
		t.Errorf("regenerate duplicated cells: %d", got)
	}
	// Cell highlight via delegated listener.
	td := h.Page.ElementByID("c2x3")
	if td == nil {
		t.Fatal("cell c2x3 missing")
	}
	_ = h.Click("c2x3")
	if !strings.Contains(td.AttrValue("style"), "background-color: yellow") {
		t.Errorf("highlight failed: %q", td.AttrValue("style"))
	}
}

func TestMultiplicationEquivalence(t *testing.T) {
	h, err := RunMultiplicationXQuery(8)
	if err != nil {
		t.Fatal(err)
	}
	jsPage, err := RunMultiplicationJS(8)
	if err != nil {
		t.Fatal(err)
	}
	xq := MultiplicationTableCells(h.Page)
	js := MultiplicationTableCells(jsPage)
	if len(xq) != len(js) {
		t.Fatalf("cell counts differ: %d vs %d", len(xq), len(js))
	}
	for i := range xq {
		if xq[i] != js[i] {
			t.Fatalf("cell %d differs: %q vs %q", i, xq[i], js[i])
		}
	}
}

func TestMultiplicationLoCRatio(t *testing.T) {
	// Paper §6.3: 77 JS lines vs 29 XQuery lines (≈2.7×). Our faithful
	// transcriptions must preserve the shape: XQuery several times
	// smaller.
	js := CountLines(MultiplicationJSSource)
	xq := CountLines(MultiplicationXQueryScript)
	if xq >= js {
		t.Errorf("XQuery (%d) should be shorter than JavaScript (%d)", xq, js)
	}
	ratio := float64(js) / float64(xq)
	if ratio < 1.8 {
		t.Errorf("LoC ratio %.2f too small to support the paper's claim (js=%d xq=%d)",
			ratio, js, xq)
	}
}

func TestShoppingCartXQuery(t *testing.T) {
	store, err := NewProductStore()
	if err != nil {
		t.Fatal(err)
	}
	cart, _, err := RunShoppingCartXQuery(store, []string{"Mouse", "Screen", "Mouse"})
	if err != nil {
		t.Fatal(err)
	}
	// "as first" puts the newest on top.
	want := []string{"Mouse", "Screen", "Mouse"}
	if len(cart) != 3 {
		t.Fatalf("cart = %v", cart)
	}
	if cart[0] != want[2] || cart[2] != want[0] {
		t.Errorf("cart order = %v", cart)
	}
}

func TestShoppingCartEquivalence(t *testing.T) {
	store, err := NewProductStore()
	if err != nil {
		t.Fatal(err)
	}
	buys := []string{"Keyboard", "Computer"}
	xq, _, err := RunShoppingCartXQuery(store, buys)
	if err != nil {
		t.Fatal(err)
	}
	js, err := RunShoppingCartBaseline(store, buys)
	if err != nil {
		t.Fatal(err)
	}
	if len(xq) != len(js) {
		t.Fatalf("carts differ: %v vs %v", xq, js)
	}
	for i := range xq {
		if xq[i] != js[i] {
			t.Errorf("cart item %d: %q vs %q", i, xq[i], js[i])
		}
	}
}

func TestShoppingCartPageIsSingleLanguage(t *testing.T) {
	store, err := NewProductStore()
	if err != nil {
		t.Fatal(err)
	}
	page, err := RenderShoppingCartXQuery(store)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(page, "javascript") || strings.Contains(page, "<%") {
		t.Error("XQuery-only page contains other languages")
	}
	if !strings.Contains(page, `type="text/xqueryp"`) {
		t.Errorf("page lost its script: %s", page)
	}
	for _, p := range []string{"Keyboard", "Mouse", "Screen", "Computer"} {
		if !strings.Contains(page, p) {
			t.Errorf("product %s not rendered", p)
		}
	}
}

func TestShoppingCartLoC(t *testing.T) {
	stack := CountLines(ShoppingCartJSPSource)
	xq := CountLines(ShoppingCartXQueryServer)
	if xq >= stack {
		t.Errorf("XQuery-only (%d) should be shorter than the JSP stack (%d)", xq, stack)
	}
}

func TestMashup(t *testing.T) {
	m, err := NewMashup()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Search("Madrid"); err != nil {
		t.Fatal(err)
	}
	// Both halves handled the one click, JavaScript first (§4.1/§6.2).
	if len(m.HandlerOrder) != 2 || m.HandlerOrder[0] != "javascript" || m.HandlerOrder[1] != "xquery" {
		t.Errorf("handler order = %v", m.HandlerOrder)
	}
	if m.MapLocation() != "Madrid" {
		t.Errorf("map location = %q", m.MapLocation())
	}
	if m.WeatherText() != ExpectedWeatherText("Madrid") {
		t.Errorf("weather = %q, want %q", m.WeatherText(), ExpectedWeatherText("Madrid"))
	}
	cams := m.WebcamURLs()
	if len(cams) != 2 || !strings.Contains(cams[0], "Madrid") {
		t.Errorf("webcams = %v", cams)
	}
	// Every service saw exactly one request.
	for _, svc := range []string{"maps", "weather", "webcams"} {
		if got := m.Services.Requests(svc); got != 1 {
			t.Errorf("%s requests = %d", svc, got)
		}
	}
	// A second search updates everything.
	if err := m.Search("Zurich"); err != nil {
		t.Fatal(err)
	}
	if m.MapLocation() != "Zurich" || m.WeatherText() != ExpectedWeatherText("Zurich") {
		t.Errorf("second search: %q / %q", m.MapLocation(), m.WeatherText())
	}
}

func TestReference20Corpus(t *testing.T) {
	r, err := NewReference20(DefaultCorpus)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	wantArticles := DefaultCorpus.Journals * DefaultCorpus.Volumes *
		DefaultCorpus.Issues * DefaultCorpus.Articles
	if len(r.Articles) != wantArticles {
		t.Errorf("articles = %d, want %d", len(r.Articles), wantArticles)
	}
	if r.Store.Len() != wantArticles+1 {
		t.Errorf("store docs = %d", r.Store.Len())
	}
	out, err := r.Store.Query("catalog.xml", `count(//article)`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "48" {
		t.Errorf("catalog articles = %s", out)
	}
}

func TestReference20ServerVsClientEquivalence(t *testing.T) {
	r, err := NewReference20(DefaultCorpus)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	server, err := NewServerSideApp(r)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClientSideApp(r, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range []Interaction{
		{Kind: "issue", ID: "j1v1i1"},
		{Kind: "article", ID: "j1v1i1a2"},
		{Kind: "refs", ID: "j1v1i1a2"},
	} {
		want, err := server.Render(it)
		if err != nil {
			t.Fatalf("server %v: %v", it, err)
		}
		if err := client.Do(it); err != nil {
			t.Fatalf("client %v: %v", it, err)
		}
		got := client.ContentHTML()
		if got != want {
			t.Errorf("%v: client/server views differ\nserver: %s\nclient: %s", it, want, got)
		}
	}
}

func TestReference20Offloading(t *testing.T) {
	r, err := NewReference20(DefaultCorpus)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	session := r.Session(30, 7)

	server, err := NewServerSideApp(r)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := server.Replay(session)
	if err != nil {
		t.Fatal(err)
	}
	if sm.ServerQueries != 30 || sm.ServerRequests != 30 {
		t.Errorf("server-side metrics: %+v", sm)
	}

	cached, err := NewClientSideApp(r, true)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := cached.Replay(session)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2's claim: the client runs the queries (server evaluates
	// none) and caching keeps most interactions off the server.
	if cm.ServerQueries != 0 {
		t.Errorf("client-side must not evaluate queries on the server: %+v", cm)
	}
	if cm.ServerRequests >= sm.ServerRequests {
		t.Errorf("caching client should contact the server less: %d vs %d",
			cm.ServerRequests, sm.ServerRequests)
	}
	if cm.ClientCacheHits == 0 {
		t.Error("expected cache hits in a session with revisits")
	}
	// Upper bound: at most one fetch per distinct document.
	if cm.ServerRequests > r.Store.Len() {
		t.Errorf("more fetches (%d) than documents (%d)", cm.ServerRequests, r.Store.Len())
	}

	uncached, err := NewClientSideApp(r, false)
	if err != nil {
		t.Fatal(err)
	}
	um, err := uncached.Replay(session)
	if err != nil {
		t.Fatal(err)
	}
	if um.ServerRequests <= cm.ServerRequests {
		t.Errorf("cache ablation: uncached (%d) should fetch more than cached (%d)",
			um.ServerRequests, cm.ServerRequests)
	}
}

func TestSuggest(t *testing.T) {
	s, err := NewSuggest()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Type("B"); err != nil {
		t.Fatal(err)
	}
	if errs := s.Wait(); len(errs) > 0 {
		t.Fatalf("async errors: %v", errs)
	}
	if got := s.Hint(); got != "Brittany" {
		t.Errorf("hint = %q", got)
	}
	if err := s.Type("Li"); err != nil {
		t.Fatal(err)
	}
	if errs := s.Wait(); len(errs) > 0 {
		t.Fatalf("async errors: %v", errs)
	}
	if got := s.Hint(); got != "Linda" {
		t.Errorf("hint = %q", got)
	}
	// Multiple matches join with commas.
	_ = s.Type("A")
	_ = s.Wait()
	if got := s.Hint(); got != "Anna" {
		t.Errorf("hint = %q", got)
	}
}
