package apps

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/rest"
	"repro/internal/xquery/runtime"
)

// The Google-Maps-weather mash-up of §6.2 (Figure 3): JavaScript runs
// the map (talking to the map service with AJAX), XQuery initiates REST
// calls to weather services and web-cam directories and integrates the
// results — and "code written in both languages listens to the same
// events": one click on the search button triggers both.
//
// The external services are synthetic in-process HTTP servers (see
// DESIGN.md substitutions): the experiment exercises REST integration,
// shared event handling and DOM merging, none of which depend on the
// real services' payloads.

// MashupServices hosts the synthetic map, weather and web-cam services.
type MashupServices struct {
	Maps      *httptest.Server
	Weather   *httptest.Server
	WeatherDE *httptest.Server // the German-language service (§6.2: "a selection of different weather services is used, depending on the used language")
	Webcams   *httptest.Server

	mu       sync.Mutex
	requests map[string]int
}

// NewMashupServices starts the three services. Payloads are
// deterministic functions of the location so tests can assert content.
func NewMashupServices() *MashupServices {
	s := &MashupServices{requests: map[string]int{}}
	s.Maps = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.bump("maps")
		loc := r.URL.Query().Get("loc")
		w.Header().Set("Content-Type", "application/xml")
		fmt.Fprintf(w, `<map location="%s">`, markup.EscapeAttr(loc))
		for i := 0; i < 4; i++ {
			fmt.Fprintf(w, `<tile x="%d" y="%d" url="tile://%s/%d"/>`, i%2, i/2, loc, i)
		}
		io.WriteString(w, `</map>`)
	}))
	s.Weather = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.bump("weather")
		loc := r.URL.Query().Get("loc")
		temp, cond := syntheticWeather(loc)
		w.Header().Set("Content-Type", "application/xml")
		fmt.Fprintf(w, `<weather location="%s"><temp>%d</temp><condition>%s</condition></weather>`,
			markup.EscapeAttr(loc), temp, cond)
	}))
	s.WeatherDE = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.bump("weather-de")
		loc := r.URL.Query().Get("loc")
		temp, cond := syntheticWeather(loc)
		german := map[string]string{"sunny": "sonnig", "cloudy": "bewölkt",
			"rain": "Regen", "snow": "Schnee"}
		w.Header().Set("Content-Type", "application/xml")
		fmt.Fprintf(w, `<wetter ort="%s"><temperatur>%d</temperatur><lage>%s</lage></wetter>`,
			markup.EscapeAttr(loc), temp, german[cond])
	}))
	s.Webcams = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.bump("webcams")
		loc := r.URL.Query().Get("loc")
		w.Header().Set("Content-Type", "application/xml")
		fmt.Fprintf(w, `<webcams location="%s">`, markup.EscapeAttr(loc))
		for i := 1; i <= 2; i++ {
			fmt.Fprintf(w, `<cam url="http://cams.example.com/%s/%d"/>`, loc, i)
		}
		io.WriteString(w, `</webcams>`)
	}))
	return s
}

func (s *MashupServices) bump(which string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests[which]++
}

// Requests returns how many calls each service received.
func (s *MashupServices) Requests(which string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests[which]
}

// Close shuts the services down.
func (s *MashupServices) Close() {
	s.Maps.Close()
	s.Weather.Close()
	s.WeatherDE.Close()
	s.Webcams.Close()
}

// syntheticWeather derives a stable temperature and condition from the
// location name.
func syntheticWeather(loc string) (int, string) {
	h := fnv.New32a()
	_, _ = io.WriteString(h, loc)
	v := h.Sum32()
	conds := []string{"sunny", "cloudy", "rain", "snow"}
	return int(v%35) - 5, conds[v%4]
}

// MashupPage builds the mash-up page: the XQuery half listens on the
// same search button the JavaScript half uses.
func MashupPage(weatherURL, weatherDEURL, webcamURL string) string {
	return `<html><head><title>Maps + Weather</title>
<script type="text/xqueryp">
declare namespace rest = "http://www.example.com/rest";
(: §6.2: the weather service is selected by the user's language. :)
declare function local:weatherLine($loc as xs:string) {
  if (browser:navigator()/language = "de")
  then
    let $w := rest:get(concat("` + weatherDEURL + `?loc=", encode-for-uri($loc)))/wetter
    return concat($w/lage, " bei ", $w/temperatur, " Grad")
  else
    let $w := rest:get(concat("` + weatherURL + `?loc=", encode-for-uri($loc)))/weather
    return concat($w/condition, " at ", $w/temp, " degrees")
};
declare updating function local:onSearch($evt, $obj) {
  let $loc := string(//input[@id="searchbox"]/@value)
  let $cams := rest:get(concat("` + webcamURL + `?loc=", encode-for-uri($loc)))/webcams
  return (
    replace value of node //div[@id="weather"]
      with local:weatherLine($loc),
    replace node //div[@id="webcams"]/ul with
      <ul>{ for $c in $cams/cam return <li>{string($c/@url)}</li> }</ul>
  )
};
on event "click" at //input[@id="searchbutton"]
attach listener local:onSearch
</script>
</head><body>
<input id="searchbox" type="text" value=""/>
<input id="searchbutton" type="button" value="Search"/>
<div id="map"/>
<div id="weather"/>
<div id="webcams"><ul/></div>
</body></html>`
}

// Mashup is a running mash-up page.
type Mashup struct {
	Host     *core.Host
	Services *MashupServices
	Client   *rest.Client
	// HandlerOrder records which language's listener ran, in order.
	HandlerOrder []string
}

// NewMashup starts services and loads the page with both script halves
// for an English-language browser; NewMashupWithLanguage selects the
// weather service by navigator language (§6.2).
func NewMashup() (*Mashup, error) { return NewMashupWithLanguage("en") }

// NewMashupWithLanguage starts the mash-up with the given browser
// language.
func NewMashupWithLanguage(lang string) (*Mashup, error) {
	m := &Mashup{Services: NewMashupServices()}
	m.Client = rest.NewClient(nil)

	// The JavaScript half: Google-Maps code reacting to the same click
	// (§6.2 — "if the search button in Google Maps is clicked, then
	// naturally, Google is called in order to serve the right map").
	jsSetup := func(page *dom.Node) {
		btn := page.ElementByID("searchbutton")
		btn.AddEventListener("click", false, nil, func(ev *dom.Event) {
			m.HandlerOrder = append(m.HandlerOrder, "javascript")
			loc := page.ElementByID("searchbox").AttrValue("value")
			resp, err := http.Get(m.Services.Maps.URL + "?loc=" + url.QueryEscape(loc))
			if err != nil {
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			mapDoc, err := markup.Parse(string(body))
			if err != nil {
				return
			}
			target := page.ElementByID("map")
			target.RemoveChildren()
			_ = target.AppendChild(mapDoc.DocumentElement().Clone())
		})
	}

	page := MashupPage(m.Services.Weather.URL, m.Services.WeatherDE.URL, m.Services.Webcams.URL)
	nav := browser.NavigatorInfo{AppName: "XQIB", Language: lang}
	host, err := core.LoadPage(page, "http://mashup.example.com/",
		core.WithJSSetup(jsSetup),
		core.WithNavigator(nav),
		core.WithExtraFunctions(func(reg *runtime.Registry) {
			m.Client.RegisterFunctions(reg)
		}),
	)
	if err != nil {
		m.Services.Close()
		return nil, err
	}
	m.Host = host
	return m, nil
}

// Search simulates the user typing a location and clicking the search
// button; both language halves handle the one click. The JS listener
// records itself in HandlerOrder directly; the XQuery half's execution
// is detected by its observable effect (the weather div it replaced),
// which also proves it ran after the JS half — the JS listener was
// registered first and the dispatch is serialised (§6.2).
func (m *Mashup) Search(location string) error {
	box := m.Host.Page.ElementByID("searchbox")
	box.SetAttr(dom.Name("value"), location)
	before := m.weatherText()
	if err := m.Host.Click("searchbutton"); err != nil {
		return err
	}
	if errs := m.Host.WaitIdle(0); len(errs) > 0 {
		return errs[0]
	}
	if m.weatherText() != before {
		m.HandlerOrder = append(m.HandlerOrder, "xquery")
	}
	return nil
}

func (m *Mashup) weatherText() string {
	return m.Host.Page.ElementByID("weather").StringValue()
}

// MapLocation returns the location of the currently displayed map.
func (m *Mashup) MapLocation() string {
	mp := m.Host.Page.ElementByID("map")
	if el := mp.FirstChild(); el != nil {
		return el.AttrValue("location")
	}
	return ""
}

// WeatherText returns the integrated weather line.
func (m *Mashup) WeatherText() string { return m.weatherText() }

// WebcamURLs returns the integrated web-cam list.
func (m *Mashup) WebcamURLs() []string {
	var out []string
	for _, li := range m.Host.Page.ElementByID("webcams").Elements("li") {
		out = append(out, li.StringValue())
	}
	return out
}

// ExpectedWeatherText computes what the page should show for a
// location in the English-language browser.
func ExpectedWeatherText(loc string) string {
	temp, cond := syntheticWeather(loc)
	return fmt.Sprintf("%s at %d degrees", cond, temp)
}

// ExpectedWeatherTextDE computes the German service's line.
func ExpectedWeatherTextDE(loc string) string {
	temp, cond := syntheticWeather(loc)
	german := map[string]string{"sunny": "sonnig", "cloudy": "bewölkt",
		"rain": "Regen", "snow": "Schnee"}
	return fmt.Sprintf("%s bei %d Grad", german[cond], temp)
}

// Close releases the services.
func (m *Mashup) Close() { m.Services.Close() }
