package apps

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/jsruntime"
	"repro/internal/markup"
)

// The multiplication-table demo from the paper's sample site (§6.3:
// "the multiplication table demoed on that site requires 77 lines of
// JavaScript code or alternatively only 29 lines of XQuery code"). The
// application: a size box, a Generate button that builds an n×n
// multiplication table, and click-to-highlight on the cells.

// MultiplicationXQueryScript is the XQuery implementation embedded in
// the page (the executed variant).
const MultiplicationXQueryScript = `
declare updating function local:generate($evt, $obj) {
  let $n := xs:integer(string(//input[@id="size"]/@value))
  return (
    delete node //div[@id="out"]/table,
    insert node
      <table border="1">{
        for $i in 1 to $n
        return
          <tr>{
            for $j in 1 to $n
            return <td id="c{$i}x{$j}">{$i * $j}</td>
          }</tr>
      }</table>
    into //div[@id="out"]
  )
};
declare updating function local:highlight($evt, $obj) {
  set style "background-color" of $obj to "yellow"
};
{
  on event "click" at //input[@id="generate"] attach listener local:generate;
  on event "click" at //div[@id="out"] attach listener local:highlight;
}
`

// MultiplicationJSSource is the JavaScript implementation as a browser
// would load it — the source text the paper's line count refers to. It
// is counted, not executed; the executable equivalent is
// RunMultiplicationJS below (see DESIGN.md, substitutions).
const MultiplicationJSSource = `
function getSize() {
    var box = document.getElementById("size");
    if (box == null) {
        return 0;
    }
    var n = parseInt(box.getAttribute("value"), 10);
    if (isNaN(n) || n < 1) {
        return 0;
    }
    return n;
}

function clearTable() {
    var out = document.getElementById("out");
    var tables = out.getElementsByTagName("table");
    for (var i = tables.length - 1; i >= 0; i--) {
        out.removeChild(tables[i]);
    }
    return out;
}

function makeCell(i, j) {
    var td = document.createElement("td");
    td.setAttribute("id", "c" + i + "x" + j);
    var text = document.createTextNode(String(i * j));
    td.appendChild(text);
    td.addEventListener("click", highlightCell, false);
    return td;
}

function makeRow(i, n) {
    var tr = document.createElement("tr");
    for (var j = 1; j <= n; j++) {
        var td = makeCell(i, j);
        tr.appendChild(td);
    }
    return tr;
}

function generateTable(evt) {
    var n = getSize();
    if (n == 0) {
        return;
    }
    var out = clearTable();
    var table = document.createElement("table");
    table.setAttribute("border", "1");
    for (var i = 1; i <= n; i++) {
        var tr = makeRow(i, n);
        table.appendChild(tr);
    }
    out.appendChild(table);
}

function highlightCell(evt) {
    var cell = evt.target;
    if (cell == null) {
        return;
    }
    cell.style.backgroundColor = "yellow";
}

function init() {
    var button = document.getElementById("generate");
    button.addEventListener("click", generateTable, false);
}

window.addEventListener("load", init, false);
`

// MultiplicationPage returns the demo page with the XQuery script
// embedded.
func MultiplicationPage() string {
	return `<html><head><title>Multiplication table</title>
<script type="text/xqueryp">` + MultiplicationXQueryScript + `</script>
</head><body>
<input id="size" type="text" value="10"/>
<input id="generate" type="button" value="Generate"/>
<div id="out"/>
</body></html>`
}

// RunMultiplicationXQuery loads the demo page, sets the size and clicks
// Generate; the returned host's page contains the table.
func RunMultiplicationXQuery(n int) (*core.Host, error) {
	h, err := core.LoadPage(MultiplicationPage(), "http://example.com/mult.html")
	if err != nil {
		return nil, err
	}
	h.Page.ElementByID("size").SetAttr(dom.Name("value"), strconv.Itoa(n))
	if err := h.Click("generate"); err != nil {
		return nil, err
	}
	if errs := h.WaitIdle(0); len(errs) > 0 {
		return nil, errs[0]
	}
	return h, nil
}

// RunMultiplicationJS builds the same table with the JavaScript-style
// baseline over an identical page skeleton and returns the page.
func RunMultiplicationJS(n int) (*dom.Node, error) {
	page, err := markup.ParseHTML(`<html><head><title>Multiplication table</title></head><body>
<input id="size" type="text" value="` + strconv.Itoa(n) + `"/>
<input id="generate" type="button" value="Generate"/>
<div id="out"/>
</body></html>`)
	if err != nil {
		return nil, err
	}
	d := jsruntime.NewDocument(page)

	highlightCell := func(evt *dom.Event) {
		if evt.Target == nil {
			return
		}
		style := evt.Target.AttrValue("style")
		if style != "" {
			style += "; "
		}
		evt.Target.SetAttr(dom.Name("style"), style+"background-color: yellow")
	}
	generateTable := func(evt *dom.Event) {
		box := d.GetElementById("size")
		num, err := strconv.Atoi(box.GetAttribute("value"))
		if err != nil || num < 1 {
			return
		}
		out := d.GetElementById("out")
		for _, tbl := range out.Node().Elements("table") {
			tbl.Detach()
		}
		table := d.CreateElement("table")
		table.SetAttribute("border", "1")
		for i := 1; i <= num; i++ {
			tr := d.CreateElement("tr")
			for j := 1; j <= num; j++ {
				td := d.CreateElement("td")
				td.SetAttribute("id", fmt.Sprintf("c%dx%d", i, j))
				td.AppendChild(d.CreateTextNode(strconv.Itoa(i * j)))
				td.AddEventListener("click", highlightCell)
				tr.AppendChild(td)
			}
			table.AppendChild(tr)
		}
		out.AppendChild(table)
	}
	btn := d.GetElementById("generate")
	btn.AddEventListener("click", generateTable)
	btn.DispatchEvent(&dom.Event{Type: "click", Bubbles: true, Button: 1})
	return page, nil
}

// MultiplicationTableCells extracts the table cells of a generated page
// (equivalence checks between the two implementations).
func MultiplicationTableCells(page *dom.Node) []string {
	var cells []string
	for _, td := range page.Elements("td") {
		cells = append(cells, td.StringValue())
	}
	return cells
}
