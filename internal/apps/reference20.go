package apps

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"net/url"
	"strings"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/rest"
	"repro/internal/xdm"
	"repro/internal/xmldb"
	"repro/internal/xquery"
	"repro/internal/xquery/runtime"
)

// Reference 2.0 (§6.1, Figure 2): a publishing application over a
// journal/volume/issue/article hierarchy stored in an XMLDB. The
// original architecture renders pages with XQuery on the server; the
// migration moves the same XQuery into the browser, where whole
// documents are fetched over REST and cached "so that most user
// requests can be processed without any interaction with the Elsevier
// server".
//
// The corpus is synthetic (see DESIGN.md substitutions): Figure 2's
// claim is architectural and holds for any corpus with this hierarchy.

// CorpusConfig sizes the synthetic corpus.
type CorpusConfig struct {
	Journals, Volumes, Issues, Articles int
	RefsPerArticle                      int
	Seed                                int64
}

// DefaultCorpus is a small but non-trivial corpus.
var DefaultCorpus = CorpusConfig{Journals: 2, Volumes: 3, Issues: 2, Articles: 4, RefsPerArticle: 12, Seed: 42}

// Reference20 holds the database and its REST front end.
type Reference20 struct {
	Cfg      CorpusConfig
	Store    *xmldb.Store
	DB       *httptest.Server
	Articles []string // article ids in catalog order
}

// NewReference20 generates the corpus into a fresh store and starts its
// REST endpoint.
func NewReference20(cfg CorpusConfig) (*Reference20, error) {
	st, err := xmldb.Open("")
	if err != nil {
		return nil, err
	}
	r := &Reference20{Cfg: cfg, Store: st}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var cat strings.Builder
	cat.WriteString("<catalog>")
	for j := 1; j <= cfg.Journals; j++ {
		fmt.Fprintf(&cat, `<journal id="j%d" title="Journal %d">`, j, j)
		for v := 1; v <= cfg.Volumes; v++ {
			fmt.Fprintf(&cat, `<volume id="j%dv%d" n="%d">`, j, v, v)
			for i := 1; i <= cfg.Issues; i++ {
				issueID := fmt.Sprintf("j%dv%di%d", j, v, i)
				fmt.Fprintf(&cat, `<issue id="%s" n="%d">`, issueID, i)
				for a := 1; a <= cfg.Articles; a++ {
					id := fmt.Sprintf("%sa%d", issueID, a)
					title := fmt.Sprintf("On Topic %d.%d.%d.%d", j, v, i, a)
					fmt.Fprintf(&cat, `<article id="%s" title="%s"/>`, id, title)
					r.Articles = append(r.Articles, id)

					var art strings.Builder
					fmt.Fprintf(&art, `<article id="%s"><title>%s</title>`, id, title)
					fmt.Fprintf(&art, `<abstract>Abstract of %s with substantive findings.</abstract>`, id)
					art.WriteString(`<references>`)
					for k := 0; k < cfg.RefsPerArticle; k++ {
						year := 1985 + rng.Intn(24)
						fmt.Fprintf(&art, `<ref year="%d" title="Ref %d of %s"/>`, year, k, id)
					}
					art.WriteString(`</references></article>`)
					if err := r.Store.PutXML("articles/"+id+".xml", art.String()); err != nil {
						return nil, err
					}
				}
				cat.WriteString(`</issue>`)
			}
			cat.WriteString(`</volume>`)
		}
		cat.WriteString(`</journal>`)
	}
	cat.WriteString("</catalog>")
	if err := r.Store.PutXML("catalog.xml", cat.String()); err != nil {
		return nil, err
	}
	r.DB = httptest.NewServer(r.Store.Handler())
	return r, nil
}

// Close stops the REST endpoint.
func (r *Reference20) Close() { r.DB.Close() }

// Issues lists the issue ids in catalog order.
func (r *Reference20) Issues() []string {
	var out []string
	for j := 1; j <= r.Cfg.Journals; j++ {
		for v := 1; v <= r.Cfg.Volumes; v++ {
			for i := 1; i <= r.Cfg.Issues; i++ {
				out = append(out, fmt.Sprintf("j%dv%di%d", j, v, i))
			}
		}
	}
	return out
}

// reference20Views is the page-layout XQuery shared VERBATIM by both
// architectures — "the XQuery code which runs in the client is almost
// the same as the XQuery code that previously ran in the server"
// (§6.1). Only document access differs and is injected through the
// local:catalog/local:adoc accessors appended below.
const reference20Views = `
declare function local:issueView($cat, $issue as xs:string) {
  <div class="issue">
    <h1>{concat("Issue ", $issue)}</h1>
    <ul>{
      for $a in $cat//issue[@id = $issue]/article
      return <li class="entry" id="{$a/@id}">{string($a/@title)}</li>
    }</ul>
  </div>
};
declare function local:articleView($doc) {
  <div class="article">
    <h1>{string($doc/article/title)}</h1>
    <p>{string($doc/article/abstract)}</p>
    <p class="refcount">{count($doc/article/references/ref)} references</p>
  </div>
};
declare function local:refsView($doc) {
  <div class="refs">
    <h1>{concat("References of ", string($doc/article/@id))}</h1>
    <ul>{
      for $y in distinct-values($doc/article/references/ref/@year)
      order by $y
      return <li class="year">{concat($y, ": ", count($doc/article/references/ref[@year = $y]))}</li>
    }</ul>
  </div>
};
`

// Interaction is one user action in a browsing session.
type Interaction struct {
	Kind string // "issue", "article" or "refs"
	ID   string // issue id or article id
}

// Session generates a deterministic browsing session of n interactions
// with realistic revisits (open an issue, read an article, study its
// references, come back to articles seen before).
func (r *Reference20) Session(n int, seed int64) []Interaction {
	rng := rand.New(rand.NewSource(seed))
	issues := r.Issues()
	var out []Interaction
	var visited []string
	for len(out) < n {
		switch {
		case len(visited) > 0 && rng.Intn(4) == 0:
			// Revisit an article seen earlier.
			id := visited[rng.Intn(len(visited))]
			out = append(out, Interaction{Kind: "refs", ID: id})
		default:
			issue := issues[rng.Intn(len(issues))]
			out = append(out, Interaction{Kind: "issue", ID: issue})
			if len(out) >= n {
				break
			}
			article := fmt.Sprintf("%sa%d", issue, 1+rng.Intn(r.Cfg.Articles))
			visited = append(visited, article)
			out = append(out, Interaction{Kind: "article", ID: article})
			if len(out) >= n && rng.Intn(2) == 0 {
				break
			}
			if len(out) < n {
				out = append(out, Interaction{Kind: "refs", ID: article})
			}
		}
	}
	return out[:n]
}

// Metrics is the outcome of a session replay under one architecture.
type Metrics struct {
	Architecture    string
	Interactions    int
	ServerRequests  int
	ServerBytes     int64
	ServerQueries   int
	ClientFetches   int
	ClientCacheHits int
}

// --- server-side architecture ---------------------------------------------------

// ServerSideApp is the original architecture: every interaction is a
// request to an XQuery application server that renders the page from
// the XMLDB.
type ServerSideApp struct {
	r    *Reference20
	prog *xquery.Program
}

// NewServerSideApp compiles the server-side renderer.
func NewServerSideApp(r *Reference20) (*ServerSideApp, error) {
	// Server-side document access: fn:doc straight into the XMLDB.
	src := reference20Views + `
declare function local:catalog() { doc("catalog.xml") };
declare function local:adoc($id as xs:string) { doc(concat("articles/", $id, ".xml")) };
declare function local:render($kind as xs:string, $id as xs:string) {
  if ($kind = "issue") then local:issueView(local:catalog(), $id)
  else if ($kind = "article") then local:articleView(local:adoc($id))
  else local:refsView(local:adoc($id))
};
`
	e := xquery.New()
	prog, err := e.Compile(src)
	if err != nil {
		return nil, err
	}
	return &ServerSideApp{r: r, prog: prog}, nil
}

// Render serves one interaction: the server evaluates the XQuery and
// returns the HTML fragment it would ship to the browser.
func (a *ServerSideApp) Render(it Interaction) (string, error) {
	ctx := a.prog.NewContext(xquery.RunConfig{Docs: a.r.Store.Resolver(), Sequential: true})
	if err := ctx.InitGlobals(); err != nil {
		return "", err
	}
	res, err := ctx.CallFunction(
		dom.QName{Space: "http://www.w3.org/2005/xquery-local-functions", Local: "render"},
		[]xdm.Sequence{
			{xdm.String(it.Kind)},
			{xdm.String(it.ID)},
		})
	if err != nil {
		return "", err
	}
	item, err := res.One()
	if err != nil {
		return "", err
	}
	n, _ := xdm.IsNode(item)
	return markup.Serialize(n), nil
}

// Replay runs a whole session server-side and reports the metrics.
func (a *ServerSideApp) Replay(session []Interaction) (Metrics, error) {
	m := Metrics{Architecture: "server-side", Interactions: len(session)}
	for _, it := range session {
		html, err := a.Render(it)
		if err != nil {
			return m, err
		}
		m.ServerRequests++ // one page request per interaction
		m.ServerQueries++  // one XQuery evaluation on the server
		m.ServerBytes += int64(len(html))
	}
	return m, nil
}

// --- per-query client (ablation E9) -----------------------------------------------

// ReplayPerQueryClient replays a session against the XMLDB's per-query
// endpoint: every interaction sends the rendering query to the server
// (the pre-migration §6.1 architecture, where modules served
// "individual queries to documents"). Whole-document caching cannot
// help because each interaction is a distinct query, and every
// evaluation burns server CPU — exactly why §6.1 adjusted the REST
// interface "so that they serve whole documents … to better enable
// caching".
func ReplayPerQueryClient(r *Reference20, session []Interaction) (Metrics, error) {
	client := rest.NewClient(nil)
	r.Store.Stats.Reset()
	for _, it := range session {
		uri, q := perQueryRequest(it)
		_, err := client.Get(r.DB.URL + "/query?uri=" + uri + "&q=" + urlQueryEscape(q))
		if err != nil {
			return Metrics{}, err
		}
	}
	st := r.Store.Stats.Snapshot()
	return Metrics{
		Architecture:    "client-side, per-query endpoint",
		Interactions:    len(session),
		ServerRequests:  int(st.Requests),
		ServerBytes:     st.BytesServed,
		ServerQueries:   int(st.QueriesEvaluated),
		ClientFetches:   client.Fetches,
		ClientCacheHits: client.CacheHit,
	}, nil
}

// perQueryRequest builds the per-interaction rendering query — the same
// views as reference20Views, inlined with the target id.
func perQueryRequest(it Interaction) (uri, q string) {
	switch it.Kind {
	case "issue":
		return "catalog.xml", `<div class="issue">
  <h1>{concat("Issue ", "` + it.ID + `")}</h1>
  <ul>{
    for $a in //issue[@id = "` + it.ID + `"]/article
    return <li class="entry" id="{$a/@id}">{string($a/@title)}</li>
  }</ul>
</div>`
	case "article":
		return "articles/" + it.ID + ".xml", `<div class="article">
  <h1>{string(/article/title)}</h1>
  <p>{string(/article/abstract)}</p>
  <p class="refcount">{count(/article/references/ref)} references</p>
</div>`
	default:
		return "articles/" + it.ID + ".xml", `<div class="refs">
  <h1>{concat("References of ", string(/article/@id))}</h1>
  <ul>{
    for $y in distinct-values(/article/references/ref/@year)
    order by $y
    return <li class="year">{concat($y, ": ", count(/article/references/ref[@year = $y]))}</li>
  }</ul>
</div>`
	}
}

func urlQueryEscape(s string) string { return url.QueryEscape(s) }

// --- client-side architecture ----------------------------------------------------

// ClientSideApp is the migrated architecture: the page-layout XQuery
// runs in the browser and fetches whole documents over REST, optionally
// caching them.
type ClientSideApp struct {
	r      *Reference20
	Host   *core.Host
	Client *rest.Client
}

// NewClientSideApp loads the client page. The rendering functions are
// the same text as the server's; only local:catalog/local:adoc now GET
// whole documents from the XMLDB's REST endpoint.
func NewClientSideApp(r *Reference20, cache bool) (*ClientSideApp, error) {
	client := rest.NewClient(nil)
	client.EnableCache(cache)
	script := `declare namespace rest = "` + rest.Namespace + `";` +
		reference20Views + `
declare function local:catalog() {
  rest:get("` + r.DB.URL + `/doc?uri=catalog.xml")
};
declare function local:adoc($id as xs:string) {
  rest:get(concat("` + r.DB.URL + `/doc?uri=articles/", $id, ".xml"))
};
declare updating function local:nav($evt, $obj) {
  let $kind := string($obj/@data-kind)
  let $id := string($obj/@data-id)
  let $view :=
    if ($kind = "issue") then local:issueView(local:catalog(), $id)
    else if ($kind = "article") then local:articleView(local:adoc($id))
    else local:refsView(local:adoc($id))
  return replace node //div[@id="content"]/* with $view
};
on event "click" at //input[@id="nav"]
attach listener local:nav
`
	page := `<html><head><title>Reference 2.0</title>
<script type="text/xqueryp">` + script + `</script>
</head><body>
<input id="nav" type="button" data-kind="" data-id=""/>
<div id="content"><div class="empty"/></div>
</body></html>`
	host, err := core.LoadPage(page, "http://reference.example.com/",
		core.WithExtraFunctions(func(reg *runtime.Registry) {
			client.RegisterFunctions(reg)
		}))
	if err != nil {
		return nil, err
	}
	return &ClientSideApp{r: r, Host: host, Client: client}, nil
}

// Do performs one interaction in the browser.
func (a *ClientSideApp) Do(it Interaction) error {
	nav := a.Host.Page.ElementByID("nav")
	nav.SetAttr(dom.Name("data-kind"), it.Kind)
	nav.SetAttr(dom.Name("data-id"), it.ID)
	if err := a.Host.Click("nav"); err != nil {
		return err
	}
	if errs := a.Host.WaitIdle(0); len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// ContentHTML returns the currently rendered view.
func (a *ClientSideApp) ContentHTML() string {
	content := a.Host.Page.ElementByID("content")
	if c := content.FirstChild(); c != nil {
		return markup.Serialize(c)
	}
	return ""
}

// Replay runs a whole session client-side and reports the metrics.
func (a *ClientSideApp) Replay(session []Interaction) (Metrics, error) {
	arch := "client-side"
	a.r.Store.Stats.Reset()
	for _, it := range session {
		if err := a.Do(it); err != nil {
			return Metrics{}, err
		}
	}
	st := a.r.Store.Stats.Snapshot()
	return Metrics{
		Architecture:    arch,
		Interactions:    len(session),
		ServerRequests:  int(st.Requests),
		ServerBytes:     st.BytesServed,
		ServerQueries:   int(st.QueriesEvaluated),
		ClientFetches:   a.Client.Fetches,
		ClientCacheHits: a.Client.CacheHit,
	}, nil
}
