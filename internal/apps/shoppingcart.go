package apps

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/jsruntime"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xmldb"
	"repro/internal/xquery"
)

// The shopping cart of §6.3: the same application twice. The XQuery-only
// variant is one language on every tier — an XQuery program on the
// server renders the page from the products database and the embedded
// XQuery handles the clicks. The baseline is the paper's "technology
// jungle": JSP-style server templating (Java + SQL) plus client-side
// JavaScript with embedded XPath.

// ProductsXML is the products database document.
const ProductsXML = `<products>
  <product><name>Keyboard</name><price>49</price></product>
  <product><name>Mouse</name><price>19</price></product>
  <product><name>Screen</name><price>199</price></product>
  <product><name>Computer</name><price>999</price></product>
</products>`

// NewProductStore builds the products database.
func NewProductStore() (*xmldb.Store, error) {
	s, err := xmldb.Open("")
	if err != nil {
		return nil, err
	}
	if err := s.PutXML("products.xml", ProductsXML); err != nil {
		return nil, err
	}
	return s, nil
}

// ShoppingCartXQueryServer is the entire XQuery-only application — the
// paper's §6.3 listing: the page, the database access (doc()) and the
// client-side event code in a single language. The CDATA section keeps
// the client script from being evaluated on the server.
const ShoppingCartXQueryServer = `
<html><head><script type="text/xqueryp"><![CDATA[
declare updating function local:buy($evt, $obj) {
  insert node <p>{string($obj/@id)}</p> as first
  into //div[@id="shoppingcart"]
};
on event "click" at //input[@type="button"]
attach listener local:buy
]]></script></head><body>
<div>Shopping cart</div>
<div id="shoppingcart"/>
<div id="products">{
  for $p in doc("products.xml")//product
  return <div>{string($p/name)}
    <input type="button" value="Buy" id="{$p/name}"/>
  </div>
}</div>
</body></html>`

// ShoppingCartJSPSource is the JSP/JavaScript/SQL stack as source text
// (the paper's first §6.3 listing, completed into a runnable-looking
// page). It is counted for E4; the executable equivalent is
// RunShoppingCartBaseline.
const ShoppingCartJSPSource = `
<html><head><script type='text/javascript'>
function buy(e) {
    newElement = document.createElement("p");
    elementText = document.createTextNode(e.target.getAttribute("id"));
    newElement.appendChild(elementText);
    var res = document.evaluate(
        "//div[@id='shoppingcart']", document, null,
        XPathResult.UNORDERED_NODE_SNAPSHOT_TYPE, null);
    res.snapshotItem(0).insertBefore(newElement,
        res.snapshotItem(0).firstChild);
}
</script></head><body>
<div>Shopping cart</div>
<div id="shoppingcart"></div>
<%
    Connection conn = DriverManager.getConnection(DB_URL, USER, PASS);
    Statement statement = conn.createStatement();
    ResultSet results =
        statement.executeQuery("SELECT * FROM PRODUCTS");
    while (results.next()) {
        out.println("<div>");
        String prodName = results.getString(1);
        out.println(prodName);
        out.println("<input type='button' value='Buy'");
        out.println("id='" + prodName + "'");
        out.println("onclick='buy(event)'/></div>");
    }
    results.close();
    statement.close();
    conn.close();
%>
</body></html>`

// RenderShoppingCartXQuery runs the server half of the XQuery-only
// application: the page constructor evaluates against the products
// database and the result is serialized for the browser.
func RenderShoppingCartXQuery(store *xmldb.Store) (string, error) {
	e := xquery.New()
	prog, err := e.Compile(ShoppingCartXQueryServer)
	if err != nil {
		return "", err
	}
	res, err := prog.Run(xquery.RunConfig{Docs: store.Resolver(), Sequential: true})
	if err != nil {
		return "", err
	}
	page, err := res.Value.One()
	if err != nil {
		return "", err
	}
	n, ok := xdm.IsNode(page)
	if !ok {
		return "", fmt.Errorf("apps: server program did not return a page node")
	}
	return markup.SerializeHTML(n), nil
}

// RunShoppingCartXQuery renders the page server-side, loads it in the
// plug-in host and clicks Buy for each named product. It returns the
// cart contents in order.
func RunShoppingCartXQuery(store *xmldb.Store, buys []string) ([]string, *core.Host, error) {
	pageSrc, err := RenderShoppingCartXQuery(store)
	if err != nil {
		return nil, nil, err
	}
	h, err := core.LoadPage(pageSrc, "http://shop.example.com/cart")
	if err != nil {
		return nil, nil, err
	}
	for _, name := range buys {
		if err := h.Click(name); err != nil {
			return nil, nil, err
		}
	}
	return cartContents(h.Page), h, nil
}

// RunShoppingCartBaseline is the executable JSP+JS stack: Go string
// templating plays the JSP/SQL server half, the jsruntime baseline
// plays the client half.
func RunShoppingCartBaseline(store *xmldb.Store, buys []string) ([]string, error) {
	// "Server": SELECT * FROM PRODUCTS, print HTML.
	products, ok := store.Get("products.xml")
	if !ok {
		return nil, fmt.Errorf("apps: products.xml missing")
	}
	var b strings.Builder
	b.WriteString(`<html><body><div>Shopping cart</div><div id="shoppingcart"></div>`)
	for _, p := range products.Elements("product") {
		name := p.Elements("name")[0].StringValue()
		fmt.Fprintf(&b, `<div>%s<input type='button' value='Buy' id='%s'/></div>`, name, name)
	}
	b.WriteString(`</body></html>`)

	// "Client": the buy(e) handler of the paper's listing.
	page, err := markup.ParseHTML(b.String())
	if err != nil {
		return nil, err
	}
	d := jsruntime.NewDocument(page)
	buy := func(e *dom.Event) {
		newElement := d.CreateElement("p")
		elementText := d.CreateTextNode(e.Target.AttrValue("id"))
		newElement.AppendChild(elementText)
		res, err := d.Evaluate(`//div[@id='shoppingcart']`)
		if err != nil || res.SnapshotLength() == 0 {
			return
		}
		cart := res.SnapshotItem(0)
		cart.InsertBefore(newElement, cart.FirstChild())
	}
	for _, btn := range page.Elements("input") {
		if btn.AttrValue("type") == "button" {
			n := btn
			(&jsWrap{d, n}).addEventListener("click", buy)
		}
	}
	for _, name := range buys {
		el := page.ElementByID(name)
		if el == nil {
			return nil, fmt.Errorf("apps: no product %q", name)
		}
		el.DispatchEvent(&dom.Event{Type: "click", Bubbles: true, Button: 1})
	}
	return cartContents(page), nil
}

type jsWrap struct {
	d *jsruntime.Document
	n *dom.Node
}

func (w *jsWrap) addEventListener(typ string, fn func(*dom.Event)) {
	w.n.AddEventListener(typ, false, nil, fn)
}

// cartContents lists the cart entries top to bottom.
func cartContents(page *dom.Node) []string {
	cart := page.ElementByID("shoppingcart")
	if cart == nil {
		return nil
	}
	var out []string
	for _, p := range cart.Children() {
		if p.Type == dom.ElementNode && p.Name.Local == "p" {
			out = append(out, p.StringValue())
		}
	}
	return out
}
