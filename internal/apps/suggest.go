package apps

import (
	"net/http/httptest"
	"time"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/rest"
)

// The AJAX suggest application of §4.4: typing into a text box calls a
// web service asynchronously through the "behind" construct; when the
// readyState reaches 4 the hint appears — "the call is non-blocking;
// the user keeps control of the user interface".

// SuggestServiceModule is the hint web service as an XQuery module.
const SuggestServiceModule = `module namespace ab = "http://example.com" port:2003;
declare option fn:webservice "true";
declare variable $ab:names := ("Anna", "Brittany", "Cinderella", "Diana",
  "Eva", "Fiona", "Gunda", "Hege", "Inga", "Johanna", "Kitty", "Linda");
declare function ab:getHint($str) {
  string-join(
    for $n in $ab:names
    where starts-with(lower-case($n), lower-case($str))
    return $n,
    ", ")
};`

// SuggestPage is the paper's §4.4 page, adapted to the reproduced
// grammar (the onkeyup attribute becomes an explicit listener
// registration — inline handler attributes are not part of the §4.3
// proposal).
func SuggestPage(wsdlURL string) string {
	return `<html><head>
<script type="text/xquery">
import module namespace ab = "http://example.com" at "` + wsdlURL + `";
declare updating function local:showHint($str as xs:string) {
  if (string-length($str) eq 0) then
    replace value of node //*[@id="txtHint"] with ""
  else
    on event "stateChanged"
    behind ab:getHint($str)
    attach listener local:onResult
};
declare updating function local:onResult($readyState, $result) {
  if ($readyState eq 4) then
    replace value of node //*[@id="txtHint"] with string($result)
  else ()
};
declare updating function local:onKey($evt, $obj) {
  local:showHint(string($obj/@value))
};
on event "keyup" at //input[@id="text1"]
attach listener local:onKey
</script></head><body>
<form>First Name: <input type="text" id="text1" value=""/></form>
<p>Suggestions: <span id="txtHint"></span></p>
</body></html>`
}

// Suggest is the running application: the service and the page.
type Suggest struct {
	Server *rest.ModuleServer
	TS     *httptest.Server
	Host   *core.Host
	Client *rest.Client
}

// NewSuggest starts the hint service and loads the page.
func NewSuggest() (*Suggest, error) {
	srv, err := rest.NewModuleServer(SuggestServiceModule, nil)
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	client := rest.NewClient(ts.Client())
	host, err := core.LoadPage(SuggestPage(ts.URL+"/wsdl"), "http://suggest.example.com/",
		core.WithModuleResolver(client.Resolver()))
	if err != nil {
		ts.Close()
		return nil, err
	}
	return &Suggest{Server: srv, TS: ts, Host: host, Client: client}, nil
}

// Type simulates the user typing: the box's value is set and a keyup
// fires; the hint arrives asynchronously.
func (s *Suggest) Type(text string) error {
	box := s.Host.Page.ElementByID("text1")
	box.SetAttr(dom.Name("value"), text)
	return s.Host.Keyup("text1", text[len(text)-1:])
}

// Hint returns the current suggestion text.
func (s *Suggest) Hint() string {
	return s.Host.Page.ElementByID("txtHint").StringValue()
}

// Wait blocks until pending calls complete.
func (s *Suggest) Wait() []error { return s.Host.WaitIdle(2 * time.Second) }

// Close stops the service.
func (s *Suggest) Close() { s.TS.Close() }
