// Package browser implements the Browser Object Model of paper §4.2: a
// window tree with locations, navigator and screen information, history,
// and the windows-as-XML view with pull accessors guarded by a security
// policy. It also provides the browser: function namespace and the CSS
// style store behind the paper's §4.5 grammar.
//
// The browser is headless: rendering is out of scope (the plug-in's
// observable behaviour is DOM-, BOM- and event-level), but everything a
// script can reach — window.status, location navigation, alerts,
// history, frames — behaves as the paper describes.
package browser

import (
	"errors"
	"fmt"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xquery/update"
)

// Window-write policy sentinels; applications match them with
// errors.Is (the facade re-exports them). Note that cross-origin
// *reads* are not errors: the policy renders hidden windows with no
// properties so accessors return the empty sequence (§4.2.1).
var (
	// ErrReadOnlyWindowProperty reports an update targeting a window
	// property that scripts may not write.
	ErrReadOnlyWindowProperty = errors.New("browser: window property is read-only")
	// ErrWindowUpdateUnsupported reports an update primitive other than
	// "replace value of node" aimed at window state.
	ErrWindowUpdateUnsupported = errors.New(`browser: only "replace value of node" is supported on window properties`)
)

// Location mirrors the JavaScript location object's fields.
type Location struct {
	Href     string
	Protocol string // "http:"
	Host     string // "host:port"
	Hostname string
	Port     string
	Pathname string
	Search   string
	Hash     string
}

// ParseLocation splits a URL into location fields.
func ParseLocation(href string) (Location, error) {
	u, err := url.Parse(href)
	if err != nil {
		return Location{}, fmt.Errorf("browser: invalid URL %q: %w", href, err)
	}
	loc := Location{
		Href:     href,
		Protocol: u.Scheme + ":",
		Host:     u.Host,
		Hostname: u.Hostname(),
		Port:     u.Port(),
		Pathname: u.Path,
		Hash:     u.Fragment,
	}
	if u.RawQuery != "" {
		loc.Search = "?" + u.RawQuery
	}
	return loc, nil
}

// Origin returns the scheme://host:port origin used by the same-origin
// policy.
func (l Location) Origin() string {
	return l.Protocol + "//" + l.Host
}

// Window is one browser window or frame.
type Window struct {
	Name         string
	Status       string
	Location     Location
	Document     *dom.Node
	LastModified time.Time
	Opener       *Window
	Closed       bool
	X, Y         int // window position (moveTo/moveBy)

	parent  *Window
	frames  []*Window
	history []string
	histPos int
}

// Parent returns the parent window (nil for top-level windows).
func (w *Window) Parent() *Window { return w.parent }

// Frames returns the child frames.
func (w *Window) Frames() []*Window { return w.frames }

// Top walks to the topmost ancestor window.
func (w *Window) Top() *Window {
	t := w
	for t.parent != nil {
		t = t.parent
	}
	return t
}

// AddFrame attaches a child frame.
func (w *Window) AddFrame(f *Window) {
	f.parent = w
	w.frames = append(w.frames, f)
}

// History returns the window's visited URLs and current position.
func (w *Window) History() ([]string, int) { return w.history, w.histPos }

// SecurityPolicy decides whether script running in one window may read
// or write another window's properties (paper §4.2.1).
type SecurityPolicy interface {
	CanAccess(from, to *Window) bool
}

// SameOriginPolicy allows access only between windows whose locations
// share scheme, host and port — "like in JavaScript" (§4.2.1).
type SameOriginPolicy struct{}

// CanAccess implements SecurityPolicy.
func (SameOriginPolicy) CanAccess(from, to *Window) bool {
	if from == nil || to == nil || from == to {
		return true
	}
	return from.Location.Origin() == to.Location.Origin()
}

// AllowAllPolicy disables the checks (single-origin tests and tools).
type AllowAllPolicy struct{}

// CanAccess implements SecurityPolicy.
func (AllowAllPolicy) CanAccess(from, to *Window) bool { return true }

// ScreenInfo mirrors window.screen.
type ScreenInfo struct {
	Width, Height           int
	AvailWidth, AvailHeight int
	ColorDepth, PixelDepth  int
}

// NavigatorInfo mirrors window.navigator.
type NavigatorInfo struct {
	AppName    string
	AppVersion string
	UserAgent  string
	Platform   string
	Language   string
	Vendor     string
	CookiesOn  bool
}

// PageLoader fetches and parses the page for a URL during navigation.
type PageLoader func(url string) (*dom.Node, error)

// Browser is the headless browser state shared by all windows.
type Browser struct {
	mu     sync.Mutex
	top    *Window
	Policy SecurityPolicy
	Screen ScreenInfo
	Nav    NavigatorInfo
	Loader PageLoader
	Now    func() time.Time

	// UI capture: alerts raised, scripted prompt/confirm answers.
	Alerts         []string
	promptAnswers  []string
	confirmAnswers []bool
	writeSink      []string

	// Pull-view bindings: materialized window-tree nodes back to their
	// windows and properties.
	views map[*dom.Node]*Window
	props map[*dom.Node]propBinding
}

type propBinding struct {
	w    *Window
	prop string // "status", "location.href", "name"
}

// New creates a browser with a top window showing the given document at
// the given URL.
func New(href string, doc *dom.Node) (*Browser, error) {
	loc, err := ParseLocation(href)
	if err != nil {
		return nil, err
	}
	b := &Browser{
		Policy: SameOriginPolicy{},
		Screen: ScreenInfo{Width: 1280, Height: 800, AvailWidth: 1280,
			AvailHeight: 770, ColorDepth: 24, PixelDepth: 24},
		Nav: NavigatorInfo{AppName: "XQIB", AppVersion: "1.0",
			UserAgent: "XQIB/1.0 (headless; Go)", Platform: "go",
			Language: "en", Vendor: "Systems Group", CookiesOn: true},
		Now:   time.Now,
		views: map[*dom.Node]*Window{},
		props: map[*dom.Node]propBinding{},
	}
	b.top = &Window{
		Name:         "top_window",
		Location:     loc,
		Document:     doc,
		LastModified: b.Now(),
		history:      []string{href},
	}
	if doc != nil {
		doc.BaseURI = href
	}
	return b, nil
}

// Top returns the top window.
func (b *Browser) Top() *Window { return b.top }

// FindWindow returns the first window in the tree with the given name.
func (b *Browser) FindWindow(name string) *Window {
	var find func(w *Window) *Window
	find = func(w *Window) *Window {
		if w.Name == name {
			return w
		}
		for _, f := range w.frames {
			if r := find(f); r != nil {
				return r
			}
		}
		return nil
	}
	return find(b.top)
}

// Navigate loads a new URL into a window: the loader fetches the page,
// the location and history update, and previously handed-out window
// views to the old origin become useless under the policy (§4.2.1).
func (b *Browser) Navigate(w *Window, href string) error {
	loc, err := ParseLocation(href)
	if err != nil {
		return err
	}
	var doc *dom.Node
	if b.Loader != nil {
		doc, err = b.Loader(href)
		if err != nil {
			return fmt.Errorf("browser: loading %q: %w", href, err)
		}
	} else {
		doc = dom.NewDocument()
	}
	doc.BaseURI = href
	b.mu.Lock()
	defer b.mu.Unlock()
	w.Location = loc
	w.Document = doc
	w.LastModified = b.Now()
	// Truncate forward history and append.
	if len(w.history) == 0 {
		w.history = []string{href}
	} else {
		w.history = append(w.history[:w.histPos+1], href)
	}
	w.histPos = len(w.history) - 1
	return nil
}

// HistoryGo moves delta entries through the window's history (negative
// is back) and reloads that URL.
func (b *Browser) HistoryGo(w *Window, delta int) error {
	pos := w.histPos + delta
	if pos < 0 || pos >= len(w.history) {
		return nil // browsers silently ignore out-of-range history moves
	}
	href := w.history[pos]
	loc, err := ParseLocation(href)
	if err != nil {
		return err
	}
	var doc *dom.Node
	if b.Loader != nil {
		if doc, err = b.Loader(href); err != nil {
			return err
		}
	} else {
		doc = dom.NewDocument()
	}
	doc.BaseURI = href
	b.mu.Lock()
	defer b.mu.Unlock()
	w.histPos = pos
	w.Location = loc
	w.Document = doc
	w.LastModified = b.Now()
	return nil
}

// OpenWindow creates a new top-level-like window opened from `from`.
// It is attached as a frame of the opener's top window so that
// browser:top()//window can see it, mirroring how the examples navigate
// the window tree.
func (b *Browser) OpenWindow(from *Window, href, name string) (*Window, error) {
	w := &Window{Name: name, Opener: from, LastModified: b.Now()}
	from.Top().AddFrame(w)
	if err := b.Navigate(w, href); err != nil {
		return nil, err
	}
	return w, nil
}

// CloseWindow marks a window closed and detaches it from its parent.
func (b *Browser) CloseWindow(w *Window) {
	w.Closed = true
	if w.parent == nil {
		return
	}
	for i, f := range w.parent.frames {
		if f == w {
			w.parent.frames = append(w.parent.frames[:i], w.parent.frames[i+1:]...)
			break
		}
	}
	w.parent = nil
}

// Alert records an alert message (the headless stand-in for a dialog).
func (b *Browser) Alert(msg string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.Alerts = append(b.Alerts, msg)
}

// QueuePromptAnswer schedules the next prompt() response.
func (b *Browser) QueuePromptAnswer(s string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.promptAnswers = append(b.promptAnswers, s)
}

// Prompt pops the next scripted prompt answer ("" if none).
func (b *Browser) Prompt(msg string) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.promptAnswers) == 0 {
		return ""
	}
	a := b.promptAnswers[0]
	b.promptAnswers = b.promptAnswers[1:]
	return a
}

// QueueConfirmAnswer schedules the next confirm() response.
func (b *Browser) QueueConfirmAnswer(v bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.confirmAnswers = append(b.confirmAnswers, v)
}

// Confirm pops the next scripted confirm answer (true if none).
func (b *Browser) Confirm(msg string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.confirmAnswers) == 0 {
		return true
	}
	a := b.confirmAnswers[0]
	b.confirmAnswers = b.confirmAnswers[1:]
	return a
}

// Write implements document.write-style output: text is appended to the
// window document's body (or the document root if there is no body).
func (b *Browser) Write(w *Window, text string) {
	b.mu.Lock()
	b.writeSink = append(b.writeSink, text)
	b.mu.Unlock()
	if w.Document == nil {
		return
	}
	target := w.Document.DocumentElement()
	if target == nil {
		el := dom.NewElement(dom.Name("html"))
		_ = w.Document.AppendChild(el)
		target = el
	}
	if bodies := target.Elements("body"); len(bodies) > 0 {
		target = bodies[0]
	}
	// document.write parses its argument as markup when it looks like
	// markup; plain text otherwise.
	if strings.Contains(text, "<") {
		if nodes, err := markup.ParseFragment(text); err == nil {
			for _, n := range nodes {
				_ = target.AppendChild(n)
			}
			return
		}
	}
	_ = target.AppendChild(dom.NewText(text))
}

// Written returns everything passed to Write (test observability).
func (b *Browser) Written() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.writeSink...)
}

// --- windows as XML (pull views, §4.2.1) -----------------------------------

// ResetViews drops the node→window bindings of earlier materializations.
// The host calls this once per event-loop turn to bound memory.
func (b *Browser) ResetViews() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.views = map[*dom.Node]*Window{}
	b.props = map[*dom.Node]propBinding{}
}

// WindowTree materializes the window tree as an XML element, evaluated
// from the viewer window's perspective: windows the policy hides are
// rendered with no properties at all, so "all accessors return an empty
// sequence" exactly as §4.2.1 requires. The function is pull-based —
// every call re-reads the live state, which is why the paper marks
// browser:top() as non-deterministic.
func (b *Browser) WindowTree(viewer *Window) *dom.Node {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.materializeWindow(b.top, viewer)
}

// ViewOf returns the materialized element for a specific window within
// a freshly pulled tree, or nil when hidden.
func (b *Browser) ViewOf(viewer, target *Window) *dom.Node {
	root := b.WindowTree(viewer)
	var found *dom.Node
	root.Walk(func(n *dom.Node) bool {
		b.mu.Lock()
		w := b.views[n]
		b.mu.Unlock()
		if w == target {
			found = n
			return false
		}
		return true
	})
	return found
}

func (b *Browser) materializeWindow(w, viewer *Window) *dom.Node {
	el := dom.NewElement(dom.Name("window"))
	b.views[el] = w
	if !b.Policy.CanAccess(viewer, w) {
		// Hidden window: an element with no properties, so every
		// accessor yields the empty sequence (§4.2.1). Frames are still
		// listed so the tree shape stays navigable, but they are
		// equally opaque unless individually accessible.
		frames := dom.NewElement(dom.Name("frames"))
		for _, f := range w.frames {
			_ = frames.AppendChild(b.materializeWindow(f, viewer))
		}
		_ = el.AppendChild(frames)
		return el
	}
	el.SetAttr(dom.Name("name"), w.Name)
	b.props[el.AttrNode(dom.Name("name"))] = propBinding{w, "name"}

	status := textElem("status", w.Status)
	b.props[status] = propBinding{w, "status"}
	_ = el.AppendChild(status)

	loc := dom.NewElement(dom.Name("location"))
	for _, p := range []struct{ name, val, prop string }{
		{"href", w.Location.Href, "location.href"},
		{"protocol", w.Location.Protocol, ""},
		{"host", w.Location.Host, ""},
		{"hostname", w.Location.Hostname, ""},
		{"port", w.Location.Port, ""},
		{"pathname", w.Location.Pathname, ""},
		{"search", w.Location.Search, ""},
		{"hash", w.Location.Hash, ""},
	} {
		e := textElem(p.name, p.val)
		if p.prop != "" {
			b.props[e] = propBinding{w, p.prop}
		}
		_ = loc.AppendChild(e)
	}
	_ = el.AppendChild(loc)

	_ = el.AppendChild(textElem("lastModified", w.LastModified.Format("2006-01-02T15:04:05")))
	_ = el.AppendChild(textElem("closed", boolStr(w.Closed)))

	frames := dom.NewElement(dom.Name("frames"))
	for _, f := range w.frames {
		_ = frames.AppendChild(b.materializeWindow(f, viewer))
	}
	_ = el.AppendChild(frames)
	return el
}

func textElem(name, val string) *dom.Node {
	e := dom.NewElement(dom.Name(name))
	if val != "" {
		_ = e.AppendChild(dom.NewText(val))
	}
	return e
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// WindowOf resolves a materialized window element (from any earlier
// pull this event-loop turn) back to its window.
func (b *Browser) WindowOf(n *dom.Node) (*Window, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	w, ok := b.views[n]
	return w, ok
}

// ScreenTree materializes window.screen as XML (§4.2.2).
func (b *Browser) ScreenTree() *dom.Node {
	el := dom.NewElement(dom.Name("screen"))
	for _, p := range []struct {
		name string
		val  int
	}{
		{"width", b.Screen.Width}, {"height", b.Screen.Height},
		{"availWidth", b.Screen.AvailWidth}, {"availHeight", b.Screen.AvailHeight},
		{"colorDepth", b.Screen.ColorDepth}, {"pixelDepth", b.Screen.PixelDepth},
	} {
		_ = el.AppendChild(textElem(p.name, fmt.Sprintf("%d", p.val)))
	}
	return el
}

// NavigatorTree materializes window.navigator as XML (§4.2.2).
func (b *Browser) NavigatorTree() *dom.Node {
	el := dom.NewElement(dom.Name("navigator"))
	for _, p := range []struct{ name, val string }{
		{"appName", b.Nav.AppName},
		{"appVersion", b.Nav.AppVersion},
		{"userAgent", b.Nav.UserAgent},
		{"platform", b.Nav.Platform},
		{"language", b.Nav.Language},
		{"vendor", b.Nav.Vendor},
		{"cookieEnabled", boolStr(b.Nav.CookiesOn)},
	} {
		_ = el.AppendChild(textElem(p.name, p.val))
	}
	return el
}

// ApplyUpdate routes an update primitive targeting a materialized
// window-tree node back to the underlying window state: replacing the
// value of a status or location/href element changes the window (the
// paper's "the window element can be manipulated using the XQuery
// Update Facility"). It reports whether the primitive was a window-tree
// write.
func (b *Browser) ApplyUpdate(pr update.Primitive) (bool, error) {
	b.mu.Lock()
	binding, ok := b.props[pr.Target]
	b.mu.Unlock()
	if !ok {
		return false, nil
	}
	if pr.Kind != update.ReplaceValue {
		return true, ErrWindowUpdateUnsupported
	}
	switch binding.prop {
	case "status":
		binding.w.Status = pr.Value
	case "name":
		binding.w.Name = pr.Value
	case "location.href":
		return true, b.Navigate(binding.w, pr.Value)
	default:
		return true, fmt.Errorf("%w: %q", ErrReadOnlyWindowProperty, binding.prop)
	}
	return true, nil
}
