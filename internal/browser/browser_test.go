package browser

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xquery/update"
)

func newBrowser(t *testing.T, href string) *Browser {
	t.Helper()
	doc, err := markup.ParseHTML(`<html><body/></html>`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(href, doc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParseLocation(t *testing.T) {
	loc, err := ParseLocation("http://www.dbis.ethz.ch:8080/path/page.html?q=1#frag")
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct{ got, want string }{
		{loc.Protocol, "http:"},
		{loc.Host, "www.dbis.ethz.ch:8080"},
		{loc.Hostname, "www.dbis.ethz.ch"},
		{loc.Port, "8080"},
		{loc.Pathname, "/path/page.html"},
		{loc.Search, "?q=1"},
		{loc.Hash, "frag"},
		{loc.Origin(), "http://www.dbis.ethz.ch:8080"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("got %q, want %q", tt.got, tt.want)
		}
	}
}

func TestSameOriginPolicy(t *testing.T) {
	p := SameOriginPolicy{}
	w := func(href string) *Window {
		loc, _ := ParseLocation(href)
		return &Window{Location: loc}
	}
	a1 := w("http://a.com/x")
	a2 := w("http://a.com/y")
	bOther := w("http://b.com/x")
	aTLS := w("https://a.com/x")
	if !p.CanAccess(a1, a2) {
		t.Error("same origin must be allowed")
	}
	if p.CanAccess(a1, bOther) {
		t.Error("cross host must be denied")
	}
	if p.CanAccess(a1, aTLS) {
		t.Error("cross scheme must be denied")
	}
	if !p.CanAccess(a1, a1) {
		t.Error("self access must be allowed")
	}
}

func TestWindowTreeMaterialization(t *testing.T) {
	b := newBrowser(t, "http://example.com/")
	child := &Window{Name: "child1", Status: "First child"}
	loc, _ := ParseLocation("http://example.com/frame")
	child.Location = loc
	b.Top().AddFrame(child)

	tree := b.WindowTree(b.Top())
	if tree.AttrValue("name") != "top_window" {
		t.Errorf("top name = %q", tree.AttrValue("name"))
	}
	frames := tree.Elements("frames")[0]
	if len(frames.Children()) != 1 {
		t.Fatalf("frames = %d", len(frames.Children()))
	}
	cw := frames.Children()[0]
	if cw.AttrValue("name") != "child1" {
		t.Errorf("child name = %q", cw.AttrValue("name"))
	}
	// Node→window mapping.
	w, ok := b.WindowOf(cw)
	if !ok || w != child {
		t.Error("WindowOf failed")
	}
	// Status is readable.
	found := false
	for _, c := range cw.Children() {
		if c.Name.Local == "status" && c.StringValue() == "First child" {
			found = true
		}
	}
	if !found {
		t.Error("status not materialized")
	}
}

func TestWindowTreeHiddenCrossOrigin(t *testing.T) {
	b := newBrowser(t, "http://a.com/")
	victim := &Window{Name: "victim", Status: "secret"}
	loc, _ := ParseLocation("https://bank.org/account")
	victim.Location = loc
	b.Top().AddFrame(victim)

	tree := b.WindowTree(b.Top())
	out := markup.Serialize(tree)
	if strings.Contains(out, "secret") || strings.Contains(out, "bank.org") {
		t.Errorf("cross-origin data leaked: %s", out)
	}
}

func TestWindowTreePullIsFresh(t *testing.T) {
	// The paper marks browser:top() non-deterministic: state changes
	// between pulls must be visible.
	b := newBrowser(t, "http://a.com/")
	t1 := b.WindowTree(b.Top())
	b.Top().Status = "changed"
	t2 := b.WindowTree(b.Top())
	s1 := t1.Elements("status")[0].StringValue()
	s2 := t2.Elements("status")[0].StringValue()
	if s1 != "" || s2 != "changed" {
		t.Errorf("pull snapshots: %q / %q", s1, s2)
	}
}

func TestApplyUpdateStatusAndNavigate(t *testing.T) {
	b := newBrowser(t, "http://a.com/")
	loaded := ""
	b.Loader = func(url string) (*dom.Node, error) {
		loaded = url
		return dom.NewDocument(), nil
	}
	tree := b.WindowTree(b.Top())
	status := tree.Elements("status")[0]
	handled, err := b.ApplyUpdate(update.Primitive{Kind: update.ReplaceValue, Target: status, Value: "Welcome"})
	if !handled || err != nil {
		t.Fatalf("status update: %v %v", handled, err)
	}
	if b.Top().Status != "Welcome" {
		t.Errorf("status = %q", b.Top().Status)
	}
	href := tree.Elements("href")[0]
	handled, err = b.ApplyUpdate(update.Primitive{Kind: update.ReplaceValue, Target: href, Value: "http://b.com/next"})
	if !handled || err != nil {
		t.Fatalf("href update: %v %v", handled, err)
	}
	if loaded != "http://b.com/next" || b.Top().Location.Hostname != "b.com" {
		t.Errorf("navigation: loaded=%q loc=%+v", loaded, b.Top().Location)
	}
	// Unrelated primitives are not handled.
	handled, _ = b.ApplyUpdate(update.Primitive{Kind: update.ReplaceValue, Target: dom.NewText("x"), Value: "v"})
	if handled {
		t.Error("unrelated target must not be handled")
	}
}

func TestHistory(t *testing.T) {
	b := newBrowser(t, "http://a.com/1")
	b.Loader = func(url string) (*dom.Node, error) { return dom.NewDocument(), nil }
	w := b.Top()
	if err := b.Navigate(w, "http://a.com/2"); err != nil {
		t.Fatal(err)
	}
	if err := b.Navigate(w, "http://a.com/3"); err != nil {
		t.Fatal(err)
	}
	if err := b.HistoryGo(w, -1); err != nil {
		t.Fatal(err)
	}
	if w.Location.Href != "http://a.com/2" {
		t.Errorf("back: %q", w.Location.Href)
	}
	if err := b.HistoryGo(w, -1); err != nil {
		t.Fatal(err)
	}
	if w.Location.Href != "http://a.com/1" {
		t.Errorf("back twice: %q", w.Location.Href)
	}
	_ = b.HistoryGo(w, -1) // out of range: no-op
	if w.Location.Href != "http://a.com/1" {
		t.Errorf("underflow moved: %q", w.Location.Href)
	}
	if err := b.HistoryGo(w, 2); err != nil {
		t.Fatal(err)
	}
	if w.Location.Href != "http://a.com/3" {
		t.Errorf("forward: %q", w.Location.Href)
	}
	// Navigating truncates forward history.
	_ = b.HistoryGo(w, -2)
	_ = b.Navigate(w, "http://a.com/new")
	hist, pos := w.History()
	if len(hist) != 2 || pos != 1 || hist[1] != "http://a.com/new" {
		t.Errorf("history = %v @%d", hist, pos)
	}
}

func TestOpenCloseWindow(t *testing.T) {
	b := newBrowser(t, "http://a.com/")
	b.Loader = func(url string) (*dom.Node, error) { return dom.NewDocument(), nil }
	w, err := b.OpenWindow(b.Top(), "http://a.com/popup", "popup")
	if err != nil {
		t.Fatal(err)
	}
	if b.FindWindow("popup") != w {
		t.Error("opened window not in tree")
	}
	if w.Opener != b.Top() {
		t.Error("opener not set")
	}
	b.CloseWindow(w)
	if !w.Closed || b.FindWindow("popup") != nil {
		t.Error("close failed")
	}
}

func TestScreenNavigatorTrees(t *testing.T) {
	b := newBrowser(t, "http://a.com/")
	s := b.ScreenTree()
	if s.Elements("width")[0].StringValue() != "1280" {
		t.Error("screen width")
	}
	n := b.NavigatorTree()
	if n.Elements("appName")[0].StringValue() != "XQIB" {
		t.Error("navigator appName")
	}
}

func TestPromptConfirmQueues(t *testing.T) {
	b := newBrowser(t, "http://a.com/")
	b.QueuePromptAnswer("one")
	b.QueuePromptAnswer("two")
	if b.Prompt("?") != "one" || b.Prompt("?") != "two" || b.Prompt("?") != "" {
		t.Error("prompt queue order wrong")
	}
	b.QueueConfirmAnswer(false)
	if b.Confirm("?") != false || b.Confirm("?") != true {
		t.Error("confirm queue wrong")
	}
}

func TestWrite(t *testing.T) {
	doc, _ := markup.ParseHTML(`<html><body><p>x</p></body></html>`)
	b, _ := New("http://a.com/", doc)
	b.Write(b.Top(), "plain")
	b.Write(b.Top(), "<b>bold</b>")
	body := doc.Elements("body")[0]
	out := markup.SerializeHTML(body)
	if !strings.Contains(out, "plain") || !strings.Contains(out, "<b>bold</b>") {
		t.Errorf("write output: %s", out)
	}
	if len(b.Written()) != 2 {
		t.Error("write sink")
	}
}

func TestStyleHelpers(t *testing.T) {
	el := dom.NewElement(dom.Name("div"))
	SetStyleProp(el, "color", "red")
	SetStyleProp(el, "border-margin", "2px")
	if v, ok := GetStyleProp(el, "color"); !ok || v != "red" {
		t.Errorf("color = %q %v", v, ok)
	}
	SetStyleProp(el, "color", "blue")
	if v, _ := GetStyleProp(el, "color"); v != "blue" {
		t.Errorf("overwrite failed: %q", v)
	}
	if v, _ := GetStyleProp(el, "BORDER-MARGIN"); v != "2px" {
		t.Error("case-insensitive lookup failed")
	}
	RemoveStyleProp(el, "color")
	if _, ok := GetStyleProp(el, "color"); ok {
		t.Error("remove failed")
	}
	RemoveStyleProp(el, "border-margin")
	if _, ok := el.Attr(dom.Name("style")); ok {
		t.Error("empty style attribute should be removed")
	}
}

func TestParseStyleMalformed(t *testing.T) {
	decls := ParseStyle("color: red; ; broken; a:b:c; : novalue;")
	// "a:b:c" keeps everything after the first colon as the value.
	if len(decls) != 2 {
		t.Fatalf("decls = %v", decls)
	}
	if decls[1].Prop != "a" || decls[1].Value != "b:c" {
		t.Errorf("decl = %+v", decls[1])
	}
}

func TestFormatStyleRoundTrip(t *testing.T) {
	in := "color: red; width: 10px"
	if got := FormatStyle(ParseStyle(in)); got != in {
		t.Errorf("round trip: %q", got)
	}
}

// Property: a cross-origin window's serialized view never contains its
// status or location text, whatever the tree shape.
func TestNoCrossOriginLeakProperty(t *testing.T) {
	origins := []string{"http://a.com", "http://b.com", "https://a.com", "http://a.com:8080"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := newBrowserForProp(origins[rng.Intn(len(origins))])
		viewerOrigin := b.Top().Location.Origin()
		// Build a random frame forest with random origins and secrets.
		var secrets []string
		parents := []*Window{b.Top()}
		for i := 0; i < 1+rng.Intn(6); i++ {
			w := &Window{Name: fmt.Sprintf("w%d", i)}
			origin := origins[rng.Intn(len(origins))]
			loc, err := ParseLocation(fmt.Sprintf("%s/page%d", origin, i))
			if err != nil {
				return false
			}
			w.Location = loc
			w.Status = fmt.Sprintf("SECRET-%d-%d", seed, i)
			if loc.Origin() != viewerOrigin {
				secrets = append(secrets, w.Status, w.Location.Href)
			}
			p := parents[rng.Intn(len(parents))]
			p.AddFrame(w)
			parents = append(parents, w)
		}
		out := markup.Serialize(b.WindowTree(b.Top()))
		for _, s := range secrets {
			if strings.Contains(out, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func newBrowserForProp(href string) *Browser {
	doc, _ := markup.ParseHTML(`<html><body/></html>`)
	b, err := New(href+"/index.html", doc)
	if err != nil {
		panic(err)
	}
	return b
}
