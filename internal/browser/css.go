package browser

import (
	"strings"

	"repro/internal/dom"
)

// CSS style handling (paper §4.5). Styles live in the element's style
// attribute as "prop: value; prop: value" text — the paper's stated
// reason for the dedicated grammar is exactly that this string is not
// XML, so "set style"/"get style" manipulate it without pretending the
// properties are tree nodes.

// StyleDecl is one property declaration.
type StyleDecl struct {
	Prop  string
	Value string
}

// ParseStyle splits a style attribute value into declarations,
// preserving order and dropping malformed entries.
func ParseStyle(s string) []StyleDecl {
	var out []StyleDecl
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		i := strings.IndexByte(part, ':')
		if i <= 0 {
			continue
		}
		prop := strings.TrimSpace(part[:i])
		val := strings.TrimSpace(part[i+1:])
		if prop == "" {
			continue
		}
		out = append(out, StyleDecl{Prop: prop, Value: val})
	}
	return out
}

// FormatStyle renders declarations back to attribute text.
func FormatStyle(decls []StyleDecl) string {
	parts := make([]string, len(decls))
	for i, d := range decls {
		parts[i] = d.Prop + ": " + d.Value
	}
	return strings.Join(parts, "; ")
}

// GetStyleProp reads one style property from an element ("" and false
// when unset).
func GetStyleProp(el *dom.Node, prop string) (string, bool) {
	style, ok := el.Attr(dom.Name("style"))
	if !ok {
		return "", false
	}
	for _, d := range ParseStyle(style) {
		if strings.EqualFold(d.Prop, prop) {
			return d.Value, true
		}
	}
	return "", false
}

// SetStyleProp sets one style property on an element, preserving the
// other declarations.
func SetStyleProp(el *dom.Node, prop, value string) {
	decls := ParseStyle(el.AttrValue("style"))
	for i, d := range decls {
		if strings.EqualFold(d.Prop, prop) {
			decls[i].Value = value
			el.SetAttr(dom.Name("style"), FormatStyle(decls))
			return
		}
	}
	decls = append(decls, StyleDecl{Prop: prop, Value: value})
	el.SetAttr(dom.Name("style"), FormatStyle(decls))
}

// RemoveStyleProp deletes a property from the element's style.
func RemoveStyleProp(el *dom.Node, prop string) {
	decls := ParseStyle(el.AttrValue("style"))
	out := decls[:0]
	for _, d := range decls {
		if !strings.EqualFold(d.Prop, prop) {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		el.RemoveAttr(dom.Name("style"))
		return
	}
	el.SetAttr(dom.Name("style"), FormatStyle(out))
}
