package browser

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/xdm"
	"repro/internal/xquery/parser"
	"repro/internal/xquery/runtime"
)

// The browser: function namespace (paper §4.2). Functions close over
// the browser and the window whose script is executing, so security
// checks always know the caller's origin.

func bName(local string) dom.QName {
	return dom.QName{Space: parser.BrowserNamespace, Prefix: "browser", Local: local}
}

// RegisterFunctions installs the browser: library for a script running
// in window w.
func RegisterFunctions(reg *runtime.Registry, b *Browser, w *Window) {
	add := func(local string, min, max int,
		f func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error)) {
		reg.Register(&runtime.Function{Name: bName(local), MinArgs: min, MaxArgs: max, Invoke: f})
	}
	str0 := func(args []xdm.Sequence) string {
		if len(args) == 0 || len(args[0]) == 0 {
			return ""
		}
		return xdm.Atomize(args[0][0]).String()
	}

	// browser:top() — the topmost window as XML (§4.2.1). Marked
	// non-deterministic in the paper: every call pulls fresh state.
	add("top", 0, 0, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return xdm.Singleton(xdm.NewNode(b.WindowTree(w))), nil
	})
	// browser:self() — the executing window's node, a descendant of the
	// tree that browser:top() returns.
	add("self", 0, 0, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		n := b.ViewOf(w, w)
		if n == nil {
			return nil, nil
		}
		return xdm.Singleton(xdm.NewNode(n)), nil
	})
	// browser:document($window?) — the document behind a window node
	// (§4.2.3); subject to the security check, empty sequence on
	// failure.
	add("document", 0, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		target := w
		if len(args) == 1 {
			it, err := args[0].AtMostOne()
			if err != nil {
				return nil, err
			}
			if it == nil {
				return nil, nil
			}
			n, ok := xdm.IsNode(it)
			if !ok {
				return nil, fmt.Errorf("browser:document expects a window node")
			}
			tw, ok := b.WindowOf(n)
			if !ok {
				return nil, fmt.Errorf("browser:document: not a window node")
			}
			target = tw
		}
		if !b.Policy.CanAccess(w, target) || target.Document == nil {
			return nil, nil // empty sequence on security failure (§4.2.3)
		}
		return xdm.Singleton(xdm.NewNode(target.Document)), nil
	})
	add("screen", 0, 0, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return xdm.Singleton(xdm.NewNode(b.ScreenTree())), nil
	})
	add("navigator", 0, 0, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return xdm.Singleton(xdm.NewNode(b.NavigatorTree())), nil
	})

	// Window-related functions (§4.2.4).
	add("alert", 1, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		b.Alert(str0(args))
		return nil, nil
	})
	add("prompt", 1, 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return xdm.Singleton(xdm.String(b.Prompt(str0(args)))), nil
	})
	add("confirm", 1, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return xdm.Singleton(xdm.Boolean(b.Confirm(str0(args)))), nil
	})
	add("windowOpen", 1, 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		name := ""
		if len(args) == 2 && len(args[1]) > 0 {
			name = xdm.Atomize(args[1][0]).String()
		}
		nw, err := b.OpenWindow(w, str0(args), name)
		if err != nil {
			return nil, err
		}
		if v := b.ViewOf(w, nw); v != nil {
			return xdm.Singleton(xdm.NewNode(v)), nil
		}
		return nil, nil
	})
	add("windowClose", 0, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		target := w
		if len(args) == 1 {
			it, err := args[0].AtMostOne()
			if err != nil || it == nil {
				return nil, err
			}
			n, _ := xdm.IsNode(it)
			if tw, ok := b.WindowOf(n); ok {
				target = tw
			}
		}
		if !b.Policy.CanAccess(w, target) {
			return nil, nil
		}
		b.CloseWindow(target)
		return nil, nil
	})
	add("windowMoveTo", 2, 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		x, y, err := twoInts(args)
		if err != nil {
			return nil, err
		}
		w.X, w.Y = x, y
		return nil, nil
	})
	add("windowMoveBy", 2, 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		x, y, err := twoInts(args)
		if err != nil {
			return nil, err
		}
		w.X += x
		w.Y += y
		return nil, nil
	})

	// History-related functions (§4.2.4).
	add("historyBack", 0, 0, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return nil, b.HistoryGo(w, -1)
	})
	add("historyForward", 0, 0, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return nil, b.HistoryGo(w, 1)
	})
	add("historyGo", 1, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		it, err := xdm.AtomizeSequence(args[0]).One()
		if err != nil {
			return nil, err
		}
		n, err := xdm.Cast(it, xdm.TInteger)
		if err != nil {
			return nil, err
		}
		return nil, b.HistoryGo(w, int(n.(xdm.Integer)))
	})

	// Document-related functions (§4.2.4) — the paper notes best
	// practice is the Update Facility instead, but provides them.
	add("write", 1, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		b.Write(w, str0(args))
		return nil, nil
	})
	add("writeln", 1, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		b.Write(w, str0(args)+"\n")
		return nil, nil
	})
}

func twoInts(args []xdm.Sequence) (int, int, error) {
	get := func(s xdm.Sequence) (int, error) {
		it, err := xdm.AtomizeSequence(s).One()
		if err != nil {
			return 0, err
		}
		n, err := xdm.Cast(it, xdm.TInteger)
		if err != nil {
			return 0, err
		}
		return int(n.(xdm.Integer)), nil
	}
	x, err := get(args[0])
	if err != nil {
		return 0, 0, err
	}
	y, err := get(args[1])
	if err != nil {
		return 0, 0, err
	}
	return x, y, nil
}
