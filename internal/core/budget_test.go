package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/xquery"
)

// budgetPage has one listener that queues an update and then blows the
// step budget, and one cheap listener that should still work afterwards.
const budgetPage = `<html><head><script type="text/xqueryp">
	declare updating function local:runaway($evt, $obj) {
		(insert node <div id="partial"/> into //div[@id="log"],
		 insert node <div id="never"/> into
			//div[@id="log"][every $i in 1 to 1000000 satisfies $i >= 0])
	};
	declare updating function local:small($evt, $obj) {
		insert node <div id="ok"/> into //div[@id="log"]
	};
	on event "click" at //input[@id="runaway"] attach listener local:runaway;
	on event "click" at //input[@id="small"] attach listener local:small
</script></head>
<body>
	<input type="button" id="runaway"/>
	<input type="button" id="small"/>
	<div id="log"/>
</body></html>`

// TestListenerBudgetExceeded is the acceptance scenario for per-query
// execution limits: a listener that exceeds its step budget fails with
// ErrBudgetExceeded, its already-queued pending updates are discarded
// (no partial PUL application), and later listeners get a fresh budget.
func TestListenerBudgetExceeded(t *testing.T) {
	h, err := LoadPage(budgetPage, "http://example.com/", WithQueryBudget(50_000, 0))
	if err != nil {
		t.Fatal(err)
	}
	before := h.SerializePage()
	updatesBefore := h.UpdateCount()

	if err := h.Click("runaway"); err != nil {
		t.Fatal(err)
	}
	errs := h.WaitIdle(time.Second)
	if len(errs) != 1 || !errors.Is(errs[0], xquery.ErrBudgetExceeded) {
		t.Fatalf("async errors = %v, want one ErrBudgetExceeded", errs)
	}
	// The first insert was queued before the budget tripped, but the
	// PUL must not be applied partially: the DOM is untouched.
	if got := h.SerializePage(); got != before {
		t.Errorf("DOM changed after budget-tripped listener:\n%s", got)
	}
	if n := h.UpdateCount(); n != updatesBefore {
		t.Errorf("update count %d, want %d (no primitives applied)", n, updatesBefore)
	}

	// A later listener runs with a fresh budget, unpoisoned by the
	// tripped one.
	if err := h.Click("small"); err != nil {
		t.Fatal(err)
	}
	if errs := h.WaitIdle(time.Second); len(errs) != 0 {
		t.Fatalf("small listener errors: %v", errs)
	}
	if got := h.SerializePage(); !strings.Contains(got, `id="ok"`) {
		t.Errorf("small listener's insert missing:\n%s", got)
	}
	if n := h.UpdateCount(); n != updatesBefore+1 {
		t.Errorf("update count %d, want %d", n, updatesBefore+1)
	}
}

// TestQueryBudgetTimeoutOnHost exercises the wall-clock half of
// WithQueryBudget through the same listener machinery.
func TestQueryBudgetTimeoutOnHost(t *testing.T) {
	h, err := LoadPage(budgetPage, "http://example.com/", WithQueryBudget(0, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Click("runaway"); err != nil {
		t.Fatal(err)
	}
	errs := h.WaitIdle(time.Second)
	if len(errs) != 1 || !errors.Is(errs[0], xquery.ErrBudgetExceeded) {
		t.Fatalf("async errors = %v, want one ErrBudgetExceeded", errs)
	}
}

// TestUnlimitedBudgetByDefault: pages loaded without WithQueryBudget
// keep the previous unlimited behaviour.
func TestUnlimitedBudgetByDefault(t *testing.T) {
	h, err := LoadPage(budgetPage, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Click("small"); err != nil {
		t.Fatal(err)
	}
	if errs := h.WaitIdle(time.Second); len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if got := h.SerializePage(); !strings.Contains(got, `id="ok"`) {
		t.Errorf("insert missing:\n%s", got)
	}
}
