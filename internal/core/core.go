// Package core is the paper's contribution: the XQIB plug-in host that
// makes XQuery a browser programming language. It implements the
// pipeline of Figure 1:
//
//  1. the browser receives an (X)HTML document and parses it into a DOM;
//  2. the plug-in initialises and extracts the XQuery scripts from
//     <script type="text/xquery"> tags;
//  3. the engine is called with the prolog followed by the main query,
//     which typically registers event listeners (via the §4.3 grammar);
//  4. the plug-in listens for browser events and, for each, calls the
//     engine with the corresponding listener; pending updates are applied
//     to the live DOM, which the engine's data model wraps directly.
//
// JavaScript-style scripts (internal/jsruntime) co-exist: they register
// listeners on the same DOM before the XQuery main runs — "currently,
// JavaScript is executed first, then XQuery" (§4.1) — and a single
// dispatch serialises handlers from both languages (§6.2).
package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/browser"
	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xqerr"
	"repro/internal/xquery"
	"repro/internal/xquery/runtime"
	"repro/internal/xquery/update"
)

// ScriptTypes are the MIME types the plug-in executes. "text/xqueryp"
// marks scripting-extension programs (paper §6.3 uses it).
var ScriptTypes = map[string]bool{"text/xquery": true, "text/xqueryp": true}

// StageTimes instruments the Figure-1 pipeline for experiment E1.
type StageTimes struct {
	ParsePage      time.Duration
	InitPlugin     time.Duration
	CompileScripts time.Duration
	RunMain        time.Duration
	Dispatches     int
	DispatchTotal  time.Duration
}

// Option configures a Host.
type Option func(*Host)

// WithJSSetup registers a JavaScript-style setup function that runs
// against the page DOM before the XQuery scripts (the browser executes
// JavaScript first, §4.1). Use it to install co-resident imperative
// handlers (internal/jsruntime).
func WithJSSetup(setup func(page *dom.Node)) Option {
	return func(h *Host) { h.jsSetups = append(h.jsSetups, setup) }
}

// WithModuleResolver forwards a module-import resolver to the engine
// (the REST substrate's web-service proxies, §3.4).
func WithModuleResolver(r runtime.ModuleResolver) Option {
	return func(h *Host) { h.resolver = r }
}

// WithPageLoader sets the navigation loader (location changes and
// history moves fetch pages through it).
func WithPageLoader(l browser.PageLoader) Option {
	return func(h *Host) { h.loader = l }
}

// WithPolicy overrides the same-origin security policy.
func WithPolicy(p browser.SecurityPolicy) Option {
	return func(h *Host) { h.policy = p }
}

// WithNavigator overrides the navigator identity (the paper's §4.2.4
// example branches on browser:navigator()/appName).
func WithNavigator(n browser.NavigatorInfo) Option {
	return func(h *Host) { h.navigator = &n }
}

// WithExtraFunctions registers additional built-ins (e.g. rest:get).
func WithExtraFunctions(register func(*runtime.Registry)) Option {
	return func(h *Host) { h.extraFns = append(h.extraFns, register) }
}

// WithBrowserSetup runs a configuration callback against the browser
// state after it is created but before any script executes (queueing
// prompt answers, adding frames, adjusting the screen).
func WithBrowserSetup(setup func(*browser.Browser)) Option {
	return func(h *Host) { h.browserSetups = append(h.browserSetups, setup) }
}

// WithProgramCache compiles the page's scripts through a shared
// program cache, so sessions loading the same page skip the parse (and,
// on the same engine, the compile). The serving layer installs the
// pool-wide cache here.
func WithProgramCache(c *xquery.Cache) Option {
	return func(h *Host) { h.cache = c }
}

// WithQueryBudget bounds every query evaluation on this page — the
// inline scripts at load time and each event-listener invocation gets
// a fresh budget of maxSteps evaluation steps (<= 0: unlimited) and
// timeout wall-clock time (<= 0: unlimited). A query that exceeds its
// budget fails with an error matching xquery.ErrBudgetExceeded and its
// pending updates are discarded, so a runaway listener cannot freeze
// the page or leave the DOM half-modified.
func WithQueryBudget(maxSteps int64, timeout time.Duration) Option {
	return func(h *Host) {
		h.maxQuerySteps = maxSteps
		h.queryTimeout = timeout
	}
}

// WithStoreResolvers binds a document store's resolvers to the page's
// engines: fn:doc and fn:collection read through them by default, and
// the §4.2.1 browser profile (which blocks those functions against
// arbitrary network fetch) is not applied — a host-provided store is
// trusted storage, not the open network. fn:put stays blocked
// unconditionally. The xqib facade's WithStore wires a *xmldb.Store
// through this.
func WithStoreResolvers(docs runtime.DocResolver, cols runtime.CollectionResolver,
	colsIter runtime.CollectionIterResolver) Option {
	return func(h *Host) {
		h.storeDocs, h.storeCols, h.storeColsIter = docs, cols, colsIter
	}
}

// Host is a loaded page with its executing plug-in.
type Host struct {
	Browser *browser.Browser
	Window  *browser.Window
	Engine  *xquery.Engine
	Page    *dom.Node
	Times   StageTimes

	programs      []*pageProgram
	jsSetups      []func(*dom.Node)
	resolver      runtime.ModuleResolver
	loader        browser.PageLoader
	policy        browser.SecurityPolicy
	navigator     *browser.NavigatorInfo
	extraFns      []func(*runtime.Registry)
	browserSetups []func(*browser.Browser)
	storeDocs     runtime.DocResolver
	storeCols     runtime.CollectionResolver
	storeColsIter runtime.CollectionIterResolver
	cache         *xquery.Cache
	ctx           context.Context
	maxQuerySteps int64
	queryTimeout  time.Duration

	mu          sync.Mutex
	queue       []func() error
	outstanding int
	asyncErrs   []error
	updateCount int
}

type pageProgram struct {
	prog *xquery.Program
	ctx  *runtime.Context
}

// LoadPage parses an XHTML page, boots the plug-in, runs JavaScript
// setups and then every XQuery script, and returns the live host.
func LoadPage(pageSrc, href string, opts ...Option) (*Host, error) {
	return LoadPageContext(context.Background(), pageSrc, href, opts...)
}

// LoadPageContext is LoadPage with cooperative cancellation: ctx covers
// the page-load scripts and every later listener invocation on this
// host, so cancelling it aborts in-flight queries (with an error
// matching ctx.Err()) instead of waiting out their wall-clock budgets.
// It is a panic-isolation boundary: a panic anywhere in parsing,
// compilation or the page-load scripts comes back as an error matching
// xqerr.ErrInternal with no partially built host.
func LoadPageContext(ctx context.Context, pageSrc, href string, opts ...Option) (h *Host, err error) {
	defer xqerr.RecoverInto(&err, "core.LoadPage")
	return loadPage(ctx, pageSrc, href, opts...)
}

func loadPage(ctx context.Context, pageSrc, href string, opts ...Option) (*Host, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	h := &Host{ctx: ctx}
	for _, o := range opts {
		o(h)
	}

	// Stage 1: parse the page, build the DOM.
	t0 := time.Now()
	page, err := markup.ParseHTML(pageSrc)
	if err != nil {
		return nil, fmt.Errorf("core: parsing page: %w", err)
	}
	h.Page = page
	h.Times.ParsePage = time.Since(t0)

	// Stage 2: initialise the plug-in — browser state, engine, script
	// extraction.
	t0 = time.Now()
	b, err := browser.New(href, page)
	if err != nil {
		return nil, err
	}
	if h.policy != nil {
		b.Policy = h.policy
	}
	if h.navigator != nil {
		b.Nav = *h.navigator
	}
	b.Loader = h.loader
	h.Browser = b
	h.Window = b.Top()
	for _, setup := range h.browserSetups {
		setup(b)
	}

	h.Engine = xquery.New(h.engineOptions(h.Window)...)
	scripts := ExtractScripts(page)
	h.Times.InitPlugin = time.Since(t0)

	// JavaScript runs first (§4.1).
	for _, setup := range h.jsSetups {
		setup(page)
	}

	// Stage 3: compile each script's prolog + main.
	t0 = time.Now()
	for _, src := range scripts {
		prog, err := h.compile(h.Engine, src)
		if err != nil {
			return nil, fmt.Errorf("core: compiling page script: %w", err)
		}
		ctx := prog.NewContext(h.runConfig())
		h.programs = append(h.programs, &pageProgram{prog: prog, ctx: ctx})
	}
	h.Times.CompileScripts = time.Since(t0)

	// Stage 4: run the main query of each script (this registers the
	// listeners), then fall back to the local:main() convention of §5.1.
	t0 = time.Now()
	for _, pp := range h.programs {
		if err := h.runMain(pp); err != nil {
			return nil, err
		}
	}
	h.Times.RunMain = time.Since(t0)

	// The page has loaded: fire the load event at the document.
	h.Dispatch(&dom.Event{Type: "load", Bubbles: false}, page)
	return h, nil
}

// LoadFrame loads a page into a new child frame of the current window:
// the frame gets its own document, its own scripts run with the frame
// as browser:self(), and it becomes visible to the parent's scripts
// through browser:top()//window[@name=...] (paper §4.2.1/§4.2.3 —
// subject to the same-origin policy).
func (h *Host) LoadFrame(name, pageSrc, href string) (*browser.Window, error) {
	page, err := markup.ParseHTML(pageSrc)
	if err != nil {
		return nil, fmt.Errorf("core: parsing frame page: %w", err)
	}
	loc, err := browser.ParseLocation(href)
	if err != nil {
		return nil, err
	}
	frame := &browser.Window{Name: name, Location: loc, Document: page}
	page.BaseURI = href
	h.Window.AddFrame(frame)

	// The frame's scripts execute with the frame as self and the frame
	// document as (ambient) context item.
	frameEngine := xquery.New(h.engineOptions(frame)...)
	for _, src := range ExtractScripts(page) {
		prog, err := h.compile(frameEngine, src)
		if err != nil {
			return nil, fmt.Errorf("core: compiling frame script: %w", err)
		}
		cfg := h.runConfig()
		cfg.ContextItem = xdm.NewNode(page)
		ctx := prog.NewContext(cfg)
		pp := &pageProgram{prog: prog, ctx: ctx}
		h.programs = append(h.programs, pp)
		if err := h.runMain(pp); err != nil {
			return nil, err
		}
	}
	h.Dispatch(&dom.Event{Type: "load", Bubbles: false}, page)
	return frame, nil
}

// ExtractScripts returns the text of every XQuery script tag on a page,
// in document order.
func ExtractScripts(page *dom.Node) []string {
	var out []string
	page.Walk(func(n *dom.Node) bool {
		if n.Type == dom.ElementNode && n.Name.Local == "script" &&
			ScriptTypes[strings.ToLower(n.AttrValue("type"))] {
			out = append(out, n.StringValue())
		}
		return true
	})
	return out
}

// engineOptions builds the engine configuration for a page or frame
// window. Without a bound store the §4.2.1 browser profile applies
// (fn:doc / fn:put blocked); with one, fn:doc and fn:collection route
// to the store's resolvers instead — trusted storage replaces the
// blocked open-network fetch, while fn:put stays blocked in funclib
// unconditionally.
func (h *Host) engineOptions(win *browser.Window) []xquery.Option {
	opts := []xquery.Option{
		xquery.WithFunctions(func(reg *runtime.Registry) {
			browser.RegisterFunctions(reg, h.Browser, win)
		}),
		// The §5.1 high-order-function registration route, alongside the
		// §4.3 grammar (ablation E8).
		xquery.WithFunctions(h.registerHOFEventAPI),
	}
	if h.storeDocs == nil && h.storeCols == nil && h.storeColsIter == nil {
		opts = append(opts, xquery.WithBrowserProfile())
	} else {
		if h.storeDocs != nil {
			opts = append(opts, xquery.WithDocResolver(h.storeDocs))
		}
		if h.storeCols != nil {
			opts = append(opts, xquery.WithCollectionResolver(h.storeCols))
		}
		if h.storeColsIter != nil {
			opts = append(opts, xquery.WithCollectionIterResolver(h.storeColsIter))
		}
	}
	for _, reg := range h.extraFns {
		opts = append(opts, xquery.WithFunctions(reg))
	}
	if h.resolver != nil {
		opts = append(opts, xquery.WithModuleResolver(h.resolver))
	}
	return opts
}

// compile routes a script through the shared program cache when one is
// installed.
func (h *Host) compile(e *xquery.Engine, src string) (*xquery.Program, error) {
	if h.cache != nil {
		return h.cache.Compile(e, src)
	}
	return e.Compile(src)
}

func (h *Host) runConfig() xquery.RunConfig {
	return xquery.RunConfig{
		Context:      h.ctx,
		ContextItem:  xdm.NewNode(h.Page),
		AmbientFocus: true,
		Hooks:        &hostHooks{h: h},
		Sequential:   true,
		OnUpdate:     h.onUpdate,
		MaxSteps:     h.maxQuerySteps,
		Timeout:      h.queryTimeout,
	}
}

func (h *Host) runMain(pp *pageProgram) error {
	if err := pp.ctx.InitGlobals(); err != nil {
		return err
	}
	body := pp.prog.Module().Body
	if body != nil {
		if _, err := h.finish(pp.ctx, func() (xdm.Sequence, error) {
			return pp.ctx.Eval(body)
		}); err != nil {
			return fmt.Errorf("core: running page script: %w", err)
		}
	}
	// §5.1: "the code executed when the page is loaded is put in a
	// function local:main()".
	mainName := dom.QName{Space: "http://www.w3.org/2005/xquery-local-functions", Local: "main"}
	if pp.prog.Runtime().Reg.Lookup(mainName, 0) != nil {
		if _, err := h.finish(pp.ctx, func() (xdm.Sequence, error) {
			return pp.ctx.CallFunction(mainName, nil)
		}); err != nil {
			return fmt.Errorf("core: running local:main(): %w", err)
		}
	}
	return nil
}

// finish evaluates with scripting snapshots and applies any remaining
// pending updates, routing window-tree write-backs to the browser. It
// is the host's evaluation boundary: a panicking query or listener
// recovers into an error matching xqerr.ErrInternal, and a mid-apply
// update failure rolls the page back (the apply is atomic), so the
// host survives both with a consistent DOM. Applies run through the
// update-independence partitioner with elimination off: the host keeps
// long-lived references into the page tree (listener targets, the
// window tree), so detached subtrees stay exactly as the serial order
// leaves them.
func (h *Host) finish(ctx *runtime.Context, eval func() (xdm.Sequence, error)) (val xdm.Sequence, err error) {
	defer xqerr.RecoverInto(&err, "core.Host.finish")
	applyBatch := func(pul *update.PUL) error {
		return pul.ApplyParallel(h.onUpdate, update.ParallelConfig{})
	}
	ctx.SnapshotApply = applyBatch
	val, err = eval()
	if err != nil {
		return nil, err
	}
	if ctx.PUL != nil && !ctx.PUL.Empty() {
		if err := applyBatch(ctx.PUL); err != nil {
			return nil, err
		}
	}
	return val, nil
}

// onUpdate observes every applied update primitive: window-tree writes
// are routed back to browser state (status, location navigation), and
// the mutation count drives the re-render accounting.
func (h *Host) onUpdate(pr update.Primitive) {
	h.mu.Lock()
	h.updateCount++
	h.mu.Unlock()
	if handled, err := h.Browser.ApplyUpdate(pr); handled && err != nil {
		h.recordAsyncErr(fmt.Errorf("core: window update: %w", err))
	}
}

// UpdateCount returns the number of DOM/BOM update primitives applied
// since the page loaded.
func (h *Host) UpdateCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.updateCount
}

// --- event dispatch ------------------------------------------------------------

// Dispatch sends an event through the DOM (capture/target/bubble);
// listeners from every language run in registration order. It then
// drains the completion queue so asynchronous results that arrived
// during handling are delivered (the browser's event serialisation,
// §6.2).
func (h *Host) Dispatch(ev *dom.Event, target *dom.Node) bool {
	t0 := time.Now()
	h.Browser.ResetViews()
	ok := target.DispatchEvent(ev)
	h.Times.Dispatches++
	h.Times.DispatchTotal += time.Since(t0)
	h.drain()
	return ok
}

// Click dispatches a bubbling left-button click at the element with the
// given id.
func (h *Host) Click(id string) error {
	el := h.Page.ElementByID(id)
	if el == nil {
		return fmt.Errorf("core: no element with id %q", id)
	}
	h.Dispatch(&dom.Event{Type: "click", Bubbles: true, Cancelable: true, Button: 1}, el)
	return nil
}

// Keyup dispatches a keyup event carrying the key at the element with
// the given id.
func (h *Host) Keyup(id, key string) error {
	el := h.Page.ElementByID(id)
	if el == nil {
		return fmt.Errorf("core: no element with id %q", id)
	}
	h.Dispatch(&dom.Event{Type: "keyup", Bubbles: true, Key: key}, el)
	return nil
}

// --- asynchronous completion queue (behind-calls, §4.4) ------------------------

func (h *Host) post(fn func() error) {
	h.mu.Lock()
	h.queue = append(h.queue, fn)
	h.mu.Unlock()
}

func (h *Host) recordAsyncErr(err error) {
	h.mu.Lock()
	h.asyncErrs = append(h.asyncErrs, err)
	h.mu.Unlock()
}

// drain runs queued completions on the caller's goroutine (the
// browser's single event-loop thread).
func (h *Host) drain() {
	for {
		h.mu.Lock()
		if len(h.queue) == 0 {
			h.mu.Unlock()
			return
		}
		fn := h.queue[0]
		h.queue = h.queue[1:]
		h.mu.Unlock()
		if err := fn(); err != nil {
			h.recordAsyncErr(err)
		}
	}
}

// WaitIdle blocks until all asynchronous calls have completed and their
// completions have been delivered, or the timeout elapses. It returns
// any asynchronous errors collected.
func (h *Host) WaitIdle(timeout time.Duration) []error {
	deadline := time.Now().Add(timeout)
	for {
		h.drain()
		h.mu.Lock()
		idle := h.outstanding == 0 && len(h.queue) == 0
		h.mu.Unlock()
		if idle {
			break
		}
		if time.Now().After(deadline) {
			h.recordAsyncErr(fmt.Errorf("core: WaitIdle timed out after %s", timeout))
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	errs := h.asyncErrs
	h.asyncErrs = nil
	return errs
}

// Alerts returns the alert messages raised so far.
func (h *Host) Alerts() []string { return append([]string(nil), h.Browser.Alerts...) }

// SerializePage renders the current page DOM as HTML.
func (h *Host) SerializePage() string { return markup.SerializeHTML(h.Page) }
