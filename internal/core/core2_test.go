package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/browser"
	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xquery"
)

// Second batch of host tests: the HOF registration route, script
// extraction, event materialisation, library-module imports in the
// browser, and pipeline instrumentation.

func TestHOFEventRegistration(t *testing.T) {
	// §5.1: the Zorba implementation registers listeners with
	// high-order functions instead of the grammar extension.
	page := `<html><head><script type="text/xquery">
		declare updating function local:l($evt, $obj) {
			insert node <hit/> into //div[@id="log"]
		};
		browser:addEventListener(//input[@id="b"], "click", "local:l")
	</script></head><body><input id="b"/><div id="log"/></body></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	_ = h.Click("b")
	_ = h.Click("b")
	if got := len(h.Page.ElementByID("log").Children()); got != 2 {
		t.Errorf("HOF-registered listener fired %d times", got)
	}
	// And removal.
	page2 := `<html><head><script type="text/xqueryp">
		declare updating function local:l($evt, $obj) {
			insert node <hit/> into //div[@id="log"]
		};
		{
			browser:addEventListener(//input[@id="b"], "click", "local:l");
			browser:removeEventListener(//input[@id="b"], "click", "local:l");
		}
	</script></head><body><input id="b"/><div id="log"/></body></html>`
	h2, err := LoadPage(page2, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	_ = h2.Click("b")
	if got := len(h2.Page.ElementByID("log").Children()); got != 0 {
		t.Errorf("removed HOF listener still fired %d times", got)
	}
}

func TestGrammarAndHOFAreIdempotentTogether(t *testing.T) {
	// Registering the same listener through both routes results in ONE
	// registration (same identity key), matching addEventListener's
	// duplicate suppression.
	page := `<html><head><script type="text/xqueryp">
		declare updating function local:l($evt, $obj) {
			insert node <hit/> into //div[@id="log"]
		};
		{
			on event "click" at //input[@id="b"] attach listener local:l;
			browser:addEventListener(//input[@id="b"], "click", "local:l");
		}
	</script></head><body><input id="b"/><div id="log"/></body></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	_ = h.Click("b")
	if got := len(h.Page.ElementByID("log").Children()); got != 1 {
		t.Errorf("duplicate registration fired %d times, want 1", got)
	}
}

func TestExtractScripts(t *testing.T) {
	page, err := markup.ParseHTML(`<html><head>
		<script type="text/xquery">one()</script>
		<script type="text/javascript">ignored()</script>
		<script type="TEXT/XQUERYP">two()</script>
		<script>also ignored</script>
	</head><body><script type="text/xquery">three()</script></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	scripts := ExtractScripts(page)
	if len(scripts) != 3 {
		t.Fatalf("scripts = %d: %q", len(scripts), scripts)
	}
	for i, want := range []string{"one()", "two()", "three()"} {
		if strings.TrimSpace(scripts[i]) != want {
			t.Errorf("script %d = %q", i, scripts[i])
		}
	}
}

func TestEventToXML(t *testing.T) {
	target := dom.NewElement(dom.Name("input"))
	target.SetAttr(dom.Name("id"), "btn")
	ev := &dom.Event{Type: "click", AltKey: true, Button: 2, Key: "x",
		ClientX: 10, ClientY: 20, Target: target,
		Detail: map[string]string{"custom": "v"}}
	el := EventToXML(ev)
	get := func(name string) string {
		for _, c := range el.Children() {
			if c.Name.Local == name {
				return c.StringValue()
			}
		}
		return "<missing>"
	}
	checks := map[string]string{
		"type": "click", "altKey": "true", "ctrlKey": "false",
		"button": "2", "key": "x", "clientX": "10", "clientY": "20",
		"targetName": "input", "targetId": "btn", "custom": "v",
	}
	for name, want := range checks {
		if got := get(name); got != want {
			t.Errorf("event/%s = %q, want %q", name, got, want)
		}
	}
}

func TestLibraryModuleImportInBrowser(t *testing.T) {
	resolver := xquery.NewLocalResolver(map[string]string{
		"urn:fmt": `module namespace f = "urn:fmt";
			declare function f:shout($s) { concat(upper-case($s), "!") };`,
	})
	page := `<html><head><script type="text/xquery">
		import module namespace f = "urn:fmt";
		browser:alert(f:shout("hello"))
	</script></head><body/></html>`
	h, err := LoadPage(page, "http://example.com/", WithModuleResolver(resolver))
	if err != nil {
		t.Fatal(err)
	}
	if a := h.Alerts(); len(a) != 1 || a[0] != "HELLO!" {
		t.Errorf("alerts = %v", a)
	}
}

func TestStageTimesPopulated(t *testing.T) {
	h, err := LoadPage(`<html><head><script type="text/xquery">1</script></head><body/></html>`,
		"http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if h.Times.ParsePage <= 0 || h.Times.InitPlugin <= 0 ||
		h.Times.CompileScripts <= 0 || h.Times.RunMain <= 0 {
		t.Errorf("stage times not instrumented: %+v", h.Times)
	}
	// The load event counts as the first dispatch.
	if h.Times.Dispatches < 1 {
		t.Errorf("dispatches = %d", h.Times.Dispatches)
	}
}

func TestCompileErrorSurfacesPageContext(t *testing.T) {
	_, err := LoadPage(`<html><head><script type="text/xquery">1 +</script></head><body/></html>`,
		"http://example.com/")
	if err == nil || !strings.Contains(err.Error(), "compiling page script") {
		t.Errorf("error = %v", err)
	}
}

func TestListenerErrorsReportedAsync(t *testing.T) {
	// A listener that fails at runtime must not crash the dispatch; the
	// error is surfaced through WaitIdle.
	page := `<html><head><script type="text/xquery">
		declare sequential function local:bad($evt, $obj) {
			browser:alert(1 div 0);
		};
		on event "click" at //input[@id="b"] attach listener local:bad
	</script></head><body><input id="b"/></body></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	_ = h.Click("b") // must not panic
	errs := h.WaitIdle(0)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "division by zero") {
		t.Errorf("listener error lost: %v", errs)
	}
}

func TestUpdateCountAcrossListeners(t *testing.T) {
	page := `<html><head><script type="text/xquery">
		declare updating function local:two($evt, $obj) {
			(insert node <x/> into //body, insert node <y/> into //body)
		};
		on event "click" at //input[@id="b"] attach listener local:two
	</script></head><body><input id="b"/></body></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	before := h.UpdateCount()
	_ = h.Click("b")
	if got := h.UpdateCount() - before; got != 2 {
		t.Errorf("update delta = %d, want 2", got)
	}
}

func TestKeyupDeliversKey(t *testing.T) {
	page := `<html><head><script type="text/xquery">
		declare sequential function local:k($evt, $obj) {
			browser:alert(string($evt/key));
		};
		on event "keyup" at //input[@id="t"] attach listener local:k
	</script></head><body><input id="t"/></body></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Keyup("t", "Q"); err != nil {
		t.Fatal(err)
	}
	if a := h.Alerts(); len(a) != 1 || a[0] != "Q" {
		t.Errorf("alerts = %v", a)
	}
}

func TestWindowFrameNavigationExamples(t *testing.T) {
	// §4.2.1: declare variable $win := browser:self()/frames/window[2];
	// browser:alert($win/lastModified); and changing $win's location.
	loaded := []string{}
	loader := func(url string) (*dom.Node, error) {
		loaded = append(loaded, url)
		return dom.NewDocument(), nil
	}
	page := `<html><head><script type="text/xqueryp">
	{
		declare variable $win := browser:self()/frames/window[2];
		browser:alert(concat("second frame: ", string($win/@name)));
		browser:alert(string(exists($win/lastModified)));
		replace value of node $win/location/href
		with "http://www.dbis.ethz.ch/";
	}
	</script></head><body/></html>`
	h, err := LoadPage(page, "http://example.com/", WithPageLoader(loader),
		WithBrowserSetup(func(b *browser.Browser) {
			for i, name := range []string{"first", "second"} {
				w := &browser.Window{Name: name}
				loc, _ := browser.ParseLocation(fmt.Sprintf("http://example.com/f%d", i))
				w.Location = loc
				b.Top().AddFrame(w)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	a := h.Alerts()
	if len(a) != 2 || a[0] != "second frame: second" || a[1] != "true" {
		t.Errorf("alerts = %v", a)
	}
	if len(loaded) != 1 || loaded[0] != "http://www.dbis.ethz.ch/" {
		t.Errorf("navigation = %v", loaded)
	}
	second := h.Browser.FindWindow("second")
	if second.Location.Hostname != "www.dbis.ethz.ch" {
		t.Errorf("frame location = %+v", second.Location)
	}
	// The top window did NOT navigate.
	if h.Window.Location.Hostname != "example.com" {
		t.Errorf("top window navigated: %+v", h.Window.Location)
	}
}

func TestSerializePageReflectsUpdates(t *testing.T) {
	h, err := LoadPage(`<html><head><script type="text/xquery">
		insert node <p class="new">added</p> into //body
	</script></head><body/></html>`, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(h.SerializePage(), `<p class="new">added</p>`) {
		t.Errorf("page = %s", h.SerializePage())
	}
}

func TestLoadFrameCrossFrameManipulation(t *testing.T) {
	// §4.2.3: access a child window's document and insert into it.
	h, err := LoadPage(`<html><head><script type="text/xquery">
		declare updating function local:stamp($evt, $obj) {
			let $w := browser:top()//window[@name="child"]
			let $d := browser:document($w)
			return insert node <stamp from="parent"/> into $d//body
		};
		on event "click" at //input[@id="go"] attach listener local:stamp
	</script></head><body><input id="go"/></body></html>`,
		"http://example.com/parent.html")
	if err != nil {
		t.Fatal(err)
	}
	frame, err := h.LoadFrame("child", `<html><head><script type="text/xquery">
		browser:alert(concat("frame loaded as ", string(browser:self()/@name)))
	</script></head><body><p>frame content</p></body></html>`,
		"http://example.com/frame.html")
	if err != nil {
		t.Fatal(err)
	}
	// The frame's own script ran with the frame as self.
	a := h.Alerts()
	if len(a) != 1 || a[0] != "frame loaded as child" {
		t.Fatalf("frame alerts = %v", a)
	}
	// The parent manipulates the frame's document.
	if err := h.Click("go"); err != nil {
		t.Fatal(err)
	}
	if errs := h.WaitIdle(0); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	out := markup.SerializeHTML(frame.Document)
	if !strings.Contains(out, `<stamp from="parent"/>`) {
		t.Errorf("frame document = %s", out)
	}
	// The parent's own body is untouched (its script text mentions
	// "stamp", so check the body element, not the whole page).
	parentBody := h.Page.Elements("body")[0]
	if strings.Contains(markup.SerializeHTML(parentBody), "stamp") {
		t.Error("stamp leaked into the parent document")
	}
}

func TestLoadFrameCrossOriginDocumentDenied(t *testing.T) {
	// §4.2.3: browser:document on a cross-origin window yields the
	// empty sequence, so the insert has nothing to target.
	h, err := LoadPage(`<html><head><script type="text/xquery">
		declare sequential function local:probe($evt, $obj) {
			browser:alert(string(count(
				browser:document(browser:top()//window[@name="foreign"]))));
		};
		on event "click" at //input[@id="go"] attach listener local:probe
	</script></head><body><input id="go"/></body></html>`,
		"http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.LoadFrame("foreign", `<html><body><p>secret</p></body></html>`,
		"https://other.example.org/"); err != nil {
		t.Fatal(err)
	}
	_ = h.Click("go")
	a := h.Alerts()
	if len(a) != 1 || a[0] != "0" {
		t.Errorf("cross-origin document count = %v, want [0]", a)
	}
}
