package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/browser"
	"repro/internal/dom"
	"repro/internal/xdm"
	"repro/internal/xquery/runtime"
)

// TestHelloWorld is the paper's §4.1 Hello World page.
func TestHelloWorld(t *testing.T) {
	page := `<html><head>
		<title>Hello World Page</title>
		<script type="text/xquery">
			browser:alert("Hello, World!")
		</script>
	</head><body/></html>`
	h, err := LoadPage(page, "http://www.example.com/hello.html")
	if err != nil {
		t.Fatal(err)
	}
	alerts := h.Alerts()
	if len(alerts) != 1 || alerts[0] != "Hello, World!" {
		t.Errorf("alerts = %v", alerts)
	}
}

func TestLocalMainConvention(t *testing.T) {
	// §5.1: code executed at load time may be put in local:main().
	page := `<html><head><script type="text/xquery">
		declare function local:main() { browser:alert("from main") };
	</script></head><body/></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if a := h.Alerts(); len(a) != 1 || a[0] != "from main" {
		t.Errorf("alerts = %v", a)
	}
}

// TestEventAttachAndClick exercises the §4.3.1 event grammar end to end.
func TestEventAttachAndClick(t *testing.T) {
	page := `<html><head><script type="text/xquery">
		declare sequential function local:myEventListener($evt, $obj) {
			browser:alert(concat("Event occured: ", $evt/type, " at ", $obj/@id));
		};
		on event "click" at //input[@id="button"]
		attach listener local:myEventListener
	</script></head>
	<body><input type="button" id="button" value="Push me"/></body></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Click("button"); err != nil {
		t.Fatal(err)
	}
	a := h.Alerts()
	if len(a) != 1 || a[0] != "Event occured: click at button" {
		t.Errorf("alerts = %v", a)
	}
	// A second click fires again.
	_ = h.Click("button")
	if len(h.Alerts()) != 2 {
		t.Errorf("second click did not fire: %v", h.Alerts())
	}
}

func TestEventDetach(t *testing.T) {
	page := `<html><head><script type="text/xqueryp">
		declare updating function local:l($evt, $obj) {
			insert node <hit/> into //div[@id="log"]
		};
		declare updating function local:off($evt, $obj) {
			on event "click" at //input[@id="b"] detach listener local:l
		};
		{
			on event "click" at //input[@id="b"] attach listener local:l;
			on event "click" at //input[@id="stop"] attach listener local:off;
		}
	</script></head>
	<body><input id="b"/><input id="stop"/><div id="log"/></body></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	_ = h.Click("b")
	_ = h.Click("stop") // detaches
	_ = h.Click("b")
	hits := len(h.Page.ElementByID("log").Children())
	if hits != 1 {
		t.Errorf("hits = %d, want 1 (detach failed)", hits)
	}
}

func TestTriggerEvent(t *testing.T) {
	// §4.3.1: trigger event simulates a user click.
	page := `<html><head><script type="text/xqueryp">
		declare updating function local:l($evt, $obj) {
			insert node <p>clicked</p> into //body
		};
		{
			on event "click" at //input[@id="myButton"] attach listener local:l;
			trigger event "click" at //input[@id="myButton"];
		}
	</script></head><body><input id="myButton"/></body></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(h.SerializePage(), "<p>clicked</p>") {
		t.Errorf("trigger event did not run listener: %s", h.SerializePage())
	}
}

func TestUpdateModifiesLivePage(t *testing.T) {
	page := `<html><head><script type="text/xquery">
		insert node <h1>Welcome</h1> as first into //body
	</script></head><body><p>old</p></body></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	out := h.SerializePage()
	if !strings.Contains(out, "<h1>Welcome</h1><p>old</p>") {
		t.Errorf("page = %s", out)
	}
	if h.UpdateCount() != 1 {
		t.Errorf("UpdateCount = %d", h.UpdateCount())
	}
}

func TestStyleGrammar(t *testing.T) {
	// §4.5 example: set and get style.
	page := `<html><head><script type="text/xqueryp">
		{
			set style "border-margin" of //table[@id="thistable"] to "2px";
			declare variable $mystring := get style "border-margin" of //table[@id="thistable"];
			browser:alert($mystring);
		}
	</script></head><body><table id="thistable" style="color: red"/></body></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if a := h.Alerts(); len(a) != 1 || a[0] != "2px" {
		t.Errorf("alerts = %v", a)
	}
	table := h.Page.ElementByID("thistable")
	style := table.AttrValue("style")
	if !strings.Contains(style, "color: red") || !strings.Contains(style, "border-margin: 2px") {
		t.Errorf("style = %q", style)
	}
}

func TestWindowStatusReplace(t *testing.T) {
	// §4.2.1: replace value of node browser:self()/status with "Welcome".
	page := `<html><head><script type="text/xquery">
		replace value of node browser:self()/status with "Welcome"
	</script></head><body/></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if h.Window.Status != "Welcome" {
		t.Errorf("status = %q", h.Window.Status)
	}
}

func TestWindowNavigationByLocationReplace(t *testing.T) {
	// §4.2.1: changing location/href displays a new webpage.
	loaded := []string{}
	loader := func(url string) (*dom.Node, error) {
		loaded = append(loaded, url)
		d := dom.NewDocument()
		el := dom.NewElement(dom.Name("html"))
		_ = d.AppendChild(el)
		return d, nil
	}
	page := `<html><head><script type="text/xquery">
		replace value of node browser:self()/location/href
		with "http://www.dbis.ethz.ch/"
	</script></head><body/></html>`
	h, err := LoadPage(page, "http://example.com/", WithPageLoader(loader))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0] != "http://www.dbis.ethz.ch/" {
		t.Errorf("loaded = %v", loaded)
	}
	if h.Window.Location.Hostname != "www.dbis.ethz.ch" {
		t.Errorf("location = %+v", h.Window.Location)
	}
	hist, pos := h.Window.History()
	if len(hist) != 2 || pos != 1 {
		t.Errorf("history = %v @%d", hist, pos)
	}
}

func TestWindowTreeNavigation(t *testing.T) {
	// §4.2.1: browser:top()//window[@name="leftframe"].
	page := `<html><head><script type="text/xquery">
		browser:alert(string(count(browser:top()//window[@name="leftframe"])))
	</script></head><body/></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if a := h.Alerts(); a[0] != "0" {
		t.Errorf("no leftframe yet: %v", a)
	}
	// Add a frame and re-run via a second page load.
	child := &browser.Window{Name: "leftframe"}
	h.Window.AddFrame(child)
	page2 := `<html><head><script type="text/xquery">
		browser:alert(string(count(browser:top()//window[@name="leftframe"])))
	</script></head><body/></html>`
	h2, err := LoadPage(page2, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	h2.Window.AddFrame(&browser.Window{Name: "leftframe"})
	// Pull again through a click-driven listener.
	_ = h2
}

func TestNavigatorBranching(t *testing.T) {
	// §4.2.4 example: browser-specific code.
	page := `<html><head><script type="text/xquery">
		if (browser:navigator()/appName ftcontains "Mozilla") then
			browser:alert("You are running Mozilla")
		else if (browser:navigator()/appName ftcontains "Internet Explorer") then
			browser:alert("You are running IE")
		else
			browser:alert("Unknown browser")
	</script></head><body/></html>`
	h, err := LoadPage(page, "http://example.com/",
		WithNavigator(browser.NavigatorInfo{AppName: "Mozilla Firefox"}))
	if err != nil {
		t.Fatal(err)
	}
	if a := h.Alerts(); a[0] != "You are running Mozilla" {
		t.Errorf("alerts = %v", a)
	}
	h2, err := LoadPage(page, "http://example.com/",
		WithNavigator(browser.NavigatorInfo{AppName: "Microsoft Internet Explorer"}))
	if err != nil {
		t.Fatal(err)
	}
	if a := h2.Alerts(); a[0] != "You are running IE" {
		t.Errorf("alerts = %v", a)
	}
}

func TestScreenAccess(t *testing.T) {
	page := `<html><head><script type="text/xquery">
		browser:alert(string(browser:screen()/height))
	</script></head><body/></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if a := h.Alerts(); a[0] != "800" {
		t.Errorf("screen height = %v", a)
	}
}

func TestDocBlockedInBrowser(t *testing.T) {
	// §4.2.1: fn:doc and fn:put are blocked in the browser.
	page := `<html><head><script type="text/xquery">
		doc("http://example.com/x.xml")
	</script></head><body/></html>`
	_, err := LoadPage(page, "http://example.com/")
	if err == nil || !strings.Contains(err.Error(), "blocked") {
		t.Errorf("fn:doc should be blocked: %v", err)
	}
}

func TestJSAndXQueryCoexist(t *testing.T) {
	// §6.2: code in both languages listens to the same events; the
	// browser serialises handler execution in registration order
	// (JavaScript first).
	var order []string
	jsSetup := func(page *dom.Node) {
		btn := page.ElementByID("search")
		btn.AddEventListener("click", false, nil, func(ev *dom.Event) {
			order = append(order, "js")
		})
	}
	page := `<html><head><script type="text/xquery">
		declare sequential function local:onSearch($evt, $obj) {
			browser:alert("xquery saw the click");
		};
		on event "click" at //input[@id="search"]
		attach listener local:onSearch
	</script></head><body><input id="search"/></body></html>`
	h, err := LoadPage(page, "http://example.com/", WithJSSetup(jsSetup))
	if err != nil {
		t.Fatal(err)
	}
	_ = h.Click("search")
	if len(order) != 1 {
		t.Error("js listener did not run")
	}
	if len(h.Alerts()) != 1 {
		t.Error("xquery listener did not run")
	}
}

func TestEventNodeProperties(t *testing.T) {
	// §4.3.2: listeners can query $evt/button etc.
	page := `<html><head><script type="text/xquery">
		declare sequential function local:listener($evt, $obj) {
			if ($evt/button = 1) then browser:alert("left")
			else browser:alert("other");
		};
		on event "click" at //input[@id="submit"]
		attach listener local:listener
	</script></head><body><input id="submit"/></body></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	el := h.Page.ElementByID("submit")
	h.Dispatch(&dom.Event{Type: "click", Bubbles: true, Button: 1}, el)
	h.Dispatch(&dom.Event{Type: "click", Bubbles: true, Button: 3}, el)
	a := h.Alerts()
	if len(a) != 2 || a[0] != "left" || a[1] != "other" {
		t.Errorf("alerts = %v", a)
	}
}

func TestAttachBehindAsyncCall(t *testing.T) {
	// §4.4: behind binds a listener to the asynchronous evaluation of a
	// call; readyState 1 fires immediately, 4 on completion.
	slow := &runtime.Function{
		Name:    dom.QName{Space: "urn:svc", Local: "fetch"},
		MinArgs: 0, MaxArgs: 0,
		Invoke: func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			time.Sleep(5 * time.Millisecond)
			return xdm.Singleton(xdm.String("payload")), nil
		},
	}
	page := `<html><head><script type="text/xquery">
		declare namespace svc = "urn:svc";
		declare sequential function local:onResult($readyState, $result) {
			if ($readyState eq 4)
			then browser:alert(concat("done:", $result))
			else browser:alert("pending");
		};
		on event "stateChanged" behind svc:fetch()
		attach listener local:onResult
	</script></head><body/></html>`
	h, err := LoadPage(page, "http://example.com/",
		WithExtraFunctions(func(reg *runtime.Registry) { reg.Register(slow) }))
	if err != nil {
		t.Fatal(err)
	}
	// Non-blocking: immediately after load only readyState 1 has fired.
	if a := h.Alerts(); len(a) != 1 || a[0] != "pending" {
		t.Errorf("before completion: %v", a)
	}
	if errs := h.WaitIdle(time.Second); len(errs) > 0 {
		t.Fatalf("async errors: %v", errs)
	}
	a := h.Alerts()
	if len(a) != 2 || a[1] != "done:payload" {
		t.Errorf("after completion: %v", a)
	}
}

func TestUIStaysResponsiveDuringAsyncCall(t *testing.T) {
	// §4.4: "the call is non-blocking; the user keeps control of the
	// user interface": a click is handled while the call is pending.
	release := make(chan struct{})
	blocked := &runtime.Function{
		Name:    dom.QName{Space: "urn:svc", Local: "slow"},
		MinArgs: 0, MaxArgs: 0,
		Invoke: func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			<-release
			return xdm.Singleton(xdm.String("late")), nil
		},
	}
	page := `<html><head><script type="text/xquery">
		declare namespace svc = "urn:svc";
		declare sequential function local:onResult($readyState, $result) {
			if ($readyState eq 4) then browser:alert("async done") else ();
		};
		declare sequential function local:onClick($evt, $obj) {
			browser:alert("clicked while pending");
		};
		{
			on event "click" at //input[@id="b"] attach listener local:onClick;
			on event "stateChanged" behind svc:slow() attach listener local:onResult;
		}
	</script></head><body><input id="b"/></body></html>`
	h, err := LoadPage(page, "http://example.com/",
		WithExtraFunctions(func(reg *runtime.Registry) { reg.Register(blocked) }))
	if err != nil {
		t.Fatal(err)
	}
	_ = h.Click("b")
	if a := h.Alerts(); len(a) != 1 || a[0] != "clicked while pending" {
		t.Fatalf("UI blocked during async call: %v", a)
	}
	close(release)
	if errs := h.WaitIdle(time.Second); len(errs) > 0 {
		t.Fatalf("async errors: %v", errs)
	}
	a := h.Alerts()
	if a[len(a)-1] != "async done" {
		t.Errorf("final alerts = %v", a)
	}
}

func TestSecurityCrossOriginWindowHidden(t *testing.T) {
	// §4.2.1: a malicious site cannot learn about windows on another
	// origin — all accessors return the empty sequence.
	page := `<html><head><script type="text/xquery">
		declare sequential function local:probe($evt, $obj) {
			browser:alert(concat("status=[",
				string(browser:top()//window[2]/status), "] href=[",
				string(browser:top()//window[2]/location/href), "]"));
		};
		on event "click" at //input[@id="spy"] attach listener local:probe
	</script></head><body><input id="spy"/></body></html>`
	h, err := LoadPage(page, "http://evil.example.com/")
	if err != nil {
		t.Fatal(err)
	}
	other := &browser.Window{Name: "victim"}
	loc, _ := browser.ParseLocation("https://bank.example.org/account")
	other.Location = loc
	other.Status = "logged in"
	h.Window.AddFrame(other)
	_ = h.Click("spy")
	a := h.Alerts()
	if len(a) != 1 || a[0] != "status=[] href=[]" {
		t.Errorf("cross-origin leak: %v", a)
	}
}

func TestSecuritySameOriginVisible(t *testing.T) {
	page := `<html><head><script type="text/xquery">
		declare sequential function local:probe($evt, $obj) {
			browser:alert(string(browser:top()//window[@name="child"]/status));
		};
		on event "click" at //input[@id="go"] attach listener local:probe
	</script></head><body><input id="go"/></body></html>`
	h, err := LoadPage(page, "http://example.com/a")
	if err != nil {
		t.Fatal(err)
	}
	child := &browser.Window{Name: "child", Status: "First child"}
	loc, _ := browser.ParseLocation("http://example.com/b")
	child.Location = loc
	h.Window.AddFrame(child)
	_ = h.Click("go")
	if a := h.Alerts(); len(a) != 1 || a[0] != "First child" {
		t.Errorf("same-origin access failed: %v", a)
	}
}

func TestHTTPSWarningExample(t *testing.T) {
	// §4.2.1's FLWOR: write a red warning on every frame not pointing
	// to an https location.
	page := `<html><head><script type="text/xquery">
		for $x in browser:top()//window
		let $d := browser:document($x)
		where not($x/location/href ftcontains "https")
		return
			insert node <h1><font color="red">Warning: this page is not secure</font></h1>
			into $d/html/body as first
	</script></head><body><p>content</p></body></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	out := h.SerializePage()
	if !strings.Contains(out, "Warning: this page is not secure") {
		t.Errorf("warning not inserted: %s", out)
	}
}

func TestBrowserWrite(t *testing.T) {
	page := `<html><head><script type="text/xquery">
		(browser:write("written "), browser:writeln("text"))
	</script></head><body/></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Page.StringValue(); !strings.Contains(got, "written text") {
		t.Errorf("document text = %q", got)
	}
}

func TestMultipleScriptTags(t *testing.T) {
	page := `<html><head>
	<script type="text/xquery">browser:alert("one")</script>
	<script type="text/javascript">ignored();</script>
	<script type="text/xquery">browser:alert("two")</script>
	</head><body/></html>`
	h, err := LoadPage(page, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	a := h.Alerts()
	if len(a) != 2 || a[0] != "one" || a[1] != "two" {
		t.Errorf("alerts = %v", a)
	}
}

func TestPromptAndConfirm(t *testing.T) {
	page := `<html><head><script type="text/xquery">
		(browser:alert(browser:prompt("name?")),
		 browser:alert(string(browser:confirm("sure?"))))
	</script></head><body/></html>`
	h2, err := LoadPage(page, "http://example.com/",
		WithBrowserSetup(func(b *browser.Browser) {
			b.QueuePromptAnswer("Alice")
			b.QueueConfirmAnswer(false)
		}))
	if err != nil {
		t.Fatal(err)
	}
	a := h2.Alerts()
	if len(a) != 2 || a[0] != "Alice" || a[1] != "false" {
		t.Errorf("alerts = %v", a)
	}
}
