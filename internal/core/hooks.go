package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/browser"
	"repro/internal/dom"
	"repro/internal/xdm"
	"repro/internal/xquery/parser"
	"repro/internal/xquery/runtime"
	"repro/internal/xquery/update"
)

// hostHooks implements the runtime's browser extension points: the
// event grammar of §4.3, the behind construct of §4.4 and the CSS
// grammar of §4.5.
type hostHooks struct{ h *Host }

// listenerKey identifies an XQuery listener registration so attach is
// idempotent and detach can find it (the DOM's duplicate-registration
// rule applied to the §4.3 grammar).
type listenerKey struct {
	event string
	fn    string // expanded QName
}

// AttachListener implements "on event E at T attach listener F".
func (hh *hostHooks) AttachListener(ctx *runtime.Context, event string, targets xdm.Sequence, listener dom.QName) error {
	h := hh.h
	for _, it := range targets {
		n, ok := xdm.IsNode(it)
		if !ok {
			return fmt.Errorf("core: event target must be a node")
		}
		key := listenerKey{event: event, fn: listener.Space + "#" + listener.Local}
		name := listener
		n.AddEventListener(event, false, key, func(ev *dom.Event) {
			// $obj is "the DOM node where the event occured" (§4.3.2) —
			// the target, so delegated listeners see the real source.
			if err := h.invokeListener(ctx, name, []xdm.Sequence{
				xdm.Singleton(xdm.NewNode(EventToXML(ev))),
				xdm.Singleton(xdm.NewNode(ev.Target)),
			}); err != nil {
				h.recordAsyncErr(fmt.Errorf("core: listener %s: %w", name, err))
			}
		})
	}
	return nil
}

// DetachListener implements "on event E at T detach listener F".
func (hh *hostHooks) DetachListener(ctx *runtime.Context, event string, targets xdm.Sequence, listener dom.QName) error {
	for _, it := range targets {
		n, ok := xdm.IsNode(it)
		if !ok {
			return fmt.Errorf("core: event target must be a node")
		}
		n.RemoveEventListener(event, false,
			listenerKey{event: event, fn: listener.Space + "#" + listener.Local})
	}
	return nil
}

// TriggerEvent implements "trigger event E at T": it simulates the user
// action synchronously, exactly like dispatching a browser event.
func (hh *hostHooks) TriggerEvent(ctx *runtime.Context, event string, targets xdm.Sequence) error {
	for _, it := range targets {
		n, ok := xdm.IsNode(it)
		if !ok {
			return fmt.Errorf("core: event target must be a node")
		}
		hh.h.Dispatch(&dom.Event{Type: event, Bubbles: true, Cancelable: true, Button: 1}, n)
	}
	return nil
}

// AttachBehind implements "on event E behind Call attach listener F"
// (§4.4): the call evaluates asynchronously and every state change
// invokes the listener with ($readyState, $result); readyState 4
// carries the final result, mirroring XMLHttpRequest. The call is
// non-blocking — "the user keeps control of the user interface".
func (hh *hostHooks) AttachBehind(ctx *runtime.Context, event string, call func() (xdm.Sequence, error), listener dom.QName) error {
	h := hh.h
	h.mu.Lock()
	h.outstanding++
	h.mu.Unlock()

	// readyState 1: the call has been initiated.
	if err := h.invokeListener(ctx, listener, []xdm.Sequence{
		xdm.Singleton(xdm.Integer(1)), nil,
	}); err != nil {
		h.mu.Lock()
		h.outstanding--
		h.mu.Unlock()
		return err
	}

	go func() {
		res, err := call()
		h.post(func() error {
			if err != nil {
				// readyState 4 with an empty result signals failure;
				// the error is also surfaced to the host.
				ierr := h.invokeListener(ctx, listener, []xdm.Sequence{
					xdm.Singleton(xdm.Integer(4)), nil,
				})
				if ierr != nil {
					return fmt.Errorf("core: behind listener: %v (call error: %w)", ierr, err)
				}
				return fmt.Errorf("core: asynchronous call failed: %w", err)
			}
			return h.invokeListener(ctx, listener, []xdm.Sequence{
				xdm.Singleton(xdm.Integer(4)), res,
			})
		})
		h.mu.Lock()
		h.outstanding--
		h.mu.Unlock()
	}()
	return nil
}

// SetStyle / GetStyle implement the §4.5 CSS grammar over the style
// attributes of the target elements.
func (hh *hostHooks) SetStyle(ctx *runtime.Context, prop string, targets xdm.Sequence, value string) error {
	for _, it := range targets {
		n, ok := xdm.IsNode(it)
		if !ok || n.Type != dom.ElementNode {
			return fmt.Errorf("core: set style target must be an element")
		}
		browser.SetStyleProp(n, prop, value)
	}
	return nil
}

func (hh *hostHooks) GetStyle(ctx *runtime.Context, prop string, targets xdm.Sequence) (xdm.Sequence, error) {
	var out xdm.Sequence
	for _, it := range targets {
		n, ok := xdm.IsNode(it)
		if !ok || n.Type != dom.ElementNode {
			return nil, fmt.Errorf("core: get style target must be an element")
		}
		if v, ok := browser.GetStyleProp(n, prop); ok {
			out = append(out, xdm.String(v))
		}
	}
	return out, nil
}

// invokeListener calls an XQuery function as an event listener: "Zorba
// is called with the XQuery prolog followed by the listener call"
// (Figure 1). Each invocation gets a fresh pending update list; updates
// apply when the listener returns (or per statement for sequential
// listeners).
func (h *Host) invokeListener(ctx *runtime.Context, name dom.QName, args []xdm.Sequence) error {
	c := *ctx
	c.PUL = &update.PUL{}
	// A fresh budget per invocation: listeners must not inherit the
	// partially consumed budget of the page-load script (or of an
	// earlier event), and a budget-tripped listener must not poison
	// the ones that follow. The host's context rides along so session
	// cancellation aborts listeners too.
	c.Budget = runtime.NewBudgetContext(h.ctx, h.maxQuerySteps, h.queryTimeout)
	_, err := h.finish(&c, func() (xdm.Sequence, error) {
		return c.CallFunction(name, args)
	})
	return err
}

// registerHOFEventAPI installs the high-order-function event
// registration route the Zorba-based implementation used instead of the
// grammar extension ("as Zorba does not allow to modify in a modular
// way the XQuery grammar it uses, we use high-order-functions to bind
// events", §5.1):
//
//	browser:addEventListener($targets, $event, "local:listener")
//	browser:removeEventListener($targets, $event, "local:listener")
//
// Both routes register through the same machinery, so experiment E8 can
// compare them directly.
func (h *Host) registerHOFEventAPI(reg *runtime.Registry) {
	bn := func(local string) dom.QName {
		return dom.QName{Space: parser.BrowserNamespace, Prefix: "browser", Local: local}
	}
	parseListener := func(s string) dom.QName {
		if prefix, local, ok := strings.Cut(s, ":"); ok && prefix == "local" {
			return dom.QName{Space: parser.LocalNamespace, Local: local}
		}
		return dom.QName{Space: parser.LocalNamespace, Local: s}
	}
	strArg := func(s xdm.Sequence) (string, error) {
		it, err := xdm.AtomizeSequence(s).One()
		if err != nil {
			return "", err
		}
		return it.String(), nil
	}
	reg.Register(&runtime.Function{
		Name: bn("addEventListener"), MinArgs: 3, MaxArgs: 3,
		Invoke: func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			event, err := strArg(args[1])
			if err != nil {
				return nil, err
			}
			lname, err := strArg(args[2])
			if err != nil {
				return nil, err
			}
			hh := &hostHooks{h: h}
			return nil, hh.AttachListener(ctx, event, args[0], parseListener(lname))
		},
	})
	reg.Register(&runtime.Function{
		Name: bn("removeEventListener"), MinArgs: 3, MaxArgs: 3,
		Invoke: func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			event, err := strArg(args[1])
			if err != nil {
				return nil, err
			}
			lname, err := strArg(args[2])
			if err != nil {
				return nil, err
			}
			hh := &hostHooks{h: h}
			return nil, hh.DetachListener(ctx, event, args[0], parseListener(lname))
		},
	})
}

// EventToXML materialises a DOM event as the XML element listeners
// receive as $evt (§4.3.2): the same information available in a DOM
// Event object.
func EventToXML(ev *dom.Event) *dom.Node {
	el := dom.NewElement(dom.Name("event"))
	add := func(name, val string) {
		c := dom.NewElement(dom.Name(name))
		if val != "" {
			_ = c.AppendChild(dom.NewText(val))
		}
		_ = el.AppendChild(c)
	}
	add("type", ev.Type)
	add("altKey", boolStr(ev.AltKey))
	add("ctrlKey", boolStr(ev.CtrlKey))
	add("shiftKey", boolStr(ev.ShiftKey))
	add("metaKey", boolStr(ev.MetaKey))
	add("button", fmt.Sprintf("%d", ev.Button))
	add("key", ev.Key)
	add("clientX", fmt.Sprintf("%d", ev.ClientX))
	add("clientY", fmt.Sprintf("%d", ev.ClientY))
	add("phase", fmt.Sprintf("%d", int(ev.Phase)))
	add("timeStamp", time.Now().Format("2006-01-02T15:04:05.000"))
	if ev.Target != nil && ev.Target.Type == dom.ElementNode {
		add("targetName", ev.Target.Name.Local)
		add("targetId", ev.Target.AttrValue("id"))
	}
	for k, v := range ev.Detail {
		add(k, v)
	}
	return el
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
