package core

import (
	"fmt"
	"strings"
	"testing"
)

// TestStressManyListenersLongSession loads a page with many widgets,
// registers a delegated listener plus per-widget listeners, and replays
// a long interaction session, checking counters stay exact — the
// anti-regression test for the whole pipeline under sustained load.
func TestStressManyListenersLongSession(t *testing.T) {
	const widgets = 60
	const rounds = 40

	var b strings.Builder
	b.WriteString(`<html><head><script type="text/xqueryp">
declare updating function local:hit($evt, $obj) {
  replace value of node //span[@id = concat("c", string($obj/@data-n))]
  with xs:integer(string(//span[@id = concat("c", string($obj/@data-n))])) + 1
};
declare updating function local:total($evt, $obj) {
  replace value of node //span[@id="total"]
  with xs:integer(string(//span[@id="total"])) + 1
};
{
  on event "click" at //input[@class="w"] attach listener local:hit;
  on event "click" at //div[@id="board"] attach listener local:total;
}
</script></head><body><div id="board">`)
	for i := 0; i < widgets; i++ {
		fmt.Fprintf(&b, `<input class="w" id="w%d" data-n="%d"/><span id="c%d">0</span>`, i, i, i)
	}
	b.WriteString(`</div><span id="total">0</span></body></html>`)

	h, err := LoadPage(b.String(), "http://stress.example.com/")
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		if err := h.Click(fmt.Sprintf("w%d", r%widgets)); err != nil {
			t.Fatal(err)
		}
	}
	if errs := h.WaitIdle(0); len(errs) > 0 {
		t.Fatalf("errors during session: %v", errs)
	}
	// Every widget clicked floor(rounds/widgets) or +1 times.
	for i := 0; i < widgets; i++ {
		want := rounds / widgets
		if i < rounds%widgets {
			want++
		}
		got := h.Page.ElementByID(fmt.Sprintf("c%d", i)).StringValue()
		if got != fmt.Sprintf("%d", want) {
			t.Fatalf("widget %d count = %s, want %d", i, got, want)
		}
	}
	// The delegated board listener saw every click (bubbling).
	if got := h.Page.ElementByID("total").StringValue(); got != fmt.Sprintf("%d", rounds) {
		t.Errorf("total = %s, want %d", got, rounds)
	}
	// Each click applied exactly two update primitives.
	if got := h.UpdateCount(); got != rounds*2 {
		t.Errorf("updates = %d, want %d", got, rounds*2)
	}
}
