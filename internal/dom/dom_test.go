package dom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustAppend(t *testing.T, p, c *Node) {
	t.Helper()
	if err := p.AppendChild(c); err != nil {
		t.Fatalf("AppendChild: %v", err)
	}
}

// buildSample returns <root><a id="1">hello</a><b><c/>world</b></root>
// attached to a document.
func buildSample(t *testing.T) (doc, root, a, b, c *Node) {
	t.Helper()
	doc = NewDocument()
	root = NewElement(Name("root"))
	a = NewElement(Name("a"))
	a.SetAttr(Name("id"), "1")
	b = NewElement(Name("b"))
	c = NewElement(Name("c"))
	mustAppend(t, doc, root)
	mustAppend(t, root, a)
	mustAppend(t, a, NewText("hello"))
	mustAppend(t, root, b)
	mustAppend(t, b, c)
	mustAppend(t, b, NewText("world"))
	return
}

func TestStringValue(t *testing.T) {
	doc, root, a, b, _ := buildSample(t)
	tests := []struct {
		name string
		n    *Node
		want string
	}{
		{"document", doc, "helloworld"},
		{"root", root, "helloworld"},
		{"a", a, "hello"},
		{"b", b, "world"},
		{"attr", a.AttrNode(Name("id")), "1"},
	}
	for _, tt := range tests {
		if got := tt.n.StringValue(); got != tt.want {
			t.Errorf("%s: StringValue = %q, want %q", tt.name, got, tt.want)
		}
	}
}

func TestTreeNavigation(t *testing.T) {
	doc, root, a, b, c := buildSample(t)
	if a.Parent() != root || root.Parent() != doc {
		t.Fatal("parent links wrong")
	}
	if a.NextSibling() != b {
		t.Error("NextSibling(a) != b")
	}
	if b.PrevSibling() != a {
		t.Error("PrevSibling(b) != a")
	}
	if a.PrevSibling() != nil || b.NextSibling() != nil {
		t.Error("edge siblings should be nil")
	}
	if c.Root() != doc || c.Document() != doc {
		t.Error("Root/Document wrong")
	}
	if !root.IsAncestorOf(c) || c.IsAncestorOf(root) {
		t.Error("IsAncestorOf wrong")
	}
	if doc.DocumentElement() != root {
		t.Error("DocumentElement wrong")
	}
}

func TestDocumentOrder(t *testing.T) {
	doc, root, a, b, c := buildSample(t)
	ordered := []*Node{doc, root, a, a.AttrNode(Name("id")), a.FirstChild(), b, c}
	for i := range ordered {
		for j := range ordered {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := CompareOrder(ordered[i], ordered[j]); got != want {
				t.Errorf("CompareOrder(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestDocumentOrderAfterMutation(t *testing.T) {
	_, root, a, b, _ := buildSample(t)
	if CompareOrder(a, b) != -1 {
		t.Fatal("precondition")
	}
	// Move a after b: order must flip despite the stamp cache.
	if err := root.InsertAfter(a, b); err != nil {
		t.Fatal(err)
	}
	if CompareOrder(a, b) != 1 {
		t.Error("order not invalidated after mutation")
	}
}

func TestInsertBeforeAfter(t *testing.T) {
	_, root, a, b, _ := buildSample(t)
	x := NewElement(Name("x"))
	if err := root.InsertBefore(x, b); err != nil {
		t.Fatal(err)
	}
	if a.NextSibling() != x || x.NextSibling() != b {
		t.Error("InsertBefore misplaced node")
	}
	y := NewElement(Name("y"))
	if err := root.InsertAfter(y, b); err != nil {
		t.Fatal(err)
	}
	if b.NextSibling() != y || y.NextSibling() != nil {
		t.Error("InsertAfter misplaced node")
	}
	if got := len(root.Children()); got != 4 {
		t.Errorf("children = %d, want 4", got)
	}
}

func TestCycleRejected(t *testing.T) {
	_, root, a, _, _ := buildSample(t)
	if err := a.AppendChild(root); err == nil {
		t.Error("appending ancestor should fail")
	}
	if err := a.AppendChild(a); err == nil {
		t.Error("appending self should fail")
	}
}

func TestAttrOps(t *testing.T) {
	_, _, a, _, _ := buildSample(t)
	if v, ok := a.Attr(Name("id")); !ok || v != "1" {
		t.Fatalf("Attr = %q,%v", v, ok)
	}
	a.SetAttr(Name("id"), "2")
	if a.AttrValue("id") != "2" {
		t.Error("SetAttr did not overwrite")
	}
	a.SetAttr(Name("class"), "big")
	if len(a.Attrs()) != 2 {
		t.Error("SetAttr did not add")
	}
	a.RemoveAttr(Name("id"))
	if _, ok := a.Attr(Name("id")); ok {
		t.Error("RemoveAttr failed")
	}
	dup := NewAttr(Name("class"), "x")
	if err := a.AddAttrNode(dup); err == nil {
		t.Error("duplicate attribute should fail")
	}
}

func TestReplaceElementContent(t *testing.T) {
	_, _, _, b, _ := buildSample(t)
	b.ReplaceElementContent("new")
	if b.StringValue() != "new" || len(b.Children()) != 1 {
		t.Errorf("ReplaceElementContent: %q, %d children", b.StringValue(), len(b.Children()))
	}
	b.ReplaceElementContent("")
	if len(b.Children()) != 0 {
		t.Error("empty replacement should clear children")
	}
}

func TestClone(t *testing.T) {
	_, root, a, _, _ := buildSample(t)
	c := root.Clone()
	if c.Parent() != nil {
		t.Error("clone must be detached")
	}
	if c.StringValue() != root.StringValue() {
		t.Error("clone text differs")
	}
	// Mutating the clone must not affect the original.
	c.Children()[0].SetAttr(Name("id"), "99")
	if a.AttrValue("id") != "1" {
		t.Error("clone shares attribute storage")
	}
	if got := len(c.Children()); got != len(root.Children()) {
		t.Errorf("clone children = %d", got)
	}
}

func TestNormalizeText(t *testing.T) {
	e := NewElement(Name("e"))
	for _, s := range []string{"a", "", "b", "c"} {
		mustAppend(t, e, NewText(s))
	}
	mustAppend(t, e, NewElement(Name("k")))
	mustAppend(t, e, NewText("d"))
	e.NormalizeText()
	kids := e.Children()
	if len(kids) != 3 {
		t.Fatalf("children = %d, want 3", len(kids))
	}
	if kids[0].Data != "abc" || kids[2].Data != "d" {
		t.Errorf("merge wrong: %q %q", kids[0].Data, kids[2].Data)
	}
}

func TestElementByID(t *testing.T) {
	_, root, a, _, _ := buildSample(t)
	if root.ElementByID("1") != a {
		t.Error("ElementByID failed")
	}
	if root.ElementByID("nope") != nil {
		t.Error("ElementByID should return nil for missing id")
	}
}

func TestEventDispatchPhases(t *testing.T) {
	_, root, _, b, c := buildSample(t)
	var trace []string
	rec := func(tag string) Listener {
		return func(e *Event) { trace = append(trace, tag) }
	}
	root.AddEventListener("click", true, nil, rec("root-capture"))
	root.AddEventListener("click", false, nil, rec("root-bubble"))
	b.AddEventListener("click", true, nil, rec("b-capture"))
	b.AddEventListener("click", false, nil, rec("b-bubble"))
	c.AddEventListener("click", false, nil, rec("c-target"))

	c.DispatchEvent(&Event{Type: "click", Bubbles: true})
	want := []string{"root-capture", "b-capture", "c-target", "b-bubble", "root-bubble"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestEventNoBubble(t *testing.T) {
	_, root, _, _, c := buildSample(t)
	n := 0
	root.AddEventListener("focus", false, nil, func(e *Event) { n++ })
	c.DispatchEvent(&Event{Type: "focus", Bubbles: false})
	if n != 0 {
		t.Error("non-bubbling event reached ancestor bubble listener")
	}
}

func TestStopPropagation(t *testing.T) {
	_, root, _, b, c := buildSample(t)
	var trace []string
	b.AddEventListener("click", true, nil, func(e *Event) {
		trace = append(trace, "b")
		e.StopPropagation()
	})
	c.AddEventListener("click", false, nil, func(e *Event) { trace = append(trace, "c") })
	root.AddEventListener("click", false, nil, func(e *Event) { trace = append(trace, "root") })
	c.DispatchEvent(&Event{Type: "click", Bubbles: true})
	if len(trace) != 1 || trace[0] != "b" {
		t.Errorf("trace = %v, want [b]", trace)
	}
}

func TestPreventDefault(t *testing.T) {
	_, _, _, _, c := buildSample(t)
	c.AddEventListener("submit", false, nil, func(e *Event) { e.PreventDefault() })
	if c.DispatchEvent(&Event{Type: "submit", Cancelable: true}) {
		t.Error("DispatchEvent should report prevented default")
	}
	// Non-cancelable events ignore PreventDefault.
	if !c.DispatchEvent(&Event{Type: "submit"}) {
		t.Error("non-cancelable event must not be prevented")
	}
}

func TestListenerIdentity(t *testing.T) {
	e := NewElement(Name("e"))
	n := 0
	fn := func(*Event) { n++ }
	e.AddEventListener("click", false, "local:f", fn)
	e.AddEventListener("click", false, "local:f", fn) // duplicate suppressed
	e.DispatchEvent(&Event{Type: "click"})
	if n != 1 {
		t.Errorf("duplicate registration fired %d times", n)
	}
	e.RemoveEventListener("click", false, "local:f")
	e.DispatchEvent(&Event{Type: "click"})
	if n != 1 {
		t.Error("listener not removed")
	}
}

func TestListenerAddedDuringDispatchDeferred(t *testing.T) {
	e := NewElement(Name("e"))
	n := 0
	e.AddEventListener("click", false, nil, func(*Event) {
		e.AddEventListener("click", false, nil, func(*Event) { n += 10 })
		n++
	})
	e.DispatchEvent(&Event{Type: "click"})
	if n != 1 {
		t.Errorf("listener added during dispatch fired immediately: n=%d", n)
	}
	e.DispatchEvent(&Event{Type: "click"})
	if n != 12 {
		t.Errorf("second dispatch: n=%d, want 12", n)
	}
}

func TestListenerRemovedDuringDispatchSkipped(t *testing.T) {
	e := NewElement(Name("e"))
	n := 0
	e.AddEventListener("click", false, "a", func(*Event) {
		e.RemoveEventListener("click", false, "b")
	})
	e.AddEventListener("click", false, "b", func(*Event) { n++ })
	e.DispatchEvent(&Event{Type: "click"})
	if n != 0 {
		t.Error("removed listener still fired")
	}
}

// randomTree builds a random tree with the given rand; returns all nodes
// in construction (document) order.
func randomTree(r *rand.Rand, size int) []*Node {
	doc := NewDocument()
	root := NewElement(Name("r"))
	_ = doc.AppendChild(root)
	parents := []*Node{root}
	for i := 0; i < size; i++ {
		p := parents[r.Intn(len(parents))]
		var n *Node
		switch r.Intn(3) {
		case 0:
			n = NewElement(Name("e"))
			parents = append(parents, n)
		case 1:
			n = NewText("t")
		default:
			n = NewComment("c")
		}
		_ = p.AppendChild(n)
	}
	var all []*Node
	doc.Walk(func(n *Node) bool { all = append(all, n); return true })
	return all
}

// Property: CompareOrder is a strict total order consistent with Walk's
// document order.
func TestCompareOrderTotalOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		all := randomTree(r, 30)
		for i := range all {
			for j := range all {
				got := CompareOrder(all[i], all[j])
				want := 0
				if i < j {
					want = -1
				} else if i > j {
					want = 1
				}
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Clone produces a structurally equal, fully detached copy.
func TestClonePreservesStructureProperty(t *testing.T) {
	var equal func(a, b *Node) bool
	equal = func(a, b *Node) bool {
		if a.Type != b.Type || !a.Name.Matches(b.Name) || a.Data != b.Data {
			return false
		}
		if len(a.Children()) != len(b.Children()) || len(a.Attrs()) != len(b.Attrs()) {
			return false
		}
		for i := range a.Children() {
			if !equal(a.Children()[i], b.Children()[i]) {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		all := randomTree(r, 25)
		root := all[0]
		c := root.Clone()
		return equal(root, c) && c.Parent() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQName(t *testing.T) {
	q := QName{Space: "urn:x", Prefix: "p", Local: "a"}
	if q.String() != "p:a" {
		t.Errorf("String = %q", q.String())
	}
	if !q.Matches(QName{Space: "urn:x", Local: "a"}) {
		t.Error("Matches must ignore prefix")
	}
	if q.Matches(QName{Space: "urn:y", Local: "a"}) {
		t.Error("Matches must compare namespace")
	}
	if Name("a").String() != "a" {
		t.Error("unprefixed String")
	}
}

func TestPrependChild(t *testing.T) {
	_, root, a, _, _ := buildSample(t)
	x := NewElement(Name("x"))
	if err := root.PrependChild(x); err != nil {
		t.Fatal(err)
	}
	if root.FirstChild() != x || x.NextSibling() != a {
		t.Error("PrependChild misplaced node")
	}
	// Prepending a node that is elsewhere in the tree moves it.
	if err := root.PrependChild(a); err != nil {
		t.Fatal(err)
	}
	if root.FirstChild() != a {
		t.Error("PrependChild did not move existing child")
	}
	if got := len(root.Children()); got != 3 {
		t.Errorf("children = %d, want 3", got)
	}
}

func TestReplaceChild(t *testing.T) {
	_, root, a, b, _ := buildSample(t)
	x := NewElement(Name("x"))
	if err := root.ReplaceChild(x, a); err != nil {
		t.Fatal(err)
	}
	if a.Parent() != nil || x.Parent() != root || root.FirstChild() != x {
		t.Error("ReplaceChild wiring wrong")
	}
	if err := root.ReplaceChild(NewElement(Name("y")), a); err == nil {
		t.Error("replacing a detached node should fail")
	}
	_ = b
}

func TestWalkEarlyStop(t *testing.T) {
	_, root, _, _, _ := buildSample(t)
	visited := 0
	root.Walk(func(n *Node) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Errorf("visited = %d, want 3 (early stop)", visited)
	}
}

func TestBaseURIInheritance(t *testing.T) {
	doc, _, a, _, c := buildSample(t)
	doc.BaseURI = "http://example.com/doc.xml"
	if a.Base() != "http://example.com/doc.xml" || c.Base() != doc.BaseURI {
		t.Error("Base() must inherit from the document")
	}
	a.BaseURI = "http://other/base"
	if a.FirstChild().Base() != "http://other/base" {
		t.Error("nearer BaseURI must win")
	}
	detached := NewElement(Name("d"))
	if detached.Base() != "" {
		t.Error("detached node has no base")
	}
}

func TestListenerCount(t *testing.T) {
	e := NewElement(Name("e"))
	e.AddEventListener("click", false, nil, func(*Event) {})
	e.AddEventListener("click", true, nil, func(*Event) {})
	e.AddEventListener("focus", false, nil, func(*Event) {})
	if e.ListenerCount("click") != 2 || e.ListenerCount("focus") != 1 || e.ListenerCount("blur") != 0 {
		t.Error("ListenerCount wrong")
	}
}

func TestDispatchOnDetachedSubtree(t *testing.T) {
	// Events dispatched in a detached subtree still run local listeners.
	e := NewElement(Name("e"))
	c := NewElement(Name("c"))
	_ = e.AppendChild(c)
	hits := 0
	e.AddEventListener("ping", false, nil, func(*Event) { hits++ })
	c.DispatchEvent(&Event{Type: "ping", Bubbles: true})
	if hits != 1 {
		t.Errorf("detached dispatch hits = %d", hits)
	}
}

func TestNodeTypeString(t *testing.T) {
	if DocumentNode.String() != "document" || AttributeNode.String() != "attribute" {
		t.Error("NodeType.String wrong")
	}
	if NodeType(99).String() == "" {
		t.Error("unknown NodeType must still render")
	}
}
