package dom

// DOM Level 3 event flow: capture phase from the root down, target
// phase, then bubbling back up. Both the XQuery engine (via the paper's
// "on event ... attach listener" syntax) and the JavaScript-style
// baseline register listeners through this interface, so a single
// dispatch serialises handlers from both languages exactly as §6.2
// describes ("the browser determines the order in which events are
// processed ... in the same way as ... if only JavaScript is used").

// EventPhase identifies the position of the dispatch when a listener
// fires.
type EventPhase int

// Event phases per DOM Level 3.
const (
	CapturePhase EventPhase = 1
	AtTarget     EventPhase = 2
	BubblePhase  EventPhase = 3
)

// Event carries the information passed to listeners. The fields mirror
// the DOM event object properties the paper queries ($evt/type,
// $evt/altKey, $evt/button, ...).
type Event struct {
	Type          string
	Target        *Node
	CurrentTarget *Node
	Phase         EventPhase

	// Input-device detail (zero unless the dispatcher sets them).
	AltKey   bool
	CtrlKey  bool
	ShiftKey bool
	MetaKey  bool
	Button   int // 0 none, 1 left, 2 middle, 3 right
	Key      string
	ClientX  int
	ClientY  int

	// Detail carries event-specific payload (e.g. the readyState and
	// result of an asynchronous call completion, §4.4).
	Detail map[string]string

	Bubbles    bool
	Cancelable bool

	stopped          bool
	defaultPrevented bool
}

// StopPropagation halts the dispatch after the current node's listeners.
func (e *Event) StopPropagation() { e.stopped = true }

// PreventDefault cancels the default action of a cancelable event.
func (e *Event) PreventDefault() {
	if e.Cancelable {
		e.defaultPrevented = true
	}
}

// DefaultPrevented reports whether PreventDefault was called.
func (e *Event) DefaultPrevented() bool { return e.defaultPrevented }

// Listener is an event callback.
type Listener func(*Event)

type listener struct {
	typ     string
	capture bool
	fn      Listener
	id      any // identity token for removal (e.g. an XQuery QName)
}

// AddEventListener registers fn for events of the given type on n.
// The id token identifies the registration for RemoveEventListener;
// registering the same (type, capture, id) twice is a no-op when id is
// non-nil, matching addEventListener's duplicate suppression.
func (n *Node) AddEventListener(typ string, capture bool, id any, fn Listener) {
	if id != nil {
		for _, l := range n.listeners {
			if l.typ == typ && l.capture == capture && l.id == id {
				return
			}
		}
	}
	n.listeners = append(n.listeners, &listener{typ: typ, capture: capture, fn: fn, id: id})
}

// RemoveEventListener removes the registration with the matching
// (type, capture, id).
func (n *Node) RemoveEventListener(typ string, capture bool, id any) {
	for i, l := range n.listeners {
		if l.typ == typ && l.capture == capture && l.id == id {
			n.listeners = append(n.listeners[:i], n.listeners[i+1:]...)
			return
		}
	}
}

// ListenerCount returns the number of listeners of the given type
// registered directly on n (both phases).
func (n *Node) ListenerCount(typ string) int {
	c := 0
	for _, l := range n.listeners {
		if l.typ == typ {
			c++
		}
	}
	return c
}

// DispatchEvent runs the full capture/target/bubble flow for ev with n
// as the target. It returns false if a listener prevented the default
// action.
func (n *Node) DispatchEvent(ev *Event) bool {
	ev.Target = n
	// Ancestor chain, target first.
	var chain []*Node
	for a := n.parent; a != nil; a = a.parent {
		chain = append(chain, a)
	}
	// Capture: root towards target.
	ev.Phase = CapturePhase
	for i := len(chain) - 1; i >= 0 && !ev.stopped; i-- {
		chain[i].invoke(ev, true)
	}
	// Target.
	if !ev.stopped {
		ev.Phase = AtTarget
		n.invoke(ev, true)
		n.invoke(ev, false)
	}
	// Bubble: target towards root.
	if ev.Bubbles {
		ev.Phase = BubblePhase
		for i := 0; i < len(chain) && !ev.stopped; i++ {
			chain[i].invoke(ev, false)
		}
	}
	return !ev.defaultPrevented
}

func (n *Node) invoke(ev *Event, capture bool) {
	ev.CurrentTarget = n
	// Snapshot: listeners added during dispatch do not fire for this
	// event; removed ones are skipped via the live check below.
	snapshot := append([]*listener(nil), n.listeners...)
	for _, l := range snapshot {
		if ev.stopped {
			return
		}
		if l.typ != ev.Type || l.capture != capture {
			continue
		}
		if !n.hasListener(l) {
			continue
		}
		l.fn(ev)
	}
}

func (n *Node) hasListener(l *listener) bool {
	for _, x := range n.listeners {
		if x == l {
			return true
		}
	}
	return false
}
