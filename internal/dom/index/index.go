// Package index maintains lazily built, version-stamped per-document
// indexes over dom trees — the access-path layer the path planner
// (internal/xquery/plan) routes descendant-heavy steps to:
//
//   - an element-name index (expanded QName → elements in document
//     order), probed by //x-style steps;
//   - an "id" attribute index (value → elements in document order),
//     probed by descendant::x[@id="..."] steps and fn:id;
//   - document-order pre/size numbering (a span per node), giving O(1)
//     descendant tests, O(log n) subtree slicing of the name lists, and
//     merge-based dedup/sort of step results.
//
// Invalidation is wholesale and free for mutators: every mutator in
// dom/tree.go already bumps the tree root's version counter, and an
// index is valid exactly while the version it was built at matches
// Node.Version(). A stale index is simply ignored and rebuilt on next
// use, so the Update Facility's apply phase needs zero index
// bookkeeping. The index lives in a slot on the root node itself
// (Node.LoadIndexCache/StoreIndexCache), so it is garbage-collected
// with its document.
//
// Concurrency: building is idempotent — two goroutines racing on a
// cold tree both build and the slot keeps the last store; either value
// is correct for that version. Reads of a published *Doc are safe
// because a Doc is immutable after build. (Reading a dom tree
// concurrently with mutation was never safe; the index does not change
// that contract.)
package index

import (
	"sort"
	"sync/atomic"

	"repro/internal/dom"
	"repro/internal/faultpoint"
)

func init() {
	// A rolled-back update rewinds its tree's version counter, which
	// would let an index built during the rolled-back window read as
	// fresh once the counter climbs back to the build version (ABA).
	// Overwrite the slot with a permanently stale marker — atomic.Value
	// cannot store nil, and version ^0 never matches a live counter, so
	// every accessor sees "stale" and the next probe rebuilds.
	dom.OnVersionRestore(func(root *dom.Node) {
		if _, ok := root.LoadIndexCache().(*Doc); ok {
			root.StoreIndexCache(&Doc{root: root, version: ^uint64(0)})
		}
	})
}

// span is a node's position in the pre-order numbering: the node's own
// number and the largest number in its subtree (attributes included).
// d is a descendant of a iff a.pre < d.pre && d.pre <= a.end.
type span struct {
	pre, end uint64
}

// nameKey is an expanded element name (prefixes are irrelevant).
type nameKey struct {
	space, local string
}

// Doc is one tree's index, immutable after build (the two probe
// counters are advisory atomics for the rebuild heuristic, not index
// content). All node slices are in document order.
type Doc struct {
	root    *dom.Node
	version uint64 // root.Version() at build time

	names map[nameKey][]*dom.Node // element-name index
	ids   map[string][]*dom.Node  // no-namespace "id" attribute index
	order map[*dom.Node]span      // pre/size numbering, every node

	// Probe's rebuild heuristic: how many probes arrived while this
	// index was stale, and at which tree version they were counted.
	// Racy by design — a lost increment only delays a rebuild by one
	// probe.
	probeV atomic.Uint64
	probeN atomic.Int64
}

// Package-wide counters (process lifetime): how many indexes were
// built, and how many probes were answered from an index. Builds is
// the test hook for "rebuild is lazy"; Hits surfaces in the profiler
// and serve.Metrics.
var (
	builds atomic.Int64
	hits   atomic.Int64
)

// Stats is a snapshot of the package counters.
type Stats struct {
	Builds int64 // indexes constructed since process start
	Hits   int64 // probes answered from an index
}

// Snapshot returns the current counters.
func Snapshot() Stats {
	return Stats{Builds: builds.Load(), Hits: hits.Load()}
}

// For returns a fresh index for the tree containing n, building one if
// the cached index is missing or stale. The returned Doc is valid
// until the tree's next mutation.
func For(n *dom.Node) *Doc {
	root := n.Root()
	if d, ok := root.LoadIndexCache().(*Doc); ok && d.version == root.Version() {
		return d
	}
	d := build(root)
	root.StoreIndexCache(d)
	return d
}

// rebuildProbes is Probe's amortisation threshold: a stale index is
// rebuilt only once this many probes have arrived at one unchanged
// tree version. Building costs a few tree walks' worth of map inserts,
// so a mutation-heavy workload (an event listener that queries a page
// it is about to mutate again) must not rebuild per version — its
// probes scan instead — while any read phase that settles on a version
// crosses the threshold almost immediately and gets the index back.
const rebuildProbes = 4

// Probe returns a fresh index for the tree containing n if having one
// is worth it, or nil when the caller should scan. A never-indexed
// tree builds immediately (first probe wins for every read-only
// workload); a tree whose index went stale rebuilds only after
// rebuildProbes probes at the current version, so alternating
// mutate/query traffic settles into scans instead of paying a full
// rebuild per mutation. This is the entry point for the runtime's
// planned path steps and fn:id; For bypasses the heuristic.
func Probe(n *dom.Node) *Doc {
	root := n.Root()
	d, ok := root.LoadIndexCache().(*Doc)
	if !ok {
		if faultpoint.Hit(faultpoint.PointIndexBuild) != nil {
			return nil // degrade: caller scans instead of building
		}
		return For(n)
	}
	v := root.Version()
	if d.version == v {
		return d
	}
	if d.probeV.Load() != v {
		d.probeV.Store(v)
		d.probeN.Store(0)
	}
	if d.probeN.Add(1) < rebuildProbes {
		return nil
	}
	if faultpoint.Hit(faultpoint.PointIndexBuild) != nil {
		return nil // degrade: keep scanning until builds succeed again
	}
	return For(n)
}

// Fresh returns the cached index for the tree containing n only if it
// is already built and current; it never builds. Callers with a cheap
// fallback (the document-order sort in the runtime) use this so that
// workloads which never probe an index never pay for building one.
func Fresh(n *dom.Node) *Doc {
	root := n.Root()
	if d, ok := root.LoadIndexCache().(*Doc); ok && d.version == root.Version() {
		return d
	}
	return nil
}

// build walks the tree once, numbering every node (elements, text,
// comments, PIs and attributes — the same visit order as the
// document-order stamps in dom) and filling the name and id maps.
func build(root *dom.Node) *Doc {
	builds.Add(1)
	d := &Doc{
		root:    root,
		version: root.Version(),
		names:   map[nameKey][]*dom.Node{},
		ids:     map[string][]*dom.Node{},
		order:   map[*dom.Node]span{},
	}
	var pre uint64
	var visit func(n *dom.Node) uint64
	visit = func(n *dom.Node) uint64 {
		pre++
		my := pre
		if n.Type == dom.ElementNode {
			k := nameKey{space: n.Name.Space, local: n.Name.Local}
			d.names[k] = append(d.names[k], n)
			if id := n.AttrValue("id"); id != "" {
				d.ids[id] = append(d.ids[id], n)
			}
		}
		for _, a := range n.Attrs() {
			pre++
			d.order[a] = span{pre: pre, end: pre}
		}
		end := pre
		for _, c := range n.Children() {
			end = visit(c)
		}
		d.order[n] = span{pre: my, end: end}
		return end
	}
	visit(root)
	return d
}

// fresh reports whether the index still matches its tree. Every
// accessor checks it before touching the maps: a Doc held across a
// mutation answers ok=false and the caller falls back to scanning.
func (d *Doc) fresh() bool { return d.version == d.root.Version() }

// Span returns a node's pre/end numbers. ok is false when the index is
// stale or the node joined the tree after the build (impossible while
// fresh, since joining bumps the version).
func (d *Doc) Span(n *dom.Node) (pre, end uint64, ok bool) {
	if !d.fresh() {
		return 0, 0, false
	}
	s, ok := d.order[n]
	return s.pre, s.end, ok
}

// IsDescendant reports whether desc is a proper descendant of anc, in
// O(1). ok is false when the index cannot answer (stale, or a node is
// not in this tree).
func (d *Doc) IsDescendant(anc, desc *dom.Node) (is, ok bool) {
	if !d.fresh() {
		return false, false
	}
	a, okA := d.order[anc]
	x, okB := d.order[desc]
	if !okA || !okB {
		return false, false
	}
	return a.pre < x.pre && x.pre <= a.end, true
}

// DescendantsByName returns the elements with the given expanded name
// inside n's subtree, in document order, sliced out of the name list
// by binary search on the pre numbers (no allocation). orSelf includes
// n itself when it carries the name. ok is false when the index is
// stale or n is not in this tree; the caller must then scan.
func (d *Doc) DescendantsByName(n *dom.Node, space, local string, orSelf bool) (nodes []*dom.Node, ok bool) {
	if !d.fresh() {
		return nil, false
	}
	s, okN := d.order[n]
	if !okN {
		return nil, false
	}
	list := d.names[nameKey{space: space, local: local}]
	lo := s.pre + 1
	if orSelf {
		lo = s.pre
	}
	i := sort.Search(len(list), func(i int) bool { return d.order[list[i]].pre >= lo })
	j := sort.Search(len(list), func(j int) bool { return d.order[list[j]].pre > s.end })
	hits.Add(1)
	return list[i:j], true
}

// DescendantsByID returns the elements inside n's subtree whose "id"
// attribute equals id, in document order. orSelf includes n itself.
// The id list for one value is almost always a singleton, so this
// filters linearly instead of slicing.
func (d *Doc) DescendantsByID(n *dom.Node, id string, orSelf bool) (nodes []*dom.Node, ok bool) {
	if !d.fresh() {
		return nil, false
	}
	s, okN := d.order[n]
	if !okN {
		return nil, false
	}
	lo := s.pre + 1
	if orSelf {
		lo = s.pre
	}
	var out []*dom.Node
	for _, e := range d.ids[id] {
		if p := d.order[e].pre; p >= lo && p <= s.end {
			out = append(out, e)
		}
	}
	hits.Add(1)
	return out, true
}

// ByID returns every element in the tree whose "id" attribute equals
// id, in document order (fn:id's per-value lookup).
func (d *Doc) ByID(id string) (nodes []*dom.Node, ok bool) {
	if !d.fresh() {
		return nil, false
	}
	hits.Add(1)
	return d.ids[id], true
}

// SortDedup document-orders and deduplicates nodes in place using the
// pre numbers: O(k) when the input is already sorted (the common case
// for per-step results, which arrive in document order per focus
// node), O(k log k) otherwise — never the O(tree) re-stamp of the
// fallback path. ok is false when the index is stale or some node is
// outside this tree (e.g. freshly constructed content); the caller
// must then fall back to the comparison sort.
func (d *Doc) SortDedup(nodes []*dom.Node) (out []*dom.Node, ok bool) {
	if !d.fresh() {
		return nil, false
	}
	pres := make([]uint64, len(nodes))
	sorted := true
	for i, n := range nodes {
		s, okN := d.order[n]
		if !okN {
			return nil, false
		}
		pres[i] = s.pre
		if i > 0 && s.pre < pres[i-1] {
			sorted = false
		}
	}
	if !sorted {
		sort.Sort(&byPre{nodes: nodes, pres: pres})
	}
	// Adjacent dedup: equal pre numbers mean the same node.
	w := 0
	for i, n := range nodes {
		if i > 0 && pres[i] == pres[w-1] {
			continue
		}
		nodes[w], pres[w] = n, pres[i]
		w++
	}
	return nodes[:w], true
}

// byPre sorts a node slice by pre number, keeping the two slices
// aligned.
type byPre struct {
	nodes []*dom.Node
	pres  []uint64
}

func (s *byPre) Len() int           { return len(s.nodes) }
func (s *byPre) Less(i, j int) bool { return s.pres[i] < s.pres[j] }
func (s *byPre) Swap(i, j int) {
	s.nodes[i], s.nodes[j] = s.nodes[j], s.nodes[i]
	s.pres[i], s.pres[j] = s.pres[j], s.pres[i]
}
