package index_test

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/dom/index"
	"repro/internal/markup"
)

// testDoc parses a small fixture with known names, ids and nesting.
func testDoc(t *testing.T) *dom.Node {
	t.Helper()
	d, err := markup.Parse(`<root id="r">
  <a id="a1"><b id="b1"/><c>t1</c></a>
  <a id="a2"><b/><b id="b2"/></a>
  <c id="c1"/>
</root>`)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func elem(t *testing.T, root *dom.Node, id string) *dom.Node {
	t.Helper()
	var out *dom.Node
	root.Walk(func(n *dom.Node) bool {
		if n.Type == dom.ElementNode && n.AttrValue("id") == id {
			out = n
			return false
		}
		return true
	})
	if out == nil {
		t.Fatalf("no element with id %q", id)
	}
	return out
}

func TestDescendantsByName(t *testing.T) {
	doc := testDoc(t)
	idx := index.For(doc)
	root := elem(t, doc, "r")

	bs, ok := idx.DescendantsByName(root, "", "b", false)
	if !ok || len(bs) != 3 {
		t.Fatalf("b under root = %d (ok=%v), want 3", len(bs), ok)
	}
	a2 := elem(t, doc, "a2")
	bs, ok = idx.DescendantsByName(a2, "", "b", false)
	if !ok || len(bs) != 2 {
		t.Fatalf("b under a2 = %d (ok=%v), want 2", len(bs), ok)
	}
	// Document order: the unnamed b precedes b2.
	if bs[1].AttrValue("id") != "b2" {
		t.Fatalf("b list out of document order: %v", bs)
	}
	// orSelf includes the focus node exactly when the name matches.
	self, ok := idx.DescendantsByName(a2, "", "a", true)
	if !ok || len(self) != 1 || self[0] != a2 {
		t.Fatalf("a-or-self under a2 = %v (ok=%v), want [a2]", self, ok)
	}
	if cs, ok := idx.DescendantsByName(a2, "", "c", false); !ok || len(cs) != 0 {
		t.Fatalf("c under a2 = %d (ok=%v), want 0", len(cs), ok)
	}
	if miss, ok := idx.DescendantsByName(root, "", "zzz", false); !ok || len(miss) != 0 {
		t.Fatalf("zzz under root = %d (ok=%v), want 0", len(miss), ok)
	}
}

func TestDescendantsByIDAndByID(t *testing.T) {
	doc := testDoc(t)
	idx := index.For(doc)
	root := elem(t, doc, "r")
	a1 := elem(t, doc, "a1")

	if got, ok := idx.DescendantsByID(root, "b2", false); !ok || len(got) != 1 || got[0].AttrValue("id") != "b2" {
		t.Fatalf("b2 under root = %v (ok=%v)", got, ok)
	}
	// b2 lives under a2, not a1.
	if got, ok := idx.DescendantsByID(a1, "b2", false); !ok || len(got) != 0 {
		t.Fatalf("b2 under a1 = %v (ok=%v), want empty", got, ok)
	}
	// orSelf picks up the focus node's own id.
	if got, ok := idx.DescendantsByID(a1, "a1", true); !ok || len(got) != 1 || got[0] != a1 {
		t.Fatalf("a1-or-self = %v (ok=%v)", got, ok)
	}
	if got, ok := idx.DescendantsByID(a1, "a1", false); !ok || len(got) != 0 {
		t.Fatalf("a1 proper-descendant = %v (ok=%v), want empty", got, ok)
	}
	if got, ok := idx.ByID("c1"); !ok || len(got) != 1 || got[0].AttrValue("id") != "c1" {
		t.Fatalf("ByID(c1) = %v (ok=%v)", got, ok)
	}
	if got, ok := idx.ByID("nope"); !ok || len(got) != 0 {
		t.Fatalf("ByID(nope) = %v (ok=%v), want empty", got, ok)
	}
}

func TestIsDescendantAndSpan(t *testing.T) {
	doc := testDoc(t)
	idx := index.For(doc)
	root := elem(t, doc, "r")
	a1, a2, b2 := elem(t, doc, "a1"), elem(t, doc, "a2"), elem(t, doc, "b2")

	cases := []struct {
		anc, desc *dom.Node
		want      bool
	}{
		{root, a1, true},
		{root, b2, true},
		{a2, b2, true},
		{a1, b2, false},
		{b2, a2, false},
		{a1, a1, false}, // proper descendant only
	}
	for _, c := range cases {
		is, ok := idx.IsDescendant(c.anc, c.desc)
		if !ok || is != c.want {
			t.Errorf("IsDescendant(%s, %s) = %v (ok=%v), want %v",
				c.anc.AttrValue("id"), c.desc.AttrValue("id"), is, ok, c.want)
		}
	}
	// A node from another tree is unknown to this index.
	other := testDoc(t)
	if _, ok := idx.IsDescendant(root, elem(t, other, "b2")); ok {
		t.Error("IsDescendant answered for a foreign node")
	}
	pre, end, ok := idx.Span(a2)
	if !ok || pre >= end {
		t.Fatalf("Span(a2) = (%d, %d, %v), want pre < end", pre, end, ok)
	}
	if p, _, _ := idx.Span(b2); p <= pre || p > end {
		t.Fatalf("b2 pre %d outside a2 span (%d, %d]", p, pre, end)
	}
}

func TestSortDedup(t *testing.T) {
	doc := testDoc(t)
	idx := index.For(doc)
	a1, a2, c1, b2 := elem(t, doc, "a1"), elem(t, doc, "a2"), elem(t, doc, "c1"), elem(t, doc, "b2")

	got, ok := idx.SortDedup([]*dom.Node{c1, a2, b2, a1, a2, c1})
	if !ok {
		t.Fatal("SortDedup failed on in-tree nodes")
	}
	want := []*dom.Node{a1, a2, b2, c1}
	if len(got) != len(want) {
		t.Fatalf("SortDedup returned %d nodes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortDedup[%d] = %s, want %s", i, got[i].AttrValue("id"), want[i].AttrValue("id"))
		}
	}
	// Already-sorted input passes through unchanged.
	sorted, ok := idx.SortDedup([]*dom.Node{a1, b2, c1})
	if !ok || len(sorted) != 3 {
		t.Fatalf("SortDedup(sorted) = %v (ok=%v)", sorted, ok)
	}
	// A node outside the tree fails the whole call, before any
	// reordering of the input.
	in := []*dom.Node{c1, a1, dom.NewElement(dom.QName{Local: "x"})}
	if _, ok := idx.SortDedup(in); ok {
		t.Fatal("SortDedup accepted a foreign node")
	}
	if in[0] != c1 || in[1] != a1 {
		t.Fatal("failed SortDedup reordered its input")
	}
}

// mutation drives one tree.go mutator against a freshly indexed tree.
type mutation struct {
	name string
	op   func(t *testing.T, doc *dom.Node)
}

var mutations = []mutation{
	{"AppendChild", func(t *testing.T, doc *dom.Node) {
		must(t, elem(t, doc, "a1").AppendChild(dom.NewElement(dom.QName{Local: "b"})))
	}},
	{"PrependChild", func(t *testing.T, doc *dom.Node) {
		must(t, elem(t, doc, "a1").PrependChild(dom.NewElement(dom.QName{Local: "b"})))
	}},
	{"InsertBefore", func(t *testing.T, doc *dom.Node) {
		a2 := elem(t, doc, "a2")
		must(t, a2.Parent().InsertBefore(dom.NewElement(dom.QName{Local: "b"}), a2))
	}},
	{"InsertAfter", func(t *testing.T, doc *dom.Node) {
		a2 := elem(t, doc, "a2")
		must(t, a2.Parent().InsertAfter(dom.NewElement(dom.QName{Local: "b"}), a2))
	}},
	{"Detach", func(t *testing.T, doc *dom.Node) {
		elem(t, doc, "a2").Detach()
	}},
	{"ReplaceChild", func(t *testing.T, doc *dom.Node) {
		a2 := elem(t, doc, "a2")
		must(t, a2.Parent().ReplaceChild(dom.NewElement(dom.QName{Local: "b"}), a2))
	}},
	{"SetAttr", func(t *testing.T, doc *dom.Node) {
		elem(t, doc, "b1").SetAttr(dom.QName{Local: "id"}, "renamed")
	}},
	{"AddAttrNode", func(t *testing.T, doc *dom.Node) {
		must(t, elem(t, doc, "b1").AddAttrNode(dom.NewAttr(dom.QName{Local: "x"}, "1")))
	}},
	{"RemoveAttr", func(t *testing.T, doc *dom.Node) {
		elem(t, doc, "b1").RemoveAttr(dom.QName{Local: "id"})
	}},
	{"Rename", func(t *testing.T, doc *dom.Node) {
		elem(t, doc, "b1").Rename(dom.QName{Local: "renamed"})
	}},
	{"SetData", func(t *testing.T, doc *dom.Node) {
		var text *dom.Node
		doc.Walk(func(n *dom.Node) bool {
			if n.Type == dom.TextNode {
				text = n
				return false
			}
			return true
		})
		if text == nil {
			t.Fatal("no text node in fixture")
		}
		text.SetData("changed")
	}},
	{"ReplaceElementContent", func(t *testing.T, doc *dom.Node) {
		elem(t, doc, "a2").ReplaceElementContent("flat")
	}},
	{"RemoveChildren", func(t *testing.T, doc *dom.Node) {
		elem(t, doc, "a2").RemoveChildren()
	}},
	{"NormalizeText", func(t *testing.T, doc *dom.Node) {
		c := elem(t, doc, "a1").Children()[1]
		must(t, c.AppendChild(dom.NewText("t2")))
		c.NormalizeText()
	}},
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestMutatorsInvalidate: every mutator in dom/tree.go bumps the
// version, so a built index goes stale (Fresh returns nil, every
// accessor of the old Doc answers ok=false), no rebuild happens until
// the next For (lazy — the builds counter is the hook), and the rebuilt
// index reflects the mutated tree.
func TestMutatorsInvalidate(t *testing.T) {
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			doc := testDoc(t)
			idx := index.For(doc)
			if index.Fresh(doc) != idx {
				t.Fatal("Fresh does not return the just-built index")
			}
			if again := index.For(doc); again != idx {
				t.Fatal("For rebuilt an index that was still fresh")
			}
			base := index.Snapshot().Builds

			m.op(t, doc)

			if got := index.Fresh(doc); got != nil {
				t.Fatalf("Fresh = %p after %s, want nil (stale index consulted)", got, m.name)
			}
			if _, ok := idx.ByID("a1"); ok {
				t.Fatalf("stale index answered ByID after %s", m.name)
			}
			if _, ok := idx.DescendantsByName(doc, "", "a", false); ok {
				t.Fatalf("stale index answered DescendantsByName after %s", m.name)
			}
			if _, _, ok := idx.Span(doc); ok {
				t.Fatalf("stale index answered Span after %s", m.name)
			}
			if d := index.Snapshot().Builds - base; d != 0 {
				t.Fatalf("%s itself triggered %d rebuilds, want 0 (rebuild must be lazy)", m.name, d)
			}

			rebuilt := index.For(doc)
			if rebuilt == idx {
				t.Fatalf("For returned the stale index after %s", m.name)
			}
			if d := index.Snapshot().Builds - base; d != 1 {
				t.Fatalf("For after %s built %d indexes, want 1", m.name, d)
			}
			// The rebuilt index answers for the mutated tree: walk and
			// index must agree on the element population.
			var walked int
			doc.Walk(func(n *dom.Node) bool {
				if n.Type == dom.ElementNode && n.Name.Local == "b" {
					walked++
				}
				return true
			})
			got, ok := rebuilt.DescendantsByName(doc, "", "b", false)
			if !ok || len(got) != walked {
				t.Fatalf("rebuilt index finds %d <b> (ok=%v), walk finds %d", len(got), ok, walked)
			}
		})
	}
}

// TestProbeAmortisesRebuilds: a cold tree builds on the first Probe, a
// stale one only after sustained probe traffic at one version — and a
// fresh mutation resets the count, so alternating mutate/probe
// workloads never rebuild.
func TestProbeAmortisesRebuilds(t *testing.T) {
	doc := testDoc(t)
	base := index.Snapshot().Builds

	idx := index.Probe(doc)
	if idx == nil {
		t.Fatal("Probe declined to build on a cold tree")
	}
	if d := index.Snapshot().Builds - base; d != 1 {
		t.Fatalf("cold Probe built %d indexes, want 1", d)
	}
	if index.Probe(doc) != idx {
		t.Fatal("Probe on a fresh tree did not return the cached index")
	}

	// Alternating mutation and probe: the version moves every time, so
	// the per-version probe count never accumulates and Probe keeps
	// declining.
	a1 := elem(t, doc, "a1")
	for i := 0; i < 10; i++ {
		a1.SetAttr(dom.QName{Local: "n"}, "x")
		if got := index.Probe(doc); got != nil {
			t.Fatalf("Probe rebuilt on mutation round %d, want decline", i)
		}
	}
	if d := index.Snapshot().Builds - base; d != 1 {
		t.Fatalf("mutate/probe churn built %d extra indexes, want 0", d-1)
	}

	// Once the tree settles, sustained probes cross the threshold and
	// rebuild exactly once.
	var rebuilt *index.Doc
	for i := 0; i < 10 && rebuilt == nil; i++ {
		rebuilt = index.Probe(doc)
	}
	if rebuilt == nil {
		t.Fatal("sustained probes on a settled tree never rebuilt")
	}
	if d := index.Snapshot().Builds - base; d != 2 {
		t.Fatalf("settling built %d total indexes, want 2", d)
	}
	if got, ok := rebuilt.DescendantsByName(doc, "", "b", false); !ok || len(got) != 3 {
		t.Fatalf("rebuilt index finds %d <b> (ok=%v), want 3", len(got), ok)
	}
}

// TestConcurrentFor: racing builders on a cold tree are idempotent —
// run with -race, both goroutines must observe a usable index.
func TestConcurrentFor(t *testing.T) {
	doc := testDoc(t)
	done := make(chan *index.Doc, 2)
	for i := 0; i < 2; i++ {
		go func() { done <- index.For(doc) }()
	}
	for i := 0; i < 2; i++ {
		idx := <-done
		if got, ok := idx.DescendantsByName(doc, "", "b", false); !ok || len(got) != 3 {
			t.Errorf("concurrent build: b = %d (ok=%v), want 3", len(got), ok)
		}
	}
}
