package index_test

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/dom/index"
	"repro/internal/faultpoint"
)

// TestRestoreVersionInvalidatesIndex pins the ABA hazard the
// version-restore hook exists for: an index built at version v+k must
// not read as fresh when a rollback rewinds the counter and later
// mutations climb it back to v+k with a different tree shape.
func TestRestoreVersionInvalidatesIndex(t *testing.T) {
	doc := testDoc(t)
	root := elem(t, doc, "r")
	v0 := doc.Version()

	// Mutation #1 (simulating a primitive mid-apply), then an index
	// built at the bumped version.
	child := dom.NewElement(dom.Name("mid"))
	if err := root.AppendChild(child); err != nil {
		t.Fatal(err)
	}
	v1 := doc.Version()
	d := index.For(doc)
	if got, ok := d.DescendantsByName(doc, "", "mid", false); !ok || len(got) != 1 {
		t.Fatalf("mid-apply index broken: ok=%v n=%d", ok, len(got))
	}

	// Rollback: undo the mutation, rewind the counter.
	child.Detach()
	doc.RestoreVersion(v0)
	if doc.Version() != v0 {
		t.Fatalf("version = %d, want %d", doc.Version(), v0)
	}
	if index.Fresh(doc) != nil {
		t.Fatal("index survived a version restore")
	}

	// Climb the counter back to exactly the mid-apply build version
	// with a different mutation. Without the restore hook the stale
	// index (which still lists <mid>) would now read as fresh.
	for doc.Version() < v1 {
		if err := root.AppendChild(dom.NewElement(dom.Name("other"))); err != nil {
			t.Fatal(err)
		}
	}
	if doc.Version() != v1 {
		t.Fatalf("could not reproduce version %d", v1)
	}
	if got := index.Fresh(doc); got != nil {
		if nodes, ok := got.DescendantsByName(doc, "", "mid", false); ok && len(nodes) != 0 {
			t.Fatal("ABA: rolled-back index answered with a deleted node")
		}
		t.Fatal("ABA: index built in a rolled-back window reads as fresh")
	}
	// A rebuild at the reproduced version must see the real tree.
	d2 := index.For(doc)
	if nodes, ok := d2.DescendantsByName(doc, "", "mid", false); !ok || len(nodes) != 0 {
		t.Fatalf("rebuilt index wrong: ok=%v mid=%d", ok, len(nodes))
	}
}

// TestProbeFaultFallsBackToScan asserts the degraded mode: a fault at
// the index.build point makes Probe report "no index" (the caller
// scans) instead of failing, and builds resume once the fault clears.
func TestProbeFaultFallsBackToScan(t *testing.T) {
	defer faultpoint.Reset()
	doc := testDoc(t)
	before := index.Snapshot()

	faultpoint.Enable(faultpoint.PointIndexBuild, faultpoint.Always())
	if d := index.Probe(doc); d != nil {
		t.Fatal("probe built an index through an armed build fault")
	}
	if index.Snapshot().Builds != before.Builds {
		t.Fatal("a build ran despite the fault")
	}

	faultpoint.Reset()
	if d := index.Probe(doc); d == nil {
		t.Fatal("probe did not recover after the fault cleared")
	}
	if index.Snapshot().Builds != before.Builds+1 {
		t.Fatalf("builds = %d, want %d", index.Snapshot().Builds, before.Builds+1)
	}
	if _, fires := faultpoint.Stats(faultpoint.PointIndexBuild); fires != 0 {
		t.Fatal("stats should be zero after reset")
	}
}
