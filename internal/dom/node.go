// Package dom implements a mutable XML/HTML document object model with
// DOM Level 3 style event dispatch. It is the tree the browser renders
// and the store the XQuery engine's data model wraps ("implementing the
// XDM on top of the DOM", paper §5.2).
//
// The package is self-contained: it knows nothing about XQuery. Higher
// layers (internal/xdm, internal/browser, internal/core) build on it.
package dom

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// NodeType enumerates the node kinds of the XDM/DOM intersection.
type NodeType int

// Node kinds. Namespace nodes are modelled as regular attributes in the
// xmlns namespace; entity and CDATA nodes are resolved by the parser.
const (
	DocumentNode NodeType = iota + 1
	ElementNode
	AttributeNode
	TextNode
	CommentNode
	ProcessingInstructionNode
)

// String returns the conventional name of the node type.
func (t NodeType) String() string {
	switch t {
	case DocumentNode:
		return "document"
	case ElementNode:
		return "element"
	case AttributeNode:
		return "attribute"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case ProcessingInstructionNode:
		return "processing-instruction"
	default:
		return fmt.Sprintf("NodeType(%d)", int(t))
	}
}

// QName is an expanded XML name. Two QNames match when their Space and
// Local parts are equal; Prefix is retained only for serialization.
type QName struct {
	Space  string // namespace URI, "" for no namespace
	Prefix string // lexical prefix, "" for default/none
	Local  string
}

// Name builds a QName in no namespace.
func Name(local string) QName { return QName{Local: local} }

// NameNS builds a QName in the given namespace URI.
func NameNS(space, local string) QName { return QName{Space: space, Local: local} }

// String renders the lexical form (prefix:local or local).
func (q QName) String() string {
	if q.Prefix != "" {
		return q.Prefix + ":" + q.Local
	}
	return q.Local
}

// Matches reports whether the expanded names are equal (prefix ignored).
func (q QName) Matches(o QName) bool { return q.Space == o.Space && q.Local == o.Local }

// IsZero reports whether the QName is the zero value.
func (q QName) IsZero() bool { return q.Space == "" && q.Prefix == "" && q.Local == "" }

// Node is a node in a document tree. All kinds share this struct; fields
// that do not apply to a kind are zero. Nodes must only be mutated
// through the methods of this package so that parent/sibling links and
// the document-order cache stay consistent.
type Node struct {
	Type NodeType
	Name QName  // element, attribute, PI (Local = target) names
	Data string // text/comment content, attribute value, PI data

	// BaseURI is set on document nodes (fn:doc identity, same-origin
	// checks) and inherited by descendants.
	BaseURI string

	parent   *Node
	children []*Node
	attrs    []*Node // attribute nodes; their parent is this element

	listeners []*listener

	// order cache: stamp valid while the owning document's version
	// matches stampVersion.
	stamp        uint64
	stampVersion uint64
	// version is the root node's mutation counter, bumped on every
	// mutation of its tree. It is atomic so independent update groups
	// (internal/xquery/update's parallel apply) may mutate disjoint
	// subtrees of one tree concurrently: the counter is the only field
	// those groups share.
	version atomic.Uint64

	// indexCache holds the version-stamped index of the tree rooted at
	// this node (see internal/dom/index); meaningful on roots only.
	indexCache atomic.Value

	// ftCache holds the version-stamped full-text index of the tree
	// rooted at this node (see internal/fulltext/index); meaningful on
	// roots only. A separate slot from indexCache so the two indexes
	// build and invalidate independently.
	ftCache atomic.Value
}

// NewDocument creates an empty document node.
func NewDocument() *Node { return &Node{Type: DocumentNode} }

// NewDocumentOf creates a document node with the given base URI and
// adopts the (detached) children into it — the constructor transport
// layers use to rebuild a document identity around a deserialized
// root element.
func NewDocumentOf(baseURI string, children ...*Node) *Node {
	d := &Node{Type: DocumentNode, BaseURI: baseURI}
	for _, c := range children {
		_ = d.AppendChild(c)
	}
	return d
}

// NewElement creates a detached element node.
func NewElement(name QName) *Node { return &Node{Type: ElementNode, Name: name} }

// NewText creates a detached text node.
func NewText(data string) *Node { return &Node{Type: TextNode, Data: data} }

// NewComment creates a detached comment node.
func NewComment(data string) *Node { return &Node{Type: CommentNode, Data: data} }

// NewAttr creates a detached attribute node.
func NewAttr(name QName, value string) *Node {
	return &Node{Type: AttributeNode, Name: name, Data: value}
}

// NewPI creates a detached processing-instruction node.
func NewPI(target, data string) *Node {
	return &Node{Type: ProcessingInstructionNode, Name: Name(target), Data: data}
}

// Parent returns the parent node (the owning element for attributes),
// or nil for detached nodes and documents.
func (n *Node) Parent() *Node { return n.parent }

// Children returns the child list. Callers must not mutate the slice.
func (n *Node) Children() []*Node { return n.children }

// Attrs returns the attribute nodes of an element in insertion order.
// Callers must not mutate the slice.
func (n *Node) Attrs() []*Node { return n.attrs }

// Root walks to the topmost ancestor (the document, for attached nodes).
func (n *Node) Root() *Node {
	r := n
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// Document returns the owning document node, or nil if detached.
func (n *Node) Document() *Node {
	r := n.Root()
	if r.Type == DocumentNode {
		return r
	}
	return nil
}

// DocumentElement returns the first element child of a document.
func (n *Node) DocumentElement() *Node {
	for _, c := range n.children {
		if c.Type == ElementNode {
			return c
		}
	}
	return nil
}

// Base returns the effective base URI: the nearest ancestor-or-self
// BaseURI that is set.
func (n *Node) Base() string {
	for a := n; a != nil; a = a.parent {
		if a.BaseURI != "" {
			return a.BaseURI
		}
	}
	return ""
}

// StringValue returns the XDM string value: concatenated descendant text
// for documents and elements, Data for the others.
func (n *Node) StringValue() string {
	switch n.Type {
	case DocumentNode, ElementNode:
		var b strings.Builder
		n.appendText(&b)
		return b.String()
	default:
		return n.Data
	}
}

func (n *Node) appendText(b *strings.Builder) {
	for _, c := range n.children {
		switch c.Type {
		case TextNode:
			b.WriteString(c.Data)
		case ElementNode:
			c.appendText(b)
		}
	}
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name QName) (string, bool) {
	for _, a := range n.attrs {
		if a.Name.Matches(name) {
			return a.Data, true
		}
	}
	return "", false
}

// AttrValue returns the value of the named no-namespace attribute, or "".
func (n *Node) AttrValue(local string) string {
	v, _ := n.Attr(Name(local))
	return v
}

// AttrNode returns the attribute node with the given name, or nil.
func (n *Node) AttrNode(name QName) *Node {
	for _, a := range n.attrs {
		if a.Name.Matches(name) {
			return a
		}
	}
	return nil
}

// FirstChild returns the first child or nil.
func (n *Node) FirstChild() *Node {
	if len(n.children) == 0 {
		return nil
	}
	return n.children[0]
}

// LastChild returns the last child or nil.
func (n *Node) LastChild() *Node {
	if len(n.children) == 0 {
		return nil
	}
	return n.children[len(n.children)-1]
}

// childIndex returns n's position in its parent's child list, -1 if
// detached or an attribute.
func (n *Node) childIndex() int {
	if n.parent == nil || n.Type == AttributeNode {
		return -1
	}
	for i, c := range n.parent.children {
		if c == n {
			return i
		}
	}
	return -1
}

// NextSibling returns the following sibling or nil.
func (n *Node) NextSibling() *Node {
	i := n.childIndex()
	if i < 0 || i+1 >= len(n.parent.children) {
		return nil
	}
	return n.parent.children[i+1]
}

// PrevSibling returns the preceding sibling or nil.
func (n *Node) PrevSibling() *Node {
	i := n.childIndex()
	if i <= 0 {
		return nil
	}
	return n.parent.children[i-1]
}

// IsAncestorOf reports whether n is a proper ancestor of d.
func (n *Node) IsAncestorOf(d *Node) bool {
	for a := d.parent; a != nil; a = a.parent {
		if a == n {
			return true
		}
	}
	return false
}

// Walk visits n and every descendant (attributes excluded) in document
// order. Returning false from f stops the walk.
func (n *Node) Walk(f func(*Node) bool) bool {
	if !f(n) {
		return false
	}
	for _, c := range n.children {
		if !c.Walk(f) {
			return false
		}
	}
	return true
}

// Elements returns descendant-or-self elements matching name (any name
// if local is "*").
func (n *Node) Elements(local string) []*Node {
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && (local == "*" || c.Name.Local == local) {
			out = append(out, c)
		}
		return true
	})
	return out
}

// ElementByID returns the first descendant element whose "id" attribute
// equals id, or nil. This backs getElementById-style lookups.
func (n *Node) ElementByID(id string) *Node {
	var found *Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && c.AttrValue("id") == id {
			found = c
			return false
		}
		return true
	})
	return found
}

// Clone deep-copies the node and its subtree (and attributes). The copy
// is detached and carries no event listeners, matching XQuery copy
// semantics for constructed/inserted content.
func (n *Node) Clone() *Node {
	c := &Node{Type: n.Type, Name: n.Name, Data: n.Data, BaseURI: n.BaseURI}
	for _, a := range n.attrs {
		ac := &Node{Type: AttributeNode, Name: a.Name, Data: a.Data, parent: c}
		c.attrs = append(c.attrs, ac)
	}
	for _, k := range n.children {
		kc := k.Clone()
		kc.parent = c
		c.children = append(c.children, kc)
	}
	return c
}
