package dom

import "fmt"

// Mutation primitives. These are the only sanctioned ways to restructure
// a tree; they keep parent links and the document-order cache coherent.
// The XQuery Update Facility's apply phase (internal/xquery/update) and
// the HTML parser are the main callers.

func (n *Node) bumpVersion() {
	if r := n.Root(); r != nil {
		r.version.Add(1)
	}
}

func (n *Node) checkChild(c *Node) error {
	switch {
	case c == nil:
		return fmt.Errorf("dom: nil child")
	case c.Type == AttributeNode:
		return fmt.Errorf("dom: attribute node cannot be a child")
	case c.Type == DocumentNode:
		return fmt.Errorf("dom: document node cannot be a child")
	case c == n || c.IsAncestorOf(n):
		return fmt.Errorf("dom: cycle: node would contain itself")
	case n.Type != ElementNode && n.Type != DocumentNode:
		return fmt.Errorf("dom: %s node cannot have children", n.Type)
	}
	return nil
}

// AppendChild detaches c from its current parent and appends it to n.
func (n *Node) AppendChild(c *Node) error {
	if err := n.checkChild(c); err != nil {
		return err
	}
	c.Detach()
	c.parent = n
	n.children = append(n.children, c)
	n.bumpVersion()
	return nil
}

// PrependChild inserts c as n's first child.
func (n *Node) PrependChild(c *Node) error {
	if err := n.checkChild(c); err != nil {
		return err
	}
	c.Detach()
	c.parent = n
	n.children = append([]*Node{c}, n.children...)
	n.bumpVersion()
	return nil
}

// InsertBefore inserts c as a sibling immediately before ref, which must
// be a child of n.
func (n *Node) InsertBefore(c, ref *Node) error {
	if err := n.checkChild(c); err != nil {
		return err
	}
	if c == ref {
		return fmt.Errorf("dom: cannot insert a node relative to itself")
	}
	c.Detach()
	i := ref.childIndex()
	if ref.parent != n || i < 0 {
		return fmt.Errorf("dom: reference node is not a child")
	}
	c.parent = n
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
	n.bumpVersion()
	return nil
}

// InsertAfter inserts c as a sibling immediately after ref, which must
// be a child of n.
func (n *Node) InsertAfter(c, ref *Node) error {
	if err := n.checkChild(c); err != nil {
		return err
	}
	if c == ref {
		return fmt.Errorf("dom: cannot insert a node relative to itself")
	}
	c.Detach()
	i := ref.childIndex()
	if ref.parent != n || i < 0 {
		return fmt.Errorf("dom: reference node is not a child")
	}
	c.parent = n
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = c
	n.bumpVersion()
	return nil
}

// Detach removes n from its parent (child list or attribute list). It is
// a no-op for detached nodes.
func (n *Node) Detach() {
	p := n.parent
	if p == nil {
		return
	}
	n.bumpVersion()
	if n.Type == AttributeNode {
		for i, a := range p.attrs {
			if a == n {
				p.attrs = append(p.attrs[:i], p.attrs[i+1:]...)
				break
			}
		}
	} else {
		for i, c := range p.children {
			if c == n {
				p.children = append(p.children[:i], p.children[i+1:]...)
				break
			}
		}
	}
	n.parent = nil
}

// ReplaceChild replaces old (a child of n) with c.
func (n *Node) ReplaceChild(c, old *Node) error {
	if err := n.checkChild(c); err != nil {
		return err
	}
	i := old.childIndex()
	if old.parent != n || i < 0 {
		return fmt.Errorf("dom: replaced node is not a child")
	}
	c.Detach()
	old.parent = nil
	c.parent = n
	n.children[i] = c
	n.bumpVersion()
	return nil
}

// SetAttr sets (or adds) an attribute value by name and returns the
// attribute node.
func (n *Node) SetAttr(name QName, value string) *Node {
	if a := n.AttrNode(name); a != nil {
		a.Data = value
		n.bumpVersion()
		return a
	}
	a := NewAttr(name, value)
	a.parent = n
	n.attrs = append(n.attrs, a)
	n.bumpVersion()
	return a
}

// AddAttrNode attaches a detached attribute node to element n. It fails
// if an attribute with the same expanded name already exists.
func (n *Node) AddAttrNode(a *Node) error {
	if a.Type != AttributeNode {
		return fmt.Errorf("dom: %s node is not an attribute", a.Type)
	}
	if n.Type != ElementNode {
		return fmt.Errorf("dom: attributes only attach to elements")
	}
	if n.AttrNode(a.Name) != nil {
		return fmt.Errorf("dom: duplicate attribute %s", a.Name)
	}
	a.Detach()
	a.parent = n
	n.attrs = append(n.attrs, a)
	n.bumpVersion()
	return nil
}

// RestoreChildAt re-attaches a detached node as n's child at position
// i — the rollback path's undo of a removal, which must restore the
// child list (and so serialisation order) exactly. Unlike the insert
// mutators it takes a list position, because by the time an undo log
// unwinds, the sibling that anchored the original operation may itself
// be detached.
func (n *Node) RestoreChildAt(c *Node, i int) error {
	if err := n.checkChild(c); err != nil {
		return err
	}
	if c.parent != nil {
		return fmt.Errorf("dom: restored node is still attached")
	}
	if i < 0 || i > len(n.children) {
		return fmt.Errorf("dom: restore position %d out of range", i)
	}
	c.parent = n
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
	n.bumpVersion()
	return nil
}

// RestoreAttrAt re-attaches a detached attribute node at position i in
// n's attribute list. See RestoreChildAt; attributes keep their own
// list order under rollback for serialisation-identical documents.
func (n *Node) RestoreAttrAt(a *Node, i int) error {
	if a == nil || a.Type != AttributeNode {
		return fmt.Errorf("dom: restored node is not an attribute")
	}
	if n.Type != ElementNode {
		return fmt.Errorf("dom: attributes only attach to elements")
	}
	if a.parent != nil {
		return fmt.Errorf("dom: restored attribute is still attached")
	}
	if n.AttrNode(a.Name) != nil {
		return fmt.Errorf("dom: duplicate attribute %s", a.Name)
	}
	if i < 0 || i > len(n.attrs) {
		return fmt.Errorf("dom: restore position %d out of range", i)
	}
	a.parent = n
	n.attrs = append(n.attrs, nil)
	copy(n.attrs[i+1:], n.attrs[i:])
	n.attrs[i] = a
	n.bumpVersion()
	return nil
}

// RemoveAttr removes the named attribute if present.
func (n *Node) RemoveAttr(name QName) {
	if a := n.AttrNode(name); a != nil {
		a.Detach()
	}
}

// Rename changes the node's name (element, attribute or PI target).
func (n *Node) Rename(name QName) {
	n.Name = name
	n.bumpVersion()
}

// SetData replaces the character data of a text/comment/PI/attribute
// node.
func (n *Node) SetData(data string) {
	n.Data = data
	n.bumpVersion()
}

// ReplaceElementContent removes all children of n and, if text is
// non-empty, installs a single text child. This is the Update Facility's
// "replace value of node" on elements.
func (n *Node) ReplaceElementContent(text string) {
	for _, c := range n.children {
		c.parent = nil
	}
	n.children = n.children[:0]
	if text != "" {
		t := NewText(text)
		t.parent = n
		n.children = append(n.children, t)
	}
	n.bumpVersion()
}

// RemoveChildren detaches every child of n.
func (n *Node) RemoveChildren() {
	for _, c := range n.children {
		c.parent = nil
	}
	n.children = n.children[:0]
	n.bumpVersion()
}

// NormalizeText merges adjacent text child nodes and drops empty ones,
// recursively. Constructed XQuery content requires this normal form.
func (n *Node) NormalizeText() {
	out := n.children[:0]
	for _, c := range n.children {
		if c.Type == TextNode {
			if c.Data == "" {
				c.parent = nil
				continue
			}
			if len(out) > 0 && out[len(out)-1].Type == TextNode {
				out[len(out)-1].Data += c.Data
				c.parent = nil
				continue
			}
		}
		out = append(out, c)
	}
	n.children = out
	for _, c := range n.children {
		if c.Type == ElementNode {
			c.NormalizeText()
		}
	}
	n.bumpVersion()
}

// CompareOrder returns -1, 0 or +1 as a precedes, equals or follows b in
// document order. Nodes from different trees are ordered by an arbitrary
// but stable tie-break (root pointer identity), as the XDM allows.
// Attributes order after their owning element and among themselves by
// attribute-list position.
func CompareOrder(a, b *Node) int {
	if a == b {
		return 0
	}
	ra, rb := a.Root(), b.Root()
	if ra != rb {
		// Stable arbitrary inter-tree order.
		if fmt.Sprintf("%p", ra) < fmt.Sprintf("%p", rb) {
			return -1
		}
		return 1
	}
	// Same tree: lazily stamp the tree in document order; stamps are
	// cached until the next mutation.
	if v := ra.version.Load() + 1; a.stampVersion != v || b.stampVersion != v {
		stampTree(ra)
	}
	switch {
	case a.stamp < b.stamp:
		return -1
	case a.stamp > b.stamp:
		return 1
	default:
		return 0
	}
}

func stampTree(root *Node) {
	v := root.version.Load() + 1
	var n uint64
	var visit func(*Node)
	visit = func(x *Node) {
		n++
		x.stamp, x.stampVersion = n, v
		for _, a := range x.attrs {
			n++
			a.stamp, a.stampVersion = n, v
		}
		for _, c := range x.children {
			visit(c)
		}
	}
	visit(root)
}
