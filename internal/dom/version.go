package dom

// Version returns the mutation counter of the tree containing n. Every
// mutator in tree.go bumps the counter on the tree's root, so a cached
// derivation of the tree (the document-order stamps here, the
// per-document indexes in internal/dom/index) is valid exactly while
// the version it was built at still matches.
func (n *Node) Version() uint64 { return n.Root().version.Load() }

// versionRestoreHooks run whenever RestoreVersion rewinds a tree's
// counter. Registered at init time only (internal/dom/index installs
// its invalidator there), so the slice is never written concurrently.
var versionRestoreHooks []func(root *Node)

// OnVersionRestore registers f to run on the root of every tree whose
// version counter is rewound by RestoreVersion. It must only be called
// from package init functions: registration is not synchronised.
func OnVersionRestore(f func(root *Node)) {
	versionRestoreHooks = append(versionRestoreHooks, f)
}

// RestoreVersion rewinds the version counter of the tree containing n
// to v — the final step of rolling back a failed update, after the
// undo log has restored the tree's structure. Rewinding alone would
// re-arm an ABA hazard: stamps or indexes computed at a version the
// rollback skips over would read as fresh once the counter climbs back
// there. So RestoreVersion re-stamps the (now restored) tree's
// document order and fires the registered hooks, which drop any cached
// index built during the rolled-back window.
func (n *Node) RestoreVersion(v uint64) {
	root := n.Root()
	root.version.Store(v)
	stampTree(root)
	for _, f := range versionRestoreHooks {
		f(root)
	}
}

// LoadIndexCache returns the opaque per-document index slot stored on
// this node, or nil. The slot belongs to internal/dom/index: only that
// package may interpret the value, and only on root nodes. It is a
// plain field on the node (not a global registry) so an index dies
// with its document and never outlives it.
func (n *Node) LoadIndexCache() any { return n.indexCache.Load() }

// StoreIndexCache publishes a freshly built index for the tree rooted
// at n. See LoadIndexCache for the ownership contract.
func (n *Node) StoreIndexCache(v any) { n.indexCache.Store(v) }

// LoadFTIndexCache returns the opaque per-document full-text index
// slot stored on this node, or nil. The slot belongs to
// internal/fulltext/index under the same ownership contract as
// LoadIndexCache: only that package interprets the value, and only on
// root nodes.
func (n *Node) LoadFTIndexCache() any { return n.ftCache.Load() }

// StoreFTIndexCache publishes a freshly built full-text index for the
// tree rooted at n. See LoadFTIndexCache for the ownership contract.
func (n *Node) StoreFTIndexCache(v any) { n.ftCache.Store(v) }
