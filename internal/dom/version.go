package dom

// Version returns the mutation counter of the tree containing n. Every
// mutator in tree.go bumps the counter on the tree's root, so a cached
// derivation of the tree (the document-order stamps here, the
// per-document indexes in internal/dom/index) is valid exactly while
// the version it was built at still matches.
func (n *Node) Version() uint64 { return n.Root().version }

// LoadIndexCache returns the opaque per-document index slot stored on
// this node, or nil. The slot belongs to internal/dom/index: only that
// package may interpret the value, and only on root nodes. It is a
// plain field on the node (not a global registry) so an index dies
// with its document and never outlives it.
func (n *Node) LoadIndexCache() any { return n.indexCache.Load() }

// StoreIndexCache publishes a freshly built index for the tree rooted
// at n. See LoadIndexCache for the ownership contract.
func (n *Node) StoreIndexCache(v any) { n.indexCache.Store(v) }
