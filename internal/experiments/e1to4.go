package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dom"
)

// E1Pipeline instruments the Figure-1 plug-in pipeline: parse page →
// init plug-in → compile scripts → run main (listener registration) →
// event→listener dispatch, across page sizes.
func E1Pipeline() (Table, error) {
	t := Table{
		ID:     "E1",
		Title:  "Plug-in pipeline stage times (Figure 1)",
		Header: []string{"page", "parse", "init", "compile", "run main", "dispatch/op"},
		Notes: []string{
			"dispatch/op averages 200 click events through capture/target/bubble plus the XQuery listener",
		},
	}
	cases := []struct {
		name string
		divs int
	}{
		{"hello-world", 0},
		{"10 elements", 10},
		{"100 elements", 100},
		{"1000 elements", 1000},
	}
	for _, c := range cases {
		h, err := pipelinePage(c.divs)
		if err != nil {
			return t, err
		}
		const events = 200
		btn := h.Page.ElementByID("button")
		start := time.Now()
		for i := 0; i < events; i++ {
			h.Dispatch(&dom.Event{Type: "click", Bubbles: true, Button: 1}, btn)
		}
		perDispatch := time.Since(start) / events
		t.Rows = append(t.Rows, []string{
			c.name,
			dur(h.Times.ParsePage),
			dur(h.Times.InitPlugin),
			dur(h.Times.CompileScripts),
			dur(h.Times.RunMain),
			dur(perDispatch),
		})
	}
	return t, nil
}

func pipelinePage(divs int) (*core.Host, error) {
	var b strings.Builder
	b.WriteString(`<html><head><script type="text/xquery">
declare updating function local:onClick($evt, $obj) {
  replace value of node //span[@id="count"]
  with xs:integer(string(//span[@id="count"])) + 1
};
on event "click" at //input[@id="button"]
attach listener local:onClick
</script></head><body>
<input id="button" type="button"/><span id="count">0</span>`)
	for i := 0; i < divs; i++ {
		fmt.Fprintf(&b, `<div class="filler" id="d%d">content %d</div>`, i, i)
	}
	b.WriteString(`</body></html>`)
	return core.LoadPage(b.String(), "http://example.com/e1.html")
}

// E2Offloading replays the Reference 2.0 session under the three
// architectures of Figure 2.
func E2Offloading() (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "Server-to-client migration (Figure 2): 40-interaction session",
		Header: []string{"architecture", "server reqs", "server bytes", "server queries", "client gets", "cache hits", "served locally"},
		Notes: []string{
			"paper §6.1: whole documents cached in the browser so most user requests need no server interaction",
		},
	}
	r, err := apps.NewReference20(apps.DefaultCorpus)
	if err != nil {
		return t, err
	}
	defer r.Close()
	session := r.Session(40, 7)

	server, err := apps.NewServerSideApp(r)
	if err != nil {
		return t, err
	}
	sm, err := server.Replay(session)
	if err != nil {
		return t, err
	}
	addRow := func(name string, m apps.Metrics) {
		local := 100 * (1 - float64(m.ServerRequests)/float64(m.Interactions))
		if local < 0 {
			local = 0
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", m.ServerRequests),
			fmt.Sprintf("%d", m.ServerBytes),
			fmt.Sprintf("%d", m.ServerQueries),
			fmt.Sprintf("%d", m.ClientFetches),
			fmt.Sprintf("%d", m.ClientCacheHits),
			fmt.Sprintf("%.0f%%", local),
		})
	}
	addRow("server-side (original)", sm)

	uncached, err := apps.NewClientSideApp(r, false)
	if err != nil {
		return t, err
	}
	um, err := uncached.Replay(session)
	if err != nil {
		return t, err
	}
	addRow("client-side, no cache", um)

	cached, err := apps.NewClientSideApp(r, true)
	if err != nil {
		return t, err
	}
	cm, err := cached.Replay(session)
	if err != nil {
		return t, err
	}
	addRow("client-side + doc cache", cm)
	return t, nil
}

// E3Mashup verifies and times the co-existence dispatch of Figure 3:
// one click, two languages, deterministic order, integrated DOM.
func E3Mashup() (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  "Mash-up co-existence (Figure 3): one click, both languages",
		Header: []string{"search", "handler order", "map ok", "weather ok", "webcams", "latency"},
	}
	m, err := apps.NewMashup()
	if err != nil {
		return t, err
	}
	defer m.Close()
	for _, city := range []string{"Madrid", "Zurich", "Oslo"} {
		from := len(m.HandlerOrder)
		start := time.Now()
		if err := m.Search(city); err != nil {
			return t, err
		}
		lat := time.Since(start)
		order := strings.Join(m.HandlerOrder[from:], "→")
		t.Rows = append(t.Rows, []string{
			city,
			order,
			fmt.Sprintf("%v", m.MapLocation() == city),
			fmt.Sprintf("%v", m.WeatherText() == apps.ExpectedWeatherText(city)),
			fmt.Sprintf("%d", len(m.WebcamURLs())),
			dur(lat),
		})
	}
	return t, nil
}

// E4LinesOfCode reproduces the §6.3 code-volume comparison.
func E4LinesOfCode() (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "Lines of code (paper §6.3: 77 JS vs 29 XQuery, ratio 2.66x)",
		Header: []string{"application", "baseline stack", "XQuery", "ratio", "behaviour equal"},
	}
	// Multiplication table.
	js := apps.CountLines(apps.MultiplicationJSSource)
	xq := apps.CountLines(apps.MultiplicationXQueryScript)
	hx, err := apps.RunMultiplicationXQuery(9)
	if err != nil {
		return t, err
	}
	pj, err := apps.RunMultiplicationJS(9)
	if err != nil {
		return t, err
	}
	equal := cellsEqual(apps.MultiplicationTableCells(hx.Page), apps.MultiplicationTableCells(pj))
	t.Rows = append(t.Rows, []string{
		"multiplication table",
		fmt.Sprintf("%d (JavaScript)", js),
		fmt.Sprintf("%d", xq),
		fmt.Sprintf("%.2fx", float64(js)/float64(xq)),
		fmt.Sprintf("%v", equal),
	})

	// Shopping cart.
	store, err := apps.NewProductStore()
	if err != nil {
		return t, err
	}
	buys := []string{"Mouse", "Computer"}
	cx, _, err := apps.RunShoppingCartXQuery(store, buys)
	if err != nil {
		return t, err
	}
	cj, err := apps.RunShoppingCartBaseline(store, buys)
	if err != nil {
		return t, err
	}
	stack := apps.CountLines(apps.ShoppingCartJSPSource)
	xonly := apps.CountLines(apps.ShoppingCartXQueryServer)
	t.Rows = append(t.Rows, []string{
		"shopping cart",
		fmt.Sprintf("%d (JSP+JS+SQL)", stack),
		fmt.Sprintf("%d", xonly),
		fmt.Sprintf("%.2fx", float64(stack)/float64(xonly)),
		fmt.Sprintf("%v", cellsEqual(cx, cj)),
	})
	return t, nil
}

func cellsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
