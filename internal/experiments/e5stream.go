package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// E5EarlyExit quantifies the streaming iterator runtime: queries whose
// answer is decided by a prefix of the input ((//div)[1], fn:exists,
// some-satisfies) against the eager materializing baseline
// (RunConfig.DisableStreaming) over flat DOMs of 10k and 100k nodes.
// BenchmarkE5_EarlyExit* at the repository root runs the same workloads
// under testing.B.
func E5EarlyExit() (Table, error) {
	t := Table{
		ID:     "E5b",
		Title:  "Streaming early exit vs eager materialization",
		Header: []string{"query", "nodes", "stream/op", "eager/op", "speedup", "stream allocs", "eager allocs"},
		Notes: []string{
			"allocs/op measured via runtime.MemStats deltas; the eager column materializes every candidate node",
			"stream allocs stay O(1) in document size for exists/[1]; the eager side scales with it",
		},
	}
	queries := []struct{ name, q string }{
		{"(//div)[1]", `(//div)[1]`},
		{"fn:exists(//div)", `fn:exists(//div)`},
		{"some-satisfies", `some $d in //div satisfies $d/@id = "d3"`},
	}
	e := xquery.New()
	for _, qc := range queries {
		prog, err := e.Compile(qc.q)
		if err != nil {
			return t, err
		}
		for _, size := range []int{10_000, 100_000} {
			var sb strings.Builder
			sb.WriteString("<root>")
			for i := 0; i < size; i++ {
				fmt.Fprintf(&sb, `<div id="d%d">content %d</div>`, i, i)
			}
			sb.WriteString("</root>")
			doc, err := markup.Parse(sb.String())
			if err != nil {
				return t, err
			}
			item := xdm.NewNode(doc)
			run := func(noStream bool) func() error {
				return func() error {
					_, err := prog.Run(xquery.RunConfig{
						ContextItem:      item,
						DisableStreaming: noStream,
					})
					return err
				}
			}
			stream, err := MeasureNsPerOp(run(false), 10, 50*time.Millisecond)
			if err != nil {
				return t, err
			}
			eager, err := MeasureNsPerOp(run(true), 10, 50*time.Millisecond)
			if err != nil {
				return t, err
			}
			sa, err := allocsPerOp(run(false))
			if err != nil {
				return t, err
			}
			ea, err := allocsPerOp(run(true))
			if err != nil {
				return t, err
			}
			t.Rows = append(t.Rows, []string{
				qc.name, fmt.Sprintf("%d", size),
				ns(stream), ns(eager), fmt.Sprintf("%.0fx", eager/stream),
				fmt.Sprintf("%d", sa), fmt.Sprintf("%d", ea),
			})
		}
	}
	return t, nil
}

// allocsPerOp estimates heap allocations per call from MemStats deltas.
func allocsPerOp(f func() error) (int64, error) {
	const iters = 10
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return int64(after.Mallocs-before.Mallocs) / iters, nil
}
