package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// PerfCase is one E5 workload: a declarative XQuery run and the
// imperative JavaScript-style equivalent over the same DOM. The
// imperative side is compiled Go (no interpreter), so it bounds what a
// perfectly-JITted JavaScript engine could do — see DESIGN.md.
type PerfCase struct {
	Name       string
	XQuery     func() error
	Imperative func() error
}

// E5Cases builds the microbenchmark pairs (shared with bench_test.go).
func E5Cases() ([]PerfCase, error) {
	var cases []PerfCase

	// (a) Query: find the divs containing a word (§2.2 example).
	for _, n := range []int{100, 1000} {
		page, err := loveDivsPage(n)
		if err != nil {
			return nil, err
		}
		engine := xquery.New()
		prog, err := engine.Compile(`count(//div[contains(., 'love')])`)
		if err != nil {
			return nil, err
		}
		want := n / 2
		root := page
		cases = append(cases, PerfCase{
			Name: fmt.Sprintf("query divs n=%d", n),
			XQuery: func() error {
				res, err := prog.Run(xquery.RunConfig{ContextItem: xdm.NewNode(root)})
				if err != nil {
					return err
				}
				if res.Value[0].String() != fmt.Sprintf("%d", want) {
					return fmt.Errorf("wrong count %s", res.Value[0])
				}
				return nil
			},
			Imperative: func() error {
				count := 0
				root.Walk(func(nd *dom.Node) bool {
					if nd.Type == dom.ElementNode && nd.Name.Local == "div" &&
						strings.Contains(nd.StringValue(), "love") {
						count++
					}
					return true
				})
				if count != want {
					return fmt.Errorf("wrong count %d", count)
				}
				return nil
			},
		})
	}

	// (b) Bulk insert: add n paragraphs to the body.
	for _, n := range []int{100, 500} {
		nn := n
		engine := xquery.New()
		prog, err := engine.Compile(fmt.Sprintf(
			`insert node (for $i in 1 to %d return <p>{$i}</p>) into //body`, nn))
		if err != nil {
			return nil, err
		}
		cases = append(cases, PerfCase{
			Name: fmt.Sprintf("bulk insert n=%d", n),
			XQuery: func() error {
				page, err := markup.ParseHTML(`<html><body/></html>`)
				if err != nil {
					return err
				}
				_, err = prog.Run(xquery.RunConfig{ContextItem: xdm.NewNode(page), Sequential: true})
				return err
			},
			Imperative: func() error {
				page, err := markup.ParseHTML(`<html><body/></html>`)
				if err != nil {
					return err
				}
				body := page.Elements("body")[0]
				for i := 1; i <= nn; i++ {
					p := dom.NewElement(dom.Name("p"))
					if err := p.AppendChild(dom.NewText(fmt.Sprintf("%d", i))); err != nil {
						return err
					}
					if err := body.AppendChild(p); err != nil {
						return err
					}
				}
				return nil
			},
		})
	}

	// (c) Table generation: the multiplication table (E4's workload as
	// a performance case; host reused so only the click is measured).
	hostXQ, err := apps.RunMultiplicationXQuery(10)
	if err != nil {
		return nil, err
	}
	cases = append(cases, PerfCase{
		Name: "generate 10x10 table",
		XQuery: func() error {
			return hostXQ.Click("generate")
		},
		Imperative: func() error {
			_, err := apps.RunMultiplicationJS(10)
			return err
		},
	})

	// (d) Event dispatch + trivial handler.
	hostEvt, err := core.LoadPage(`<html><head><script type="text/xquery">
declare updating function local:l($evt, $obj) {
  replace value of node //span[@id="c"] with "hit"
};
on event "click" at //input[@id="b"] attach listener local:l
</script></head><body><input id="b"/><span id="c">0</span></body></html>`,
		"http://example.com/")
	if err != nil {
		return nil, err
	}
	btnXQ := hostEvt.Page.ElementByID("b")

	jsPage, err := markup.ParseHTML(`<html><body><input id="b"/><span id="c">0</span></body></html>`)
	if err != nil {
		return nil, err
	}
	span := jsPage.ElementByID("c")
	btnJS := jsPage.ElementByID("b")
	btnJS.AddEventListener("click", false, nil, func(ev *dom.Event) {
		span.ReplaceElementContent("hit")
	})
	cases = append(cases, PerfCase{
		Name: "event dispatch + handler",
		XQuery: func() error {
			hostEvt.Dispatch(&dom.Event{Type: "click", Bubbles: true, Button: 1}, btnXQ)
			return nil
		},
		Imperative: func() error {
			btnJS.DispatchEvent(&dom.Event{Type: "click", Bubbles: true, Button: 1})
			return nil
		},
	})
	return cases, nil
}

func loveDivsPage(n int) (*dom.Node, error) {
	var b strings.Builder
	b.WriteString(`<html><body>`)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			fmt.Fprintf(&b, `<div>item %d full of love</div>`, i)
		} else {
			fmt.Fprintf(&b, `<div>item %d plain</div>`, i)
		}
	}
	b.WriteString(`</body></html>`)
	return markup.ParseHTML(b.String())
}

// E5Performance times each pair (paper §7 future work: "study the
// performance of XQuery in the browser as compared to JavaScript").
func E5Performance() (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  "XQuery vs imperative DOM scripting (declarative engine vs compiled-Go baseline)",
		Header: []string{"workload", "xquery/op", "imperative/op", "slowdown"},
		Notes: []string{
			"the imperative side is compiled Go: an upper bound on JavaScript JIT performance, so real slowdowns would be smaller",
		},
	}
	cases, err := E5Cases()
	if err != nil {
		return t, err
	}
	for _, c := range cases {
		xq, err := MeasureNsPerOp(c.XQuery, 20, 100*time.Millisecond)
		if err != nil {
			return t, fmt.Errorf("%s xquery: %w", c.Name, err)
		}
		im, err := MeasureNsPerOp(c.Imperative, 20, 100*time.Millisecond)
		if err != nil {
			return t, fmt.Errorf("%s imperative: %w", c.Name, err)
		}
		t.Rows = append(t.Rows, []string{
			c.Name, ns(xq), ns(im), fmt.Sprintf("%.1fx", xq/im),
		})
	}
	return t, nil
}

// E6Async measures the §4.4 behind-construct: non-blocking calls,
// readyState progression, and UI responsiveness while a call is
// pending.
func E6Async() (Table, error) {
	t := Table{
		ID:     "E6",
		Title:  "Asynchronous behind-calls (§4.4 AJAX suggest)",
		Header: []string{"typed", "hint", "keyup latency", "hint latency", "UI responsive while pending"},
	}
	s, err := apps.NewSuggest()
	if err != nil {
		return t, err
	}
	defer s.Close()
	for _, typed := range []string{"B", "Li", "A"} {
		start := time.Now()
		if err := s.Type(typed); err != nil {
			return t, err
		}
		keyLat := time.Since(start)
		if errs := s.Wait(); len(errs) > 0 {
			return t, errs[0]
		}
		total := time.Since(start)
		t.Rows = append(t.Rows, []string{
			typed, s.Hint(), dur(keyLat), dur(total), "yes (keyup returned before completion)",
		})
	}
	return t, nil
}

// E7Security demonstrates the §4.2.1 same-origin checks and measures
// the pull-accessor overhead against an unchecked policy.
func E7Security() (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  "Same-origin window security (§4.2.1): pull accessors",
		Header: []string{"probe", "same-origin read", "cross-origin read", "pull cost (checked)", "pull cost (allow-all)"},
	}
	buildHost := func(policy browser.SecurityPolicy) (*core.Host, error) {
		h, err := core.LoadPage(`<html><head><script type="text/xquery">
declare sequential function local:probe($evt, $obj) {
  browser:alert(concat(
    string(browser:top()//window[@name="same"]/status), "|",
    string(browser:top()//window[@name="other"]/status)));
};
on event "click" at //input[@id="go"] attach listener local:probe
</script></head><body><input id="go"/></body></html>`,
			"http://a.example.com/", core.WithPolicy(policy))
		if err != nil {
			return nil, err
		}
		same := &browser.Window{Name: "same", Status: "visible"}
		sameLoc, _ := browser.ParseLocation("http://a.example.com/frame")
		same.Location = sameLoc
		other := &browser.Window{Name: "other", Status: "secret"}
		otherLoc, _ := browser.ParseLocation("https://bank.example.org/")
		other.Location = otherLoc
		h.Window.AddFrame(same)
		h.Window.AddFrame(other)
		return h, nil
	}

	checked, err := buildHost(browser.SameOriginPolicy{})
	if err != nil {
		return t, err
	}
	if err := checked.Click("go"); err != nil {
		return t, err
	}
	alerts := checked.Alerts()
	parts := strings.SplitN(alerts[len(alerts)-1], "|", 2)

	costChecked, err := MeasureNsPerOp(func() error {
		return checked.Click("go")
	}, 50, 100*time.Millisecond)
	if err != nil {
		return t, err
	}
	open, err := buildHost(browser.AllowAllPolicy{})
	if err != nil {
		return t, err
	}
	costOpen, err := MeasureNsPerOp(func() error {
		return open.Click("go")
	}, 50, 100*time.Millisecond)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		"window status via browser:top()//window",
		fmt.Sprintf("%q", parts[0]),
		fmt.Sprintf("%q (empty sequence)", parts[1]),
		ns(costChecked),
		ns(costOpen),
	})
	return t, nil
}

// E8EventRegistration compares the paper's grammar extension (§4.3)
// with the high-order-function API the Zorba implementation used
// (§5.1): identical dispatch, comparable cost.
func E8EventRegistration() (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "Ablation: event registration — §4.3 grammar vs §5.1 high-order functions",
		Header: []string{"route", "load+register", "dispatch/op", "fires identically"},
	}
	grammarPage := `<html><head><script type="text/xquery">
declare updating function local:l($evt, $obj) {
  replace value of node //span[@id="c"] with "hit"
};
on event "click" at //input[@id="b"] attach listener local:l
</script></head><body><input id="b"/><span id="c">0</span></body></html>`
	hofPage := `<html><head><script type="text/xquery">
declare updating function local:l($evt, $obj) {
  replace value of node //span[@id="c"] with "hit"
};
browser:addEventListener(//input[@id="b"], "click", "local:l")
</script></head><body><input id="b"/><span id="c">0</span></body></html>`

	for _, route := range []struct{ name, page string }{
		{"grammar extension (§4.3)", grammarPage},
		{"high-order function (§5.1)", hofPage},
	} {
		start := time.Now()
		h, err := core.LoadPage(route.page, "http://example.com/")
		if err != nil {
			return t, err
		}
		loadTime := time.Since(start)
		if err := h.Click("b"); err != nil {
			return t, err
		}
		fired := h.Page.ElementByID("c").StringValue() == "hit"
		cost, err := MeasureNsPerOp(func() error { return h.Click("b") },
			50, 100*time.Millisecond)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			route.name, dur(loadTime), ns(cost), fmt.Sprintf("%v", fired),
		})
	}
	return t, nil
}

// E9EndpointGranularity replays the E2 session against whole-document
// and per-query endpoints (§6.1's interface adjustment).
func E9EndpointGranularity() (Table, error) {
	t := Table{
		ID:     "E9",
		Title:  "Ablation: whole-document vs per-query REST endpoints (§6.1)",
		Header: []string{"endpoint style", "server reqs", "server queries", "server bytes", "cache hits"},
		Notes: []string{
			"per-query endpoints force a server evaluation per interaction and defeat the document cache",
		},
	}
	r, err := apps.NewReference20(apps.DefaultCorpus)
	if err != nil {
		return t, err
	}
	defer r.Close()
	session := r.Session(40, 7)

	perQuery, err := apps.ReplayPerQueryClient(r, session)
	if err != nil {
		return t, err
	}
	cached, err := apps.NewClientSideApp(r, true)
	if err != nil {
		return t, err
	}
	wholeDoc, err := cached.Replay(session)
	if err != nil {
		return t, err
	}
	for _, row := range []struct {
		name string
		m    apps.Metrics
	}{
		{"per-query (original modules)", perQuery},
		{"whole-document + cache (adjusted)", wholeDoc},
	} {
		t.Rows = append(t.Rows, []string{
			row.name,
			fmt.Sprintf("%d", row.m.ServerRequests),
			fmt.Sprintf("%d", row.m.ServerQueries),
			fmt.Sprintf("%d", row.m.ServerBytes),
			fmt.Sprintf("%d", row.m.ClientCacheHits),
		})
	}
	return t, nil
}
