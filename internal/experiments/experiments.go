// Package experiments regenerates every figure and quantified claim of
// the paper's evaluation (see DESIGN.md §4 for the experiment index).
// cmd/experiments prints the tables; bench_test.go at the repository
// root exposes the same workloads as testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's paper-shaped output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// All returns every experiment in order.
func All() []func() (Table, error) {
	return []func() (Table, error){
		E1Pipeline,
		E2Offloading,
		E3Mashup,
		E4LinesOfCode,
		E5Performance,
		E5EarlyExit,
		E6Async,
		E7Security,
		E8EventRegistration,
		E9EndpointGranularity,
	}
}

// MeasureNsPerOp times f until it has run at least minIters times and
// for at least minTime, returning the mean ns/op.
func MeasureNsPerOp(f func() error, minIters int, minTime time.Duration) (float64, error) {
	start := time.Now()
	iters := 0
	for iters < minIters || time.Since(start) < minTime {
		if err := f(); err != nil {
			return 0, err
		}
		iters++
		if iters > 1_000_000 {
			break
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}

func ns(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", v/1e3)
	default:
		return fmt.Sprintf("%.0fns", v)
	}
}

func dur(d time.Duration) string { return ns(float64(d.Nanoseconds())) }
