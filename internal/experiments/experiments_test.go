package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// TestAllExperimentsRun is the integration test of the whole
// reproduction: every experiment must execute end to end and produce a
// non-empty, well-formed table.
func TestAllExperimentsRun(t *testing.T) {
	ids := map[string]bool{}
	for _, run := range All() {
		table, err := run()
		if err != nil {
			t.Errorf("%s (%s): %v", table.ID, table.Title, err)
			continue
		}
		if table.ID == "" || table.Title == "" {
			t.Errorf("experiment missing identity: %+v", table)
		}
		if len(table.Rows) == 0 {
			t.Errorf("%s produced no rows", table.ID)
		}
		for _, row := range table.Rows {
			if len(row) != len(table.Header) {
				t.Errorf("%s: row width %d != header width %d", table.ID, len(row), len(table.Header))
			}
		}
		ids[table.ID] = true
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"} {
		if !ids[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
}

// TestE2Shape pins the load-bearing claims of the migration experiment.
func TestE2Shape(t *testing.T) {
	table, err := E2Offloading()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]string{}
	for _, row := range table.Rows {
		byName[row[0]] = row
	}
	server := byName["server-side (original)"]
	cached := byName["client-side + doc cache"]
	if server == nil || cached == nil {
		t.Fatalf("rows missing: %v", table.Rows)
	}
	// Client-side evaluates zero queries on the server.
	if cached[3] != "0" {
		t.Errorf("client-side server queries = %s", cached[3])
	}
	// The cache serves a majority of interactions locally.
	var pct int
	if _, err := fmt.Sscanf(cached[6], "%d%%", &pct); err != nil || pct < 50 {
		t.Errorf("served locally = %s", cached[6])
	}
}

// TestE4Shape pins the code-volume ratio band.
func TestE4Shape(t *testing.T) {
	table, err := E4LinesOfCode()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		if row[4] != "true" {
			t.Errorf("%s: behaviour not equal", row[0])
		}
		if !strings.HasSuffix(row[3], "x") {
			t.Errorf("%s: ratio format %q", row[0], row[3])
		}
	}
}

func TestTableFormat(t *testing.T) {
	tab := Table{
		ID: "EX", Title: "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"xxxxxx", "1"}},
		Notes:  []string{"a note"},
	}
	out := tab.Format()
	for _, want := range []string{"== EX: demo ==", "long-header", "xxxxxx", "note: a note", "------"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureNsPerOp(t *testing.T) {
	n := 0
	v, err := MeasureNsPerOp(func() error { n++; return nil }, 10, 0)
	if err != nil || n < 10 || v < 0 {
		t.Errorf("MeasureNsPerOp: n=%d v=%f err=%v", n, v, err)
	}
	if _, err := MeasureNsPerOp(func() error { return errTest }, 1, 0); err == nil {
		t.Error("errors must propagate")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "boom" }
