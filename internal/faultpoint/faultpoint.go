// Package faultpoint is the fault-injection seam of the runtime:
// named points placed on the failure-prone paths (module resolver
// loads, index builds, PUL apply, session dispatch) that tests and CI
// arm with deterministic triggers. Production code calls Hit(name) at
// each point; with no point enabled that is one atomic load and the
// call is free. A chaos suite arms points with count-based or seeded
// triggers and asserts the degradation machinery (rollback, retry,
// quarantine, index fallback) actually engages.
//
// The package is process-global on purpose — the points are sprinkled
// through packages that must not grow test-only plumbing — so tests
// that enable points must not run in parallel with each other and must
// Reset (or defer Disable) before returning. Everything is safe for
// concurrent Hit calls; Enable/Disable/Reset serialise on a mutex.
package faultpoint

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// The named fault points threaded through the runtime. Constants so
// that chaos tests and the points themselves cannot drift apart.
const (
	// PointResolverLoad fires inside each module-resolver load attempt
	// (runtime.Compile's import loop), before the user resolver runs.
	PointResolverLoad = "resolver.load"
	// PointIndexBuild fires in index.Probe before a build is attempted;
	// a fault makes the probe report "no index" so evaluation falls
	// back to scanning.
	PointIndexBuild = "index.build"
	// PointUpdateApply fires before each pending-update primitive is
	// applied, mid-PUL — the trigger for rollback testing.
	PointUpdateApply = "update.apply"
	// PointServeDispatch fires at the top of each serve.Session turn.
	PointServeDispatch = "serve.dispatch"
	// PointStoreFsync fires inside wal.Writer.Append, before a commit's
	// redo record reaches the log file; a fault leaves a deliberately
	// torn frame behind (the damage a mid-commit crash produces) and
	// fails the commit.
	PointStoreFsync = "store.fsync"
	// PointStoreReplay fires before each redo record is re-applied
	// during store recovery (xmldb.Open's snapshot load and log
	// replay); a fault aborts the open.
	PointStoreReplay = "store.replay"
	// PointFTIndexBuild fires in ftindex.Probe before a full-text
	// index build is attempted; a fault makes the probe report "no
	// index" so ftcontains falls back to scanning.
	PointFTIndexBuild = "ftindex.build"
	// PointFedCall fires before each federation sub-request attempt
	// (one hit per HTTP attempt, hedges and retries included); a fault
	// fails the attempt like a transport error, so it drives breakers
	// and the retry machinery.
	PointFedCall = "fed.call"
	// PointFedMerge fires on every step of the federation k-way result
	// merge; a fault surfaces as a typed mid-stream error to the
	// consumer.
	PointFedMerge = "fed.merge"
	// PointFedHedge fires when a hedge timer elapses, before the
	// hedged attempt launches; a fault suppresses the hedge (the
	// primary attempt keeps running alone).
	PointFedHedge = "fed.hedge"
)

// ErrInjected is the default error a fired point returns; every
// injected error wraps it so tests can errors.Is for it at any layer.
var ErrInjected = errors.New("faultpoint: injected fault")

// Trigger decides, per hit, whether the point fires. Implementations
// must be safe for concurrent calls.
type Trigger interface {
	fire() bool
}

// enabled is the fast-path gate: the number of currently enabled
// points. Hit loads it once and returns immediately when zero, so the
// instrumented hot paths cost one atomic load in production.
var enabled atomic.Int64

var (
	mu     sync.Mutex
	points = map[string]*point{}
)

type point struct {
	trig   Trigger
	err    error
	panics bool
	hitsN  atomic.Int64 // times Hit reached this point
	firesN atomic.Int64 // times the trigger fired
}

// Option configures an enabled point.
type Option func(*point)

// WithError sets the error a fired point returns. It is wrapped so
// errors.Is(err, ErrInjected) still holds.
func WithError(err error) Option {
	return func(p *point) { p.err = fmt.Errorf("%w: %w", ErrInjected, err) }
}

// WithPanic makes a fired point panic with ErrInjected instead of
// returning it — the trigger for testing panic-isolation boundaries.
func WithPanic() Option {
	return func(p *point) { p.panics = true }
}

// Enable arms a named point with a trigger. Re-enabling replaces the
// previous trigger and resets the point's counters.
func Enable(name string, t Trigger, opts ...Option) {
	mu.Lock()
	defer mu.Unlock()
	p := &point{trig: t, err: fmt.Errorf("%w at %s", ErrInjected, name)}
	for _, o := range opts {
		o(p)
	}
	if _, ok := points[name]; !ok {
		enabled.Add(1)
	}
	points[name] = p
}

// Disable disarms one point. Disabling a point that is not enabled is
// a no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		enabled.Add(-1)
	}
}

// Reset disarms every point. Chaos tests defer this so a failed
// subtest cannot leak an armed point into the rest of the suite.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	enabled.Add(-int64(len(points)))
	points = map[string]*point{}
}

// Stats reports how often an enabled point was reached and how often
// it fired. Zeros when the point is not enabled.
func Stats(name string) (hits, fires int64) {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0, 0
	}
	return p.hitsN.Load(), p.firesN.Load()
}

// Hit is the instrumentation call on production paths: it returns nil
// unless the named point is enabled and its trigger fires, in which
// case it returns the configured error (or panics, for WithPanic
// points). The disabled-path cost is one atomic load.
func Hit(name string) error {
	if enabled.Load() == 0 {
		return nil
	}
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return nil
	}
	p.hitsN.Add(1)
	if !p.trig.fire() {
		return nil
	}
	p.firesN.Add(1)
	if p.panics {
		panic(p.err)
	}
	return p.err
}

// Always fires on every hit.
func Always() Trigger { return triggerFunc(func() bool { return true }) }

// Nth fires on exactly the n-th hit (1-based) and never again.
func Nth(n int64) Trigger {
	var c atomic.Int64
	return triggerFunc(func() bool { return c.Add(1) == n })
}

// After fires on every hit after the first n.
func After(n int64) Trigger {
	var c atomic.Int64
	return triggerFunc(func() bool { return c.Add(1) > n })
}

// Seeded fires pseudo-randomly at the given rate (0..1), deterministic
// for a fixed seed and hit sequence — splitmix64 over the hit counter,
// so runs replay exactly.
func Seeded(seed uint64, rate float64) Trigger {
	var c atomic.Uint64
	return triggerFunc(func() bool {
		x := seed + c.Add(1)*0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return float64(x>>11)/float64(1<<53) < rate
	})
}

// Delay never fires; it sleeps d on every hit instead. It models a
// slow dependency (layout, paint, a remote shard) behind a point, so
// benchmarks can measure how much of a stalled serial path parallel
// application overlaps — the sleep happens outside the package mutex,
// so concurrent hitters stall independently.
func Delay(d time.Duration) Trigger {
	return triggerFunc(func() bool {
		time.Sleep(d)
		return false
	})
}

type triggerFunc func() bool

func (f triggerFunc) fire() bool { return f() }
