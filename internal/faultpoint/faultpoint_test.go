package faultpoint

import (
	"errors"
	"sync"
	"testing"
)

func TestDisabledPointIsFree(t *testing.T) {
	Reset()
	if err := Hit("nothing.enabled"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
}

func TestAlwaysFires(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Always())
	err := Hit("p")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if hits, fires := Stats("p"); hits != 1 || fires != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", hits, fires)
	}
}

func TestNthFiresOnce(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Nth(3))
	var fired []int
	for i := 1; i <= 5; i++ {
		if Hit("p") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("fired on hits %v, want [3]", fired)
	}
}

func TestAfterKeepsFiring(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", After(2))
	var fired int
	for i := 0; i < 5; i++ {
		if Hit("p") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
}

func TestSeededDeterministic(t *testing.T) {
	run := func() []bool {
		Reset()
		Enable("p", Seeded(42, 0.5))
		out := make([]bool, 64)
		for i := range out {
			out[i] = Hit("p") != nil
		}
		Reset()
		return out
	}
	a, b := run(), run()
	var fires int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded trigger not deterministic at hit %d", i)
		}
		if a[i] {
			fires++
		}
	}
	// rate 0.5 over 64 hits: expect some fires and some passes.
	if fires == 0 || fires == len(a) {
		t.Fatalf("seeded rate 0.5 fired %d/%d", fires, len(a))
	}
}

func TestWithErrorWrapsInjected(t *testing.T) {
	Reset()
	defer Reset()
	custom := errors.New("resolver exploded")
	Enable("p", Always(), WithError(custom))
	err := Hit("p")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, custom) {
		t.Fatalf("err %v should match both ErrInjected and the custom error", err)
	}
}

func TestWithPanicPanics(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Always(), WithPanic())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("WithPanic point did not panic")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("panic value %v is not an ErrInjected error", r)
		}
	}()
	Hit("p")
}

func TestDisableAndReenable(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Always())
	Disable("p")
	if Hit("p") != nil {
		t.Fatal("disabled point fired")
	}
	Enable("p", Always())
	if Hit("p") == nil {
		t.Fatal("re-enabled point did not fire")
	}
	Disable("p")
	Disable("p") // double-disable is a no-op
	if Hit("p") != nil {
		t.Fatal("point fired after double disable")
	}
}

func TestConcurrentHits(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", After(0)) // fire on every hit
	const goroutines, per = 8, 100
	var wg sync.WaitGroup
	var fires [goroutines]int
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if Hit("p") != nil {
					fires[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, f := range fires {
		total += f
	}
	if total != goroutines*per {
		t.Fatalf("fires = %d, want %d", total, goroutines*per)
	}
	if hits, firesN := Stats("p"); hits != goroutines*per || firesN != goroutines*per {
		t.Fatalf("stats = %d/%d", hits, firesN)
	}
}
