package fed

import (
	"sync"
	"time"
)

// outcome classifies an attempt for the breaker: ok closes, fail
// counts toward opening, neutral says nothing about backend health (a
// cancelled loser of a hedge race, a caller mistake the backend
// rejected correctly) and only releases a half-open probe reservation.
type outcome int

const (
	outcomeOK outcome = iota
	outcomeFail
	outcomeNeutral
)

type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

// breaker is a per-backend circuit breaker:
//
//	closed    — all calls pass; K consecutive failures open it
//	open      — all calls rejected until the cooldown elapses
//	half-open — exactly one in-flight probe; its success closes the
//	            breaker, its failure re-opens it for another cooldown
//
// Allow reserves the half-open probe slot, so concurrent callers
// cannot stampede a recovering backend: between probes a dead backend
// sees at most one call per cooldown window. Record must be called
// exactly once for every Allow()==true attempt — the probe reservation
// leaks otherwise.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open duration before a probe is admitted
	now       func() time.Time

	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool // half-open probe reservation held
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether an attempt may be issued. A true return in the
// half-open state reserves the single probe slot; the caller must
// Record the attempt's outcome to release it.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = stateHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record resolves an attempt admitted by Allow.
func (b *breaker) Record(o outcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		switch o {
		case outcomeOK:
			b.fails = 0
		case outcomeFail:
			b.fails++
			if b.fails >= b.threshold {
				b.openLocked()
			}
		}
	case stateHalfOpen:
		b.probing = false
		switch o {
		case outcomeOK:
			b.state = stateClosed
			b.fails = 0
		case outcomeFail:
			b.openLocked()
		}
		// neutral: stay half-open, the probe slot is free again.
	case stateOpen:
		// A straggler from before the breaker opened; nothing to learn.
	}
}

func (b *breaker) openLocked() {
	b.state = stateOpen
	b.openedAt = b.now()
	b.fails = 0
	b.probing = false
	cBreakerOpens.Add(1)
}

// State reports the current state (tests and diagnostics).
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
