package fed

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(3, time.Second, clk.now)

	// Closed: failures below K keep it closed; an ok resets the streak.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker must allow")
		}
		b.Record(outcomeFail)
	}
	b.Allow()
	b.Record(outcomeOK)
	for i := 0; i < 2; i++ {
		b.Allow()
		b.Record(outcomeFail)
	}
	if b.State() != stateClosed {
		t.Fatal("streak was reset; breaker must still be closed")
	}

	// The K-th consecutive failure opens it.
	b.Allow()
	b.Record(outcomeFail)
	if b.State() != stateOpen {
		t.Fatal("K consecutive failures must open the breaker")
	}
	if b.Allow() {
		t.Fatal("open breaker must reject")
	}

	// After the cooldown: exactly one half-open probe.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed; probe must be admitted")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe must be rejected")
	}
	// A neutral outcome (cancelled attempt) releases the reservation
	// without resolving the state.
	b.Record(outcomeNeutral)
	if b.State() != stateHalfOpen {
		t.Fatal("neutral outcome must keep the breaker half-open")
	}
	if !b.Allow() {
		t.Fatal("released probe slot must be reusable")
	}
	// A failed probe re-opens for another full cooldown.
	b.Record(outcomeFail)
	if b.State() != stateOpen || b.Allow() {
		t.Fatal("failed probe must re-open the breaker")
	}
	clk.advance(time.Second)
	b.Allow()
	b.Record(outcomeOK)
	if b.State() != stateClosed {
		t.Fatal("successful probe must close the breaker")
	}
}

// TestFaultBreakerBoundsCallsToDeadBackend asserts the acceptance
// criterion directly: a dead backend sees at most K calls to open the
// breaker and then at most one probe per cooldown window, no matter
// how many queries arrive.
func TestFaultBreakerBoundsCallsToDeadBackend(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	const k = 3
	cooldown := 200 * time.Millisecond
	x := newFed(t, Config{
		Shards:           [][]string{{ts.URL}},
		MaxRetries:       -1,
		BreakerThreshold: k,
		BreakerCooldown:  cooldown,
		DisableHedge:     true,
	})

	// Hammer the dead backend with far more queries than K within one
	// cooldown window.
	start := time.Now()
	for i := 0; i < 50; i++ {
		if _, err := x.Collection(context.Background(), "/"); !errors.Is(err, ErrBackendDown) {
			t.Fatalf("query %d: want ErrBackendDown, got %v", i, err)
		}
	}
	if time.Since(start) > cooldown {
		t.Skip("50 failing queries outlasted the cooldown window; timing too coarse to assert")
	}
	if got := calls.Load(); got > k+1 {
		t.Errorf("dead backend saw %d calls within one window, want <= %d", got, k+1)
	}
	if s := Snapshot(); s.BreakerSkips == 0 {
		t.Error("want breaker skips recorded")
	}

	// After the cooldown, exactly one probe goes through per window.
	before := calls.Load()
	time.Sleep(cooldown + 20*time.Millisecond)
	for i := 0; i < 10; i++ {
		_, _ = x.Collection(context.Background(), "/")
	}
	if probed := calls.Load() - before; probed > 1 {
		t.Errorf("probe window admitted %d calls, want <= 1", probed)
	}
}

// TestRoundDoesNotReserveUnlaunchedReplicas: a backup replica whose
// breaker is past its cooldown must not have its half-open probe slot
// reserved by a round that never launches an attempt against it —
// regression for breaker admission happening at candidate-list time
// instead of launch time, which leaked the reservation and wedged the
// breaker (every later Allow returned false) whenever the primary won
// before the backup was needed.
func TestRoundDoesNotReserveUnlaunchedReplicas(t *testing.T) {
	docs := map[string]string{"doc-a": `<d/>`}
	fast := startShard(t, docs, nil)
	backup := startShard(t, docs, nil)
	cooldown := time.Millisecond
	x := newFed(t, Config{
		Shards:           [][]string{{fast.URL, backup.URL}},
		BreakerThreshold: 1,
		BreakerCooldown:  cooldown,
		DisableHedge:     true,
	})
	br := x.breakerFor(backup.URL)
	br.Allow()
	br.Record(outcomeFail) // threshold 1: breaker opens
	time.Sleep(2 * cooldown)

	// The primary answers every time; the backup must never be
	// admitted (and so never reserved) by these rounds.
	for i := 0; i < 3; i++ {
		if _, err := x.Collection(context.Background(), "/"); err != nil {
			t.Fatalf("query %d through healthy primary: %v", i, err)
		}
	}
	if !br.Allow() {
		t.Fatal("backup breaker is wedged: its half-open probe slot was reserved by a round that never launched it")
	}
	br.Record(outcomeNeutral)
}

// TestBackoffLargeRetryCountClamps: the exponential backoff must stay
// within (0, 2s] for any retry count — regression for base<<n
// overflowing into a negative duration and panicking the jitter.
func TestBackoffLargeRetryCountClamps(t *testing.T) {
	for _, n := range []int{0, 1, 10, 40, 64, 1000} {
		if d := backoff(10*time.Millisecond, n); d <= 0 || d > 2*time.Second {
			t.Errorf("backoff(n=%d) = %v, want in (0, 2s]", n, d)
		}
	}
}

// TestBreakerRecoversThroughProbe: a backend that heals is readmitted
// by a successful half-open probe.
func TestBreakerRecoversThroughProbe(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	docs := map[string]string{"doc-a": `<d/>`}
	ts := startShard(t, docs, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if failing.Load() {
				http.Error(w, "boom", http.StatusInternalServerError)
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	cooldown := 50 * time.Millisecond
	x := newFed(t, Config{
		Shards:           [][]string{{ts.URL}},
		MaxRetries:       -1,
		BreakerThreshold: 2,
		BreakerCooldown:  cooldown,
		DisableHedge:     true,
	})
	for i := 0; i < 4; i++ {
		_, _ = x.Collection(context.Background(), "/")
	}
	if x.breakerFor(ts.URL).State() != stateOpen {
		t.Fatal("breaker should be open against the failing backend")
	}
	failing.Store(false)
	time.Sleep(cooldown + 10*time.Millisecond)
	seq, err := x.Collection(context.Background(), "/")
	if err != nil || len(seq) != 1 {
		t.Fatalf("healed backend: got %d items, err %v", len(seq), err)
	}
	if x.breakerFor(ts.URL).State() != stateClosed {
		t.Error("successful probe must close the breaker")
	}
}
