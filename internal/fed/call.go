package fed

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/rest"
	"repro/internal/xdm"
)

// latWindow tracks the last windowSize successful-attempt latencies of
// one endpoint; its p95 sets the adaptive hedge delay — hedge only
// when the primary is slower than its own recent tail, not on every
// call.
const latWindowSize = 64

type latWindow struct {
	mu  sync.Mutex
	buf [latWindowSize]time.Duration
	i   int
	n   int
}

func (w *latWindow) record(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf[w.i] = d
	w.i = (w.i + 1) % latWindowSize
	if w.n < latWindowSize {
		w.n++
	}
}

func (w *latWindow) p95() time.Duration {
	w.mu.Lock()
	n := w.n
	var c []time.Duration
	if n > 0 {
		c = append(c, w.buf[:n]...)
	}
	w.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	idx := (n*95+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return c[idx]
}

func (x *Executor) breakerFor(ep string) *breaker {
	x.mu.Lock()
	defer x.mu.Unlock()
	b, ok := x.breakers[ep]
	if !ok {
		b = newBreaker(x.cfg.BreakerThreshold, x.cfg.BreakerCooldown, nil)
		x.breakers[ep] = b
	}
	return b
}

func (x *Executor) latFor(ep string) *latWindow {
	x.mu.Lock()
	defer x.mu.Unlock()
	w, ok := x.lats[ep]
	if !ok {
		w = &latWindow{}
		x.lats[ep] = w
	}
	return w
}

// hedgeDelayFor picks the hedge delay for a primary endpoint: the
// configured fixed delay, or the endpoint's tracked p95 (bounded below
// by HedgeMin) when adaptive, or a conservative default while the
// window is still empty.
func (x *Executor) hedgeDelayFor(ep string) time.Duration {
	if x.cfg.HedgeDelay > 0 {
		return x.cfg.HedgeDelay
	}
	d := x.latFor(ep).p95()
	if d == 0 {
		d = DefaultHedgeDelay
	}
	if min := x.cfg.HedgeMin; d < min {
		d = min
	}
	return d
}

// keyedItem is one decoded result item with its URI merge key ("" for
// non-document items).
type keyedItem struct {
	key  string
	item xdm.Item
}

// doCall issues one HTTP sub-request under a per-attempt timeout and
// decodes the keyed result sequence. Decoding happens here, inside the
// attempt, so a torn payload classifies as a transient attempt failure
// the retry and hedging machinery can act on.
func (x *Executor) doCall(ctx context.Context, ep, fn, argsXML string) ([]keyedItem, error) {
	if err := faultpoint.Hit(faultpoint.PointFedCall); err != nil {
		return nil, err
	}
	if x.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, x.cfg.AttemptTimeout)
		defer cancel()
	}
	callURL := strings.TrimSuffix(ep, "/") + "/call/" + fn
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, callURL, strings.NewReader(argsXML))
	if err != nil {
		return nil, fmt.Errorf("fed: %s: %w", callURL, err)
	}
	req.Header.Set("Content-Type", "application/xml")
	cCalls.Add(1)
	resp, err := x.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := rest.ReadLimited(callURL, resp.Body, x.cfg.MaxBody)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &rest.StatusError{URL: callURL, Status: resp.StatusCode, Msg: strings.TrimSpace(string(body))}
	}
	seq, keys, err := rest.DecodeSequenceKeyed(string(body))
	if err != nil {
		return nil, err
	}
	items := make([]keyedItem, len(seq))
	for i, it := range seq {
		items[i] = keyedItem{key: keys[i], item: it}
	}
	return items, nil
}

type attemptResult struct {
	idx    int // candidate index within the round
	hedged bool
	items  []keyedItem
	err    error
}

// attempt runs one sub-request in its own goroutine, records the
// outcome on the endpoint's breaker, and delivers the result on a
// buffered channel. The breaker bookkeeping lives here — not in the
// round's receive loop — so every Allow()==true reservation resolves
// even when the round returns early on a sibling's success.
func (x *Executor) attempt(rctx context.Context, ep string, idx int, hedged bool, fn, argsXML string, out chan<- attemptResult) {
	start := time.Now()
	items, err := x.doCall(rctx, ep, fn, argsXML)
	br := x.breakerFor(ep)
	switch {
	case err == nil:
		br.Record(outcomeOK)
		x.latFor(ep).record(time.Since(start))
	case rctx.Err() != nil:
		// The round is over (a sibling won, or the caller cancelled);
		// this attempt's failure says nothing about the backend.
		br.Record(outcomeNeutral)
	case rest.Retryable(err) || errors.Is(err, context.DeadlineExceeded):
		// Transport failure, retryable status, torn payload, or our
		// per-attempt deadline on a hung backend.
		br.Record(outcomeFail)
	default:
		// Terminal caller-side errors (4xx): the backend answered
		// correctly; do not count against its health.
		br.Record(outcomeNeutral)
	}
	out <- attemptResult{idx: idx, hedged: hedged, items: items, err: err}
}

// round runs one logical attempt against a shard's replica group:
// primary pick through the breakers, hedged second attempt when the
// primary outlives its p95, immediate failover to the next replica on
// failure, first success wins and cancels the losers.
func (x *Executor) round(ctx context.Context, shard int, eps []string, fn, argsXML string, idempotent bool) ([]keyedItem, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Buffered to the replica count: attempt goroutines can always
	// deliver and exit, even after the round has returned.
	results := make(chan attemptResult, len(eps))
	maxAttempts := len(eps)
	if !idempotent {
		// A call with effects must not race two executions: one
		// replica, no hedge, no failover.
		maxAttempts = 1
	}
	next := 0     // next replica to consider for launch
	launched := 0 // attempts launched (in flight or finished)
	// launch admits replicas through their breakers at launch time —
	// never earlier — so every Allow()==true reservation is resolved
	// by exactly one Record inside attempt, even when the round ends
	// before reaching a replica. Open breakers are skipped without
	// burning any of the round's budget. Returns the launched endpoint
	// ("" when every remaining replica is rejected or the attempt
	// budget is spent).
	launch := func(hedged bool) string {
		for next < len(eps) && launched < maxAttempts {
			ep := eps[next]
			next++
			if !x.breakerFor(ep).Allow() {
				cBreakerSkips.Add(1)
				continue
			}
			go x.attempt(rctx, ep, launched, hedged, fn, argsXML, results)
			launched++
			return ep
		}
		return ""
	}
	primary := launch(false)
	if primary == "" {
		return nil, fmt.Errorf("%w: every replica of shard %d has an open circuit breaker", ErrBackendDown, shard)
	}

	var hedgeC <-chan time.Time
	if !x.cfg.DisableHedge && idempotent && len(eps) > 1 {
		t := time.NewTimer(x.hedgeDelayFor(primary))
		defer t.Stop()
		hedgeC = t.C
	}

	var firstErr error
	done := 0
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if next < len(eps) && launched < maxAttempts && faultpoint.Hit(faultpoint.PointFedHedge) == nil {
				if launch(true) != "" {
					cHedges.Add(1)
				}
			}
		case r := <-results:
			done++
			if r.err == nil {
				if r.hedged {
					cHedgeWins.Add(1)
				}
				return r.items, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			// Failover: the failed attempt frees budget for the next
			// replica immediately, no timer needed. When no further
			// replica is admitted and every in-flight attempt has
			// resolved, the round is over.
			if launch(false) == "" && done == launched {
				return nil, firstErr
			}
		}
	}
}

// callShard evaluates one shard's sub-request with jittered
// exponential backoff across rounds. Only idempotent calls retry;
// non-idempotent module calls get exactly one attempt against one
// replica (round disables hedging and failover for them too).
func (x *Executor) callShard(ctx context.Context, shard int, eps []string, fn, argsXML string, idempotent bool) ([]keyedItem, error) {
	retries := x.cfg.MaxRetries
	if !idempotent {
		retries = 0
	}
	var err error
	for attempt := 0; ; attempt++ {
		var items []keyedItem
		items, err = x.round(ctx, shard, eps, fn, argsXML, idempotent)
		if err == nil {
			return items, nil
		}
		if attempt >= retries || !x.transient(ctx, err) {
			return nil, err
		}
		cRetries.Add(1)
		if !sleepCtx(ctx, backoff(x.cfg.RetryBase, attempt)) {
			return nil, ctx.Err()
		}
	}
}

// transient reports whether a round error is worth a backoff-retry:
// retryable transport/status failures and per-attempt timeouts are;
// caller cancellation, terminal statuses and all-breakers-open are not
// (an open breaker already encodes "do not spend budget here").
func (x *Executor) transient(ctx context.Context, err error) bool {
	if ctx.Err() != nil || errors.Is(err, ErrBackendDown) {
		return false
	}
	return rest.Retryable(err) || errors.Is(err, context.DeadlineExceeded)
}

// backoff returns the jittered exponential delay before retry n
// (0-based): base*2^n, halved and re-filled with uniform jitter so
// synchronized clients decorrelate.
func backoff(base time.Duration, n int) time.Duration {
	if base <= 0 {
		base = DefaultRetryBase
	}
	// Double iteratively, stopping at the cap, so a large retry count
	// cannot shift the duration into overflow.
	const max = 2 * time.Second
	d := base
	for i := 0; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// sleepCtx sleeps d unless ctx ends first; it reports whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
