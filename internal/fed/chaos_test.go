package fed

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	stdruntime "runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/xdm"
)

// checkGoroutines waits for the goroutine count to settle back near
// its baseline: a leaked attempt goroutine (blocked on an unbuffered
// send or an uncancelled request) fails this.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := stdruntime.NumGoroutine()
		if n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, n, buf[:stdruntime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosFederationMatrix drives the scatter-gather pipeline through
// the fault matrix: for every fault and both degradation policies the
// result must be byte-identical to the oracle or a typed error —
// never a hang, panic, or goroutine leak.
func TestChaosFederationMatrix(t *testing.T) {
	defer faultpoint.Reset()
	sets := shardDocs()
	want := oracle(t, sets)

	// build starts a fresh 4-shard federation; shard 1 gets the
	// fault middleware, which also receives a stop channel. closeAll
	// closes stop before the servers: a middleware simulating a hung
	// backend must select on it, because the server side cannot be
	// relied on to cancel r.Context() for an aborted request whose
	// body was never read — without the explicit release,
	// httptest.Server.Close can wait on that handler forever. The
	// servers close before the goroutine-leak check (their accept
	// loops and keep-alive connections would otherwise count as
	// leaks).
	build := func(t *testing.T, mw func(stop <-chan struct{}, h http.Handler) http.Handler, cfg Config) (*Executor, func()) {
		stop := make(chan struct{})
		var shards [][]string
		var servers []*httptest.Server
		for i, s := range sets {
			var m func(http.Handler) http.Handler
			if i == 1 && mw != nil {
				m = func(h http.Handler) http.Handler { return mw(stop, h) }
			}
			ts := startShard(t, s, m)
			servers = append(servers, ts)
			shards = append(shards, []string{ts.URL})
		}
		cfg.Shards = shards
		return newFed(t, cfg), func() {
			close(stop)
			for _, ts := range servers {
				ts.Close()
			}
		}
	}

	// run evaluates the federated collection and classifies the
	// outcome.
	run := func(t *testing.T, x *Executor) (string, error) {
		t.Helper()
		donech := make(chan struct{})
		var seq xdm.Sequence
		var err error
		go func() {
			defer close(donech)
			seq, err = x.Collection(context.Background(), "/")
		}()
		select {
		case <-donech:
		case <-time.After(15 * time.Second):
			t.Fatal("federated collection hung")
		}
		if err != nil {
			return "", err
		}
		return flatten(t, seq), nil
	}

	type matrixCase struct {
		name  string
		mw    func(stop <-chan struct{}, h http.Handler) http.Handler
		arm   func() // faultpoint arming, nil for HTTP-level faults
		cfg   Config
		heals bool // the fault clears within the retry budget
	}
	var calls atomic.Int64
	cases := []matrixCase{
		{
			name: "flaky-nth-call-heals",
			mw: func(_ <-chan struct{}, h http.Handler) http.Handler {
				return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					if calls.Add(1) <= 2 {
						http.Error(w, "flaky", http.StatusInternalServerError)
						return
					}
					h.ServeHTTP(w, r)
				})
			},
			cfg:   Config{RetryBase: time.Millisecond, DisableHedge: true},
			heals: true,
		},
		{
			name: "torn-payload-heals",
			mw: func(_ <-chan struct{}, h http.Handler) http.Handler {
				var torn atomic.Bool
				return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					if torn.CompareAndSwap(false, true) {
						// 200 with a truncated body: decode must
						// classify it transient and retry.
						fmt.Fprint(w, `<result><item kind="node" uri="doc-0`)
						return
					}
					h.ServeHTTP(w, r)
				})
			},
			cfg:   Config{RetryBase: time.Millisecond, DisableHedge: true},
			heals: true,
		},
		{
			name: "hung-until-cancel",
			mw: func(stop <-chan struct{}, h http.Handler) http.Handler {
				return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					select {
					case <-r.Context().Done():
					case <-stop:
					}
				})
			},
			cfg: Config{AttemptTimeout: 50 * time.Millisecond, MaxRetries: -1, DisableHedge: true},
		},
		{
			name:  "faultpoint-fed-call-heals",
			arm:   func() { faultpoint.Enable(faultpoint.PointFedCall, faultpoint.Nth(1)) },
			cfg:   Config{RetryBase: time.Millisecond, DisableHedge: true},
			heals: true,
		},
		{
			name: "faultpoint-fed-call-persistent",
			arm:  func() { faultpoint.Enable(faultpoint.PointFedCall, faultpoint.Always()) },
			cfg:  Config{RetryBase: time.Millisecond, MaxRetries: 1, DisableHedge: true},
		},
	}

	for _, tc := range cases {
		for _, partial := range []bool{false, true} {
			name := fmt.Sprintf("%s/partial=%v", tc.name, partial)
			t.Run(name, func(t *testing.T) {
				calls.Store(0)
				faultpoint.Reset()
				if tc.arm != nil {
					tc.arm()
				}
				defer faultpoint.Reset()
				before := stdruntime.NumGoroutine()
				cfg := tc.cfg
				cfg.PartialResults = partial
				x, closeAll := build(t, tc.mw, cfg)
				got, err := run(t, x)
				switch {
				case tc.heals:
					// The retry machinery must fully heal the fault:
					// byte-identical to the oracle under either policy.
					if err != nil {
						t.Fatalf("want healed result, got error %v", err)
					}
					if got != want {
						t.Errorf("result differs from oracle:\ngot:\n%s\nwant:\n%s", got, want)
					}
				case tc.arm != nil && !partial:
					// A persistent injected fault on every shard:
					// typed, and traceable to the injection.
					if !errors.Is(err, ErrBackendDown) || !errors.Is(err, faultpoint.ErrInjected) {
						t.Fatalf("want ErrBackendDown wrapping ErrInjected, got %v", err)
					}
				case tc.arm != nil && partial:
					// Every shard failed: partial cannot degrade
					// further, still a typed error.
					if !errors.Is(err, ErrBackendDown) {
						t.Fatalf("want ErrBackendDown, got %v", err)
					}
				case !partial:
					if !errors.Is(err, ErrBackendDown) {
						t.Fatalf("want typed ErrBackendDown, got %v (result %q)", err, got)
					}
				default:
					// One faulty shard under PartialResults: the three
					// healthy shards' documents plus the diagnostic.
					if err != nil {
						t.Fatalf("partial policy must degrade, not fail: %v", err)
					}
					if !strings.Contains(got, `<fed:incomplete`) || !strings.Contains(got, `shards="1"`) {
						t.Errorf("want fed:incomplete diagnostic for shard 1, got:\n%s", got)
					}
					for _, healthy := range []string{`n="00"`, `n="02"`, `n="03"`, `n="09"`} {
						if !strings.Contains(got, healthy) {
							t.Errorf("partial result missing healthy doc %s", healthy)
						}
					}
				}
				closeAll()
				checkGoroutines(t, before)
			})
		}
	}
}

// TestChaosMergeFaultSurfacesTyped: a fault at the merge point must
// surface as a typed mid-stream error from the iterator, not corrupt
// the stream.
func TestChaosMergeFaultSurfacesTyped(t *testing.T) {
	defer faultpoint.Reset()
	sets := shardDocs()
	var shards [][]string
	for _, s := range sets {
		shards = append(shards, []string{startShard(t, s, nil).URL})
	}
	x := newFed(t, Config{Shards: shards})
	faultpoint.Enable(faultpoint.PointFedMerge, faultpoint.Nth(3))
	it, err := x.CollectionIter(context.Background(), "/")
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		_, ok, err := it.Next()
		if err != nil {
			if !errors.Is(err, faultpoint.ErrInjected) {
				t.Fatalf("want injected merge error, got %v", err)
			}
			if n != 2 {
				t.Errorf("error after %d items, want 2", n)
			}
			return
		}
		if !ok {
			t.Fatal("stream ended without the armed merge fault firing")
		}
		n++
	}
}

// TestChaosHedgeSuppressedByFaultpoint: arming fed.hedge suppresses
// the hedge — the primary must still answer (slowly) and the result
// stay correct.
func TestChaosHedgeSuppressedByFaultpoint(t *testing.T) {
	defer faultpoint.Reset()
	ResetStats()
	docs := map[string]string{"doc-a": `<d/>`}
	stall := 80 * time.Millisecond
	slow := startShard(t, docs, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-time.After(stall):
			case <-r.Context().Done():
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	fast := startShard(t, docs, nil)
	x := newFed(t, Config{
		Shards:     [][]string{{slow.URL, fast.URL}},
		HedgeDelay: 5 * time.Millisecond,
	})
	faultpoint.Enable(faultpoint.PointFedHedge, faultpoint.Always())
	start := time.Now()
	seq, err := x.Collection(context.Background(), "/")
	if err != nil || len(seq) != 1 {
		t.Fatalf("suppressed hedge: got %d items, err %v", len(seq), err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Errorf("call finished in %v, but with the hedge suppressed it must wait out the %v stall", elapsed, stall)
	}
	if s := Snapshot(); s.Hedges != 0 {
		t.Errorf("suppressed hedge still counted: %+v", s)
	}
}

// TestChaosCallerCancellation: cancelling the caller's context aborts
// the scatter promptly with the context error and leaks nothing.
func TestChaosCallerCancellation(t *testing.T) {
	sets := shardDocs()
	// stop releases the hung handlers before the servers close (see
	// the matrix test: context cancellation alone is not a reliable
	// release when the request body was never read).
	stop := make(chan struct{})
	var shards [][]string
	var servers []*httptest.Server
	for _, s := range sets {
		ts := startShard(t, s, func(h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				select {
				case <-r.Context().Done():
				case <-stop:
				}
			})
		})
		servers = append(servers, ts)
		shards = append(shards, []string{ts.URL})
	}
	before := stdruntime.NumGoroutine()
	x := newFed(t, Config{Shards: shards, AttemptTimeout: -1, MaxRetries: -1})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := x.Collection(ctx, "/")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation did not abort promptly")
	}
	close(stop)
	for _, ts := range servers {
		ts.Close()
	}
	checkGoroutines(t, before)
}
