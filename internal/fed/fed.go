// Package fed is the federated scatter-gather executor: the
// "mediator" architecture the paper's related work (Tout-XML style
// XML mediation) distributes an XQuery over — a set of REST module
// servers (internal/rest.ModuleServer), each owning a shard of the
// document space, queried concurrently and merged back into one
// URI-ordered sequence.
//
// The robustness core wraps every sub-request in the full degraded-
// mode stack:
//
//   - per-backend circuit breakers (closed → open after K consecutive
//     transient failures, half-open single probe after a cooldown), so
//     a dead backend costs at most one probe per cooldown window;
//   - hedged requests: when the primary replica outlives its own
//     tracked p95, a second attempt races against a replica and the
//     first success wins, losers cancelled through the context;
//   - jittered exponential backoff retries, for idempotent reads only;
//   - graceful degradation: under Config.PartialResults a failed shard
//     yields the available shards plus a <fed:incomplete> diagnostic
//     instead of failing the query; otherwise a typed ErrBackendDown.
//
// Fault points fed.call / fed.merge / fed.hedge (internal/faultpoint)
// thread through the pipeline for the chaos suite.
package fed

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/dom"
	"repro/internal/rest"
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/runtime"
)

// Namespace is the fed: namespace of the diagnostics this package
// emits (the <fed:incomplete> element of a degraded gather).
const Namespace = "urn:xqib:fed"

// ShardNamespace is the module namespace every federated backend
// serves its shard under (see ShardModule).
const ShardNamespace = "urn:xqib:fed:shard"

// EndpointsHint is the location hint that routes a module import to
// the federation instead of a single server:
//
//	import module namespace s = "urn:some:svc" at "fed:endpoints";
//
// The executor fetches the service description from the first healthy
// backend and registers one scatter-gather proxy per function.
const EndpointsHint = "fed:endpoints"

// ShardModule is the library module a federated backend serves: it
// exposes the backend's share of the document space ("" selects the
// default collection) through the web-service machinery of
// internal/rest. Wire a store shard into the ModuleServer's
// Collections/CollectionsIter and serve this source.
const ShardModule = `module namespace shard = "` + ShardNamespace + `";
declare option fn:webservice "true";
declare function shard:collection($uri) {
  if ($uri = "") then fn:collection() else fn:collection($uri)
};`

// DefaultCollectionFn is the shard-module function Collection calls.
const DefaultCollectionFn = "collection"

// Defaults for the zero Config fields.
const (
	DefaultAttemptTimeout   = 2 * time.Second
	DefaultMaxRetries       = 2
	DefaultRetryBase        = 10 * time.Millisecond
	DefaultHedgeDelay       = 20 * time.Millisecond // adaptive fallback while the p95 window is empty
	DefaultHedgeMin         = 5 * time.Millisecond
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = time.Second
)

// ErrBackendDown reports a shard whose replicas are all unavailable —
// open breakers, exhausted retries against transient failures, or hung
// backends cut off by the per-attempt timeout.
var ErrBackendDown = errors.New("fed: backend down")

// Config describes a federation.
type Config struct {
	// Shards lists the backends: one replica group per shard of the
	// document space, each replica a base URL of a ModuleServer serving
	// ShardModule (or a module of the same shape). Order within a group
	// is preference order; the first healthy replica is the primary.
	Shards [][]string

	// HTTP is the transport (nil: http.DefaultClient).
	HTTP *http.Client

	// CollectionFn is the shard-module function Collection invokes
	// ("" = DefaultCollectionFn).
	CollectionFn string

	// AttemptTimeout bounds each individual sub-request (0 =
	// DefaultAttemptTimeout, negative = unbounded). This is what cuts
	// off a hung backend.
	AttemptTimeout time.Duration

	// MaxRetries is how many extra rounds an idempotent call may take
	// after the first fails transiently (0 = DefaultMaxRetries,
	// negative = no retries).
	MaxRetries int

	// RetryBase seeds the jittered exponential backoff between rounds
	// (0 = DefaultRetryBase).
	RetryBase time.Duration

	// HedgeDelay, when positive, is a fixed delay before the hedged
	// attempt launches. Zero selects the adaptive delay: the primary
	// endpoint's tracked p95 latency, never below HedgeMin.
	HedgeDelay time.Duration

	// HedgeMin floors the adaptive hedge delay (0 = DefaultHedgeMin).
	HedgeMin time.Duration

	// DisableHedge turns hedged requests off entirely.
	DisableHedge bool

	// BreakerThreshold is K: consecutive transient failures that open a
	// backend's breaker (0 = DefaultBreakerThreshold).
	BreakerThreshold int

	// BreakerCooldown is how long an open breaker rejects before
	// admitting a half-open probe (0 = DefaultBreakerCooldown).
	BreakerCooldown time.Duration

	// PartialResults selects graceful degradation: when some (not all)
	// shards fail, return the available ones plus a <fed:incomplete>
	// diagnostic element instead of a typed error.
	PartialResults bool

	// MaxBody caps each sub-response body (0 = rest.DefaultMaxBody,
	// negative = unlimited).
	MaxBody int64

	// Idempotent marks module functions safe to retry and hedge (reads
	// with no effects). The collection function is always idempotent.
	Idempotent map[string]bool
}

// Executor evaluates federated calls over a Config. Safe for
// concurrent use; breakers and latency windows are per-endpoint and
// shared across all calls.
type Executor struct {
	cfg  Config
	http *http.Client

	mu       sync.Mutex
	breakers map[string]*breaker
	lats     map[string]*latWindow
}

// New builds an executor, filling Config defaults.
func New(cfg Config) (*Executor, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("fed: no shards configured")
	}
	for i, eps := range cfg.Shards {
		if len(eps) == 0 {
			return nil, fmt.Errorf("fed: shard %d has no endpoints", i)
		}
	}
	if cfg.CollectionFn == "" {
		cfg.CollectionFn = DefaultCollectionFn
	}
	if cfg.AttemptTimeout == 0 {
		cfg.AttemptTimeout = DefaultAttemptTimeout
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = DefaultRetryBase
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = DefaultHedgeMin
	}
	h := cfg.HTTP
	if h == nil {
		h = http.DefaultClient
	}
	return &Executor{
		cfg:      cfg,
		http:     h,
		breakers: map[string]*breaker{},
		lats:     map[string]*latWindow{},
	}, nil
}

// Shards reports the configured shard count.
func (x *Executor) Shards() int { return len(x.cfg.Shards) }

// shardOut is one shard's gather input.
type shardOut struct {
	idx   int
	items []keyedItem
	err   error
}

// scatter fans the call out to every shard concurrently and waits for
// all of them (each bounded by its own retry/timeout budget, so the
// wait is bounded too).
func (x *Executor) scatter(ctx context.Context, fn, argsXML string, idempotent bool) []shardOut {
	cScatters.Add(1)
	outs := make([]shardOut, len(x.cfg.Shards))
	var wg sync.WaitGroup
	for i, eps := range x.cfg.Shards {
		wg.Add(1)
		go func(i int, eps []string) {
			defer wg.Done()
			items, err := x.callShard(ctx, i, eps, fn, argsXML, idempotent)
			outs[i] = shardOut{idx: i, items: items, err: err}
		}(i, eps)
	}
	wg.Wait()
	return outs
}

// gather turns the shard outputs into one merged stream, applying the
// degradation policy: strict mode propagates the first failure as a
// typed error; PartialResults returns the available shards plus a
// <fed:incomplete> diagnostic — unless every shard failed, which is an
// error under either policy.
func (x *Executor) gather(outs []shardOut) (xdm.Iter, error) {
	parts := make([][]keyedItem, 0, len(outs))
	var failed []int
	var errs []error
	for _, o := range outs {
		if o.err != nil {
			failed = append(failed, o.idx)
			errs = append(errs, o.err)
			continue
		}
		parts = append(parts, o.items)
	}
	if len(failed) == 0 {
		return newMerger(parts, nil), nil
	}
	if !x.cfg.PartialResults || len(failed) == len(outs) {
		return nil, wrapShardErr(failed[0], errs[0])
	}
	cPartials.Add(1)
	return newMerger(parts, xdm.Sequence{incompleteDiagnostic(failed, errs)}), nil
}

// wrapShardErr types a shard failure: availability-class failures
// (transport, retryable statuses, hung-backend timeouts) surface as
// ErrBackendDown; terminal caller-side errors propagate as themselves.
func wrapShardErr(i int, err error) error {
	if errors.Is(err, ErrBackendDown) {
		return fmt.Errorf("fed: shard %d: %w", i, err)
	}
	if rest.Retryable(err) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: shard %d: %w", ErrBackendDown, i, err)
	}
	return fmt.Errorf("fed: shard %d: %w", i, err)
}

// CollectionIter evaluates fn:collection over the federation: every
// shard contributes its share of the collection (uri "" selects each
// backend's default collection) and the shares merge in document-URI
// order, streamed through the returned iterator.
func (x *Executor) CollectionIter(ctx context.Context, uri string) (xdm.Iter, error) {
	argsXML := rest.EncodeArgs([]xdm.Sequence{xdm.Singleton(xdm.String(uri))})
	return x.gather(x.scatter(ctx, x.cfg.CollectionFn, argsXML, true))
}

// Collection is CollectionIter materialized.
func (x *Executor) Collection(ctx context.Context, uri string) (xdm.Sequence, error) {
	it, err := x.CollectionIter(ctx, uri)
	if err != nil {
		return nil, err
	}
	return xdm.Materialize(it)
}

// CollectionResolver adapts the executor to the engine's
// fn:collection hook. The resolver types carry no context, so the
// caller binds one here (the session or request context in serve; the
// per-call IOContext is not reachable from this seam).
func (x *Executor) CollectionResolver(ctx context.Context) runtime.CollectionResolver {
	return func(uri string) ([]*dom.Node, error) {
		seq, err := x.Collection(ctx, uri)
		if err != nil {
			return nil, err
		}
		docs := make([]*dom.Node, 0, len(seq))
		for _, it := range seq {
			if n, ok := xdm.IsNode(it); ok {
				docs = append(docs, n)
			}
		}
		return docs, nil
	}
}

// CollectionIterResolver is the streaming form of CollectionResolver.
func (x *Executor) CollectionIterResolver(ctx context.Context) runtime.CollectionIterResolver {
	return func(uri string) (xdm.Iter, error) {
		return x.CollectionIter(ctx, uri)
	}
}

// Call scatter-gathers a module function across every shard and
// concatenates the results in shard order (URI order when all results
// are documents). Only functions marked Idempotent (or the collection
// function) retry, hedge and fail over; anything else gets exactly one
// attempt against one replica, because re-executing a call with
// effects could double-apply them.
func (x *Executor) Call(ctx context.Context, fn string, args []xdm.Sequence) (xdm.Sequence, error) {
	it, err := x.gather(x.scatter(ctx, fn, rest.EncodeArgs(args), x.idempotent(fn)))
	if err != nil {
		return nil, err
	}
	return xdm.Materialize(it)
}

func (x *Executor) idempotent(fn string) bool {
	return fn == x.cfg.CollectionFn || x.cfg.Idempotent[fn]
}

// Resolver materialises `import module namespace p = "uri" at
// "fed:endpoints"` by fetching the service description from the first
// healthy backend and registering one scatter-gather proxy per
// declared function. ctx bounds the description fetch (imports resolve
// at compile time); proxy calls run under each evaluation's own
// context.
func (x *Executor) Resolver(ctx context.Context) runtime.ModuleResolver {
	return func(imp ast.ModuleImport, reg *runtime.Registry) error {
		if len(imp.Hints) == 0 || imp.Hints[0] != EndpointsHint {
			return fmt.Errorf("fed: import of %q: expected location hint %q", imp.URI, EndpointsHint)
		}
		ns, fns, err := x.fetchDescription(ctx)
		if err != nil {
			return err
		}
		if ns != imp.URI {
			return fmt.Errorf("fed: service namespace %q does not match import %q", ns, imp.URI)
		}
		for _, f := range fns {
			name, arity := f.Name, f.Arity
			reg.Register(&runtime.Function{
				Name:    dom.QName{Space: ns, Local: name},
				MinArgs: arity, MaxArgs: arity,
				Invoke: func(rctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
					return x.Call(rctx.IOContext(), name, args)
				},
			})
		}
		return nil
	}
}

// fetchDescription asks the backends, in shard/preference order, for
// the service description, through the breakers: a federation with a
// dead first backend still resolves its imports.
func (x *Executor) fetchDescription(ctx context.Context) (string, []rest.ServiceFunc, error) {
	var lastErr error
	for _, eps := range x.cfg.Shards {
		for _, ep := range eps {
			br := x.breakerFor(ep)
			if !br.Allow() {
				cBreakerSkips.Add(1)
				continue
			}
			ns, fns, err := rest.FetchDescription(ctx, x.http, strings.TrimSuffix(ep, "/"), x.cfg.MaxBody)
			switch {
			case err == nil:
				br.Record(outcomeOK)
				return ns, fns, nil
			case rest.Retryable(err):
				br.Record(outcomeFail)
			default:
				br.Record(outcomeNeutral)
			}
			lastErr = err
		}
	}
	if lastErr == nil {
		return "", nil, fmt.Errorf("%w: every backend has an open circuit breaker", ErrBackendDown)
	}
	return "", nil, fmt.Errorf("%w: no backend produced a service description: %w", ErrBackendDown, lastErr)
}
