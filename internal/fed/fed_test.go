package fed

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/rest"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// startShard serves ShardModule over a backend owning the given
// documents (uri → XML). An optional middleware wraps the handler for
// fault injection.
func startShard(t *testing.T, docs map[string]string, mw func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	var nodes []*dom.Node
	for uri, src := range docs {
		d, err := markup.Parse(src)
		if err != nil {
			t.Fatalf("parse %s: %v", uri, err)
		}
		d.BaseURI = uri
		nodes = append(nodes, d)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].BaseURI < nodes[j].BaseURI })
	srv, err := rest.NewModuleServer(ShardModule, nil)
	if err != nil {
		t.Fatalf("shard module: %v", err)
	}
	srv.Collections = func(uri string) ([]*dom.Node, error) { return nodes, nil }
	h := http.Handler(srv.Handler())
	if mw != nil {
		h = mw(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// flatten serializes a result sequence for byte-comparison.
func flatten(t *testing.T, seq xdm.Sequence) string {
	t.Helper()
	var b strings.Builder
	for _, it := range seq {
		if n, ok := xdm.IsNode(it); ok {
			b.WriteString(markup.Serialize(n))
		} else {
			b.WriteString(it.String())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// shardDocs builds four interleaved document sets whose URI-ordered
// union is the oracle.
func shardDocs() []map[string]string {
	return []map[string]string{
		{"doc-00": `<d n="00"/>`, "doc-04": `<d n="04"/>`, "doc-08": `<d n="08"/>`},
		{"doc-01": `<d n="01"/>`, "doc-05": `<d n="05"/>`},
		{"doc-02": `<d n="02"/>`, "doc-06": `<d n="06"/>`, "doc-09": `<d n="09"/>`},
		{"doc-03": `<d n="03"/>`, "doc-07": `<d n="07"/>`},
	}
}

// oracle evaluates the same collection over all documents in one
// process: the byte-identical reference a healthy federation must
// match.
func oracle(t *testing.T, sets []map[string]string) string {
	t.Helper()
	all := map[string]string{}
	for _, s := range sets {
		for k, v := range s {
			all[k] = v
		}
	}
	var uris []string
	for u := range all {
		uris = append(uris, u)
	}
	sort.Strings(uris)
	var b strings.Builder
	for _, u := range uris {
		d, err := markup.Parse(all[u])
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(markup.Serialize(d))
		b.WriteString("\n")
	}
	return b.String()
}

func newFed(t *testing.T, cfg Config) *Executor {
	t.Helper()
	x, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestFederatedCollectionMergesInURIOrder(t *testing.T) {
	sets := shardDocs()
	var shards [][]string
	for _, s := range sets {
		shards = append(shards, []string{startShard(t, s, nil).URL})
	}
	x := newFed(t, Config{Shards: shards})
	seq, err := x.Collection(context.Background(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := flatten(t, seq), oracle(t, sets); got != want {
		t.Errorf("merged result differs from oracle:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Document identity survived the wire: every item is a document
	// node carrying its base URI.
	for i, it := range seq {
		n, ok := xdm.IsNode(it)
		if !ok || n.Type != dom.DocumentNode || n.BaseURI == "" {
			t.Fatalf("item %d: want document node with base URI, got %v", i, it)
		}
	}
}

func TestFederatedCollectionThroughEngine(t *testing.T) {
	sets := shardDocs()
	var shards [][]string
	for _, s := range sets {
		shards = append(shards, []string{startShard(t, s, nil).URL})
	}
	x := newFed(t, Config{Shards: shards})
	ctx := context.Background()
	p, err := xquery.New().Compile(`for $d in fn:collection("/") return fn:base-uri($d)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(xquery.RunConfig{
		Collections:     x.CollectionResolver(ctx),
		CollectionsIter: x.CollectionIterResolver(ctx),
		Sequential:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "doc-00\ndoc-01\ndoc-02\ndoc-03\ndoc-04\ndoc-05\ndoc-06\ndoc-07\ndoc-08\ndoc-09\n"
	if got := flatten(t, res.Value); got != want {
		t.Errorf("engine-level federation:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPartialResultsDegradation(t *testing.T) {
	sets := shardDocs()
	var shards [][]string
	var dead *httptest.Server
	for i, s := range sets {
		ts := startShard(t, s, nil)
		if i == 1 {
			dead = ts
		}
		shards = append(shards, []string{ts.URL})
	}
	dead.Close()

	t.Run("strict", func(t *testing.T) {
		x := newFed(t, Config{Shards: shards, MaxRetries: -1, AttemptTimeout: time.Second})
		_, err := x.Collection(context.Background(), "/")
		if !errors.Is(err, ErrBackendDown) {
			t.Fatalf("want ErrBackendDown, got %v", err)
		}
	})

	t.Run("partial", func(t *testing.T) {
		x := newFed(t, Config{Shards: shards, MaxRetries: -1, AttemptTimeout: time.Second, PartialResults: true})
		seq, err := x.Collection(context.Background(), "/")
		if err != nil {
			t.Fatal(err)
		}
		// Available shards' documents, URI-ordered, then the
		// diagnostic tail.
		last := seq[len(seq)-1]
		n, ok := xdm.IsNode(last)
		if !ok || n.Name.Local != "incomplete" || n.Name.Space != Namespace {
			t.Fatalf("want trailing fed:incomplete element, got %v", last)
		}
		if got := n.AttrValue("shards"); got != "1" {
			t.Errorf("incomplete shards attr = %q, want \"1\"", got)
		}
		var uris []string
		for _, it := range seq[:len(seq)-1] {
			d, _ := xdm.IsNode(it)
			uris = append(uris, d.BaseURI)
		}
		want := []string{"doc-00", "doc-02", "doc-03", "doc-04", "doc-06", "doc-07", "doc-08", "doc-09"}
		if strings.Join(uris, " ") != strings.Join(want, " ") {
			t.Errorf("partial URIs = %v, want %v", uris, want)
		}
	})
}

// TestHedgedRequestBeatsStalledPrimary: with the primary replica
// stalled well past the hedge delay, the hedged attempt against the
// replica must win quickly.
func TestHedgedRequestBeatsStalledPrimary(t *testing.T) {
	ResetStats()
	docs := map[string]string{"doc-a": `<d/>`}
	stall := 400 * time.Millisecond
	slow := startShard(t, docs, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-time.After(stall):
			case <-r.Context().Done():
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	fast := startShard(t, docs, nil)
	x := newFed(t, Config{
		Shards:     [][]string{{slow.URL, fast.URL}},
		HedgeDelay: 5 * time.Millisecond,
	})
	start := time.Now()
	seq, err := x.Collection(context.Background(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > stall/2 {
		t.Errorf("hedged call took %v, want well under the %v stall", elapsed, stall)
	}
	if len(seq) != 1 {
		t.Fatalf("want 1 doc, got %d", len(seq))
	}
	s := Snapshot()
	if s.Hedges == 0 || s.HedgeWins == 0 {
		t.Errorf("want hedge launched and won, got %+v", s)
	}
}

func TestModuleFederationViaResolver(t *testing.T) {
	// Each backend serves the same module namespace; a federated call
	// concatenates the per-shard results.
	const mod = `module namespace sv = "urn:test:fedsvc";
declare option fn:webservice "true";
declare function sv:tag($x) { <from>{$x}</from> };`
	var shards [][]string
	for i := 0; i < 2; i++ {
		srv, err := rest.NewModuleServer(mod, nil)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		shards = append(shards, []string{ts.URL})
	}
	x := newFed(t, Config{Shards: shards, Idempotent: map[string]bool{"tag": true}})
	e := xquery.New(xquery.WithModuleResolver(x.Resolver(context.Background())))
	p, err := e.Compile(`import module namespace sv = "urn:test:fedsvc" at "fed:endpoints";
sv:tag("hi")`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(xquery.RunConfig{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	// One result element per shard.
	if got := flatten(t, res.Value); got != "<from>hi</from>\n<from>hi</from>\n" {
		t.Errorf("federated module call = %q", got)
	}
}

func TestResolverRejectsWrongHintAndNamespace(t *testing.T) {
	x := newFed(t, Config{Shards: [][]string{{"http://unused.invalid"}}})
	e := xquery.New(xquery.WithModuleResolver(x.Resolver(context.Background())))
	if _, err := e.Compile(`import module namespace sv = "urn:test:fedsvc" at "http://somewhere/wsdl"; 1`); err == nil {
		t.Error("want error for non-federated hint")
	}
}
