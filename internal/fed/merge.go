package fed

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/faultpoint"
	"repro/internal/markup"
	"repro/internal/xdm"
)

// fedMerger streams the gathered shard payloads as one sequence,
// k-way-merging by document URI (the xmldb shard-merge shape: each
// part arrives sorted, one merge step per Next). When any item lacks a
// URI key — module calls returning computed values, not documents —
// the merge degrades to shard-order concatenation, which is still
// deterministic. Trailing items (the fed:incomplete diagnostic of a
// degraded gather) come last.
type fedMerger struct {
	parts    [][]keyedItem
	pos      []int
	keyed    bool // k-way merge by key vs shard-order concat
	trailing xdm.Sequence
	ti       int
}

func newMerger(parts [][]keyedItem, trailing xdm.Sequence) *fedMerger {
	keyed := true
	for _, p := range parts {
		for i, it := range p {
			if it.key == "" || (i > 0 && p[i-1].key > it.key) {
				keyed = false
				break
			}
		}
		if !keyed {
			break
		}
	}
	return &fedMerger{parts: parts, pos: make([]int, len(parts)), keyed: keyed, trailing: trailing}
}

func (m *fedMerger) Next() (xdm.Item, bool, error) {
	if err := faultpoint.Hit(faultpoint.PointFedMerge); err != nil {
		return nil, false, fmt.Errorf("fed: merge: %w", err)
	}
	best := -1
	for i := range m.parts {
		if m.pos[i] >= len(m.parts[i]) {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		if m.keyed && m.parts[i][m.pos[i]].key < m.parts[best][m.pos[best]].key {
			best = i
		}
	}
	if best >= 0 {
		it := m.parts[best][m.pos[best]]
		m.pos[best]++
		return it.item, true, nil
	}
	if m.ti < len(m.trailing) {
		it := m.trailing[m.ti]
		m.ti++
		return it, true, nil
	}
	return nil, false, nil
}

// incompleteDiagnostic builds the <fed:incomplete> element a
// PartialResults gather appends: which shards are missing and why, as
// data the query (or the user above it) can inspect.
func incompleteDiagnostic(failed []int, errs []error) xdm.Item {
	var idx []string
	for _, i := range failed {
		idx = append(idx, strconv.Itoa(i))
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<fed:incomplete xmlns:fed="%s" shards="%s">`,
		markup.EscapeAttr(Namespace), markup.EscapeAttr(strings.Join(idx, " ")))
	for n, i := range failed {
		fmt.Fprintf(&b, `<fed:shard index="%d">%s</fed:shard>`, i, markup.EscapeText(errs[n].Error()))
	}
	b.WriteString(`</fed:incomplete>`)
	doc, err := markup.Parse(b.String())
	if err != nil || doc.DocumentElement() == nil {
		// Unreachable with escaped content; degrade to a plain string
		// rather than losing the signal.
		return xdm.String("fed:incomplete shards " + strings.Join(idx, " "))
	}
	return xdm.NewNode(doc.DocumentElement())
}
