package fed

import "sync/atomic"

// Process-wide federation counters, following the shape of the other
// resilience layers (update.Rollbacks, index.Snapshot): global atomics
// the executors bump and serve.Metrics snapshots. Two executors in one
// process report combined numbers, which is what a pool-level "is the
// federation absorbing faults" poll wants.
var (
	cScatters     atomic.Int64 // scatter-gather evaluations started
	cCalls        atomic.Int64 // HTTP sub-request attempts issued
	cRetries      atomic.Int64 // attempts re-issued after a transient failure
	cHedges       atomic.Int64 // hedged attempts launched by an elapsed timer
	cHedgeWins    atomic.Int64 // rounds won by a hedged attempt
	cBreakerOpens atomic.Int64 // breaker transitions into the open state
	cBreakerSkips atomic.Int64 // attempts skipped because a breaker was open
	cPartials     atomic.Int64 // gathers degraded to partial results
)

// Stats is a point-in-time snapshot of the federation counters.
type Stats struct {
	Scatters     int64 `json:"scatters"`
	Calls        int64 `json:"calls"`
	Retries      int64 `json:"retries"`
	Hedges       int64 `json:"hedges"`
	HedgeWins    int64 `json:"hedge_wins"`
	BreakerOpens int64 `json:"breaker_opens"`
	BreakerSkips int64 `json:"breaker_skips"`
	Partials     int64 `json:"partials"`
}

// Snapshot returns the current counter values.
func Snapshot() Stats {
	return Stats{
		Scatters:     cScatters.Load(),
		Calls:        cCalls.Load(),
		Retries:      cRetries.Load(),
		Hedges:       cHedges.Load(),
		HedgeWins:    cHedgeWins.Load(),
		BreakerOpens: cBreakerOpens.Load(),
		BreakerSkips: cBreakerSkips.Load(),
		Partials:     cPartials.Load(),
	}
}

// ResetStats zeroes the counters (tests and benchmarks).
func ResetStats() {
	cScatters.Store(0)
	cCalls.Store(0)
	cRetries.Store(0)
	cHedges.Store(0)
	cHedgeWins.Store(0)
	cBreakerOpens.Store(0)
	cBreakerSkips.Store(0)
	cPartials.Store(0)
}
