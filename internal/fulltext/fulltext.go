// Package fulltext implements the ftcontains subset the paper uses
// (§3.1): word and phrase matching over tokenized text with optional
// Porter stemming and case sensitivity, combined with ftand/ftor/ftnot.
package fulltext

import (
	"regexp"
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"
)

// Options control token matching.
type Options struct {
	Stemming      bool
	CaseSensitive bool
	// Wildcards enables the W3C-style wildcard constructs inside query
	// words: "." (any character), ".?", ".*", ".+" and ".{n,m}". A
	// query word containing a wildcard is matched as a pattern against
	// whole tokens; stemming never applies to wildcard words.
	Wildcards bool
}

// Span is a token's byte range in the text it was tokenized from.
type Span struct {
	Start, End int
}

// scanTokens runs the tokenizer over text, calling emit with the byte
// range of each token: maximal runs of letters and digits (apostrophes
// inside words are kept, matching common tokenizer behaviour for
// "don't"). It iterates the string in place — no []rune copy — so
// tokenizing is allocation-free up to the caller's output slice, and
// every token is a contiguous substring text[start:end].
func scanTokens(text string, emit func(start, end int)) {
	start := -1
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if r == '\'' && start >= 0 {
			// An apostrophe stays inside a token only when a letter
			// follows (the '\'' rune is one byte, so i+1 is the next
			// rune's start).
			if nr, sz := utf8.DecodeRuneInString(text[i+1:]); sz > 0 && unicode.IsLetter(nr) {
				continue
			}
		}
		if start >= 0 {
			emit(start, i)
			start = -1
		}
	}
	if start >= 0 {
		emit(start, len(text))
	}
}

// Tokenize splits text into word tokens. Each token is a substring of
// text (zero-copy); only the slice header array is allocated.
func Tokenize(text string) []string {
	var tokens []string
	scanTokens(text, func(s, e int) { tokens = append(tokens, text[s:e]) })
	return tokens
}

// TokenizeSpans is Tokenize returning byte ranges instead of
// substrings — the form the full-text index builder consumes.
func TokenizeSpans(text string) []Span {
	var spans []Span
	scanTokens(text, func(s, e int) { spans = append(spans, Span{Start: s, End: e}) })
	return spans
}

// normalize folds a token per the options.
func normalize(tok string, o Options) string {
	if !o.CaseSensitive {
		tok = strings.ToLower(tok)
	}
	if o.Stemming {
		tok = Stem(strings.ToLower(tok))
	}
	return tok
}

// Normalize folds a token per the options: lower-cased unless
// case-sensitive, then Porter-stemmed (of the lower-cased form) when
// stemming is on. Exported for the full-text index, whose posting keys
// must agree exactly with scan-side matching.
func Normalize(tok string, o Options) string { return normalize(tok, o) }

// HasWildcard reports whether a query word contains a wildcard
// construct (only meaningful when Options.Wildcards is set).
func HasWildcard(w string) bool { return strings.ContainsRune(w, '.') }

// wildcardCache memoises compiled wildcard patterns; scans re-match
// the same query words against every candidate node.
var wildcardCache sync.Map // string (regexp source) → *regexp.Regexp

// WildcardRegexp compiles a wildcard query word into an anchored
// regexp over whole tokens. The wildcard constructs — "." plus an
// optional "?", "*", "+" or "{n,m}" quantifier — map one-to-one onto
// regexp syntax; everything else matches literally. A brace group that
// is not a valid {n,m} quantifier is taken literally, so compilation
// cannot fail.
func WildcardRegexp(w string) *regexp.Regexp {
	var b strings.Builder
	b.WriteString(`\A(?:`)
	for i := 0; i < len(w); {
		r, sz := utf8.DecodeRuneInString(w[i:])
		if r != '.' {
			b.WriteString(regexp.QuoteMeta(w[i : i+sz]))
			i += sz
			continue
		}
		b.WriteByte('.')
		i++
		if i < len(w) {
			switch w[i] {
			case '?', '*', '+':
				b.WriteByte(w[i])
				i++
			case '{':
				if j := strings.IndexByte(w[i:], '}'); j >= 0 && validRepeat(w[i:i+j+1]) {
					b.WriteString(w[i : i+j+1])
					i += j + 1
				}
			}
		}
	}
	b.WriteString(`)\z`)
	src := b.String()
	if re, ok := wildcardCache.Load(src); ok {
		return re.(*regexp.Regexp)
	}
	re := regexp.MustCompile(src)
	wildcardCache.Store(src, re)
	return re
}

// WildcardLiterals returns the maximal literal runs of a wildcard
// query word — the substrings between wildcard constructs, with each
// "." and its optional quantifier suffix excluded. Every token the
// pattern matches must contain each run (in order), which is what lets
// a trigram index narrow wildcard words to vocabulary candidates.
func WildcardLiterals(w string) []string {
	var runs []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			runs = append(runs, b.String())
			b.Reset()
		}
	}
	for i := 0; i < len(w); {
		r, sz := utf8.DecodeRuneInString(w[i:])
		if r != '.' {
			b.WriteString(w[i : i+sz])
			i += sz
			continue
		}
		flush()
		i++
		if i < len(w) {
			switch w[i] {
			case '?', '*', '+':
				i++
			case '{':
				if j := strings.IndexByte(w[i:], '}'); j >= 0 && validRepeat(w[i:i+j+1]) {
					i += j + 1
				}
			}
		}
	}
	flush()
	return runs
}

// QueryWords splits a query phrase into its match words. Without
// wildcards this is the document tokenizer; with wildcards enabled,
// the wildcard constructs — "." plus an optional "?", "*", "+" or
// "{n,m}" quantifier — count as word characters, so "fish.* reef"
// yields the pattern word "fish.*" instead of losing the construct to
// the tokenizer's separator rules. Document tokens never contain
// wildcard characters (Tokenize drops them), so only query phrases
// are ever split here.
func QueryWords(phrase string, o Options) []string {
	if !o.Wildcards || !strings.ContainsRune(phrase, '.') {
		return Tokenize(phrase)
	}
	var words []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			words = append(words, b.String())
			b.Reset()
		}
	}
	for i := 0; i < len(phrase); {
		r, sz := utf8.DecodeRuneInString(phrase[i:])
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteString(phrase[i : i+sz])
			i += sz
		case r == '\'' && b.Len() > 0:
			// Same apostrophe rule as scanTokens: it stays inside a
			// word only when a letter follows.
			if nr, nsz := utf8.DecodeRuneInString(phrase[i+1:]); nsz > 0 && unicode.IsLetter(nr) {
				b.WriteByte('\'')
				i++
				continue
			}
			flush()
			i++
		case r == '.':
			b.WriteByte('.')
			i++
			if i < len(phrase) {
				switch phrase[i] {
				case '?', '*', '+':
					b.WriteByte(phrase[i])
					i++
				case '{':
					if j := strings.IndexByte(phrase[i:], '}'); j >= 0 && validRepeat(phrase[i:i+j+1]) {
						b.WriteString(phrase[i : i+j+1])
						i += j + 1
					}
				}
			}
		default:
			flush()
			i += sz
		}
	}
	flush()
	return words
}

// validRepeat reports whether s is a {n}, {n,} or {n,m} repeat.
func validRepeat(s string) bool {
	body := strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	n, m, comma := strings.Cut(body, ",")
	if n == "" || !allDigits(n) {
		return false
	}
	return !comma || m == "" || allDigits(m)
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// WordMatcher returns the predicate one query word denotes under the
// options: a wildcard pattern match over whole tokens (case folded by
// lower-casing both sides unless case-sensitive) or normalized
// equality. Both the scan path and the index's verification path build
// matchers here, which is what keeps them byte-identical.
func WordMatcher(w string, o Options) func(tok string) bool {
	if o.Wildcards && HasWildcard(w) {
		pat := w
		if !o.CaseSensitive {
			pat = strings.ToLower(pat)
		}
		re := WildcardRegexp(pat)
		return func(tok string) bool {
			if !o.CaseSensitive {
				tok = strings.ToLower(tok)
			}
			return re.MatchString(tok)
		}
	}
	want := normalize(w, o)
	return func(tok string) bool { return normalize(tok, o) == want }
}

// ContainsPhrase reports whether the token sequence contains the phrase
// (consecutive match) under the given options.
func ContainsPhrase(tokens []string, phrase string, o Options) bool {
	want := QueryWords(phrase, o)
	if len(want) == 0 {
		return false
	}
	preds := make([]func(string) bool, len(want))
	for i, w := range want {
		preds[i] = WordMatcher(w, o)
	}
	for i := 0; i+len(preds) <= len(tokens); i++ {
		ok := true
		for j, p := range preds {
			if !p(tokens[i+j]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// ContainsAnyWord reports whether any single word of phrase occurs.
func ContainsAnyWord(tokens []string, phrase string, o Options) bool {
	for _, w := range QueryWords(phrase, o) {
		if ContainsPhrase(tokens, w, o) {
			return true
		}
	}
	return false
}

// ContainsAllWords reports whether every word of phrase occurs
// (anywhere, not necessarily consecutive).
func ContainsAllWords(tokens []string, phrase string, o Options) bool {
	words := QueryWords(phrase, o)
	if len(words) == 0 {
		return false
	}
	for _, w := range words {
		if !ContainsPhrase(tokens, w, o) {
			return false
		}
	}
	return true
}

// Stem applies the Porter stemming algorithm (1980) to a lower-case
// word. The implementation follows the original five-step description.
func Stem(w string) string {
	if len(w) <= 2 {
		return w
	}
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5(w)
	return w
}

// isCons reports whether w[i] is a consonant in Porter's sense.
func isCons(w string, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	default:
		return true
	}
}

// measure computes Porter's m: the number of VC sequences in the stem.
func measure(w string) int {
	m := 0
	i := 0
	n := len(w)
	for i < n && isCons(w, i) {
		i++
	}
	for i < n {
		for i < n && !isCons(w, i) {
			i++
		}
		if i >= n {
			break
		}
		m++
		for i < n && isCons(w, i) {
			i++
		}
	}
	return m
}

func hasVowel(w string) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

func endsDoubleCons(w string) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isCons(w, n-1)
}

// cvc reports whether w ends consonant-vowel-consonant where the final
// consonant is not w, x or y.
func cvc(w string) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isCons(w, n-3) || isCons(w, n-2) || !isCons(w, n-1) {
		return false
	}
	switch w[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func replaceSuffix(w, suf, rep string, minM int) (string, bool) {
	if !strings.HasSuffix(w, suf) {
		return w, false
	}
	stem := w[:len(w)-len(suf)]
	if measure(stem) < minM {
		return w, true // suffix matched but condition failed: stop
	}
	return stem + rep, true
}

func step1a(w string) string {
	switch {
	case strings.HasSuffix(w, "sses"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ies"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ss"):
		return w
	case strings.HasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w string) string {
	if strings.HasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	var stem string
	switch {
	case strings.HasSuffix(w, "ed") && hasVowel(w[:len(w)-2]):
		stem = w[:len(w)-2]
	case strings.HasSuffix(w, "ing") && hasVowel(w[:len(w)-3]):
		stem = w[:len(w)-3]
	default:
		return w
	}
	switch {
	case strings.HasSuffix(stem, "at"), strings.HasSuffix(stem, "bl"), strings.HasSuffix(stem, "iz"):
		return stem + "e"
	case endsDoubleCons(stem) && !strings.HasSuffix(stem, "l") &&
		!strings.HasSuffix(stem, "s") && !strings.HasSuffix(stem, "z"):
		return stem[:len(stem)-1]
	case measure(stem) == 1 && cvc(stem):
		return stem + "e"
	}
	return stem
}

func step1c(w string) string {
	if strings.HasSuffix(w, "y") && hasVowel(w[:len(w)-1]) {
		return w[:len(w)-1] + "i"
	}
	return w
}

var step2Rules = []struct{ suf, rep string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w string) string {
	for _, r := range step2Rules {
		if out, matched := replaceSuffix(w, r.suf, r.rep, 1); matched {
			return out
		}
	}
	return w
}

var step3Rules = []struct{ suf, rep string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w string) string {
	for _, r := range step3Rules {
		if out, matched := replaceSuffix(w, r.suf, r.rep, 1); matched {
			return out
		}
	}
	return w
}

var step4Sufs = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w string) string {
	for _, suf := range step4Sufs {
		if !strings.HasSuffix(w, suf) {
			continue
		}
		stem := w[:len(w)-len(suf)]
		if measure(stem) <= 1 {
			return w
		}
		if suf == "ion" && !strings.HasSuffix(stem, "s") && !strings.HasSuffix(stem, "t") {
			return w
		}
		return stem
	}
	return w
}

func step5(w string) string {
	// 5a
	if strings.HasSuffix(w, "e") {
		stem := w[:len(w)-1]
		m := measure(stem)
		if m > 1 || (m == 1 && !cvc(stem)) {
			w = stem
		}
	}
	// 5b
	if strings.HasSuffix(w, "ll") && measure(w) > 1 {
		w = w[:len(w)-1]
	}
	return w
}
