// Package fulltext implements the ftcontains subset the paper uses
// (§3.1): word and phrase matching over tokenized text with optional
// Porter stemming and case sensitivity, combined with ftand/ftor/ftnot.
package fulltext

import (
	"strings"
	"unicode"
)

// Options control token matching.
type Options struct {
	Stemming      bool
	CaseSensitive bool
}

// Tokenize splits text into word tokens: maximal runs of letters and
// digits (apostrophes inside words are kept, matching common tokenizer
// behaviour for "don't").
func Tokenize(text string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	runes := []rune(text)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			cur.WriteRune(r)
		case r == '\'' && cur.Len() > 0 && i+1 < len(runes) && unicode.IsLetter(runes[i+1]):
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// normalize folds a token per the options.
func normalize(tok string, o Options) string {
	if !o.CaseSensitive {
		tok = strings.ToLower(tok)
	}
	if o.Stemming {
		tok = Stem(strings.ToLower(tok))
	}
	return tok
}

// ContainsPhrase reports whether the token sequence contains the phrase
// (consecutive match) under the given options.
func ContainsPhrase(tokens []string, phrase string, o Options) bool {
	want := Tokenize(phrase)
	if len(want) == 0 {
		return false
	}
	for i := range want {
		want[i] = normalize(want[i], o)
	}
	norm := make([]string, len(tokens))
	for i, t := range tokens {
		norm[i] = normalize(t, o)
	}
	for i := 0; i+len(want) <= len(norm); i++ {
		ok := true
		for j := range want {
			if norm[i+j] != want[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// ContainsAnyWord reports whether any single word of phrase occurs.
func ContainsAnyWord(tokens []string, phrase string, o Options) bool {
	for _, w := range Tokenize(phrase) {
		if ContainsPhrase(tokens, w, o) {
			return true
		}
	}
	return false
}

// ContainsAllWords reports whether every word of phrase occurs
// (anywhere, not necessarily consecutive).
func ContainsAllWords(tokens []string, phrase string, o Options) bool {
	words := Tokenize(phrase)
	if len(words) == 0 {
		return false
	}
	for _, w := range words {
		if !ContainsPhrase(tokens, w, o) {
			return false
		}
	}
	return true
}

// Stem applies the Porter stemming algorithm (1980) to a lower-case
// word. The implementation follows the original five-step description.
func Stem(w string) string {
	if len(w) <= 2 {
		return w
	}
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5(w)
	return w
}

// isCons reports whether w[i] is a consonant in Porter's sense.
func isCons(w string, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	default:
		return true
	}
}

// measure computes Porter's m: the number of VC sequences in the stem.
func measure(w string) int {
	m := 0
	i := 0
	n := len(w)
	for i < n && isCons(w, i) {
		i++
	}
	for i < n {
		for i < n && !isCons(w, i) {
			i++
		}
		if i >= n {
			break
		}
		m++
		for i < n && isCons(w, i) {
			i++
		}
	}
	return m
}

func hasVowel(w string) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

func endsDoubleCons(w string) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isCons(w, n-1)
}

// cvc reports whether w ends consonant-vowel-consonant where the final
// consonant is not w, x or y.
func cvc(w string) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isCons(w, n-3) || isCons(w, n-2) || !isCons(w, n-1) {
		return false
	}
	switch w[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func replaceSuffix(w, suf, rep string, minM int) (string, bool) {
	if !strings.HasSuffix(w, suf) {
		return w, false
	}
	stem := w[:len(w)-len(suf)]
	if measure(stem) < minM {
		return w, true // suffix matched but condition failed: stop
	}
	return stem + rep, true
}

func step1a(w string) string {
	switch {
	case strings.HasSuffix(w, "sses"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ies"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ss"):
		return w
	case strings.HasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w string) string {
	if strings.HasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	var stem string
	switch {
	case strings.HasSuffix(w, "ed") && hasVowel(w[:len(w)-2]):
		stem = w[:len(w)-2]
	case strings.HasSuffix(w, "ing") && hasVowel(w[:len(w)-3]):
		stem = w[:len(w)-3]
	default:
		return w
	}
	switch {
	case strings.HasSuffix(stem, "at"), strings.HasSuffix(stem, "bl"), strings.HasSuffix(stem, "iz"):
		return stem + "e"
	case endsDoubleCons(stem) && !strings.HasSuffix(stem, "l") &&
		!strings.HasSuffix(stem, "s") && !strings.HasSuffix(stem, "z"):
		return stem[:len(stem)-1]
	case measure(stem) == 1 && cvc(stem):
		return stem + "e"
	}
	return stem
}

func step1c(w string) string {
	if strings.HasSuffix(w, "y") && hasVowel(w[:len(w)-1]) {
		return w[:len(w)-1] + "i"
	}
	return w
}

var step2Rules = []struct{ suf, rep string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w string) string {
	for _, r := range step2Rules {
		if out, matched := replaceSuffix(w, r.suf, r.rep, 1); matched {
			return out
		}
	}
	return w
}

var step3Rules = []struct{ suf, rep string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w string) string {
	for _, r := range step3Rules {
		if out, matched := replaceSuffix(w, r.suf, r.rep, 1); matched {
			return out
		}
	}
	return w
}

var step4Sufs = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w string) string {
	for _, suf := range step4Sufs {
		if !strings.HasSuffix(w, suf) {
			continue
		}
		stem := w[:len(w)-len(suf)]
		if measure(stem) <= 1 {
			return w
		}
		if suf == "ion" && !strings.HasSuffix(stem, "s") && !strings.HasSuffix(stem, "t") {
			return w
		}
		return stem
	}
	return w
}

func step5(w string) string {
	// 5a
	if strings.HasSuffix(w, "e") {
		stem := w[:len(w)-1]
		m := measure(stem)
		if m > 1 || (m == 1 && !cvc(stem)) {
			w = stem
		}
	}
	// 5b
	if strings.HasSuffix(w, "ll") && measure(w) > 1 {
		w = w[:len(w)-1]
	}
	return w
}
