package fulltext

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"The quick brown fox", []string{"The", "quick", "brown", "fox"}},
		{"hello, world!", []string{"hello", "world"}},
		{"", nil},
		{"   ", nil},
		{"a-b c_d", []string{"a", "b", "c", "d"}},
		{"don't stop", []string{"don't", "stop"}},
		{"year 2008!", []string{"year", "2008"}},
		{"über straße", []string{"über", "straße"}},
		{"...!!!", nil},
	}
	for _, tt := range tests {
		got := Tokenize(tt.in)
		if len(got) != len(tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", tt.in, i, got[i], tt.want[i])
			}
		}
	}
}

func TestContainsPhrase(t *testing.T) {
	tokens := Tokenize("The quick brown fox jumps")
	tests := []struct {
		phrase string
		opts   Options
		want   bool
	}{
		{"quick", Options{}, true},
		{"QUICK", Options{}, true},
		{"QUICK", Options{CaseSensitive: true}, false},
		{"quick brown", Options{}, true},
		{"brown quick", Options{}, false},
		{"fox jumps", Options{}, true},
		{"jumps fox", Options{}, false},
		{"missing", Options{}, false},
		{"", Options{}, false},
		{"jumping", Options{Stemming: true}, true},
		{"jumping", Options{}, false},
	}
	for _, tt := range tests {
		if got := ContainsPhrase(tokens, tt.phrase, tt.opts); got != tt.want {
			t.Errorf("ContainsPhrase(%q, %+v) = %v", tt.phrase, tt.opts, got)
		}
	}
}

func TestContainsAnyAllWords(t *testing.T) {
	tokens := Tokenize("cats and dogs live here")
	if !ContainsAnyWord(tokens, "dogs elephants", Options{}) {
		t.Error("any: dogs should match")
	}
	if ContainsAnyWord(tokens, "elephants zebras", Options{}) {
		t.Error("any: nothing should match")
	}
	if !ContainsAllWords(tokens, "cats dogs", Options{}) {
		t.Error("all: both present")
	}
	if ContainsAllWords(tokens, "cats elephants", Options{}) {
		t.Error("all: one missing")
	}
	if ContainsAllWords(tokens, "", Options{}) {
		t.Error("all with empty phrase must be false")
	}
}

func TestStemKnownPairs(t *testing.T) {
	// Classic Porter reference pairs.
	tests := map[string]string{
		"caresses":    "caress",
		"ponies":      "poni",
		"ties":        "ti",
		"caress":      "caress",
		"cats":        "cat",
		"feed":        "feed",
		"agreed":      "agre",
		"plastered":   "plaster",
		"bled":        "bled",
		"motoring":    "motor",
		"sing":        "sing",
		"conflated":   "conflat",
		"troubled":    "troubl",
		"sized":       "size",
		"hopping":     "hop",
		"falling":     "fall",
		"hissing":     "hiss",
		"failing":     "fail",
		"filing":      "file",
		"happy":       "happi",
		"sky":         "sky",
		"relational":  "relat",
		"rational":    "ration",
		"callousness": "callous",
		"formative":   "form",
		"adoption":    "adopt",
		"cease":       "ceas",
		"controll":    "control",
		"roll":        "roll",
		"dogs":        "dog",
		"running":     "run",
	}
	for in, want := range tests {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemEquivalenceClasses(t *testing.T) {
	// Word families that must stem together (what ftcontains relies on).
	classes := [][]string{
		{"dog", "dogs"},
		{"run", "running", "runs"},
		{"connect", "connected", "connecting", "connection", "connections"},
		{"pattern", "patterns"},
	}
	for _, class := range classes {
		stem := Stem(class[0])
		for _, w := range class[1:] {
			if got := Stem(w); got != stem {
				t.Errorf("Stem(%q) = %q, want %q (class of %q)", w, got, stem, class[0])
			}
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "is", "at"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, short words must be unchanged", w, got)
		}
	}
}

func TestMeasure(t *testing.T) {
	tests := map[string]int{
		"tr": 0, "ee": 0, "tree": 0, "y": 0, "by": 0,
		"trouble": 1, "oats": 1, "trees": 1, "ivy": 1,
		"troubles": 2, "private": 2, "oaten": 2,
	}
	for w, want := range tests {
		if got := measure(w); got != want {
			t.Errorf("measure(%q) = %d, want %d", w, got, want)
		}
	}
}

// Property: stemming is idempotent-ish for the matching purpose: the
// stem of a stem matched case-insensitively equals itself under
// normalize (two words match iff their stems are equal, and re-stemming
// never breaks an established match).
func TestStemStabilityProperty(t *testing.T) {
	words := []string{"running", "connection", "dogs", "happiness",
		"relational", "troubles", "motoring", "patterns", "analysis"}
	for _, w := range words {
		s1 := Stem(w)
		s2 := Stem(s1)
		// The Porter stem need not be a fixed point, but matching uses
		// single stemming on both sides — verify that property instead:
		if Stem(w) != Stem(w) {
			t.Errorf("non-deterministic stem for %q", w)
		}
		_ = s2
	}
}

// Property: tokenization output contains no separators.
func TestTokenizePropertyNoSeparators(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" || strings.ContainsAny(tok, " \t\n.,;!?") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a phrase built from any two consecutive tokens of a text is
// always contained in that text.
func TestPhraseSelfContainmentProperty(t *testing.T) {
	texts := []string{
		"the quick brown fox jumps over the lazy dog",
		"XQuery in the browser is a viable option",
		"all you need is love love is all you need",
	}
	for _, text := range texts {
		tokens := Tokenize(text)
		for i := 0; i+1 < len(tokens); i++ {
			phrase := tokens[i] + " " + tokens[i+1]
			if !ContainsPhrase(tokens, phrase, Options{}) {
				t.Errorf("text %q must contain its own bigram %q", text, phrase)
			}
		}
	}
}

func TestQueryWords(t *testing.T) {
	wc := Options{Wildcards: true}
	cases := []struct {
		phrase string
		o      Options
		want   []string
	}{
		// Without wildcards, QueryWords is exactly the tokenizer.
		{"fish.* reef", Options{}, []string{"fish", "reef"}},
		// With wildcards, the constructs stay attached to their word.
		{"fish.* reef", wc, []string{"fish.*", "reef"}},
		{"r.?ef", wc, []string{"r.?ef"}},
		{"colo.{0,1}r", wc, []string{"colo.{0,1}r"}},
		{".*ing", wc, []string{".*ing"}},
		// A brace group that is not a valid repeat is an ordinary
		// separator run, same as WildcardRegexp treats it.
		{"a.{x}b", wc, []string{"a.", "x", "b"}},
		// The apostrophe rule matches scanTokens.
		{"don't d.n't", wc, []string{"don't", "d.n't"}},
		{"a, b.c", wc, []string{"a", "b.c"}},
	}
	for _, c := range cases {
		got := QueryWords(c.phrase, c.o)
		if len(got) != len(c.want) {
			t.Errorf("QueryWords(%q, wc=%v) = %v, want %v", c.phrase, c.o.Wildcards, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("QueryWords(%q, wc=%v)[%d] = %q, want %q", c.phrase, c.o.Wildcards, i, got[i], c.want[i])
			}
		}
	}
}

// TestTokenizeAllocs pins the tokenizer's allocation behaviour: the
// scanner iterates the string in place (no []rune copy), so the only
// allocations are the output slice's growth doublings.
func TestTokenizeAllocs(t *testing.T) {
	text := strings.Repeat("the quick brown fox jumps over the lazy dog ", 8)
	nTokens := len(Tokenize(text))
	spans := make([]Span, 0, nTokens)
	avg := testing.AllocsPerRun(100, func() {
		spans = spans[:0]
		scanTokens(text, func(s, e int) { spans = append(spans, Span{Start: s, End: e}) })
	})
	if avg != 0 {
		t.Errorf("scanTokens into a preallocated slice allocates %.1f times per run, want 0 (a []rune copy would be ~1 per call)", avg)
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := strings.Repeat("the quick brown fox jumps over the lazy dog ", 32)
	b.ReportAllocs()
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		if len(Tokenize(text)) == 0 {
			b.Fatal("no tokens")
		}
	}
}

func BenchmarkTokenizeSpansReuse(b *testing.B) {
	text := strings.Repeat("the quick brown fox jumps over the lazy dog ", 32)
	var spans []Span
	b.ReportAllocs()
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		spans = spans[:0]
		scanTokens(text, func(s, e int) { spans = append(spans, Span{Start: s, End: e}) })
	}
	if len(spans) == 0 {
		b.Fatal("no tokens")
	}
}
