// Package index maintains lazily built, version-stamped per-document
// full-text indexes over dom trees — the access layer that makes
// ftcontains index-backed instead of scan-only:
//
//   - one token table over the document's text stream (the document-
//     order concatenation of every text node), each token carrying its
//     byte span, lower-cased form and Porter stem;
//   - inverted posting lists (lower-cased token → positions, stem →
//     positions) probed by word and phrase selections;
//   - a character-trigram index over the distinct vocabulary for
//     wildcard/substring query words;
//   - per-node byte ranges and pre-order numbers, so any element's
//     token window is two binary searches.
//
// The key structural fact the layout exploits: an element's XDM string
// value is a contiguous substring of the document's text stream, so an
// element's tokens are exactly the stream tokens falling fully inside
// its byte range — except at the range edges, where a token merged
// across a text-node boundary (<a>foo<b>bar</b></a> tokenizes "foobar"
// at document level but "bar" inside <b>) can be clipped. Windows with
// a clipped edge token answer "cannot say" and the caller re-scans just
// that node, which keeps index answers byte-identical with the
// scan-only oracle.
//
// Invalidation mirrors internal/dom/index wholesale: every mutator
// bumps the tree root's version counter, an index is valid exactly
// while the version it was built at matches Node.Version(), and a
// stale index is ignored and lazily rebuilt — mutators pay zero
// full-text bookkeeping. The index lives in its own slot on the root
// node (Node.LoadFTIndexCache/StoreFTIndexCache) so it dies with its
// document, and Probe amortises rebuilds exactly like the path index.
package index

import (
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/dom"
	"repro/internal/faultpoint"
	"repro/internal/fulltext"
)

func init() {
	// A rolled-back update rewinds its tree's version counter, which
	// would let an index built during the rolled-back window read as
	// fresh once the counter climbs back to the build version (ABA).
	// Overwrite the slot with a permanently stale marker — atomic.Value
	// cannot store nil, and version ^0 never matches a live counter, so
	// every accessor sees "stale" and the next probe rebuilds.
	dom.OnVersionRestore(func(root *dom.Node) {
		if _, ok := root.LoadFTIndexCache().(*Doc); ok {
			root.StoreFTIndexCache(&Doc{root: root, version: ^uint64(0)})
		}
	})
}

// nodeRange is a node's slice of the document text stream plus its
// position in the build walk's pre-order numbering (document order
// over the indexed node kinds). preEnd is the highest pre number in
// the node's subtree, so "inside n's subtree" is the interval test
// pre(n) <= pre(m) <= preEnd(n).
type nodeRange struct {
	pre, preEnd uint64
	start, end  int32
}

// Doc is one tree's full-text index, immutable after build (the two
// probe counters are advisory atomics for the rebuild heuristic, not
// index content).
type Doc struct {
	root    *dom.Node
	version uint64 // root.Version() at build time

	// text is the document text stream: every text node's data,
	// concatenated in document order. Equal to root.StringValue() for
	// document and element roots.
	text string

	// Token table, in stream order. Token i is text[tokStart[i]:
	// tokEnd[i]]; low and stem are its lower-cased form and the Porter
	// stem of that form.
	tokStart []int32
	tokEnd   []int32
	low      []string
	stem     []string

	// Inverted postings: lower-cased form → token positions, stem →
	// token positions. Both lists are sorted (build appends in stream
	// order).
	post     map[string][]int32
	stemPost map[string][]int32

	// vocab is the sorted distinct lower-cased vocabulary; gram maps
	// each byte trigram to the sorted vocab indexes containing it
	// (wildcard words resolve to vocabulary candidates through it).
	vocab []string
	gram  map[string][]int32

	// split lists the positions of tokens spanning more than one text
	// node: the only tokens whose clipped pieces can match inside a
	// descendant element.
	split []int32

	// The candidate floor the split tokens impose, precomputed at
	// build: every node whose byte range clips a split token (those
	// see a fragment of it the postings never indexed), sorted by pre
	// number. Candidate enumeration unions the in-scope stretch of
	// this list into every answer, which keeps probed candidate sets
	// supersets of the true result.
	floorNodes []*dom.Node
	floorPres  []uint64

	// Node tables: byte range + pre number per document, element and
	// text node; the text nodes themselves with their stream offsets
	// (textEnds[i] = textStarts[i] + len(data)).
	rng        map[*dom.Node]nodeRange
	textNodes  []*dom.Node
	textStarts []int32
	textEnds   []int32

	// Probe's rebuild heuristic: how many probes arrived while this
	// index was stale, and at which tree version they were counted.
	// Racy by design — a lost increment only delays a rebuild by one
	// probe.
	probeV atomic.Uint64
	probeN atomic.Int64
}

// Package-wide counters (process lifetime). Builds is the test hook
// for "rebuild is lazy"; Hits counts selections and candidate probes
// answered from an index and surfaces in the profiler and
// serve.Metrics; Loads counts indexes attached from a persisted
// serialization instead of built.
var (
	builds atomic.Int64
	hits   atomic.Int64
	loads  atomic.Int64
)

// Stats is a snapshot of the package counters.
type Stats struct {
	Builds int64 // indexes constructed since process start
	Hits   int64 // probes answered from an index
	Loads  int64 // indexes attached from persisted form
}

// Snapshot returns the current counters.
func Snapshot() Stats {
	return Stats{Builds: builds.Load(), Hits: hits.Load(), Loads: loads.Load()}
}

// For returns a fresh index for the tree containing n, building one if
// the cached index is missing or stale. The returned Doc is valid
// until the tree's next mutation.
func For(n *dom.Node) *Doc {
	root := n.Root()
	if d, ok := root.LoadFTIndexCache().(*Doc); ok && d.version == root.Version() {
		return d
	}
	d := build(root)
	root.StoreFTIndexCache(d)
	return d
}

// rebuildProbes is Probe's amortisation threshold: a stale index is
// rebuilt only once this many probes have arrived at one unchanged
// tree version, so alternating mutate/query traffic settles into scans
// instead of paying a tokenize+stem pass per mutation.
const rebuildProbes = 4

// Probe returns a fresh index for the tree containing n if having one
// is worth it, or nil when the caller should scan; built reports
// whether this call constructed the index (the profiler's ft:builds
// attribution). A never-indexed tree builds immediately; a tree whose
// index went stale rebuilds only after rebuildProbes probes at the
// current version. This is the entry point for ftcontains evaluation;
// For bypasses the heuristic.
func Probe(n *dom.Node) (d *Doc, built bool) {
	root := n.Root()
	cached, ok := root.LoadFTIndexCache().(*Doc)
	if !ok {
		if faultpoint.Hit(faultpoint.PointFTIndexBuild) != nil {
			return nil, false // degrade: caller scans instead of building
		}
		return For(n), true
	}
	v := root.Version()
	if cached.version == v {
		return cached, false
	}
	if cached.probeV.Load() != v {
		cached.probeV.Store(v)
		cached.probeN.Store(0)
	}
	if cached.probeN.Add(1) < rebuildProbes {
		return nil, false
	}
	if faultpoint.Hit(faultpoint.PointFTIndexBuild) != nil {
		return nil, false // degrade: keep scanning until builds succeed again
	}
	return For(n), true
}

// Fresh returns the cached index for the tree containing n only if it
// is already built and current; it never builds.
func Fresh(n *dom.Node) *Doc {
	root := n.Root()
	if d, ok := root.LoadFTIndexCache().(*Doc); ok && d.version == root.Version() {
		return d
	}
	return nil
}

// build walks the tree once collecting the text stream and the node
// ranges (buildTree, shared with Attach), then tokenizes the stream
// and fills the token table, the postings, the vocabulary trigrams
// and the split-token list.
func build(root *dom.Node) *Doc {
	builds.Add(1)
	d := &Doc{
		root:    root,
		version: root.Version(),
		rng:     map[*dom.Node]nodeRange{},
	}
	buildTree(d, root)
	d.tokenizeStream()
	d.buildTables()
	return d
}

// tokenizeStream fills the token spans and the split-token list from
// d.text and d.textStarts.
func (d *Doc) tokenizeStream() {
	spans := fulltext.TokenizeSpans(d.text)
	d.tokStart = make([]int32, len(spans))
	d.tokEnd = make([]int32, len(spans))
	for i, s := range spans {
		d.tokStart[i] = int32(s.Start)
		d.tokEnd[i] = int32(s.End)
	}
	// A token is "split" when a non-degenerate text-node boundary falls
	// strictly inside it: its characters come from at least two text
	// nodes, so descendant elements may see clipped pieces of it.
	for i := range d.tokStart {
		if d.spansBoundary(i) {
			d.split = append(d.split, int32(i))
		}
	}
}

// spansBoundary reports whether token i crosses the start of a later
// text node (build-time helper; spans and starts are final).
func (d *Doc) spansBoundary(i int) bool {
	s, e := d.tokStart[i], d.tokEnd[i]
	j := sort.Search(len(d.textStarts), func(k int) bool { return d.textStarts[k] > s })
	for ; j < len(d.textStarts); j++ {
		b := d.textStarts[j]
		if b >= e {
			return false
		}
		if b > s {
			return true
		}
	}
	return false
}

// buildTables derives the per-token forms, the postings, and the
// vocabulary trigram index from the token spans. A stem array already
// sized to the token table (an Attach from persisted form) is kept —
// stemming is the expensive part of a build.
func (d *Doc) buildTables() {
	n := len(d.tokStart)
	d.low = make([]string, n)
	if len(d.stem) != n {
		d.stem = make([]string, n)
	}
	d.post = make(map[string][]int32, n/2+1)
	d.stemPost = make(map[string][]int32, n/2+1)
	for i := 0; i < n; i++ {
		raw := d.text[d.tokStart[i]:d.tokEnd[i]]
		low := lowerToken(raw)
		d.low[i] = low
		if d.stem[i] == "" {
			d.stem[i] = fulltext.Stem(low)
		}
		d.post[low] = append(d.post[low], int32(i))
		d.stemPost[d.stem[i]] = append(d.stemPost[d.stem[i]], int32(i))
	}
	d.vocab = make([]string, 0, len(d.post))
	for v := range d.post {
		d.vocab = append(d.vocab, v)
	}
	sort.Strings(d.vocab)
	d.gram = make(map[string][]int32)
	for vi, v := range d.vocab {
		for _, tri := range trigrams(v) {
			g := d.gram[tri]
			if len(g) > 0 && g[len(g)-1] == int32(vi) {
				continue
			}
			d.gram[tri] = append(g, int32(vi))
		}
	}
	d.buildFloor()
}

// buildFloor precomputes the split-token candidate floor: for each
// split token, the ancestors of its spanning text nodes whose byte
// ranges clip the token. Only those nodes see a fragment of the token
// in their local tokenization (a piece the postings never indexed, so
// a query word can match it invisibly); an ancestor containing the
// whole token sees the joined form the postings hold and needs no
// floor. The floor depends only on the document, so computing it here
// keeps Candidates from re-deriving (and re-sorting) it per probe.
func (d *Doc) buildFloor() {
	set := map[*dom.Node]uint64{}
	for _, sp := range d.split {
		p := int(sp)
		s, e := d.tokStart[p], d.tokEnd[p]
		for _, tn := range d.tokenTextNodes(p) {
			for cur := tn; cur != nil; cur = cur.Parent() {
				if r, ok := d.rng[cur]; ok && (r.start > s || r.end < e) {
					set[cur] = r.pre
				}
			}
		}
	}
	d.floorNodes = make([]*dom.Node, 0, len(set))
	for n := range set {
		d.floorNodes = append(d.floorNodes, n)
	}
	sort.Slice(d.floorNodes, func(i, j int) bool {
		return set[d.floorNodes[i]] < set[d.floorNodes[j]]
	})
	d.floorPres = make([]uint64, len(d.floorNodes))
	for i, n := range d.floorNodes {
		d.floorPres[i] = set[n]
	}
}

// lowerToken lower-cases a token, returning the input itself when it
// is already lower-case ASCII (the common case — zero allocation).
func lowerToken(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' || c >= 0x80 {
			return strings.ToLower(s)
		}
	}
	return s
}

// trigrams returns the byte trigrams of s (duplicates included; the
// caller dedups adjacent repeats).
func trigrams(s string) []string {
	if len(s) < 3 {
		return nil
	}
	out := make([]string, 0, len(s)-2)
	for i := 0; i+3 <= len(s); i++ {
		out = append(out, s[i:i+3])
	}
	return out
}

// fresh reports whether the index still matches its tree. Every
// accessor checks it before touching the token table or postings: a
// Doc held across a mutation answers ok=false and the caller falls
// back to scanning.
func (d *Doc) fresh() bool { return d.version == d.root.Version() }

// TokenCount returns the number of tokens in the document stream, and
// whether the index could answer.
func (d *Doc) TokenCount() (int, bool) {
	if !d.fresh() {
		return 0, false
	}
	return len(d.tokStart), true
}
