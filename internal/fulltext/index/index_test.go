package index_test

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/fulltext"
	ftindex "repro/internal/fulltext/index"
	"repro/internal/markup"
)

// ftDoc has clean windows, a split token (`anti<b>body</b>` merges to
// "antibody" in the stream while <b> locally reads "body"), repeated
// vocabulary for scoring, and wildcard targets.
func ftDoc(t testing.TB) *dom.Node {
	t.Helper()
	d, err := markup.Parse(`<root id="r">
  <a id="a1">the marlin swims past the coral reef</a>
  <a id="a2">coral coral reef fishing boats</a>
  <a id="a3">anti<b id="b1">body</b> research notes</a>
  <a id="a4">nothing of note here</a>
</root>`)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func elem(t *testing.T, root *dom.Node, id string) *dom.Node {
	t.Helper()
	var out *dom.Node
	root.Walk(func(n *dom.Node) bool {
		if n.Type == dom.ElementNode && n.AttrValue("id") == id {
			out = n
			return false
		}
		return true
	})
	if out == nil {
		t.Fatalf("no element with id %q", id)
	}
	return out
}

func words(all bool, phrases ...string) ftindex.Words {
	return ftindex.Words{Phrases: phrases, All: all}
}

func TestMatchAgreesWithScan(t *testing.T) {
	doc := ftDoc(t)
	idx := ftindex.For(doc)
	sels := []ftindex.Sel{
		words(false, "marlin"),
		words(false, "coral reef"),
		words(true, "coral", "fishing"),
		ftindex.And{L: words(false, "coral"), R: words(false, "reef")},
		ftindex.Or{L: words(false, "marlin"), R: words(false, "boats")},
		ftindex.And{L: words(false, "reef"), R: ftindex.Not{X: words(false, "marlin")}},
		words(false, ""),
		words(false, "missing"),
	}
	doc.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode && n.Type != dom.TextNode {
			return true
		}
		tokens := fulltext.Tokenize(n.StringValue())
		for _, sel := range sels {
			want := ftindex.MatchTokens(tokens, sel)
			got, ok := idx.Match(n, sel)
			if ok && got != want {
				t.Errorf("Match(%q, %#v) = %v, scan says %v", n.StringValue(), sel, got, want)
			}
		}
		return true
	})
}

// TestMatchRefusesDirtyWindow: <b>body</b> sees only a clipped piece
// of the stream token "antibody", so the index cannot answer for it
// and must return ok=false (the caller then scans), for both the
// joined form and the local piece.
func TestMatchRefusesDirtyWindow(t *testing.T) {
	doc := ftDoc(t)
	idx := ftindex.For(doc)
	b := elem(t, doc, "b1")
	for _, w := range []string{"antibody", "body"} {
		if _, ok := idx.Match(b, words(false, w)); ok {
			t.Errorf("Match on the split-token node answered %q; must refuse (ok=false)", w)
		}
	}
	// The parent <a> contains the whole merged token: its window is
	// clean and holds "antibody", not the pieces.
	a := elem(t, doc, "a3")
	if m, ok := idx.Match(a, words(false, "antibody")); !ok || !m {
		t.Errorf(`Match(a3, "antibody") = %v, %v; want true, true`, m, ok)
	}
	if m, ok := idx.Match(a, words(false, "body")); !ok || m {
		t.Errorf(`Match(a3, "body") = %v, %v; want false, true (only the merged form exists)`, m, ok)
	}
}

// TestCandidatesSuperset: for every selection, the candidate list must
// contain every element the scan oracle matches — including <b>body</b>
// for "body", which only the split-token floor can supply (the postings
// hold just the merged "antibody").
func TestCandidatesSuperset(t *testing.T) {
	doc := ftDoc(t)
	idx := ftindex.For(doc)
	root := elem(t, doc, "r")
	sels := []ftindex.Sel{
		words(false, "marlin"),
		words(false, "coral reef"),
		words(false, "body"),
		words(false, "antibody"),
		words(true, "coral", "reef"),
		ftindex.And{L: words(false, "coral"), R: words(false, "reef")},
		ftindex.Or{L: words(false, "marlin"), R: words(false, "body")},
	}
	for _, sel := range sels {
		cand, ok := idx.Candidates(root, sel, false)
		if !ok {
			t.Fatalf("Candidates(%#v) refused on a fresh index", sel)
		}
		in := map[*dom.Node]bool{}
		for _, n := range cand {
			in[n] = true
		}
		root.Walk(func(n *dom.Node) bool {
			if n == root || n.Type != dom.ElementNode {
				return true
			}
			if ftindex.MatchTokens(fulltext.Tokenize(n.StringValue()), sel) && !in[n] {
				t.Errorf("Candidates(%#v) missing matching element id=%q", sel, n.AttrValue("id"))
			}
			return true
		})
	}
	// Floor sanity: the split-token node must be a candidate for a word
	// that only matches its clipped local text.
	cand, _ := idx.Candidates(root, words(false, "body"), false)
	found := false
	for _, n := range cand {
		if n.AttrValue("id") == "b1" {
			found = true
		}
	}
	if !found {
		t.Error(`the split-token floor did not supply <b id="b1"> for "body"`)
	}
}

// TestCandidatesScoped: candidates stay inside the probe scope, in
// document order, and exclude the scope itself unless orSelf.
func TestCandidatesScoped(t *testing.T) {
	doc := ftDoc(t)
	idx := ftindex.For(doc)
	a2 := elem(t, doc, "a2")
	cand, ok := idx.Candidates(a2, words(false, "coral"), false)
	if !ok {
		t.Fatal("Candidates refused")
	}
	for _, n := range cand {
		if n == a2 {
			t.Error("candidates include the scope without orSelf")
		}
		for p := n; p != nil; p = p.Parent() {
			if p == a2 {
				return
			}
		}
		t.Errorf("candidate %q escapes the scope", n.StringValue())
	}
}

func TestCandidatesWildcards(t *testing.T) {
	doc := ftDoc(t)
	idx := ftindex.For(doc)
	root := elem(t, doc, "r")
	sel := ftindex.Words{Phrases: []string{"fish.*"}, Opts: fulltext.Options{Wildcards: true}}
	cand, ok := idx.Candidates(root, sel, false)
	if !ok {
		t.Fatal("Candidates refused a wildcard word")
	}
	found := false
	for _, n := range cand {
		if n.AttrValue("id") == "a2" {
			found = true
		}
	}
	if !found {
		t.Errorf(`wildcard "fish.*" candidates missing a2 ("fishing"); got %d candidates`, len(cand))
	}
}

func TestScoreAgreesWithScan(t *testing.T) {
	doc := ftDoc(t)
	idx := ftindex.For(doc)
	total, ok := idx.TokenCount()
	if !ok {
		t.Fatal("TokenCount refused on a fresh index")
	}
	terms := ftindex.ScoreTerms(ftindex.Or{L: words(false, "coral reef"), R: words(false, "marlin")})
	docTokens := fulltext.Tokenize(doc.StringValue())
	docCount := func(tm ftindex.Term) int {
		m := fulltext.WordMatcher(tm.Word, tm.Opts)
		c := 0
		for _, tok := range docTokens {
			if m(tok) {
				c++
			}
		}
		return c
	}
	for _, id := range []string{"a1", "a2", "a4"} {
		n := elem(t, doc, id)
		got, ok := idx.Score(n, terms)
		if !ok {
			t.Fatalf("Score(%s) refused on a clean window", id)
		}
		want := ftindex.ScoreTokens(fulltext.Tokenize(n.StringValue()), total, terms, docCount)
		if got != want {
			t.Errorf("Score(%s) = %v, scan says %v", id, got, want)
		}
	}
}

// TestStaleIndexRefuses: after any mutation, a held Doc answers
// nothing — Match, Candidates, Score, TokenCount and Serialize all
// report "cannot say".
func TestStaleIndexRefuses(t *testing.T) {
	doc := ftDoc(t)
	idx := ftindex.For(doc)
	elem(t, doc, "a4").ReplaceElementContent("marlin marlin")
	if _, ok := idx.Match(elem(t, doc, "a1"), words(false, "marlin")); ok {
		t.Error("stale Match answered")
	}
	if _, ok := idx.Candidates(elem(t, doc, "r"), words(false, "marlin"), false); ok {
		t.Error("stale Candidates answered")
	}
	if _, ok := idx.Score(elem(t, doc, "a1"), []ftindex.Term{{Word: "marlin"}}); ok {
		t.Error("stale Score answered")
	}
	if _, ok := idx.TokenCount(); ok {
		t.Error("stale TokenCount answered")
	}
	if _, ok := idx.Serialize(); ok {
		t.Error("stale Serialize answered")
	}
	// A rebuilt index sees the new text.
	if m, ok := ftindex.For(doc).Match(elem(t, doc, "a4"), words(false, "marlin")); !ok || !m {
		t.Errorf("rebuilt Match = %v, %v; want true, true", m, ok)
	}
}

func TestSerializeAttachRoundTrip(t *testing.T) {
	src := ftDoc(t)
	s, ok := ftindex.For(src).Serialize()
	if !ok {
		t.Fatal("Serialize refused a fresh index")
	}

	dst := ftDoc(t)
	loadsBefore := ftindex.Snapshot().Loads
	buildsBefore := ftindex.Snapshot().Builds
	if err := ftindex.Attach(dst, s); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if d := ftindex.Snapshot().Loads - loadsBefore; d != 1 {
		t.Errorf("Attach bumped Loads by %d, want 1", d)
	}
	idx := ftindex.Fresh(dst)
	if idx == nil {
		t.Fatal("Fresh returned nil after Attach")
	}
	if d := ftindex.Snapshot().Builds - buildsBefore; d != 0 {
		t.Errorf("Attach counted %d builds, want 0 (the point of persisting)", d)
	}
	// The attached index answers exactly like a built one, split-token
	// refusals included.
	for _, c := range []struct {
		id   string
		sel  ftindex.Sel
		want bool
	}{
		{"a1", words(false, "marlin"), true},
		{"a2", words(false, "coral reef"), true},
		{"a3", words(false, "antibody"), true},
		{"a4", words(false, "marlin"), false},
	} {
		if m, ok := idx.Match(elem(t, dst, c.id), c.sel); !ok || m != c.want {
			t.Errorf("attached Match(%s) = %v, %v; want %v, true", c.id, m, ok, c.want)
		}
	}
	if _, ok := idx.Match(elem(t, dst, "b1"), words(false, "body")); ok {
		t.Error("attached index answered for the split-token node; must refuse")
	}
}

func TestAttachRejectsCorruptSidecars(t *testing.T) {
	src := ftDoc(t)
	good, _ := ftindex.For(src).Serialize()
	cases := map[string]func(*ftindex.Serialized){
		"wrong text hash":    func(s *ftindex.Serialized) { s.TextHash++ },
		"wrong text length":  func(s *ftindex.Serialized) { s.TextLen++ },
		"short stem table":   func(s *ftindex.Serialized) { s.Stem = s.Stem[:len(s.Stem)-1] },
		"empty stem":         func(s *ftindex.Serialized) { s.Stem[0] = "" },
		"span out of bounds": func(s *ftindex.Serialized) { s.TokEnd[len(s.TokEnd)-1] = int32(s.TextLen + 5) },
		"span inverted":      func(s *ftindex.Serialized) { s.TokEnd[0] = s.TokStart[0] },
		"split out of range": func(s *ftindex.Serialized) { s.Split = append(s.Split, int32(len(s.TokStart))) },
	}
	for name, corrupt := range cases {
		bad := *good
		bad.TokStart = append([]int32(nil), good.TokStart...)
		bad.TokEnd = append([]int32(nil), good.TokEnd...)
		bad.Stem = append([]string(nil), good.Stem...)
		bad.Split = append([]int32(nil), good.Split...)
		corrupt(&bad)
		dst := ftDoc(t)
		if err := ftindex.Attach(dst, &bad); err == nil {
			t.Errorf("%s: Attach accepted a corrupted sidecar", name)
		}
		if ftindex.Fresh(dst) != nil {
			t.Errorf("%s: a rejected Attach still published an index", name)
		}
	}
}

// TestAttachedRoundTripEqualsBuild: a built index and an attached one
// over the same document agree on every node and selection — the
// sidecar stores derived data only, never answers.
func TestAttachedRoundTripEqualsBuild(t *testing.T) {
	built := ftDoc(t)
	bIdx := ftindex.For(built)
	s, _ := bIdx.Serialize()
	attached := ftDoc(t)
	if err := ftindex.Attach(attached, s); err != nil {
		t.Fatal(err)
	}
	aIdx := ftindex.Fresh(attached)
	sels := []ftindex.Sel{
		words(false, "marlin"),
		words(false, "coral reef"),
		words(false, "body"),
		ftindex.Words{Phrases: []string{"co.*l"}, Opts: fulltext.Options{Wildcards: true}},
		ftindex.Words{Phrases: []string{"swimming"}, Opts: fulltext.Options{Stemming: true}},
	}
	ids := []string{"r", "a1", "a2", "a3", "a4", "b1"}
	for _, sel := range sels {
		for _, id := range ids {
			bm, bok := bIdx.Match(elem(t, built, id), sel)
			am, aok := aIdx.Match(elem(t, attached, id), sel)
			if bm != am || bok != aok {
				t.Errorf("built and attached disagree on (%s, %#v): (%v,%v) vs (%v,%v)",
					id, sel, bm, bok, am, aok)
			}
		}
	}
}
