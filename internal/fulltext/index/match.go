package index

import (
	"math"
	"sort"
	"strings"

	"repro/internal/dom"
	"repro/internal/fulltext"
)

// Sel is a resolved full-text selection: the runtime evaluates the
// FTWords source expressions of an ast.FTSelection and hands the
// resulting phrase lists here, so this package never sees the AST.
type Sel interface{ ftSel() }

// Words matches a list of phrases. All=false ("any", the default)
// matches when any phrase occurs consecutively; All=true matches when
// every phrase has all its words present (anywhere). An empty phrase
// list never matches.
type Words struct {
	Phrases []string
	All     bool
	Opts    fulltext.Options
}

// And requires both selections to match.
type And struct{ L, R Sel }

// Or requires either selection to match.
type Or struct{ L, R Sel }

// Not negates a selection.
type Not struct{ X Sel }

func (Words) ftSel() {}
func (And) ftSel()   {}
func (Or) ftSel()    {}
func (Not) ftSel()   {}

// Term is one positive query word with its match options — the unit
// TF-IDF scoring sums over.
type Term struct {
	Word string
	Opts fulltext.Options
}

// ScoreTerms extracts the scoring terms of a selection: every word of
// every phrase outside ftnot subtrees, in selection order. Both the
// index and the scan path score the same term list, which is what
// keeps ft:score identical between them.
func ScoreTerms(sel Sel) []Term {
	var out []Term
	var walk func(s Sel)
	walk = func(s Sel) {
		switch x := s.(type) {
		case Words:
			for _, p := range x.Phrases {
				for _, w := range fulltext.QueryWords(p, x.Opts) {
					out = append(out, Term{Word: w, Opts: x.Opts})
				}
			}
		case And:
			walk(x.L)
			walk(x.R)
		case Or:
			walk(x.L)
			walk(x.R)
		case Not:
			// negative terms do not contribute to relevance
		}
	}
	walk(sel)
	return out
}

// MatchTokens evaluates a resolved selection against one node's token
// list — the scan-side matcher. The index's Match must agree with this
// function on every input; both bottom out in the fulltext package's
// matchers.
func MatchTokens(tokens []string, sel Sel) bool {
	switch x := sel.(type) {
	case Words:
		if len(x.Phrases) == 0 {
			return false
		}
		for _, p := range x.Phrases {
			var ok bool
			if x.All {
				ok = fulltext.ContainsAllWords(tokens, p, x.Opts)
			} else {
				ok = fulltext.ContainsPhrase(tokens, p, x.Opts)
			}
			if ok && !x.All {
				return true
			}
			if !ok && x.All {
				return false
			}
		}
		return x.All
	case And:
		return MatchTokens(tokens, x.L) && MatchTokens(tokens, x.R)
	case Or:
		return MatchTokens(tokens, x.L) || MatchTokens(tokens, x.R)
	case Not:
		return !MatchTokens(tokens, x.X)
	default:
		return false
	}
}

// ScoreTokens computes the scan-side TF-IDF score of one node against
// the query terms: tf over the node's own tokens times
// ln(1 + N/(1+cf)) where N is the document stream's token count and cf
// the term's document-wide occurrence count. docCount must answer cf
// for a term (the scan path memoises counts over the root's token
// stream; the index answers from postings). Terms with zero tf
// contribute nothing.
func ScoreTokens(nodeTokens []string, total int, terms []Term, docCount func(Term) int) float64 {
	score := 0.0
	for _, t := range terms {
		m := fulltext.WordMatcher(t.Word, t.Opts)
		tf := 0
		for _, tok := range nodeTokens {
			if m(tok) {
				tf++
			}
		}
		if tf == 0 {
			continue
		}
		idf := math.Log(1 + float64(total)/float64(1+docCount(t)))
		score += float64(tf) * idf
	}
	return score
}

// window locates a node range's token window: [lo, hi) are the tokens
// fully inside the range, dirty reports that a token is clipped by a
// range edge (the node's own tokenization then differs from the
// window and the caller must re-scan the node).
func (d *Doc) window(r nodeRange) (lo, hi int, dirty bool) {
	if !d.fresh() {
		return 0, 0, true
	}
	lo = sort.Search(len(d.tokStart), func(i int) bool { return d.tokStart[i] >= r.start })
	hi = sort.Search(len(d.tokEnd), func(i int) bool { return d.tokEnd[i] > r.end })
	if lo > 0 && d.tokEnd[lo-1] > r.start {
		dirty = true
	}
	if hi < len(d.tokStart) && d.tokStart[hi] < r.end {
		dirty = true
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi, dirty
}

// Match answers "does node n match sel" from the index. ok is false
// when the index cannot answer exactly — stale index, a node kind
// outside the indexed set (attributes, comments, PIs), or a window
// with a clipped edge token — and the caller must scan that node.
func (d *Doc) Match(n *dom.Node, sel Sel) (matched, ok bool) {
	if !d.fresh() {
		return false, false
	}
	r, okR := d.rng[n]
	if !okR {
		return false, false
	}
	lo, hi, dirty := d.window(r)
	if dirty {
		return false, false
	}
	hits.Add(1)
	return d.matchSel(lo, hi, sel), true
}

// matchSel evaluates a selection over a clean token window, mirroring
// MatchTokens exactly. Callers hold the freshness check.
func (d *Doc) matchSel(lo, hi int, sel Sel) bool {
	switch x := sel.(type) {
	case Words:
		if len(x.Phrases) == 0 {
			return false
		}
		for _, p := range x.Phrases {
			var ok bool
			if x.All {
				ok = d.allWordsIn(lo, hi, p, x.Opts)
			} else {
				ok = d.phraseIn(lo, hi, p, x.Opts)
			}
			if ok && !x.All {
				return true
			}
			if !ok && x.All {
				return false
			}
		}
		return x.All
	case And:
		return d.matchSel(lo, hi, x.L) && d.matchSel(lo, hi, x.R)
	case Or:
		return d.matchSel(lo, hi, x.L) || d.matchSel(lo, hi, x.R)
	case Not:
		return !d.matchSel(lo, hi, x.X)
	default:
		return false
	}
}

// phraseIn mirrors fulltext.ContainsPhrase over a window: the phrase's
// words must match consecutive tokens.
func (d *Doc) phraseIn(lo, hi int, phrase string, o fulltext.Options) bool {
	words := fulltext.QueryWords(phrase, o)
	if len(words) == 0 {
		return false
	}
	found := false
	d.eachWordPos(lo, hi-len(words)+1, words[0], o, func(p int) bool {
		for j := 1; j < len(words); j++ {
			if !d.tokMatch(p+j, words[j], o) {
				return false
			}
		}
		found = true
		return true
	})
	return found
}

// allWordsIn mirrors fulltext.ContainsAllWords over a window.
func (d *Doc) allWordsIn(lo, hi int, phrase string, o fulltext.Options) bool {
	words := fulltext.QueryWords(phrase, o)
	if len(words) == 0 {
		return false
	}
	for _, w := range words {
		if !d.wordOccurs(lo, hi, w, o) {
			return false
		}
	}
	return true
}

// wordOccurs reports whether any token in [lo, hi) matches the query
// word under the options.
func (d *Doc) wordOccurs(lo, hi int, w string, o fulltext.Options) bool {
	found := false
	d.eachWordPos(lo, hi, w, o, func(int) bool { found = true; return true })
	return found
}

// tokMatch reports whether token p matches one query word — the O(1)
// per-token check phrase verification uses.
func (d *Doc) tokMatch(p int, w string, o fulltext.Options) bool {
	if !d.fresh() || p >= len(d.low) {
		return false
	}
	if o.Wildcards && fulltext.HasWildcard(w) {
		return fulltext.WordMatcher(w, o)(d.text[d.tokStart[p]:d.tokEnd[p]])
	}
	if o.Stemming {
		return d.stem[p] == fulltext.Normalize(w, o)
	}
	if o.CaseSensitive {
		return d.text[d.tokStart[p]:d.tokEnd[p]] == w
	}
	return d.low[p] == lowerToken(w)
}

// eachWordPos calls fn with every token position in [lo, hi) matching
// the query word, stopping early when fn returns true. Positions
// arrive sorted for plain and stemmed words; wildcard words iterate
// per vocabulary candidate, so their positions arrive grouped, not
// globally sorted (fine for the set/occurrence uses).
func (d *Doc) eachWordPos(lo, hi int, w string, o fulltext.Options, fn func(p int) bool) {
	if hi <= lo || !d.fresh() {
		return
	}
	emitRange := func(ps []int32, filter func(p int) bool) bool {
		i := sort.Search(len(ps), func(i int) bool { return ps[i] >= int32(lo) })
		for ; i < len(ps) && ps[i] < int32(hi); i++ {
			p := int(ps[i])
			if filter != nil && !filter(p) {
				continue
			}
			if fn(p) {
				return true
			}
		}
		return false
	}
	switch {
	case o.Wildcards && fulltext.HasWildcard(w):
		pat := strings.ToLower(w)
		var csMatch func(string) bool
		if o.CaseSensitive {
			csMatch = fulltext.WildcardRegexp(w).MatchString
		}
		for _, vi := range d.vocabMatches(pat) {
			ps := d.post[d.vocab[vi]]
			stop := emitRange(ps, func(p int) bool {
				return csMatch == nil || csMatch(d.text[d.tokStart[p]:d.tokEnd[p]])
			})
			if stop {
				return
			}
		}
	case o.Stemming:
		emitRange(d.stemPost[fulltext.Normalize(w, o)], nil)
	case o.CaseSensitive:
		emitRange(d.post[lowerToken(w)], func(p int) bool {
			return d.text[d.tokStart[p]:d.tokEnd[p]] == w
		})
	default:
		emitRange(d.post[lowerToken(w)], nil)
	}
}

// vocabMatches resolves a lower-cased wildcard pattern to the vocab
// indexes whose token matches it. Literal trigrams of the pattern
// narrow the candidates through the trigram index; a pattern with no
// trigram-length literal scans the whole (distinct) vocabulary.
func (d *Doc) vocabMatches(pat string) []int32 {
	if !d.fresh() {
		return nil
	}
	re := fulltext.WildcardRegexp(pat)
	var cand []int32
	narrowed := false
	for _, lit := range fulltext.WildcardLiterals(pat) {
		for _, tri := range trigrams(lit) {
			g := d.gram[tri]
			if !narrowed {
				cand = append(cand[:0], g...)
				narrowed = true
			} else {
				cand = intersectSorted(cand, g)
			}
			if len(cand) == 0 && narrowed {
				return nil
			}
		}
	}
	if !narrowed {
		out := make([]int32, 0, 8)
		for vi, v := range d.vocab {
			if re.MatchString(v) {
				out = append(out, int32(vi))
			}
		}
		return out
	}
	out := cand[:0]
	for _, vi := range cand {
		if re.MatchString(d.vocab[vi]) {
			out = append(out, vi)
		}
	}
	return out
}

// intersectSorted intersects two sorted int32 lists into a (reused
// where possible).
func intersectSorted(a, b []int32) []int32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Candidates enumerates a superset of the nodes inside scope's subtree
// (scope itself included when orSelf) that can match sel, in document
// order: for every position of every required word, the ancestor chain
// of the owning text node up to scope — unioned with the in-scope
// stretch of the precomputed split-token floor (see buildFloor), whose
// clipped token pieces can match anything. ftand intersects the
// per-word node sets, ftor unions them, and ftnot (or an unanswerable
// side) makes that branch "unknown"; a selection that resolves to
// unknown returns ok=false and the caller scans the axis. Unioning the
// floor once at the end is exact — union and intersection are
// monotone, so flooring every leaf set and flooring the final result
// produce the same set — and keeps the per-probe cost proportional to
// the matches, not the document's split count. The caller re-applies
// the node test and the full predicate list to whatever is returned,
// so enumeration only has to be a superset, never exact.
func (d *Doc) Candidates(scope *dom.Node, sel Sel, orSelf bool) (nodes []*dom.Node, ok bool) {
	if !d.fresh() {
		return nil, false
	}
	r, okR := d.rng[scope]
	if !okR {
		return nil, false
	}
	// Covering window: every token overlapping the scope's range,
	// clipped edge tokens included (their pieces belong to descendants).
	cl := sort.Search(len(d.tokEnd), func(i int) bool { return d.tokEnd[i] > r.start })
	ch := sort.Search(len(d.tokStart), func(i int) bool { return d.tokStart[i] >= r.end })
	set, known := d.candSet(scope, r, cl, ch, orSelf, sel)
	if !known {
		return nil, false
	}
	hits.Add(1)
	matched := make([]*dom.Node, 0, len(set))
	for n := range set {
		matched = append(matched, n)
	}
	sort.Slice(matched, func(i, j int) bool { return d.rng[matched[i]].pre < d.rng[matched[j]].pre })
	return d.mergeFloor(matched, scope, r, orSelf), true
}

// mergeFloor merges the pre-sorted word-candidate list with the
// in-scope stretch of the split-token floor, deduplicating.
func (d *Doc) mergeFloor(matched []*dom.Node, scope *dom.Node, r nodeRange, orSelf bool) []*dom.Node {
	if !d.fresh() {
		return matched
	}
	lo := sort.Search(len(d.floorPres), func(i int) bool { return d.floorPres[i] >= r.pre })
	hi := sort.Search(len(d.floorPres), func(i int) bool { return d.floorPres[i] > r.preEnd })
	if lo == hi {
		return matched
	}
	out := make([]*dom.Node, 0, len(matched)+hi-lo)
	i, j := 0, lo
	for i < len(matched) || j < hi {
		var takeFloor bool
		switch {
		case i == len(matched):
			takeFloor = true
		case j == hi:
			takeFloor = false
		default:
			takeFloor = d.floorPres[j] < d.rng[matched[i]].pre
		}
		var n *dom.Node
		if takeFloor {
			n = d.floorNodes[j]
			j++
		} else {
			n = matched[i]
			i++
		}
		if n == scope && !orSelf {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == n {
			continue
		}
		out = append(out, n)
	}
	return out
}

// tokenTextNodes returns the text nodes whose characters token p draws
// from (one for ordinary tokens, several for split tokens).
func (d *Doc) tokenTextNodes(p int) []*dom.Node {
	if !d.fresh() {
		return nil
	}
	s, e := d.tokStart[p], d.tokEnd[p]
	// First text node covering offset s: the last entry with start <= s
	// and end > s (empty text nodes share starts with their successor).
	j := sort.Search(len(d.textStarts), func(k int) bool { return d.textStarts[k] > s }) - 1
	var out []*dom.Node
	for ; j >= 0 && j < len(d.textNodes); j++ {
		if d.textEnds[j] <= s {
			continue
		}
		if d.textStarts[j] >= e {
			break
		}
		if d.textEnds[j] > d.textStarts[j] { // skip empties
			out = append(out, d.textNodes[j])
		}
	}
	return out
}

// ancestorsInto adds the chain from tn up to scope (tn itself
// included, scope included only when orSelf) — but only when tn
// actually sits inside scope's subtree, which clips edge-token chains
// that start outside it.
func (d *Doc) ancestorsInto(set map[*dom.Node]struct{}, tn, scope *dom.Node, orSelf bool) {
	if !d.fresh() {
		return
	}
	var chain []*dom.Node
	cur := tn
	for cur != nil && cur != scope {
		chain = append(chain, cur)
		cur = cur.Parent()
	}
	if cur != scope {
		return
	}
	for _, n := range chain {
		if _, okN := d.rng[n]; okN {
			set[n] = struct{}{}
		}
	}
	if orSelf {
		set[scope] = struct{}{}
	}
}

// candSet evaluates the selection to a candidate node set. known is
// false when the set cannot be bounded (ftnot, or an unknown side of
// an ftor).
func (d *Doc) candSet(scope *dom.Node, r nodeRange, cl, ch int, orSelf bool, sel Sel) (map[*dom.Node]struct{}, bool) {
	if !d.fresh() {
		return nil, false
	}
	switch x := sel.(type) {
	case Words:
		if len(x.Phrases) == 0 {
			return map[*dom.Node]struct{}{}, true
		}
		if x.All {
			// Every phrase must match and each phrase needs all its
			// words: intersect over every word of every phrase.
			var acc map[*dom.Node]struct{}
			for _, p := range x.Phrases {
				words := fulltext.QueryWords(p, x.Opts)
				if len(words) == 0 {
					return map[*dom.Node]struct{}{}, true
				}
				for _, w := range words {
					s := d.wordCand(scope, cl, ch, orSelf, w, x.Opts)
					if acc == nil {
						acc = s
					} else {
						acc = intersectSets(acc, s)
					}
					if len(acc) == 0 {
						return acc, true
					}
				}
			}
			return acc, true
		}
		// Any mode: a node matching some phrase contains that phrase's
		// first word — union the first-word sets.
		acc := map[*dom.Node]struct{}{}
		for _, p := range x.Phrases {
			words := fulltext.QueryWords(p, x.Opts)
			if len(words) == 0 {
				continue
			}
			for n := range d.wordCand(scope, cl, ch, orSelf, words[0], x.Opts) {
				acc[n] = struct{}{}
			}
		}
		return acc, true
	case And:
		l, okL := d.candSet(scope, r, cl, ch, orSelf, x.L)
		rr, okR := d.candSet(scope, r, cl, ch, orSelf, x.R)
		switch {
		case okL && okR:
			return intersectSets(l, rr), true
		case okL:
			return l, true
		case okR:
			return rr, true
		default:
			return nil, false
		}
	case Or:
		l, okL := d.candSet(scope, r, cl, ch, orSelf, x.L)
		rr, okR := d.candSet(scope, r, cl, ch, orSelf, x.R)
		if !okL || !okR {
			return nil, false
		}
		for n := range rr {
			l[n] = struct{}{}
		}
		return l, true
	default: // Not
		return nil, false
	}
}

// wordCand returns the nodes whose subtree contains a token matching
// w, as ancestor chains of the matching positions. The split-token
// floor is not seeded here — Candidates unions it once over the final
// set, which is equivalent (see the proof sketch there) and cheaper.
func (d *Doc) wordCand(scope *dom.Node, cl, ch int, orSelf bool, w string, o fulltext.Options) map[*dom.Node]struct{} {
	if !d.fresh() {
		return nil
	}
	set := map[*dom.Node]struct{}{}
	d.eachWordPos(cl, ch, w, o, func(p int) bool {
		for _, tn := range d.tokenTextNodes(p) {
			d.ancestorsInto(set, tn, scope, orSelf)
		}
		return false
	})
	return set
}

func intersectSets(a, b map[*dom.Node]struct{}) map[*dom.Node]struct{} {
	if len(b) < len(a) {
		a, b = b, a
	}
	out := make(map[*dom.Node]struct{}, len(a))
	for n := range a {
		if _, okN := b[n]; okN {
			out[n] = struct{}{}
		}
	}
	return out
}

// Score computes node n's TF-IDF score for the query terms from the
// index: window term frequencies (or a local re-tokenization when the
// window has clipped edges) against document-wide posting counts —
// the same quantities, in the same order, as the scan side's
// ScoreTokens. ok is false when the index cannot answer for this node
// at all (stale, or unindexed node kind).
func (d *Doc) Score(n *dom.Node, terms []Term) (float64, bool) {
	if !d.fresh() {
		return 0, false
	}
	r, okR := d.rng[n]
	if !okR {
		return 0, false
	}
	lo, hi, dirty := d.window(r)
	var localToks []string
	if dirty {
		localToks = fulltext.Tokenize(d.text[r.start:r.end])
	}
	total := len(d.tokStart)
	score := 0.0
	for _, t := range terms {
		tf := 0
		if dirty {
			m := fulltext.WordMatcher(t.Word, t.Opts)
			for _, tok := range localToks {
				if m(tok) {
					tf++
				}
			}
		} else {
			d.eachWordPos(lo, hi, t.Word, t.Opts, func(int) bool { tf++; return false })
		}
		if tf == 0 {
			continue
		}
		idf := math.Log(1 + float64(total)/float64(1+d.docCount(t)))
		score += float64(tf) * idf
	}
	hits.Add(1)
	return score, true
}

// docCount returns a term's document-wide occurrence count (cf in the
// scoring formula). Callers hold the freshness check guarding the
// postings.
func (d *Doc) docCount(t Term) int {
	n := 0
	d.eachWordPos(0, len(d.tokStart), t.Word, t.Opts, func(int) bool { n++; return false })
	return n
}
