package index

import (
	"fmt"
	"hash/fnv"

	"repro/internal/dom"
)

// Serialized is the persistent form of a Doc: just the token spans and
// the Porter stems, plus a hash of the text stream they were computed
// over. Postings, vocabulary and trigram maps are cheap derivations
// (buildTables() rebuilds them in one pass) and gob-decoding a map performs
// the same inserts anyway, so persisting them would save nothing;
// stemming is the expensive part of a build and is what the sidecar
// amortises. Node tables are pointers and never serialize — Attach
// re-walks the tree and verifies the text stream hash, so a sidecar
// that no longer matches its document is simply ignored.
type Serialized struct {
	TextHash uint64 // FNV-1a of the document text stream
	TextLen  int
	TokStart []int32
	TokEnd   []int32
	Stem     []string
	Split    []int32
}

// Serialize captures a fresh index's persistent form, or ok=false when
// the index went stale (the caller skips persisting it).
func (d *Doc) Serialize() (*Serialized, bool) {
	if !d.fresh() {
		return nil, false
	}
	return &Serialized{
		TextHash: textHash(d.text),
		TextLen:  len(d.text),
		TokStart: d.tokStart,
		TokEnd:   d.tokEnd,
		Stem:     d.stem,
		Split:    d.split,
	}, true
}

// Attach rebuilds a full index for root from its persisted form,
// skipping tokenization and stemming, and publishes it in the root's
// cache slot. The tree walk recollects the text stream and node
// ranges; the stream must hash to the persisted value and the spans
// must be well-formed, otherwise Attach reports an error and the tree
// just builds lazily on first probe as if nothing were persisted.
func Attach(root *dom.Node, s *Serialized) error {
	d := &Doc{
		root:    root,
		version: root.Version(),
		rng:     map[*dom.Node]nodeRange{},
	}
	buildTree(d, root)
	if len(d.text) != s.TextLen || textHash(d.text) != s.TextHash {
		return fmt.Errorf("ftindex: persisted index does not match document text")
	}
	if err := s.validate(); err != nil {
		return err
	}
	d.tokStart = s.TokStart
	d.tokEnd = s.TokEnd
	d.split = s.Split
	// buildTables() keeps a stem array already sized to the token table and
	// only stems entries still empty — handing it the persisted stems
	// skips the expensive part of the build.
	d.stem = s.Stem
	d.buildTables()
	loads.Add(1)
	root.StoreFTIndexCache(d)
	return nil
}

// validate checks the structural invariants Attach relies on: spans
// in-bounds, strictly ordered, non-empty, no persisted stem empty (an
// empty entry would make buildTables() re-stem, silently masking a
// corrupted sidecar), and split positions valid token indexes.
func (s *Serialized) validate() error {
	n := len(s.TokStart)
	if len(s.TokEnd) != n || len(s.Stem) != n {
		return fmt.Errorf("ftindex: persisted table lengths disagree")
	}
	prev := int32(0)
	for i := 0; i < n; i++ {
		st, en := s.TokStart[i], s.TokEnd[i]
		if st < prev || en <= st || int(en) > s.TextLen {
			return fmt.Errorf("ftindex: persisted token span %d out of order or out of bounds", i)
		}
		if s.Stem[i] == "" {
			return fmt.Errorf("ftindex: persisted stem %d empty", i)
		}
		prev = st
	}
	prevSplit := int32(-1)
	for _, p := range s.Split {
		if p <= prevSplit || int(p) >= n {
			return fmt.Errorf("ftindex: persisted split position %d invalid", p)
		}
		prevSplit = p
	}
	return nil
}

// buildTree is the tree walk both build and Attach share: it fills
// text, the node ranges and the text-node tables. Only text and
// element children contribute to the string value
// (dom.Node.appendText); comments and PIs are neither indexed nor
// ranged.
func buildTree(d *Doc, root *dom.Node) {
	var buf []byte
	var pre uint64
	var visit func(n *dom.Node)
	visit = func(n *dom.Node) {
		pre++
		my := pre
		start := int32(len(buf))
		switch n.Type {
		case dom.TextNode:
			d.textNodes = append(d.textNodes, n)
			d.textStarts = append(d.textStarts, start)
			buf = append(buf, n.Data...)
			d.textEnds = append(d.textEnds, int32(len(buf)))
		case dom.DocumentNode, dom.ElementNode:
			for _, c := range n.Children() {
				if c.Type == dom.TextNode || c.Type == dom.ElementNode {
					visit(c)
				}
			}
		default:
			return
		}
		d.rng[n] = nodeRange{pre: my, preEnd: pre, start: start, end: int32(len(buf))}
	}
	visit(root)
	d.text = string(buf)
}

// textHash is FNV-1a over the text stream — fast, stable across
// processes, and collision-resistant enough for a "did the document
// change since checkpoint" guard (a miss only costs a lazy rebuild).
func textHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
