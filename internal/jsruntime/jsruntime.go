// Package jsruntime is the JavaScript-style baseline: it exposes the
// browser's imperative DOM scripting surface — document.getElementById,
// createElement, appendChild, addEventListener, document.evaluate with
// an XPath expression (paper §2.2) — over the same live DOM the XQuery
// engine manipulates.
//
// Substitution note (see DESIGN.md): the paper's co-resident language is
// JavaScript executed by the browser's native engine. Here "JavaScript"
// programs are Go closures written against this API. Because compiled Go
// has no interpreter overhead, every performance comparison against the
// XQuery engine is biased *in favour* of this baseline; where XQuery
// stays within a small factor (or wins on code volume), the paper's
// claims are supported a fortiori.
package jsruntime

import (
	"fmt"
	"strings"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// Document wraps a page DOM with the JavaScript document API.
type Document struct {
	root   *dom.Node
	engine *xquery.Engine
}

// NewDocument wraps an existing page.
func NewDocument(page *dom.Node) *Document {
	return &Document{root: page, engine: xquery.New()}
}

// Root returns the underlying document node.
func (d *Document) Root() *dom.Node { return d.root }

// Element wraps a DOM node with element-style methods.
type Element struct {
	n *dom.Node
	d *Document
}

// Node returns the wrapped DOM node.
func (e *Element) Node() *dom.Node { return e.n }

// GetElementById mirrors document.getElementById.
func (d *Document) GetElementById(id string) *Element {
	n := d.root.ElementByID(id)
	if n == nil {
		return nil
	}
	return &Element{n: n, d: d}
}

// GetElementsByTagName mirrors document.getElementsByTagName.
func (d *Document) GetElementsByTagName(tag string) []*Element {
	nodes := d.root.Elements(tag)
	out := make([]*Element, len(nodes))
	for i, n := range nodes {
		out[i] = &Element{n: n, d: d}
	}
	return out
}

// CreateElement mirrors document.createElement.
func (d *Document) CreateElement(tag string) *Element {
	return &Element{n: dom.NewElement(dom.Name(tag)), d: d}
}

// CreateTextNode mirrors document.createTextNode.
func (d *Document) CreateTextNode(text string) *Element {
	return &Element{n: dom.NewText(text), d: d}
}

// Body returns the page's body element.
func (d *Document) Body() *Element {
	if els := d.root.Elements("body"); len(els) > 0 {
		return &Element{n: els[0], d: d}
	}
	return nil
}

// XPathResult mirrors the DOM XPathResult snapshot types.
type XPathResult struct {
	items []*Element
}

// SnapshotLength mirrors XPathResult.snapshotLength.
func (r *XPathResult) SnapshotLength() int { return len(r.items) }

// SnapshotItem mirrors XPathResult.snapshotItem.
func (r *XPathResult) SnapshotItem(i int) *Element {
	if i < 0 || i >= len(r.items) {
		return nil
	}
	return r.items[i]
}

// Evaluate mirrors document.evaluate(xpath, document, null,
// UNORDERED_NODE_SNAPSHOT_TYPE, null): it runs an XPath expression
// against the document and snapshots the node results (§2.2's embedded
// XPath in JavaScript).
func (d *Document) Evaluate(xpath string) (*XPathResult, error) {
	seq, err := d.engine.EvalQuery(xpath, d.root)
	if err != nil {
		return nil, fmt.Errorf("jsruntime: evaluate %q: %w", xpath, err)
	}
	res := &XPathResult{}
	for _, it := range seq {
		if n, ok := xdm.IsNode(it); ok {
			res.items = append(res.items, &Element{n: n, d: d})
		}
	}
	return res, nil
}

// --- element methods --------------------------------------------------------

// AppendChild mirrors node.appendChild.
func (e *Element) AppendChild(c *Element) *Element {
	_ = e.n.AppendChild(c.n)
	return c
}

// InsertBefore mirrors node.insertBefore(new, ref). A nil ref appends.
func (e *Element) InsertBefore(c, ref *Element) *Element {
	if ref == nil {
		_ = e.n.AppendChild(c.n)
		return c
	}
	_ = e.n.InsertBefore(c.n, ref.n)
	return c
}

// RemoveChild mirrors node.removeChild.
func (e *Element) RemoveChild(c *Element) {
	if c.n.Parent() == e.n {
		c.n.Detach()
	}
}

// ParentNode mirrors node.parentNode.
func (e *Element) ParentNode() *Element {
	p := e.n.Parent()
	if p == nil {
		return nil
	}
	return &Element{n: p, d: e.d}
}

// FirstChild mirrors node.firstChild.
func (e *Element) FirstChild() *Element {
	c := e.n.FirstChild()
	if c == nil {
		return nil
	}
	return &Element{n: c, d: e.d}
}

// ChildNodes mirrors node.childNodes.
func (e *Element) ChildNodes() []*Element {
	kids := e.n.Children()
	out := make([]*Element, len(kids))
	for i, k := range kids {
		out[i] = &Element{n: k, d: e.d}
	}
	return out
}

// SetAttribute mirrors element.setAttribute.
func (e *Element) SetAttribute(name, value string) {
	e.n.SetAttr(dom.Name(name), value)
}

// GetAttribute mirrors element.getAttribute ("" when absent).
func (e *Element) GetAttribute(name string) string {
	return e.n.AttrValue(name)
}

// TagName mirrors element.tagName.
func (e *Element) TagName() string { return e.n.Name.Local }

// TextContent mirrors node.textContent.
func (e *Element) TextContent() string { return e.n.StringValue() }

// SetTextContent mirrors assigning node.textContent.
func (e *Element) SetTextContent(s string) { e.n.ReplaceElementContent(s) }

// SetInnerHTML mirrors assigning element.innerHTML: the string is parsed
// as markup and replaces the children.
func (e *Element) SetInnerHTML(html string) error {
	nodes, err := markup.ParseFragmentHTML(html)
	if err != nil {
		return err
	}
	e.n.RemoveChildren()
	for _, n := range nodes {
		if err := e.n.AppendChild(n); err != nil {
			return err
		}
	}
	return nil
}

// StyleGet mirrors element.style.<prop> reads.
func (e *Element) StyleGet(prop string) string {
	v, _ := styleGet(e.n, prop)
	return v
}

// StyleSet mirrors element.style.<prop> writes.
func (e *Element) StyleSet(prop, value string) { styleSet(e.n, prop, value) }

// AddEventListener mirrors element.addEventListener(type, fn, capture).
func (e *Element) AddEventListener(typ string, fn func(*dom.Event)) {
	e.n.AddEventListener(typ, false, nil, fn)
}

// DispatchEvent mirrors element.dispatchEvent.
func (e *Element) DispatchEvent(ev *dom.Event) bool { return e.n.DispatchEvent(ev) }

// --- small local helpers ------------------------------------------------------

// styleGet/styleSet duplicate the tiny style-attribute logic rather than
// importing internal/browser: the baseline's imports mirror what a JS
// engine can reach (the DOM, the HTML parser, and — for
// document.evaluate — the XPath engine).
func styleGet(n *dom.Node, prop string) (string, bool) {
	for _, part := range strings.Split(n.AttrValue("style"), ";") {
		kv := strings.SplitN(part, ":", 2)
		if len(kv) == 2 && strings.EqualFold(strings.TrimSpace(kv[0]), prop) {
			return strings.TrimSpace(kv[1]), true
		}
	}
	return "", false
}

func styleSet(n *dom.Node, prop, value string) {
	var parts []string
	found := false
	for _, part := range strings.Split(n.AttrValue("style"), ";") {
		kv := strings.SplitN(part, ":", 2)
		if len(kv) != 2 {
			continue
		}
		k := strings.TrimSpace(kv[0])
		if strings.EqualFold(k, prop) {
			parts = append(parts, k+": "+value)
			found = true
		} else {
			parts = append(parts, k+": "+strings.TrimSpace(kv[1]))
		}
	}
	if !found {
		parts = append(parts, prop+": "+value)
	}
	n.SetAttr(dom.Name("style"), strings.Join(parts, "; "))
}
