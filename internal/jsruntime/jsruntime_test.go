package jsruntime

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/markup"
)

func newDoc(t *testing.T, src string) *Document {
	t.Helper()
	page, err := markup.ParseHTML(src)
	if err != nil {
		t.Fatal(err)
	}
	return NewDocument(page)
}

func TestGetElementById(t *testing.T) {
	d := newDoc(t, `<html><body><div id="x">hi</div></body></html>`)
	el := d.GetElementById("x")
	if el == nil || el.TextContent() != "hi" {
		t.Fatal("GetElementById failed")
	}
	if d.GetElementById("nope") != nil {
		t.Error("missing id should be nil")
	}
}

func TestCreateAppendRemove(t *testing.T) {
	d := newDoc(t, `<html><body/></html>`)
	body := d.Body()
	p := d.CreateElement("p")
	p.AppendChild(d.CreateTextNode("hello"))
	body.AppendChild(p)
	if got := markup.SerializeHTML(body.Node()); !strings.Contains(got, "<p>hello</p>") {
		t.Errorf("append: %s", got)
	}
	body.RemoveChild(p)
	if len(body.ChildNodes()) != 0 {
		t.Error("remove failed")
	}
}

func TestInsertBefore(t *testing.T) {
	d := newDoc(t, `<html><body><p id="first"/></body></html>`)
	body := d.Body()
	img := d.CreateElement("img")
	img.SetAttribute("src", "heart.gif")
	// The paper's §2.2 idiom: insertBefore(newElement, body.firstChild).
	body.InsertBefore(img, body.FirstChild())
	first := body.FirstChild()
	if first.TagName() != "img" || first.GetAttribute("src") != "heart.gif" {
		t.Errorf("insertBefore failed: %s", markup.SerializeHTML(body.Node()))
	}
	// nil ref appends.
	body.InsertBefore(d.CreateElement("div"), nil)
	kids := body.ChildNodes()
	if kids[len(kids)-1].TagName() != "div" {
		t.Error("nil-ref insertBefore should append")
	}
}

func TestEvaluateXPathSnapshot(t *testing.T) {
	// The §2.2 example: find all divs containing the word "love".
	d := newDoc(t, `<html><body>
		<div>all you need is love</div>
		<div>nothing here</div>
		<div>love again</div>
	</body></html>`)
	res, err := d.Evaluate(`//div[contains(., 'love')]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotLength() != 2 {
		t.Fatalf("snapshotLength = %d", res.SnapshotLength())
	}
	if res.SnapshotItem(0).TagName() != "div" {
		t.Error("snapshotItem wrong")
	}
	if res.SnapshotItem(99) != nil || res.SnapshotItem(-1) != nil {
		t.Error("out-of-range snapshotItem must be nil")
	}
	if _, err := d.Evaluate(`//[bad syntax`); err == nil {
		t.Error("bad XPath must error")
	}
}

func TestPaperHeartExample(t *testing.T) {
	// Full §2.2 JavaScript program, transliterated to the baseline API.
	d := newDoc(t, `<html><body><div>love</div></body></html>`)
	allDivs, err := d.Evaluate(`//div[contains(., 'love')]`)
	if err != nil {
		t.Fatal(err)
	}
	if allDivs.SnapshotLength() > 0 {
		newElement := d.CreateElement("img")
		newElement.SetAttribute("src", "http://example.com/heart.gif")
		body := d.Body()
		body.InsertBefore(newElement, body.FirstChild())
	}
	out := markup.SerializeHTML(d.Root())
	if !strings.Contains(out, "heart.gif") {
		t.Errorf("heart not inserted: %s", out)
	}
}

func TestEventListeners(t *testing.T) {
	d := newDoc(t, `<html><body><input id="btn"/></body></html>`)
	btn := d.GetElementById("btn")
	clicks := 0
	btn.AddEventListener("click", func(e *dom.Event) { clicks++ })
	btn.DispatchEvent(&dom.Event{Type: "click"})
	btn.DispatchEvent(&dom.Event{Type: "click"})
	if clicks != 2 {
		t.Errorf("clicks = %d", clicks)
	}
}

func TestInnerHTMLAndText(t *testing.T) {
	d := newDoc(t, `<html><body><div id="x">old</div></body></html>`)
	el := d.GetElementById("x")
	if err := el.SetInnerHTML(`<b>new</b> text<br>`); err != nil {
		t.Fatal(err)
	}
	out := markup.SerializeHTML(el.Node())
	if !strings.Contains(out, "<b>new</b> text<br/>") {
		t.Errorf("innerHTML: %s", out)
	}
	el.SetTextContent("plain")
	if el.TextContent() != "plain" {
		t.Error("textContent failed")
	}
}

func TestStyleAccess(t *testing.T) {
	d := newDoc(t, `<html><body><div id="x" style="color: red"/></body></html>`)
	el := d.GetElementById("x")
	if el.StyleGet("color") != "red" {
		t.Error("style read failed")
	}
	el.StyleSet("width", "10px")
	el.StyleSet("color", "blue")
	if el.StyleGet("color") != "blue" || el.StyleGet("width") != "10px" {
		t.Errorf("style = %q", el.GetAttribute("style"))
	}
}

func TestGetElementsByTagName(t *testing.T) {
	d := newDoc(t, `<html><body><p/><p/><div><p/></div></body></html>`)
	if got := len(d.GetElementsByTagName("p")); got != 3 {
		t.Errorf("p count = %d", got)
	}
	if got := len(d.GetElementsByTagName("*")); got < 5 {
		t.Errorf("* count = %d", got)
	}
}

func TestParentNode(t *testing.T) {
	d := newDoc(t, `<html><body><div id="x"/></body></html>`)
	el := d.GetElementById("x")
	if el.ParentNode().TagName() != "body" {
		t.Error("parentNode failed")
	}
}
