package markup

import "testing"

// FuzzParse: the XML parser must error or produce a tree — never panic.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		`<a/>`,
		`<a x="1">&lt;<b/>t</a>`,
		`<?xml version="1.0"?><!DOCTYPE a><a><![CDATA[x]]></a>`,
		`<a xmlns="u" xmlns:p="v"><p:b p:c="d"/></a>`,
		`<a>&#x41;&#66;</a>`,
		`<a`,
		`&bogus;`,
		``,
		`<r><d id="d0">x</d><d id="d1">y</d><d id="d2">z</d></r>`,
		`<a><b><c><d><e><f>deep</f></e></d></c></b></a>`,
		`<a x="&quot;&amp;&apos;" y=''/>`,
		`<p:a xmlns:p="u"><p:a><p:a/></p:a></p:a>`,
		`<a><?target data?><!--c--><![CDATA[]]></a>`,
		`<a>]]></a>`,
		`<a x="1" x="2"/>`,
		`<a xmlns:p="u"/><b/>`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		if doc, err := Parse(src); err == nil {
			// A successful parse must serialize and re-parse.
			out := Serialize(doc)
			if _, err := Parse(out); err != nil {
				t.Fatalf("serialize output does not re-parse: %q -> %q: %v", src, out, err)
			}
		}
	})
}

// FuzzParseHTML: the lenient parser accepts nearly anything; it must
// never panic and its output must always serialize.
func FuzzParseHTML(f *testing.F) {
	for _, s := range []string{
		`<html><body><div id=x>love</div><br><script>1<2</script></body></html>`,
		`<P>upper</p>`,
		`<a><b></a>stray</b>`,
		`text only`,
		`<input type=button value=Buy>`,
		`<table><tr><td>1<td>2<tr><td>3</table>`,
		`<div id="log"/><div id=log2 class='c d'>&nbsp;</div>`,
		`<!DOCTYPE html><html><head><title>t</head><body onload=go()>`,
		`<ul><li>a<li>b</ul><select><option>x<option selected>y</select>`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		if doc, err := ParseHTML(src); err == nil {
			_ = SerializeHTML(doc)
		}
	})
}
