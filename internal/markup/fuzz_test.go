package markup

import "testing"

// FuzzParse: the XML parser must error or produce a tree — never panic.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		`<a/>`,
		`<a x="1">&lt;<b/>t</a>`,
		`<?xml version="1.0"?><!DOCTYPE a><a><![CDATA[x]]></a>`,
		`<a xmlns="u" xmlns:p="v"><p:b p:c="d"/></a>`,
		`<a>&#x41;&#66;</a>`,
		`<a`,
		`&bogus;`,
		``,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		if doc, err := Parse(src); err == nil {
			// A successful parse must serialize and re-parse.
			out := Serialize(doc)
			if _, err := Parse(out); err != nil {
				t.Fatalf("serialize output does not re-parse: %q -> %q: %v", src, out, err)
			}
		}
	})
}

// FuzzParseHTML: the lenient parser accepts nearly anything; it must
// never panic and its output must always serialize.
func FuzzParseHTML(f *testing.F) {
	for _, s := range []string{
		`<html><body><div id=x>love</div><br><script>1<2</script></body></html>`,
		`<P>upper</p>`,
		`<a><b></a>stray</b>`,
		`text only`,
		`<input type=button value=Buy>`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		if doc, err := ParseHTML(src); err == nil {
			_ = SerializeHTML(doc)
		}
	})
}
