package markup

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dom"
)

func mustParse(t *testing.T, src string) *dom.Node {
	t.Helper()
	doc, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return doc
}

func mustParseHTML(t *testing.T, src string) *dom.Node {
	t.Helper()
	doc, err := ParseHTML(src)
	if err != nil {
		t.Fatalf("ParseHTML(%q): %v", src, err)
	}
	return doc
}

func TestParseSimple(t *testing.T) {
	doc := mustParse(t, `<a x="1"><b>hi</b><c/></a>`)
	root := doc.DocumentElement()
	if root.Name.Local != "a" || root.AttrValue("x") != "1" {
		t.Fatalf("root = %s", Serialize(root))
	}
	if len(root.Children()) != 2 {
		t.Fatalf("children = %d", len(root.Children()))
	}
	if root.Children()[0].StringValue() != "hi" {
		t.Error("text content lost")
	}
}

func TestParseEntities(t *testing.T) {
	doc := mustParse(t, `<a>&lt;x&gt; &amp; &quot;&apos; &#65;&#x42;</a>`)
	got := doc.StringValue()
	want := `<x> & "' AB`
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestParseCDATA(t *testing.T) {
	doc := mustParse(t, `<a><![CDATA[<not><markup> & stuff]]></a>`)
	if got := doc.StringValue(); got != "<not><markup> & stuff" {
		t.Errorf("CDATA content = %q", got)
	}
}

func TestParseCommentAndPI(t *testing.T) {
	doc := mustParse(t, `<?xml version="1.0"?><a><!--note--><?target data?></a>`)
	kids := doc.DocumentElement().Children()
	if len(kids) != 2 {
		t.Fatalf("kids = %d", len(kids))
	}
	if kids[0].Type != dom.CommentNode || kids[0].Data != "note" {
		t.Error("comment wrong")
	}
	if kids[1].Type != dom.ProcessingInstructionNode || kids[1].Name.Local != "target" || kids[1].Data != "data" {
		t.Errorf("pi wrong: %v %q", kids[1].Name, kids[1].Data)
	}
}

func TestParseNamespaces(t *testing.T) {
	doc := mustParse(t, `<a xmlns="urn:d" xmlns:p="urn:p"><p:b q="1" p:r="2"/></a>`)
	root := doc.DocumentElement()
	if root.Name.Space != "urn:d" {
		t.Errorf("default ns = %q", root.Name.Space)
	}
	b := root.Children()[0]
	if b.Name.Space != "urn:p" || b.Name.Local != "b" {
		t.Errorf("b name = %+v", b.Name)
	}
	// Unprefixed attributes are in no namespace.
	if v, ok := b.Attr(dom.Name("q")); !ok || v != "1" {
		t.Error("unprefixed attribute lookup failed")
	}
	if v, ok := b.Attr(dom.NameNS("urn:p", "r")); !ok || v != "2" {
		t.Error("prefixed attribute lookup failed")
	}
}

func TestParsePrefixedEndTags(t *testing.T) {
	doc := mustParse(t, `<a xmlns:p="urn:p"><p:b>x</p:b></a>`)
	b := doc.Elements("b")[0]
	if b.Name.Space != "urn:p" || b.StringValue() != "x" {
		t.Errorf("prefixed element: %+v", b.Name)
	}
	// Prefix mismatch between open and close is an error.
	if _, err := Parse(`<a xmlns:p="urn:p" xmlns:q="urn:p"><p:b></q:b></a>`); err == nil {
		t.Error("lexically mismatched end tag should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,                    // no root
		`<a>`,                 // unclosed
		`<a></b>`,             // mismatch
		`<a><b attr></b></a>`, // valueless attribute
		`<a>&unknown;</a>`,    // unknown entity
		`<a><![CDATA[x</a>`,   // unterminated CDATA
		`<a/><b/>`,            // two roots... actually allowed? no: text/elements after root
		`text<a/>`,            // text before root
		`<a x="1 <b></b></a>`, // unterminated attribute
		`<a><!--never closed </a>`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse("<a>\n<b>\n</a>")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line < 2 {
		t.Errorf("line = %d, want >= 2", pe.Line)
	}
}

func TestParseHTMLLowercasesTags(t *testing.T) {
	doc := mustParseHTML(t, `<HTML><BODY CLASS="x"><DIV>hi</DIV></BODY></HTML>`)
	html := doc.DocumentElement()
	if html.Name.Local != "html" {
		t.Errorf("root = %q", html.Name.Local)
	}
	body := html.Children()[0]
	if body.Name.Local != "body" || body.AttrValue("class") != "x" {
		t.Errorf("body = %s", Serialize(body))
	}
}

func TestParseHTMLVoidElements(t *testing.T) {
	doc := mustParseHTML(t, `<body><br><img src="a.gif"><p>x</p></body>`)
	body := doc.DocumentElement()
	if len(body.Children()) != 3 {
		t.Fatalf("children = %d: %s", len(body.Children()), Serialize(body))
	}
	if body.Children()[1].AttrValue("src") != "a.gif" {
		t.Error("void element attributes lost")
	}
}

func TestParseHTMLScriptRawText(t *testing.T) {
	src := `<html><head><script type="text/xquery">for $x in //a where 1 < 2 return <b/></script></head></html>`
	doc := mustParseHTML(t, src)
	script := doc.Elements("script")[0]
	if got := script.StringValue(); !strings.Contains(got, "1 < 2") || !strings.Contains(got, "<b/>") {
		t.Errorf("script content mangled: %q", got)
	}
}

func TestParseHTMLScriptCDATAUnwrap(t *testing.T) {
	src := `<html><script type="text/xquery"><![CDATA[1 < 2]]></script></html>`
	doc := mustParseHTML(t, src)
	script := doc.Elements("script")[0]
	if got := strings.TrimSpace(script.StringValue()); got != "1 < 2" {
		t.Errorf("CDATA unwrap: %q", got)
	}
}

func TestParseHTMLUnquotedAttr(t *testing.T) {
	doc := mustParseHTML(t, `<input type=button value=Buy>`)
	in := doc.DocumentElement()
	if in.AttrValue("type") != "button" || in.AttrValue("value") != "Buy" {
		t.Errorf("unquoted attrs: %s", Serialize(in))
	}
}

func TestParseHTMLImpliedClose(t *testing.T) {
	// <p> left open; </div> implies closing it.
	doc := mustParseHTML(t, `<div><p>one</div>`)
	div := doc.DocumentElement()
	if div.Name.Local != "div" {
		t.Fatalf("root = %q", div.Name.Local)
	}
	if div.StringValue() != "one" {
		t.Errorf("content = %q", div.StringValue())
	}
}

func TestParseHTMLStrayEndTagIgnored(t *testing.T) {
	doc := mustParseHTML(t, `<div>a</span>b</div>`)
	if got := doc.StringValue(); got != "ab" {
		t.Errorf("content = %q", got)
	}
}

func TestParseFragment(t *testing.T) {
	nodes, err := ParseFragment(`<a/>text<b x="1"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	if nodes[0].Name.Local != "a" || nodes[1].Data != "text" || nodes[2].AttrValue("x") != "1" {
		t.Error("fragment content wrong")
	}
	for _, n := range nodes {
		if n.Parent() != nil {
			t.Error("fragment nodes must be detached")
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	cases := []string{
		`<a x="1"><b>hi</b><c/></a>`,
		`<a>&lt;tag&gt; &amp; text</a>`,
		`<a><!--c--><?pi data?></a>`,
		`<a xmlns:p="urn:p"><p:b/></a>`,
	}
	for _, src := range cases {
		doc := mustParse(t, src)
		out := Serialize(doc)
		doc2 := mustParse(t, out)
		if Serialize(doc2) != out {
			t.Errorf("round trip unstable:\n1: %s\n2: %s", out, Serialize(doc2))
		}
	}
}

func TestSerializeHTMLVoidAndScript(t *testing.T) {
	doc := mustParseHTML(t, `<body><br><script>if (a < b) x();</script></body>`)
	out := SerializeHTML(doc)
	if !strings.Contains(out, "<br/>") {
		t.Errorf("void serialization: %s", out)
	}
	if !strings.Contains(out, "if (a < b) x();") {
		t.Errorf("script must be raw: %s", out)
	}
}

func TestSerializeEscaping(t *testing.T) {
	e := dom.NewElement(dom.Name("a"))
	e.SetAttr(dom.Name("t"), `x"<&`)
	_ = e.AppendChild(dom.NewText(`<&>`))
	out := Serialize(e)
	want := `<a t="x&quot;&lt;&amp;">&lt;&amp;&gt;</a>`
	if out != want {
		t.Errorf("got %s, want %s", out, want)
	}
}

func TestSerializeIndent(t *testing.T) {
	doc := mustParse(t, `<a><b><c/></b><d>text</d></a>`)
	out := SerializeIndent(doc)
	if !strings.Contains(out, "\n  <b>\n    <c/>\n") {
		t.Errorf("indentation wrong:\n%s", out)
	}
	if !strings.Contains(out, "<d>text</d>") {
		t.Errorf("mixed content must stay inline:\n%s", out)
	}
}

// randomXMLTree builds a random element tree for round-trip properties.
func randomXMLTree(r *rand.Rand, depth int) *dom.Node {
	names := []string{"a", "b", "c", "item", "p"}
	e := dom.NewElement(dom.Name(names[r.Intn(len(names))]))
	if r.Intn(2) == 0 {
		e.SetAttr(dom.Name("k"), `v"<&`)
	}
	n := r.Intn(4)
	for i := 0; i < n; i++ {
		switch {
		case depth > 0 && r.Intn(2) == 0:
			_ = e.AppendChild(randomXMLTree(r, depth-1))
		case r.Intn(2) == 0:
			_ = e.AppendChild(dom.NewText("t<&x "))
		default:
			_ = e.AppendChild(dom.NewComment("note"))
		}
	}
	return e
}

// Property: Serialize then Parse yields a tree that serializes
// identically (parse ∘ serialize is a fixpoint after one iteration).
func TestSerializeParseFixpointProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root := randomXMLTree(r, 3)
		s1 := Serialize(root)
		doc, err := Parse(s1)
		if err != nil {
			return false
		}
		return Serialize(doc) == s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: escaping never leaves raw markup characters unescaped in
// text output.
func TestEscapeTextProperty(t *testing.T) {
	f := func(s string) bool {
		out := EscapeText(s)
		return !strings.ContainsAny(strings.NewReplacer(
			"&amp;", "", "&lt;", "", "&gt;", "").Replace(out), "<>")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
