// Package markup parses and serializes XML and (leniently) HTML into
// the dom package's trees. It is the browser's page parser of Figure 1
// ("the browser receives an XHTML document and parses it; it generates
// the DOM") and the engine's fn:doc / constructor serializer.
//
// HTML mode is deliberately forgiving: tag names are lower-cased (the
// inverse of the Internet Explorer upper-casing issue discussed in
// paper §5.1 — we normalise down so XPath is written in lower case),
// void elements need no end tag, unquoted attribute values are
// accepted, and <script>/<style> content is raw text so embedded XQuery
// or JavaScript is never mistaken for markup.
package markup

import (
	"fmt"
	"strings"

	"repro/internal/dom"
)

// XMLNamespace is the reserved namespace URI of the xml: prefix.
const XMLNamespace = "http://www.w3.org/XML/1998/namespace"

// XMLNSNamespace is the reserved namespace URI of xmlns declarations.
const XMLNSNamespace = "http://www.w3.org/2000/xmlns/"

// voidElements are HTML elements that never have content.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements have character-data content that must not be parsed
// as markup in HTML mode.
var rawTextElements = map[string]bool{"script": true, "style": true}

// Mode selects the parsing dialect.
type Mode int

// Parsing dialects.
const (
	XML Mode = iota
	HTML
)

// ParseError reports a syntax error with byte offset and line number.
type ParseError struct {
	Offset int
	Line   int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("markup: line %d: %s", e.Line, e.Msg)
}

// Parse parses src as strict XML and returns its document node.
func Parse(src string) (*dom.Node, error) { return parse(src, XML) }

// ParseHTML parses src as lenient HTML/XHTML.
func ParseHTML(src string) (*dom.Node, error) { return parse(src, HTML) }

// ParseFragment parses src as XML content (possibly multiple roots and
// text) and returns the parsed nodes, detached.
func ParseFragment(src string) ([]*dom.Node, error) { return parseFrag(src, XML) }

// ParseFragmentHTML parses src leniently as HTML content (innerHTML
// semantics) and returns the parsed nodes, detached.
func ParseFragmentHTML(src string) ([]*dom.Node, error) { return parseFrag(src, HTML) }

func parseFrag(src string, mode Mode) ([]*dom.Node, error) {
	doc, err := parse("<frag>"+src+"</frag>", mode)
	if err != nil {
		return nil, err
	}
	wrapper := doc.DocumentElement()
	kids := append([]*dom.Node(nil), wrapper.Children()...)
	for _, k := range kids {
		k.Detach()
	}
	return kids, nil
}

type parser struct {
	src  string
	pos  int
	mode Mode
	// namespace scopes: stack of prefix->URI maps
	nsStack []map[string]string
}

func parse(src string, mode Mode) (*dom.Node, error) {
	p := &parser{src: src, mode: mode,
		nsStack: []map[string]string{{"xml": XMLNamespace}}}
	doc := dom.NewDocument()
	if err := p.parseContent(doc, ""); err != nil {
		return nil, err
	}
	if mode == XML {
		if doc.DocumentElement() == nil {
			return nil, p.errorf("no root element")
		}
		// Strict XML: exactly one root element, no text outside it
		// (whitespace ok).
		elements := 0
		for _, c := range doc.Children() {
			switch c.Type {
			case dom.ElementNode:
				elements++
			case dom.TextNode:
				if strings.TrimSpace(c.Data) != "" {
					return nil, p.errorf("text outside root element")
				}
			}
		}
		if elements > 1 {
			return nil, p.errorf("multiple root elements")
		}
	}
	// Drop pure-whitespace text at the document level.
	var drop []*dom.Node
	for _, c := range doc.Children() {
		if c.Type == dom.TextNode && strings.TrimSpace(c.Data) == "" {
			drop = append(drop, c)
		}
	}
	for _, c := range drop {
		c.Detach()
	}
	return doc, nil
}

func (p *parser) errorf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:min(p.pos, len(p.src))], "\n")
	return &ParseError{Offset: p.pos, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) hasPrefix(s string) bool { return strings.HasPrefix(p.src[p.pos:], s) }

func (p *parser) hasPrefixFold(s string) bool {
	if p.pos+len(s) > len(p.src) {
		return false
	}
	return strings.EqualFold(p.src[p.pos:p.pos+len(s)], s)
}

func (p *parser) skipSpace() {
	for !p.eof() {
		switch p.src[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (p *parser) readName() (string, error) {
	start := p.pos
	if p.eof() || !isNameStart(p.src[p.pos]) {
		return "", p.errorf("expected name")
	}
	for !p.eof() && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

// parseContent parses children into parent until the matching end tag of
// closeName (or EOF for the document level, closeName == "").
func (p *parser) parseContent(parent *dom.Node, closeName string) error {
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			_ = parent.AppendChild(dom.NewText(text.String()))
			text.Reset()
		}
	}
	for {
		if p.eof() {
			flush()
			if closeName == "" {
				return nil
			}
			if p.mode == HTML {
				return nil // implied close at EOF
			}
			return p.errorf("unexpected EOF: unclosed <%s>", closeName)
		}
		c := p.src[p.pos]
		if c != '<' {
			if c == '&' {
				r, err := p.readEntity()
				if err != nil {
					return err
				}
				text.WriteString(r)
				continue
			}
			text.WriteByte(c)
			p.pos++
			continue
		}
		// Markup.
		switch {
		case p.hasPrefix("<!--"):
			flush()
			if err := p.parseComment(parent); err != nil {
				return err
			}
		case p.hasPrefix("<![CDATA["):
			p.pos += len("<![CDATA[")
			end := strings.Index(p.src[p.pos:], "]]>")
			if end < 0 {
				return p.errorf("unterminated CDATA section")
			}
			text.WriteString(p.src[p.pos : p.pos+end])
			p.pos += end + 3
		case p.hasPrefix("<!"):
			// DOCTYPE or other declaration: skip to '>'.
			end := strings.IndexByte(p.src[p.pos:], '>')
			if end < 0 {
				return p.errorf("unterminated declaration")
			}
			p.pos += end + 1
		case p.hasPrefix("<?"):
			flush()
			if err := p.parsePI(parent); err != nil {
				return err
			}
		case p.hasPrefix("</"):
			flush()
			save := p.pos
			p.pos += 2
			name, err := p.readName()
			if err != nil {
				return err
			}
			p.skipSpace()
			if p.peek() != '>' {
				return p.errorf("malformed end tag </%s", name)
			}
			p.pos++
			if p.mode == HTML {
				name = strings.ToLower(name)
			}
			if name == closeName {
				return nil
			}
			if p.mode == HTML {
				// Mismatched end tag: if an ancestor matches, imply the
				// close of the current element by rewinding so the
				// ancestor's parseContent re-reads this end tag.
				if closeName != "" && p.openAncestorMatches(parent, name) {
					p.pos = save
					return nil
				}
				// Otherwise ignore the stray end tag.
				continue
			}
			return p.errorf("mismatched end tag </%s>, expected </%s>", name, closeName)
		default:
			flush()
			if err := p.parseElement(parent); err != nil {
				return err
			}
		}
	}
}

// openAncestorMatches reports whether parent or one of its ancestors is
// an element with the given (lower-cased) local name.
func (p *parser) openAncestorMatches(parent *dom.Node, name string) bool {
	for a := parent; a != nil; a = a.Parent() {
		if a.Type == dom.ElementNode && a.Name.Local == name {
			return true
		}
	}
	return false
}

func (p *parser) parseComment(parent *dom.Node) error {
	p.pos += len("<!--")
	end := strings.Index(p.src[p.pos:], "-->")
	if end < 0 {
		return p.errorf("unterminated comment")
	}
	_ = parent.AppendChild(dom.NewComment(p.src[p.pos : p.pos+end]))
	p.pos += end + 3
	return nil
}

func (p *parser) parsePI(parent *dom.Node) error {
	p.pos += 2
	target, err := p.readName()
	if err != nil {
		return err
	}
	end := strings.Index(p.src[p.pos:], "?>")
	if end < 0 {
		return p.errorf("unterminated processing instruction")
	}
	data := strings.TrimLeft(p.src[p.pos:p.pos+end], " \t\r\n")
	p.pos += end + 2
	if strings.EqualFold(target, "xml") {
		return nil // XML declaration: ignore
	}
	_ = parent.AppendChild(dom.NewPI(target, data))
	return nil
}

func (p *parser) parseElement(parent *dom.Node) error {
	p.pos++ // '<'
	rawName, err := p.readName()
	if err != nil {
		return err
	}
	if p.mode == HTML {
		rawName = strings.ToLower(rawName)
	}

	type attr struct {
		name  string
		value string
	}
	var attrs []attr
	selfClose := false
	for {
		p.skipSpace()
		if p.eof() {
			return p.errorf("unterminated start tag <%s", rawName)
		}
		if p.hasPrefix("/>") {
			p.pos += 2
			selfClose = true
			break
		}
		if p.peek() == '>' {
			p.pos++
			break
		}
		aname, err := p.readName()
		if err != nil {
			return err
		}
		if p.mode == HTML {
			aname = strings.ToLower(aname)
		}
		p.skipSpace()
		aval := ""
		if p.peek() == '=' {
			p.pos++
			p.skipSpace()
			aval, err = p.readAttrValue()
			if err != nil {
				return err
			}
		} else if p.mode == XML {
			return p.errorf("attribute %s missing value", aname)
		}
		attrs = append(attrs, attr{aname, aval})
	}

	// Push a namespace scope and collect declarations.
	scope := map[string]string{}
	for k, v := range p.nsStack[len(p.nsStack)-1] {
		scope[k] = v
	}
	for _, a := range attrs {
		if a.name == "xmlns" {
			scope[""] = a.value
		} else if strings.HasPrefix(a.name, "xmlns:") {
			scope[a.name[6:]] = a.value
		}
	}
	p.nsStack = append(p.nsStack, scope)
	defer func() { p.nsStack = p.nsStack[:len(p.nsStack)-1] }()

	el := dom.NewElement(p.resolveName(rawName, true))
	for _, a := range attrs {
		if a.name == "xmlns" {
			// Keep declarations as attributes for faithful reserialization.
			el.SetAttr(dom.QName{Space: XMLNSNamespace, Local: "xmlns"}, a.value)
			continue
		}
		if strings.HasPrefix(a.name, "xmlns:") {
			el.SetAttr(dom.QName{Space: XMLNSNamespace, Prefix: "xmlns",
				Local: a.name[6:]}, a.value)
			continue
		}
		el.SetAttr(p.resolveName(a.name, false), a.value)
	}
	if err := parent.AppendChild(el); err != nil {
		return err
	}
	if selfClose {
		return nil
	}
	if p.mode == HTML {
		if voidElements[el.Name.Local] {
			return nil
		}
		if rawTextElements[el.Name.Local] {
			return p.parseRawText(el)
		}
	}
	// End tags match on the lexical (possibly prefixed) name.
	return p.parseContent(el, rawName)
}

// parseRawText consumes character data until the matching end tag,
// without interpreting markup (HTML <script>/<style> content model).
func (p *parser) parseRawText(el *dom.Node) error {
	closing := "</" + el.Name.Local
	var data strings.Builder
	for {
		if p.eof() {
			break // implied close
		}
		if p.hasPrefixFold(closing) {
			after := p.pos + len(closing)
			// Must be followed by whitespace or '>'.
			if after < len(p.src) && (p.src[after] == '>' || p.src[after] == ' ' ||
				p.src[after] == '\t' || p.src[after] == '\n' || p.src[after] == '\r') {
				p.pos = after
				for !p.eof() && p.peek() != '>' {
					p.pos++
				}
				if !p.eof() {
					p.pos++
				}
				break
			}
		}
		data.WriteByte(p.src[p.pos])
		p.pos++
	}
	text := data.String()
	// Strip a CDATA wrapper if the page author used one (XHTML habit).
	trimmed := strings.TrimSpace(text)
	if strings.HasPrefix(trimmed, "<![CDATA[") && strings.HasSuffix(trimmed, "]]>") {
		text = strings.TrimSuffix(strings.TrimPrefix(trimmed, "<![CDATA["), "]]>")
	}
	if text != "" {
		_ = el.AppendChild(dom.NewText(text))
	}
	return nil
}

// resolveName maps a lexical name to an expanded QName using the current
// namespace scope. Elements use the default namespace; attributes do not.
func (p *parser) resolveName(lexical string, element bool) dom.QName {
	scope := p.nsStack[len(p.nsStack)-1]
	if i := strings.IndexByte(lexical, ':'); i > 0 {
		prefix, local := lexical[:i], lexical[i+1:]
		uri := scope[prefix]
		return dom.QName{Space: uri, Prefix: prefix, Local: local}
	}
	if element {
		return dom.QName{Space: scope[""], Local: lexical}
	}
	return dom.QName{Local: lexical}
}

func (p *parser) readAttrValue() (string, error) {
	if p.eof() {
		return "", p.errorf("expected attribute value")
	}
	q := p.peek()
	if q == '"' || q == '\'' {
		p.pos++
		var b strings.Builder
		for {
			if p.eof() {
				return "", p.errorf("unterminated attribute value")
			}
			c := p.src[p.pos]
			if c == q {
				p.pos++
				return b.String(), nil
			}
			if c == '&' {
				r, err := p.readEntity()
				if err != nil {
					return "", err
				}
				b.WriteString(r)
				continue
			}
			b.WriteByte(c)
			p.pos++
		}
	}
	if p.mode == HTML {
		// Unquoted value: up to whitespace or '>'.
		start := p.pos
		for !p.eof() {
			c := p.peek()
			if c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '>' {
				break
			}
			if c == '/' && p.hasPrefix("/>") {
				break
			}
			p.pos++
		}
		return p.src[start:p.pos], nil
	}
	return "", p.errorf("attribute value must be quoted")
}

func (p *parser) readEntity() (string, error) {
	// p.src[p.pos] == '&'
	rest := p.src[p.pos:]
	semi := strings.IndexByte(rest, ';')
	if semi < 0 || semi > 32 {
		if p.mode == HTML {
			p.pos++
			return "&", nil // bare ampersand tolerated
		}
		return "", p.errorf("unterminated entity reference")
	}
	ent := rest[1:semi]
	adv := semi + 1
	var out string
	switch {
	case ent == "lt":
		out = "<"
	case ent == "gt":
		out = ">"
	case ent == "amp":
		out = "&"
	case ent == "quot":
		out = `"`
	case ent == "apos":
		out = "'"
	case ent == "nbsp" && p.mode == HTML:
		out = " "
	case strings.HasPrefix(ent, "#x") || strings.HasPrefix(ent, "#X"):
		var n int
		if _, err := fmt.Sscanf(ent[2:], "%x", &n); err != nil {
			return "", p.errorf("bad character reference &%s;", ent)
		}
		out = string(rune(n))
	case strings.HasPrefix(ent, "#"):
		var n int
		if _, err := fmt.Sscanf(ent[1:], "%d", &n); err != nil {
			return "", p.errorf("bad character reference &%s;", ent)
		}
		out = string(rune(n))
	default:
		if p.mode == HTML {
			p.pos++
			return "&", nil
		}
		return "", p.errorf("unknown entity &%s;", ent)
	}
	p.pos += adv
	return out, nil
}
