package markup

import (
	"strings"

	"repro/internal/dom"
)

// Serialize renders a node (and its subtree) as XML.
func Serialize(n *dom.Node) string {
	var b strings.Builder
	writeNode(&b, n, XML)
	return b.String()
}

// SerializeHTML renders a node as HTML: void elements are written
// without end tags and raw-text elements without escaping.
func SerializeHTML(n *dom.Node) string {
	var b strings.Builder
	writeNode(&b, n, HTML)
	return b.String()
}

// SerializeIndent renders a node as XML with two-space indentation,
// for human-facing dumps (cmd/xqib, examples). Text nodes containing
// non-whitespace suppress indentation inside their parent.
func SerializeIndent(n *dom.Node) string {
	var b strings.Builder
	writeIndent(&b, n, 0)
	return b.String()
}

func writeNode(b *strings.Builder, n *dom.Node, mode Mode) {
	switch n.Type {
	case dom.DocumentNode:
		for _, c := range n.Children() {
			writeNode(b, c, mode)
		}
	case dom.ElementNode:
		writeElement(b, n, mode)
	case dom.TextNode:
		b.WriteString(EscapeText(n.Data))
	case dom.CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")
	case dom.ProcessingInstructionNode:
		b.WriteString("<?")
		b.WriteString(n.Name.Local)
		if n.Data != "" {
			b.WriteString(" ")
			b.WriteString(n.Data)
		}
		b.WriteString("?>")
	case dom.AttributeNode:
		writeAttr(b, n)
	}
}

func attrLexical(a *dom.Node) string {
	if a.Name.Space == XMLNSNamespace {
		if a.Name.Local == "xmlns" {
			return "xmlns"
		}
		return "xmlns:" + a.Name.Local
	}
	return a.Name.String()
}

func writeAttr(b *strings.Builder, a *dom.Node) {
	b.WriteString(attrLexical(a))
	b.WriteString(`="`)
	b.WriteString(EscapeAttr(a.Data))
	b.WriteString(`"`)
}

func writeElement(b *strings.Builder, n *dom.Node, mode Mode) {
	b.WriteByte('<')
	b.WriteString(n.Name.String())
	for _, a := range n.Attrs() {
		b.WriteByte(' ')
		writeAttr(b, a)
	}
	kids := n.Children()
	if mode == HTML {
		if voidElements[n.Name.Local] {
			b.WriteString("/>")
			return
		}
		if rawTextElements[n.Name.Local] {
			b.WriteByte('>')
			for _, c := range kids {
				if c.Type == dom.TextNode {
					b.WriteString(c.Data) // raw, unescaped
				}
			}
			b.WriteString("</" + n.Name.String() + ">")
			return
		}
	}
	if len(kids) == 0 {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	for _, c := range kids {
		writeNode(b, c, mode)
	}
	b.WriteString("</" + n.Name.String() + ">")
}

func writeIndent(b *strings.Builder, n *dom.Node, depth int) {
	ind := strings.Repeat("  ", depth)
	switch n.Type {
	case dom.DocumentNode:
		for _, c := range n.Children() {
			writeIndent(b, c, depth)
		}
	case dom.ElementNode:
		b.WriteString(ind)
		b.WriteByte('<')
		b.WriteString(n.Name.String())
		for _, a := range n.Attrs() {
			b.WriteByte(' ')
			writeAttr(b, a)
		}
		kids := n.Children()
		if len(kids) == 0 {
			b.WriteString("/>\n")
			return
		}
		if mixed(n) {
			b.WriteByte('>')
			for _, c := range kids {
				writeNode(b, c, XML)
			}
			b.WriteString("</" + n.Name.String() + ">\n")
			return
		}
		b.WriteString(">\n")
		for _, c := range kids {
			writeIndent(b, c, depth+1)
		}
		b.WriteString(ind + "</" + n.Name.String() + ">\n")
	case dom.TextNode:
		if strings.TrimSpace(n.Data) != "" {
			b.WriteString(ind + EscapeText(strings.TrimSpace(n.Data)) + "\n")
		}
	default:
		b.WriteString(ind)
		writeNode(b, n, XML)
		b.WriteByte('\n')
	}
}

// mixed reports whether an element has meaningful text content mixed
// with its children (in which case indentation would corrupt it).
func mixed(n *dom.Node) bool {
	for _, c := range n.Children() {
		if c.Type == dom.TextNode && strings.TrimSpace(c.Data) != "" {
			return true
		}
	}
	return false
}

// EscapeText escapes character data for XML output.
func EscapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes an attribute value for double-quoted XML output.
func EscapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")
	return r.Replace(s)
}
