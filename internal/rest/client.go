package rest

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/runtime"
)

// DefaultMaxBody caps how many bytes the client reads from a peer
// response (and the server from a request) unless overridden: one
// misbehaving peer must not be able to OOM the process through an
// unbounded io.ReadAll.
const DefaultMaxBody = 16 << 20 // 16 MiB

// DefaultCacheCapacity bounds the whole-document client cache when
// EnableCache is used without SetCacheCapacity.
const DefaultCacheCapacity = 64

// CacheStats is a point-in-time snapshot of the whole-document cache.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Enabled   bool  `json:"enabled"`
}

// Client issues REST calls from the engine, with an optional
// whole-document cache: "whole XML documents can be cached in the
// browser so that most user requests can be processed without any
// interaction with the Elsevier server" (§6.1). The cache is bounded:
// least-recently-used documents evict once capacity is reached (the
// xquery.Cache shape), so a long session browsing many documents
// cannot grow memory without bound.
//
// All methods are safe for concurrent use. Network calls take a
// context.Context (the evaluation's RunConfig.Context, via
// runtime.Context.IOContext) so a cancelled query stops burning
// sockets.
type Client struct {
	HTTP *http.Client

	// MaxBody caps response bodies read from peers, in bytes; 0 uses
	// DefaultMaxBody, negative disables the cap. Oversized responses
	// fail with an error matching ErrBodyTooLarge.
	MaxBody int64

	mu       sync.Mutex
	caching  bool
	capacity int
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used; values are *cachedDoc
	hits     int64
	misses   int64
	evicted  int64
	Fetches  int // network requests actually issued
	CacheHit int
}

type cachedDoc struct {
	uri string
	doc *dom.Node
}

// NewClient builds a client around an http.Client (nil uses the
// default).
func NewClient(h *http.Client) *Client {
	if h == nil {
		h = http.DefaultClient
	}
	return &Client{
		HTTP:     h,
		capacity: DefaultCacheCapacity,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
	}
}

// EnableCache switches the whole-document cache on or off. Turning it
// off drops every cached document.
func (c *Client) EnableCache(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.caching = on
	if !on {
		c.dropAllLocked()
	}
}

// SetCacheCapacity bounds the document cache to n entries (n <= 0
// restores DefaultCacheCapacity), evicting least-recently-used
// documents if the cache is already over the new bound.
func (c *Client) SetCacheCapacity(n int) {
	if n <= 0 {
		n = DefaultCacheCapacity
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = n
	for c.lru.Len() > c.capacity {
		c.evictOldestLocked()
	}
}

// ClearCache drops all cached documents.
func (c *Client) ClearCache() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropAllLocked()
}

// CacheStats snapshots the document-cache counters.
func (c *Client) CacheStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evicted,
		Size:      c.lru.Len(),
		Capacity:  c.capacity,
		Enabled:   c.caching,
	}
}

func (c *Client) dropAllLocked() {
	c.entries = map[string]*list.Element{}
	c.lru.Init()
}

func (c *Client) evictOldestLocked() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	c.lru.Remove(el)
	delete(c.entries, el.Value.(*cachedDoc).uri)
	c.evicted++
}

// cacheGet returns a cached document, refreshing its recency.
func (c *Client) cacheGet(uri string) (*dom.Node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.caching {
		return nil, false
	}
	el, ok := c.entries[uri]
	if !ok {
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	c.CacheHit++
	return el.Value.(*cachedDoc).doc, true
}

func (c *Client) cachePut(uri string, doc *dom.Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Fetches++
	if !c.caching {
		return
	}
	if el, ok := c.entries[uri]; ok {
		el.Value.(*cachedDoc).doc = doc
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.capacity {
		c.evictOldestLocked()
	}
	c.entries[uri] = c.lru.PushFront(&cachedDoc{uri: uri, doc: doc})
}

// readBody drains a response body under the client's MaxBody cap.
func (c *Client) readBody(url string, resp *http.Response) ([]byte, error) {
	return readLimited(url, resp.Body, c.MaxBody)
}

// ReadLimited reads r fully, failing with an error matching
// ErrBodyTooLarge past max bytes (0 = DefaultMaxBody, negative =
// unlimited). Exported for transports built on this package's taxonomy
// (internal/fed) so their size-cap failures classify identically.
func ReadLimited(url string, r io.Reader, max int64) ([]byte, error) {
	return readLimited(url, r, max)
}

// readLimited reads r fully, failing with ErrBodyTooLarge past max
// bytes (0 = DefaultMaxBody, negative = unlimited).
func readLimited(url string, r io.Reader, max int64) ([]byte, error) {
	if max == 0 {
		max = DefaultMaxBody
	}
	if max < 0 {
		return io.ReadAll(r)
	}
	body, err := io.ReadAll(io.LimitReader(r, max+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > max {
		return nil, fmt.Errorf("%w: %s: more than %d bytes", ErrBodyTooLarge, url, max)
	}
	return body, nil
}

// do issues one request and returns the (cap-bounded) body, converting
// non-200 statuses into *StatusError.
func (c *Client) do(req *http.Request) ([]byte, error) {
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := c.readBody(req.URL.String(), resp)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{URL: req.URL.String(), Status: resp.StatusCode, Msg: strings.TrimSpace(string(body))}
	}
	return body, nil
}

// Get fetches a URI and parses the body as XML, serving repeated
// fetches from the cache when enabled. It is GetContext under
// context.Background().
func (c *Client) Get(uri string) (*dom.Node, error) {
	return c.GetContext(context.Background(), uri)
}

// GetContext is Get bounded by ctx: the request is built with
// http.NewRequestWithContext, so cancelling the evaluation aborts the
// fetch instead of leaking the socket until the server responds.
func (c *Client) GetContext(ctx context.Context, uri string) (*dom.Node, error) {
	if doc, ok := c.cacheGet(uri); ok {
		return doc, nil
	}
	body, err := c.getRaw(ctx, uri)
	if err != nil {
		return nil, err
	}
	doc, err := markup.Parse(string(body))
	if err != nil {
		return nil, fmt.Errorf("%w: GET %s: parsing body: %w", ErrMalformedPayload, uri, err)
	}
	doc.BaseURI = uri
	c.cachePut(uri, doc)
	return doc, nil
}

// getRaw fetches a URI and returns the raw 200 body.
func (c *Client) getRaw(ctx context.Context, uri string) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, uri, nil)
	if err != nil {
		return nil, fmt.Errorf("rest: GET %s: %w", uri, err)
	}
	body, err := c.do(req)
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) {
			return nil, err
		}
		return nil, fmt.Errorf("rest: GET %s: %w", uri, err)
	}
	return body, nil
}

// invoke POSTs an encoded argument list at a /call URL and decodes the
// result sequence.
func (c *Client) invoke(callURL string, args []xdm.Sequence) (xdm.Sequence, error) {
	return c.invokeContext(context.Background(), callURL, args)
}

// invokeContext is invoke bounded by ctx (the evaluation's context at
// proxy-call time).
func (c *Client) invokeContext(ctx context.Context, callURL string, args []xdm.Sequence) (xdm.Sequence, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, callURL, strings.NewReader(EncodeArgs(args)))
	if err != nil {
		return nil, fmt.Errorf("rest: calling %s: %w", callURL, err)
	}
	req.Header.Set("Content-Type", "application/xml")
	body, err := c.do(req)
	c.mu.Lock()
	c.Fetches++
	c.mu.Unlock()
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) {
			return nil, err
		}
		return nil, fmt.Errorf("rest: calling %s: %w", callURL, err)
	}
	return DecodeSequence(string(body))
}

// RegisterFunctions installs the rest: client functions:
//
//	rest:get($uri)        — synchronous GET returning the document (§5.1)
//	rest:get-text($uri)   — synchronous GET returning the raw body
//
// Both run under the calling evaluation's context, so a cancelled
// query aborts the fetch.
func (c *Client) RegisterFunctions(reg *runtime.Registry) {
	name := func(local string) dom.QName {
		return dom.QName{Space: Namespace, Prefix: "rest", Local: local}
	}
	reg.Register(&runtime.Function{
		Name: name("get"), MinArgs: 1, MaxArgs: 1,
		Invoke: func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			it, err := xdm.AtomizeSequence(args[0]).One()
			if err != nil {
				return nil, err
			}
			doc, err := c.GetContext(ctx.IOContext(), it.String())
			if err != nil {
				return nil, err
			}
			return xdm.Singleton(xdm.NewNode(doc)), nil
		},
	})
	reg.Register(&runtime.Function{
		Name: name("get-text"), MinArgs: 1, MaxArgs: 1,
		Invoke: func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			it, err := xdm.AtomizeSequence(args[0]).One()
			if err != nil {
				return nil, err
			}
			body, err := c.getRaw(ctx.IOContext(), it.String())
			if err != nil {
				return nil, err
			}
			c.mu.Lock()
			c.Fetches++
			c.mu.Unlock()
			return xdm.Singleton(xdm.String(string(body))), nil
		},
	})
}

// ServiceFunc is one function advertised by a service description.
type ServiceFunc struct {
	Name  string
	Arity int
}

// FetchDescription fetches and validates a web-service description
// ("{base}/wsdl"): the service namespace plus every declared function.
// Descriptions carrying an unparsable or negative arity are rejected —
// a proxy registered with a garbage arity would mis-validate every
// call site.
func FetchDescription(ctx context.Context, h *http.Client, base string, maxBody int64) (ns string, fns []ServiceFunc, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if h == nil {
		h = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/wsdl", nil)
	if err != nil {
		return "", nil, err
	}
	resp, err := h.Do(req)
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	body, err := readLimited(base+"/wsdl", resp.Body, maxBody)
	if err != nil {
		return "", nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return "", nil, &StatusError{URL: base + "/wsdl", Status: resp.StatusCode, Msg: strings.TrimSpace(string(body))}
	}
	desc, err := markup.Parse(string(body))
	if err != nil {
		return "", nil, fmt.Errorf("%w: parsing service description: %w", ErrMalformedPayload, err)
	}
	root := desc.DocumentElement()
	if root == nil || root.Name.Local != "service" {
		return "", nil, fmt.Errorf("%w: %s/wsdl is not a service description", ErrMalformedPayload, base)
	}
	for _, f := range root.Children() {
		if f.Type != dom.ElementNode || f.Name.Local != "function" {
			continue
		}
		fname := f.AttrValue("name")
		arity, err := strconv.Atoi(strings.TrimSpace(f.AttrValue("arity")))
		if err != nil || arity < 0 {
			return "", nil, fmt.Errorf("%w: %s/wsdl: function %q declares bad arity %q",
				ErrMalformedPayload, base, fname, f.AttrValue("arity"))
		}
		fns = append(fns, ServiceFunc{Name: fname, Arity: arity})
	}
	return root.AttrValue("namespace"), fns, nil
}

// Resolver returns a module resolver that materialises
// `import module namespace p = "uri" at "http://host/wsdl"` by fetching
// the service description and registering one proxy function per
// declared function — the paper's client side of §3.4. Each proxy call
// POSTs the arguments and decodes the result sequence, under the
// calling evaluation's context. The description fetch itself runs
// under context.Background(); use ResolverContext to bound it.
func (c *Client) Resolver() runtime.ModuleResolver {
	return c.ResolverContext(context.Background())
}

// ResolverContext is Resolver with the service-description fetch
// bounded by ctx (module imports resolve at compile time, before any
// RunConfig exists). Proxy calls still use each evaluation's own
// context.
func (c *Client) ResolverContext(ctx context.Context) runtime.ModuleResolver {
	return func(imp ast.ModuleImport, reg *runtime.Registry) error {
		if len(imp.Hints) == 0 {
			return fmt.Errorf("rest: import of %q needs an \"at\" location hint", imp.URI)
		}
		base := strings.TrimSuffix(imp.Hints[0], "/wsdl")
		ns, fns, err := FetchDescription(ctx, c.HTTP, base, c.MaxBody)
		if err != nil {
			return err
		}
		if ns != imp.URI {
			return fmt.Errorf("rest: service namespace %q does not match import %q", ns, imp.URI)
		}
		for _, f := range fns {
			callURL := base + "/call/" + f.Name
			arity := f.Arity
			reg.Register(&runtime.Function{
				Name:    dom.QName{Space: ns, Local: f.Name},
				MinArgs: arity, MaxArgs: arity,
				Invoke: func(rctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
					return c.invokeContext(rctx.IOContext(), callURL, args)
				},
			})
		}
		return nil
	}
}
