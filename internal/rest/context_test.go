package rest

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/xquery"
)

// A service whose slow function gives cancellation something to abort.
const slowService = `module namespace sl = "urn:slow" port:2002;
declare option fn:webservice "true";
declare function sl:fast($a) { $a + 1 };
declare function sl:slow() {
  sum(for $i in 1 to 2000 return sum(for $j in 1 to 2000 return $j mod 7))
};`

func TestCallContextCancellation(t *testing.T) {
	srv, err := NewModuleServer(slowService, nil)
	if err != nil {
		t.Fatal(err)
	}

	// A live context lets calls through.
	out, err := srv.CallContext(context.Background(), "fast", `<args><arg><item type="xs:integer">41</item></arg></args>`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ">42<") {
		t.Errorf("fast(41) = %s", out)
	}

	// A cancelled request context aborts the evaluation cooperatively.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = srv.CallContext(ctx, "slow", `<args></args>`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("call ran %s before aborting", elapsed)
	}
}

func TestCallServerBudget(t *testing.T) {
	srv, err := NewModuleServer(slowService, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxSteps = 1000
	_, err = srv.Call("slow", `<args></args>`)
	if !errors.Is(err, xquery.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestNewModuleServerCached(t *testing.T) {
	e := xquery.New()
	c := xquery.NewCache(8)

	s1, err := NewModuleServerCached(e, c, slowService, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewModuleServerCached(e, c, slowService, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Compiles != 1 || st.ProgramHits != 1 {
		t.Errorf("stats = %+v, want 1 compile / 1 hit for a redeploy", st)
	}

	// Both servers work, sharing the compiled program.
	for _, s := range []*ModuleServer{s1, s2} {
		out, err := s.Call("fast", `<args><arg><item type="xs:integer">1</item></arg></args>`)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, ">2<") {
			t.Errorf("fast(1) = %s", out)
		}
	}

	// Validation still applies on the cached path.
	if _, err := NewModuleServerCached(e, c, `1+1`, nil); err == nil {
		t.Error("main module must be rejected")
	}
}
