package rest

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/xqerr"
	"repro/internal/xquery"
)

// The retryable-vs-terminal error taxonomy of the REST transport. The
// federation layer (internal/fed) keys its retry, hedging and
// circuit-breaker decisions off these classifications, so the client
// and server must agree on what each HTTP status means:
//
//	400  malformed call (bad args, unknown function)   terminal
//	413  request body over the server's MaxBody cap    terminal
//	422  evaluation budget exhausted (MaxSteps/Timeout) terminal
//	500  evaluation panic (xqerr.ErrInternal)          retryable
//	503  server overloaded / program quarantined       retryable
//	504  request cancelled mid-evaluation              retryable
//
// Budget exhaustion is deliberately terminal: a query that exhausts
// the server's deterministic MaxSteps/Timeout budget will exhaust it
// again on every replay, so retrying burns sockets and — worse —
// counts breaker failures against a perfectly healthy backend.
var (
	// ErrBodyTooLarge reports a peer response exceeding the client's
	// MaxBody cap. Terminal: the same document will be oversized on
	// every retry.
	ErrBodyTooLarge = errors.New("rest: response body exceeds size limit")
	// ErrMalformedPayload reports a wire payload that failed to parse
	// or decode — a torn response, truncated proxy body or a
	// non-conforming peer. Classified retryable: a re-fetch can heal
	// transport damage, and the retry budget bounds the attempts when
	// it cannot.
	ErrMalformedPayload = errors.New("rest: malformed payload")
	// ErrOverloaded reports a server refusing a call because its
	// MaxConcurrent gate is saturated (HTTP 503).
	ErrOverloaded = errors.New("rest: server overloaded")
)

// StatusError is a non-200 response from a peer, preserving the status
// code so callers can classify the failure.
type StatusError struct {
	URL    string
	Status int
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("rest: %s: %d %s: %s", e.URL, e.Status, http.StatusText(e.Status), e.Msg)
}

// Retryable reports whether the status indicates a transient server
// condition (5xx except 501, plus 429) rather than a caller mistake.
func (e *StatusError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests ||
		(e.Status >= 500 && e.Status != http.StatusNotImplemented)
}

// Retryable classifies an error from a rest client call for the
// federation retry/breaker machinery:
//
//   - caller cancellation (context.Canceled / DeadlineExceeded) and
//     terminal statuses (4xx) are NOT retryable — repeating the call
//     cannot succeed, and they say nothing bad about backend health;
//   - retryable statuses (5xx, 429), malformed payloads and anything
//     else (connection refused, resets, torn bodies — the transport
//     error soup) ARE retryable.
//
// Callers imposing a per-attempt deadline must special-case their own
// deadline before consulting this, since it surfaces as
// context.DeadlineExceeded too.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Retryable()
	}
	if errors.Is(err, ErrBodyTooLarge) {
		return false
	}
	return true
}

// statusFor maps a CallContext error onto the HTTP status the
// taxonomy above promises. Order matters: a panic that also exhausted
// the budget should report as the panic.
func statusFor(err error) int {
	switch {
	case errors.Is(err, xqerr.ErrInternal):
		return http.StatusInternalServerError // 500
	case errors.Is(err, xquery.ErrBudgetExceeded):
		return http.StatusUnprocessableEntity // 422
	case errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout // 504
	case errors.Is(err, xquery.ErrQuarantined), errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable // 503
	default:
		return http.StatusBadRequest // 400
	}
}
