// Package rest implements the paper's REST and Web-service support
// (§3.4, §4.4): serving an XQuery library module as a web service
// (`declare option fn:webservice "true"` plus the `port:` module
// extension), importing such a service from a client (the import
// registers proxy functions that issue remote calls), and the
// synchronous GET the implementation section notes Zorba shipped first
// (§5.1), with the whole-document client cache the Elsevier migration
// relies on (§6.1).
//
// The package is also the transport substrate of the federation layer
// (internal/fed): errors.go defines the retryable-vs-terminal taxonomy
// over HTTP statuses that retries and circuit breakers key off, and
// the sequence wire format carries an optional per-item document URI
// so scattered partial results can merge in URI order.
package rest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xqerr"
	"repro/internal/xquery"
	"repro/internal/xquery/runtime"
)

// Namespace is the rest: function namespace for client-side calls.
const Namespace = "http://www.example.com/rest"

// --- web-service server ---------------------------------------------------------

// ServerStats counts the server-side work a service performed — the
// measurements behind the Figure-2 off-loading experiment.
type ServerStats struct {
	mu               sync.Mutex
	Requests         int
	BytesServed      int64
	QueriesEvaluated int
}

// Snapshot returns a copy of the counters.
func (s *ServerStats) Snapshot() (requests int, bytes int64, queries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Requests, s.BytesServed, s.QueriesEvaluated
}

// Reset zeroes the counters.
func (s *ServerStats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Requests, s.BytesServed, s.QueriesEvaluated = 0, 0, 0
}

func (s *ServerStats) count(bytes int, query bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Requests++
	s.BytesServed += int64(bytes)
	if query {
		s.QueriesEvaluated++
	}
}

// ModuleServer serves an XQuery library module as a web service. The
// compiled program is immutable and every call evaluates in its own
// context, so one server handles concurrent requests safely.
type ModuleServer struct {
	prog  *xquery.Program
	uri   string
	docs  runtime.DocResolver
	Stats ServerStats

	// Collections / CollectionsIter, when set, resolve fn:collection
	// inside service functions — how a backend exposes its shard of
	// the document space to the federation layer.
	Collections     runtime.CollectionResolver
	CollectionsIter runtime.CollectionIterResolver

	// MaxSteps / Timeout bound every call's evaluation (<= 0:
	// unlimited), on top of the request context's cancellation.
	MaxSteps int64
	Timeout  time.Duration

	// MaxBody caps request bodies, in bytes; 0 uses DefaultMaxBody,
	// negative disables the cap. Oversized requests fail with 413.
	MaxBody int64

	// MaxConcurrent, when > 0, bounds concurrently evaluating calls;
	// excess requests are shed immediately with 503 (the retryable
	// overload signal of the federation taxonomy) instead of piling
	// onto a saturated evaluator.
	MaxConcurrent int
	inflight      atomic.Int64
}

// NewModuleServer compiles a library module for serving. The module
// must declare `option fn:webservice "true"` (paper §3.4).
func NewModuleServer(src string, docs runtime.DocResolver, opts ...xquery.Option) (*ModuleServer, error) {
	e := xquery.New(opts...)
	prog, err := e.Compile(src)
	if err != nil {
		return nil, err
	}
	return newModuleServer(prog, docs)
}

// NewModuleServerCached is NewModuleServer compiling through a shared
// program cache on a shared engine — the serving-layer path, where many
// services (and redeploys of the same module) skip parse/compile.
func NewModuleServerCached(e *xquery.Engine, c *xquery.Cache, src string, docs runtime.DocResolver) (*ModuleServer, error) {
	prog, err := c.Compile(e, src)
	if err != nil {
		return nil, err
	}
	return newModuleServer(prog, docs)
}

func newModuleServer(prog *xquery.Program, docs runtime.DocResolver) (*ModuleServer, error) {
	m := prog.Module()
	if !m.IsLibrary {
		return nil, fmt.Errorf("rest: a web service must be a library module")
	}
	if v := m.Prolog.Options["fn:webservice"]; v != "true" {
		return nil, fmt.Errorf(`rest: module does not declare option fn:webservice "true"`)
	}
	return &ModuleServer{prog: prog, uri: m.URI, docs: docs}, nil
}

// URI returns the module's namespace URI.
func (s *ModuleServer) URI() string { return s.uri }

// Port returns the port declared in the module header (0 if none).
func (s *ModuleServer) Port() int { return s.prog.Module().Port }

// Handler exposes the service over HTTP:
//
//	GET  /wsdl         — the service description (functions + arities)
//	POST /call/{name}  — invoke a function; the body is an <args>
//	                     element with one <arg> per parameter
//
// Call errors map onto the status taxonomy federation clients key
// their retry and breaker decisions off: 400 for malformed calls, 413
// for oversized request bodies, 422 for exhausted evaluation budgets
// (terminal — deterministic, so clients must not retry or count it
// against backend health), 500 for evaluation panics, 503 for
// overload or quarantine, 504 for cancelled requests.
func (s *ModuleServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /wsdl", func(w http.ResponseWriter, r *http.Request) {
		out := s.describe()
		w.Header().Set("Content-Type", "application/xml")
		n, _ := io.WriteString(w, out)
		s.Stats.count(n, false)
	})
	mux.HandleFunc("POST /call/{name}", func(w http.ResponseWriter, r *http.Request) {
		if mc := s.MaxConcurrent; mc > 0 {
			if s.inflight.Add(1) > int64(mc) {
				s.inflight.Add(-1)
				s.Stats.count(0, false)
				http.Error(w, ErrOverloaded.Error(), http.StatusServiceUnavailable)
				return
			}
			defer s.inflight.Add(-1)
		}
		name := r.PathValue("name")
		max := s.MaxBody
		if max == 0 {
			max = DefaultMaxBody
		}
		var body []byte
		var err error
		if max > 0 {
			body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, max))
		} else {
			body, err = io.ReadAll(r.Body)
		}
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out, err := s.CallContext(r.Context(), name, string(body))
		if err != nil {
			s.Stats.count(0, true)
			http.Error(w, err.Error(), statusFor(err))
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		n, _ := io.WriteString(w, out)
		s.Stats.count(n, true)
	})
	return mux
}

func (s *ModuleServer) describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<service namespace="%s">`, markup.EscapeAttr(s.uri))
	for _, f := range s.prog.Module().Prolog.Functions {
		if f.Name.Space != s.uri {
			continue
		}
		fmt.Fprintf(&b, `<function name="%s" arity="%d"/>`,
			markup.EscapeAttr(f.Name.Local), len(f.Params))
	}
	b.WriteString(`</service>`)
	return b.String()
}

// Call invokes a module function with an <args> payload and returns the
// serialized <result>.
func (s *ModuleServer) Call(name, argsXML string) (string, error) {
	return s.CallContext(context.Background(), name, argsXML)
}

// CallContext is Call under a request context: the evaluation aborts
// cooperatively when reqCtx is cancelled (the HTTP handler passes the
// request's context, so a disconnected client stops burning engine
// time) and is bounded by the server's MaxSteps/Timeout budget. It is
// a panic-isolation boundary: a panicking service function comes back
// as an error matching xqerr.ErrInternal, never as a crashed server.
func (s *ModuleServer) CallContext(reqCtx context.Context, name, argsXML string) (out string, err error) {
	defer xqerr.RecoverInto(&err, "rest.CallContext")
	args, err := DecodeArgs(argsXML)
	if err != nil {
		return "", err
	}
	ctx := s.prog.NewContext(xquery.RunConfig{
		Context:         reqCtx,
		Docs:            s.docs,
		Collections:     s.Collections,
		CollectionsIter: s.CollectionsIter,
		Sequential:      true,
		MaxSteps:        s.MaxSteps,
		Timeout:         s.Timeout,
	})
	if err := ctx.InitGlobals(); err != nil {
		return "", err
	}
	res, err := ctx.CallFunction(dom.QName{Space: s.uri, Local: name}, args)
	if err != nil {
		return "", err
	}
	return EncodeSequence(res), nil
}

// --- sequence wire format ----------------------------------------------------------

// EncodeSequence serializes an XDM sequence for transport: each item is
// an <item> carrying either a typed lexical value or a node payload.
// Document nodes additionally record their base URI in a uri
// attribute, so the document identity (and the federation layer's
// URI-ordered merge key) survives the wire.
func EncodeSequence(s xdm.Sequence) string {
	var b strings.Builder
	b.WriteString("<result>")
	for _, it := range s {
		if n, ok := xdm.IsNode(it); ok {
			if n.Type == dom.DocumentNode && n.BaseURI != "" {
				fmt.Fprintf(&b, `<item kind="node" uri="%s">`, markup.EscapeAttr(n.BaseURI))
			} else {
				b.WriteString(`<item kind="node">`)
			}
			b.WriteString(markup.Serialize(n))
			b.WriteString(`</item>`)
			continue
		}
		fmt.Fprintf(&b, `<item type="%s">%s</item>`,
			markup.EscapeAttr(it.Type().String()), markup.EscapeText(it.String()))
	}
	b.WriteString("</result>")
	return b.String()
}

// DecodeSequence parses the wire format back into a sequence.
func DecodeSequence(src string) (xdm.Sequence, error) {
	seq, _, err := DecodeSequenceKeyed(src)
	return seq, err
}

// DecodeSequenceKeyed parses the wire format returning, alongside each
// item, the document URI it was encoded with ("" for non-document
// items) — the sort key the federation merge orders scattered partial
// results by.
func DecodeSequenceKeyed(src string) (xdm.Sequence, []string, error) {
	doc, err := markup.Parse(src)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: malformed result: %w", ErrMalformedPayload, err)
	}
	root := doc.DocumentElement()
	if root == nil || root.Name.Local != "result" {
		return nil, nil, fmt.Errorf("%w: unexpected result payload", ErrMalformedPayload)
	}
	var out xdm.Sequence
	var keys []string
	for _, item := range root.Children() {
		if item.Type != dom.ElementNode || item.Name.Local != "item" {
			continue
		}
		it, err := decodeItem(item)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, it)
		keys = append(keys, item.AttrValue("uri"))
	}
	return out, keys, nil
}

func decodeItem(item *dom.Node) (xdm.Item, error) {
	if item.AttrValue("kind") == "node" {
		uri := item.AttrValue("uri")
		for _, c := range item.Children() {
			if c.Type == dom.ElementNode {
				cp := c.Clone()
				if uri != "" {
					return xdm.NewNode(dom.NewDocumentOf(uri, cp)), nil
				}
				return xdm.NewNode(cp), nil
			}
		}
		return xdm.NewNode(dom.NewText(item.StringValue())), nil
	}
	text := item.StringValue()
	typeName := item.AttrValue("type")
	local := strings.TrimPrefix(typeName, "xs:")
	t, ok := xdm.AtomicTypeByName(local)
	if !ok {
		return xdm.UntypedAtomic(text), nil
	}
	v, err := xdm.Cast(xdm.String(text), t)
	if err != nil {
		return nil, fmt.Errorf("%w: cannot decode %s %q: %w", ErrMalformedPayload, typeName, text, err)
	}
	return v, nil
}

// EncodeArgs serializes a call's arguments.
func EncodeArgs(args []xdm.Sequence) string {
	var b strings.Builder
	b.WriteString("<args>")
	for _, a := range args {
		b.WriteString("<arg>")
		b.WriteString(strings.TrimSuffix(strings.TrimPrefix(EncodeSequence(a), "<result>"), "</result>"))
		b.WriteString("</arg>")
	}
	b.WriteString("</args>")
	return b.String()
}

// DecodeArgs parses an <args> payload.
func DecodeArgs(src string) ([]xdm.Sequence, error) {
	doc, err := markup.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%w: malformed args: %w", ErrMalformedPayload, err)
	}
	root := doc.DocumentElement()
	if root == nil || root.Name.Local != "args" {
		return nil, fmt.Errorf("%w: unexpected args payload", ErrMalformedPayload)
	}
	var out []xdm.Sequence
	for _, arg := range root.Children() {
		if arg.Type != dom.ElementNode || arg.Name.Local != "arg" {
			continue
		}
		var seq xdm.Sequence
		for _, item := range arg.Children() {
			if item.Type != dom.ElementNode || item.Name.Local != "item" {
				continue
			}
			it, err := decodeItem(item)
			if err != nil {
				return nil, err
			}
			seq = append(seq, it)
		}
		out = append(out, seq)
	}
	return out, nil
}
