// Package rest implements the paper's REST and Web-service support
// (§3.4, §4.4): serving an XQuery library module as a web service
// (`declare option fn:webservice "true"` plus the `port:` module
// extension), importing such a service from a client (the import
// registers proxy functions that issue remote calls), and the
// synchronous GET the implementation section notes Zorba shipped first
// (§5.1), with the whole-document client cache the Elsevier migration
// relies on (§6.1).
package rest

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xqerr"
	"repro/internal/xquery"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/runtime"
)

// Namespace is the rest: function namespace for client-side calls.
const Namespace = "http://www.example.com/rest"

// --- web-service server ---------------------------------------------------------

// ServerStats counts the server-side work a service performed — the
// measurements behind the Figure-2 off-loading experiment.
type ServerStats struct {
	mu               sync.Mutex
	Requests         int
	BytesServed      int64
	QueriesEvaluated int
}

// Snapshot returns a copy of the counters.
func (s *ServerStats) Snapshot() (requests int, bytes int64, queries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Requests, s.BytesServed, s.QueriesEvaluated
}

// Reset zeroes the counters.
func (s *ServerStats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Requests, s.BytesServed, s.QueriesEvaluated = 0, 0, 0
}

func (s *ServerStats) count(bytes int, query bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Requests++
	s.BytesServed += int64(bytes)
	if query {
		s.QueriesEvaluated++
	}
}

// ModuleServer serves an XQuery library module as a web service. The
// compiled program is immutable and every call evaluates in its own
// context, so one server handles concurrent requests safely.
type ModuleServer struct {
	prog  *xquery.Program
	uri   string
	docs  runtime.DocResolver
	Stats ServerStats

	// MaxSteps / Timeout bound every call's evaluation (<= 0:
	// unlimited), on top of the request context's cancellation.
	MaxSteps int64
	Timeout  time.Duration
}

// NewModuleServer compiles a library module for serving. The module
// must declare `option fn:webservice "true"` (paper §3.4).
func NewModuleServer(src string, docs runtime.DocResolver, opts ...xquery.Option) (*ModuleServer, error) {
	e := xquery.New(opts...)
	prog, err := e.Compile(src)
	if err != nil {
		return nil, err
	}
	return newModuleServer(prog, docs)
}

// NewModuleServerCached is NewModuleServer compiling through a shared
// program cache on a shared engine — the serving-layer path, where many
// services (and redeploys of the same module) skip parse/compile.
func NewModuleServerCached(e *xquery.Engine, c *xquery.Cache, src string, docs runtime.DocResolver) (*ModuleServer, error) {
	prog, err := c.Compile(e, src)
	if err != nil {
		return nil, err
	}
	return newModuleServer(prog, docs)
}

func newModuleServer(prog *xquery.Program, docs runtime.DocResolver) (*ModuleServer, error) {
	m := prog.Module()
	if !m.IsLibrary {
		return nil, fmt.Errorf("rest: a web service must be a library module")
	}
	if v := m.Prolog.Options["fn:webservice"]; v != "true" {
		return nil, fmt.Errorf(`rest: module does not declare option fn:webservice "true"`)
	}
	return &ModuleServer{prog: prog, uri: m.URI, docs: docs}, nil
}

// URI returns the module's namespace URI.
func (s *ModuleServer) URI() string { return s.uri }

// Port returns the port declared in the module header (0 if none).
func (s *ModuleServer) Port() int { return s.prog.Module().Port }

// Handler exposes the service over HTTP:
//
//	GET  /wsdl         — the service description (functions + arities)
//	POST /call/{name}  — invoke a function; the body is an <args>
//	                     element with one <arg> per parameter
func (s *ModuleServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /wsdl", func(w http.ResponseWriter, r *http.Request) {
		out := s.describe()
		w.Header().Set("Content-Type", "application/xml")
		n, _ := io.WriteString(w, out)
		s.Stats.count(n, false)
	})
	mux.HandleFunc("POST /call/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out, err := s.CallContext(r.Context(), name, string(body))
		if err != nil {
			s.Stats.count(0, true)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		n, _ := io.WriteString(w, out)
		s.Stats.count(n, true)
	})
	return mux
}

func (s *ModuleServer) describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<service namespace="%s">`, markup.EscapeAttr(s.uri))
	for _, f := range s.prog.Module().Prolog.Functions {
		if f.Name.Space != s.uri {
			continue
		}
		fmt.Fprintf(&b, `<function name="%s" arity="%d"/>`,
			markup.EscapeAttr(f.Name.Local), len(f.Params))
	}
	b.WriteString(`</service>`)
	return b.String()
}

// Call invokes a module function with an <args> payload and returns the
// serialized <result>.
func (s *ModuleServer) Call(name, argsXML string) (string, error) {
	return s.CallContext(context.Background(), name, argsXML)
}

// CallContext is Call under a request context: the evaluation aborts
// cooperatively when reqCtx is cancelled (the HTTP handler passes the
// request's context, so a disconnected client stops burning engine
// time) and is bounded by the server's MaxSteps/Timeout budget. It is
// a panic-isolation boundary: a panicking service function comes back
// as an error matching xqerr.ErrInternal, never as a crashed server.
func (s *ModuleServer) CallContext(reqCtx context.Context, name, argsXML string) (out string, err error) {
	defer xqerr.RecoverInto(&err, "rest.CallContext")
	args, err := DecodeArgs(argsXML)
	if err != nil {
		return "", err
	}
	ctx := s.prog.NewContext(xquery.RunConfig{
		Context:    reqCtx,
		Docs:       s.docs,
		Sequential: true,
		MaxSteps:   s.MaxSteps,
		Timeout:    s.Timeout,
	})
	if err := ctx.InitGlobals(); err != nil {
		return "", err
	}
	res, err := ctx.CallFunction(dom.QName{Space: s.uri, Local: name}, args)
	if err != nil {
		return "", err
	}
	return EncodeSequence(res), nil
}

// --- sequence wire format ----------------------------------------------------------

// EncodeSequence serializes an XDM sequence for transport: each item is
// an <item> carrying either a typed lexical value or a node payload.
func EncodeSequence(s xdm.Sequence) string {
	var b strings.Builder
	b.WriteString("<result>")
	for _, it := range s {
		if n, ok := xdm.IsNode(it); ok {
			b.WriteString(`<item kind="node">`)
			b.WriteString(markup.Serialize(n))
			b.WriteString(`</item>`)
			continue
		}
		fmt.Fprintf(&b, `<item type="%s">%s</item>`,
			markup.EscapeAttr(it.Type().String()), markup.EscapeText(it.String()))
	}
	b.WriteString("</result>")
	return b.String()
}

// DecodeSequence parses the wire format back into a sequence.
func DecodeSequence(src string) (xdm.Sequence, error) {
	doc, err := markup.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("rest: malformed result payload: %w", err)
	}
	root := doc.DocumentElement()
	if root == nil || root.Name.Local != "result" {
		return nil, fmt.Errorf("rest: unexpected result payload")
	}
	var out xdm.Sequence
	for _, item := range root.Children() {
		if item.Type != dom.ElementNode || item.Name.Local != "item" {
			continue
		}
		it, err := decodeItem(item)
		if err != nil {
			return nil, err
		}
		out = append(out, it)
	}
	return out, nil
}

func decodeItem(item *dom.Node) (xdm.Item, error) {
	if item.AttrValue("kind") == "node" {
		for _, c := range item.Children() {
			if c.Type == dom.ElementNode {
				cp := c.Clone()
				return xdm.NewNode(cp), nil
			}
		}
		return xdm.NewNode(dom.NewText(item.StringValue())), nil
	}
	text := item.StringValue()
	typeName := item.AttrValue("type")
	local := strings.TrimPrefix(typeName, "xs:")
	t, ok := xdm.AtomicTypeByName(local)
	if !ok {
		return xdm.UntypedAtomic(text), nil
	}
	v, err := xdm.Cast(xdm.String(text), t)
	if err != nil {
		return nil, fmt.Errorf("rest: cannot decode %s %q: %w", typeName, text, err)
	}
	return v, nil
}

// EncodeArgs serializes a call's arguments.
func EncodeArgs(args []xdm.Sequence) string {
	var b strings.Builder
	b.WriteString("<args>")
	for _, a := range args {
		b.WriteString("<arg>")
		b.WriteString(strings.TrimSuffix(strings.TrimPrefix(EncodeSequence(a), "<result>"), "</result>"))
		b.WriteString("</arg>")
	}
	b.WriteString("</args>")
	return b.String()
}

// DecodeArgs parses an <args> payload.
func DecodeArgs(src string) ([]xdm.Sequence, error) {
	doc, err := markup.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("rest: malformed args payload: %w", err)
	}
	root := doc.DocumentElement()
	if root == nil || root.Name.Local != "args" {
		return nil, fmt.Errorf("rest: unexpected args payload")
	}
	var out []xdm.Sequence
	for _, arg := range root.Children() {
		if arg.Type != dom.ElementNode || arg.Name.Local != "arg" {
			continue
		}
		var seq xdm.Sequence
		for _, item := range arg.Children() {
			if item.Type != dom.ElementNode || item.Name.Local != "item" {
				continue
			}
			it, err := decodeItem(item)
			if err != nil {
				return nil, err
			}
			seq = append(seq, it)
		}
		out = append(out, seq)
	}
	return out, nil
}

// --- client ---------------------------------------------------------------------------

// Client issues REST calls from the engine, with an optional
// whole-document cache: "whole XML documents can be cached in the
// browser so that most user requests can be processed without any
// interaction with the Elsevier server" (§6.1).
type Client struct {
	HTTP *http.Client

	mu       sync.Mutex
	caching  bool
	cache    map[string]*dom.Node
	Fetches  int // network requests actually issued
	CacheHit int
}

// NewClient builds a client around an http.Client (nil uses the
// default).
func NewClient(h *http.Client) *Client {
	if h == nil {
		h = http.DefaultClient
	}
	return &Client{HTTP: h, cache: map[string]*dom.Node{}}
}

// EnableCache switches the whole-document cache on or off.
func (c *Client) EnableCache(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.caching = on
	if !on {
		c.cache = map[string]*dom.Node{}
	}
}

// ClearCache drops all cached documents.
func (c *Client) ClearCache() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache = map[string]*dom.Node{}
}

// Get fetches a URI and parses the body as XML, serving repeated
// fetches from the cache when enabled.
func (c *Client) Get(uri string) (*dom.Node, error) {
	c.mu.Lock()
	if c.caching {
		if doc, ok := c.cache[uri]; ok {
			c.CacheHit++
			c.mu.Unlock()
			return doc, nil
		}
	}
	c.mu.Unlock()

	resp, err := c.HTTP.Get(uri)
	if err != nil {
		return nil, fmt.Errorf("rest: GET %s: %w", uri, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rest: GET %s: %s: %s", uri, resp.Status, strings.TrimSpace(string(body)))
	}
	doc, err := markup.Parse(string(body))
	if err != nil {
		return nil, fmt.Errorf("rest: GET %s: parsing body: %w", uri, err)
	}
	doc.BaseURI = uri

	c.mu.Lock()
	c.Fetches++
	if c.caching {
		c.cache[uri] = doc
	}
	c.mu.Unlock()
	return doc, nil
}

// RegisterFunctions installs the rest: client functions:
//
//	rest:get($uri)        — synchronous GET returning the document (§5.1)
//	rest:get-text($uri)   — synchronous GET returning the raw body
func (c *Client) RegisterFunctions(reg *runtime.Registry) {
	name := func(local string) dom.QName {
		return dom.QName{Space: Namespace, Prefix: "rest", Local: local}
	}
	reg.Register(&runtime.Function{
		Name: name("get"), MinArgs: 1, MaxArgs: 1,
		Invoke: func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			it, err := xdm.AtomizeSequence(args[0]).One()
			if err != nil {
				return nil, err
			}
			doc, err := c.Get(it.String())
			if err != nil {
				return nil, err
			}
			return xdm.Singleton(xdm.NewNode(doc)), nil
		},
	})
	reg.Register(&runtime.Function{
		Name: name("get-text"), MinArgs: 1, MaxArgs: 1,
		Invoke: func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			it, err := xdm.AtomizeSequence(args[0]).One()
			if err != nil {
				return nil, err
			}
			resp, err := c.HTTP.Get(it.String())
			if err != nil {
				return nil, err
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				return nil, err
			}
			c.mu.Lock()
			c.Fetches++
			c.mu.Unlock()
			return xdm.Singleton(xdm.String(string(body))), nil
		},
	})
}

// Resolver returns a module resolver that materialises
// `import module namespace p = "uri" at "http://host/wsdl"` by fetching
// the service description and registering one proxy function per
// declared function — the paper's client side of §3.4. Each proxy call
// POSTs the arguments and decodes the result sequence.
func (c *Client) Resolver() runtime.ModuleResolver {
	return func(imp ast.ModuleImport, reg *runtime.Registry) error {
		if len(imp.Hints) == 0 {
			return fmt.Errorf("rest: import of %q needs an \"at\" location hint", imp.URI)
		}
		base := strings.TrimSuffix(imp.Hints[0], "/wsdl")
		resp, err := c.HTTP.Get(base + "/wsdl")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("rest: %s/wsdl: %s", base, resp.Status)
		}
		desc, err := markup.Parse(string(body))
		if err != nil {
			return fmt.Errorf("rest: parsing service description: %w", err)
		}
		root := desc.DocumentElement()
		if root == nil || root.Name.Local != "service" {
			return fmt.Errorf("rest: %s/wsdl is not a service description", base)
		}
		ns := root.AttrValue("namespace")
		if ns != imp.URI {
			return fmt.Errorf("rest: service namespace %q does not match import %q", ns, imp.URI)
		}
		for _, f := range root.Children() {
			if f.Type != dom.ElementNode || f.Name.Local != "function" {
				continue
			}
			fname := f.AttrValue("name")
			arity := 0
			fmt.Sscanf(f.AttrValue("arity"), "%d", &arity)
			callURL := base + "/call/" + fname
			reg.Register(&runtime.Function{
				Name:    dom.QName{Space: ns, Local: fname},
				MinArgs: arity, MaxArgs: arity,
				Invoke: func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
					return c.invoke(callURL, args)
				},
			})
		}
		return nil
	}
}

func (c *Client) invoke(callURL string, args []xdm.Sequence) (xdm.Sequence, error) {
	resp, err := c.HTTP.Post(callURL, "application/xml", strings.NewReader(EncodeArgs(args)))
	if err != nil {
		return nil, fmt.Errorf("rest: calling %s: %w", callURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.Fetches++
	c.mu.Unlock()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rest: %s: %s: %s", callURL, resp.Status, strings.TrimSpace(string(body)))
	}
	return DecodeSequence(string(body))
}
