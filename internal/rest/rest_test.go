package rest

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// The paper's §3.4 web service.
const mulService = `module namespace ex = "www.example.ch" port:2001;
declare option fn:webservice "true";
declare function ex:mul($a, $b) { $a * $b };
declare function ex:greet($name) { concat("hello ", $name) };
declare function ex:item($uri) { doc($uri)/catalog/item[1] };`

func newService(t *testing.T) (*ModuleServer, *httptest.Server) {
	t.Helper()
	docs := func(uri string) (*dom.Node, error) {
		return markup.Parse(`<catalog><item id="1">first</item><item id="2">second</item></catalog>`)
	}
	srv, err := NewModuleServer(mulService, docs)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestModuleServerValidation(t *testing.T) {
	if _, err := NewModuleServer(`1+1`, nil); err == nil {
		t.Error("main module must be rejected")
	}
	noOption := `module namespace x = "urn:x";
		declare function x:f() { 1 };`
	if _, err := NewModuleServer(noOption, nil); err == nil {
		t.Error("missing webservice option must be rejected")
	}
}

func TestModulePortDeclaration(t *testing.T) {
	srv, _ := newService(t)
	if srv.Port() != 2001 {
		t.Errorf("port = %d", srv.Port())
	}
	if srv.URI() != "www.example.ch" {
		t.Errorf("uri = %q", srv.URI())
	}
}

func TestWSDLDescription(t *testing.T) {
	_, ts := newService(t)
	resp, err := http.Get(ts.URL + "/wsdl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	out := string(buf[:n])
	for _, want := range []string{`namespace="www.example.ch"`, `name="mul" arity="2"`, `name="greet" arity="1"`} {
		if !strings.Contains(out, want) {
			t.Errorf("wsdl missing %q: %s", want, out)
		}
	}
}

func TestRemoteCallThroughImport(t *testing.T) {
	// The paper's §3.4 client: import the module and call ab:mul(2,5).
	_, ts := newService(t)
	client := NewClient(ts.Client())
	e := xquery.New(xquery.WithModuleResolver(client.Resolver()))
	q := `import module namespace ab = "www.example.ch" at "` + ts.URL + `/wsdl";
	      ab:mul(2, 5)`
	res, err := e.EvalQuery(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].String() != "10" {
		t.Errorf("ab:mul(2,5) = %v", res)
	}
	// String results.
	q2 := `import module namespace ab = "www.example.ch" at "` + ts.URL + `/wsdl";
	       ab:greet("world")`
	res, err = e.EvalQuery(q2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].String() != "hello world" {
		t.Errorf("greet = %v", res)
	}
	// Node results survive the wire.
	q3 := `import module namespace ab = "www.example.ch" at "` + ts.URL + `/wsdl";
	       string(ab:item("any")/@id)`
	res, err = e.EvalQuery(q3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].String() != "1" {
		t.Errorf("item id = %v", res)
	}
}

func TestPaperReplaceWithServiceResult(t *testing.T) {
	// §3.4: replace value of node html//input[@name="textbox"]/value
	// with ab:mul(2,5) — run against a small page.
	_, ts := newService(t)
	client := NewClient(ts.Client())
	e := xquery.New(xquery.WithModuleResolver(client.Resolver()))
	page, err := markup.Parse(`<html><input name="textbox"><value>0</value></input></html>`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := e.Compile(`import module namespace ab = "www.example.ch" at "` + ts.URL + `/wsdl";
		replace value of node /html//input[@name="textbox"]/value with ab:mul(2,5)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(xquery.RunConfig{ContextItem: xdm.NewNode(page), Sequential: true}); err != nil {
		t.Fatal(err)
	}
	got := page.Elements("value")[0].StringValue()
	if got != "10" {
		t.Errorf("value = %q", got)
	}
}

func TestCallErrors(t *testing.T) {
	_, ts := newService(t)
	client := NewClient(ts.Client())
	// Unknown function.
	_, err := client.invoke(ts.URL+"/call/nosuch", nil)
	if err == nil {
		t.Error("unknown function must fail")
	}
	// Wrong arity.
	_, err = client.invoke(ts.URL+"/call/mul", []xdm.Sequence{{xdm.Integer(1)}})
	if err == nil {
		t.Error("wrong arity must fail")
	}
}

func TestServerStats(t *testing.T) {
	srv, ts := newService(t)
	client := NewClient(ts.Client())
	_, _ = client.invoke(ts.URL+"/call/mul", []xdm.Sequence{{xdm.Integer(2)}, {xdm.Integer(3)}})
	_, _ = http.Get(ts.URL + "/wsdl")
	reqs, bytes, queries := srv.Stats.Snapshot()
	if reqs != 2 || queries != 1 || bytes == 0 {
		t.Errorf("stats = %d %d %d", reqs, bytes, queries)
	}
	srv.Stats.Reset()
	if r, _, _ := srv.Stats.Snapshot(); r != 0 {
		t.Error("reset failed")
	}
}

func TestSequenceWireFormatRoundTrip(t *testing.T) {
	el, _ := markup.Parse(`<book id="b1"><title>T &amp; A</title></book>`)
	in := xdm.Sequence{
		xdm.String("hello <world>"),
		xdm.Integer(-42),
		xdm.Double(1.5),
		xdm.Boolean(true),
		xdm.NewNode(el.DocumentElement()),
		xdm.UntypedAtomic("u"),
	}
	wire := EncodeSequence(in)
	out, err := DecodeSequence(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if _, isNode := xdm.IsNode(in[i]); isNode {
			n, _ := xdm.IsNode(out[i])
			if n.Name.Local != "book" || n.AttrValue("id") != "b1" {
				t.Errorf("node item mangled: %s", markup.Serialize(n))
			}
			continue
		}
		if out[i].String() != in[i].String() || out[i].Type() != in[i].Type() {
			t.Errorf("item %d: %v (%s) != %v (%s)", i, out[i], out[i].Type(), in[i], in[i].Type())
		}
	}
}

func TestArgsWireFormatRoundTrip(t *testing.T) {
	in := []xdm.Sequence{
		{xdm.Integer(1), xdm.Integer(2)},
		nil,
		{xdm.String("x")},
	}
	out, err := DecodeArgs(EncodeArgs(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || len(out[0]) != 2 || len(out[1]) != 0 || out[2][0].String() != "x" {
		t.Errorf("args = %v", out)
	}
}

func TestClientGetAndCache(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		_, _ = w.Write([]byte(`<doc n="` + r.URL.Path + `"/>`))
	}))
	defer ts.Close()

	c := NewClient(ts.Client())
	// No cache: every Get fetches.
	if _, err := c.Get(ts.URL + "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ts.URL + "/a"); err != nil {
		t.Fatal(err)
	}
	if hits != 2 || c.Fetches != 2 || c.CacheHit != 0 {
		t.Errorf("no-cache: hits=%d fetches=%d cacheHits=%d", hits, c.Fetches, c.CacheHit)
	}
	// Cache on: repeats are served locally.
	c.EnableCache(true)
	_, _ = c.Get(ts.URL + "/b")
	_, _ = c.Get(ts.URL + "/b")
	_, _ = c.Get(ts.URL + "/b")
	if hits != 3 || c.CacheHit != 2 {
		t.Errorf("cache: hits=%d cacheHits=%d", hits, c.CacheHit)
	}
	c.ClearCache()
	_, _ = c.Get(ts.URL + "/b")
	if hits != 4 {
		t.Error("ClearCache did not evict")
	}
}

func TestClientGetErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/bad" {
			http.Error(w, "nope", http.StatusNotFound)
			return
		}
		_, _ = w.Write([]byte(`not xml <<<`))
	}))
	defer ts.Close()
	c := NewClient(ts.Client())
	if _, err := c.Get(ts.URL + "/bad"); err == nil {
		t.Error("404 must fail")
	}
	if _, err := c.Get(ts.URL + "/malformed"); err == nil {
		t.Error("malformed XML must fail")
	}
}

func TestRestGetFunction(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`<weather><temp>21</temp></weather>`))
	}))
	defer ts.Close()
	c := NewClient(ts.Client())
	e := xquery.New(xquery.WithFunctions(c.RegisterFunctions))
	res, err := e.EvalQuery(`declare namespace rest = "`+Namespace+`";
		string(rest:get("`+ts.URL+`")/weather/temp)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].String() != "21" {
		t.Errorf("rest:get = %v", res)
	}
}

// Property: the sequence wire format round-trips arbitrary strings
// (escaping robustness).
func TestWireFormatStringProperty(t *testing.T) {
	f := func(s string) bool {
		if !utf8.ValidString(s) || strings.ContainsAny(s, "\x00\r") {
			return true // XML cannot carry these; out of scope
		}
		for _, r := range s {
			if r < 0x20 && r != '\t' && r != '\n' {
				return true
			}
		}
		in := xdm.Sequence{xdm.String(s)}
		out, err := DecodeSequence(EncodeSequence(in))
		if err != nil || len(out) != 1 {
			return false
		}
		return out[0].String() == s && out[0].Type() == xdm.TString
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: integers round trip exactly.
func TestWireFormatIntegerProperty(t *testing.T) {
	f := func(n int64) bool {
		out, err := DecodeSequence(EncodeSequence(xdm.Sequence{xdm.Integer(n)}))
		return err == nil && len(out) == 1 && out[0] == xdm.Integer(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
