package rest

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dom"
	"repro/internal/xqerr"
	"repro/internal/xquery"
)

// --- error taxonomy -------------------------------------------------------------

func TestStatusForMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("wrap: %w", xqerr.ErrInternal), http.StatusInternalServerError},
		{fmt.Errorf("wrap: %w", xquery.ErrBudgetExceeded), http.StatusUnprocessableEntity},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, http.StatusGatewayTimeout},
		{ErrOverloaded, http.StatusServiceUnavailable},
		{errors.New("unknown function"), http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.want {
			t.Errorf("statusFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{&StatusError{Status: 400}, false},
		{&StatusError{Status: 413}, false},
		{&StatusError{Status: 422}, false},
		{&StatusError{Status: 404}, false},
		{&StatusError{Status: 501}, false},
		{&StatusError{Status: 429}, true},
		{&StatusError{Status: 500}, true},
		{&StatusError{Status: 503}, true},
		{&StatusError{Status: 504}, true},
		{fmt.Errorf("cap: %w", ErrBodyTooLarge), false},
		{fmt.Errorf("parse: %w", ErrMalformedPayload), true},
		{errors.New("connection refused"), true},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestHandlerStatusTaxonomy exercises the HTTP-visible half of the
// mapping: deterministic budget exhaustion is a terminal 422,
// malformed calls stay 400, oversized bodies are 413.
func TestHandlerStatusTaxonomy(t *testing.T) {
	srv, err := NewModuleServer(`module namespace x = "urn:x";
declare option fn:webservice "true";
declare function x:spin($n) { count((1 to $n)[. mod 2 = 0]) };
declare function x:id($v) { $v };`, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxSteps = 500
	srv.MaxBody = 256
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	post := func(name, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/call/"+name, "application/xml", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	intArg := func(n int) string {
		return fmt.Sprintf(`<args><arg><item type="xs:integer">%d</item></arg></args>`, n)
	}
	if got := post("id", intArg(7)); got != http.StatusOK {
		t.Errorf("healthy call: %d", got)
	}
	if got := post("spin", intArg(1000000)); got != http.StatusUnprocessableEntity {
		t.Errorf("budget exhaustion: %d, want 422", got)
	}
	if got := post("nope", intArg(1)); got != http.StatusBadRequest {
		t.Errorf("unknown function: %d, want 400", got)
	}
	if got := post("id", "<args><arg"); got != http.StatusBadRequest {
		t.Errorf("malformed args: %d, want 400", got)
	}
	big := `<args><arg><item type="xs:string">` + strings.Repeat("x", 1024) + `</item></arg></args>`
	if got := post("id", big); got != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d, want 413", got)
	}
}

// TestHandlerShedsOverload: with MaxConcurrent saturated by a slow
// call, further calls get 503 immediately.
func TestHandlerShedsOverload(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	srv, err := NewModuleServer(`module namespace x = "urn:x";
declare option fn:webservice "true";
declare function x:get($u) { doc($u) };`, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.docs = func(uri string) (*dom.Node, error) {
		started <- struct{}{}
		<-release
		return nil, errors.New("released")
	}
	srv.MaxConcurrent = 1
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/call/get", "application/xml",
			strings.NewReader(`<args><arg><item type="xs:string">u</item></arg></args>`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started // the slow call holds the only slot

	resp, err := http.Post(ts.URL+"/call/get", "application/xml",
		strings.NewReader(`<args><arg><item type="xs:string">u</item></arg></args>`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("overloaded call: %d, want 503", resp.StatusCode)
	}
	close(release)
	wg.Wait()
}

// --- client body cap and cache --------------------------------------------------

func TestClientBodyCap(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "<d>%s</d>", strings.Repeat("x", 4096))
	}))
	t.Cleanup(ts.Close)
	c := NewClient(nil)
	c.MaxBody = 128
	if _, err := c.Get(ts.URL); !errors.Is(err, ErrBodyTooLarge) {
		t.Errorf("want ErrBodyTooLarge, got %v", err)
	}
	c.MaxBody = 8192
	if _, err := c.Get(ts.URL); err != nil {
		t.Errorf("body under the cap must fetch: %v", err)
	}
}

func TestClientCacheLRUEviction(t *testing.T) {
	var mu sync.Mutex
	served := map[string]int{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		served[r.URL.Path]++
		mu.Unlock()
		fmt.Fprintf(w, "<d path=%q/>", r.URL.Path)
	}))
	t.Cleanup(ts.Close)

	c := NewClient(nil)
	c.EnableCache(true)
	c.SetCacheCapacity(2)
	get := func(p string) {
		t.Helper()
		if _, err := c.Get(ts.URL + p); err != nil {
			t.Fatal(err)
		}
	}
	get("/a")
	get("/b")
	get("/a") // refresh /a: now /b is the LRU entry
	get("/c") // evicts /b
	get("/a") // still cached
	get("/b") // refetched

	mu.Lock()
	defer mu.Unlock()
	if served["/a"] != 1 {
		t.Errorf("/a fetched %d times, want 1 (LRU refresh should have kept it)", served["/a"])
	}
	if served["/b"] != 2 {
		t.Errorf("/b fetched %d times, want 2 (evicted as LRU)", served["/b"])
	}
	st := c.CacheStats()
	if st.Size != 2 || st.Capacity != 2 || !st.Enabled {
		t.Errorf("stats = %+v", st)
	}
	if st.Evictions == 0 || st.Hits == 0 || st.Misses == 0 {
		t.Errorf("counter snapshot looks wrong: %+v", st)
	}
}

// TestChaosClientCacheRace hammers Get / EnableCache / ClearCache /
// SetCacheCapacity / CacheStats concurrently; run under -race.
func TestChaosClientCacheRace(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "<d path=%q/>", r.URL.Path)
	}))
	t.Cleanup(ts.Close)
	c := NewClient(nil)
	c.EnableCache(true)
	c.SetCacheCapacity(4)

	var wg sync.WaitGroup
	deadline := time.Now().Add(300 * time.Millisecond)
	done := func() bool { return time.Now().After(deadline) }
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; !done(); j++ {
				if _, err := c.Get(fmt.Sprintf("%s/doc-%d", ts.URL, (i+j)%8)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !done(); i++ {
			switch i % 4 {
			case 0:
				c.EnableCache(i%8 == 0)
			case 1:
				c.ClearCache()
			case 2:
				c.SetCacheCapacity(1 + i%5)
			case 3:
				_ = c.CacheStats()
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
}

// --- resolver arity validation --------------------------------------------------

func TestFetchDescriptionRejectsBadArity(t *testing.T) {
	for _, arity := range []string{"zork", "", "-2", "3x"} {
		desc := fmt.Sprintf(`<service namespace="urn:x"><function name="f" arity="%s"/></service>`, arity)
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, desc)
		}))
		_, _, err := FetchDescription(context.Background(), nil, ts.URL, 0)
		ts.Close()
		if !errors.Is(err, ErrMalformedPayload) {
			t.Errorf("arity %q: want ErrMalformedPayload, got %v", arity, err)
		}
	}
	// A well-formed description still resolves.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<service namespace="urn:x"><function name="f" arity="2"/></service>`)
	}))
	t.Cleanup(ts.Close)
	ns, fns, err := FetchDescription(context.Background(), nil, ts.URL, 0)
	if err != nil || ns != "urn:x" || len(fns) != 1 || fns[0].Arity != 2 {
		t.Errorf("ns=%q fns=%v err=%v", ns, fns, err)
	}
}
