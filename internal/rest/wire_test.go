package rest

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xdm"
)

// atomicPool lists, per atomic type, lexical values that survive the
// wire (the decoder casts the transported lexical form back, so any
// value whose String() re-casts to itself round-trips).
var atomicPool = map[string][]string{
	"xs:untypedAtomic":     {"", "plain", "white  space", "<&>\"'", "ünïcode ☃"},
	"xs:string":            {"", "hello", "a<b&c>d", "tab\tand\nnewline", "]]>"},
	"xs:anyURI":            {"http://example.com/a?b=c&d=e", "urn:x"},
	"xs:boolean":           {"true", "false"},
	"xs:integer":           {"0", "42", "-7", "9223372036854775807"},
	"xs:decimal":           {"3.14", "-0.5", "100"},
	"xs:double":            {"1.5E3", "-2.25", "0.5"},
	"xs:date":              {"2024-01-15", "1999-12-31"},
	"xs:time":              {"12:30:45", "00:00:00"},
	"xs:dateTime":          {"2024-01-15T12:30:45", "2000-02-29T23:59:59"},
	"xs:duration":          {"P1Y2M3DT4H5M6S", "PT0S"},
	"xs:yearMonthDuration": {"P2Y3M", "P1M"},
	"xs:dayTimeDuration":   {"P1DT2H", "PT3.5S"},
	"xs:QName":             {"local", "pre:fixed"},
}

// randomAtomic builds one typed atomic item from the pool.
func randomAtomic(t *testing.T, rng *rand.Rand) xdm.Item {
	t.Helper()
	names := make([]string, 0, len(atomicPool))
	for n := range atomicPool {
		names = append(names, n)
	}
	// Map iteration order is random; sort for reproducible rng use.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	name := names[rng.Intn(len(names))]
	lex := atomicPool[name][rng.Intn(len(atomicPool[name]))]
	typ, ok := xdm.AtomicTypeByName(strings.TrimPrefix(name, "xs:"))
	if !ok {
		t.Fatalf("unknown type %s", name)
	}
	v, err := xdm.Cast(xdm.String(lex), typ)
	if err != nil {
		t.Fatalf("pool value %q is not a valid %s: %v", lex, name, err)
	}
	return v
}

// randomNode builds a node item: an element with attributes and
// namespaces, or a document node carrying a base URI.
func randomNode(t *testing.T, rng *rand.Rand) xdm.Item {
	t.Helper()
	srcs := []string{
		`<r/>`,
		`<r id="1" class="x y"><c a="&lt;&amp;&gt;"/>text</r>`,
		`<a:root xmlns:a="urn:a" xmlns:b="urn:b"><b:kid b:attr="v"/></a:root>`,
		`<r>mixed <em>content</em> tail</r>`,
	}
	doc, err := markup.Parse(srcs[rng.Intn(len(srcs))])
	if err != nil {
		t.Fatal(err)
	}
	if rng.Intn(2) == 0 {
		doc.BaseURI = "urn:doc-" + string(rune('a'+rng.Intn(26)))
		return xdm.NewNode(doc)
	}
	return xdm.NewNode(doc.DocumentElement())
}

// itemEq compares a decoded item against its original: nodes by
// serialization (plus document identity), atomics by type and lexical
// value.
func itemEq(t *testing.T, orig, got xdm.Item) bool {
	t.Helper()
	on, oIsNode := xdm.IsNode(orig)
	gn, gIsNode := xdm.IsNode(got)
	if oIsNode != gIsNode {
		return false
	}
	if oIsNode {
		if markup.Serialize(on) != markup.Serialize(gn) {
			return false
		}
		if on.Type == dom.DocumentNode && on.BaseURI != "" {
			return gn.Type == dom.DocumentNode && gn.BaseURI == on.BaseURI
		}
		return true
	}
	return orig.Type() == got.Type() && orig.String() == got.String()
}

// TestWireRoundTripProperty: DecodeSequence(EncodeSequence(s)) == s
// over generated sequences of every atomic type, nodes with
// attributes and namespaces, documents with URIs, and the empty
// sequence.
func TestWireRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(8) // includes the empty sequence
		seq := make(xdm.Sequence, 0, n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				seq = append(seq, randomNode(t, rng))
			} else {
				seq = append(seq, randomAtomic(t, rng))
			}
		}
		wire := EncodeSequence(seq)
		back, err := DecodeSequence(wire)
		if err != nil {
			t.Fatalf("trial %d: decode failed: %v\nwire: %s", trial, err, wire)
		}
		if len(back) != len(seq) {
			t.Fatalf("trial %d: %d items in, %d out\nwire: %s", trial, len(seq), len(back), wire)
		}
		for i := range seq {
			if !itemEq(t, seq[i], back[i]) {
				t.Fatalf("trial %d item %d: %v (%v) != %v (%v)\nwire: %s",
					trial, i, seq[i], seq[i].Type(), back[i], back[i].Type(), wire)
			}
		}
		// Keys line up with document items.
		_, keys, err := DecodeSequenceKeyed(wire)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			wantKey := ""
			if n, ok := xdm.IsNode(seq[i]); ok && n.Type == dom.DocumentNode {
				wantKey = n.BaseURI
			}
			if keys[i] != wantKey {
				t.Fatalf("trial %d item %d: key %q, want %q", trial, i, keys[i], wantKey)
			}
		}
	}
}

// TestArgsRoundTrip covers the <args> framing around the item format.
func TestArgsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	args := []xdm.Sequence{
		{},
		{randomAtomic(t, rng)},
		{randomAtomic(t, rng), randomNode(t, rng), randomAtomic(t, rng)},
	}
	back, err := DecodeArgs(EncodeArgs(args))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(args) {
		t.Fatalf("%d args in, %d out", len(args), len(back))
	}
	for i := range args {
		if len(back[i]) != len(args[i]) {
			t.Fatalf("arg %d: %d items in, %d out", i, len(args[i]), len(back[i]))
		}
		for j := range args[i] {
			if !itemEq(t, args[i][j], back[i][j]) {
				t.Fatalf("arg %d item %d differs", i, j)
			}
		}
	}
}

// FuzzDecodeSequence: arbitrary bytes must decode or error, never
// panic, and anything that decodes must re-encode and decode again
// stably.
func FuzzDecodeSequence(f *testing.F) {
	f.Add("<result></result>")
	f.Add(`<result><item type="xs:integer">42</item></result>`)
	f.Add(`<result><item kind="node" uri="u"><d/></item></result>`)
	f.Add(`<result><item kind="node"><a b="c">t</a></item></result>`)
	f.Add(`<result><item type="xs:zork">?</item></result>`)
	f.Add(`<result><item `)
	f.Add(`<nonsense/>`)
	f.Add("")
	f.Add(string([]byte{0xff, 0xfe, '<', 'r', '>'}))
	f.Fuzz(func(t *testing.T, src string) {
		seq, err := DecodeSequence(src)
		if err != nil {
			return
		}
		wire := EncodeSequence(seq)
		again, err := DecodeSequence(wire)
		if err != nil {
			t.Fatalf("re-decode of re-encoded %q failed: %v (wire %q)", src, err, wire)
		}
		if len(again) != len(seq) {
			t.Fatalf("re-decode changed length: %d -> %d (src %q)", len(seq), len(again), src)
		}
	})
}
