package serve

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/xquery"
)

// benchSrc mirrors cmd/benchserve: a heavy prolog the cache amortises
// plus a cheap body executed per request.
func benchSrc() string {
	var b strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "declare function local:f%d($x) { $x + %d };\n", i, i)
	}
	b.WriteString("for $i in 1 to 5 return local:f0($i)")
	return b.String()
}

func BenchmarkEvalCompilePerRequest(b *testing.B) {
	e := xquery.New()
	src := benchSrc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.EvalQuery(src, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalCached(b *testing.B) {
	p := NewPool(Config{MaxSessions: 4})
	src := benchSrc()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Eval(ctx, src, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalCachedParallel(b *testing.B) {
	p := NewPool(Config{MaxSessions: 4})
	src := benchSrc()
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := p.Eval(ctx, src, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPageLoadDirect(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.LoadPage(counterPage, pageHref); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageLoadPooled(b *testing.B) {
	p := NewPool(Config{MaxSessions: 8})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := p.Load(ctx, counterPage, pageHref)
		if err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}
