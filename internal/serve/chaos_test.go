package serve

// Chaos suite: drives the fault-injection matrix through the serving
// layer and checks the fault-tolerance contract — fault in, typed error
// out, pool still serviceable, documents and counters consistent. Run
// race-enabled via `make chaos`.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/dom/index"
	"repro/internal/faultpoint"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xqerr"
	"repro/internal/xquery"
	"repro/internal/xquery/parser"
	"repro/internal/xquery/runtime"
	"repro/internal/xquery/update"
)

// chaosModule backs the resolver-retry scenario.
const chaosModule = `module namespace m = "urn:chaos";
declare function m:square($x) { $x * $x };`

// panickingEngine returns an engine with a browser:chaos-panic()
// extension whose invocation panics — the realistic stand-in for a
// buggy host extension.
func panickingEngine() *xquery.Engine {
	return xquery.New(xquery.WithFunctions(func(reg *runtime.Registry) {
		reg.Register(&runtime.Function{
			Name:    dom.QName{Space: parser.BrowserNamespace, Prefix: "browser", Local: "chaos-panic"},
			MinArgs: 0, MaxArgs: 0,
			Invoke: func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
				panic("chaos: deliberate extension panic")
			},
		})
	}))
}

// evalHealthy asserts the pool still answers a trivial query — the
// "stays serviceable" leg of every scenario.
func evalHealthy(t *testing.T, p *Pool) {
	t.Helper()
	seq, err := p.Eval(context.Background(), "1+1", nil)
	if err != nil {
		t.Fatalf("healthy eval failed: %v", err)
	}
	if len(seq) != 1 || seq[0].String() != "2" {
		t.Fatalf("healthy eval = %v", seq)
	}
}

func TestChaosMatrix(t *testing.T) {
	defer faultpoint.Reset()
	ctx := context.Background()

	t.Run("dispatch error degrades one turn", func(t *testing.T) {
		defer faultpoint.Reset()
		p := NewPool(Config{})
		defer p.Shutdown(ctx)
		s, err := p.Load(ctx, counterPage, "http://chaos.test/")
		if err != nil {
			t.Fatal(err)
		}
		faultpoint.Enable(faultpoint.PointServeDispatch, faultpoint.Nth(1))
		if err := s.Click(ctx, "b"); !errors.Is(err, faultpoint.ErrInjected) {
			t.Fatalf("want injected dispatch error, got %v", err)
		}
		// The very next turn works and the failed turn left no trace.
		if err := s.Click(ctx, "b"); err != nil {
			t.Fatalf("session not serviceable after fault: %v", err)
		}
		if got := counterValue(t, s); got != "1" {
			t.Errorf("counter = %q, want 1 (failed turn must not count)", got)
		}
	})

	t.Run("dispatch panic is recovered and typed", func(t *testing.T) {
		defer faultpoint.Reset()
		p := NewPool(Config{})
		defer p.Shutdown(ctx)
		s, err := p.Load(ctx, counterPage, "http://chaos.test/")
		if err != nil {
			t.Fatal(err)
		}
		before := xqerr.Recovered()
		faultpoint.Enable(faultpoint.PointServeDispatch, faultpoint.Nth(1), faultpoint.WithPanic())
		err = s.Click(ctx, "b")
		if !errors.Is(err, xqerr.ErrInternal) {
			t.Fatalf("want xqerr.ErrInternal, got %v", err)
		}
		var ie *xqerr.Internal
		if !errors.As(err, &ie) || ie.Fingerprint == "" {
			t.Fatalf("internal error must carry a stack fingerprint: %#v", err)
		}
		if xqerr.Recovered() <= before {
			t.Error("recovered-panic counter did not advance")
		}
		if err := s.Click(ctx, "b"); err != nil {
			t.Fatalf("session not serviceable after panic: %v", err)
		}
		evalHealthy(t, p)
	})

	t.Run("repeated panics quarantine the program", func(t *testing.T) {
		defer faultpoint.Reset()
		p := NewPool(Config{Engine: panickingEngine()})
		defer p.Shutdown(ctx)
		const bad = "browser:chaos-panic()"
		for i := 0; i < xquery.QuarantineThreshold; i++ {
			if _, err := p.Eval(ctx, bad, nil); !errors.Is(err, xqerr.ErrInternal) {
				t.Fatalf("eval %d: want internal error, got %v", i, err)
			}
		}
		if _, err := p.Eval(ctx, bad, nil); !errors.Is(err, xquery.ErrQuarantined) {
			t.Fatalf("want quarantine after %d panics, got %v", xquery.QuarantineThreshold, err)
		}
		if got := p.Metrics().Failures.Quarantined; got < 1 {
			t.Errorf("Failures.Quarantined = %d, want >= 1", got)
		}
		evalHealthy(t, p) // other programs unaffected
	})

	t.Run("failed update rolls back atomically", func(t *testing.T) {
		defer faultpoint.Reset()
		p := NewPool(Config{})
		defer p.Shutdown(ctx)
		doc, err := markup.Parse(`<r><x/></r>`)
		if err != nil {
			t.Fatal(err)
		}
		before := markup.Serialize(doc)
		rollbacks := update.Rollbacks()
		// First insert applies, second hits the fault: all-or-nothing
		// demands the first is undone too.
		faultpoint.Enable(faultpoint.PointUpdateApply, faultpoint.Nth(2))
		_, err = p.Eval(ctx, `(insert node <a/> into /r, insert node <b/> into /r)`, doc)
		if !errors.Is(err, faultpoint.ErrInjected) {
			t.Fatalf("want injected apply error, got %v", err)
		}
		if got := markup.Serialize(doc); got != before {
			t.Fatalf("document changed across failed update:\n before %s\n after  %s", before, got)
		}
		if update.Rollbacks() <= rollbacks {
			t.Error("rollback counter did not advance")
		}
		faultpoint.Reset()
		// The same update succeeds once the fault clears.
		if _, err := p.Eval(ctx, `(insert node <a/> into /r, insert node <b/> into /r)`, doc); err != nil {
			t.Fatalf("retry after fault cleared: %v", err)
		}
		if got := markup.Serialize(doc); got == before {
			t.Error("successful retry applied nothing")
		}
	})

	t.Run("resolver load retries transient faults", func(t *testing.T) {
		defer faultpoint.Reset()
		e := xquery.New(
			xquery.WithModuleResolver(xquery.NewLocalResolver(map[string]string{"urn:chaos": chaosModule})),
			xquery.WithResolverRetry(2, 0),
		)
		p := NewPool(Config{Engine: e})
		defer p.Shutdown(ctx)
		retries := runtime.ResolverRetries()
		faultpoint.Enable(faultpoint.PointResolverLoad, faultpoint.Nth(1))
		seq, err := p.Eval(ctx, `import module namespace m = "urn:chaos"; m:square(7)`, nil)
		if err != nil {
			t.Fatalf("compile should survive one transient resolver fault: %v", err)
		}
		if len(seq) != 1 || seq[0].String() != "49" {
			t.Fatalf("result = %v", seq)
		}
		if runtime.ResolverRetries() <= retries {
			t.Error("resolver-retry counter did not advance")
		}
	})

	t.Run("full queue sheds with ErrOverloaded", func(t *testing.T) {
		defer faultpoint.Reset()
		p := NewPool(Config{MaxQueue: 1})
		defer p.Shutdown(ctx)
		s, err := p.Load(ctx, counterPage, "http://chaos.test/")
		if err != nil {
			t.Fatal(err)
		}
		started := make(chan struct{})
		release := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Do(ctx, func(h *core.Host) error {
				close(started)
				<-release
				return nil
			})
		}()
		<-started
		if err := s.Click(ctx, "b"); !errors.Is(err, ErrOverloaded) {
			t.Errorf("want ErrOverloaded while a turn is in flight, got %v", err)
		}
		close(release)
		wg.Wait()
		if err := s.Click(ctx, "b"); err != nil {
			t.Fatalf("session not serviceable after shedding: %v", err)
		}
		if got := p.Metrics().Failures.Shed; got < 1 {
			t.Errorf("Failures.Shed = %d, want >= 1", got)
		}
	})

	t.Run("index build fault degrades to scanning", func(t *testing.T) {
		defer faultpoint.Reset()
		p := NewPool(Config{})
		defer p.Shutdown(ctx)
		var b []byte
		b = append(b, "<cat>"...)
		for i := 0; i < 50; i++ {
			b = append(b, fmt.Sprintf(`<item n="%d"/>`, i)...)
		}
		b = append(b, "</cat>"...)
		doc, err := markup.Parse(string(b))
		if err != nil {
			t.Fatal(err)
		}
		faultpoint.Enable(faultpoint.PointIndexBuild, faultpoint.Always())
		builds := index.Snapshot().Builds
		seq, err := p.Eval(ctx, `count(//item)`, doc)
		if err != nil {
			t.Fatalf("query must degrade to scanning, got %v", err)
		}
		if len(seq) != 1 || seq[0].String() != "50" {
			t.Fatalf("degraded count = %v, want 50", seq)
		}
		if got := index.Snapshot().Builds; got != builds {
			t.Errorf("index built under an always-failing fault point (%d -> %d)", builds, got)
		}
		faultpoint.Reset()
		// Once the fault clears the same query goes back to indexes.
		if seq, err := p.Eval(ctx, `count(//item)`, doc); err != nil || seq[0].String() != "50" {
			t.Fatalf("post-fault count = %v, %v", seq, err)
		}
	})

	t.Run("seeded panic storm under load", func(t *testing.T) {
		defer faultpoint.Reset()
		p := NewPool(Config{})
		defer p.Shutdown(ctx)
		const sessions, clicks = 4, 25
		ss := make([]*Session, sessions)
		for i := range ss {
			s, err := p.Load(ctx, counterPage, "http://chaos.test/")
			if err != nil {
				t.Fatal(err)
			}
			ss[i] = s
		}
		faultpoint.Enable(faultpoint.PointServeDispatch, faultpoint.Seeded(42, 0.3), faultpoint.WithPanic())
		var wg sync.WaitGroup
		errc := make(chan error, sessions*clicks)
		for _, s := range ss {
			wg.Add(1)
			go func(s *Session) {
				defer wg.Done()
				for i := 0; i < clicks; i++ {
					if err := s.Click(ctx, "b"); err != nil {
						errc <- err
					}
				}
			}(s)
		}
		wg.Wait()
		close(errc)
		faulted := 0
		for err := range errc {
			if !errors.Is(err, xqerr.ErrInternal) {
				t.Fatalf("storm produced a non-internal error: %v", err)
			}
			faulted++
		}
		if faulted == 0 {
			t.Fatal("seeded trigger at rate 0.3 never fired over 100 turns")
		}
		faultpoint.Reset()
		// Every session survived its panics.
		for i, s := range ss {
			if err := s.Click(ctx, "b"); err != nil {
				t.Fatalf("session %d dead after storm: %v", i, err)
			}
		}
		evalHealthy(t, p)
		if m := p.Metrics(); m.Failures.PanicsRecovered < int64(faulted) {
			t.Errorf("PanicsRecovered = %d, want >= %d", m.Failures.PanicsRecovered, faulted)
		}
	})

	// The acceptance gate: after the matrix, every failure-mode counter
	// has seen traffic.
	t.Run("all failure counters advanced", func(t *testing.T) {
		if n := xqerr.Recovered(); n < 1 {
			t.Errorf("PanicsRecovered = %d", n)
		}
		if n := update.Rollbacks(); n < 1 {
			t.Errorf("Rollbacks = %d", n)
		}
		if n := runtime.ResolverRetries(); n < 1 {
			t.Errorf("ResolverRetries = %d", n)
		}
	})
}
