package serve

import (
	"context"
	"testing"
)

// ftPage runs an ftcontains query on load, so serving it exercises the
// full-text index layer end to end.
const ftPage = `<html><head><script type="text/xquery">
replace value of node //span[@id="hit"]
with string((//p[. ftcontains "marlin"]/@id)[1])
</script></head><body>
<p id="p1">the marlin circles the coral reef</p>
<p id="p2">no fish here</p>
<span id="hit"></span>
</body></html>`

// TestMetricsFullTextCounters: serving a page whose script evaluates
// ftcontains must advance the pool's FullText metrics — the index
// layer's builds and probe hits are visible to operators, not just to
// per-query profilers.
func TestMetricsFullTextCounters(t *testing.T) {
	p := NewPool(Config{MaxSessions: 2})
	before := p.Metrics().FullText

	s, err := p.Load(context.Background(), ftPage, "http://serve.example.com/ft")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	after := p.Metrics().FullText
	if after.Builds <= before.Builds {
		t.Errorf("FullText.Builds did not grow: %d -> %d", before.Builds, after.Builds)
	}
	if after.Hits <= before.Hits {
		t.Errorf("FullText.Hits did not grow: %d -> %d", before.Hits, after.Hits)
	}
	if after.Loads < before.Loads {
		t.Errorf("FullText.Loads went backwards: %d -> %d", before.Loads, after.Loads)
	}
}
