package serve

import (
	"sync/atomic"
	"time"

	"repro/internal/xmldb"
	"repro/internal/xquery"
)

// Latency buckets for the observability snapshot: upper bounds of the
// first len(bucketBounds) buckets; the last bucket is the overflow.
var bucketBounds = []time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// BucketLabels names the latency buckets of a LatencyHist, index for
// index.
var BucketLabels = []string{"<100us", "<1ms", "<10ms", "<100ms", "<1s", ">=1s"}

// hist is a lock-free latency histogram.
type hist struct {
	counts [6]atomic.Int64
	total  atomic.Int64
	nanos  atomic.Int64
}

func (h *hist) observe(d time.Duration) {
	i := 0
	for i < len(bucketBounds) && d >= bucketBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.nanos.Add(int64(d))
}

func (h *hist) snapshot() LatencyHist {
	var s LatencyHist
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	s.Count = h.total.Load()
	s.TotalNanos = h.nanos.Load()
	return s
}

// LatencyHist is a snapshot of a latency histogram; Buckets[i] counts
// observations in the bucket named BucketLabels[i].
type LatencyHist struct {
	Count      int64    `json:"count"`
	TotalNanos int64    `json:"total_nanos"`
	Buckets    [6]int64 `json:"buckets"`
}

// Mean returns the average observed latency (0 when empty).
func (l LatencyHist) Mean() time.Duration {
	if l.Count == 0 {
		return 0
	}
	return time.Duration(l.TotalNanos / l.Count)
}

// Metrics is the pool's observability snapshot, pollable at any time
// (Pool.Metrics) and JSON-serialisable for dashboards.
type Metrics struct {
	// SessionsActive is the number of sessions currently loaded.
	SessionsActive int64 `json:"sessions_active"`
	// SessionsPeak is the high-water mark of concurrently active
	// sessions.
	SessionsPeak int64 `json:"sessions_peak"`
	// SessionsLoaded counts sessions loaded successfully since start.
	SessionsLoaded int64 `json:"sessions_loaded"`
	// SessionsRejected counts load attempts denied (pool shut down,
	// wait cancelled) or failed.
	SessionsRejected int64 `json:"sessions_rejected"`
	// Events counts per-session event-loop turns (Do/Click/Keyup).
	Events int64 `json:"events"`
	// QueriesRejected counts Pool.Eval calls refused by the static
	// analyzer under Config.Strict (error matching
	// xquery.ErrAnalysisFailed).
	QueriesRejected int64 `json:"queries_rejected"`
	// Loads is the page-load latency histogram.
	Loads LatencyHist `json:"loads"`
	// Queries is the shared-engine query latency histogram
	// (Pool.Eval).
	Queries LatencyHist `json:"queries"`
	// Dispatches is the event-turn latency histogram.
	Dispatches LatencyHist `json:"dispatches"`
	// Cache is the shared program cache's counters.
	Cache xquery.CacheStats `json:"cache"`
	// Index is the per-document path-index layer's counters. They are
	// process-wide (internal/dom/index keeps global atomics), not
	// per-pool: two pools in one process report the same numbers.
	Index IndexStats `json:"index"`
	// FullText is the per-document full-text-index layer's counters
	// (process-wide, like Index).
	FullText FullTextStats `json:"fulltext"`
	// Updates is the update-independence partitioner's counters
	// (process-wide, like Index): how many dead primitives were
	// eliminated, how many independent groups applied, and how many
	// applies ran groups concurrently.
	Updates UpdateStats `json:"updates"`
	// Failures is the resilience layer's snapshot: every degraded-mode
	// mechanism reports here, so "is the pool absorbing faults" is one
	// poll away.
	Failures FailureStats `json:"failures"`
	// Store is the bound document store's counters (Config.Store); nil
	// when the pool serves without one.
	Store *xmldb.StatsSnapshot `json:"store,omitempty"`
}

// FailureStats aggregates the failure-handling counters. Shed and
// Quarantined are per-pool; PanicsRecovered, Rollbacks and
// ResolverRetries are process-wide (like Index: the underlying layers
// keep global atomics), so two pools in one process report the same
// numbers for those.
type FailureStats struct {
	// PanicsRecovered counts panics recovered into xqerr.ErrInternal
	// errors at any evaluation boundary.
	PanicsRecovered int64 `json:"panics_recovered"`
	// Rollbacks counts pending-update applications that failed mid-way
	// and rolled the documents back.
	Rollbacks int64 `json:"rollbacks"`
	// ResolverRetries counts module-resolver load attempts that were
	// retried after a failure.
	ResolverRetries int64 `json:"resolver_retries"`
	// Shed counts event-loop turns refused with ErrOverloaded under
	// Config.MaxQueue.
	Shed int64 `json:"shed"`
	// Quarantined counts evaluations refused because the program
	// crashed xquery.QuarantineThreshold times in a row (mirrors
	// Cache.Quarantined).
	Quarantined int64 `json:"quarantined"`
	// FedRetries, FedHedges, FedBreakerOpens, FedBreakerSkips and
	// FedPartials mirror the federation layer's process-wide counters
	// (internal/fed): sub-requests retried after transient failures,
	// hedged attempts launched, circuit breakers opened, attempts
	// skipped on open breakers, and gathers degraded to partial
	// results.
	FedRetries      int64 `json:"fed_retries"`
	FedHedges       int64 `json:"fed_hedges"`
	FedBreakerOpens int64 `json:"fed_breaker_opens"`
	FedBreakerSkips int64 `json:"fed_breaker_skips"`
	FedPartials     int64 `json:"fed_partials"`
}

// UpdateStats mirrors update.Stats with JSON tags: Eliminated counts
// dead update primitives dropped before apply, Groups counts
// independent groups applied (Groups over total applies is the mean
// partition width), and ParallelApplies counts PUL applications that
// ran at least two groups concurrently.
type UpdateStats struct {
	Eliminated      int64 `json:"eliminated"`
	Groups          int64 `json:"groups"`
	ParallelApplies int64 `json:"parallel_applies"`
}

// IndexStats mirrors index.Stats with JSON tags: Builds counts index
// (re)builds — one per document version that was actually probed —
// and Hits counts path steps or fn:id lookups answered from an index
// instead of a tree walk.
type IndexStats struct {
	Builds int64 `json:"builds"`
	Hits   int64 `json:"hits"`
}

// FullTextStats mirrors the full-text index package's Stats with JSON
// tags: Builds counts full-text index constructions, Hits counts
// ftcontains selections and candidate enumerations answered from an
// index, and Loads counts indexes attached from a store's persisted
// sidecars instead of built.
type FullTextStats struct {
	Builds int64 `json:"builds"`
	Hits   int64 `json:"hits"`
	Loads  int64 `json:"loads"`
}
