// Package serve is the concurrent serving layer: it turns the
// single-page plug-in host (internal/core) and the shared engine
// (internal/xquery) into a subsystem that serves many pages, sessions
// and queries at once — the production-scale posture the ROADMAP's
// north star asks for.
//
// The architecture is compile-once/run-many (after Tout-XML-style
// mediation): one engine and one program cache are shared by every
// request, so repeated queries skip parse/compile; every session keeps
// its own DOM, browser state and update application, so evaluation is
// shared while side effects stay transactional per session (FLUX-style
// separation). A bounded session pool gives backpressure, per-session
// event dispatch keeps each page's event loop single-threaded, and
// everything honors context cancellation end to end.
package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/dom/index"
	"repro/internal/faultpoint"
	"repro/internal/fed"
	ftindex "repro/internal/fulltext/index"
	"repro/internal/xdm"
	"repro/internal/xmldb"
	"repro/internal/xqerr"
	"repro/internal/xquery"
	"repro/internal/xquery/runtime"
	"repro/internal/xquery/update"
)

// Sentinel errors; applications match them with errors.Is (the facade
// re-exports them).
var (
	// ErrPoolClosed reports an operation on a pool after Shutdown.
	ErrPoolClosed = errors.New("serve: pool is shut down")
	// ErrSessionClosed reports an event sent to a closed session.
	ErrSessionClosed = errors.New("serve: session is closed")
	// ErrOverloaded reports an event-loop turn shed because the
	// session's queue was already at Config.MaxQueue — the load-shedding
	// alternative to unbounded blocking: the caller hears "back off"
	// immediately instead of piling onto a stuck session.
	ErrOverloaded = errors.New("serve: session overloaded")
)

// Config parameterises a Pool. The zero value is usable: 64 sessions,
// a default-capacity cache, unlimited per-query budgets and a fresh
// shared engine.
type Config struct {
	// MaxSessions bounds concurrently loaded sessions; Load blocks (or
	// fails on context cancellation) when the pool is full. <= 0 uses
	// 64.
	MaxSessions int
	// CacheCapacity sizes the shared compiled-program cache; <= 0 uses
	// xquery.DefaultCacheCapacity.
	CacheCapacity int
	// MaxSteps / Timeout are the per-query budget applied to every
	// session script, listener invocation and Eval call (<= 0:
	// unlimited), on top of cooperative context cancellation.
	MaxSteps int64
	Timeout  time.Duration
	// Engine, when non-nil, is the shared query engine for Eval;
	// nil builds one with the full fn: library.
	Engine *xquery.Engine
	// Strict gates Pool.Eval behind the static analyzer: programs with
	// error-severity diagnostics are rejected with an error matching
	// xquery.ErrAnalysisFailed, never enter the shared program cache,
	// and are counted in Metrics.QueriesRejected.
	Strict bool
	// SerialUpdates applies every query's pending update list strictly
	// serially, bypassing the update-independence partitioner — the
	// differential/debugging escape hatch of RunConfig.SerialUpdates,
	// pool-wide.
	SerialUpdates bool
	// MaxQueue bounds each session's event-loop queue: a Do (or
	// Click/Keyup/Dispatch) arriving while MaxQueue turns are already
	// running or waiting on that session is shed immediately with
	// ErrOverloaded and counted in Metrics.Failures.Shed. <= 0 keeps
	// the pre-shedding behaviour: callers block until the loop frees.
	MaxQueue int
	// HostOptions are applied to every session's LoadPage (policies,
	// loaders, extra functions ...).
	HostOptions []core.Option
	// Store, when non-nil, is the pool's document store: fn:doc and
	// fn:collection route to it in every session script and Eval call,
	// and its counters join the Metrics snapshot. Binding a store lifts
	// the §4.2.1 browser profile from session engines (trusted storage
	// instead of blocked network fetch); fn:put stays blocked.
	Store *xmldb.Store
	// Fed, when non-nil, is the pool's federated document source:
	// fn:collection scatter-gathers over its backends in every session
	// script and Eval call, and its counters join Metrics.Failures. A
	// local Store wins over Fed for the resolvers both provide (fn:doc
	// is always store-or-default: the federation serves collections,
	// not single-document fetches).
	Fed *fed.Executor
}

// Pool is the serving subsystem: a bounded set of live page sessions
// plus a shared engine and program cache for direct query evaluation.
// All methods are safe for concurrent use.
type Pool struct {
	cfg     Config
	engine  *xquery.Engine
	cache   *xquery.Cache
	slots   chan struct{}
	closing chan struct{}

	mu       sync.Mutex
	closed   bool
	sessions map[*Session]struct{}

	active        atomic.Int64
	peak          atomic.Int64
	loaded        atomic.Int64
	rejected      atomic.Int64
	events        atomic.Int64
	evalsRejected atomic.Int64
	shed          atomic.Int64

	loads      hist
	queries    hist
	dispatches hist
}

// NewPool builds a serving pool from cfg.
func NewPool(cfg Config) *Pool {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	e := cfg.Engine
	if e == nil {
		e = xquery.New()
	}
	return &Pool{
		cfg:      cfg,
		engine:   e,
		cache:    xquery.NewCache(cfg.CacheCapacity),
		slots:    make(chan struct{}, cfg.MaxSessions),
		closing:  make(chan struct{}),
		sessions: map[*Session]struct{}{},
	}
}

// Engine returns the pool's shared query engine.
func (p *Pool) Engine() *xquery.Engine { return p.engine }

// Cache returns the pool's shared program cache (the REST substrate
// compiles its service modules through it).
func (p *Pool) Cache() *xquery.Cache { return p.cache }

// Session is one live page within the pool: a host plus the session's
// serialised event loop. A session's queries run under the context
// given to Load, so cancelling it aborts them cooperatively.
type Session struct {
	p      *Pool
	h      *core.Host
	cancel context.CancelFunc
	sem    chan struct{} // the session's single-threaded event loop
	closed atomic.Bool
	// pending counts turns running or waiting on this session's loop;
	// Config.MaxQueue sheds arrivals beyond it.
	pending atomic.Int64
}

// Load boots a page session, blocking while the pool is at
// MaxSessions. ctx bounds both the wait and the session's whole
// lifetime: every script and listener on the session aborts when it is
// cancelled. The per-call opts extend the pool's HostOptions.
func (p *Pool) Load(ctx context.Context, pageSrc, href string, opts ...core.Option) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-p.closing:
		p.rejected.Add(1)
		return nil, ErrPoolClosed
	default:
	}
	select {
	case p.slots <- struct{}{}:
	case <-p.closing:
		p.rejected.Add(1)
		return nil, ErrPoolClosed
	case <-ctx.Done():
		p.rejected.Add(1)
		return nil, ctx.Err()
	}

	sctx, cancel := context.WithCancel(ctx)
	hostOpts := []core.Option{
		core.WithProgramCache(p.cache),
		core.WithQueryBudget(p.cfg.MaxSteps, p.cfg.Timeout),
	}
	if st := p.cfg.Store; st != nil {
		hostOpts = append(hostOpts,
			core.WithStoreResolvers(st.Resolver(), st.CollectionResolver(), st.CollectionIterResolver()))
	} else if fx := p.cfg.Fed; fx != nil {
		// Collections resolve over the federation, bounded by the
		// session's lifetime context.
		hostOpts = append(hostOpts,
			core.WithStoreResolvers(nil, fx.CollectionResolver(sctx), fx.CollectionIterResolver(sctx)))
	}
	hostOpts = append(hostOpts, p.cfg.HostOptions...)
	hostOpts = append(hostOpts, opts...)

	t0 := time.Now()
	h, err := core.LoadPageContext(sctx, pageSrc, href, hostOpts...)
	if err != nil {
		cancel()
		<-p.slots
		p.rejected.Add(1)
		return nil, err
	}
	p.loads.observe(time.Since(t0))

	s := &Session{p: p, h: h, cancel: cancel, sem: make(chan struct{}, 1)}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		cancel()
		<-p.slots
		p.rejected.Add(1)
		return nil, ErrPoolClosed
	}
	p.sessions[s] = struct{}{}
	p.mu.Unlock()

	n := p.active.Add(1)
	for {
		peak := p.peak.Load()
		if n <= peak || p.peak.CompareAndSwap(peak, n) {
			break
		}
	}
	p.loaded.Add(1)
	return s, nil
}

// Host exposes the session's underlying plug-in host. Touch it only
// through Do (or before handing the session to other goroutines): the
// host itself assumes a single event-loop thread.
func (s *Session) Host() *core.Host { return s.h }

// Do runs fn on the session's event loop: turns are serialised per
// session (the browser's single-threaded dispatch, §6.2) while
// different sessions proceed in parallel. It blocks while another turn
// is in flight, honouring ctx — unless Config.MaxQueue is set, in
// which case arrivals beyond the queue bound are shed immediately with
// ErrOverloaded. Each turn runs behind a panic-isolation boundary: a
// panicking listener or script comes back as an error matching
// xqerr.ErrInternal and the session stays serviceable.
func (s *Session) Do(ctx context.Context, fn func(*core.Host) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.closed.Load() {
		return ErrSessionClosed
	}
	if mq := s.p.cfg.MaxQueue; mq > 0 {
		if s.pending.Add(1) > int64(mq) {
			s.pending.Add(-1)
			s.p.shed.Add(1)
			return ErrOverloaded
		}
		defer s.pending.Add(-1)
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-s.sem }()
	if s.closed.Load() {
		return ErrSessionClosed
	}
	t0 := time.Now()
	err := s.runTurn(fn)
	s.p.dispatches.observe(time.Since(t0))
	s.p.events.Add(1)
	return err
}

// runTurn executes one event-loop turn behind the serve.dispatch fault
// point and the session's panic-isolation boundary.
func (s *Session) runTurn(fn func(*core.Host) error) (err error) {
	defer xqerr.RecoverInto(&err, "serve.Session.Do")
	if err := faultpoint.Hit(faultpoint.PointServeDispatch); err != nil {
		return err
	}
	return fn(s.h)
}

// Click dispatches a click at the element with the given id on the
// session's event loop.
func (s *Session) Click(ctx context.Context, id string) error {
	return s.Do(ctx, func(h *core.Host) error { return h.Click(id) })
}

// Keyup dispatches a keyup carrying key at the element with the given
// id on the session's event loop.
func (s *Session) Keyup(ctx context.Context, id, key string) error {
	return s.Do(ctx, func(h *core.Host) error { return h.Keyup(id, key) })
}

// Dispatch sends an arbitrary event at a target node on the session's
// event loop.
func (s *Session) Dispatch(ctx context.Context, ev *dom.Event, target *dom.Node) error {
	return s.Do(ctx, func(h *core.Host) error {
		h.Dispatch(ev, target)
		return nil
	})
}

// Close ends the session: in-flight queries are cancelled, the event
// loop drains, and the pool slot frees. Close is idempotent and safe
// to call concurrently with Do.
func (s *Session) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.cancel()
	// Wait out an in-flight event turn (cancellation above unsticks
	// budgeted queries), then hold the loop so no new turn starts.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	p := s.p
	p.mu.Lock()
	delete(p.sessions, s)
	p.mu.Unlock()
	p.active.Add(-1)
	<-p.slots
}

// Eval evaluates a query on the pool's shared engine through the
// program cache, under the pool's per-query budget and ctx. This is
// the high-volume serving path: repeated sources skip parse/compile.
// Eval is a panic-isolation boundary (panics come back as errors
// matching xqerr.ErrInternal) and sits behind the cache's quarantine
// gate: programs that keep panicking are refused with an error
// matching xquery.ErrQuarantined.
func (p *Pool) Eval(ctx context.Context, src string, contextDoc *dom.Node) (seq xdm.Sequence, err error) {
	defer xqerr.RecoverInto(&err, "serve.Pool.Eval")
	select {
	case <-p.closing:
		return nil, ErrPoolClosed
	default:
	}
	cfg := xquery.RunConfig{
		Context:       ctx,
		Sequential:    true,
		MaxSteps:      p.cfg.MaxSteps,
		Timeout:       p.cfg.Timeout,
		Strict:        p.cfg.Strict,
		SerialUpdates: p.cfg.SerialUpdates,
	}
	if st := p.cfg.Store; st != nil {
		cfg.Docs = st.Resolver()
		cfg.Collections = st.CollectionResolver()
		cfg.CollectionsIter = st.CollectionIterResolver()
	} else if fx := p.cfg.Fed; fx != nil {
		cfg.Collections = fx.CollectionResolver(ctx)
		cfg.CollectionsIter = fx.CollectionIterResolver(ctx)
	}
	if contextDoc != nil {
		cfg.ContextItem = xdm.NewNode(contextDoc)
	}
	t0 := time.Now()
	res, err := p.cache.EvalQuery(p.engine, src, cfg)
	p.queries.observe(time.Since(t0))
	if err != nil {
		if errors.Is(err, xquery.ErrAnalysisFailed) {
			p.evalsRejected.Add(1)
		}
		return nil, err
	}
	return res.Value, nil
}

// Shutdown gracefully stops the pool: new loads and evals fail with
// ErrPoolClosed, every live session is cancelled and closed, and the
// call returns when all sessions have drained (or ctx is cancelled, in
// which case the remaining drains continue in the background).
func (p *Pool) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	p.closed = true
	close(p.closing)
	sessions := make([]*Session, 0, len(p.sessions))
	for s := range p.sessions {
		sessions = append(sessions, s)
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		for _, s := range sessions {
			s.Close()
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Metrics returns the pool's observability snapshot.
func (p *Pool) Metrics() Metrics {
	cache := p.cache.Stats()
	var store *xmldb.StatsSnapshot
	if p.cfg.Store != nil {
		st := p.cfg.Store.Stats.Snapshot()
		store = &st
	}
	return Metrics{
		Store:            store,
		SessionsActive:   p.active.Load(),
		SessionsPeak:     p.peak.Load(),
		SessionsLoaded:   p.loaded.Load(),
		SessionsRejected: p.rejected.Load(),
		Events:           p.events.Load(),
		QueriesRejected:  p.evalsRejected.Load(),
		Loads:            p.loads.snapshot(),
		Queries:          p.queries.snapshot(),
		Dispatches:       p.dispatches.snapshot(),
		Cache:            cache,
		Index:            indexStats(),
		FullText:         fullTextStats(),
		Updates:          updateStats(),
		Failures:         failureStats(p, cache),
	}
}

// failureStats assembles the resilience snapshot, folding in the
// process-wide federation counters.
func failureStats(p *Pool, cache xquery.CacheStats) FailureStats {
	fs := fed.Snapshot()
	return FailureStats{
		PanicsRecovered: xqerr.Recovered(),
		Rollbacks:       update.Rollbacks(),
		ResolverRetries: runtime.ResolverRetries(),
		Shed:            p.shed.Load(),
		Quarantined:     cache.Quarantined,
		FedRetries:      fs.Retries,
		FedHedges:       fs.Hedges,
		FedBreakerOpens: fs.BreakerOpens,
		FedBreakerSkips: fs.BreakerSkips,
		FedPartials:     fs.Partials,
	}
}

// indexStats snapshots the process-wide document-index counters.
func indexStats() IndexStats {
	s := index.Snapshot()
	return IndexStats{Builds: s.Builds, Hits: s.Hits}
}

// fullTextStats snapshots the process-wide full-text-index counters.
func fullTextStats() FullTextStats {
	s := ftindex.Snapshot()
	return FullTextStats{Builds: s.Builds, Hits: s.Hits, Loads: s.Loads}
}

// updateStats snapshots the process-wide update-partition counters.
func updateStats() UpdateStats {
	s := update.Snapshot()
	return UpdateStats{
		Eliminated:      s.Eliminated,
		Groups:          s.Groups,
		ParallelApplies: s.ParallelApplies,
	}
}
