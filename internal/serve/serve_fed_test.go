package serve

import (
	"context"
	"net/http/httptest"
	"sort"
	"testing"

	"repro/internal/dom"
	"repro/internal/fed"
	"repro/internal/markup"
	"repro/internal/rest"
	"repro/internal/xdm"
)

func startFedShard(t *testing.T, docs map[string]string) *httptest.Server {
	t.Helper()
	var nodes []*dom.Node
	for uri, src := range docs {
		d, err := markup.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		d.BaseURI = uri
		nodes = append(nodes, d)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].BaseURI < nodes[j].BaseURI })
	srv, err := rest.NewModuleServer(fed.ShardModule, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.Collections = func(uri string) ([]*dom.Node, error) { return nodes, nil }
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestPoolEvalOverFederation: a pool with Config.Fed resolves
// fn:collection by scatter-gathering over the backends, and the
// failure metrics mirror the federation counters.
func TestPoolEvalOverFederation(t *testing.T) {
	fed.ResetStats()
	a := startFedShard(t, map[string]string{"a1": `<d n="1"/>`, "a3": `<d n="3"/>`})
	b := startFedShard(t, map[string]string{"b2": `<d n="2"/>`})
	x, err := fed.New(fed.Config{Shards: [][]string{{a.URL}, {b.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(Config{Fed: x})
	defer p.Shutdown(context.Background())

	seq, err := p.Eval(context.Background(), `for $d in fn:collection("/") return fn:base-uri($d)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	var uris []string
	for _, it := range seq {
		uris = append(uris, it.String())
	}
	want := []string{"a1", "b2", "a3"}
	sort.Strings(want)
	if len(uris) != 3 || uris[0] != want[0] || uris[1] != want[1] || uris[2] != want[2] {
		t.Errorf("federated eval URIs = %v, want %v", uris, want)
	}
}

// TestPoolMetricsReflectFederation: a degraded gather (one dead
// backend, PartialResults) shows up in Metrics.Failures.
func TestPoolMetricsReflectFederation(t *testing.T) {
	fed.ResetStats()
	a := startFedShard(t, map[string]string{"a1": `<d/>`})
	dead := startFedShard(t, map[string]string{"b1": `<d/>`})
	dead.Close()
	x, err := fed.New(fed.Config{
		Shards:         [][]string{{a.URL}, {dead.URL}},
		MaxRetries:     -1,
		PartialResults: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(Config{Fed: x})
	defer p.Shutdown(context.Background())

	seq, err := p.Eval(context.Background(), `fn:collection("/")`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One healthy doc plus the diagnostic element.
	if len(seq) != 2 {
		t.Fatalf("want doc + diagnostic, got %d items", len(seq))
	}
	if n, ok := xdm.IsNode(seq[1]); !ok || n.Name.Local != "incomplete" {
		t.Errorf("trailing item = %v, want fed:incomplete", seq[1])
	}
	m := p.Metrics()
	if m.Failures.FedPartials == 0 {
		t.Errorf("metrics missed the partial gather: %+v", m.Failures)
	}
}
