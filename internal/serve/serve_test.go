package serve

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/xquery"
)

const counterPage = `<html><head><script type="text/xquery">
declare updating function local:hit($evt, $obj) {
  replace value of node //span[@id="n"]
  with xs:integer(string(//span[@id="n"])) + 1
};
on event "click" at //input[@id="b"] attach listener local:hit
</script></head><body><input id="b"/><span id="n">0</span></body></html>`

const pageHref = "http://serve.example.com/"

func counterValue(t *testing.T, s *Session) string {
	t.Helper()
	var out string
	if err := s.Do(context.Background(), func(h *core.Host) error {
		out = h.Page.ElementByID("n").StringValue()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPoolSessionLifecycle(t *testing.T) {
	p := NewPool(Config{MaxSessions: 4})
	ctx := context.Background()

	s, err := p.Load(ctx, counterPage, pageHref)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Click(ctx, "b"); err != nil {
			t.Fatal(err)
		}
	}
	if got := counterValue(t, s); got != "3" {
		t.Errorf("counter = %s, want 3", got)
	}

	m := p.Metrics()
	if m.SessionsActive != 1 || m.SessionsLoaded != 1 {
		t.Errorf("metrics = %+v, want 1 active / 1 loaded", m)
	}
	if m.Events != 4 { // 3 clicks + 1 read turn
		t.Errorf("events = %d, want 4", m.Events)
	}
	if m.Loads.Count != 1 || m.Dispatches.Count != 4 {
		t.Errorf("histograms: loads=%d dispatches=%d", m.Loads.Count, m.Dispatches.Count)
	}

	s.Close()
	s.Close() // idempotent
	if got := p.Metrics().SessionsActive; got != 0 {
		t.Errorf("active after close = %d", got)
	}
	if err := s.Click(ctx, "b"); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("click after close = %v, want ErrSessionClosed", err)
	}
}

func TestPoolBoundsSessions(t *testing.T) {
	p := NewPool(Config{MaxSessions: 1})
	ctx := context.Background()

	s1, err := p.Load(ctx, counterPage, pageHref)
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := p.Load(waitCtx, counterPage, pageHref); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("full pool load = %v, want DeadlineExceeded", err)
	}
	s1.Close()
	s2, err := p.Load(ctx, counterPage, pageHref)
	if err != nil {
		t.Fatalf("load after close: %v", err)
	}
	s2.Close()

	m := p.Metrics()
	if m.SessionsRejected != 1 || m.SessionsLoaded != 2 || m.SessionsPeak != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestPoolCacheSharedAcrossSessions(t *testing.T) {
	p := NewPool(Config{MaxSessions: 4})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		s, err := p.Load(ctx, counterPage, pageHref)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
	}
	st := p.Cache().Stats()
	if st.Parses != 1 {
		t.Errorf("parses = %d, want 1 (page script parse shared)", st.Parses)
	}
	if st.ModuleHits != 2 {
		t.Errorf("module hits = %d, want 2", st.ModuleHits)
	}
}

func TestPoolEvalCached(t *testing.T) {
	p := NewPool(Config{MaxSessions: 2})
	ctx := context.Background()
	const n = 10
	for i := 0; i < n; i++ {
		seq, err := p.Eval(ctx, `sum(1 to 4)`, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seq[0].String() != "10" {
			t.Fatalf("result = %v", seq)
		}
	}
	m := p.Metrics()
	if m.Cache.Compiles != 1 || m.Cache.ProgramHits != n-1 {
		t.Errorf("cache = %+v, want 1 compile / %d hits", m.Cache, n-1)
	}
	if m.Queries.Count != n {
		t.Errorf("query histogram count = %d, want %d", m.Queries.Count, n)
	}
}

func TestPoolEvalBudget(t *testing.T) {
	p := NewPool(Config{MaxSessions: 2, MaxSteps: 500})
	_, err := p.Eval(context.Background(), `sum(for $i in 1 to 1000000 return $i)`, nil)
	if !errors.Is(err, xquery.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestPoolShutdown(t *testing.T) {
	p := NewPool(Config{MaxSessions: 4})
	ctx := context.Background()
	s, err := p.Load(ctx, counterPage, pageHref)
	if err != nil {
		t.Fatal(err)
	}
	_ = s

	if err := p.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if got := p.Metrics().SessionsActive; got != 0 {
		t.Errorf("active after shutdown = %d", got)
	}
	if _, err := p.Load(ctx, counterPage, pageHref); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("load after shutdown = %v, want ErrPoolClosed", err)
	}
	if _, err := p.Eval(ctx, `1`, nil); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("eval after shutdown = %v, want ErrPoolClosed", err)
	}
	if err := p.Shutdown(ctx); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("second shutdown = %v, want ErrPoolClosed", err)
	}
}

func TestSessionContextCancellationAbortsListeners(t *testing.T) {
	// A listener that loops forever is unstuck by cancelling the
	// session's context, not by waiting out a wall-clock budget.
	page := strings.Replace(counterPage,
		`with xs:integer(string(//span[@id="n"])) + 1`,
		`with sum(for $i in 1 to 2000 return sum(for $j in 1 to 2000 return $j mod 7))`, 1)

	p := NewPool(Config{MaxSessions: 2})
	ctx, cancel := context.WithCancel(context.Background())
	s, err := p.Load(ctx, page, pageHref)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// The click itself returns errors through the host's async error
	// channel; the Do turn returns once dispatch finishes (aborted by
	// cancellation).
	_ = s.Click(context.Background(), "b")
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("listener ran %s, cancellation not cooperative", elapsed)
	}
	s.Close()
}

func TestLoadPageContextCancelledDuringLoad(t *testing.T) {
	// Cancellation during the page-load script aborts LoadPage itself.
	page := `<html><head><script type="text/xquery">
	  sum(for $i in 1 to 2000 return sum(for $j in 1 to 2000 return $j mod 7))
	</script></head><body/></html>`
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	p := NewPool(Config{MaxSessions: 2})
	start := time.Now()
	_, err := p.Load(ctx, page, pageHref)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("load ran %s before aborting", elapsed)
	}
	if got := p.Metrics().SessionsRejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

func TestPoolEvalStrict(t *testing.T) {
	p := NewPool(Config{MaxSessions: 2, Strict: true})
	ctx := context.Background()

	// Statically broken: unbound variable. Rejected before the cache.
	for i := 0; i < 2; i++ {
		_, err := p.Eval(ctx, `1 + $nowhere`, nil)
		if !errors.Is(err, xquery.ErrAnalysisFailed) {
			t.Fatalf("err = %v, want ErrAnalysisFailed", err)
		}
	}
	if _, err := p.Eval(ctx, `sum(1 to 4)`, nil); err != nil {
		t.Fatal(err)
	}

	m := p.Metrics()
	if m.QueriesRejected != 2 {
		t.Errorf("QueriesRejected = %d, want 2", m.QueriesRejected)
	}
	if m.Cache.Compiles != 1 {
		t.Errorf("cache compiles = %d, want 1 (rejected programs stay out)", m.Cache.Compiles)
	}
}

func TestPoolEvalStrictOff(t *testing.T) {
	p := NewPool(Config{MaxSessions: 2})
	// Without Strict the unbound variable only fails at runtime, and the
	// rejection counter stays untouched.
	if _, err := p.Eval(context.Background(), `1 + $nowhere`, nil); err == nil {
		t.Fatal("unbound variable ran successfully")
	}
	if m := p.Metrics(); m.QueriesRejected != 0 {
		t.Errorf("QueriesRejected = %d, want 0", m.QueriesRejected)
	}
}
