package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// TestServingStressShared hammers ONE engine, ONE cache and ONE session
// pool from >100 goroutines mixing every public operation. It exists to
// be run under -race: any unsynchronised access in the compile cache,
// the pool bookkeeping, or a compiled program's shared state shows up
// here.
//
// Table-driven: each row is a workload kind; rows are replicated until
// the goroutine floor (100) is crossed.
func TestServingStressShared(t *testing.T) {
	const (
		replicas = 22 // per workload row; 5 rows × 22 = 110 goroutines
		iters    = 12 // operations per goroutine
	)

	p := NewPool(Config{
		MaxSessions: 8,
		MaxSteps:    5_000_000,
	})
	defer p.Shutdown(context.Background())
	ctx := context.Background()

	// A handful of sessions shared by all event-trigger goroutines.
	const sharedSessions = 4
	sessions := make([]*Session, sharedSessions)
	for i := range sessions {
		s, err := p.Load(ctx, counterPage, pageHref)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}

	var clicks atomic.Int64
	workloads := []struct {
		name string
		op   func(g, i int) error
	}{
		{"eval_repeat", func(g, i int) error {
			// Same source every time: exercises the program-hit fast path.
			seq, err := p.Eval(ctx, `sum(1 to 100)`, nil)
			if err != nil {
				return err
			}
			if seq[0].String() != "5050" {
				return fmt.Errorf("eval_repeat got %v", seq)
			}
			return nil
		}},
		{"eval_churn", func(g, i int) error {
			// Distinct sources: exercises compile misses + LRU turnover.
			src := fmt.Sprintf(`%d + %d`, g, i)
			seq, err := p.Eval(ctx, src, nil)
			if err != nil {
				return err
			}
			if seq[0].String() != fmt.Sprint(g+i) {
				return fmt.Errorf("eval_churn got %v", seq)
			}
			return nil
		}},
		{"eval_direct_engine", func(g, i int) error {
			// Bypass the cache: shared engine compile+run must also be safe.
			_, err := p.Engine().EvalQueryContext(ctx, `count(1 to 10)`, nil)
			return err
		}},
		{"load_page", func(g, i int) error {
			// Session churn through the bounded pool.
			s, err := p.Load(ctx, counterPage, pageHref)
			if err != nil {
				return err
			}
			defer s.Close()
			return s.Click(ctx, "b")
		}},
		{"event_trigger", func(g, i int) error {
			// Concurrent event dispatch against shared sessions; the
			// per-session loop serialises DOM mutation.
			s := sessions[g%sharedSessions]
			if err := s.Click(ctx, "b"); err != nil {
				return err
			}
			clicks.Add(1)
			return nil
		}},
	}

	var wg sync.WaitGroup
	errCh := make(chan error, len(workloads)*replicas)
	goroutines := 0
	for w, wl := range workloads {
		for r := 0; r < replicas; r++ {
			goroutines++
			wg.Add(1)
			go func(wl struct {
				name string
				op   func(g, i int) error
			}, g int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					if err := wl.op(g, i); err != nil {
						errCh <- fmt.Errorf("%s[%d]: %w", wl.name, i, err)
						return
					}
				}
			}(wl, w*replicas+r)
		}
	}
	if goroutines < 100 {
		t.Fatalf("stress floor: %d goroutines, want >= 100", goroutines)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Every shared-session click must have landed exactly once.
	total := int64(0)
	for _, s := range sessions {
		var n string
		if err := s.Do(ctx, func(h *core.Host) error {
			n = h.Page.ElementByID("n").StringValue()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		var v int64
		fmt.Sscan(n, &v)
		total += v
		s.Close()
	}
	if got := clicks.Load(); total != got {
		t.Errorf("shared sessions recorded %d clicks, dispatched %d", total, got)
	}

	// Sanity on the shared accounting under contention.
	m := p.Metrics()
	if m.SessionsActive != 0 {
		t.Errorf("sessions still active: %d", m.SessionsActive)
	}
	st := m.Cache
	if st.Compiles == 0 || st.ProgramHits == 0 {
		t.Errorf("expected both compiles and hits under stress, got %+v", st)
	}
	// eval_repeat: one compile for the shared source, everything else a
	// hit or coalesced join.
	evalRepeatOps := int64(replicas * iters)
	if st.ProgramHits+st.Coalesced < evalRepeatOps-1 {
		t.Errorf("hit+coalesced = %d, want >= %d", st.ProgramHits+st.Coalesced, evalRepeatOps-1)
	}
}
