package xdm

import (
	"fmt"
	"math"
	"math/big"
	"time"
)

// Arithmetic implements the XPath 2.0 arithmetic operators over atomic
// items with numeric promotion (integer → decimal → double) and the
// date/duration overloads the paper's examples rely on (e.g. comparing
// lastModified times). Untyped operands are cast to xs:double first.
// op is one of "+", "-", "*", "div", "idiv", "mod".
func Arithmetic(op string, a, b Item) (Item, error) {
	var err error
	if a.Type() == TUntypedAtomic {
		if a, err = Cast(a, TDouble); err != nil {
			return nil, err
		}
	}
	if b.Type() == TUntypedAtomic {
		if b, err = Cast(b, TDouble); err != nil {
			return nil, err
		}
	}
	ta, tb := a.Type(), b.Type()
	if ta.IsNumeric() && tb.IsNumeric() {
		return numericArith(op, a, b)
	}
	// Date/time and duration overloads.
	switch {
	case (ta == TDateTime || ta == TDate || ta == TTime) && isDurationType(tb):
		dt, d := a.(DateTime), b.(Duration)
		switch op {
		case "+":
			return addDuration(dt, d, 1), nil
		case "-":
			return addDuration(dt, d, -1), nil
		}
	case isDurationType(ta) && (tb == TDateTime || tb == TDate || tb == TTime) && op == "+":
		return addDuration(b.(DateTime), a.(Duration), 1), nil
	case (ta == TDateTime || ta == TDate || ta == TTime) && ta == tb && op == "-":
		x, y := a.(DateTime), b.(DateTime)
		return Duration{Nanos: x.T.Sub(y.T), Kind: TDayTimeDuration}, nil
	case isDurationType(ta) && isDurationType(tb):
		x, y := a.(Duration), b.(Duration)
		switch op {
		case "+":
			return normDuration(Duration{Months: x.Months + y.Months, Nanos: x.Nanos + y.Nanos}), nil
		case "-":
			return normDuration(Duration{Months: x.Months - y.Months, Nanos: x.Nanos - y.Nanos}), nil
		case "div":
			if x.Months == 0 && y.Months == 0 && y.Nanos != 0 {
				return Double(float64(x.Nanos) / float64(y.Nanos)), nil
			}
			if x.Nanos == 0 && y.Nanos == 0 && y.Months != 0 {
				return Double(float64(x.Months) / float64(y.Months)), nil
			}
		}
	case isDurationType(ta) && tb.IsNumeric():
		f := toFloat(b)
		switch op {
		case "*":
			return scaleDuration(a.(Duration), f), nil
		case "div":
			if f == 0 {
				return nil, fmt.Errorf("xdm: duration division by zero")
			}
			return scaleDuration(a.(Duration), 1/f), nil
		}
	case ta.IsNumeric() && isDurationType(tb) && op == "*":
		return scaleDuration(b.(Duration), toFloat(a)), nil
	}
	return nil, fmt.Errorf("xdm: operator %q not defined for %s and %s", op, ta, tb)
}

func addDuration(dt DateTime, d Duration, sign int) DateTime {
	t := dt.T.AddDate(0, sign*int(d.Months), 0)
	t = t.Add(time.Duration(sign) * d.Nanos)
	return DateTime{T: t, Kind: dt.Kind, HasTZ: dt.HasTZ}
}

func normDuration(d Duration) Duration {
	switch {
	case d.Months == 0:
		d.Kind = TDayTimeDuration
	case d.Nanos == 0:
		d.Kind = TYearMonthDuration
	default:
		d.Kind = TDuration
	}
	return d
}

func scaleDuration(d Duration, f float64) Duration {
	return normDuration(Duration{
		Months: int64(math.Round(float64(d.Months) * f)),
		Nanos:  time.Duration(float64(d.Nanos) * f),
	})
}

func numericArith(op string, a, b Item) (Item, error) {
	ta, tb := a.Type(), b.Type()
	// Promote to the widest operand type.
	if ta == TDouble || tb == TDouble {
		x, y := toFloat(a), toFloat(b)
		switch op {
		case "+":
			return Double(x + y), nil
		case "-":
			return Double(x - y), nil
		case "*":
			return Double(x * y), nil
		case "div":
			return Double(x / y), nil
		case "idiv":
			if y == 0 {
				return nil, fmt.Errorf("xdm: integer division by zero")
			}
			q := math.Trunc(x / y)
			if math.IsNaN(q) || math.IsInf(q, 0) {
				return nil, fmt.Errorf("xdm: idiv overflow")
			}
			return Integer(int64(q)), nil
		case "mod":
			return Double(math.Mod(x, y)), nil
		}
	}
	if ta == TDecimal || tb == TDecimal {
		x, y := toRat(a), toRat(b)
		r := new(big.Rat)
		switch op {
		case "+":
			return Decimal{r: r.Add(x, y)}, nil
		case "-":
			return Decimal{r: r.Sub(x, y)}, nil
		case "*":
			return Decimal{r: r.Mul(x, y)}, nil
		case "div":
			if y.Sign() == 0 {
				return nil, fmt.Errorf("xdm: decimal division by zero")
			}
			return Decimal{r: r.Quo(x, y)}, nil
		case "idiv":
			if y.Sign() == 0 {
				return nil, fmt.Errorf("xdm: integer division by zero")
			}
			q := new(big.Int).Quo(
				new(big.Int).Mul(x.Num(), y.Denom()),
				new(big.Int).Mul(y.Num(), x.Denom()))
			return Integer(q.Int64()), nil
		case "mod":
			if y.Sign() == 0 {
				return nil, fmt.Errorf("xdm: decimal modulo by zero")
			}
			q := new(big.Int).Quo(
				new(big.Int).Mul(x.Num(), y.Denom()),
				new(big.Int).Mul(y.Num(), x.Denom()))
			qr := new(big.Rat).SetInt(q)
			return Decimal{r: r.Sub(x, qr.Mul(qr, y))}, nil
		}
	}
	x, y := int64(a.(Integer)), int64(b.(Integer))
	switch op {
	case "+":
		return Integer(x + y), nil
	case "-":
		return Integer(x - y), nil
	case "*":
		return Integer(x * y), nil
	case "div":
		// Integer div produces a decimal per XPath 2.0.
		if y == 0 {
			return nil, fmt.Errorf("xdm: division by zero")
		}
		if x%y == 0 {
			return Integer(x / y), nil
		}
		return Decimal{r: big.NewRat(x, y)}, nil
	case "idiv":
		if y == 0 {
			return nil, fmt.Errorf("xdm: integer division by zero")
		}
		return Integer(x / y), nil
	case "mod":
		if y == 0 {
			return nil, fmt.Errorf("xdm: modulo by zero")
		}
		return Integer(x % y), nil
	}
	return nil, fmt.Errorf("xdm: unknown arithmetic operator %q", op)
}

// Negate implements unary minus over a numeric or duration item.
func Negate(a Item) (Item, error) {
	if a.Type() == TUntypedAtomic {
		var err error
		if a, err = Cast(a, TDouble); err != nil {
			return nil, err
		}
	}
	switch v := a.(type) {
	case Integer:
		return -v, nil
	case Double:
		return -v, nil
	case Decimal:
		return Decimal{r: new(big.Rat).Neg(v.Rat())}, nil
	case Duration:
		return Duration{Months: -v.Months, Nanos: -v.Nanos, Kind: v.Kind}, nil
	default:
		return nil, fmt.Errorf("xdm: cannot negate %s", a.Type())
	}
}
