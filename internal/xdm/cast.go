package xdm

import (
	"fmt"
	"math"
	"math/big"
	"strconv"
	"strings"
	"time"

	"repro/internal/dom"
)

// Cast converts an atomic value to the target type per the XPath 2.0
// casting matrix. Nodes must be atomized first. An unsupported or
// failing conversion returns an error (err:FORG0001 family).
func Cast(v Item, target Type) (Item, error) {
	if v.Type().IsNode() {
		v = Atomize(v)
	}
	if v.Type() == target {
		return v, nil
	}
	// Casting from string and untypedAtomic goes through the lexical
	// form; so does casting *to* string.
	switch target {
	case TString:
		return String(v.String()), nil
	case TUntypedAtomic:
		return UntypedAtomic(v.String()), nil
	case TAnyURI:
		switch v.Type() {
		case TString, TUntypedAtomic:
			return AnyURI(strings.TrimSpace(v.String())), nil
		}
		return nil, castErr(v, target)
	}

	switch v.Type() {
	case TString, TUntypedAtomic, TAnyURI:
		return castFromString(strings.TrimSpace(v.String()), target)
	case TInteger:
		return castFromInteger(v.(Integer), target)
	case TDecimal:
		return castFromDecimal(v.(Decimal), target)
	case TDouble:
		return castFromDouble(v.(Double), target)
	case TBoolean:
		b := v.(Boolean)
		n := int64(0)
		if b {
			n = 1
		}
		switch target {
		case TInteger:
			return Integer(n), nil
		case TDecimal:
			return DecimalFromInt(n), nil
		case TDouble:
			return Double(n), nil
		}
	case TDateTime:
		dt := v.(DateTime)
		switch target {
		case TDate:
			y, m, d := dt.T.Date()
			return DateTime{T: time.Date(y, m, d, 0, 0, 0, 0, dt.T.Location()), Kind: TDate, HasTZ: dt.HasTZ}, nil
		case TTime:
			return DateTime{T: dt.T, Kind: TTime, HasTZ: dt.HasTZ}, nil
		}
	case TDate:
		dt := v.(DateTime)
		if target == TDateTime {
			return DateTime{T: dt.T, Kind: TDateTime, HasTZ: dt.HasTZ}, nil
		}
	case TDuration, TYearMonthDuration, TDayTimeDuration:
		d := v.(Duration)
		switch target {
		case TYearMonthDuration:
			return Duration{Months: d.Months, Kind: TYearMonthDuration}, nil
		case TDayTimeDuration:
			return Duration{Nanos: d.Nanos, Kind: TDayTimeDuration}, nil
		case TDuration:
			return Duration{Months: d.Months, Nanos: d.Nanos, Kind: TDuration}, nil
		}
	}
	return nil, castErr(v, target)
}

func castErr(v Item, target Type) error {
	return fmt.Errorf("xdm: cannot cast %s %q to %s", v.Type(), v.String(), target)
}

// Castable reports whether Cast would succeed.
func Castable(v Item, target Type) bool {
	_, err := Cast(v, target)
	return err == nil
}

func castFromString(s string, target Type) (Item, error) {
	fail := func() (Item, error) {
		return nil, fmt.Errorf("xdm: invalid lexical form %q for %s", s, target)
	}
	switch target {
	case TBoolean:
		switch s {
		case "true", "1":
			return Boolean(true), nil
		case "false", "0":
			return Boolean(false), nil
		}
		return fail()
	case TInteger:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fail()
		}
		return Integer(n), nil
	case TDecimal:
		d, err := DecimalFromString(s)
		if err != nil {
			return fail()
		}
		return d, nil
	case TDouble:
		switch s {
		case "INF", "+INF":
			return Double(math.Inf(1)), nil
		case "-INF":
			return Double(math.Inf(-1)), nil
		case "NaN":
			return Double(math.NaN()), nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fail()
		}
		return Double(f), nil
	case TDate, TTime, TDateTime:
		dt, err := ParseDateTime(s, target)
		if err != nil {
			return fail()
		}
		return dt, nil
	case TDuration, TYearMonthDuration, TDayTimeDuration:
		d, err := ParseDuration(s)
		if err != nil {
			return fail()
		}
		if target == TYearMonthDuration && d.Nanos != 0 {
			return fail()
		}
		if target == TDayTimeDuration && d.Months != 0 {
			return fail()
		}
		d.Kind = target
		return d, nil
	case TQName:
		if i := strings.IndexByte(s, ':'); i > 0 {
			return QNameValue{Name: dom.QName{Prefix: s[:i], Local: s[i+1:]}}, nil
		}
		return QNameValue{Name: dom.Name(s)}, nil
	}
	return fail()
}

func castFromInteger(v Integer, target Type) (Item, error) {
	switch target {
	case TDecimal:
		return DecimalFromInt(int64(v)), nil
	case TDouble:
		return Double(float64(v)), nil
	case TBoolean:
		return Boolean(v != 0), nil
	}
	return nil, castErr(v, target)
}

func castFromDecimal(v Decimal, target Type) (Item, error) {
	switch target {
	case TInteger:
		// Truncate toward zero.
		q := new(big.Int).Quo(v.Rat().Num(), v.Rat().Denom())
		if !q.IsInt64() {
			return nil, fmt.Errorf("xdm: decimal overflows xs:integer")
		}
		return Integer(q.Int64()), nil
	case TDouble:
		return Double(v.Float64()), nil
	case TBoolean:
		return Boolean(v.Rat().Sign() != 0), nil
	}
	return nil, castErr(v, target)
}

func castFromDouble(v Double, target Type) (Item, error) {
	f := float64(v)
	switch target {
	case TInteger:
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("xdm: cannot cast %s to xs:integer", formatDouble(f))
		}
		return Integer(int64(math.Trunc(f))), nil
	case TDecimal:
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("xdm: cannot cast %s to xs:decimal", formatDouble(f))
		}
		r := new(big.Rat)
		r.SetFloat64(f)
		return Decimal{r: r}, nil
	case TBoolean:
		return Boolean(!(f == 0 || math.IsNaN(f))), nil
	}
	return nil, castErr(v, target)
}

// ParseDateTime parses the XSD lexical form of date, time or dateTime.
func ParseDateTime(s string, kind Type) (DateTime, error) {
	hasTZ := false
	loc := time.UTC
	body := s
	// Trailing timezone: Z or ±hh:mm.
	if strings.HasSuffix(body, "Z") {
		hasTZ = true
		body = body[:len(body)-1]
	} else if len(body) >= 6 {
		tz := body[len(body)-6:]
		if (tz[0] == '+' || tz[0] == '-') && tz[3] == ':' {
			h, err1 := strconv.Atoi(tz[1:3])
			m, err2 := strconv.Atoi(tz[4:])
			if err1 == nil && err2 == nil {
				off := h*3600 + m*60
				if tz[0] == '-' {
					off = -off
				}
				loc = time.FixedZone(tz, off)
				hasTZ = true
				body = body[:len(body)-6]
			}
		}
	}
	var layout string
	switch kind {
	case TDate:
		layout = "2006-01-02"
	case TTime:
		layout = "15:04:05"
	default:
		layout = "2006-01-02T15:04:05"
	}
	// Fractional seconds.
	if kind != TDate && strings.Contains(body, ".") {
		layout += ".999999999"
	}
	t, err := time.ParseInLocation(layout, body, loc)
	if err != nil {
		return DateTime{}, fmt.Errorf("xdm: invalid %s %q", kind, s)
	}
	return DateTime{T: t, Kind: kind, HasTZ: hasTZ}, nil
}

// ParseDuration parses the XSD duration lexical form
// (-)PnYnMnDTnHnMn(.n)S.
func ParseDuration(s string) (Duration, error) {
	orig := s
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	if !strings.HasPrefix(s, "P") || len(s) < 2 {
		return Duration{}, fmt.Errorf("xdm: invalid duration %q", orig)
	}
	s = s[1:]
	datePart, timePart := s, ""
	if i := strings.IndexByte(s, 'T'); i >= 0 {
		datePart, timePart = s[:i], s[i+1:]
		if timePart == "" {
			return Duration{}, fmt.Errorf("xdm: invalid duration %q", orig)
		}
	}
	var months int64
	var nanos time.Duration
	readNum := func(str string) (float64, string, byte, error) {
		i := 0
		for i < len(str) && (str[i] >= '0' && str[i] <= '9' || str[i] == '.') {
			i++
		}
		if i == 0 || i == len(str) {
			return 0, "", 0, fmt.Errorf("xdm: invalid duration %q", orig)
		}
		f, err := strconv.ParseFloat(str[:i], 64)
		if err != nil {
			return 0, "", 0, fmt.Errorf("xdm: invalid duration %q", orig)
		}
		return f, str[i+1:], str[i], nil
	}
	seen := false
	for datePart != "" {
		f, rest, unit, err := readNum(datePart)
		if err != nil {
			return Duration{}, err
		}
		switch unit {
		case 'Y':
			months += int64(f) * 12
		case 'M':
			months += int64(f)
		case 'D':
			nanos += time.Duration(f * float64(24*time.Hour))
		default:
			return Duration{}, fmt.Errorf("xdm: invalid duration %q", orig)
		}
		datePart = rest
		seen = true
	}
	for timePart != "" {
		f, rest, unit, err := readNum(timePart)
		if err != nil {
			return Duration{}, err
		}
		switch unit {
		case 'H':
			nanos += time.Duration(f * float64(time.Hour))
		case 'M':
			nanos += time.Duration(f * float64(time.Minute))
		case 'S':
			nanos += time.Duration(f * float64(time.Second))
		default:
			return Duration{}, fmt.Errorf("xdm: invalid duration %q", orig)
		}
		timePart = rest
		seen = true
	}
	if !seen {
		return Duration{}, fmt.Errorf("xdm: invalid duration %q", orig)
	}
	if neg {
		months, nanos = -months, -nanos
	}
	return Duration{Months: months, Nanos: nanos, Kind: TDuration}, nil
}
