package xdm

import (
	"fmt"
	"math"
	"math/big"
	"strings"
)

// CompareValues applies a value comparison (eq, ne, lt, le, gt, ge) to
// two atomic items with XPath 2.0 promotion rules: untypedAtomic is
// treated as string; integer/decimal/double promote pairwise to the
// wider type. Incomparable type pairs yield an error (err:XPTY0004).
func CompareValues(op string, a, b Item) (bool, error) {
	c, err := compareAtomic(a, b)
	if err == errNaN {
		// Comparisons involving NaN are false, except ne which is true.
		return op == "ne", nil
	}
	if err != nil {
		return false, err
	}
	switch op {
	case "eq":
		return c == 0, nil
	case "ne":
		return c != 0, nil
	case "lt":
		return c < 0, nil
	case "le":
		return c <= 0, nil
	case "gt":
		return c > 0, nil
	case "ge":
		return c >= 0, nil
	default:
		return false, fmt.Errorf("xdm: unknown value comparison %q", op)
	}
}

// nanErr signals an unordered comparison involving NaN: every comparison
// with NaN is false except ne, which CompareValues handles specially.
var errNaN = fmt.Errorf("xdm: NaN comparison")

func compareAtomic(a, b Item) (int, error) {
	ta, tb := a.Type(), b.Type()
	// untypedAtomic compares as string.
	if ta == TUntypedAtomic {
		a, ta = String(a.String()), TString
	}
	if tb == TUntypedAtomic {
		b, tb = String(b.String()), TString
	}
	switch {
	case ta.IsNumeric() && tb.IsNumeric():
		return compareNumeric(a, b)
	case (ta == TString || ta == TAnyURI) && (tb == TString || tb == TAnyURI):
		return strings.Compare(a.String(), b.String()), nil
	case ta == TBoolean && tb == TBoolean:
		x, y := bool(a.(Boolean)), bool(b.(Boolean))
		switch {
		case x == y:
			return 0, nil
		case !x:
			return -1, nil
		default:
			return 1, nil
		}
	case (ta == TDate || ta == TTime || ta == TDateTime) && ta == tb:
		x, y := a.(DateTime), b.(DateTime)
		if x.T.Before(y.T) {
			return -1, nil
		}
		if x.T.After(y.T) {
			return 1, nil
		}
		return 0, nil
	case isDurationType(ta) && isDurationType(tb):
		x, y := a.(Duration), b.(Duration)
		// Order by approximate total length (months = 30 days).
		xf := float64(x.Months)*30*24*3600e9 + float64(x.Nanos)
		yf := float64(y.Months)*30*24*3600e9 + float64(y.Nanos)
		switch {
		case xf < yf:
			return -1, nil
		case xf > yf:
			return 1, nil
		default:
			return 0, nil
		}
	case ta == TQName && tb == TQName:
		if a.(QNameValue).Name.Matches(b.(QNameValue).Name) {
			return 0, nil
		}
		return strings.Compare(a.String(), b.String()), nil
	}
	return 0, fmt.Errorf("xdm: cannot compare %s with %s", ta, tb)
}

func isDurationType(t Type) bool {
	return t == TDuration || t == TYearMonthDuration || t == TDayTimeDuration
}

func compareNumeric(a, b Item) (int, error) {
	ta, tb := a.Type(), b.Type()
	if ta == TDouble || tb == TDouble {
		x, y := toFloat(a), toFloat(b)
		if math.IsNaN(x) || math.IsNaN(y) {
			return 0, errNaN
		}
		switch {
		case x < y:
			return -1, nil
		case x > y:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if ta == TDecimal || tb == TDecimal {
		return toRat(a).Cmp(toRat(b)), nil
	}
	x, y := int64(a.(Integer)), int64(b.(Integer))
	switch {
	case x < y:
		return -1, nil
	case x > y:
		return 1, nil
	default:
		return 0, nil
	}
}

func toFloat(i Item) float64 {
	switch v := i.(type) {
	case Integer:
		return float64(v)
	case Decimal:
		return v.Float64()
	case Double:
		return float64(v)
	default:
		return math.NaN()
	}
}

func toRat(i Item) *big.Rat {
	switch v := i.(type) {
	case Integer:
		return new(big.Rat).SetInt64(int64(v))
	case Decimal:
		return v.Rat()
	default:
		r := new(big.Rat)
		r.SetFloat64(toFloat(i))
		return r
	}
}

// GeneralCompare applies a general comparison (=, !=, <, <=, >, >=) to
// two sequences: true iff some pair of items compares true, with
// untypedAtomic coerced to the other operand's type (or double against
// numbers) per XPath 2.0.
func GeneralCompare(op string, a, b Sequence) (bool, error) {
	vop := map[string]string{"=": "eq", "!=": "ne", "<": "lt",
		"<=": "le", ">": "gt", ">=": "ge"}[op]
	if vop == "" {
		return false, fmt.Errorf("xdm: unknown general comparison %q", op)
	}
	for _, x := range AtomizeSequence(a) {
		for _, y := range AtomizeSequence(b) {
			xi, yi, err := coerceGeneralPair(x, y)
			if err != nil {
				return false, err
			}
			ok, err := CompareValues(vop, xi, yi)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
	}
	return false, nil
}

// coerceGeneralPair applies the untypedAtomic coercion rules of general
// comparisons.
func coerceGeneralPair(x, y Item) (Item, Item, error) {
	tx, ty := x.Type(), y.Type()
	if tx == TUntypedAtomic && ty != TUntypedAtomic {
		c, err := coerceUntyped(x, ty)
		if err != nil {
			return nil, nil, err
		}
		return c, y, nil
	}
	if ty == TUntypedAtomic && tx != TUntypedAtomic {
		c, err := coerceUntyped(y, tx)
		if err != nil {
			return nil, nil, err
		}
		return x, c, nil
	}
	return x, y, nil
}

func coerceUntyped(u Item, other Type) (Item, error) {
	switch {
	case other.IsNumeric():
		return Cast(u, TDouble)
	case other == TUntypedAtomic || other == TString || other == TAnyURI:
		return String(u.String()), nil
	default:
		return Cast(u, other)
	}
}

// CompareForSort orders two atomic items for `order by`: the empty
// comparison conventions are handled by the caller; NaN sorts per
// emptyLeast handling (callers place NaN like empty). Returns an error
// for incomparable types.
func CompareForSort(a, b Item) (int, error) {
	c, err := compareAtomic(a, b)
	if err == errNaN {
		// Total order for sorting: NaN first.
		an := isNaN(a)
		bn := isNaN(b)
		switch {
		case an && bn:
			return 0, nil
		case an:
			return -1, nil
		default:
			return 1, nil
		}
	}
	return c, err
}

func isNaN(i Item) bool {
	d, ok := i.(Double)
	return ok && math.IsNaN(float64(d))
}
