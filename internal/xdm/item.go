// Package xdm implements the XQuery 1.0 and XPath 2.0 Data Model: items,
// sequences, atomic values with the XML Schema primitive type hierarchy,
// atomization, effective boolean value, comparisons, arithmetic and
// casting. Node items wrap the live dom tree, which is how the plug-in
// "implements the XDM on top of the DOM" (paper §5.2): reads see the
// current page and updates applied through the Update Facility mutate it.
package xdm

import (
	"fmt"
	"math"
	"math/big"
	"strings"
	"time"

	"repro/internal/dom"
)

// Item is a single XDM item: an atomic value or a node.
type Item interface {
	// Type returns the dynamic type of the item.
	Type() Type
	// String returns the string value (for atomics, the canonical
	// lexical form; for nodes, the XDM string value).
	String() string
}

// Sequence is an ordered sequence of items — the value of every XQuery
// expression. The empty sequence is represented by a nil or empty slice.
type Sequence []Item

// Empty reports whether the sequence has no items.
func (s Sequence) Empty() bool { return len(s) == 0 }

// One returns the single item of a singleton sequence.
func (s Sequence) One() (Item, error) {
	if len(s) != 1 {
		return nil, fmt.Errorf("xdm: expected a singleton sequence, got %d items", len(s))
	}
	return s[0], nil
}

// AtMostOne returns the item of a zero-or-one sequence (nil for empty).
func (s Sequence) AtMostOne() (Item, error) {
	switch len(s) {
	case 0:
		return nil, nil
	case 1:
		return s[0], nil
	default:
		return nil, fmt.Errorf("xdm: expected at most one item, got %d", len(s))
	}
}

// Singleton builds a one-item sequence.
func Singleton(i Item) Sequence { return Sequence{i} }

// --- Atomic value types -------------------------------------------------

// String is xs:string.
type String string

// Type implements Item.
func (String) Type() Type { return TString }

func (v String) String() string { return string(v) }

// UntypedAtomic is xs:untypedAtomic: the type of atomized untyped nodes
// (all browser DOM content, since web pages are schemaless).
type UntypedAtomic string

// Type implements Item.
func (UntypedAtomic) Type() Type { return TUntypedAtomic }

func (v UntypedAtomic) String() string { return string(v) }

// AnyURI is xs:anyURI.
type AnyURI string

// Type implements Item.
func (AnyURI) Type() Type { return TAnyURI }

func (v AnyURI) String() string { return string(v) }

// Boolean is xs:boolean.
type Boolean bool

// Type implements Item.
func (Boolean) Type() Type { return TBoolean }

func (v Boolean) String() string {
	if v {
		return "true"
	}
	return "false"
}

// Integer is xs:integer.
type Integer int64

// Type implements Item.
func (Integer) Type() Type { return TInteger }

func (v Integer) String() string { return fmt.Sprintf("%d", int64(v)) }

// Double is xs:double (xs:float is widened to it).
type Double float64

// Type implements Item.
func (Double) Type() Type { return TDouble }

func (v Double) String() string { return formatDouble(float64(v)) }

// formatDouble renders the XPath canonical-ish lexical form of a double.
func formatDouble(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "INF"
	case math.IsInf(f, -1):
		return "-INF"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return fmt.Sprintf("%d", int64(f))
	default:
		s := fmt.Sprintf("%g", f)
		return strings.Replace(s, "e+0", "E", 1)
	}
}

// Decimal is xs:decimal, backed by an exact rational.
type Decimal struct{ r *big.Rat }

// NewDecimal builds a Decimal from a rational (which is not copied).
func NewDecimal(r *big.Rat) Decimal { return Decimal{r: r} }

// DecimalFromInt builds a Decimal with integer value n.
func DecimalFromInt(n int64) Decimal { return Decimal{r: new(big.Rat).SetInt64(n)} }

// DecimalFromString parses a decimal lexical form.
func DecimalFromString(s string) (Decimal, error) {
	s = strings.TrimSpace(s)
	if s == "" || strings.ContainsAny(s, "eE") {
		return Decimal{}, fmt.Errorf("xdm: invalid xs:decimal %q", s)
	}
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return Decimal{}, fmt.Errorf("xdm: invalid xs:decimal %q", s)
	}
	return Decimal{r: r}, nil
}

// Rat returns the underlying rational (not a copy).
func (v Decimal) Rat() *big.Rat {
	if v.r == nil {
		return new(big.Rat)
	}
	return v.r
}

// Type implements Item.
func (Decimal) Type() Type { return TDecimal }

func (v Decimal) String() string {
	r := v.Rat()
	if r.IsInt() {
		return r.Num().String()
	}
	// Render with up to 18 fractional digits, trimming zeros.
	s := r.FloatString(18)
	s = strings.TrimRight(s, "0")
	s = strings.TrimSuffix(s, ".")
	return s
}

// Float64 returns the nearest float64.
func (v Decimal) Float64() float64 { f, _ := v.Rat().Float64(); return f }

// QNameValue is xs:QName.
type QNameValue struct{ Name dom.QName }

// Type implements Item.
func (QNameValue) Type() Type { return TQName }

func (v QNameValue) String() string { return v.Name.String() }

// DateTime is xs:dateTime, xs:date or xs:time depending on kind.
type DateTime struct {
	T     time.Time
	Kind  Type // TDateTime, TDate or TTime
	HasTZ bool
}

// Type implements Item.
func (v DateTime) Type() Type { return v.Kind }

func (v DateTime) String() string {
	var s string
	switch v.Kind {
	case TDate:
		s = v.T.Format("2006-01-02")
	case TTime:
		s = v.T.Format("15:04:05")
	default:
		s = v.T.Format("2006-01-02T15:04:05")
	}
	if v.HasTZ {
		if _, off := v.T.Zone(); off == 0 {
			s += "Z"
		} else {
			s += v.T.Format("-07:00")
		}
	}
	return s
}

// Duration is xs:duration. YearMonth components are stored in Months;
// DayTime components in Nanos. xs:yearMonthDuration and
// xs:dayTimeDuration constrain one part to zero.
type Duration struct {
	Months int64
	Nanos  time.Duration
	Kind   Type // TDuration, TYearMonthDuration or TDayTimeDuration
}

// Type implements Item.
func (v Duration) Type() Type {
	if v.Kind == 0 {
		return TDuration
	}
	return v.Kind
}

func (v Duration) String() string {
	neg := v.Months < 0 || (v.Months == 0 && v.Nanos < 0)
	m, n := v.Months, v.Nanos
	if neg {
		m, n = -m, -n
	}
	var b strings.Builder
	if neg {
		b.WriteByte('-')
	}
	b.WriteByte('P')
	if y := m / 12; y > 0 {
		fmt.Fprintf(&b, "%dY", y)
	}
	if mo := m % 12; mo > 0 {
		fmt.Fprintf(&b, "%dM", mo)
	}
	day := int64(n / (24 * time.Hour))
	n -= time.Duration(day) * 24 * time.Hour
	if day > 0 {
		fmt.Fprintf(&b, "%dD", day)
	}
	h := int64(n / time.Hour)
	n -= time.Duration(h) * time.Hour
	mi := int64(n / time.Minute)
	n -= time.Duration(mi) * time.Minute
	secs := n.Seconds()
	if h > 0 || mi > 0 || secs != 0 {
		b.WriteByte('T')
		if h > 0 {
			fmt.Fprintf(&b, "%dH", h)
		}
		if mi > 0 {
			fmt.Fprintf(&b, "%dM", mi)
		}
		if secs != 0 {
			s := fmt.Sprintf("%g", secs)
			fmt.Fprintf(&b, "%sS", s)
		}
	}
	out := b.String()
	if out == "P" || out == "-P" {
		return "PT0S"
	}
	return out
}

// --- Node items ---------------------------------------------------------

// Node wraps a dom node as an XDM item. The wrapper is a value type;
// two Nodes are the same XDM node iff their N pointers are equal.
type Node struct{ N *dom.Node }

// NewNode wraps a dom node.
func NewNode(n *dom.Node) Node { return Node{N: n} }

// Type implements Item.
func (n Node) Type() Type {
	switch n.N.Type {
	case dom.DocumentNode:
		return TDocumentNode
	case dom.ElementNode:
		return TElementNode
	case dom.AttributeNode:
		return TAttributeNode
	case dom.TextNode:
		return TTextNode
	case dom.CommentNode:
		return TCommentNode
	default:
		return TPINode
	}
}

func (n Node) String() string { return n.N.StringValue() }

// IsNode reports whether the item is a node and unwraps it.
func IsNode(i Item) (*dom.Node, bool) {
	n, ok := i.(Node)
	if !ok {
		return nil, false
	}
	return n.N, true
}

// --- Atomization and effective boolean value ----------------------------

// Atomize maps an item to its typed value: nodes become xs:untypedAtomic
// (our documents are schemaless), comments/PIs become xs:string per the
// XDM accessor rules, atomics pass through.
func Atomize(i Item) Item {
	n, ok := i.(Node)
	if !ok {
		return i
	}
	switch n.N.Type {
	case dom.CommentNode, dom.ProcessingInstructionNode:
		return String(n.N.StringValue())
	default:
		return UntypedAtomic(n.N.StringValue())
	}
}

// AtomizeSequence atomizes every item of a sequence.
func AtomizeSequence(s Sequence) Sequence {
	out := make(Sequence, len(s))
	for i, it := range s {
		out[i] = Atomize(it)
	}
	return out
}

// EffectiveBooleanValue computes fn:boolean over a sequence per XPath:
// empty is false; a sequence whose first item is a node is true; a
// singleton atomic follows its type's rules; anything else is an error.
func EffectiveBooleanValue(s Sequence) (bool, error) {
	if len(s) == 0 {
		return false, nil
	}
	if _, ok := s[0].(Node); ok {
		return true, nil
	}
	if len(s) > 1 {
		return false, fmt.Errorf("xdm: effective boolean value of a sequence of %d atomic items", len(s))
	}
	switch v := s[0].(type) {
	case Boolean:
		return bool(v), nil
	case String:
		return v != "", nil
	case UntypedAtomic:
		return v != "", nil
	case AnyURI:
		return v != "", nil
	case Integer:
		return v != 0, nil
	case Decimal:
		return v.Rat().Sign() != 0, nil
	case Double:
		return !(float64(v) == 0 || math.IsNaN(float64(v))), nil
	default:
		return false, fmt.Errorf("xdm: no effective boolean value for %s", v.Type())
	}
}

// DeepEqual implements fn:deep-equal over two items.
func DeepEqual(a, b Item) bool {
	na, aok := a.(Node)
	nb, bok := b.(Node)
	if aok != bok {
		return false
	}
	if aok {
		return deepEqualNode(na.N, nb.N)
	}
	// Atomic: compare with eq semantics; unequal types that cannot be
	// compared are not equal. NaN equals NaN for deep-equal.
	if da, ok := a.(Double); ok && math.IsNaN(float64(da)) {
		if db, ok := b.(Double); ok && math.IsNaN(float64(db)) {
			return true
		}
	}
	eq, err := CompareValues("eq", a, b)
	return err == nil && eq
}

func deepEqualNode(a, b *dom.Node) bool {
	if a.Type != b.Type {
		return false
	}
	switch a.Type {
	case dom.TextNode, dom.CommentNode:
		return a.Data == b.Data
	case dom.AttributeNode:
		return a.Name.Matches(b.Name) && a.Data == b.Data
	case dom.ProcessingInstructionNode:
		return a.Name.Local == b.Name.Local && a.Data == b.Data
	}
	if a.Type == dom.ElementNode {
		if !a.Name.Matches(b.Name) {
			return false
		}
		if len(a.Attrs()) != len(b.Attrs()) {
			return false
		}
		for _, aa := range a.Attrs() {
			v, ok := b.Attr(aa.Name)
			if !ok || v != aa.Data {
				return false
			}
		}
	}
	// Compare children ignoring comments and PIs, per fn:deep-equal.
	ac := significantChildren(a)
	bc := significantChildren(b)
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if !deepEqualNode(ac[i], bc[i]) {
			return false
		}
	}
	return true
}

func significantChildren(n *dom.Node) []*dom.Node {
	var out []*dom.Node
	for _, c := range n.Children() {
		if c.Type == dom.CommentNode || c.Type == dom.ProcessingInstructionNode {
			continue
		}
		out = append(out, c)
	}
	return out
}
