package xdm

import "fmt"

// Iter is a pull-based (Volcano-style) item stream: the lazy counterpart
// of Sequence. Next returns the next item and true, or (nil, false, nil)
// when the stream is exhausted, or an error. After false or an error the
// iterator must not be pulled again.
//
// Iterators let consumers that only need a prefix of a sequence —
// fn:exists, positional predicates, quantifiers, general comparisons —
// stop pulling as soon as the answer is decided, instead of
// materializing every intermediate result. Producers that inherently
// need the whole sequence (sorts, fn:last(), order by, the pending
// update list) materialize explicitly via Materialize.
type Iter interface {
	Next() (Item, bool, error)
}

// IterFunc adapts a closure to the Iter interface.
type IterFunc func() (Item, bool, error)

// Next implements Iter.
func (f IterFunc) Next() (Item, bool, error) { return f() }

// sliceIter streams a materialized sequence.
type sliceIter struct {
	s Sequence
	i int
}

func (it *sliceIter) Next() (Item, bool, error) {
	if it.i >= len(it.s) {
		return nil, false, nil
	}
	item := it.s[it.i]
	it.i++
	return item, true, nil
}

// FromSlice adapts a materialized sequence to the Iter interface.
func FromSlice(s Sequence) Iter { return &sliceIter{s: s} }

// EmptyIter returns an iterator over the empty sequence.
func EmptyIter() Iter { return &sliceIter{} }

// SingletonIter returns an iterator over a one-item sequence.
func SingletonIter(i Item) Iter { return &sliceIter{s: Sequence{i}} }

// ErrIter returns an iterator that fails with err on the first pull.
func ErrIter(err error) Iter {
	return IterFunc(func() (Item, bool, error) { return nil, false, err })
}

// Materialize drains an iterator into a sequence. This is the single
// place lazy evaluation gives way to eager: sorts, last(), order by and
// snapshot (PUL) semantics call it.
func Materialize(it Iter) (Sequence, error) {
	if s, ok := it.(*sliceIter); ok && s.i == 0 {
		return s.s, nil
	}
	var out Sequence
	for {
		item, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, item)
	}
}

// MaterializeAtMost pulls up to max+1 items (to detect overflow) and
// returns them. Consumers with cardinality rules (zero-or-one, EBV) use
// it to bound their pulls.
func MaterializeAtMost(it Iter, max int) (Sequence, error) {
	var out Sequence
	for len(out) <= max {
		item, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, item)
	}
	return out, nil
}

// ConcatIters streams the concatenation of several iterators.
func ConcatIters(its ...Iter) Iter {
	i := 0
	return IterFunc(func() (Item, bool, error) {
		for i < len(its) {
			item, ok, err := its[i].Next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				return item, true, nil
			}
			i++
		}
		return nil, false, nil
	})
}

// AtomizeIter lazily atomizes every item of a stream.
func AtomizeIter(it Iter) Iter {
	return IterFunc(func() (Item, bool, error) {
		item, ok, err := it.Next()
		if err != nil || !ok {
			return nil, ok, err
		}
		return Atomize(item), true, nil
	})
}

// EffectiveBooleanValueIter computes fn:boolean over a stream pulling at
// most two items: empty is false, a first-item node is true, a singleton
// atomic follows its type's rules, two or more atomics are an error.
func EffectiveBooleanValueIter(it Iter) (bool, error) {
	first, ok, err := it.Next()
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	if _, isNode := first.(Node); isNode {
		return true, nil
	}
	_, more, err := it.Next()
	if err != nil {
		return false, err
	}
	if more {
		return false, fmt.Errorf("xdm: effective boolean value of a sequence of two or more atomic items")
	}
	return EffectiveBooleanValue(Sequence{first})
}

// GeneralCompareStream applies a general comparison streaming the left
// operand against a materialized right operand: it stops pulling as soon
// as one pair compares true. Per XPath 2.0 the result is
// implementation-ordered, so errors hidden behind an early match may not
// surface.
func GeneralCompareStream(op string, a Iter, b Sequence) (bool, error) {
	vop := map[string]string{"=": "eq", "!=": "ne", "<": "lt",
		"<=": "le", ">": "gt", ">=": "ge"}[op]
	if vop == "" {
		return false, fmt.Errorf("xdm: unknown general comparison %q", op)
	}
	if len(b) == 0 {
		return false, nil
	}
	bAtomized := AtomizeSequence(b)
	for {
		item, ok, err := a.Next()
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		x := Atomize(item)
		for _, y := range bAtomized {
			xi, yi, err := coerceGeneralPair(x, y)
			if err != nil {
				return false, err
			}
			ok, err := CompareValues(vop, xi, yi)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
	}
}
