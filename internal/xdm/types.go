package xdm

import (
	"fmt"

	"repro/internal/dom"
)

// Type identifies a dynamic XDM type: an atomic xs: type or a node kind.
type Type int

// Atomic types and node kinds.
const (
	TUntypedAtomic Type = iota + 1
	TString
	TBoolean
	TDecimal
	TInteger
	TDouble
	TDate
	TTime
	TDateTime
	TDuration
	TYearMonthDuration
	TDayTimeDuration
	TQName
	TAnyURI

	TDocumentNode
	TElementNode
	TAttributeNode
	TTextNode
	TCommentNode
	TPINode
)

// String returns the conventional name of the type.
func (t Type) String() string {
	switch t {
	case TUntypedAtomic:
		return "xs:untypedAtomic"
	case TString:
		return "xs:string"
	case TBoolean:
		return "xs:boolean"
	case TDecimal:
		return "xs:decimal"
	case TInteger:
		return "xs:integer"
	case TDouble:
		return "xs:double"
	case TDate:
		return "xs:date"
	case TTime:
		return "xs:time"
	case TDateTime:
		return "xs:dateTime"
	case TDuration:
		return "xs:duration"
	case TYearMonthDuration:
		return "xs:yearMonthDuration"
	case TDayTimeDuration:
		return "xs:dayTimeDuration"
	case TQName:
		return "xs:QName"
	case TAnyURI:
		return "xs:anyURI"
	case TDocumentNode:
		return "document-node()"
	case TElementNode:
		return "element()"
	case TAttributeNode:
		return "attribute()"
	case TTextNode:
		return "text()"
	case TCommentNode:
		return "comment()"
	case TPINode:
		return "processing-instruction()"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// IsNumeric reports whether the type is in the numeric tower.
func (t Type) IsNumeric() bool {
	return t == TInteger || t == TDecimal || t == TDouble
}

// IsNode reports whether the type is a node kind.
func (t Type) IsNode() bool { return t >= TDocumentNode }

// AtomicTypeByName resolves the xs: local name of an atomic type (for
// `cast as` and sequence types). ok is false for unknown names.
func AtomicTypeByName(local string) (Type, bool) {
	switch local {
	case "untypedAtomic":
		return TUntypedAtomic, true
	case "string":
		return TString, true
	case "boolean":
		return TBoolean, true
	case "decimal":
		return TDecimal, true
	case "integer", "int", "long", "short", "byte",
		"nonNegativeInteger", "positiveInteger", "negativeInteger",
		"nonPositiveInteger", "unsignedInt", "unsignedLong",
		"unsignedShort", "unsignedByte":
		return TInteger, true
	case "double", "float":
		return TDouble, true
	case "date":
		return TDate, true
	case "time":
		return TTime, true
	case "dateTime":
		return TDateTime, true
	case "duration":
		return TDuration, true
	case "yearMonthDuration":
		return TYearMonthDuration, true
	case "dayTimeDuration":
		return TDayTimeDuration, true
	case "QName":
		return TQName, true
	case "anyURI":
		return TAnyURI, true
	default:
		return 0, false
	}
}

// Occurrence is a sequence-type occurrence indicator.
type Occurrence int

// Occurrence indicators.
const (
	ExactlyOne Occurrence = iota
	ZeroOrOne             // ?
	ZeroOrMore            // *
	OneOrMore             // +
)

// String renders the indicator.
func (o Occurrence) String() string {
	switch o {
	case ZeroOrOne:
		return "?"
	case ZeroOrMore:
		return "*"
	case OneOrMore:
		return "+"
	default:
		return ""
	}
}

// ItemTest is the item-type part of a sequence type.
type ItemTest struct {
	// AnyItem matches item().
	AnyItem bool
	// Atomic, when non-zero, matches the atomic type (with derivation:
	// integer is a decimal; untyped matches untypedAtomic only).
	Atomic Type
	// Kind, when non-zero, matches the node kind; KindName optionally
	// constrains the element/attribute name ("*" local matches any).
	Kind     Type
	KindName dom.QName
	HasName  bool
	// AnyNode matches node().
	AnyNode bool
}

// Matches reports whether the item satisfies the test.
func (it ItemTest) Matches(i Item) bool {
	switch {
	case it.AnyItem:
		return true
	case it.AnyNode:
		_, ok := i.(Node)
		return ok
	case it.Atomic != 0:
		t := i.Type()
		if t.IsNode() {
			return false
		}
		if t == it.Atomic {
			return true
		}
		// Derivation shortcuts in our collapsed hierarchy.
		switch it.Atomic {
		case TDecimal:
			return t == TInteger
		case TDuration:
			return t == TYearMonthDuration || t == TDayTimeDuration
		}
		return false
	case it.Kind != 0:
		n, ok := i.(Node)
		if !ok || n.Type() != it.Kind {
			return false
		}
		if it.HasName && it.KindName.Local != "*" {
			return n.N.Name.Matches(it.KindName)
		}
		return true
	default:
		return false
	}
}

// String renders the test.
func (it ItemTest) String() string {
	switch {
	case it.AnyItem:
		return "item()"
	case it.AnyNode:
		return "node()"
	case it.Atomic != 0:
		return it.Atomic.String()
	case it.Kind != 0:
		name := ""
		if it.HasName {
			name = it.KindName.String()
		}
		switch it.Kind {
		case TElementNode:
			return "element(" + name + ")"
		case TAttributeNode:
			return "attribute(" + name + ")"
		case TDocumentNode:
			return "document-node()"
		case TTextNode:
			return "text()"
		case TCommentNode:
			return "comment()"
		default:
			return "processing-instruction()"
		}
	default:
		return "none"
	}
}

// SeqType is a sequence type: an item test plus occurrence indicator.
// The zero value matches nothing; use AnySeqType for item()*.
type SeqType struct {
	Item  ItemTest
	Occ   Occurrence
	Empty bool // empty-sequence()
}

// AnySeqType matches any sequence (item()*).
var AnySeqType = SeqType{Item: ItemTest{AnyItem: true}, Occ: ZeroOrMore}

// Matches reports whether the sequence is an instance of the type.
func (st SeqType) Matches(s Sequence) bool {
	if st.Empty {
		return len(s) == 0
	}
	switch st.Occ {
	case ExactlyOne:
		if len(s) != 1 {
			return false
		}
	case ZeroOrOne:
		if len(s) > 1 {
			return false
		}
	case OneOrMore:
		if len(s) == 0 {
			return false
		}
	}
	for _, i := range s {
		if !st.Item.Matches(i) {
			return false
		}
	}
	return true
}

// String renders the sequence type.
func (st SeqType) String() string {
	if st.Empty {
		return "empty-sequence()"
	}
	return st.Item.String() + st.Occ.String()
}
