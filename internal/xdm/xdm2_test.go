package xdm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// Second batch: deeper casting-matrix coverage, duration/date-time
// behaviour, and comparison properties.

func TestCastMatrixPairwise(t *testing.T) {
	// For each (value, target) pair the outcome must be deterministic
	// and — when it succeeds — re-castable to string and back without
	// changing the value ("cast stability").
	values := []Item{
		String("42"), String("x"), UntypedAtomic("1.5"), Boolean(true),
		Integer(-7), mustD("2.25"), Double(1.5e10), AnyURI("http://x"),
	}
	targets := []Type{TString, TUntypedAtomic, TBoolean, TInteger,
		TDecimal, TDouble, TAnyURI}
	for _, v := range values {
		for _, target := range targets {
			out1, err1 := Cast(v, target)
			out2, err2 := Cast(v, target)
			if (err1 == nil) != (err2 == nil) {
				t.Errorf("Cast(%v→%s) not deterministic", v, target)
				continue
			}
			if err1 != nil {
				continue
			}
			if out1.String() != out2.String() {
				t.Errorf("Cast(%v→%s) unstable: %q vs %q", v, target, out1, out2)
			}
			// String round trip.
			s, err := Cast(out1, TString)
			if err != nil {
				t.Errorf("Cast(%v→string): %v", out1, err)
				continue
			}
			back, err := Cast(s, target)
			if err != nil {
				t.Errorf("Cast(%q→%s) failed after round trip: %v", s, target, err)
				continue
			}
			if back.String() != out1.String() {
				t.Errorf("round trip %v→%s: %q != %q", v, target, back, out1)
			}
		}
	}
}

func TestTimezoneArithmetic(t *testing.T) {
	a, _ := ParseDateTime("2008-01-01T12:00:00+02:00", TDateTime)
	b, _ := ParseDateTime("2008-01-01T10:00:00Z", TDateTime)
	// Same instant.
	eq, err := CompareValues("eq", a, b)
	if err != nil || !eq {
		t.Errorf("tz-normalised equality: %v %v", eq, err)
	}
	diff, err := Arithmetic("-", a, b)
	if err != nil || diff.String() != "PT0S" {
		t.Errorf("tz diff = %v, %v", diff, err)
	}
}

func TestDurationNormalisation(t *testing.T) {
	// Adding day-time to year-month produces a generic duration.
	ym, _ := ParseDuration("P1Y")
	dt, _ := ParseDuration("P1D")
	ymT, _ := Cast(ym, TYearMonthDuration)
	dtT, _ := Cast(dt, TDayTimeDuration)
	sum, err := Arithmetic("+", ymT, dtT)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Type() != TDuration || sum.String() != "P1Y1D" {
		t.Errorf("mixed sum = %s (%s)", sum, sum.Type())
	}
	// Subtracting back isolates each component.
	back, err := Arithmetic("-", sum, dtT)
	if err != nil || back.Type() != TYearMonthDuration {
		t.Errorf("back = %v (%v), %v", back, back.Type(), err)
	}
}

func TestNegativeDurationRendering(t *testing.T) {
	d, err := ParseDuration("-P1DT2H")
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != "-P1DT2H" {
		t.Errorf("negative duration = %s", d.String())
	}
	n, err := Negate(d)
	if err != nil || n.String() != "P1DT2H" {
		t.Errorf("negated = %v, %v", n, err)
	}
}

func TestDoubleLexicalForms(t *testing.T) {
	tests := []struct {
		f    float64
		want string
	}{
		{0, "0"},
		{-0.5, "-0.5"},
		{1e21, "1e+21"},
		{123456789, "123456789"},
	}
	for _, tt := range tests {
		if got := Double(tt.f).String(); got != tt.want {
			t.Errorf("Double(%v) = %q, want %q", tt.f, got, tt.want)
		}
	}
}

func TestDecimalCanonicalString(t *testing.T) {
	cases := map[string]string{
		"1.500":   "1.5",
		"0.50":    "0.5",
		"-2.0":    "-2",
		"10":      "10",
		"0.125":   "0.125",
		"000.250": "0.25",
	}
	for in, want := range cases {
		d, err := DecimalFromString(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.String(); got != want {
			t.Errorf("Decimal(%q) = %q, want %q", in, got, want)
		}
	}
	// Scientific notation is NOT valid xs:decimal.
	if _, err := DecimalFromString("1e3"); err == nil {
		t.Error("1e3 must not parse as decimal")
	}
}

func TestGeneralCompareCrossTypeErrors(t *testing.T) {
	// Comparing incompatible concrete types is an error, not false.
	if _, err := GeneralCompare("=", Sequence{Integer(1)}, Sequence{Boolean(true)}); err == nil {
		t.Error("integer vs boolean must error")
	}
	// But untyped coerces to either side.
	ok, err := GeneralCompare("=", Sequence{UntypedAtomic("true")}, Sequence{Boolean(true)})
	if err != nil || !ok {
		t.Errorf("untyped vs boolean: %v %v", ok, err)
	}
	d, _ := ParseDateTime("2008-01-01", TDate)
	ok, err = GeneralCompare("=", Sequence{UntypedAtomic("2008-01-01")}, Sequence{d})
	if err != nil || !ok {
		t.Errorf("untyped vs date: %v %v", ok, err)
	}
}

func TestCompareForSortTotalOverDoublesWithNaN(t *testing.T) {
	items := []Item{Double(math.NaN()), Double(-1), Double(0), Double(1), Double(math.Inf(1))}
	for i := range items {
		for j := range items {
			c, err := CompareForSort(items[i], items[j])
			if err != nil {
				t.Fatalf("CompareForSort(%v,%v): %v", items[i], items[j], err)
			}
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			// NaN vs NaN is equal; NaN sorts first.
			if c != want {
				t.Errorf("CompareForSort(%v,%v) = %d, want %d", items[i], items[j], c, want)
			}
		}
	}
}

func TestParseDateTimeRejectsGarbage(t *testing.T) {
	bad := []string{"", "2008", "2008-13-01", "2008-01-32", "24:00:61",
		"2008-01-01T", "not a date", "2008/01/01"}
	for _, s := range bad {
		if _, err := ParseDateTime(s, TDate); err == nil {
			if _, err2 := ParseDateTime(s, TDateTime); err2 == nil {
				t.Errorf("ParseDateTime(%q) should fail", s)
			}
		}
	}
}

func TestFractionalSeconds(t *testing.T) {
	dt, err := ParseDateTime("2008-01-01T00:00:00.5", TDateTime)
	if err != nil {
		t.Fatal(err)
	}
	half, _ := ParseDuration("PT0.5S")
	sum, err := Arithmetic("+", dt, half)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sum.String(), "2008-01-01T00:00:01") {
		t.Errorf("fractional add = %s", sum)
	}
}

// Property: integer arithmetic matches Go semantics for + - *.
func TestIntegerArithmeticProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := int64(a), int64(b)
		sum, err1 := Arithmetic("+", Integer(x), Integer(y))
		dif, err2 := Arithmetic("-", Integer(x), Integer(y))
		prd, err3 := Arithmetic("*", Integer(x), Integer(y))
		return err1 == nil && err2 == nil && err3 == nil &&
			sum == Integer(x+y) && dif == Integer(x-y) && prd == Integer(x*y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: duration parse/format round trip for day-time durations.
func TestDurationRoundTripProperty(t *testing.T) {
	f := func(hours uint16, minutes, seconds uint8) bool {
		d := Duration{
			Nanos: time.Duration(hours)*time.Hour +
				time.Duration(minutes%60)*time.Minute +
				time.Duration(seconds%60)*time.Second,
			Kind: TDayTimeDuration,
		}
		parsed, err := ParseDuration(d.String())
		return err == nil && parsed.Nanos == d.Nanos && parsed.Months == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EffectiveBooleanValue of a singleton string equals
// (len > 0).
func TestEBVStringProperty(t *testing.T) {
	f := func(s string) bool {
		got, err := EffectiveBooleanValue(Sequence{String(s)})
		return err == nil && got == (len(s) > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
