package xdm

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/dom"
)

func TestAtomicStringForms(t *testing.T) {
	tests := []struct {
		v    Item
		want string
	}{
		{String("hi"), "hi"},
		{UntypedAtomic("u"), "u"},
		{Boolean(true), "true"},
		{Boolean(false), "false"},
		{Integer(-42), "-42"},
		{Double(1.5), "1.5"},
		{Double(3), "3"},
		{Double(math.Inf(1)), "INF"},
		{Double(math.Inf(-1)), "-INF"},
		{Double(math.NaN()), "NaN"},
		{DecimalFromInt(7), "7"},
		{mustDecimal(t, "3.140"), "3.14"},
		{mustDecimal(t, "-0.5"), "-0.5"},
		{AnyURI("http://x"), "http://x"},
		{QNameValue{Name: dom.QName{Prefix: "p", Local: "n"}}, "p:n"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("%s String() = %q, want %q", tt.v.Type(), got, tt.want)
		}
	}
}

func mustDecimal(t *testing.T, s string) Decimal {
	t.Helper()
	d, err := DecimalFromString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDurationString(t *testing.T) {
	tests := []struct {
		d    Duration
		want string
	}{
		{Duration{Months: 14}, "P1Y2M"},
		{Duration{Nanos: 90 * 60 * 1e9}, "PT1H30M"},
		{Duration{Months: -12}, "-P1Y"},
		{Duration{}, "PT0S"},
		{Duration{Nanos: 25*3600*1e9 + 30*1e9}, "P1DT1H30S"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("Duration = %q, want %q", got, tt.want)
		}
	}
}

func TestParseDurationRoundTrip(t *testing.T) {
	for _, s := range []string{"P1Y2M", "PT1H30M", "-P1Y", "P1DT1H30S", "PT0S", "P3D", "PT0.5S"} {
		d, err := ParseDuration(s)
		if err != nil {
			t.Fatalf("ParseDuration(%q): %v", s, err)
		}
		if got := d.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	for _, s := range []string{"", "P", "1Y", "PX", "P1H", "PT1D", "-"} {
		if _, err := ParseDuration(s); err == nil {
			t.Errorf("ParseDuration(%q): expected error", s)
		}
	}
}

func TestParseDateTime(t *testing.T) {
	dt, err := ParseDateTime("2008-08-22T14:30:05", TDateTime)
	if err != nil {
		t.Fatal(err)
	}
	if dt.String() != "2008-08-22T14:30:05" {
		t.Errorf("dateTime = %q", dt.String())
	}
	z, err := ParseDateTime("2008-08-22T14:30:05Z", TDateTime)
	if err != nil {
		t.Fatal(err)
	}
	if !z.HasTZ || z.String() != "2008-08-22T14:30:05Z" {
		t.Errorf("Z form = %q HasTZ=%v", z.String(), z.HasTZ)
	}
	off, err := ParseDateTime("2008-08-22T14:30:05+02:00", TDateTime)
	if err != nil {
		t.Fatal(err)
	}
	if off.String() != "2008-08-22T14:30:05+02:00" {
		t.Errorf("offset form = %q", off.String())
	}
	d, err := ParseDateTime("2008-08-22", TDate)
	if err != nil || d.String() != "2008-08-22" {
		t.Errorf("date = %q, %v", d.String(), err)
	}
	tm, err := ParseDateTime("14:30:05", TTime)
	if err != nil || tm.String() != "14:30:05" {
		t.Errorf("time = %q, %v", tm.String(), err)
	}
	if _, err := ParseDateTime("not-a-date", TDate); err == nil {
		t.Error("expected parse error")
	}
}

func TestCastMatrix(t *testing.T) {
	tests := []struct {
		v      Item
		target Type
		want   string
		ok     bool
	}{
		{String("42"), TInteger, "42", true},
		{String(" 42 "), TInteger, "42", true},
		{String("4.2"), TDecimal, "4.2", true},
		{String("4.2e1"), TDouble, "42", true},
		{String("INF"), TDouble, "INF", true},
		{String("true"), TBoolean, "true", true},
		{String("1"), TBoolean, "true", true},
		{String("x"), TBoolean, "", false},
		{String("x"), TInteger, "", false},
		{Integer(3), TDouble, "3", true},
		{Integer(3), TDecimal, "3", true},
		{Integer(0), TBoolean, "false", true},
		{Double(3.7), TInteger, "3", true},
		{Double(-3.7), TInteger, "-3", true},
		{Double(math.NaN()), TInteger, "", false},
		{mustD("7.9"), TInteger, "7", true},
		{Boolean(true), TInteger, "1", true},
		{UntypedAtomic("5"), TInteger, "5", true},
		{Integer(9), TString, "9", true},
		{String("2008-01-02"), TDate, "2008-01-02", true},
		{String("P1Y"), TYearMonthDuration, "P1Y", true},
		{String("P1D"), TYearMonthDuration, "", false},
		{String("P1D"), TDayTimeDuration, "P1D", true},
		{String("a:b"), TQName, "a:b", true},
		{String("u"), TAnyURI, "u", true},
		{Boolean(true), TDate, "", false},
	}
	for _, tt := range tests {
		got, err := Cast(tt.v, tt.target)
		if tt.ok != (err == nil) {
			t.Errorf("Cast(%v -> %s): err = %v, want ok=%v", tt.v, tt.target, err, tt.ok)
			continue
		}
		if tt.ok && got.String() != tt.want {
			t.Errorf("Cast(%v -> %s) = %q, want %q", tt.v, tt.target, got.String(), tt.want)
		}
	}
}

func mustD(s string) Decimal {
	d, err := DecimalFromString(s)
	if err != nil {
		panic(err)
	}
	return d
}

func TestDateTimeToDateCast(t *testing.T) {
	dt, _ := ParseDateTime("2008-08-22T14:30:05", TDateTime)
	d, err := Cast(dt, TDate)
	if err != nil || d.String() != "2008-08-22" {
		t.Errorf("dateTime->date = %q, %v", d, err)
	}
	back, err := Cast(d, TDateTime)
	if err != nil || back.String() != "2008-08-22T00:00:00" {
		t.Errorf("date->dateTime = %q, %v", back, err)
	}
}

func TestCompareValues(t *testing.T) {
	tests := []struct {
		op   string
		a, b Item
		want bool
		ok   bool
	}{
		{"eq", Integer(1), Integer(1), true, true},
		{"lt", Integer(1), Double(1.5), true, true},
		{"lt", mustD("1.1"), mustD("1.2"), true, true},
		{"ge", Double(2), Integer(2), true, true},
		{"eq", String("a"), String("a"), true, true},
		{"lt", String("a"), String("b"), true, true},
		{"eq", UntypedAtomic("x"), String("x"), true, true},
		{"eq", Boolean(true), Boolean(true), true, true},
		{"lt", Boolean(false), Boolean(true), true, true},
		{"eq", String("1"), Integer(1), false, false}, // incomparable
		{"eq", AnyURI("u"), String("u"), true, true},
	}
	for _, tt := range tests {
		got, err := CompareValues(tt.op, tt.a, tt.b)
		if tt.ok != (err == nil) {
			t.Errorf("%v %s %v: err=%v", tt.a, tt.op, tt.b, err)
			continue
		}
		if tt.ok && got != tt.want {
			t.Errorf("%v %s %v = %v, want %v", tt.a, tt.op, tt.b, got, tt.want)
		}
	}
}

func TestCompareDates(t *testing.T) {
	d1, _ := ParseDateTime("2008-01-01", TDate)
	d2, _ := ParseDateTime("2009-01-01", TDate)
	if ok, err := CompareValues("lt", d1, d2); err != nil || !ok {
		t.Errorf("date lt: %v %v", ok, err)
	}
}

func TestGeneralCompare(t *testing.T) {
	tests := []struct {
		op   string
		a, b Sequence
		want bool
	}{
		{"=", Sequence{Integer(1), Integer(2)}, Sequence{Integer(2), Integer(9)}, true},
		{"=", Sequence{Integer(1)}, Sequence{}, false},
		{"!=", Sequence{Integer(1), Integer(2)}, Sequence{Integer(1)}, true}, // 2 != 1
		{"<", Sequence{Integer(5)}, Sequence{Integer(3), Integer(9)}, true},
		{"=", Sequence{UntypedAtomic("2")}, Sequence{Integer(2)}, true},  // untyped->double
		{"=", Sequence{UntypedAtomic("a")}, Sequence{String("a")}, true}, // untyped->string
		{">", Sequence{UntypedAtomic("10")}, Sequence{Integer(9)}, true}, // numeric not lexical
		{"=", Sequence{Double(math.NaN())}, Sequence{Double(math.NaN())}, false},
		{"!=", Sequence{Double(math.NaN())}, Sequence{Double(1)}, true},
	}
	for _, tt := range tests {
		got, err := GeneralCompare(tt.op, tt.a, tt.b)
		if err != nil {
			t.Errorf("%v %s %v: %v", tt.a, tt.op, tt.b, err)
			continue
		}
		if got != tt.want {
			t.Errorf("%v %s %v = %v, want %v", tt.a, tt.op, tt.b, got, tt.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		op   string
		a, b Item
		want string
		ok   bool
	}{
		{"+", Integer(2), Integer(3), "5", true},
		{"-", Integer(2), Integer(3), "-1", true},
		{"*", Integer(4), Integer(5), "20", true},
		{"div", Integer(10), Integer(4), "2.5", true},
		{"div", Integer(10), Integer(5), "2", true},
		{"div", Integer(1), Integer(0), "", false},
		{"idiv", Integer(10), Integer(3), "3", true},
		{"idiv", Integer(-10), Integer(3), "-3", true},
		{"mod", Integer(10), Integer(3), "1", true},
		{"+", Integer(1), Double(0.5), "1.5", true},
		{"*", mustD("1.5"), Integer(2), "3", true},
		{"div", mustD("1"), mustD("8"), "0.125", true},
		{"mod", mustD("10.5"), Integer(3), "1.5", true},
		{"+", UntypedAtomic("2"), Integer(3), "5", true},
		{"+", UntypedAtomic("x"), Integer(3), "", false},
		{"+", String("a"), Integer(3), "", false},
	}
	for _, tt := range tests {
		got, err := Arithmetic(tt.op, tt.a, tt.b)
		if tt.ok != (err == nil) {
			t.Errorf("%v %s %v: err=%v", tt.a, tt.op, tt.b, err)
			continue
		}
		if tt.ok && got.String() != tt.want {
			t.Errorf("%v %s %v = %q, want %q", tt.a, tt.op, tt.b, got.String(), tt.want)
		}
	}
}

func TestDateArithmetic(t *testing.T) {
	d, _ := ParseDateTime("2008-01-31", TDate)
	dur, _ := ParseDuration("P1D")
	got, err := Arithmetic("+", d, dur)
	if err != nil || got.String() != "2008-02-01" {
		t.Errorf("date+P1D = %v, %v", got, err)
	}
	d2, _ := ParseDateTime("2008-02-03", TDate)
	diff, err := Arithmetic("-", d2, d)
	if err != nil || diff.String() != "P3D" {
		t.Errorf("date-date = %v, %v", diff, err)
	}
	ym, _ := ParseDuration("P2M")
	got, err = Arithmetic("+", d, Duration{Months: ym.Months, Kind: TYearMonthDuration})
	if err != nil || got.String() != "2008-03-31" {
		t.Errorf("date+P2M = %v, %v", got, err)
	}
	sum, err := Arithmetic("+", dur, dur)
	if err != nil || sum.String() != "P2D" {
		t.Errorf("dur+dur = %v, %v", sum, err)
	}
	scaled, err := Arithmetic("*", dur, Integer(3))
	if err != nil || scaled.String() != "P3D" {
		t.Errorf("dur*3 = %v, %v", scaled, err)
	}
	ratio, err := Arithmetic("div", Duration{Nanos: 2 * 3600 * 1e9, Kind: TDayTimeDuration},
		Duration{Nanos: 3600 * 1e9, Kind: TDayTimeDuration})
	if err != nil || ratio.String() != "2" {
		t.Errorf("dur div dur = %v, %v", ratio, err)
	}
}

func TestNegate(t *testing.T) {
	for _, tt := range []struct {
		v    Item
		want string
	}{
		{Integer(5), "-5"},
		{Double(1.5), "-1.5"},
		{mustD("2.5"), "-2.5"},
		{Duration{Months: 12, Kind: TYearMonthDuration}, "-P1Y"},
	} {
		got, err := Negate(tt.v)
		if err != nil || got.String() != tt.want {
			t.Errorf("Negate(%v) = %v, %v", tt.v, got, err)
		}
	}
	if _, err := Negate(String("x")); err == nil {
		t.Error("Negate(string) should fail")
	}
}

func TestEffectiveBooleanValue(t *testing.T) {
	el := NewNode(dom.NewElement(dom.Name("a")))
	tests := []struct {
		s    Sequence
		want bool
		ok   bool
	}{
		{nil, false, true},
		{Sequence{Boolean(true)}, true, true},
		{Sequence{Boolean(false)}, false, true},
		{Sequence{String("")}, false, true},
		{Sequence{String("x")}, true, true},
		{Sequence{Integer(0)}, false, true},
		{Sequence{Integer(7)}, true, true},
		{Sequence{Double(math.NaN())}, false, true},
		{Sequence{el}, true, true},
		{Sequence{el, el}, true, true}, // first item node: ok
		{Sequence{Integer(1), Integer(2)}, false, false},
	}
	for i, tt := range tests {
		got, err := EffectiveBooleanValue(tt.s)
		if tt.ok != (err == nil) {
			t.Errorf("case %d: err=%v", i, err)
			continue
		}
		if tt.ok && got != tt.want {
			t.Errorf("case %d: EBV=%v, want %v", i, got, tt.want)
		}
	}
}

func TestAtomize(t *testing.T) {
	e := dom.NewElement(dom.Name("a"))
	_ = e.AppendChild(dom.NewText("42"))
	a := Atomize(NewNode(e))
	if a.Type() != TUntypedAtomic || a.String() != "42" {
		t.Errorf("Atomize element = %v %q", a.Type(), a.String())
	}
	c := Atomize(NewNode(dom.NewComment("x")))
	if c.Type() != TString {
		t.Errorf("Atomize comment = %v", c.Type())
	}
	if Atomize(Integer(1)) != Integer(1) {
		t.Error("Atomize atomic must pass through")
	}
}

func TestSeqTypeMatches(t *testing.T) {
	el := NewNode(dom.NewElement(dom.Name("book")))
	tests := []struct {
		st   SeqType
		s    Sequence
		want bool
	}{
		{AnySeqType, nil, true},
		{AnySeqType, Sequence{Integer(1), el}, true},
		{SeqType{Empty: true}, nil, true},
		{SeqType{Empty: true}, Sequence{Integer(1)}, false},
		{SeqType{Item: ItemTest{Atomic: TInteger}}, Sequence{Integer(1)}, true},
		{SeqType{Item: ItemTest{Atomic: TInteger}}, Sequence{String("x")}, false},
		{SeqType{Item: ItemTest{Atomic: TInteger}}, nil, false},
		{SeqType{Item: ItemTest{Atomic: TInteger}, Occ: ZeroOrOne}, nil, true},
		{SeqType{Item: ItemTest{Atomic: TInteger}, Occ: ZeroOrMore}, Sequence{Integer(1), Integer(2)}, true},
		{SeqType{Item: ItemTest{Atomic: TInteger}, Occ: OneOrMore}, nil, false},
		{SeqType{Item: ItemTest{Atomic: TDecimal}}, Sequence{Integer(1)}, true}, // derivation
		{SeqType{Item: ItemTest{AnyNode: true}}, Sequence{el}, true},
		{SeqType{Item: ItemTest{AnyNode: true}}, Sequence{Integer(1)}, false},
		{SeqType{Item: ItemTest{Kind: TElementNode}}, Sequence{el}, true},
		{SeqType{Item: ItemTest{Kind: TElementNode, HasName: true, KindName: dom.Name("book")}}, Sequence{el}, true},
		{SeqType{Item: ItemTest{Kind: TElementNode, HasName: true, KindName: dom.Name("x")}}, Sequence{el}, false},
		{SeqType{Item: ItemTest{Kind: TElementNode, HasName: true, KindName: dom.Name("*")}}, Sequence{el}, true},
	}
	for i, tt := range tests {
		if got := tt.st.Matches(tt.s); got != tt.want {
			t.Errorf("case %d (%s): %v, want %v", i, tt.st, got, tt.want)
		}
	}
}

func TestDeepEqual(t *testing.T) {
	p := func(s string) *dom.Node {
		e := dom.NewElement(dom.Name("r"))
		_ = e.AppendChild(dom.NewText(s))
		return e
	}
	if !DeepEqual(NewNode(p("a")), NewNode(p("a"))) {
		t.Error("equal trees not deep-equal")
	}
	if DeepEqual(NewNode(p("a")), NewNode(p("b"))) {
		t.Error("different trees deep-equal")
	}
	if !DeepEqual(Integer(1), Double(1)) {
		t.Error("1 and 1.0 should be deep-equal")
	}
	if !DeepEqual(Double(math.NaN()), Double(math.NaN())) {
		t.Error("NaN deep-equal NaN per fn:deep-equal")
	}
	if DeepEqual(Integer(1), NewNode(p("1"))) {
		t.Error("node vs atomic must differ")
	}
}

// Property: Cast to string then back to the original numeric type is the
// identity for integers.
func TestIntegerStringRoundTripProperty(t *testing.T) {
	f := func(n int64) bool {
		s, err := Cast(Integer(n), TString)
		if err != nil {
			return false
		}
		back, err := Cast(s, TInteger)
		return err == nil && back == Integer(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: decimal arithmetic is exact: (a+b)-b == a.
func TestDecimalAddSubProperty(t *testing.T) {
	f := func(an, ad, bn, bd int32) bool {
		if ad == 0 || bd == 0 {
			return true
		}
		a := Decimal{r: big.NewRat(int64(an), int64(ad))}
		b := Decimal{r: big.NewRat(int64(bn), int64(bd))}
		sum, err := Arithmetic("+", a, b)
		if err != nil {
			return false
		}
		back, err := Arithmetic("-", sum, b)
		if err != nil {
			return false
		}
		eq, err := CompareValues("eq", back, a)
		return err == nil && eq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: comparison is antisymmetric for integers.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		lt, err1 := CompareValues("lt", Integer(a), Integer(b))
		gt, err2 := CompareValues("gt", Integer(b), Integer(a))
		return err1 == nil && err2 == nil && lt == gt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
