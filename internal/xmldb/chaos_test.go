package xmldb

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/faultpoint"
	"repro/internal/markup"
)

// Crash-recovery chaos suite: arm the store.fsync and store.replay
// fault points across a matrix of fault positions and assert the
// durability contract — every commit that reported success is present,
// byte-identical, after recovery, and every commit that reported
// failure is absent. The faultpoint package is process-global, so none
// of these tests run in parallel and all Reset before returning.

// stateOf snapshots a store's full logical state: every document's
// canonical serialization plus the collection list.
func stateOf(t *testing.T, s *Store) (docs map[string]string, cols []string) {
	t.Helper()
	docs = map[string]string{}
	for _, uri := range s.List() {
		d, ok := s.Get(uri)
		if !ok {
			t.Fatalf("List reported %q but Get misses", uri)
		}
		docs[uri] = markup.Serialize(d)
	}
	return docs, s.Collections()
}

// assertState compares a recovered store against the model of
// successful commits, byte for byte.
func assertState(t *testing.T, s *Store, wantDocs map[string]string, wantCols []string) {
	t.Helper()
	gotDocs, gotCols := stateOf(t, s)
	if len(gotDocs) != len(wantDocs) {
		t.Errorf("recovered %d docs, want %d (got %v)", len(gotDocs), len(wantDocs), s.List())
	}
	for uri, want := range wantDocs {
		if got, ok := gotDocs[uri]; !ok {
			t.Errorf("doc %q lost in recovery", uri)
		} else if got != want {
			t.Errorf("doc %q corrupted:\n got %s\nwant %s", uri, got, want)
		}
	}
	for uri := range gotDocs {
		if _, ok := wantDocs[uri]; !ok {
			t.Errorf("doc %q resurrected: its commit reported failure", uri)
		}
	}
	if fmt.Sprint(gotCols) != fmt.Sprint(wantCols) {
		t.Errorf("collections = %v, want %v", gotCols, wantCols)
	}
}

// TestChaosFsyncFaultMatrix walks the fault position through the commit
// sequence: commit k's redo append fails (leaving a torn frame, the
// damage a mid-commit crash produces), the store poisons, and reopening
// the directory — under a different shard count, to exercise
// re-partitioning — recovers exactly the successful prefix.
func TestChaosFsyncFaultMatrix(t *testing.T) {
	defer faultpoint.Reset()
	const ops = 10
	for faultAt := int64(1); faultAt <= ops+2; faultAt++ {
		faultpoint.Reset()
		dir := t.TempDir()
		st, err := Open(dir, WithShards(3), WithSyncWrites(false))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.CreateCollection("/db/a"); err != nil {
			t.Fatal(err)
		}
		if err := st.CreateCollection("/db/b"); err != nil {
			t.Fatal(err)
		}
		model := map[string]string{}
		faultpoint.Enable(faultpoint.PointStoreFsync, faultpoint.Nth(faultAt))

		poisoned := false
		for i := 0; i < ops; i++ {
			uri := fmt.Sprintf("/db/%c/d%02d.xml", 'a'+byte(i%2), i)
			src := fmt.Sprintf(`<doc n="%d"><v>%d</v></doc>`, i, i*i)
			err := st.PutXML(uri, src)
			switch {
			case err == nil:
				if poisoned {
					t.Fatalf("fault@%d: commit %d succeeded after poisoning", faultAt, i)
				}
				d, _ := markup.Parse(src)
				model[uri] = markup.Serialize(d)
			case errors.Is(err, ErrStoreClosed):
				if !poisoned && !errors.Is(err, faultpoint.ErrInjected) {
					t.Fatalf("fault@%d: first failure does not carry the injected fault: %v", faultAt, err)
				}
				poisoned = true
			default:
				t.Fatalf("fault@%d: commit %d: unexpected error %v", faultAt, i, err)
			}
		}
		if wantPoison := faultAt <= ops; poisoned != wantPoison {
			t.Fatalf("fault@%d: poisoned = %v, want %v", faultAt, poisoned, wantPoison)
		}

		// Reads keep serving the pre-fault state on a poisoned store.
		for uri, want := range model {
			if d, ok := st.Get(uri); !ok || markup.Serialize(d) != want {
				t.Fatalf("fault@%d: poisoned store lost read of %q", faultAt, uri)
			}
		}
		st.Close()

		faultpoint.Reset()
		st2, err := Open(dir, WithShards(2))
		if err != nil {
			t.Fatalf("fault@%d: recovery failed: %v", faultAt, err)
		}
		assertState(t, st2, model, []string{"/", "/db", "/db/a", "/db/b"})
		// The recovered store accepts new commits.
		if err := st2.PutXML("/db/a/post.xml", `<post/>`); err != nil {
			t.Fatalf("fault@%d: post-recovery commit: %v", faultAt, err)
		}
		st2.Close()
	}
}

// TestChaosFsyncConcurrentWriters poisons the log mid-flight under
// concurrent writers and readers (race-enabled): every writer records
// which of its commits reported success, and recovery must surface
// exactly that set.
func TestChaosFsyncConcurrentWriters(t *testing.T) {
	defer faultpoint.Reset()
	dir := t.TempDir()
	st, err := Open(dir, WithShards(4), WithSyncWrites(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateCollection("/db"); err != nil {
		t.Fatal(err)
	}
	faultpoint.Enable(faultpoint.PointStoreFsync, faultpoint.Seeded(42, 0.05))

	const writers, docsEach = 4, 20
	committed := make([]map[string]string, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		committed[w] = map[string]string{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docsEach; i++ {
				uri := fmt.Sprintf("/db/w%d-%02d.xml", w, i)
				src := fmt.Sprintf(`<doc w="%d" i="%d"/>`, w, i)
				if err := st.PutXML(uri, src); err == nil {
					d, _ := markup.Parse(src)
					committed[w][uri] = markup.Serialize(d)
				}
			}
		}(w)
	}
	// Concurrent scans must stay consistent while the writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			docs, err := st.Collection("/db")
			if err != nil {
				t.Errorf("concurrent scan: %v", err)
				return
			}
			for _, d := range docs {
				_ = markup.Serialize(d)
			}
		}
	}()
	wg.Wait()
	st.Close()

	model := map[string]string{}
	for _, m := range committed {
		for uri, s := range m {
			model[uri] = s
		}
	}
	if len(model) == writers*docsEach {
		t.Fatalf("seeded fault never fired: all %d commits succeeded", len(model))
	}

	faultpoint.Reset()
	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st2.Close()
	assertState(t, st2, model, []string{"/", "/db"})
}

// TestChaosTornTailReplay crashes without a checkpoint, so recovery
// must replay the redo-log tail past a deliberately torn final frame.
func TestChaosTornTailReplay(t *testing.T) {
	defer faultpoint.Reset()
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateCollection("/db"); err != nil {
		t.Fatal(err)
	}
	model := map[string]string{}
	for i := 0; i < 5; i++ {
		uri := fmt.Sprintf("/db/d%d.xml", i)
		src := fmt.Sprintf(`<doc i="%d"/>`, i)
		if err := st.PutXML(uri, src); err != nil {
			t.Fatal(err)
		}
		d, _ := markup.Parse(src)
		model[uri] = markup.Serialize(d)
	}
	// The 6th commit tears: no Close, no checkpoint — the log is all
	// there is, intact prefix plus half a frame.
	faultpoint.Enable(faultpoint.PointStoreFsync, faultpoint.Nth(1))
	if err := st.PutXML("/db/torn.xml", `<torn/>`); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("torn commit err = %v, want ErrStoreClosed", err)
	}
	faultpoint.Reset()

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery over torn tail: %v", err)
	}
	defer st2.Close()
	assertState(t, st2, model, []string{"/", "/db"})
	if replays := st2.Stats.Snapshot().WALReplays; replays < 5 {
		t.Errorf("WALReplays = %d, want >= 5 (log tail should have replayed)", replays)
	}
}

// TestChaosReplayFaultMatrix aborts recovery at each record in turn:
// the open must fail with the injected fault, and a clean retry must
// recover the full state.
func TestChaosReplayFaultMatrix(t *testing.T) {
	defer faultpoint.Reset()
	dir := t.TempDir()
	st, err := Open(dir, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateCollection("/db"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := st.PutXML(fmt.Sprintf("/db/d%d.xml", i), fmt.Sprintf(`<doc i="%d"/>`, i)); err != nil {
			t.Fatal(err)
		}
	}
	wantDocs, wantCols := stateOf(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// 7 records in the snapshot (1 MkCol + 6 Puts): abort at each.
	for k := int64(1); k <= 7; k++ {
		faultpoint.Enable(faultpoint.PointStoreReplay, faultpoint.Nth(k))
		if _, err := Open(dir); !errors.Is(err, faultpoint.ErrInjected) {
			t.Fatalf("replay fault@%d: open err = %v, want injected fault", k, err)
		}
		faultpoint.Reset()
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("clean reopen after aborted recoveries: %v", err)
	}
	defer st2.Close()
	assertState(t, st2, wantDocs, wantCols)
}
