package xmldb

import (
	"path"
	"sort"
	"strings"
	"sync"
)

// Hierarchical collections, eXist-style: a document URI beginning with
// "/" lives in the collection named by its directory part
// ("/db/articles/a1.xml" is in "/db/articles"), and collections nest
// ("/db/articles" is inside "/db"). Legacy flat URIs without a leading
// slash ("books.xml", "articles/a1.xml") live in the root collection
// "/" — the pre-hierarchy behaviour, kept so existing callers and their
// prefix-style collection() URIs keep working unchanged.

// normCollection canonicalises a collection path: leading slash,
// path.Clean, no trailing slash (except the root "/").
func normCollection(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// collectionOf returns the collection a document URI belongs to.
func collectionOf(uri string) string {
	if !strings.HasPrefix(uri, "/") {
		return "/"
	}
	return path.Dir(path.Clean(uri))
}

// inCollection reports whether a document URI lives in col or any of
// its sub-collections (col is normalized).
func inCollection(col, uri string) bool {
	c := collectionOf(uri)
	return c == col || col == "/" || strings.HasPrefix(c, col+"/")
}

// colSet is the store's collection hierarchy: a mutex-guarded set of
// normalized paths. The root "/" always exists. The set is tiny
// compared to the document maps, so a single lock (not sharding) is
// the right shape for it.
type colSet struct {
	mu    sync.RWMutex
	paths map[string]struct{}
}

func newColSet() *colSet {
	return &colSet{paths: map[string]struct{}{"/": {}}}
}

// exists reports whether the normalized path is a known collection.
func (c *colSet) exists(p string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.paths[p]
	return ok
}

// create registers the normalized path and every missing ancestor,
// returning whether anything new was created.
func (c *colSet) create(p string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	created := false
	for q := p; ; q = path.Dir(q) {
		if _, ok := c.paths[q]; !ok {
			c.paths[q] = struct{}{}
			created = true
		}
		if q == "/" {
			break
		}
	}
	return created
}

// remove drops the normalized path and every collection beneath it.
// The root is never removed.
func (c *colSet) remove(p string) {
	if p == "/" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for q := range c.paths {
		if q == p || strings.HasPrefix(q, p+"/") {
			delete(c.paths, q)
		}
	}
}

// list returns every collection path, sorted.
func (c *colSet) list() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.paths))
	for p := range c.paths {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
