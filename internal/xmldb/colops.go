package xmldb

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/dom"
	"repro/internal/xdm"
	"repro/internal/xmldb/wal"
	"repro/internal/xquery/runtime"
)

// Collection operations: the hierarchy itself (create/remove/list) and
// the scans over it. Scans snapshot every shard concurrently and merge
// the per-shard sorted slices, so the result is URI-ordered and
// consistent — a point-in-time view that later commits cannot disturb.

// CreateCollection creates a hierarchical collection (and any missing
// ancestors), durably. Creating an existing collection is a no-op.
func (s *Store) CreateCollection(p string) error {
	col := normCollection(p)
	return s.commit(wal.MkCol, col, nil,
		func() error {
			if s.cols.exists(col) {
				return errNoop
			}
			return nil
		},
		func() { s.cols.create(col) })
}

// RemoveCollection removes a hierarchical collection, its
// sub-collections and every document in them, durably. The root
// collection cannot be removed; removing an absent collection returns
// ErrNoCollection.
func (s *Store) RemoveCollection(p string) error {
	col := normCollection(p)
	if col == "/" {
		return fmt.Errorf("xmldb: cannot remove the root collection")
	}
	return s.commit(wal.RmCol, col, nil,
		func() error {
			if !s.cols.exists(col) {
				return fmt.Errorf("%w: %s", ErrNoCollection, col)
			}
			return nil
		},
		func() { s.applyRmCol(col) })
}

// Collections returns every collection path, sorted. The root "/" is
// always present.
func (s *Store) Collections() []string { return s.cols.list() }

// colEntries snapshots the documents of a hierarchical collection as
// per-shard sorted slices (the streaming form), or ErrNoCollection.
func (s *Store) colEntries(p string) ([][]docEntry, error) {
	col := normCollection(p)
	if !s.cols.exists(col) {
		return nil, fmt.Errorf("%w: %s", ErrNoCollection, col)
	}
	s.Stats.scans.Add(1)
	return scanShards(s.shards, func(uri string) bool { return inCollection(col, uri) }), nil
}

// Collection returns the documents of a hierarchical collection (its
// sub-collections included), URI-ordered.
func (s *Store) Collection(p string) ([]*dom.Node, error) {
	parts, err := s.colEntries(p)
	if err != nil {
		return nil, err
	}
	entries := mergeEntries(parts)
	docs := make([]*dom.Node, len(entries))
	for i, e := range entries {
		docs[i] = e.rev.root
	}
	return docs, nil
}

// CollectionIter streams the documents of a hierarchical collection in
// URI order as an XDM sequence: the shards are snapshotted up front (a
// consistent view), but the k-way merge advances one document per Next,
// so an early-exiting consumer (collection($c)[1]) pays for one merge
// step, not a materialised result.
func (s *Store) CollectionIter(p string) (xdm.Iter, error) {
	parts, err := s.colEntries(p)
	if err != nil {
		return nil, err
	}
	m := newMerger(parts)
	return xdm.IterFunc(func() (xdm.Item, bool, error) {
		e, ok := m.next()
		if !ok {
			return nil, false, nil
		}
		return xdm.NewNode(e.rev.root), true, nil
	}), nil
}

// ScanCollection runs fn over every document of a hierarchical
// collection with one goroutine per shard — the parallel scan the
// sharding exists for. fn must be safe for concurrent calls; within a
// shard it sees URI order, across shards order is interleaved. The
// first error stops the reporting scan (others run to completion).
func (s *Store) ScanCollection(p string, fn func(uri string, doc *dom.Node) error) error {
	col := normCollection(p)
	if !s.cols.exists(col) {
		return fmt.Errorf("%w: %s", ErrNoCollection, col)
	}
	s.Stats.scans.Add(1)
	match := func(uri string) bool { return inCollection(col, uri) }
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			for _, e := range sh.snapshotSorted(match) {
				if err := fn(e.uri, e.rev.root); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}(sh)
	}
	wg.Wait()
	return firstErr
}

// CollectionResolver exposes the store as an fn:collection resolver.
// Three URI shapes dispatch three ways: the empty URI (the default
// collection) yields every document; a "/"-prefixed URI names a
// hierarchical collection (ErrNoCollection if absent); anything else is
// the legacy prefix match over raw URIs (collection("articles/")),
// which yields empty — not an error — for an unknown prefix, as the
// pre-hierarchy store did.
func (s *Store) CollectionResolver() runtime.CollectionResolver {
	return func(uri string) ([]*dom.Node, error) {
		switch {
		case uri == "":
			return s.Collection("/")
		case strings.HasPrefix(uri, "/"):
			return s.Collection(uri)
		default:
			s.Stats.scans.Add(1)
			entries := mergeEntries(scanShards(s.shards, func(u string) bool {
				return strings.HasPrefix(u, uri)
			}))
			docs := make([]*dom.Node, len(entries))
			for i, e := range entries {
				docs[i] = e.rev.root
			}
			return docs, nil
		}
	}
}

// CollectionIterResolver is the streaming form of CollectionResolver,
// for engines that pull collections through xdm.Iter (the funclib
// streaming path): same URI dispatch, but hierarchical scans hand back
// the incremental shard merge instead of a materialised slice.
func (s *Store) CollectionIterResolver() runtime.CollectionIterResolver {
	materialise := func(docs []*dom.Node, err error) (xdm.Iter, error) {
		if err != nil {
			return nil, err
		}
		seq := make(xdm.Sequence, len(docs))
		for i, d := range docs {
			seq[i] = xdm.NewNode(d)
		}
		return xdm.FromSlice(seq), nil
	}
	resolve := s.CollectionResolver()
	return func(uri string) (xdm.Iter, error) {
		switch {
		case uri == "":
			return s.CollectionIter("/")
		case strings.HasPrefix(uri, "/"):
			return s.CollectionIter(uri)
		default:
			return materialise(resolve(uri))
		}
	}
}
