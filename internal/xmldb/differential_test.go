package xmldb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// Differential oracle: the sharded store versus a naive single-map
// model, both exposed to the engine through the same resolver
// interfaces. A deterministic op stream (puts, removes, collection
// churn, MVCC updates) drives both sides; fn:doc and fn:collection
// queries through both engines must agree at every probe.

// naiveStore is the oracle: one flat map, no shards, no log. It mirrors
// the store's documented semantics using the same path helpers.
type naiveStore struct {
	docs map[string]docModel
	cols map[string]bool
}

// docModel is the generator's knowledge of one document's content; its
// render is the canonical serialization both sides must agree on.
type docModel struct {
	id, val int
}

func (m docModel) src() string {
	return fmt.Sprintf(`<doc id="%d"><v>%d</v></doc>`, m.id, m.val)
}

func newNaive() *naiveStore {
	return &naiveStore{docs: map[string]docModel{}, cols: map[string]bool{"/": true}}
}

func (n *naiveStore) sortedURIs(match func(string) bool) []string {
	var uris []string
	for uri := range n.docs {
		if match == nil || match(uri) {
			uris = append(uris, uri)
		}
	}
	sort.Strings(uris)
	return uris
}

func (n *naiveStore) node(t *testing.T, uri string) *dom.Node {
	t.Helper()
	d, err := markup.Parse(n.docs[uri].src())
	if err != nil {
		t.Fatal(err)
	}
	d.BaseURI = uri
	return d
}

// engine builds an oracle engine whose resolvers implement the store's
// documented dispatch over the naive map.
func (n *naiveStore) engine(t *testing.T) *xquery.Engine {
	docRes := func(uri string) (*dom.Node, error) {
		if _, ok := n.docs[uri]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrDocNotFound, uri)
		}
		return n.node(t, uri), nil
	}
	colRes := func(uri string) ([]*dom.Node, error) {
		var uris []string
		switch {
		case uri == "":
			uris = n.sortedURIs(nil)
		case strings.HasPrefix(uri, "/"):
			col := normCollection(uri)
			if !n.cols[col] {
				return nil, fmt.Errorf("%w: %s", ErrNoCollection, col)
			}
			uris = n.sortedURIs(func(u string) bool { return inCollection(col, u) })
		default:
			uris = n.sortedURIs(func(u string) bool { return strings.HasPrefix(u, uri) })
		}
		docs := make([]*dom.Node, len(uris))
		for i, u := range uris {
			docs[i] = n.node(t, u)
		}
		return docs, nil
	}
	return xquery.New(xquery.WithDocResolver(docRes), xquery.WithCollectionResolver(colRes))
}

// lcg is the deterministic op-stream generator.
type lcg struct{ state uint64 }

func (r *lcg) next(n int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(n))
}

func TestDifferentialShardedVsNaive(t *testing.T) {
	baseCols := []string{"/db", "/db/x", "/db/x/deep", "/lib"}
	for _, seed := range []uint64{1, 7, 99} {
		st, err := Open("", WithShards(4))
		if err != nil {
			t.Fatal(err)
		}
		naive := newNaive()
		for _, c := range baseCols {
			if err := st.CreateCollection(c); err != nil {
				t.Fatal(err)
			}
			for q := normCollection(c); ; {
				naive.cols[q] = true
				if q == "/" {
					break
				}
				q = q[:strings.LastIndex(q, "/")]
				if q == "" {
					q = "/"
				}
			}
		}
		storeEng := xquery.New(
			xquery.WithDocResolver(st.Resolver()),
			xquery.WithCollectionResolver(st.CollectionResolver()),
			xquery.WithCollectionIterResolver(st.CollectionIterResolver()),
		)
		naiveEng := naive.engine(t)
		rng := &lcg{state: seed}

		uriAt := func(i int) string {
			return fmt.Sprintf("%s/d%d.xml", baseCols[i%len(baseCols)], i)
		}
		for step := 0; step < 160; step++ {
			switch rng.next(5) {
			case 0, 1: // put (fresh or overwrite)
				i := rng.next(24)
				m := docModel{id: i, val: rng.next(1000)}
				if err := st.PutXML(uriAt(i), m.src()); err != nil {
					t.Fatalf("seed %d step %d: put: %v", seed, step, err)
				}
				naive.docs[uriAt(i)] = m
			case 2: // remove — present and absent must agree
				i := rng.next(24)
				uri := uriAt(i)
				err := st.Remove(uri)
				if _, ok := naive.docs[uri]; ok {
					if err != nil {
						t.Fatalf("seed %d step %d: remove %q: %v", seed, step, uri, err)
					}
					delete(naive.docs, uri)
				} else if !errors.Is(err, ErrDocNotFound) {
					t.Fatalf("seed %d step %d: remove absent %q = %v, want ErrDocNotFound", seed, step, uri, err)
				}
			case 3: // interleaved MVCC update through the query engine
				i := rng.next(24)
				uri := uriAt(i)
				m, ok := naive.docs[uri]
				if !ok {
					continue
				}
				m.val = rng.next(1000)
				q := fmt.Sprintf(`replace value of node /doc/v with "%d"`, m.val)
				if _, err := st.Update(uri, q); err != nil {
					t.Fatalf("seed %d step %d: update %q: %v", seed, step, uri, err)
				}
				naive.docs[uri] = m
			case 4: // collection churn on a scratch subtree
				c := fmt.Sprintf("/db/x/c%d", rng.next(3))
				if naive.cols[c] {
					if err := st.RemoveCollection(c); err != nil {
						t.Fatalf("seed %d step %d: rmcol %s: %v", seed, step, c, err)
					}
					delete(naive.cols, c)
					for uri := range naive.docs {
						if inCollection(c, uri) {
							delete(naive.docs, uri)
						}
					}
				} else {
					if err := st.CreateCollection(c); err != nil {
						t.Fatalf("seed %d step %d: mkcol %s: %v", seed, step, c, err)
					}
					naive.cols[c] = true
				}
			}

			if step%8 != 0 {
				continue
			}
			// Probe: the same queries through both engines must agree.
			targets := []string{"", "/", "/db", "/db/x", "/db/x/deep", "/lib", "/db/nope", "db", "/db/x/c0", "/db/x/c1", "/db/x/c2"}
			for _, target := range targets {
				for _, q := range []string{
					fmt.Sprintf(`count(collection("%s"))`, target),
					fmt.Sprintf(`string-join(for $d in collection("%s") return $d//v/string(), "|")`, target),
				} {
					gotSeq, gotErr := storeEng.EvalQuery(q, nil)
					wantSeq, wantErr := naiveEng.EvalQuery(q, nil)
					if (gotErr == nil) != (wantErr == nil) ||
						(gotErr != nil && !errors.Is(gotErr, ErrNoCollection)) != (wantErr != nil && !errors.Is(wantErr, ErrNoCollection)) {
						t.Fatalf("seed %d step %d: %s: err %v vs oracle %v", seed, step, q, gotErr, wantErr)
					}
					if gotErr != nil {
						continue
					}
					got := xquery.FormatSequence(gotSeq, markup.Serialize)
					want := xquery.FormatSequence(wantSeq, markup.Serialize)
					if got != want {
						t.Fatalf("seed %d step %d: %s:\n sharded %q\n  oracle %q", seed, step, q, got, want)
					}
				}
			}
			for i := 0; i < 24; i += 5 {
				q := fmt.Sprintf(`doc("%s")//v/string()`, uriAt(i))
				gotSeq, gotErr := storeEng.EvalQuery(q, nil)
				wantSeq, wantErr := naiveEng.EvalQuery(q, nil)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("seed %d step %d: %s: err %v vs oracle %v", seed, step, q, gotErr, wantErr)
				}
				if gotErr != nil {
					continue
				}
				got := xquery.FormatSequence(gotSeq, markup.Serialize)
				want := xquery.FormatSequence(wantSeq, markup.Serialize)
				if got != want {
					t.Fatalf("seed %d step %d: %s: %q vs oracle %q", seed, step, q, got, want)
				}
			}
		}

		// Final full-state agreement, byte for byte.
		wantURIs := naive.sortedURIs(nil)
		if fmt.Sprint(st.List()) != fmt.Sprint(wantURIs) {
			t.Fatalf("seed %d: List = %v, oracle %v", seed, st.List(), wantURIs)
		}
		for _, uri := range wantURIs {
			d, ok := st.Get(uri)
			if !ok {
				t.Fatalf("seed %d: %q missing", seed, uri)
			}
			if got, want := markup.Serialize(d), markup.Serialize(naive.node(t, uri)); got != want {
				t.Fatalf("seed %d: %q: %s vs oracle %s", seed, uri, got, want)
			}
		}
		st.Close()
	}
}

// Shard-merge property: for any URI set and any shard count, List and
// the streaming collection merge produce the identical sorted document
// order — the partitioning is invisible to consumers.
func TestShardMergeDocumentOrderProperty(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		rng := &lcg{state: seed*0x9e3779b9 + 1}
		uriSet := map[string]bool{}
		n := 5 + rng.next(40)
		for i := 0; i < n; i++ {
			var uri string
			switch rng.next(3) {
			case 0:
				uri = fmt.Sprintf("flat-%d.xml", rng.next(50))
			case 1:
				uri = fmt.Sprintf("/db/a%d/d%d.xml", rng.next(4), rng.next(50))
			default:
				uri = fmt.Sprintf("/db/a%d/b%d/d%d.xml", rng.next(3), rng.next(3), rng.next(50))
			}
			uriSet[uri] = true
		}
		var want []string
		for uri := range uriSet {
			want = append(want, uri)
		}
		sort.Strings(want)

		var baseline []string
		for _, shards := range []int{1, 2, 3, 5, 8} {
			st, err := Open("", WithShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			for _, uri := range want {
				if col := collectionOf(uri); col != "/" {
					if err := st.CreateCollection(col); err != nil {
						t.Fatal(err)
					}
				}
				if err := st.PutXML(uri, fmt.Sprintf(`<d u="%s"/>`, uri)); err != nil {
					t.Fatal(err)
				}
			}
			got := st.List()
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("seed %d shards=%d: List = %v, want %v", seed, shards, got, want)
			}
			if baseline == nil {
				baseline = got
			} else if fmt.Sprint(got) != fmt.Sprint(baseline) {
				t.Fatalf("seed %d shards=%d: order differs from other shard counts", seed, shards)
			}

			// The streaming merge must deliver the same order one
			// document at a time.
			iter, err := st.CollectionIter("/")
			if err != nil {
				t.Fatal(err)
			}
			var streamed []string
			for {
				it, ok, err := iter.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				streamed = append(streamed, it.(xdm.Node).N.BaseURI)
			}
			if fmt.Sprint(streamed) != fmt.Sprint(want) {
				t.Fatalf("seed %d shards=%d: streamed order %v, want %v", seed, shards, streamed, want)
			}
			st.Close()
		}
	}
}

// Published revisions are immutable by contract; domV stamping makes a
// violation (a legacy caller scribbling on a resolver-returned tree)
// detectable.
func TestPublishedRevisionMutationDetected(t *testing.T) {
	st, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.PutXML("a.xml", `<a/>`); err != nil {
		t.Fatal(err)
	}
	d, ok := st.shardFor("a.xml").get("a.xml")
	if !ok {
		t.Fatal("doc missing")
	}
	if d.mutated() {
		t.Fatal("fresh revision reports mutated")
	}
	d.root.SetAttr(dom.Name("x"), "1")
	if !d.mutated() {
		t.Fatal("in-place write on a published revision went undetected")
	}
}
