package xmldb

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xmldb/wal"
	"repro/internal/xquery/runtime"
)

// Document operations. Writes go through the commit protocol (redo
// record first, then the in-memory publish); reads go straight to the
// shards and see the last committed revision without locking writers.

// PutDoc stores (or replaces) a document under a URI, durably. A
// hierarchical URI ("/db/...") requires its collection to exist
// (ErrNoCollection otherwise — create it first, eXist-style); flat
// legacy URIs land in the root collection.
func (s *Store) PutDoc(uri string, doc *dom.Node) error {
	doc.BaseURI = uri
	col := collectionOf(uri)
	data := []byte(markup.Serialize(doc))
	err := s.commit(wal.Put, uri, data,
		func() error {
			if !s.cols.exists(col) {
				return fmt.Errorf("%w: %s (store %q first requires CreateCollection)", ErrNoCollection, col, uri)
			}
			return nil
		},
		func() { s.shardFor(uri).publish(uri, doc) })
	if err != nil {
		return err
	}
	s.Stats.puts.Add(1)
	return nil
}

// Put stores a document under a URI.
//
// Deprecated: use PutDoc, which reports collection and durability
// errors instead of discarding them. Put is kept for the pre-persistence
// callers, whose flat URIs cannot fail the collection check.
func (s *Store) Put(uri string, doc *dom.Node) {
	_ = s.PutDoc(uri, doc)
}

// PutXML parses and stores a document.
func (s *Store) PutXML(uri, src string) error {
	doc, err := markup.Parse(src)
	if err != nil {
		return fmt.Errorf("xmldb: %s: %w", uri, err)
	}
	return s.PutDoc(uri, doc)
}

// Get returns the current revision of the document stored under a URI.
func (s *Store) Get(uri string) (*dom.Node, bool) {
	s.Stats.gets.Add(1)
	d, ok := s.shardFor(uri).get(uri)
	if !ok {
		return nil, false
	}
	return d.root, true
}

// Doc returns the document stored under a URI, or ErrDocNotFound.
func (s *Store) Doc(uri string) (*dom.Node, error) {
	if d, ok := s.Get(uri); ok {
		return d, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrDocNotFound, uri)
}

// Remove deletes a document, durably. Removing a URI with no document
// returns ErrDocNotFound.
func (s *Store) Remove(uri string) error {
	err := s.commit(wal.Delete, uri, nil,
		func() error {
			if _, ok := s.shardFor(uri).get(uri); !ok {
				return fmt.Errorf("%w: %q", ErrDocNotFound, uri)
			}
			return nil
		},
		func() { s.shardFor(uri).remove(uri) })
	if err != nil {
		return err
	}
	s.Stats.deletes.Add(1)
	return nil
}

// Delete removes a document; removing an absent URI is a no-op.
//
// Deprecated: use Remove, which reports absent documents and durability
// errors.
func (s *Store) Delete(uri string) {
	_ = s.Remove(uri)
}

// List returns every stored URI, sorted: the shards scan in parallel
// and their sorted slices merge.
func (s *Store) List() []string {
	entries := mergeEntries(scanShards(s.shards, nil))
	uris := make([]string, len(entries))
	for i, e := range entries {
		uris[i] = e.uri
	}
	return uris
}

// Len returns the number of stored documents.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.count()
	}
	return n
}

// Resolver exposes the store as an fn:doc resolver (server-side XQuery
// runs doc("articles/a1.xml") directly against the database).
func (s *Store) Resolver() runtime.DocResolver {
	return func(uri string) (*dom.Node, error) {
		return s.Doc(uri)
	}
}
