package xmldb

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	ftindex "repro/internal/fulltext/index"
)

// Full-text index persistence: each checkpoint writes one gob sidecar
// per shard (ft-<i>.idx) holding the serialized full-text indexes of
// the shard's documents that currently carry a fresh one, and Open
// attaches them back before serving queries — so a reopened store
// skips the cold tokenize-and-stem build on its first ftcontains.
//
// The sidecars are strictly advisory: every serialized index embeds a
// hash of the document text it was built over, Attach re-verifies it
// against the recovered tree, and any mismatch (or a missing/corrupt
// sidecar) just means that document lazily rebuilds on first probe.
// Failures here are therefore counted, never surfaced.

// ftFileName names shard i's full-text sidecar.
func ftFileName(i int) string { return fmt.Sprintf("ft-%d.idx", i) }

// writeFTIndexesLocked persists the fresh full-text indexes of every
// shard's documents. Caller holds the commit lock (checkpoint path),
// so the document maps are stable.
func (s *Store) writeFTIndexesLocked() {
	if s.dir == "" {
		return
	}
	for i, sh := range s.shards {
		m := map[string]*ftindex.Serialized{}
		for _, e := range sh.snapshotSorted(nil) {
			d := ftindex.Fresh(e.rev.root)
			if d == nil {
				continue
			}
			if ser, ok := d.Serialize(); ok {
				m[e.uri] = ser
			}
		}
		path := filepath.Join(s.dir, ftFileName(i))
		if len(m) == 0 {
			os.Remove(path)
			continue
		}
		if err := writeFTFile(path, m); err == nil {
			s.Stats.ftPersisted.Add(int64(len(m)))
		}
	}
	// A store reopened with fewer shards would otherwise leave the
	// higher-numbered sidecars behind forever.
	leftovers, _ := filepath.Glob(filepath.Join(s.dir, "ft-*.idx"))
	for _, p := range leftovers {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(p), "ft-%d.idx", &idx); err == nil && idx >= len(s.shards) {
			os.Remove(p)
		}
	}
}

// writeFTFile writes one sidecar atomically (tmp + rename), so a crash
// mid-write leaves either the old sidecar or the new one, never a
// torn file.
func writeFTFile(path string, m map[string]*ftindex.Serialized) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(m); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// loadFTIndexes attaches every persisted full-text index whose
// document recovered and whose text still hashes to the persisted
// value. Sidecars are read regardless of the current shard count —
// documents are located by URI, so a store written under one count
// reopens correctly under any other, exactly like the snapshot.
func (s *Store) loadFTIndexes() {
	if s.dir == "" {
		return
	}
	files, _ := filepath.Glob(filepath.Join(s.dir, "ft-*.idx"))
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		var m map[string]*ftindex.Serialized
		err = gob.NewDecoder(f).Decode(&m)
		f.Close()
		if err != nil {
			continue
		}
		for uri, ser := range m {
			rev, ok := s.shardFor(uri).get(uri)
			if !ok {
				continue
			}
			if err := ftindex.Attach(rev.root, ser); err == nil {
				s.Stats.ftLoaded.Add(1)
			}
		}
	}
}
