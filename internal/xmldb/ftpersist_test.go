package xmldb

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	ftindex "repro/internal/fulltext/index"
)

const ftStoreDoc = `<articles>
  <article id="a1"><p>The marlin returned to the coral reef at dawn.</p></article>
  <article id="a2"><p>Coral bleaching spreads across the reef.</p></article>
  <article id="a3"><p>Nothing notable happened today.</p></article>
</articles>`

// TestFTPersistAcrossReopen: a checkpoint writes the fresh full-text
// indexes to per-shard sidecars, and a reopened store attaches them —
// the first ftcontains after reopen answers without a cold build.
func TestFTPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutXML("a.xml", ftStoreDoc); err != nil {
		t.Fatal(err)
	}
	if err := s.PutXML("b.xml", `<notes><n>reef watching</n></notes>`); err != nil {
		t.Fatal(err)
	}
	const q = `//article[. ftcontains "coral reef"]/@id/string()`
	want, err := s.Query("a.xml", q)
	if err != nil {
		t.Fatal(err)
	}
	if want != "a1" {
		t.Fatalf("ftcontains before checkpoint = %q, want a1", want)
	}
	// The query built the document's index lazily; the checkpoint must
	// persist it.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	persisted := s.Stats.Snapshot().FTPersisted
	if persisted == 0 {
		t.Fatal("checkpoint persisted no full-text indexes")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "ft-*.idx")); len(m) == 0 {
		t.Fatal("no ft-*.idx sidecars on disk after checkpoint")
	}

	buildsBefore := ftindex.Snapshot().Builds
	loadsBefore := ftindex.Snapshot().Loads
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap := s2.Stats.Snapshot()
	if snap.FTLoaded == 0 {
		t.Error("reopened store loaded no full-text indexes")
	}
	if d := ftindex.Snapshot().Loads - loadsBefore; d != snap.FTLoaded {
		t.Errorf("package Loads grew by %d, store counted %d", d, snap.FTLoaded)
	}
	got, err := s2.Query("a.xml", q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("ftcontains after reopen = %q, want %q", got, want)
	}
	// The attached index answered: no cold build for a.xml's query.
	if d := ftindex.Snapshot().Builds - buildsBefore; d != 0 {
		t.Errorf("reopened store rebuilt %d full-text indexes, want 0 (sidecar should answer)", d)
	}

	// The counters surface at GET /stats for operators.
	rr := httptest.NewRecorder()
	s2.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/stats", nil))
	var stats map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &stats); err != nil {
		t.Fatalf("/stats: %v", err)
	}
	if v, ok := stats["ft_loaded"].(float64); !ok || v < 1 {
		t.Errorf("/stats ft_loaded = %v, want >= 1", stats["ft_loaded"])
	}
	if _, ok := stats["ft_persisted"]; !ok {
		t.Error("/stats missing ft_persisted")
	}
}

// TestFTPersistSkipsStaleSidecar: a sidecar whose document changed
// under it (text hash mismatch) is ignored — the store stays correct
// and the document lazily rebuilds.
func TestFTPersistSkipsStaleSidecar(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutXML("a.xml", ftStoreDoc); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("a.xml", `count(//article[. ftcontains "marlin"])`); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Mutate the document after the checkpoint wrote the sidecar, then
	// checkpoint the new revision WITHOUT its index (no query built
	// one): the old sidecar now describes stale text.
	if _, err := s.Update("a.xml", `replace value of node (//article[@id="a3"]/p)[1] with "marlin surprise"`); err != nil {
		t.Fatal(err)
	}
	// Overwrite the snapshot but keep the stale ft sidecars: simulate a
	// crash between the data checkpoint and the sidecar write by
	// restoring the sidecar files from before the update.
	stale := map[string][]byte{}
	sidecars, _ := filepath.Glob(filepath.Join(dir, "ft-*.idx"))
	for _, p := range sidecars {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		stale[p] = b
	}
	if len(stale) == 0 {
		t.Fatal("no sidecars to tamper with")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for p, b := range stale {
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	out, err := s2.Query("a.xml", `count(//article[. ftcontains "marlin"])`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "2" {
		t.Errorf("query over tampered sidecar = %q, want 2 (stale sidecar must not answer)", out)
	}
}
