package xmldb

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/markup"
)

// Handler exposes the store over HTTP — the REST face the paper's §6.1
// architecture talks to:
//
//	GET    /doc?uri=U        — the whole document (cache-friendly, §6.1)
//	GET    /query?uri=U&q=Q  — evaluate Q against U and return the result
//	PUT    /doc?uri=U        — store the request body as a document
//	GET    /list             — the stored URIs
//	GET    /collections      — the collection hierarchy
//	POST   /collection?path=P — create a collection
//	DELETE /collection?path=P — remove a collection subtree
//	GET    /stats            — the store counters, as JSON
func (s *Store) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /doc", func(w http.ResponseWriter, r *http.Request) {
		uri := r.URL.Query().Get("uri")
		doc, ok := s.Get(uri)
		if !ok {
			s.count(0, false)
			http.Error(w, fmt.Sprintf("no document %q", uri), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		n, _ := io.WriteString(w, markup.Serialize(doc))
		s.count(n, true)
	})
	mux.HandleFunc("GET /query", func(w http.ResponseWriter, r *http.Request) {
		uri := r.URL.Query().Get("uri")
		q := r.URL.Query().Get("q")
		out, err := s.Query(uri, q)
		if err != nil {
			s.count(0, false)
			http.Error(w, err.Error(), httpStatus(err))
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		n, _ := io.WriteString(w, "<result>"+out+"</result>")
		s.count(n, false) // Query already counted the evaluation
	})
	mux.HandleFunc("PUT /doc", func(w http.ResponseWriter, r *http.Request) {
		uri := r.URL.Query().Get("uri")
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.PutXML(uri, string(body)); err != nil {
			http.Error(w, err.Error(), httpStatus(err))
			return
		}
		s.count(0, false)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /list", func(w http.ResponseWriter, r *http.Request) {
		var out string
		out += "<uris>"
		for _, u := range s.List() {
			out += "<uri>" + markup.EscapeText(u) + "</uri>"
		}
		out += "</uris>"
		w.Header().Set("Content-Type", "application/xml")
		n, _ := io.WriteString(w, out)
		s.count(n, false)
	})
	mux.HandleFunc("GET /collections", func(w http.ResponseWriter, r *http.Request) {
		var out string
		out += "<collections>"
		for _, c := range s.Collections() {
			out += "<collection>" + markup.EscapeText(c) + "</collection>"
		}
		out += "</collections>"
		w.Header().Set("Content-Type", "application/xml")
		n, _ := io.WriteString(w, out)
		s.count(n, false)
	})
	mux.HandleFunc("POST /collection", func(w http.ResponseWriter, r *http.Request) {
		if err := s.CreateCollection(r.URL.Query().Get("path")); err != nil {
			http.Error(w, err.Error(), httpStatus(err))
			return
		}
		s.count(0, false)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("DELETE /collection", func(w http.ResponseWriter, r *http.Request) {
		if err := s.RemoveCollection(r.URL.Query().Get("path")); err != nil {
			http.Error(w, err.Error(), httpStatus(err))
			return
		}
		s.count(0, false)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(s.Stats.Snapshot())
		n, _ := w.Write(b)
		s.count(n, false)
	})
	return mux
}

// httpStatus maps the store's sentinel errors to status codes.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrDocNotFound), errors.Is(err, ErrNoCollection):
		return http.StatusNotFound
	case errors.Is(err, ErrConflict):
		return http.StatusConflict
	case errors.Is(err, ErrStoreClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// count tallies one served request.
func (s *Store) count(bytes int, doc bool) {
	s.Stats.requests.Add(1)
	s.Stats.bytesServed.Add(int64(bytes))
	if doc {
		s.Stats.docsServed.Add(1)
	}
}
