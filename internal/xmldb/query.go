package xmldb

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xmldb/wal"
	"repro/internal/xquery"
)

// Query evaluation against stored documents, with the MVCC split:
// queries the static detector proves pure run directly on the published
// immutable revision (no copy, no lock); anything that could mutate the
// context document runs on a private clone that commits as the next
// revision — or loses a first-committer-wins race with ErrConflict.

// run evaluates a compiled program with doc as the context item and the
// store as doc/collection resolver.
func (s *Store) run(prog *xquery.Program, doc *dom.Node) (string, error) {
	res, err := prog.Run(xquery.RunConfig{
		ContextItem: xdm.NewNode(doc),
		Docs:        s.Resolver(),
		Collections: s.CollectionResolver(),
		Sequential:  true,
	})
	if err != nil {
		return "", err
	}
	s.Stats.queriesEvaluated.Add(1)
	return xquery.FormatSequence(res.Value, markup.Serialize), nil
}

// Query evaluates an XQuery expression with the stored document as the
// context item. Pure queries read the current revision in place;
// updating queries are routed through Update's clone-and-commit
// protocol, so a query can never scribble on a published revision.
func (s *Store) Query(uri, query string) (string, error) {
	rev, ok := s.shardFor(uri).get(uri)
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrDocNotFound, uri)
	}
	prog, err := s.engine.Compile(query)
	if err != nil {
		return "", err
	}
	if moduleUpdates(prog.Module()) {
		return s.update(uri, rev, prog)
	}
	return s.run(prog, rev.root)
}

// Update evaluates an updating XQuery expression against a stored
// document under the MVCC protocol, regardless of what the static
// detector thinks of it.
func (s *Store) Update(uri, query string) (string, error) {
	rev, ok := s.shardFor(uri).get(uri)
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrDocNotFound, uri)
	}
	prog, err := s.engine.Compile(query)
	if err != nil {
		return "", err
	}
	return s.update(uri, rev, prog)
}

// update is the optimistic write path: clone the revision the caller
// saw, run the query against the clone, then commit the clone as the
// next revision — unless another committer got there first, in which
// case the work is discarded and the caller gets ErrConflict to retry
// against the newer revision.
func (s *Store) update(uri string, base *docRev, prog *xquery.Program) (string, error) {
	clone := base.root.Clone()
	out, err := s.run(prog, clone)
	if err != nil {
		return "", err
	}
	data := []byte(markup.Serialize(clone))
	err = s.commit(wal.Put, uri, data,
		func() error {
			cur, ok := s.shardFor(uri).get(uri)
			if !ok || cur != base {
				s.Stats.conflicts.Add(1)
				return fmt.Errorf("%w: %q changed underfoot", ErrConflict, uri)
			}
			return nil
		},
		func() { s.shardFor(uri).publish(uri, clone) })
	if err != nil {
		return "", err
	}
	return out, nil
}
