package xmldb

import (
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/dom"
)

// The store's document space is partitioned across N sub-stores by a
// consistent hash of the document URI. Shards bound lock contention
// (writers to different shards never queue on each other) and give
// collection scans natural parallelism: each shard snapshots and sorts
// its slice of a collection concurrently, and the results merge in URI
// order. Shard assignment is recomputed from the URI alone, so a
// directory written with one shard count reopens correctly under any
// other — the partitioning is an in-memory layout, not an on-disk one.
//
// This file owns every raw access to the shard's document map; the
// rest of the package (and the repo — the storesync vet pass enforces
// it) goes through the methods here, which uphold the lock discipline.

// docRev is one committed, immutable document revision — the MVCC unit.
// A reader that obtained a docRev iterates its tree without locks:
// commits publish new revisions, they never mutate published ones. domV
// records the tree's dom version counter at publish time, so staleness
// of any cached derivation (the PR 4 per-document indexes) and
// accidental in-place mutation are both detectable by comparing
// root.Version() against it.
type docRev struct {
	root *dom.Node
	rev  uint64 // per-document revision number, 1-based
	domV uint64 // root.Version() at publish: published trees are immutable
}

// mutated reports whether someone wrote to the published tree in place
// (legacy callers that update a resolver-returned node bypass MVCC).
func (d *docRev) mutated() bool { return d.root.Version() != d.domV }

// shard is one sub-store: a mutex-guarded URI → current-revision map.
type shard struct {
	mu   sync.RWMutex
	docs map[string]*docRev
}

func newShard() *shard { return &shard{docs: map[string]*docRev{}} }

// get returns the current revision of a document.
func (sh *shard) get(uri string) (*docRev, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	d, ok := sh.docs[uri]
	return d, ok
}

// publish installs root as the next revision of uri and returns it.
func (sh *shard) publish(uri string, root *dom.Node) *docRev {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rev := uint64(1)
	if cur, ok := sh.docs[uri]; ok {
		rev = cur.rev + 1
	}
	d := &docRev{root: root, rev: rev, domV: root.Version()}
	sh.docs[uri] = d
	return d
}

// remove deletes a document, reporting whether it existed.
func (sh *shard) remove(uri string) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.docs[uri]
	delete(sh.docs, uri)
	return ok
}

// removeWhere deletes every document whose URI matches, returning the
// removed URIs.
func (sh *shard) removeWhere(match func(uri string) bool) []string {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var out []string
	for uri := range sh.docs {
		if match(uri) {
			delete(sh.docs, uri)
			out = append(out, uri)
		}
	}
	return out
}

// count returns the number of documents in the shard.
func (sh *shard) count() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.docs)
}

// docEntry pairs a URI with the revision a scan observed.
type docEntry struct {
	uri string
	rev *docRev
}

// snapshotSorted collects the shard's documents matching the filter
// (nil matches all), sorted by URI. The returned entries are a
// point-in-time snapshot: later commits to the shard do not affect
// them, and their trees are immutable revisions.
func (sh *shard) snapshotSorted(match func(uri string) bool) []docEntry {
	sh.mu.RLock()
	out := make([]docEntry, 0, len(sh.docs))
	for uri, d := range sh.docs {
		if match == nil || match(uri) {
			out = append(out, docEntry{uri: uri, rev: d})
		}
	}
	sh.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].uri < out[j].uri })
	return out
}

// --- consistent hashing ----------------------------------------------------------

// shardIndex maps a URI to a shard by consistent hash (Lamping-Veach
// jump hash over a 64-bit FNV-1a of the URI): when the shard count
// changes, only ~1/n of the URIs move, so re-partitioning a reopened
// store touches the minimum number of documents.
func shardIndex(uri string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(uri))
	key := h.Sum64()
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// --- parallel scan + merge --------------------------------------------------------

// scanShards snapshots every shard concurrently (one goroutine per
// shard — the parallel collection scan) and returns the per-shard
// sorted entry lists, ready for merging.
func scanShards(shards []*shard, match func(uri string) bool) [][]docEntry {
	parts := make([][]docEntry, len(shards))
	if len(shards) == 1 {
		parts[0] = shards[0].snapshotSorted(match)
		return parts
	}
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			parts[i] = sh.snapshotSorted(match)
		}(i, sh)
	}
	wg.Wait()
	return parts
}

// mergeEntries merges per-shard sorted lists into one URI-ordered list.
func mergeEntries(parts [][]docEntry) []docEntry {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]docEntry, 0, total)
	m := newMerger(parts)
	for {
		e, ok := m.next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// merger is an incremental k-way merge over per-shard sorted entry
// lists — the streaming core of CollectionIter: pulling the next
// document costs O(k), not a full materialised merge, so an early-exit
// consumer (collection()[1]) stops after one step.
type merger struct {
	parts [][]docEntry
	pos   []int
}

func newMerger(parts [][]docEntry) *merger {
	return &merger{parts: parts, pos: make([]int, len(parts))}
}

func (m *merger) next() (docEntry, bool) {
	best := -1
	for i, p := range m.parts {
		if m.pos[i] >= len(p) {
			continue
		}
		if best < 0 || p[m.pos[i]].uri < m.parts[best][m.pos[best]].uri {
			best = i
		}
	}
	if best < 0 {
		return docEntry{}, false
	}
	e := m.parts[best][m.pos[best]]
	m.pos[best]++
	return e, true
}
