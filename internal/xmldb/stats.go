package xmldb

import "sync/atomic"

// Stats counts the store's work with lock-free atomics (the
// serve.Metrics style): HTTP service counters for the paper's §6.1
// off-loading experiments plus the storage-engine counters the
// persistent backend added. Concurrent increments never contend on a
// lock, and Snapshot reads a consistent-enough point-in-time view
// without stopping writers.
type Stats struct {
	// HTTP / query service.
	requests         atomic.Int64
	bytesServed      atomic.Int64
	queriesEvaluated atomic.Int64
	docsServed       atomic.Int64

	// Storage engine.
	puts        atomic.Int64
	gets        atomic.Int64
	deletes     atomic.Int64
	scans       atomic.Int64
	commits     atomic.Int64
	conflicts   atomic.Int64
	walAppends  atomic.Int64
	walReplays  atomic.Int64
	checkpoints atomic.Int64

	// Full-text index persistence.
	ftPersisted atomic.Int64
	ftLoaded    atomic.Int64
}

// StatsSnapshot is a point-in-time copy of the counters — a plain value
// struct (no mutex inside, unlike the old by-value Stats copy) that is
// safe to pass around and JSON-serialise.
type StatsSnapshot struct {
	// Requests counts HTTP requests served by Handler.
	Requests int64 `json:"requests"`
	// BytesServed counts response bytes written by Handler.
	BytesServed int64 `json:"bytes_served"`
	// QueriesEvaluated counts Query/Update evaluations (HTTP and
	// direct).
	QueriesEvaluated int64 `json:"queries_evaluated"`
	// DocsServed counts whole documents served over HTTP (§6.1's
	// cache-friendly granularity).
	DocsServed int64 `json:"docs_served"`
	// Puts/Gets/Deletes/Scans count storage operations: document
	// stores, point reads, removals and collection scans.
	Puts    int64 `json:"puts"`
	Gets    int64 `json:"gets"`
	Deletes int64 `json:"deletes"`
	Scans   int64 `json:"scans"`
	// Commits counts committed mutations (every kind); Conflicts counts
	// optimistic update commits refused with ErrConflict.
	Commits   int64 `json:"commits"`
	Conflicts int64 `json:"conflicts"`
	// WALAppends/WALReplays count redo-log records written and records
	// re-applied during recovery; Checkpoints counts snapshot writes.
	WALAppends  int64 `json:"wal_appends"`
	WALReplays  int64 `json:"wal_replays"`
	Checkpoints int64 `json:"checkpoints"`
	// FTPersisted/FTLoaded count full-text indexes written to checkpoint
	// sidecars and attached back at Open (reopened stores skip those
	// documents' cold builds).
	FTPersisted int64 `json:"ft_persisted"`
	FTLoaded    int64 `json:"ft_loaded"`
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Requests:         s.requests.Load(),
		BytesServed:      s.bytesServed.Load(),
		QueriesEvaluated: s.queriesEvaluated.Load(),
		DocsServed:       s.docsServed.Load(),
		Puts:             s.puts.Load(),
		Gets:             s.gets.Load(),
		Deletes:          s.deletes.Load(),
		Scans:            s.scans.Load(),
		Commits:          s.commits.Load(),
		Conflicts:        s.conflicts.Load(),
		WALAppends:       s.walAppends.Load(),
		WALReplays:       s.walReplays.Load(),
		Checkpoints:      s.checkpoints.Load(),
		FTPersisted:      s.ftPersisted.Load(),
		FTLoaded:         s.ftLoaded.Load(),
	}
}

// Reset zeroes the counters.
func (s *Stats) Reset() {
	for _, c := range []*atomic.Int64{
		&s.requests, &s.bytesServed, &s.queriesEvaluated, &s.docsServed,
		&s.puts, &s.gets, &s.deletes, &s.scans, &s.commits, &s.conflicts,
		&s.walAppends, &s.walReplays, &s.checkpoints,
		&s.ftPersisted, &s.ftLoaded,
	} {
		c.Store(0)
	}
}
