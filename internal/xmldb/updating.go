package xmldb

import (
	"repro/internal/dom"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/parser"
)

// The MVCC store must decide, before running a query against a stored
// document, whether the query can mutate it: pure queries read the
// published immutable revision directly (no copy), updating queries run
// against a private clone that commits as the next revision. The
// decision is a static over-approximation of the Update Facility's
// updating-expression classification: a false positive only costs a
// clone, a false negative would let a query scribble on a published
// revision — so every shape we cannot prove pure counts as updating.

// moduleUpdates reports whether running the module could mutate its
// context document or any resolver-provided document.
func moduleUpdates(m *ast.Module) bool {
	d := &updDetect{decls: map[dom.QName]*ast.FuncDecl{}}
	for i := range m.Prolog.Functions {
		f := &m.Prolog.Functions[i]
		d.decls[dom.QName{Space: f.Name.Space, Local: f.Name.Local}] = f
	}
	for _, v := range m.Prolog.Vars {
		if d.expr(v.Init) {
			return true
		}
	}
	return d.expr(m.Body)
}

type updDetect struct {
	decls  map[dom.QName]*ast.FuncDecl
	onPath map[dom.QName]bool // visited declarations (recursion guard)
}

// call classifies a static function call. Builtin fn:/xs: calls are
// pure except fn:put; calls to declared functions are as updating as
// their declaration and body; anything else — imported modules,
// external functions, the browser extension namespace — is opaque and
// counts as updating.
func (d *updDetect) call(x ast.FuncCall) bool {
	for _, a := range x.Args {
		if d.expr(a) {
			return true
		}
	}
	switch x.Name.Space {
	case parser.FnNamespace:
		return x.Name.Local == "put"
	case parser.XSNamespace:
		return false
	}
	f, ok := d.decls[dom.QName{Space: x.Name.Space, Local: x.Name.Local}]
	if !ok || f.External {
		return true
	}
	if f.Updating || f.Sequential {
		return true
	}
	key := dom.QName{Space: f.Name.Space, Local: f.Name.Local}
	if d.onPath[key] {
		return false // recursive call: the outer visit covers the body
	}
	if d.onPath == nil {
		d.onPath = map[dom.QName]bool{}
	}
	d.onPath[key] = true
	defer delete(d.onPath, key)
	return d.expr(f.Body)
}

// expr walks one expression. The type switch enumerates every pure
// shape explicitly; the default arm — any node kind this walker does
// not know — reports updating, so new AST nodes fail safe.
func (d *updDetect) expr(e ast.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case ast.StringLit, ast.IntLit, ast.DecimalLit, ast.DoubleLit,
		ast.VarRef, ast.ContextItem, ast.Break, ast.Continue:
		return false
	case ast.SeqExpr:
		return d.any(x.Items)
	case ast.FuncCall:
		return d.call(x)
	case ast.Ordered:
		return d.expr(x.X)
	case ast.Hoisted:
		return d.expr(x.X)
	case ast.If:
		return d.expr(x.Cond) || d.expr(x.Then) || d.expr(x.Else)
	case ast.FLWOR:
		for _, c := range x.Clauses {
			if d.expr(c.In) {
				return true
			}
		}
		for _, o := range x.OrderBy {
			if d.expr(o.Key) {
				return true
			}
		}
		return d.expr(x.Where) || d.expr(x.Return)
	case ast.Quantified:
		for _, c := range x.Vars {
			if d.expr(c.In) {
				return true
			}
		}
		return d.expr(x.Satisfies)
	case ast.Typeswitch:
		for _, c := range x.Cases {
			if d.expr(c.Body) {
				return true
			}
		}
		return d.expr(x.Operand) || d.expr(x.Default)
	case ast.Binary:
		return d.expr(x.L) || d.expr(x.R)
	case ast.Compare:
		return d.expr(x.L) || d.expr(x.R)
	case ast.Unary:
		return d.expr(x.X)
	case ast.Range:
		return d.expr(x.L) || d.expr(x.R)
	case ast.InstanceOf:
		return d.expr(x.X)
	case ast.TreatAs:
		return d.expr(x.X)
	case ast.CastAs:
		return d.expr(x.X)
	case ast.Path:
		for _, s := range x.Steps {
			if d.expr(s.Primary) || d.any(s.Preds) {
				return true
			}
		}
		return false
	case ast.DirElem:
		for _, a := range x.Attrs {
			if d.any(a.Pieces) {
				return true
			}
		}
		return d.any(x.Content)
	case ast.CompConstructor:
		return d.expr(x.NameExpr) || d.expr(x.Content)
	case ast.Transform:
		// copy/modify/return mutates only its own copies — pure from the
		// store's point of view — but its clause sources and return are
		// ordinary expressions. The modify clause targets copies, yet we
		// walk it anyway: a call chain from it could escape to fn:put.
		for _, c := range x.Bindings {
			if d.expr(c.In) {
				return true
			}
		}
		return d.expr(x.Modify) || d.expr(x.Return)
	case ast.Block:
		return d.any(x.Stmts)
	case ast.BlockDecl:
		return d.expr(x.Init)
	case ast.Assign:
		// Variable assignment mutates the variable binding, not a
		// document.
		return d.expr(x.Val)
	case ast.While:
		return d.expr(x.Cond) || d.expr(x.Body)
	case ast.Exit:
		return d.expr(x.With)
	case ast.FTContains:
		return d.expr(x.X) || d.ftsel(x.Sel)
	case ast.GetStyle:
		return d.expr(x.Prop) || d.expr(x.Target)
	case ast.Insert, ast.Delete, ast.Replace, ast.Rename,
		ast.SetStyle, ast.EventAttach, ast.EventDetach, ast.EventTrigger:
		// Update Facility primitives mutate their targets in place;
		// the browser extensions mutate the target's tree (style
		// attributes, listener state).
		return true
	default:
		return true // unknown shape: fail safe
	}
}

func (d *updDetect) any(es []ast.Expr) bool {
	for _, e := range es {
		if d.expr(e) {
			return true
		}
	}
	return false
}

func (d *updDetect) ftsel(s ast.FTSelection) bool {
	switch x := s.(type) {
	case ast.FTWords:
		return d.expr(x.Source)
	case ast.FTAnd:
		return d.ftsel(x.L) || d.ftsel(x.R)
	case ast.FTOr:
		return d.ftsel(x.L) || d.ftsel(x.R)
	case ast.FTNot:
		return d.ftsel(x.X)
	}
	return true
}
