// Package wal is the durability substrate of the XML document store: an
// append-only redo log plus full-state snapshot files sharing one record
// encoding. It is the redo-side dual of the update package's undo log
// (PR 5): where the undo log records, per applied primitive, the exact
// inverse to unwind a failed in-memory apply, the redo log records, per
// committed store operation, the exact forward primitive to replay after
// a crash. The primitive vocabulary mirrors update.Kind's shape — a
// small enum of operations, each carrying a target path and optional
// content — and replay applies records strictly in log order, the same
// discipline as the undo log's strict reverse order.
//
// Crash tolerance is structural: every record is length-framed and
// CRC-sealed, so a reader hitting a torn tail (the bytes a crash left
// half-written) stops at the last intact record instead of failing.
// Recovery = load the newest snapshot, then replay every log record
// with a sequence number beyond the snapshot's.
//
// The store.fsync fault point fires inside Append, before the record
// reaches the file; an injected fault leaves a deliberately torn frame
// behind — exactly what a mid-commit power cut produces — so the chaos
// suite can rehearse recovery against realistic damage.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/faultpoint"
)

// Kind identifies a redo primitive — the store-level analogue of
// update.Kind. Values are part of the on-disk format: append only.
type Kind uint8

// Redo primitives, in declaration order.
const (
	// Put stores (or replaces) a document: Path is its URI, Data its
	// serialized XML.
	Put Kind = iota + 1
	// Delete removes the document at Path.
	Delete
	// MkCol creates the collection at Path (parents included).
	MkCol
	// RmCol removes the collection subtree at Path, documents included.
	RmCol
)

// String names the primitive kind.
func (k Kind) String() string {
	switch k {
	case Put:
		return "put"
	case Delete:
		return "delete"
	case MkCol:
		return "mkcol"
	case RmCol:
		return "rmcol"
	}
	return fmt.Sprintf("wal.Kind(%d)", uint8(k))
}

// Record is one redo primitive. Seq is the store's global commit
// sequence number: strictly increasing across the snapshot and log, so
// replay can skip records the snapshot already contains.
type Record struct {
	Seq  uint64
	Kind Kind
	Path string
	Data []byte
}

// File magics. A snapshot carries the sequence number of the last
// commit it contains in the 8 bytes after its magic.
var (
	logMagic  = []byte("XQDBWAL1\n")
	snapMagic = []byte("XQDBSNP1\n")
)

// ErrCorrupt reports a record frame that is present and complete but
// fails its integrity check — damage beyond a torn tail.
var ErrCorrupt = errors.New("wal: corrupt record")

// maxFrame bounds a record frame read back from disk; a length prefix
// beyond it is treated as tail damage, not an allocation request.
const maxFrame = 1 << 30

// encode renders a record as one self-checking frame:
//
//	[u32 payload len][payload][u32 crc32(payload)]
//	payload = [u64 seq][u8 kind][u32 pathLen][path][data]
func encode(r Record) []byte {
	payload := make([]byte, 0, 8+1+4+len(r.Path)+len(r.Data))
	payload = binary.LittleEndian.AppendUint64(payload, r.Seq)
	payload = append(payload, byte(r.Kind))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(r.Path)))
	payload = append(payload, r.Path...)
	payload = append(payload, r.Data...)

	frame := make([]byte, 0, 4+len(payload)+4)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	return frame
}

// decode parses one payload back into a record.
func decode(payload []byte) (Record, error) {
	if len(payload) < 8+1+4 {
		return Record{}, fmt.Errorf("%w: payload too short (%d bytes)", ErrCorrupt, len(payload))
	}
	var r Record
	r.Seq = binary.LittleEndian.Uint64(payload)
	r.Kind = Kind(payload[8])
	plen := binary.LittleEndian.Uint32(payload[9:])
	rest := payload[13:]
	if uint32(len(rest)) < plen {
		return Record{}, fmt.Errorf("%w: path length %d exceeds payload", ErrCorrupt, plen)
	}
	r.Path = string(rest[:plen])
	if data := rest[plen:]; len(data) > 0 {
		r.Data = append([]byte(nil), data...)
	}
	return r, nil
}

// Writer appends records to a log file. Not safe for concurrent use:
// the store serialises commits, and the writer inherits that ordering.
type Writer struct {
	f    *os.File
	sync bool
	// torn is set after an injected mid-commit fault left a partial
	// frame behind; every later append must fail — a real crash would
	// not have survived to append again.
	torn bool
}

// Create truncates (or creates) the log at path and writes the magic.
func Create(path string, syncEach bool) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(logMagic); err != nil {
		f.Close()
		return nil, err
	}
	if syncEach {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &Writer{f: f, sync: syncEach}, nil
}

// Append durably appends one record: frame write, then (when the
// writer syncs) fsync, all behind the store.fsync fault point. An
// injected fault deliberately leaves the first half of the frame on
// disk — the torn tail a mid-commit crash produces — and poisons the
// writer, so the caller must treat the commit as failed and the file
// as crash-equivalent.
func (w *Writer) Append(r Record) error {
	if w.torn {
		return fmt.Errorf("wal: writer poisoned by an earlier failed commit")
	}
	frame := encode(r)
	if err := faultpoint.Hit(faultpoint.PointStoreFsync); err != nil {
		w.torn = true
		w.f.Write(frame[:len(frame)/2]) // the crash's half-written frame
		return fmt.Errorf("wal: append seq %d: %w", r.Seq, err)
	}
	if _, err := w.f.Write(frame); err != nil {
		w.torn = true
		return fmt.Errorf("wal: append seq %d: %w", r.Seq, err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			w.torn = true
			return fmt.Errorf("wal: sync seq %d: %w", r.Seq, err)
		}
	}
	return nil
}

// Close syncs and closes the log file.
func (w *Writer) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ReadLog replays the log at path, calling apply for every intact
// record in order. A missing file is an empty log. A torn or truncated
// tail ends the scan cleanly (that is the crash contract); corruption
// before the tail — an intact frame whose CRC fails — is returned as
// ErrCorrupt. apply errors abort the scan.
func ReadLog(path string, apply func(Record) error) error {
	return readFile(path, logMagic, nil, apply)
}

// WriteSnapshot writes a full-state snapshot to path atomically: the
// records stream into path.tmp, which is fsynced and renamed over
// path. lastSeq is the commit sequence the state includes; recovery
// replays only log records beyond it.
func WriteSnapshot(path string, lastSeq uint64, records []Record) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if _, err := bw.Write(snapMagic); err != nil {
		f.Close()
		return err
	}
	var seqb [8]byte
	binary.LittleEndian.PutUint64(seqb[:], lastSeq)
	if _, err := bw.Write(seqb[:]); err != nil {
		f.Close()
		return err
	}
	for _, r := range records {
		if _, err := bw.Write(encode(r)); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadSnapshot loads the snapshot at path, calling apply per record,
// and returns the sequence number the snapshot's state includes. A
// missing file yields (0, nil): an empty store.
func ReadSnapshot(path string, apply func(Record) error) (lastSeq uint64, err error) {
	err = readFile(path, snapMagic, &lastSeq, apply)
	return lastSeq, err
}

func readFile(path string, magic []byte, seqOut *uint64, apply func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		if err == io.EOF {
			return nil // zero-length file: created but never written
		}
		return fmt.Errorf("%w: %s: short magic", ErrCorrupt, path)
	}
	if string(head) != string(magic) {
		return fmt.Errorf("%w: %s: bad magic %q", ErrCorrupt, path, head)
	}
	if seqOut != nil {
		var seqb [8]byte
		if _, err := io.ReadFull(br, seqb[:]); err != nil {
			return fmt.Errorf("%w: %s: short snapshot header", ErrCorrupt, path)
		}
		*seqOut = binary.LittleEndian.Uint64(seqb[:])
	}
	for {
		var lenb [4]byte
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			return nil // clean EOF or torn length prefix: end of intact log
		}
		n := binary.LittleEndian.Uint32(lenb[:])
		if n == 0 || n > maxFrame {
			return nil // nonsense length: torn tail
		}
		buf := make([]byte, int(n)+4)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil // frame cut short: torn tail
		}
		payload, sum := buf[:n], binary.LittleEndian.Uint32(buf[n:])
		if crc32.ChecksumIEEE(payload) != sum {
			// A complete frame with a bad checksum is not a torn tail —
			// unless it is the last frame (a torn write can land inside
			// the CRC itself). Peek: bytes beyond mean mid-log damage.
			if _, err := br.ReadByte(); err != nil {
				return nil
			}
			return fmt.Errorf("%w: %s: checksum mismatch mid-log", ErrCorrupt, path)
		}
		rec, err := decode(payload)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := apply(rec); err != nil {
			return err
		}
	}
}
