package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultpoint"
)

func readAll(t *testing.T, path string) []Record {
	t.Helper()
	var out []Record
	if err := ReadLog(path, func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	p := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(p, true)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Seq: 1, Kind: MkCol, Path: "/db"},
		{Seq: 2, Kind: Put, Path: "/db/a.xml", Data: []byte("<a/>")},
		{Seq: 3, Kind: Delete, Path: "/db/a.xml"},
		{Seq: 4, Kind: RmCol, Path: "/db"},
		{Seq: 5, Kind: Put, Path: "", Data: nil}, // degenerate: empty path, no data
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, p)
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		g := got[i]
		if g.Seq != r.Seq || g.Kind != r.Kind || g.Path != r.Path || string(g.Data) != string(r.Data) {
			t.Errorf("record %d = %+v, want %+v", i, g, r)
		}
	}
}

func TestMissingFileIsEmpty(t *testing.T) {
	if got := readAll(t, filepath.Join(t.TempDir(), "nope.log")); len(got) != 0 {
		t.Errorf("missing log read %d records", len(got))
	}
	seq, err := ReadSnapshot(filepath.Join(t.TempDir(), "nope.snap"), func(Record) error { return nil })
	if err != nil || seq != 0 {
		t.Errorf("missing snapshot = seq %d, %v", seq, err)
	}
}

func TestTornTailIgnored(t *testing.T) {
	p := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(p, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Seq: 1, Kind: Put, Path: "a", Data: []byte("<a/>")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: tack on a prefix of a valid frame.
	frame := encode(Record{Seq: 2, Kind: Put, Path: "b", Data: []byte("<b/>")})
	for cut := 1; cut < len(frame); cut++ {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		torn := append(append([]byte(nil), data...), frame[:cut]...)
		if err := os.WriteFile(p, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		got := readAll(t, p)
		if len(got) != 1 || got[0].Seq != 1 {
			t.Fatalf("cut %d: read %d records, want the 1 intact one", cut, len(got))
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMidLogCorruptionDetected(t *testing.T) {
	p := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(p, false)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := w.Append(Record{Seq: seq, Kind: Put, Path: "a", Data: []byte("<a/>")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's payload (not the tail).
	data[len(logMagic)+6] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = ReadLog(p, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestBadMagic(t *testing.T) {
	p := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(p, []byte("NOTALOG00 some bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ReadLog(p, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: err = %v, want ErrCorrupt", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	p := filepath.Join(t.TempDir(), "snap")
	recs := []Record{
		{Seq: 1, Kind: MkCol, Path: "/db"},
		{Seq: 7, Kind: Put, Path: "/db/a.xml", Data: []byte("<a/>")},
	}
	if err := WriteSnapshot(p, 9, recs); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("snapshot temp file left behind")
	}
	var got []Record
	seq, err := ReadSnapshot(p, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 9 {
		t.Errorf("lastSeq = %d, want 9", seq)
	}
	if len(got) != 2 || got[1].Path != "/db/a.xml" {
		t.Errorf("snapshot records = %+v", got)
	}
	// Overwrite with a newer snapshot: rename must replace atomically.
	if err := WriteSnapshot(p, 12, recs[:1]); err != nil {
		t.Fatal(err)
	}
	seq, _ = ReadSnapshot(p, func(Record) error { return nil })
	if seq != 12 {
		t.Errorf("replaced lastSeq = %d, want 12", seq)
	}
}

func TestFsyncFaultTearsAndPoisons(t *testing.T) {
	defer faultpoint.Reset()
	p := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(p, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Seq: 1, Kind: Put, Path: "a", Data: []byte("<a/>")}); err != nil {
		t.Fatal(err)
	}
	faultpoint.Enable(faultpoint.PointStoreFsync, faultpoint.Always())
	err = w.Append(Record{Seq: 2, Kind: Put, Path: "b", Data: []byte("<b/>")})
	if !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("faulted append err = %v", err)
	}
	faultpoint.Reset()
	// The writer is poisoned: even with the fault disarmed, appending
	// after a failed commit must not resume.
	if err := w.Append(Record{Seq: 3, Kind: Put, Path: "c"}); err == nil {
		t.Error("append after failed commit must error")
	}
	w.f.Close()
	// Recovery sees only the intact prefix — the torn frame vanishes.
	got := readAll(t, p)
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("post-crash read = %+v, want the 1 committed record", got)
	}
	// And the file genuinely holds torn bytes (half a frame).
	fi, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	intact := int64(len(logMagic) + len(encode(got[0])))
	if fi.Size() <= intact {
		t.Errorf("no torn bytes on disk: size %d, intact prefix %d", fi.Size(), intact)
	}
}
