// Package xmldb is a persistent, sharded, REST-accessible XML document
// store — the stand-in for the MarkLogic XMLDB behind the paper's
// Elsevier Reference 2.0 application (§6.1). It offers both endpoint
// granularities that §6.1 contrasts — per-query access (the original
// architecture) and whole-document access ("adjusted so that they serve
// whole documents rather than individual queries … to better enable
// caching") — on top of a storage engine with:
//
//   - Hierarchical collections: document URIs beginning with "/" live
//     in eXist-style nested collections ("/db/articles/a1.xml" is in
//     "/db/articles"); legacy flat URIs live in the root collection.
//   - Sharding: documents are partitioned across N sub-stores by a
//     consistent hash of the URI, so collection scans fan out across
//     shards and merge back in URI order.
//   - MVCC: commits publish immutable document revisions; readers and
//     collection scans see consistent point-in-time state without
//     blocking writers, and concurrent updates to one document resolve
//     first-committer-wins (the loser gets ErrConflict).
//   - Durability: an append-only redo log (package wal — the redo dual
//     of the update package's undo log) plus full-state snapshots.
//     Crash recovery loads the newest snapshot and replays the log
//     tail, then re-checkpoints.
//
// Open(dir) gives the persistent store; Open("") an ephemeral one with
// the same semantics minus the disk. The public facade (package xqib,
// repo root) re-exports the store behind xqib.OpenStore.
package xmldb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faultpoint"
	"repro/internal/markup"
	"repro/internal/xmldb/wal"
	"repro/internal/xquery"
)

// Sentinel errors. The xqib facade re-exports these; match with
// errors.Is at any wrapping depth.
var (
	// ErrNoCollection reports an operation on a hierarchical collection
	// that does not exist (storing into it, scanning it).
	ErrNoCollection = errors.New("xmldb: no such collection")
	// ErrDocNotFound reports a read of a document URI with no document.
	ErrDocNotFound = errors.New("xmldb: no such document")
	// ErrStoreClosed reports an operation on a store after Close — or
	// after a failed commit poisoned it (a commit whose redo record did
	// not reach the log durably must not be retried against state that
	// no longer matches the disk).
	ErrStoreClosed = errors.New("xmldb: store closed")
	// ErrConflict reports an optimistic update that lost the
	// first-committer-wins race: the document changed between the
	// update's snapshot and its commit.
	ErrConflict = errors.New("xmldb: concurrent update conflict")
)

// Option configures Open.
type Option func(*config)

type config struct {
	shards    int
	sync      bool
	ckptEvery int
}

// WithShards sets the number of sub-stores the document space is
// partitioned into (default 4, minimum 1). The count is an in-memory
// layout choice: a directory written under one count reopens correctly
// under any other.
func WithShards(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.shards = n
		}
	}
}

// WithSyncWrites controls whether every commit fsyncs its redo record
// (default true). Turning it off trades the durability of the last few
// commits for write throughput — the benchmark setting.
func WithSyncWrites(on bool) Option {
	return func(c *config) { c.sync = on }
}

// WithCheckpointEvery makes the store write a snapshot and truncate the
// redo log automatically every n commits (default 0: checkpoints happen
// only at Open, Close and explicit Checkpoint calls).
func WithCheckpointEvery(n int) Option {
	return func(c *config) { c.ckptEvery = n }
}

// Names of the two files a store directory holds.
const (
	snapFile = "store.snap"
	logFile  = "store.wal"
)

// Store is the document database: sharded in memory, durable on disk
// when opened with a directory.
type Store struct {
	dir    string // "" for ephemeral
	shards []*shard
	cols   *colSet
	engine *xquery.Engine
	Stats  Stats

	syncEach  bool
	ckptEvery int

	// commitMu serialises the commit protocol — conflict check, redo
	// append, in-memory apply — and guards the fields below. Reads
	// never take it.
	commitMu  sync.Mutex
	log       *wal.Writer // nil for ephemeral stores
	seq       uint64      // last committed sequence number
	sinceCkpt int
	closed    bool
	cause     error // why the store closed, when poisoned
}

// Open opens (creating if needed) the store in dir. An empty dir opens
// an ephemeral in-memory store with identical semantics and no
// durability. Recovery runs before Open returns: the newest snapshot
// loads, the redo-log tail beyond it replays, and the recovered state
// immediately re-checkpoints (fresh snapshot, truncated log) so a torn
// log tail from a crash is never appended after.
func Open(dir string, opts ...Option) (*Store, error) {
	cfg := config{shards: 4, sync: true}
	for _, o := range opts {
		o(&cfg)
	}
	s := &Store{
		dir:       dir,
		shards:    make([]*shard, cfg.shards),
		cols:      newColSet(),
		engine:    xquery.New(),
		syncEach:  cfg.sync,
		ckptEvery: cfg.ckptEvery,
	}
	for i := range s.shards {
		s.shards[i] = newShard()
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("xmldb: open %s: %w", dir, err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	// Attach persisted full-text indexes before the re-checkpoint, so
	// the checkpoint's sidecar write sees them fresh and re-persists.
	s.loadFTIndexes()
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if err := s.checkpointLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewStore creates an ephemeral in-memory store.
//
// Deprecated: use Open("") — or xqib.OpenStore for the public facade —
// which exposes the persistence and sharding options.
func NewStore() *Store {
	s, err := Open("")
	if err != nil { // unreachable: ephemeral Open cannot fail
		panic(err)
	}
	return s
}

// recover rebuilds in-memory state from the snapshot and the redo-log
// tail. Every record replayed passes the store.replay fault point, so
// the chaos suite can abort recovery at any chosen record.
func (s *Store) recover() error {
	apply := func(r wal.Record) error {
		if err := faultpoint.Hit(faultpoint.PointStoreReplay); err != nil {
			return fmt.Errorf("xmldb: replay seq %d: %w", r.Seq, err)
		}
		return s.applyRecord(r)
	}
	snapSeq, err := wal.ReadSnapshot(filepath.Join(s.dir, snapFile), apply)
	if err != nil {
		return fmt.Errorf("xmldb: snapshot: %w", err)
	}
	s.seq = snapSeq
	err = wal.ReadLog(filepath.Join(s.dir, logFile), func(r wal.Record) error {
		if r.Seq <= snapSeq {
			return nil // the snapshot already contains this commit
		}
		if err := apply(r); err != nil {
			return err
		}
		s.seq = r.Seq
		s.Stats.walReplays.Add(1)
		return nil
	})
	if err != nil {
		return fmt.Errorf("xmldb: log replay: %w", err)
	}
	return nil
}

// applyRecord applies one redo primitive to in-memory state — the
// shared interpreter for snapshot load and log replay.
func (s *Store) applyRecord(r wal.Record) error {
	switch r.Kind {
	case wal.Put:
		doc, err := markup.Parse(string(r.Data))
		if err != nil {
			return fmt.Errorf("xmldb: replay seq %d (%s): %w", r.Seq, r.Path, err)
		}
		doc.BaseURI = r.Path
		s.cols.create(collectionOf(r.Path))
		s.shardFor(r.Path).publish(r.Path, doc)
	case wal.Delete:
		s.shardFor(r.Path).remove(r.Path)
	case wal.MkCol:
		s.cols.create(normCollection(r.Path))
	case wal.RmCol:
		s.applyRmCol(normCollection(r.Path))
	default:
		return fmt.Errorf("xmldb: replay seq %d: unknown primitive %v", r.Seq, r.Kind)
	}
	return nil
}

// applyRmCol removes a collection subtree and every document in it.
func (s *Store) applyRmCol(col string) {
	for _, sh := range s.shards {
		sh.removeWhere(func(uri string) bool { return inCollection(col, uri) && col != "/" })
	}
	s.cols.remove(col)
}

// shardFor maps a URI to its shard.
func (s *Store) shardFor(uri string) *shard {
	return s.shards[shardIndex(uri, len(s.shards))]
}

// errNoop tells commit "the check decided there is nothing to do":
// succeed without logging or applying anything.
var errNoop = errors.New("xmldb: no-op commit")

// commit runs the store's commit protocol for one redo primitive:
// under the commit lock, check preconditions, append the record to the
// redo log, fsync (when configured), then apply to memory. The order is
// the durability contract — a commit is in memory only if it is on
// disk. A failed append poisons the store (ErrStoreClosed thereafter):
// memory still matches the log's intact prefix, and reopening the
// directory recovers exactly that state.
func (s *Store) commit(kind wal.Kind, path string, data []byte, check func() error, apply func()) error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if s.closed {
		return s.closedErr()
	}
	if check != nil {
		if err := check(); err != nil {
			if errors.Is(err, errNoop) {
				return nil
			}
			return err
		}
	}
	seq := s.seq + 1
	if s.log != nil {
		if err := s.log.Append(wal.Record{Seq: seq, Kind: kind, Path: path, Data: data}); err != nil {
			s.closed = true
			s.cause = err
			return fmt.Errorf("xmldb: commit seq %d: %w: %w", seq, ErrStoreClosed, err)
		}
		s.Stats.walAppends.Add(1)
	}
	s.seq = seq
	apply()
	s.Stats.commits.Add(1)
	s.sinceCkpt++
	if s.ckptEvery > 0 && s.sinceCkpt >= s.ckptEvery {
		if err := s.checkpointLocked(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) closedErr() error {
	if s.cause != nil {
		return fmt.Errorf("%w (cause: %v)", ErrStoreClosed, s.cause)
	}
	return ErrStoreClosed
}

// snapshotRecords renders the whole current state as redo primitives:
// collection creations first, then every document, URI-ordered.
func (s *Store) snapshotRecords() []wal.Record {
	var recs []wal.Record
	for _, col := range s.cols.list() {
		if col != "/" {
			recs = append(recs, wal.Record{Kind: wal.MkCol, Path: col})
		}
	}
	for _, e := range mergeEntries(scanShards(s.shards, nil)) {
		recs = append(recs, wal.Record{
			Kind: wal.Put,
			Path: e.uri,
			Data: []byte(markup.Serialize(e.rev.root)),
		})
	}
	return recs
}

// checkpointLocked writes a full snapshot and truncates the redo log.
// Caller holds the commit lock.
func (s *Store) checkpointLocked() error {
	if s.dir == "" {
		return nil
	}
	if err := wal.WriteSnapshot(filepath.Join(s.dir, snapFile), s.seq, s.snapshotRecords()); err != nil {
		return fmt.Errorf("xmldb: checkpoint: %w", err)
	}
	s.writeFTIndexesLocked()
	if s.log != nil {
		s.log.Close()
	}
	w, err := wal.Create(filepath.Join(s.dir, logFile), s.syncEach)
	if err != nil {
		return fmt.Errorf("xmldb: checkpoint: %w", err)
	}
	s.log = w
	s.sinceCkpt = 0
	s.Stats.checkpoints.Add(1)
	return nil
}

// Checkpoint writes a full snapshot and truncates the redo log, putting
// a floor under the next recovery's replay work.
func (s *Store) Checkpoint() error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if s.closed {
		return s.closedErr()
	}
	return s.checkpointLocked()
}

// Close checkpoints (persistent stores) and closes the store. Commits
// after Close fail with ErrStoreClosed; reads keep serving the last
// committed state. Closing a closed store is a no-op.
func (s *Store) Close() error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if s.closed {
		return nil
	}
	var err error
	if s.dir != "" {
		err = s.checkpointLocked()
		if s.log != nil {
			if cerr := s.log.Close(); err == nil {
				err = cerr
			}
			s.log = nil
		}
	}
	s.closed = true
	return err
}
