// Package xmldb is a REST-accessible XML document store — the stand-in
// for the MarkLogic XMLDB behind the paper's Elsevier Reference 2.0
// application (§6.1). It offers both endpoint granularities that §6.1
// contrasts: per-query access (the original architecture) and
// whole-document access ("adjusted so that they serve whole documents
// rather than individual queries … to better enable caching").
package xmldb

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery"
	"repro/internal/xquery/runtime"
)

// Stats counts server-side work for the off-loading experiments.
type Stats struct {
	mu               sync.Mutex
	Requests         int
	BytesServed      int64
	QueriesEvaluated int
	DocsServed       int
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Requests: s.Requests, BytesServed: s.BytesServed,
		QueriesEvaluated: s.QueriesEvaluated, DocsServed: s.DocsServed}
}

// Reset zeroes the counters.
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Requests, s.BytesServed, s.QueriesEvaluated, s.DocsServed = 0, 0, 0, 0
}

// Store is an in-memory XML document database keyed by URI.
type Store struct {
	mu     sync.RWMutex
	docs   map[string]*dom.Node
	engine *xquery.Engine
	Stats  Stats
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{docs: map[string]*dom.Node{}, engine: xquery.New()}
}

// Put stores (or replaces) a document under a URI.
func (s *Store) Put(uri string, doc *dom.Node) {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc.BaseURI = uri
	s.docs[uri] = doc
}

// PutXML parses and stores a document.
func (s *Store) PutXML(uri, src string) error {
	doc, err := markup.Parse(src)
	if err != nil {
		return fmt.Errorf("xmldb: %s: %w", uri, err)
	}
	s.Put(uri, doc)
	return nil
}

// Get returns the document stored under a URI.
func (s *Store) Get(uri string) (*dom.Node, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.docs[uri]
	return d, ok
}

// Delete removes a document.
func (s *Store) Delete(uri string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.docs, uri)
}

// List returns the stored URIs, sorted.
func (s *Store) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	uris := make([]string, 0, len(s.docs))
	for u := range s.docs {
		uris = append(uris, u)
	}
	sort.Strings(uris)
	return uris
}

// Len returns the number of stored documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// Resolver exposes the store as an fn:doc resolver (server-side XQuery
// runs doc("articles/a1.xml") directly against the database).
func (s *Store) Resolver() runtime.DocResolver {
	return func(uri string) (*dom.Node, error) {
		if d, ok := s.Get(uri); ok {
			return d, nil
		}
		return nil, fmt.Errorf("xmldb: no document %q", uri)
	}
}

// CollectionResolver exposes the store as an fn:collection resolver:
// the empty URI (the default collection) yields every document; a
// non-empty URI yields the documents whose URIs have it as a prefix
// (directory-style collections, e.g. collection("articles/")).
func (s *Store) CollectionResolver() runtime.CollectionResolver {
	return func(uri string) ([]*dom.Node, error) {
		var out []*dom.Node
		for _, u := range s.List() {
			if uri == "" || strings.HasPrefix(u, uri) {
				if d, ok := s.Get(u); ok {
					out = append(out, d)
				}
			}
		}
		return out, nil
	}
}

// Query evaluates an XQuery expression with a stored document as the
// context item and the store as the doc resolver.
func (s *Store) Query(uri, query string) (string, error) {
	doc, ok := s.Get(uri)
	if !ok {
		return "", fmt.Errorf("xmldb: no document %q", uri)
	}
	prog, err := s.engine.Compile(query)
	if err != nil {
		return "", err
	}
	res, err := prog.Run(xquery.RunConfig{
		ContextItem: xdm.NewNode(doc),
		Docs:        s.Resolver(),
		Collections: s.CollectionResolver(),
		Sequential:  true,
	})
	if err != nil {
		return "", err
	}
	s.Stats.mu.Lock()
	s.Stats.QueriesEvaluated++
	s.Stats.mu.Unlock()
	return xquery.FormatSequence(res.Value, markup.Serialize), nil
}

// Handler exposes the store over HTTP:
//
//	GET /doc?uri=U           — the whole document (cache-friendly, §6.1)
//	GET /query?uri=U&q=Q     — evaluate Q against U and return the result
//	PUT /doc?uri=U           — store the request body as a document
//	GET /list                — the stored URIs
func (s *Store) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /doc", func(w http.ResponseWriter, r *http.Request) {
		uri := r.URL.Query().Get("uri")
		doc, ok := s.Get(uri)
		if !ok {
			s.count(0, false, false)
			http.Error(w, fmt.Sprintf("no document %q", uri), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		n, _ := io.WriteString(w, markup.Serialize(doc))
		s.count(n, false, true)
	})
	mux.HandleFunc("GET /query", func(w http.ResponseWriter, r *http.Request) {
		uri := r.URL.Query().Get("uri")
		q := r.URL.Query().Get("q")
		out, err := s.Query(uri, q)
		if err != nil {
			s.count(0, true, false)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		n, _ := io.WriteString(w, "<result>"+out+"</result>")
		s.count(n, false, false) // Query already counted the evaluation
	})
	mux.HandleFunc("PUT /doc", func(w http.ResponseWriter, r *http.Request) {
		uri := r.URL.Query().Get("uri")
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.PutXML(uri, string(body)); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.count(0, false, false)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /list", func(w http.ResponseWriter, r *http.Request) {
		var out string
		out += "<uris>"
		for _, u := range s.List() {
			out += "<uri>" + markup.EscapeText(u) + "</uri>"
		}
		out += "</uris>"
		w.Header().Set("Content-Type", "application/xml")
		n, _ := io.WriteString(w, out)
		s.count(n, false, false)
	})
	return mux
}

func (s *Store) count(bytes int, queryErr, doc bool) {
	s.Stats.mu.Lock()
	defer s.Stats.mu.Unlock()
	s.Stats.Requests++
	s.Stats.BytesServed += int64(bytes)
	if doc {
		s.Stats.DocsServed++
	}
	_ = queryErr
}
