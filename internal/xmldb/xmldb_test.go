package xmldb

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	if err := s.PutXML("books.xml", `<books><book id="1"><title>A</title></book><book id="2"><title>B</title></book></books>`); err != nil {
		t.Fatal(err)
	}
	if err := s.PutXML("authors.xml", `<authors><author>X</author></authors>`); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreCRUD(t *testing.T) {
	s := newStore(t)
	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
	if _, ok := s.Get("books.xml"); !ok {
		t.Error("Get failed")
	}
	if uris := s.List(); len(uris) != 2 || uris[0] != "authors.xml" {
		t.Errorf("List = %v", uris)
	}
	s.Delete("authors.xml")
	if _, ok := s.Get("authors.xml"); ok {
		t.Error("Delete failed")
	}
	if err := s.PutXML("bad.xml", "<unclosed"); err == nil {
		t.Error("malformed XML must fail")
	}
}

func TestStoreQuery(t *testing.T) {
	s := newStore(t)
	out, err := s.Query("books.xml", `string(//book[@id="2"]/title)`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "B" {
		t.Errorf("query = %q", out)
	}
	// fn:doc against the store from inside a query.
	out, err = s.Query("books.xml", `count(doc("authors.xml")//author)`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "1" {
		t.Errorf("doc query = %q", out)
	}
	if _, err := s.Query("missing.xml", `1`); err == nil {
		t.Error("missing doc must fail")
	}
	if _, err := s.Query("books.xml", `][`); err == nil {
		t.Error("bad query must fail")
	}
	if got := s.Stats.Snapshot(); got.QueriesEvaluated != 2 {
		t.Errorf("QueriesEvaluated = %d", got.QueriesEvaluated)
	}
}

func TestResolver(t *testing.T) {
	s := newStore(t)
	r := s.Resolver()
	if _, err := r("books.xml"); err != nil {
		t.Error(err)
	}
	if _, err := r("nope.xml"); err == nil {
		t.Error("missing doc must fail")
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestHTTPEndpoints(t *testing.T) {
	s := newStore(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Whole-document endpoint.
	code, body := get(t, ts.URL+"/doc?uri=books.xml")
	if code != 200 || !strings.Contains(body, `<book id="1">`) {
		t.Errorf("doc: %d %s", code, body)
	}
	code, _ = get(t, ts.URL+"/doc?uri=missing.xml")
	if code != 404 {
		t.Errorf("missing doc code = %d", code)
	}

	// Per-query endpoint.
	code, body = get(t, ts.URL+"/query?uri=books.xml&q="+
		"string(//book[1]/title)")
	if code != 200 || !strings.Contains(body, "A") {
		t.Errorf("query: %d %s", code, body)
	}
	code, _ = get(t, ts.URL+"/query?uri=books.xml&q=][")
	if code != 400 {
		t.Errorf("bad query code = %d", code)
	}

	// PUT a new document then list.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/doc?uri=new.xml",
		strings.NewReader(`<new/>`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Errorf("put code = %d", resp.StatusCode)
	}
	_, body = get(t, ts.URL+"/list")
	if !strings.Contains(body, "<uri>new.xml</uri>") {
		t.Errorf("list: %s", body)
	}

	st := s.Stats.Snapshot()
	if st.Requests < 5 || st.DocsServed != 1 || st.BytesServed == 0 {
		t.Errorf("stats = requests %d, docs %d, bytes %d",
			st.Requests, st.DocsServed, st.BytesServed)
	}
	s.Stats.Reset()
	if s.Stats.Snapshot().Requests != 0 {
		t.Error("reset failed")
	}
}

func TestCollectionResolver(t *testing.T) {
	s := newStore(t)
	_ = s.PutXML("articles/a1.xml", `<article n="1"/>`)
	_ = s.PutXML("articles/a2.xml", `<article n="2"/>`)
	// Default collection = all documents.
	out, err := s.Query("books.xml", `count(collection())`)
	if err != nil || out != "4" {
		t.Errorf("collection() = %q, %v", out, err)
	}
	// Prefix collections.
	out, err = s.Query("books.xml", `count(collection("articles/"))`)
	if err != nil || out != "2" {
		t.Errorf("collection(articles/) = %q, %v", out, err)
	}
	out, err = s.Query("books.xml", `string-join(collection("articles/")//article/@n, ",")`)
	if err != nil || out != "1,2" {
		t.Errorf("collection content = %q, %v", out, err)
	}
	out, err = s.Query("books.xml", `count(collection("nope/"))`)
	if err != nil || out != "0" {
		t.Errorf("empty collection = %q, %v", out, err)
	}
}
