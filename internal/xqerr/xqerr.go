// Package xqerr is the unified failure taxonomy of the serving
// runtime. Every failure mode the resilience layer handles flows
// through a sentinel defined here or re-exported by a layer above:
//
//   - ErrInternal — a panic recovered at an evaluation boundary. The
//     concrete error is an *Internal carrying the panic value, the
//     stack at recovery and a stable stack fingerprint, so one poisoned
//     query is diagnosable (and quarantinable) without ever killing the
//     process.
//   - ErrMisconfigured — an invalid registration or configuration
//     detected at construction time (e.g. a streaming attachment whose
//     base function is missing). Construction never panics; the error
//     surfaces on first use.
//
// Panic recovery is centralised: the only sanctioned way to recover a
// panic outside this package, internal/faultpoint and the parser's own
// recoverTo is `defer xqerr.RecoverInto(&err, "boundary")` — a custom
// vet pass (tools/analyzers -check recovercheck) enforces it. That
// keeps every recovery counted, fingerprinted and visible in
// serve.Metrics.
package xqerr

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"strings"
	"sync/atomic"
)

// ErrInternal matches (via errors.Is) every *Internal: a panic
// recovered at an evaluation boundary.
var ErrInternal = errors.New("xqerr: internal error (recovered panic)")

// ErrMisconfigured matches construction-time registration failures that
// are deferred to first use instead of panicking.
var ErrMisconfigured = errors.New("xqerr: invalid configuration")

// recovered counts panics recovered through this package since process
// start (surfaced in serve.Metrics.Failures.PanicsRecovered).
var recovered atomic.Int64

// Recovered returns the process-wide count of recovered panics.
func Recovered() int64 { return recovered.Load() }

// Internal is a panic recovered into an error at an evaluation
// boundary.
type Internal struct {
	// Boundary names the recovery site ("serve.Session.Do",
	// "xquery.Run", ...).
	Boundary string
	// Value is the value the panic carried.
	Value any
	// Fingerprint is a stable hash of the panicking call stack's
	// function names: two panics from the same site share it, so
	// repeated crashes of one program are groupable (the cache's
	// quarantine counts on the program key instead, but logs and
	// dashboards group on this).
	Fingerprint string
	// Stack is the full goroutine stack captured at recovery.
	Stack []byte
}

// Error renders the boundary, fingerprint and panic value.
func (e *Internal) Error() string {
	return fmt.Sprintf("xqerr: recovered panic at %s [%s]: %v", e.Boundary, e.Fingerprint, e.Value)
}

// Unwrap makes errors.Is(err, ErrInternal) true.
func (e *Internal) Unwrap() error { return ErrInternal }

// New builds an *Internal from a recovered panic value, capturing the
// current stack. It also bumps the process-wide recovery counter, so
// callers must only use it on a real recovered panic.
func New(boundary string, v any) *Internal {
	recovered.Add(1)
	stack := debug.Stack()
	return &Internal{
		Boundary:    boundary,
		Value:       v,
		Fingerprint: fingerprint(stack),
		Stack:       stack,
	}
}

// RecoverInto recovers an in-flight panic into *errp as an *Internal.
// It must be invoked directly by defer at the boundary:
//
//	func (s *Session) Do(...) (err error) {
//	    defer xqerr.RecoverInto(&err, "serve.Session.Do")
//	    ...
//
// When no panic is in flight it leaves *errp untouched, so it composes
// with normal error returns.
func RecoverInto(errp *error, boundary string) {
	if r := recover(); r != nil {
		*errp = New(boundary, r)
	}
}

// fingerprint hashes the function-name lines of a debug.Stack capture,
// skipping addresses, file positions and the goroutine header, so the
// value is stable across runs and ASLR. At most 16 frames contribute:
// deep recursion still fingerprints by its top.
func fingerprint(stack []byte) string {
	h := fnv.New64a()
	frames := 0
	for _, line := range strings.Split(string(stack), "\n") {
		if frames >= 16 {
			break
		}
		// Frame pairs are "pkg.Func(args)" then "\tfile:line +0x..";
		// only the unindented function lines are stable.
		if line == "" || strings.HasPrefix(line, "\t") || strings.HasPrefix(line, "goroutine ") {
			continue
		}
		// Strip the argument/offset tail so values don't perturb it.
		if i := strings.IndexByte(line, '('); i > 0 {
			line = line[:i]
		}
		// The recovery plumbing itself is on every stack; skip it.
		if strings.HasSuffix(line, "xqerr.New") ||
			strings.HasSuffix(line, "xqerr.RecoverInto") ||
			strings.HasSuffix(line, "xqerr.fingerprint") ||
			strings.Contains(line, "runtime/debug.Stack") ||
			strings.Contains(line, "runtime.gopanic") {
			continue
		}
		h.Write([]byte(line))
		h.Write([]byte{0})
		frames++
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
