package xqerr

import (
	"errors"
	"fmt"
	"testing"
)

func TestRecoverIntoCapturesPanic(t *testing.T) {
	before := Recovered()
	boom := func() (err error) {
		defer RecoverInto(&err, "test.boom")
		panic("kaboom")
	}
	err := boom()
	if err == nil {
		t.Fatal("panic not recovered into error")
	}
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("recovered error does not match ErrInternal: %v", err)
	}
	var ie *Internal
	if !errors.As(err, &ie) {
		t.Fatalf("recovered error is not *Internal: %T", err)
	}
	if ie.Boundary != "test.boom" {
		t.Fatalf("boundary = %q", ie.Boundary)
	}
	if ie.Value != "kaboom" {
		t.Fatalf("value = %v", ie.Value)
	}
	if len(ie.Fingerprint) != 16 {
		t.Fatalf("fingerprint %q not 16 hex chars", ie.Fingerprint)
	}
	if len(ie.Stack) == 0 {
		t.Fatal("stack not captured")
	}
	if Recovered() != before+1 {
		t.Fatalf("Recovered() = %d, want %d", Recovered(), before+1)
	}
}

func TestRecoverIntoNoPanicLeavesError(t *testing.T) {
	sentinel := errors.New("normal failure")
	f := func() (err error) {
		defer RecoverInto(&err, "test.normal")
		return sentinel
	}
	if err := f(); err != sentinel {
		t.Fatalf("err = %v, want sentinel untouched", err)
	}
}

func TestFingerprintStableAcrossValues(t *testing.T) {
	// Two panics from the same call site must share a fingerprint even
	// when the panic values differ.
	site := func(v any) (err error) {
		defer RecoverInto(&err, "test.site")
		panic(v)
	}
	var fp [2]string
	for i, v := range []any{"first", fmt.Errorf("second %d", 42)} {
		var ie *Internal
		if !errors.As(site(v), &ie) {
			t.Fatal("no Internal")
		}
		fp[i] = ie.Fingerprint
	}
	if fp[0] != fp[1] {
		t.Fatalf("fingerprints differ for same site: %q vs %q", fp[0], fp[1])
	}
}

func TestFingerprintDistinguishesSites(t *testing.T) {
	a := func() (err error) {
		defer RecoverInto(&err, "a")
		panic("x")
	}
	deep := func() { panic("x") }
	b := func() (err error) {
		defer RecoverInto(&err, "b")
		deep()
		return nil
	}
	var ia, ib *Internal
	errors.As(a(), &ia)
	errors.As(b(), &ib)
	if ia == nil || ib == nil {
		t.Fatal("missing Internal")
	}
	if ia.Fingerprint == ib.Fingerprint {
		t.Fatalf("different panic stacks share fingerprint %q", ia.Fingerprint)
	}
}

func TestMisconfiguredSentinel(t *testing.T) {
	err := fmt.Errorf("funclib: streaming substring not registered: %w", ErrMisconfigured)
	if !errors.Is(err, ErrMisconfigured) {
		t.Fatal("wrapped ErrMisconfigured not matched")
	}
}
