// Package analysis is the compile-time static analyzer for the extended
// XQuery dialect: the stage between parser and runtime that the rest of
// the pipeline was missing. It runs over the AST after parse and before
// a program is admitted to the engine's program cache, and reports
// diagnostics in four passes:
//
//  1. semantic checks — unbound variables, unknown functions and arity
//     mismatches against the funclib signature table, duplicate FLWOR
//     bindings, unused variables, dead if-branches;
//  2. update-facility placement — updating expressions in positions the
//     Update Facility forbids are rejected statically instead of
//     failing mid-PUL at runtime;
//  3. browser-policy lint — fn:doc/fn:put under the browser profile,
//     and window-tree writes that can only fail with
//     ErrReadOnlyWindowProperty / ErrWindowUpdateUnsupported;
//  4. cost annotation — constant folding plus a saturating
//     per-expression step estimate comparable to the runtime's
//     MaxSteps budget.
//
// Every diagnostic carries a 1-based source position, a severity and a
// stable XQ0001-style code (see diag.go for the registry).
package analysis

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/funclib"
	"repro/internal/xquery/parser"
	"repro/internal/xquery/plan"
	"repro/internal/xquery/runtime"
)

// Config parameterises one analysis.
type Config struct {
	// Registry supplies the callable built-in signatures. Nil uses the
	// plain funclib table (no browser: functions).
	Registry *runtime.Registry
	// BrowserProfile enables the browser-policy pass (pass 3): fn:doc
	// and fn:put become errors, matching WithBrowserProfile engines.
	BrowserProfile bool
	// MaxSteps, when positive, adds an XQ0301 warning if the estimated
	// step count exceeds it (the same unit RunConfig.MaxSteps uses).
	MaxSteps int64
}

// Result is the outcome of one analysis.
type Result struct {
	// Diagnostics is sorted by position, then code.
	Diagnostics []Diagnostic
	// EstimatedSteps is the saturating static step estimate for the
	// module body plus global initialisers, in the same unit as the
	// runtime budget (runtime.ErrBudgetExceeded fires on MaxSteps of
	// these).
	EstimatedSteps int64
	// UpdateGroups is the update-independence analysis' group count:
	// the largest number of provably independent update groups any one
	// snapshot's straight-line updating sequence splits into (0 when no
	// sequence was summarisable, 1 when no independence was provable).
	// It feeds the cost picture next to EstimatedSteps: the runtime's
	// parallel PUL apply overlaps per-primitive stalls across this many
	// groups (see internal/xquery/update's partitioner).
	UpdateGroups int
}

// HasErrors reports whether any diagnostic is error-severity.
func (r *Result) HasErrors() bool {
	for _, d := range r.Diagnostics {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Errors returns only the error-severity diagnostics.
func (r *Result) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == SevError {
			out = append(out, d)
		}
	}
	return out
}

// BudgetDiagnostic builds the XQ0301 warning for an estimate that
// exceeds a budget, or ok=false when it fits. It is exposed separately
// from Analyze because the budget varies per run while the estimate is
// a property of the program: the cache stores the estimate once and
// derives this diagnostic per request.
func BudgetDiagnostic(estimated, maxSteps int64) (Diagnostic, bool) {
	if maxSteps <= 0 || estimated <= maxSteps {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Code:     CodeCostBudget,
		Severity: SevWarning,
		Line:     1,
		Col:      1,
		Msg: fmt.Sprintf("estimated cost %d steps exceeds the budget of %d steps",
			estimated, maxSteps),
	}, true
}

// defaultRegistry is the shared funclib-only signature source for nil
// Config.Registry. Built lazily once; read-only afterwards.
var defaultRegistry *runtime.Registry

func defaultReg() *runtime.Registry {
	if defaultRegistry == nil {
		r := runtime.NewRegistry()
		// Analysis only reads signatures; a stream-attachment failure
		// does not change them, so the error is ignorable here.
		_ = funclib.Register(r)
		defaultRegistry = r
	}
	return defaultRegistry
}

// Analyze runs all passes over a parsed module and returns the
// diagnostics plus the cost estimate. Its only mutation of the module
// is the Once-guarded path-planning pass (plan.Annotate via
// Module.EnsurePlanned) — the same pass runtime.Compile applies — so
// the cost estimator sees the access methods the evaluator will use,
// and one parsed AST may still be analyzed and evaluated concurrently.
func Analyze(m *ast.Module, cfg Config) *Result {
	m.EnsurePlanned(func() { plan.Annotate(m) })
	reg := cfg.Registry
	if reg == nil {
		reg = defaultReg()
	}
	c := &checker{
		reg:     reg,
		browser: cfg.BrowserProfile,
		funcs:   map[string][]*ast.FuncDecl{},
		imports: map[string]bool{},
		estMemo: map[*ast.FuncDecl]int64{},
		estBusy: map[*ast.FuncDecl]bool{},
	}
	for _, imp := range m.Prolog.Imports {
		c.imports[imp.URI] = true
	}
	for i := range m.Prolog.Functions {
		f := &m.Prolog.Functions[i]
		c.funcs[fnKey(f.Name)] = append(c.funcs[fnKey(f.Name)], f)
	}

	// Globals: initialisers see earlier globals only (the runtime
	// initialises them in order); function bodies see all of them.
	globals := &scope{}
	var est int64
	for i := range m.Prolog.Vars {
		v := &m.Prolog.Vars[i]
		if v.Init != nil {
			c.walk(v.Init, globals, updExpr)
			est = satAdd(est, c.estimate(v.Init))
		}
		b := globals.declare(v.Name, v.At, kindGlobal)
		if v.External || m.IsLibrary {
			// External globals are bound by the host; library globals
			// may be read by importers. Neither should warn as unused.
			b.used = true
		}
	}

	for _, fd := range c.funcs {
		for _, f := range fd {
			if f.Body == nil {
				continue
			}
			fs := &scope{parent: globals}
			for _, p := range f.Params {
				// Parameters are part of the declared interface
				// (listeners receive the event even when they ignore
				// it), so they never warn as unused.
				fs.declare(p.Name, f.At, kindParam).used = true
			}
			upd := updFunc
			if f.Updating || f.Sequential {
				upd = updAllowed
			}
			c.walk(f.Body, fs, upd)
			c.reportUnused(fs)
			if f.Updating || f.Sequential {
				c.checkUpdateSnapshots(f.Body)
			}
		}
	}

	if m.Body != nil {
		body := &scope{parent: globals}
		c.walk(m.Body, body, updAllowed)
		c.reportUnused(body)
		est = satAdd(est, c.estimate(m.Body))
		c.checkUpdateSnapshots(m.Body)
	}
	c.reportUnused(globals)

	if d, ok := BudgetDiagnostic(est, cfg.MaxSteps); ok {
		c.diags = append(c.diags, d)
	}
	sortDiags(c.diags)
	return &Result{Diagnostics: c.diags, EstimatedSteps: est, UpdateGroups: c.updateGroups}
}

// checker carries the state shared by the passes.
type checker struct {
	reg     *runtime.Registry
	browser bool
	diags   []Diagnostic
	funcs   map[string][]*ast.FuncDecl
	imports map[string]bool

	estMemo map[*ast.FuncDecl]int64
	estBusy map[*ast.FuncDecl]bool

	// updateGroups is the largest independent-group count any snapshot's
	// effect analysis proved (see effects.go / Result.UpdateGroups).
	updateGroups int
}

func (c *checker) report(code string, sev Severity, at ast.Pos, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Code:     code,
		Severity: sev,
		Line:     at.Line,
		Col:      at.Col,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// --- scopes ---------------------------------------------------------------

type bindKind int

const (
	kindGlobal bindKind = iota
	kindParam
	kindFor
	kindLet
	kindPosVar
	kindCase
	kindCopy
	kindBlockDecl
)

type binding struct {
	name dom.QName
	at   ast.Pos
	kind bindKind
	used bool
}

// scope is one lexical binding frame. Bindings are ordered so shadowing
// works (lookup scans back-to-front) and unused-variable reports come
// out in declaration order.
type scope struct {
	parent *scope
	vars   []*binding
}

func (s *scope) declare(name dom.QName, at ast.Pos, kind bindKind) *binding {
	b := &binding{name: name, at: at, kind: kind}
	s.vars = append(s.vars, b)
	return b
}

func (s *scope) lookup(name dom.QName) *binding {
	for sc := s; sc != nil; sc = sc.parent {
		for i := len(sc.vars) - 1; i >= 0; i-- {
			if sc.vars[i].name == name {
				return sc.vars[i]
			}
		}
	}
	return nil
}

// reportUnused warns for bindings of s that were never referenced.
// Parameters and external globals are pre-marked used at declaration.
func (c *checker) reportUnused(s *scope) {
	for _, b := range s.vars {
		if !b.used {
			c.report(CodeUnusedVar, SevWarning, b.at, "unused variable $%s", varDisplay(b.name))
		}
	}
}

// --- name display ---------------------------------------------------------

func varDisplay(q dom.QName) string {
	if q.Prefix != "" {
		return q.Prefix + ":" + q.Local
	}
	return q.Local
}

func fnDisplay(q dom.QName) string {
	if q.Prefix != "" {
		return q.Prefix + ":" + q.Local
	}
	if q.Space == parser.FnNamespace || q.Space == "" {
		return q.Local
	}
	return "Q{" + q.Space + "}" + q.Local
}

func fnKey(q dom.QName) string { return q.Space + "#" + q.Local }
