package analysis

import (
	"repro/internal/xquery/ast"
	"repro/internal/xquery/parser"
)

// Pass 3: browser-policy lint. Two halves: calls the browser profile
// rejects outright (fn:doc, fn:put — paper §4.2.1), and window-tree
// writes that the host will refuse at apply time. The window tree that
// browser:top()/browser:self() materialise is writable only at three
// properties (status, name, location/href); everything else returns
// ErrReadOnlyWindowProperty, and any update primitive other than
// "replace value of node" returns ErrWindowUpdateUnsupported. Both are
// knowable statically when the update target is a literal path rooted
// at a browser: window function.

// windowRootFuncs are the browser: functions whose result is (or
// contains) the writable window tree.
var windowRootFuncs = map[string]bool{
	"top": true, "self": true, "windowOpen": true,
}

// writableWindowProps are the window-tree leaves ApplyUpdate accepts.
var writableWindowProps = map[string]bool{
	"status": true, "name": true, "href": true,
}

// readOnlyWindowProps are the remaining materialised window-tree names:
// replacing their value is statically known to fail.
var readOnlyWindowProps = map[string]bool{
	"window": true, "location": true, "protocol": true, "host": true,
	"hostname": true, "port": true, "pathname": true, "search": true,
	"hash": true, "lastModified": true, "closed": true,
}

// checkBrowserCall flags the calls the browser profile blocks.
func (c *checker) checkBrowserCall(fc ast.FuncCall) {
	if fc.Name.Space != parser.FnNamespace {
		return
	}
	switch fc.Name.Local {
	case "doc":
		c.report(CodeDocBlocked, SevError, fc.At,
			"fn:doc is blocked in the browser profile (paper §4.2.1); use browser:document or the page's own tree")
	case "put":
		c.report(CodePutBlocked, SevError, fc.At,
			"fn:put is blocked in the browser profile (paper §4.2.1)")
	}
}

// checkWindowWrite lints an update target against the window tree.
// replaceValue says the update is "replace value of node" (the only
// kind ApplyUpdate supports).
func (c *checker) checkWindowWrite(target ast.Expr, replaceValue bool, at ast.Pos) {
	rooted, last := windowTargetPath(target)
	if !rooted {
		return
	}
	if !replaceValue {
		c.report(CodeWindowUpdateKind, SevWarning, at,
			"only \"replace value of node\" is supported on window properties; this update always fails with ErrWindowUpdateUnsupported")
		return
	}
	switch {
	case writableWindowProps[last]:
	case readOnlyWindowProps[last]:
		c.report(CodeReadOnlyWindow, SevWarning, at,
			"window property %q is read-only; this write always fails with ErrReadOnlyWindowProperty", last)
	case last == "":
		c.report(CodeReadOnlyWindow, SevWarning, at,
			"replacing the window node itself always fails; only status, name and location/href are writable")
	}
}

// windowTargetPath reports whether e is a path rooted at a browser:
// window function, and the local name of its final name-test step (""
// when the target is the root call itself or the last step is not a
// name test).
func windowTargetPath(e ast.Expr) (rooted bool, last string) {
	switch x := e.(type) {
	case ast.FuncCall:
		return isWindowRoot(x), ""
	case ast.Path:
		if len(x.Steps) == 0 || x.Steps[0].Primary == nil {
			return false, ""
		}
		fc, ok := x.Steps[0].Primary.(ast.FuncCall)
		if !ok || !isWindowRoot(fc) {
			return false, ""
		}
		for i := len(x.Steps) - 1; i >= 1; i-- {
			t := x.Steps[i].Test
			if t.IsName {
				return true, t.Name.Local
			}
			if t.AnyNode || t.Kind != 0 {
				return true, ""
			}
		}
		return true, ""
	}
	return false, ""
}

func isWindowRoot(fc ast.FuncCall) bool {
	return fc.Name.Space == parser.BrowserNamespace && windowRootFuncs[fc.Name.Local]
}
