package analysis

import "testing"

// TestEstimateFTContainsCosts pins the full-text cost model: an
// ftcontains the planner can turn into an index probe is charged at
// the post-probe candidate cardinality, while an unindexed ftcontains
// (dynamic search context, ftnot at the top, non-context scope) is
// charged a full tokenize-and-scan over the axis expansion.
func TestEstimateFTContainsCosts(t *testing.T) {
	probed := estimateOf(t, `//article[. ftcontains "marlin"]`)
	scanned := estimateOf(t, `//article[. ftcontains ftnot "marlin"]`)
	if probed >= scanned {
		t.Errorf("probed ft estimate %d not below scan estimate %d", probed, scanned)
	}
	if probed > 100 {
		t.Errorf("probed ft estimate %d: ftcontains charged at scan cardinality", probed)
	}

	// Sandwiching in a FLWOR multiplies the per-item cost — the shape
	// that overran budgets when every ftcontains was costed as a scan.
	probedLoop := estimateOf(t, `for $q in 1 to 50 return //article[. ftcontains "marlin"]`)
	scanLoop := estimateOf(t, `for $q in 1 to 50 return //article[. ftcontains ftnot "marlin"]`)
	if probedLoop >= scanLoop {
		t.Errorf("looped probe estimate %d not below looped scan estimate %d", probedLoop, scanLoop)
	}
}

// TestBudgetDiagnosticFTRegression: the XQ0301 budget warning must
// stay quiet for an indexed ftcontains page and keep firing for the
// unindexable form of the same query — the satellite regression for
// the cost pass.
func TestBudgetDiagnosticFTRegression(t *testing.T) {
	probed := estimateOf(t, `//article[. ftcontains "marlin" ftand "reef"]`)
	if _, warn := BudgetDiagnostic(probed, 200); warn {
		t.Errorf("XQ0301 fired for planned ftcontains estimate %d under budget 200", probed)
	}
	scanned := estimateOf(t, `//article[p ftcontains "marlin"]`)
	if _, warn := BudgetDiagnostic(scanned, 200); !warn {
		t.Errorf("XQ0301 silent for unindexed ftcontains estimate %d under budget 200", scanned)
	}
}
