package analysis

import (
	"testing"

	"repro/internal/xquery/parser"
)

func estimateOf(t *testing.T, src string) int64 {
	t.Helper()
	m, err := parser.ParseModule(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Analyze(m, Config{}).EstimatedSteps
}

// TestEstimateChargesProbedPredicatesPostProbe: a descendant step the
// planner turned into an id probe answers with a handful of nodes, so
// the [@id = ...] predicate (and anything after it) must be charged at
// that post-probe cardinality — not at the scan expansion, which made
// XQ0301 fire spuriously on pages whose queries the index serves.
func TestEstimateChargesProbedPredicatesPostProbe(t *testing.T) {
	probed := estimateOf(t, `//section[@id = "s1"][@class = "x"]`)
	scanned := estimateOf(t, `//section[@class = "x"]`)
	if probed >= scanned {
		t.Errorf("probed estimate %d not below scan estimate %d", probed, scanned)
	}
	// The probe visits the frontier once and re-applies its predicates
	// to a short candidate list; anything in the hundreds means the
	// predicates were charged at scan cardinality again.
	if probed > 100 {
		t.Errorf("probed estimate %d: predicates charged pre-probe", probed)
	}

	// And the budget diagnostic agrees: a budget the probe fits must
	// not warn, while the scan's estimate may exceed it.
	if _, warn := BudgetDiagnostic(probed, 100); warn {
		t.Errorf("XQ0301 fired for probed estimate %d under budget 100", probed)
	}
}
