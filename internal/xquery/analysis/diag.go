package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Severity classifies a diagnostic. Errors describe programs that are
// statically known to fail (or be rejected) at runtime and block
// admission to the program cache under Strict mode; warnings describe
// suspicious-but-runnable constructs; notes are purely advisory
// findings (they never fail a lint run, not even under -werror).
type Severity int

// The severities. SevNote is ordered after SevError so the existing
// warning/error values (and their JSON forms) stay stable.
const (
	SevWarning Severity = iota
	SevError
	SevNote
)

// String returns "warning", "error" or "note".
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevNote:
		return "note"
	}
	return "warning"
}

// MarshalJSON encodes the severity as its string form, which is what
// xqlint's JSON output and any machine consumer wants to read.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the string form produced by MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	switch str {
	case "error":
		*s = SevError
	case "note":
		*s = SevNote
	default:
		*s = SevWarning
	}
	return nil
}

// Diagnostic codes. The numbering is stable across releases: semantic
// checks are XQ00xx, update-placement checks XQ01xx, browser-policy
// checks XQ02xx and cost/budget checks XQ03xx. XQ0000 is reserved for
// the parse error itself (xqlint reports syntax errors under it so one
// stream carries everything).
const (
	CodeParse            = "XQ0000" // syntax error (CLI-level)
	CodeUnboundVar       = "XQ0001" // reference to an unbound variable
	CodeUnknownFunc      = "XQ0002" // call to an unknown function
	CodeArity            = "XQ0003" // known function, wrong argument count
	CodeDuplicateLet     = "XQ0004" // duplicate binding in one FLWOR
	CodeUnusedVar        = "XQ0005" // variable bound but never referenced
	CodeConstCond        = "XQ0006" // if with a constant condition
	CodeAssignUndeclared = "XQ0007" // assignment to an undeclared variable

	CodeMisplacedUpdate = "XQ0101" // updating expression in a non-updating context
	CodeUpdateInPure    = "XQ0102" // updating expression in a function not declared updating

	CodeDocBlocked       = "XQ0201" // fn:doc under the browser profile
	CodePutBlocked       = "XQ0202" // fn:put under the browser profile
	CodeReadOnlyWindow   = "XQ0203" // write to a read-only window property
	CodeWindowUpdateKind = "XQ0204" // non-replace-value update on the window tree

	CodeCostBudget = "XQ0301" // estimated steps exceed the configured budget

	// Update-independence checks (XQ04xx): FLUX-style effect summaries
	// over straight-line updating sequences with statically stable
	// target paths (see effects.go).
	CodeDeadUpdate     = "XQ0401" // update confined to a subtree detached in the same snapshot
	CodeDeadDelete     = "XQ0402" // delete of a target already replaced/deleted in the same snapshot
	CodeUpdateConflict = "XQ0403" // guaranteed-conflicting updates on one target path
	CodeUpdateGroups   = "XQ0404" // advisory: number of independent update groups
)

// Diagnostic is one analyzer finding, tied to a source position.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	// Line and Col are 1-based; 0 means the position is unknown.
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

// String renders the conventional compiler format:
// "3:7: error XQ0001: unbound variable $x".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%d:%d: %s %s: %s", d.Line, d.Col, d.Severity, d.Code, d.Msg)
}

// sortDiags orders diagnostics by position, then code, then message,
// so output is deterministic regardless of pass order.
func sortDiags(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
}
