// effects.go is the static half of the FLUX-style update-independence
// analysis (Cheney; the dynamic half is the PUL partitioner in
// internal/xquery/update): it computes, per updating expression, a
// conservative target-path summary, and over each snapshot's
// straight-line updating sequence reports dead updates (XQ0401),
// no-op deletes (XQ0402), guaranteed conflicts (XQ0403) and the number
// of provably independent update groups (XQ0404, advisory).
//
// The pass is deliberately narrow so every finding is sound:
//
//   - Only straight-line comma-sequences are analyzed, snapshot by
//     snapshot. Block statements re-evaluate their paths after each
//     per-statement apply, so effects never cross statement boundaries.
//   - Only absolute child-axis name-test paths with no predicates and
//     no wildcards are summarised ("stable paths"): for those, textual
//     equality implies identical target node sets within one snapshot.
//   - The independence note (XQ0404) is only emitted when every item of
//     the sequence is a summarisable update — one unknown expression
//     could overlap any group.
//
// The region of an effect mirrors the dynamic partitioner exactly: the
// target path for self-contained kinds (insert into, replace value,
// rename), the target's parent path for sibling-list kinds (insert
// before/after, delete, replace node).
package analysis

import (
	"sort"
	"strings"

	"repro/internal/xquery/ast"
)

// updEffect is one updating expression's conservative summary.
type updEffect struct {
	kind   string // display kind: "insert", "delete", "replace node", ...
	killer bool   // delete / replace node: detaches its target's subtree
	target string // canonical stable target path
	region string // canonical region path (parent for sibling-list kinds)
	at     ast.Pos
	dead   bool
}

// checkUpdateSnapshots runs the effect analysis over an evaluation
// unit: each statement of a Block is its own snapshot (scripting
// semantics apply the pending list after every statement), anything
// else is one snapshot.
func (c *checker) checkUpdateSnapshots(e ast.Expr) {
	if b, ok := e.(ast.Block); ok {
		for _, st := range b.Stmts {
			c.checkUpdateSequence(st)
		}
		return
	}
	c.checkUpdateSequence(e)
}

// checkUpdateSequence summarises one snapshot's straight-line updating
// sequence and reports the XQ04xx findings.
func (c *checker) checkUpdateSequence(e ast.Expr) {
	var effects []updEffect
	allSummarised := true
	for _, item := range flattenSeq(e) {
		eff, isUpdate, ok := summariseUpdate(item)
		if !isUpdate || !ok {
			allSummarised = false
			continue
		}
		effects = append(effects, eff)
	}
	if len(effects) < 2 {
		return
	}

	// XQ0402 — no-op deletes, mirroring the partitioner's unconditional
	// rules: a delete of a replace-node target finds it already
	// detached in phase 4; a duplicate delete finds it detached by the
	// first.
	replacedAt := map[string]bool{}
	for _, eff := range effects {
		if eff.kind == "replace node" {
			replacedAt[eff.target] = true
		}
	}
	deletedAt := map[string]bool{}
	for i := range effects {
		eff := &effects[i]
		if eff.kind != "delete" {
			continue
		}
		switch {
		case replacedAt[eff.target]:
			eff.dead = true
			c.report(CodeDeadDelete, SevWarning, eff.at,
				"dead delete: %s is already replaced in this snapshot", eff.target)
		case deletedAt[eff.target]:
			eff.dead = true
			c.report(CodeDeadDelete, SevWarning, eff.at,
				"dead delete: %s is already deleted in this snapshot", eff.target)
		default:
			deletedAt[eff.target] = true
		}
	}

	// XQ0401 — dead updates, mirroring the gated rule: a non-killer
	// effect whose whole region lies inside a subtree some surviving
	// killer detaches only ever changes nodes the snapshot throws away.
	for i := range effects {
		eff := &effects[i]
		if eff.killer || eff.dead {
			continue
		}
		for _, k := range effects {
			if k.killer && !k.dead && pathContains(k.target, eff.region) {
				eff.dead = true
				c.report(CodeDeadUpdate, SevWarning, eff.at,
					"dead update: %s targets a subtree detached by %s %s in the same snapshot",
					eff.kind, k.kind, k.target)
				break
			}
		}
	}

	// XQ0403 — guaranteed conflicts: the PUL compatibility rules refuse
	// a second rename, replace node or replace value of one target, so
	// two of a kind on one stable path fail every run that reaches them.
	seen := map[string]bool{}
	for _, eff := range effects {
		switch eff.kind {
		case "rename", "replace node", "replace value":
			key := eff.kind + "|" + eff.target
			if seen[key] {
				c.report(CodeUpdateConflict, SevError, eff.at,
					"conflicting updates: two %s operations target %s", eff.kind, eff.target)
			}
			seen[key] = true
		}
	}

	// XQ0404 — independence advisory, only when the whole sequence was
	// summarised (an unknown expression could overlap any group).
	if !allSummarised {
		return
	}
	groups := countRegionGroups(effects)
	if groups > c.updateGroups {
		c.updateGroups = groups
	}
	if groups >= 2 {
		c.report(CodeUpdateGroups, SevNote, effects[0].at,
			"update independence: %d independent update groups", groups)
	}
}

// countRegionGroups merges the surviving effects' regions the same way
// the dynamic partitioner merges subtree spans: sorted, a region that
// is a descendant-or-self of the running group's root joins it; a
// disjoint region starts a new group. Absolute stable paths sort so
// that a subtree's descendants are contiguous right after it ('/'
// orders before every name character), which is exactly the laminar
// property the span merge relies on.
func countRegionGroups(effects []updEffect) int {
	var regions []string
	for _, eff := range effects {
		if !eff.dead {
			regions = append(regions, eff.region)
		}
	}
	sort.Strings(regions)
	groups, cur := 0, ""
	for _, r := range regions {
		if groups > 0 && pathContains(cur, r) {
			continue
		}
		groups++
		cur = r
	}
	return groups
}

// flattenSeq returns the straight-line items of a comma sequence,
// unwrapping nested sequences and ordered{} wrappers.
func flattenSeq(e ast.Expr) []ast.Expr {
	switch x := e.(type) {
	case ast.SeqExpr:
		var out []ast.Expr
		for _, it := range x.Items {
			out = append(out, flattenSeq(it)...)
		}
		return out
	case ast.Ordered:
		return flattenSeq(x.X)
	}
	return []ast.Expr{e}
}

// summariseUpdate builds the effect summary for one sequence item.
// isUpdate reports whether the item is one of the four updating forms
// at all; ok additionally requires a stable target path.
func summariseUpdate(e ast.Expr) (eff updEffect, isUpdate, ok bool) {
	var target ast.Expr
	switch x := e.(type) {
	case ast.Insert:
		target = x.Target
		eff.at = x.At
		switch x.Pos {
		case ast.Before, ast.After:
			eff.kind = "insert"
			// Sibling-list insert: writes land in the target's parent.
			path, pok := stablePath(target)
			if !pok {
				return eff, true, false
			}
			eff.target, eff.region = path, parentPath(path)
			return eff, true, true
		default:
			eff.kind = "insert"
		}
	case ast.Delete:
		target = x.Target
		eff.at = x.At
		eff.kind = "delete"
		eff.killer = true
	case ast.Replace:
		target = x.Target
		eff.at = x.At
		if x.ValueOf {
			eff.kind = "replace value"
		} else {
			eff.kind = "replace node"
			eff.killer = true
		}
	case ast.Rename:
		target = x.Target
		eff.at = x.At
		eff.kind = "rename"
	default:
		return eff, false, false
	}
	path, pok := stablePath(target)
	if !pok {
		return eff, true, false
	}
	eff.target = path
	if eff.killer {
		eff.region = parentPath(path)
	} else {
		eff.region = path
	}
	return eff, true, true
}

// stablePath canonicalises a target expression when it is an absolute
// child-axis name-test path with no predicates, filters or wildcards —
// the shape for which textual equality implies identical target nodes
// within one snapshot.
func stablePath(e ast.Expr) (string, bool) {
	p, ok := e.(ast.Path)
	if !ok || !p.Absolute || len(p.Steps) == 0 {
		return "", false
	}
	var b strings.Builder
	for _, s := range p.Steps {
		if s.Primary != nil || len(s.Preds) > 0 || s.Axis != ast.AxisChild {
			return "", false
		}
		t := s.Test
		if !t.IsName || t.AnySpace || t.Name.Local == "*" {
			return "", false
		}
		b.WriteByte('/')
		if t.Name.Space != "" {
			b.WriteString(t.Name.Space)
			b.WriteByte('#')
		}
		b.WriteString(t.Name.Local)
	}
	return b.String(), true
}

// parentPath strips the last segment; the document root ("/") contains
// every absolute path.
func parentPath(path string) string {
	if i := strings.LastIndexByte(path, '/'); i > 0 {
		return path[:i]
	}
	return "/"
}

// pathContains reports whether ancestor is an ancestor-or-self of path
// in the stable-path encoding.
func pathContains(ancestor, path string) bool {
	if ancestor == "/" {
		return true
	}
	return path == ancestor || strings.HasPrefix(path, ancestor+"/")
}
