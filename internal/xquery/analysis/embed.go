package analysis

import (
	"strings"
)

// Embedded-script extraction: XQIB pages carry their programs in
// <script type="text/xquery"> (or text/xqueryp) elements, so the linter
// must find those blocks inside arbitrary page text and map diagnostic
// positions back to page coordinates. The scan is textual on purpose —
// lint targets are often not well-formed XML (templates, .go example
// sources embedding pages as string literals), and a full markup parse
// would lose the byte positions we need anyway.

// EmbeddedScript is one inline XQuery program found in a page.
type EmbeddedScript struct {
	// Source is the script text between the tags, with a leading
	// newline trimmed (positions are adjusted accordingly).
	Source string
	// Type is the script MIME type as written ("text/xquery" or
	// "text/xqueryp").
	Type string
	// Line and Col are the 1-based page position where Source begins.
	Line, Col int
}

// scriptTypes mirrors core.ScriptTypes (kept literal here so the
// analyzer does not depend on the browser host packages).
var scriptTypes = map[string]bool{
	"text/xquery":  true,
	"text/xqueryp": true,
}

// ExtractScripts scans page text for XQuery script blocks. Blocks with
// other type attributes (e.g. text/javascript) are skipped; an
// unterminated block extends to the end of the input.
func ExtractScripts(page string) []EmbeddedScript {
	var out []EmbeddedScript
	lower := strings.ToLower(page)
	pos := 0
	for {
		i := strings.Index(lower[pos:], "<script")
		if i < 0 {
			return out
		}
		tagStart := pos + i
		gt := strings.IndexByte(page[tagStart:], '>')
		if gt < 0 {
			return out
		}
		openEnd := tagStart + gt + 1
		attrs := page[tagStart+len("<script") : openEnd-1]
		end := strings.Index(lower[openEnd:], "</script")
		var src string
		if end < 0 {
			src = page[openEnd:]
			pos = len(page)
		} else {
			src = page[openEnd : openEnd+end]
			pos = openEnd + end + len("</script")
		}
		typ, ok := scriptType(attrs)
		if !ok {
			continue
		}
		line, col := lineColAt(page, openEnd)
		// A script conventionally starts on the line after the open
		// tag; trimming the first newline keeps positions natural.
		if len(src) > 0 && src[0] == '\n' {
			src = src[1:]
			line, col = line+1, 1
		} else if strings.HasPrefix(src, "\r\n") {
			src = src[2:]
			line, col = line+1, 1
		}
		out = append(out, EmbeddedScript{Source: src, Type: typ, Line: line, Col: col})
	}
}

// scriptType pulls the type attribute out of a script tag's attribute
// text and reports whether it is an XQuery type.
func scriptType(attrs string) (string, bool) {
	lower := strings.ToLower(attrs)
	i := strings.Index(lower, "type")
	if i < 0 {
		return "", false
	}
	rest := attrs[i+len("type"):]
	rest = strings.TrimLeft(rest, " \t\r\n")
	if !strings.HasPrefix(rest, "=") {
		return "", false
	}
	rest = strings.TrimLeft(rest[1:], " \t\r\n")
	if rest == "" {
		return "", false
	}
	var val string
	if rest[0] == '"' || rest[0] == '\'' {
		q := rest[0]
		end := strings.IndexByte(rest[1:], q)
		if end < 0 {
			return "", false
		}
		val = rest[1 : 1+end]
	} else {
		end := strings.IndexAny(rest, " \t\r\n/>")
		if end < 0 {
			end = len(rest)
		}
		val = rest[:end]
	}
	val = strings.ToLower(strings.TrimSpace(val))
	return val, scriptTypes[val]
}

// lineColAt converts a byte offset into 1-based line:col.
func lineColAt(s string, off int) (int, int) {
	if off > len(s) {
		off = len(s)
	}
	line := 1 + strings.Count(s[:off], "\n")
	col := off - strings.LastIndexByte(s[:off], '\n')
	return line, col
}

// AdjustPos maps a diagnostic position inside an embedded script back
// to page coordinates given the script's start position.
func AdjustPos(d Diagnostic, scriptLine, scriptCol int) Diagnostic {
	if d.Line <= 0 {
		return d
	}
	if d.Line == 1 {
		d.Col += scriptCol - 1
	}
	d.Line += scriptLine - 1
	return d
}
