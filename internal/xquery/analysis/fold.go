package analysis

import (
	"repro/internal/xquery/ast"
	"repro/internal/xquery/parser"
	"repro/internal/xquery/plan"
)

// Pass 4: constant folding and cost annotation. Folding is deliberately
// small — enough to catch `if (true())` / `if (1 = 2)` dead branches
// and to size `1 to N` ranges exactly; everything else stays unknown.
// The step estimate is saturating and uses the same unit as the runtime
// budget (one step per expression evaluation or streamed item), so a
// program estimated at E steps run under MaxSteps < E is likely to trip
// runtime.ErrBudgetExceeded.

// Cardinality and iteration guesses for statically unknown shapes.
const (
	unknownCard  = 8    // items assumed in an unknown sequence
	descScanCard = 64   // subtree nodes assumed for an unindexed descendant scan
	whileIters   = 64   // iterations assumed for a while loop
	recursionEst = 1024 // cost assumed for a recursive user function
	cardCap      = 1 << 20
	costCap      = int64(1) << 40
)

// constKind tags the folded value.
type constKind int

const (
	constInt constKind = iota
	constFloat
	constString
	constBool
	constEmpty
)

type constVal struct {
	kind constKind
	i    int64
	f    float64
	s    string
	b    bool
}

// ebv is the effective boolean value of a folded constant.
func (v constVal) ebv() bool {
	switch v.kind {
	case constInt:
		return v.i != 0
	case constFloat:
		return v.f != 0 && v.f == v.f // non-zero, non-NaN
	case constString:
		return v.s != ""
	case constBool:
		return v.b
	default:
		return false
	}
}

// constBool folds e and takes its effective boolean value.
func (c *checker) constBool(e ast.Expr) (bool, bool) {
	v, ok := c.fold(e)
	if !ok {
		return false, false
	}
	return v.ebv(), true
}

// fold evaluates e if it is a constant expression.
func (c *checker) fold(e ast.Expr) (constVal, bool) {
	switch x := e.(type) {
	case ast.IntLit:
		return constVal{kind: constInt, i: x.Val}, true
	case ast.DoubleLit:
		return constVal{kind: constFloat, f: x.Val}, true
	case ast.StringLit:
		return constVal{kind: constString, s: x.Val}, true
	case ast.SeqExpr:
		if len(x.Items) == 0 {
			return constVal{kind: constEmpty}, true
		}
	case ast.Unary:
		v, ok := c.fold(x.X)
		if !ok {
			return constVal{}, false
		}
		if x.Neg {
			switch v.kind {
			case constInt:
				v.i = -v.i
			case constFloat:
				v.f = -v.f
			default:
				return constVal{}, false
			}
		}
		return v, true
	case ast.FuncCall:
		if x.Name.Space != parser.FnNamespace {
			return constVal{}, false
		}
		switch {
		case x.Name.Local == "true" && len(x.Args) == 0:
			return constVal{kind: constBool, b: true}, true
		case x.Name.Local == "false" && len(x.Args) == 0:
			return constVal{kind: constBool, b: false}, true
		case x.Name.Local == "not" && len(x.Args) == 1:
			if b, ok := c.constBool(x.Args[0]); ok {
				return constVal{kind: constBool, b: !b}, true
			}
		}
	case ast.Binary:
		return c.foldBinary(x)
	case ast.Compare:
		return c.foldCompare(x)
	}
	return constVal{}, false
}

func (c *checker) foldBinary(x ast.Binary) (constVal, bool) {
	switch x.Op {
	case "and", "or":
		lb, lok := c.constBool(x.L)
		rb, rok := c.constBool(x.R)
		// Short-circuit folds: a constant dominant operand decides the
		// result regardless of the other side.
		if x.Op == "and" {
			if lok && !lb || rok && !rb {
				return constVal{kind: constBool, b: false}, true
			}
			if lok && rok {
				return constVal{kind: constBool, b: lb && rb}, true
			}
		} else {
			if lok && lb || rok && rb {
				return constVal{kind: constBool, b: true}, true
			}
			if lok && rok {
				return constVal{kind: constBool, b: lb || rb}, true
			}
		}
		return constVal{}, false
	case "+", "-", "*", "idiv", "mod":
		l, lok := c.fold(x.L)
		r, rok := c.fold(x.R)
		if !lok || !rok || l.kind != constInt || r.kind != constInt {
			return constVal{}, false
		}
		switch x.Op {
		case "+":
			return constVal{kind: constInt, i: l.i + r.i}, true
		case "-":
			return constVal{kind: constInt, i: l.i - r.i}, true
		case "*":
			return constVal{kind: constInt, i: l.i * r.i}, true
		case "idiv":
			if r.i == 0 {
				return constVal{}, false // a runtime error, not a constant
			}
			return constVal{kind: constInt, i: l.i / r.i}, true
		default: // mod
			if r.i == 0 {
				return constVal{}, false
			}
			return constVal{kind: constInt, i: l.i % r.i}, true
		}
	}
	return constVal{}, false
}

func (c *checker) foldCompare(x ast.Compare) (constVal, bool) {
	if x.Kind == ast.NodeComp {
		return constVal{}, false
	}
	l, lok := c.fold(x.L)
	r, rok := c.fold(x.R)
	if !lok || !rok {
		return constVal{}, false
	}
	op := x.Op
	switch op { // value-comparison spellings map onto the general ones
	case "eq":
		op = "="
	case "ne":
		op = "!="
	case "lt":
		op = "<"
	case "le":
		op = "<="
	case "gt":
		op = ">"
	case "ge":
		op = ">="
	}
	var cmp int // -1, 0, 1
	switch {
	case l.kind == constInt && r.kind == constInt:
		cmp = cmpOrder(l.i < r.i, l.i == r.i)
	case l.kind == constString && r.kind == constString:
		cmp = cmpOrder(l.s < r.s, l.s == r.s)
	case (l.kind == constFloat || l.kind == constInt) && (r.kind == constFloat || r.kind == constInt):
		lf, rf := l.asFloat(), r.asFloat()
		if lf != lf || rf != rf { // NaN compares false for everything but !=
			return constVal{kind: constBool, b: op == "!="}, true
		}
		cmp = cmpOrder(lf < rf, lf == rf)
	default:
		return constVal{}, false
	}
	var b bool
	switch op {
	case "=":
		b = cmp == 0
	case "!=":
		b = cmp != 0
	case "<":
		b = cmp < 0
	case "<=":
		b = cmp <= 0
	case ">":
		b = cmp > 0
	case ">=":
		b = cmp >= 0
	default:
		return constVal{}, false
	}
	return constVal{kind: constBool, b: b}, true
}

func (v constVal) asFloat() float64 {
	if v.kind == constInt {
		return float64(v.i)
	}
	return v.f
}

func cmpOrder(less, eq bool) int {
	switch {
	case less:
		return -1
	case eq:
		return 0
	default:
		return 1
	}
}

// --- step estimation -------------------------------------------------------

func satAdd(a, b int64) int64 {
	s := a + b
	if s < a || s > costCap {
		return costCap
	}
	return s
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > costCap/b {
		return costCap
	}
	return a * b
}

// cardOf estimates the number of items e yields.
func (c *checker) cardOf(e ast.Expr) int64 {
	switch x := e.(type) {
	case ast.Range:
		l, lok := c.fold(x.L)
		r, rok := c.fold(x.R)
		if lok && rok && l.kind == constInt && r.kind == constInt {
			n := r.i - l.i + 1
			if n < 0 {
				return 0
			}
			if n > cardCap {
				return cardCap
			}
			return n
		}
		return unknownCard
	case ast.SeqExpr:
		var n int64
		for _, it := range x.Items {
			n = satAdd(n, c.cardOf(it))
			if n > cardCap {
				return cardCap
			}
		}
		return n
	case ast.IntLit, ast.DecimalLit, ast.DoubleLit, ast.StringLit,
		ast.DirElem, ast.CompConstructor, ast.ContextItem:
		return 1
	default:
		return unknownCard
	}
}

// estimate computes the saturating step estimate for e.
func (c *checker) estimate(e ast.Expr) int64 {
	switch x := e.(type) {
	case nil:
		return 0
	case ast.StringLit, ast.IntLit, ast.DecimalLit, ast.DoubleLit,
		ast.VarRef, ast.ContextItem, ast.Break, ast.Continue:
		return 1
	case ast.SeqExpr:
		t := int64(1)
		for _, it := range x.Items {
			t = satAdd(t, c.estimate(it))
		}
		return t
	case ast.Ordered:
		return c.estimate(x.X)
	case ast.FuncCall:
		t := int64(1)
		for _, a := range x.Args {
			t = satAdd(t, c.estimate(a))
		}
		return satAdd(t, c.callEstimate(x))
	case ast.If:
		t := satAdd(1, c.estimate(x.Cond))
		thenE, elseE := c.estimate(x.Then), c.estimate(x.Else)
		if elseE > thenE {
			thenE = elseE
		}
		return satAdd(t, thenE)
	case ast.FLWOR:
		t := int64(1)
		card := int64(1)
		for _, cl := range x.Clauses {
			t = satAdd(t, satMul(card, c.estimate(cl.In)))
			if cl.For {
				card = satMul(card, c.cardOf(cl.In))
				if card > cardCap {
					card = cardCap
				}
			}
		}
		inner := c.estimate(x.Where)
		for _, os := range x.OrderBy {
			inner = satAdd(inner, c.estimate(os.Key))
		}
		inner = satAdd(inner, c.estimate(x.Return))
		return satAdd(t, satMul(card, inner))
	case ast.Quantified:
		t := int64(1)
		card := int64(1)
		for _, cl := range x.Vars {
			t = satAdd(t, c.estimate(cl.In))
			card = satMul(card, c.cardOf(cl.In))
			if card > cardCap {
				card = cardCap
			}
		}
		return satAdd(t, satMul(card, c.estimate(x.Satisfies)))
	case ast.Typeswitch:
		t := satAdd(1, c.estimate(x.Operand))
		max := c.estimate(x.Default)
		for _, cs := range x.Cases {
			if b := c.estimate(cs.Body); b > max {
				max = b
			}
		}
		return satAdd(t, max)
	case ast.Binary:
		return satAdd(1, satAdd(c.estimate(x.L), c.estimate(x.R)))
	case ast.Compare:
		return satAdd(1, satAdd(c.estimate(x.L), c.estimate(x.R)))
	case ast.Unary:
		return satAdd(1, c.estimate(x.X))
	case ast.Range:
		// Materialising a range costs about its cardinality.
		return satAdd(1, c.cardOf(x))
	case ast.InstanceOf:
		return satAdd(1, c.estimate(x.X))
	case ast.TreatAs:
		return satAdd(1, c.estimate(x.X))
	case ast.CastAs:
		return satAdd(1, c.estimate(x.X))
	case ast.Path:
		t := int64(1)
		card := int64(1)
		// Cost the steps the evaluator will actually run: the `//`
		// rewrite merges descendant-or-self::node()/child::X pairs,
		// and the planner's access annotation decides whether a
		// descendant step is an index probe (O(matches), costed at
		// unknownCard like any other step) or a subtree scan
		// (O(tree), costed at the larger descScanCard) — so XQ0301
		// charges indexed descendant steps for their matches, not
		// the tree.
		for _, st := range plan.RewriteDescendantSteps(x.Steps) {
			if st.Primary != nil {
				t = satAdd(t, satMul(card, c.estimate(st.Primary)))
				card = satMul(card, c.cardOf(st.Primary))
			} else if (st.Axis == ast.AxisDescendant || st.Axis == ast.AxisDescendantOrSelf) &&
				st.Access == ast.AccessScan {
				// An unindexed descendant step walks whole subtrees.
				t = satAdd(t, satMul(card, descScanCard))
				card = satMul(card, unknownCard)
			} else {
				// An axis step visits the frontier and expands it.
				t = satAdd(t, satMul(card, unknownCard))
				card = satMul(card, unknownCard)
			}
			if card > cardCap {
				card = cardCap
			}
			for _, pr := range st.Preds {
				t = satAdd(t, satMul(card, c.estimate(pr)))
			}
		}
		return t
	case ast.DirElem:
		t := int64(1)
		for _, a := range x.Attrs {
			for _, p := range a.Pieces {
				t = satAdd(t, c.estimate(p))
			}
		}
		for _, ch := range x.Content {
			t = satAdd(t, c.estimate(ch))
		}
		return t
	case ast.CompConstructor:
		return satAdd(1, satAdd(c.estimate(x.NameExpr), c.estimate(x.Content)))
	case ast.Insert:
		return satAdd(1, satAdd(c.estimate(x.Source), c.estimate(x.Target)))
	case ast.Delete:
		return satAdd(1, c.estimate(x.Target))
	case ast.Replace:
		return satAdd(1, satAdd(c.estimate(x.Target), c.estimate(x.With)))
	case ast.Rename:
		return satAdd(1, satAdd(c.estimate(x.Target), c.estimate(x.NewName)))
	case ast.Transform:
		t := int64(1)
		for _, b := range x.Bindings {
			t = satAdd(t, c.estimate(b.In))
		}
		return satAdd(t, satAdd(c.estimate(x.Modify), c.estimate(x.Return)))
	case ast.Block:
		t := int64(1)
		for _, st := range x.Stmts {
			t = satAdd(t, c.estimate(st))
		}
		return t
	case ast.BlockDecl:
		return satAdd(1, c.estimate(x.Init))
	case ast.Assign:
		return satAdd(1, c.estimate(x.Val))
	case ast.While:
		if b, ok := c.constBool(x.Cond); ok && !b {
			return satAdd(1, c.estimate(x.Cond))
		}
		body := satAdd(c.estimate(x.Cond), c.estimate(x.Body))
		return satAdd(1, satMul(whileIters, body))
	case ast.Exit:
		return satAdd(1, c.estimate(x.With))
	case ast.EventAttach:
		return satAdd(1, satAdd(c.estimate(x.Event), c.estimate(x.Target)))
	case ast.EventDetach:
		return satAdd(1, satAdd(c.estimate(x.Event), c.estimate(x.Target)))
	case ast.EventTrigger:
		return satAdd(1, satAdd(c.estimate(x.Event), c.estimate(x.Target)))
	case ast.SetStyle:
		return satAdd(1, satAdd(c.estimate(x.Prop), satAdd(c.estimate(x.Target), c.estimate(x.Value))))
	case ast.GetStyle:
		return satAdd(1, satAdd(c.estimate(x.Prop), c.estimate(x.Target)))
	case ast.FTContains:
		return satAdd(unknownCard, c.estimate(x.X))
	default:
		return 1
	}
}

// callEstimate prices the callee: user functions are estimated from
// their body (memoised; recursion falls back to a flat guess), built-ins
// count as one step.
func (c *checker) callEstimate(fc ast.FuncCall) int64 {
	decls, ok := c.funcs[fnKey(fc.Name)]
	if !ok {
		return 1
	}
	for _, d := range decls {
		if len(d.Params) != len(fc.Args) || d.Body == nil {
			continue
		}
		if est, done := c.estMemo[d]; done {
			return est
		}
		if c.estBusy[d] {
			return recursionEst
		}
		c.estBusy[d] = true
		est := c.estimate(d.Body)
		delete(c.estBusy, d)
		c.estMemo[d] = est
		return est
	}
	return 1
}
