package analysis

import (
	"repro/internal/xquery/ast"
	"repro/internal/xquery/plan"
)

// Pass 4: constant folding and cost annotation. The folding itself
// lives in internal/xquery/plan (plan.Fold), where the algebraic
// optimizer reuses it to rewrite trees before compilation; the
// analyzer delegates so both passes agree on what is constant. The
// step estimate is saturating and uses the same unit as the runtime
// budget (one step per expression evaluation or streamed item), so a
// program estimated at E steps run under MaxSteps < E is likely to
// trip runtime.ErrBudgetExceeded.

// Cardinality and iteration guesses for statically unknown shapes.
const (
	unknownCard  = 8    // items assumed in an unknown sequence
	descScanCard = 64   // subtree nodes assumed for an unindexed descendant scan
	whileIters   = 64   // iterations assumed for a while loop
	recursionEst = 1024 // cost assumed for a recursive user function
	cardCap      = 1 << 20
	costCap      = int64(1) << 40
)

// constBool folds e and takes its effective boolean value.
func (c *checker) constBool(e ast.Expr) (bool, bool) {
	return plan.FoldBool(e)
}

// fold evaluates e if it is a constant expression (see plan.Fold).
func (c *checker) fold(e ast.Expr) (plan.Const, bool) {
	return plan.Fold(e)
}

// --- step estimation -------------------------------------------------------

func satAdd(a, b int64) int64 {
	s := a + b
	if s < a || s > costCap {
		return costCap
	}
	return s
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > costCap/b {
		return costCap
	}
	return a * b
}

// cardOf estimates the number of items e yields.
func (c *checker) cardOf(e ast.Expr) int64 {
	switch x := e.(type) {
	case ast.Range:
		l, lok := c.fold(x.L)
		r, rok := c.fold(x.R)
		if lok && rok && l.Kind == plan.ConstInt && r.Kind == plan.ConstInt {
			n := r.I - l.I + 1
			if n < 0 {
				return 0
			}
			if n > cardCap {
				return cardCap
			}
			return n
		}
		return unknownCard
	case ast.SeqExpr:
		var n int64
		for _, it := range x.Items {
			n = satAdd(n, c.cardOf(it))
			if n > cardCap {
				return cardCap
			}
		}
		return n
	case ast.IntLit, ast.DecimalLit, ast.DoubleLit, ast.StringLit,
		ast.DirElem, ast.CompConstructor, ast.ContextItem:
		return 1
	default:
		return unknownCard
	}
}

// estimate computes the saturating step estimate for e.
func (c *checker) estimate(e ast.Expr) int64 {
	switch x := e.(type) {
	case nil:
		return 0
	case ast.StringLit, ast.IntLit, ast.DecimalLit, ast.DoubleLit,
		ast.VarRef, ast.ContextItem, ast.Break, ast.Continue:
		return 1
	case ast.SeqExpr:
		t := int64(1)
		for _, it := range x.Items {
			t = satAdd(t, c.estimate(it))
		}
		return t
	case ast.Ordered:
		return c.estimate(x.X)
	case ast.Hoisted:
		return c.estimate(x.X)
	case ast.FuncCall:
		t := int64(1)
		for _, a := range x.Args {
			t = satAdd(t, c.estimate(a))
		}
		return satAdd(t, c.callEstimate(x))
	case ast.If:
		t := satAdd(1, c.estimate(x.Cond))
		thenE, elseE := c.estimate(x.Then), c.estimate(x.Else)
		if elseE > thenE {
			thenE = elseE
		}
		return satAdd(t, thenE)
	case ast.FLWOR:
		t := int64(1)
		card := int64(1)
		for _, cl := range x.Clauses {
			t = satAdd(t, satMul(card, c.estimate(cl.In)))
			if cl.For {
				card = satMul(card, c.cardOf(cl.In))
				if card > cardCap {
					card = cardCap
				}
			}
		}
		inner := c.estimate(x.Where)
		if x.Join != nil {
			inner = satAdd(inner, c.estimate(x.Join.Pred))
		}
		for _, os := range x.OrderBy {
			inner = satAdd(inner, c.estimate(os.Key))
		}
		inner = satAdd(inner, c.estimate(x.Return))
		return satAdd(t, satMul(card, inner))
	case ast.Quantified:
		t := int64(1)
		card := int64(1)
		for _, cl := range x.Vars {
			t = satAdd(t, c.estimate(cl.In))
			card = satMul(card, c.cardOf(cl.In))
			if card > cardCap {
				card = cardCap
			}
		}
		return satAdd(t, satMul(card, c.estimate(x.Satisfies)))
	case ast.Typeswitch:
		t := satAdd(1, c.estimate(x.Operand))
		max := c.estimate(x.Default)
		for _, cs := range x.Cases {
			if b := c.estimate(cs.Body); b > max {
				max = b
			}
		}
		return satAdd(t, max)
	case ast.Binary:
		return satAdd(1, satAdd(c.estimate(x.L), c.estimate(x.R)))
	case ast.Compare:
		return satAdd(1, satAdd(c.estimate(x.L), c.estimate(x.R)))
	case ast.Unary:
		return satAdd(1, c.estimate(x.X))
	case ast.Range:
		// Materialising a range costs about its cardinality.
		return satAdd(1, c.cardOf(x))
	case ast.InstanceOf:
		return satAdd(1, c.estimate(x.X))
	case ast.TreatAs:
		return satAdd(1, c.estimate(x.X))
	case ast.CastAs:
		return satAdd(1, c.estimate(x.X))
	case ast.Path:
		t := int64(1)
		card := int64(1)
		// Cost the steps the evaluator will actually run: the `//`
		// rewrite merges descendant-or-self::node()/child::X pairs,
		// and the planner's access annotation decides whether a
		// descendant step is an index probe (O(matches), costed at
		// unknownCard like any other step) or a subtree scan
		// (O(tree), costed at the larger descScanCard) — so XQ0301
		// charges indexed descendant steps for their matches, not
		// the tree.
		for _, st := range plan.RewriteDescendantSteps(x.Steps) {
			if st.Primary != nil {
				t = satAdd(t, satMul(card, c.estimate(st.Primary)))
				card = satMul(card, c.cardOf(st.Primary))
			} else if st.Access == ast.AccessIndexID {
				// An id probe answers from the index with at most a
				// handful of candidates, and the [@id = ...] predicate
				// it was planned from re-applies to that short list —
				// not to the unknownCard-per-frontier-node expansion a
				// scan would produce. Keep the post-probe cardinality
				// at the frontier size so the predicate loop below
				// charges probed predicates at post-probe cost;
				// charging them at the expanded cardinality made
				// XQ0301 fire spuriously on indexed pages.
				t = satAdd(t, card)
			} else if st.Access == ast.AccessFT {
				// A full-text probe enumerates candidates from the
				// document's posting lists — O(matches), like the other
				// probes — so charge the frontier, not the subtree.
				t = satAdd(t, card)
			} else if (st.Axis == ast.AxisDescendant || st.Axis == ast.AxisDescendantOrSelf) &&
				st.Access == ast.AccessScan {
				// An unindexed descendant step walks whole subtrees.
				t = satAdd(t, satMul(card, descScanCard))
				card = satMul(card, unknownCard)
			} else {
				// An axis step visits the frontier and expands it.
				t = satAdd(t, satMul(card, unknownCard))
				card = satMul(card, unknownCard)
			}
			if card > cardCap {
				card = cardCap
			}
			preds := st.Preds
			if st.Access == ast.AccessFT && len(preds) > 0 {
				// The planned ftcontains re-applies to the candidates
				// through the index's token windows — one step per
				// candidate, not the tokenize-the-subtree cost the
				// general FTContains estimate charges an unindexed
				// selection. Without this the probe's own predicate
				// made XQ0301 fire on indexed full-text pages.
				t = satAdd(t, card)
				preds = preds[1:]
			}
			for _, pr := range preds {
				t = satAdd(t, satMul(card, c.estimate(pr)))
			}
		}
		return t
	case ast.DirElem:
		t := int64(1)
		for _, a := range x.Attrs {
			for _, p := range a.Pieces {
				t = satAdd(t, c.estimate(p))
			}
		}
		for _, ch := range x.Content {
			t = satAdd(t, c.estimate(ch))
		}
		return t
	case ast.CompConstructor:
		return satAdd(1, satAdd(c.estimate(x.NameExpr), c.estimate(x.Content)))
	case ast.Insert:
		return satAdd(1, satAdd(c.estimate(x.Source), c.estimate(x.Target)))
	case ast.Delete:
		return satAdd(1, c.estimate(x.Target))
	case ast.Replace:
		return satAdd(1, satAdd(c.estimate(x.Target), c.estimate(x.With)))
	case ast.Rename:
		return satAdd(1, satAdd(c.estimate(x.Target), c.estimate(x.NewName)))
	case ast.Transform:
		t := int64(1)
		for _, b := range x.Bindings {
			t = satAdd(t, c.estimate(b.In))
		}
		return satAdd(t, satAdd(c.estimate(x.Modify), c.estimate(x.Return)))
	case ast.Block:
		t := int64(1)
		for _, st := range x.Stmts {
			t = satAdd(t, c.estimate(st))
		}
		return t
	case ast.BlockDecl:
		return satAdd(1, c.estimate(x.Init))
	case ast.Assign:
		return satAdd(1, c.estimate(x.Val))
	case ast.While:
		if b, ok := c.constBool(x.Cond); ok && !b {
			return satAdd(1, c.estimate(x.Cond))
		}
		body := satAdd(c.estimate(x.Cond), c.estimate(x.Body))
		return satAdd(1, satMul(whileIters, body))
	case ast.Exit:
		return satAdd(1, c.estimate(x.With))
	case ast.EventAttach:
		return satAdd(1, satAdd(c.estimate(x.Event), c.estimate(x.Target)))
	case ast.EventDetach:
		return satAdd(1, satAdd(c.estimate(x.Event), c.estimate(x.Target)))
	case ast.EventTrigger:
		return satAdd(1, satAdd(c.estimate(x.Event), c.estimate(x.Target)))
	case ast.SetStyle:
		return satAdd(1, satAdd(c.estimate(x.Prop), satAdd(c.estimate(x.Target), c.estimate(x.Value))))
	case ast.GetStyle:
		return satAdd(1, satAdd(c.estimate(x.Prop), c.estimate(x.Target)))
	case ast.FTContains:
		// An unindexed ftcontains tokenizes every input item's whole
		// string value — a full subtree scan per item, same unit as an
		// unindexed descendant step. (Selections planned into an
		// AccessFT probe are charged post-probe by the Path branch
		// above, which never reaches this case for the probed
		// predicate.)
		return satAdd(satMul(c.cardOf(x.X), descScanCard), c.estimate(x.X))
	default:
		return 1
	}
}

// callEstimate prices the callee: user functions are estimated from
// their body (memoised; recursion falls back to a flat guess), built-ins
// count as one step.
func (c *checker) callEstimate(fc ast.FuncCall) int64 {
	decls, ok := c.funcs[fnKey(fc.Name)]
	if !ok {
		return 1
	}
	for _, d := range decls {
		if len(d.Params) != len(fc.Args) || d.Body == nil {
			continue
		}
		if est, done := c.estMemo[d]; done {
			return est
		}
		if c.estBusy[d] {
			return recursionEst
		}
		c.estBusy[d] = true
		est := c.estimate(d.Body)
		delete(c.estBusy, d)
		c.estMemo[d] = est
		return est
	}
	return 1
}
