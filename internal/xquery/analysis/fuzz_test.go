package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/xquery/analysis"
	"repro/internal/xquery/parser"
)

// FuzzAnalyze asserts the analyzer's contract with the parser: any
// module the parser accepts must analyze without panicking, whatever
// diagnostics come out. Seeds are the golden corpus plus shapes that
// stress scoping, update placement and folding.
func FuzzAnalyze(f *testing.F) {
	if files, err := filepath.Glob(filepath.Join("testdata", "*.xq")); err == nil {
		for _, file := range files {
			if b, err := os.ReadFile(file); err == nil {
				f.Add(string(b))
			}
		}
	}
	for _, seed := range []string{
		"1 + 1",
		"for $x at $i in 1 to 5 where $i mod 2 = 0 order by $x return $x",
		"some $x in (1,2) satisfies $x = 2",
		"typeswitch (1) case $i as xs:integer return $i default $d return $d",
		"copy $c := /a modify delete node $c/b return $c",
		"declare updating function local:u() { delete node /a }; local:u()",
		"{ declare variable $x := 1; while ($x < 3) { $x := $x + 1 }; $x }",
		"on event 'click' at /html attach listener local:go",
		"<a b='{1+2}'>{for $x in //y return $x}</a>",
		"if (1 idiv 0) then 1 else 2",
		"browser:alert('hi')",
		"replace value of node browser:self()/status with 'x'",
	} {
		f.Add(seed)
	}
	cfg := goldenConfig()
	f.Fuzz(func(t *testing.T, src string) {
		m, err := parser.ParseModule(src)
		if err != nil {
			return // parser rejected it; out of scope
		}
		res := analysis.Analyze(m, cfg)
		if res == nil {
			t.Fatal("Analyze returned nil for a parsed module")
		}
		if res.EstimatedSteps < 0 {
			t.Fatalf("negative step estimate %d", res.EstimatedSteps)
		}
	})
}
