package analysis_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/browser"
	"repro/internal/xquery/analysis"
	"repro/internal/xquery/funclib"
	"repro/internal/xquery/parser"
	"repro/internal/xquery/runtime"
)

var update = flag.Bool("update", false, "rewrite the golden .diag files")

// goldenConfig is the analyzer configuration fixtures run under: full
// registry (funclib + browser:), browser profile on, and a small step
// budget so the cost fixture can trip XQ0301.
func goldenConfig() analysis.Config {
	reg := runtime.NewRegistry()
	_ = funclib.Register(reg) // signatures only; stream wiring is irrelevant here
	browser.RegisterFunctions(reg, nil, nil)
	return analysis.Config{Registry: reg, BrowserProfile: true, MaxSteps: 1000}
}

func renderDiags(res *analysis.Result) string {
	var b strings.Builder
	for _, d := range res.Diagnostics {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestGolden checks every testdata/*.xq fixture against its expected
// .diag file. Run with -update to regenerate expectations.
func TestGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.xq"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden fixtures found: %v", err)
	}
	cfg := goldenConfig()
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			m, err := parser.ParseModule(string(src))
			if err != nil {
				t.Fatalf("fixture must parse: %v", err)
			}
			got := renderDiags(analysis.Analyze(m, cfg))
			golden := strings.TrimSuffix(f, ".xq") + ".diag"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s:\n--- got ---\n%s--- want ---\n%s", f, got, want)
			}
		})
	}
}

// TestGoldenCoversAllCodes asserts that every implemented rule code has
// at least one fixture producing it — the corpus is the rule registry's
// regression net.
func TestGoldenCoversAllCodes(t *testing.T) {
	implemented := []string{
		analysis.CodeUnboundVar, analysis.CodeUnknownFunc, analysis.CodeArity,
		analysis.CodeDuplicateLet, analysis.CodeUnusedVar, analysis.CodeConstCond,
		analysis.CodeAssignUndeclared, analysis.CodeMisplacedUpdate,
		analysis.CodeUpdateInPure, analysis.CodeDocBlocked, analysis.CodePutBlocked,
		analysis.CodeReadOnlyWindow, analysis.CodeWindowUpdateKind,
		analysis.CodeCostBudget,
		analysis.CodeDeadUpdate, analysis.CodeDeadDelete,
		analysis.CodeUpdateConflict, analysis.CodeUpdateGroups,
	}
	files, _ := filepath.Glob(filepath.Join("testdata", "*.diag"))
	seen := map[string]bool{}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, code := range implemented {
			if strings.Contains(string(b), code+":") {
				seen[code] = true
			}
		}
	}
	for _, code := range implemented {
		if !seen[code] {
			t.Errorf("no golden fixture produces %s", code)
		}
	}
}

// TestAnalyzeEstimate sanity-checks the cost pass: a bigger constant
// range must estimate strictly more steps.
func TestAnalyzeEstimate(t *testing.T) {
	cfg := goldenConfig()
	est := func(src string) int64 {
		m, err := parser.ParseModule(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		return analysis.Analyze(m, cfg).EstimatedSteps
	}
	small := est("for $i in 1 to 10 return $i * 2")
	big := est("for $i in 1 to 10000 return $i * 2")
	if small <= 0 || big <= small {
		t.Errorf("estimates not monotone: small=%d big=%d", small, big)
	}
}
