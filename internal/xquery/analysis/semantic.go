package analysis

import (
	"strconv"

	"repro/internal/dom"
	"repro/internal/xquery/ast"
)

// updCtx says whether an updating expression may appear at the current
// position, and if not, why — the distinction picks the diagnostic
// code (XQ0101 vs XQ0102).
type updCtx int

const (
	// updAllowed: statement-like positions where the Update Facility
	// permits updating expressions (module body statements, if
	// branches, FLWOR return, block statements, transform modify, ...).
	updAllowed updCtx = iota
	// updExpr: value positions — conditions, operands, arguments,
	// predicates, binding sequences. Never updating.
	updExpr
	// updFunc: positions that would be allowed, except the enclosing
	// function is not declared updating or sequential.
	updFunc
)

// walk is the combined semantic / update-placement / browser-policy
// traversal. sc is the lexical scope; upd the update-placement context
// of this position. Child positions that keep statement semantics pass
// upd through; value positions pass updExpr.
func (c *checker) walk(e ast.Expr, sc *scope, upd updCtx) {
	switch x := e.(type) {
	case nil:
		return

	case ast.StringLit, ast.IntLit, ast.DecimalLit, ast.DoubleLit,
		ast.ContextItem, ast.Break, ast.Continue:
		return

	case ast.VarRef:
		b := sc.lookup(x.Name)
		if b == nil {
			if !c.imports[x.Name.Space] {
				c.report(CodeUnboundVar, SevError, x.At, "unbound variable $%s", varDisplay(x.Name))
			}
			return
		}
		b.used = true

	case ast.SeqExpr:
		for _, it := range x.Items {
			c.walk(it, sc, upd)
		}

	case ast.Ordered:
		c.walk(x.X, sc, upd)

	case ast.FuncCall:
		c.checkCall(x, sc, upd)

	case ast.If:
		c.walk(x.Cond, sc, updExpr)
		if b, ok := c.constBool(x.Cond); ok {
			branch := "\"else\""
			val := "true"
			if !b {
				branch = "\"then\""
				val = "false"
			}
			c.report(CodeConstCond, SevWarning, x.At,
				"condition is constantly %s; the %s branch is dead", val, branch)
		}
		c.walk(x.Then, sc, upd)
		c.walk(x.Else, sc, upd)

	case ast.FLWOR:
		fs := &scope{parent: sc}
		seen := map[dom.QName]bool{}
		for _, cl := range x.Clauses {
			c.walk(cl.In, fs, updExpr)
			if !cl.For && seen[cl.Var] {
				c.report(CodeDuplicateLet, SevWarning, cl.At,
					"duplicate binding of $%s in the same FLWOR shadows the earlier one",
					varDisplay(cl.Var))
			}
			seen[cl.Var] = true
			fs.declare(cl.Var, cl.At, clauseKind(cl))
			if cl.PosVar.Local != "" {
				seen[cl.PosVar] = true
				fs.declare(cl.PosVar, cl.At, kindPosVar)
			}
		}
		c.walk(x.Where, fs, updExpr)
		for _, os := range x.OrderBy {
			c.walk(os.Key, fs, updExpr)
		}
		c.walk(x.Return, fs, upd)
		c.reportUnused(fs)

	case ast.Quantified:
		qs := &scope{parent: sc}
		for _, cl := range x.Vars {
			c.walk(cl.In, qs, updExpr)
			qs.declare(cl.Var, cl.At, kindFor)
		}
		c.walk(x.Satisfies, qs, updExpr)
		c.reportUnused(qs)

	case ast.Typeswitch:
		c.walk(x.Operand, sc, updExpr)
		for _, cs := range x.Cases {
			ts := &scope{parent: sc}
			if cs.Var.Local != "" {
				ts.declare(cs.Var, cs.At, kindCase)
			}
			c.walk(cs.Body, ts, upd)
			c.reportUnused(ts)
		}
		ds := &scope{parent: sc}
		if x.DefaultVar.Local != "" {
			ds.declare(x.DefaultVar, x.At, kindCase)
		}
		c.walk(x.Default, ds, upd)
		c.reportUnused(ds)

	case ast.Binary:
		c.walk(x.L, sc, updExpr)
		c.walk(x.R, sc, updExpr)
	case ast.Compare:
		c.walk(x.L, sc, updExpr)
		c.walk(x.R, sc, updExpr)
	case ast.Unary:
		c.walk(x.X, sc, updExpr)
	case ast.Range:
		c.walk(x.L, sc, updExpr)
		c.walk(x.R, sc, updExpr)
	case ast.InstanceOf:
		c.walk(x.X, sc, updExpr)
	case ast.TreatAs:
		c.walk(x.X, sc, updExpr)
	case ast.CastAs:
		c.walk(x.X, sc, updExpr)

	case ast.Path:
		for _, st := range x.Steps {
			if st.Primary != nil {
				c.walk(st.Primary, sc, updExpr)
			}
			for _, pr := range st.Preds {
				c.walk(pr, sc, updExpr)
			}
		}

	case ast.DirElem:
		for _, a := range x.Attrs {
			for _, p := range a.Pieces {
				c.walk(p, sc, updExpr)
			}
		}
		for _, ch := range x.Content {
			c.walk(ch, sc, updExpr)
		}
	case ast.CompConstructor:
		c.walk(x.NameExpr, sc, updExpr)
		c.walk(x.Content, sc, updExpr)

	case ast.Insert:
		c.updatingExpr(x.At, "insert", upd)
		c.walk(x.Source, sc, updExpr)
		c.walk(x.Target, sc, updExpr)
		c.checkWindowWrite(x.Target, false, x.At)
	case ast.Delete:
		c.updatingExpr(x.At, "delete", upd)
		c.walk(x.Target, sc, updExpr)
		c.checkWindowWrite(x.Target, false, x.At)
	case ast.Replace:
		c.updatingExpr(x.At, "replace", upd)
		c.walk(x.Target, sc, updExpr)
		c.walk(x.With, sc, updExpr)
		c.checkWindowWrite(x.Target, x.ValueOf, x.At)
	case ast.Rename:
		c.updatingExpr(x.At, "rename", upd)
		c.walk(x.Target, sc, updExpr)
		c.walk(x.NewName, sc, updExpr)
		c.checkWindowWrite(x.Target, false, x.At)

	case ast.Transform:
		ts := &scope{parent: sc}
		for _, b := range x.Bindings {
			c.walk(b.In, ts, updExpr)
			ts.declare(b.Var, b.At, kindCopy)
		}
		// The modify clause is its own updating context: transform is a
		// plain (non-updating) expression that updates only its copies.
		c.walk(x.Modify, ts, updAllowed)
		c.walk(x.Return, ts, updExpr)
		c.reportUnused(ts)

	case ast.Block:
		bs := &scope{parent: sc}
		for _, st := range x.Stmts {
			c.walk(st, bs, upd)
		}
		c.reportUnused(bs)
	case ast.BlockDecl:
		c.walk(x.Init, sc, updExpr)
		sc.declare(x.Var, x.At, kindBlockDecl)
	case ast.Assign:
		b := sc.lookup(x.Var)
		if b == nil {
			c.report(CodeAssignUndeclared, SevError, x.At,
				"assignment to undeclared variable $%s", varDisplay(x.Var))
		} else {
			b.used = true
		}
		c.walk(x.Val, sc, updExpr)
	case ast.While:
		c.walk(x.Cond, sc, updExpr)
		c.walk(x.Body, sc, upd)
	case ast.Exit:
		c.walk(x.With, sc, updExpr)

	case ast.EventAttach:
		c.walk(x.Event, sc, updExpr)
		c.walk(x.Target, sc, updExpr)
		c.checkListener(x.Listener, x.At)
	case ast.EventDetach:
		c.walk(x.Event, sc, updExpr)
		c.walk(x.Target, sc, updExpr)
		c.checkListener(x.Listener, x.At)
	case ast.EventTrigger:
		c.walk(x.Event, sc, updExpr)
		c.walk(x.Target, sc, updExpr)

	case ast.SetStyle:
		c.walk(x.Prop, sc, updExpr)
		c.walk(x.Target, sc, updExpr)
		c.walk(x.Value, sc, updExpr)
	case ast.GetStyle:
		c.walk(x.Prop, sc, updExpr)
		c.walk(x.Target, sc, updExpr)

	case ast.FTContains:
		c.walk(x.X, sc, updExpr)
		c.walkFT(x.Sel, sc)
	}
}

func (c *checker) walkFT(sel ast.FTSelection, sc *scope) {
	switch s := sel.(type) {
	case ast.FTWords:
		c.walk(s.Source, sc, updExpr)
	case ast.FTAnd:
		c.walkFT(s.L, sc)
		c.walkFT(s.R, sc)
	case ast.FTOr:
		c.walkFT(s.L, sc)
		c.walkFT(s.R, sc)
	case ast.FTNot:
		c.walkFT(s.X, sc)
	}
}

func clauseKind(cl ast.Clause) bindKind {
	if cl.For {
		return kindFor
	}
	return kindLet
}

// updatingExpr reports a misplaced updating expression. what names the
// construct for the message.
func (c *checker) updatingExpr(at ast.Pos, what string, upd updCtx) {
	switch upd {
	case updAllowed:
	case updFunc:
		c.report(CodeUpdateInPure, SevError, at,
			"updating expression (%s) in a function not declared updating", what)
	default:
		c.report(CodeMisplacedUpdate, SevError, at,
			"updating expression (%s) in a non-updating context", what)
	}
}

// checkCall resolves a static function call: user declarations first,
// then the registry signature table, then imported namespaces (opaque
// at analysis time). Calls to updating functions are themselves
// updating expressions and go through the placement check.
func (c *checker) checkCall(fc ast.FuncCall, sc *scope, upd updCtx) {
	arity := len(fc.Args)
	defer func() {
		for _, a := range fc.Args {
			c.walk(a, sc, updExpr)
		}
	}()

	if decls, ok := c.funcs[fnKey(fc.Name)]; ok {
		for _, d := range decls {
			if len(d.Params) == arity {
				if d.Updating {
					c.updatingExpr(fc.At, "call to updating function "+fnDisplay(fc.Name), upd)
				}
				return
			}
		}
		c.report(CodeArity, SevError, fc.At,
			"%s expects %s, got %d", fnDisplay(fc.Name), expectedArity(decls), arity)
		return
	}

	if f := c.reg.Lookup(fc.Name, arity); f != nil {
		if c.browser {
			c.checkBrowserCall(fc)
		}
		if f.Updating {
			c.updatingExpr(fc.At, "call to updating function "+fnDisplay(fc.Name), upd)
		}
		return
	}
	if ovs := c.reg.Overloads(fc.Name); len(ovs) > 0 {
		c.report(CodeArity, SevError, fc.At,
			"%s does not accept %d argument(s)", fnDisplay(fc.Name), arity)
		return
	}
	if c.imports[fc.Name.Space] {
		return // provided by an imported module; unknowable statically
	}
	c.report(CodeUnknownFunc, SevError, fc.At,
		"unknown function %s#%d", fnDisplay(fc.Name), arity)
}

// checkListener verifies that an attached/detached listener names a
// known function (any arity — dispatch decides the argument shape).
func (c *checker) checkListener(name dom.QName, at ast.Pos) {
	if _, ok := c.funcs[fnKey(name)]; ok {
		return
	}
	if len(c.reg.Overloads(name)) > 0 || c.imports[name.Space] {
		return
	}
	c.report(CodeUnknownFunc, SevError, at,
		"unknown listener function %s", fnDisplay(name))
}

func expectedArity(decls []*ast.FuncDecl) string {
	if len(decls) == 1 {
		n := len(decls[0].Params)
		if n == 1 {
			return "1 argument"
		}
		return itoa(n) + " arguments"
	}
	out := ""
	for i, d := range decls {
		if i > 0 {
			out += " or "
		}
		out += itoa(len(d.Params))
	}
	return out + " arguments"
}

func itoa(n int) string { return strconv.Itoa(n) }
