let $x := 1
return $x + $y
