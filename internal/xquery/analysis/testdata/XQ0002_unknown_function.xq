local:frobnicate(1, 2)
