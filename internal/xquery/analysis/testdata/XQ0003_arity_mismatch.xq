declare function local:double($n) { $n * 2 };
fn:substring("abc"),
local:double(1, 2)
