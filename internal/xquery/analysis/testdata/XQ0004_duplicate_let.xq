for $i in 1 to 3
let $y := $i
let $y := $i * 2
return $y
