let $unused := 5
return 42
