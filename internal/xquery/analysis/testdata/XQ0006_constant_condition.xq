if (1 = 1) then "always" else "never",
if (false()) then "never" else "always"
