{
  declare variable $x := 1;
  $x := 2;
  $y := 3;
  $x
}
