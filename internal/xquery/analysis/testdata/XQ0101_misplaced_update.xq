let $n := delete node /log/entry[1]
return fn:count(delete node /log/entry)
