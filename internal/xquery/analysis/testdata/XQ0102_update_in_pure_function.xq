declare function local:clear() {
  delete node /log/entry
};
local:clear()
