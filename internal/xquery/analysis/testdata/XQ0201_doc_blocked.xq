fn:doc("http://example.com/feed.xml")/rss
