fn:put(<backup/>, "backup.xml")
