replace value of node browser:self()/status with "ok",
replace value of node browser:self()/closed with "true",
replace value of node browser:top()/location/hostname with "evil.example"
