delete node browser:self()/status,
insert node <w/> into browser:top()
