for $i in 1 to 100000
return $i * $i
