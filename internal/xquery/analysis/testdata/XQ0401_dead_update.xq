insert node <item/> into /app/cart,
replace node /app/cart with <cart/>
