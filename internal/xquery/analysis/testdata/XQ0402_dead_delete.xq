replace node /app/cart with <cart/>,
delete node /app/cart
