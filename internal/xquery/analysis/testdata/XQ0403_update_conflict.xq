replace value of node /app/title with "first",
replace value of node /app/title with "second"
