replace value of node /app/title with "t",
rename node /app/menu as "nav",
insert node <item/> into /app/cart
