declare variable $greeting := "hello";
declare function local:shout($s) { fn:upper-case($s) };
let $msg := local:shout($greeting)
return <p>{$msg}</p>
