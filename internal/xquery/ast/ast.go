// Package ast defines the abstract syntax of the extended XQuery dialect
// this repository implements: XQuery 1.0, the Update Facility, the
// Scripting Extension subset, full-text ftcontains, and the browser
// extensions proposed in the paper (§4.3 event grammar, §4.5 CSS
// grammar). QNames in the AST are fully resolved: the parser expands
// prefixes against the in-scope namespaces, so later phases never see a
// lexical prefix they cannot interpret.
package ast

import (
	"sync"

	"repro/internal/dom"
	"repro/internal/xdm"
)

// Expr is any expression node.
type Expr interface{ exprNode() }

// Pos is a source position: 1-based line and byte column. The zero Pos
// means "unknown" (a synthesised node). Nodes that the static analyzer
// reports on carry their position in an At field; PosOf retrieves it
// generically.
type Pos struct{ Line, Col int }

// Known reports whether the position was recorded.
func (p Pos) Known() bool { return p.Line > 0 }

// PosOf returns the source position of an expression, or the zero Pos
// for node kinds that do not record one.
func PosOf(e Expr) Pos {
	switch x := e.(type) {
	case VarRef:
		return x.At
	case FuncCall:
		return x.At
	case If:
		return x.At
	case FLWOR:
		if len(x.Clauses) > 0 {
			return x.Clauses[0].At
		}
	case Quantified:
		if len(x.Vars) > 0 {
			return x.Vars[0].At
		}
	case Typeswitch:
		return x.At
	case Insert:
		return x.At
	case Delete:
		return x.At
	case Replace:
		return x.At
	case Rename:
		return x.At
	case Transform:
		return x.At
	case Block:
		if len(x.Stmts) > 0 {
			return PosOf(x.Stmts[0])
		}
	case BlockDecl:
		return x.At
	case Assign:
		return x.At
	case While:
		return x.At
	case Exit:
		return x.At
	case EventAttach:
		return x.At
	case EventDetach:
		return x.At
	case EventTrigger:
		return x.At
	case SetStyle:
		return x.At
	case GetStyle:
		return x.At
	case Ordered:
		return PosOf(x.X)
	case SeqExpr:
		if len(x.Items) > 0 {
			return PosOf(x.Items[0])
		}
	}
	return Pos{}
}

// --- Literals and primaries ----------------------------------------------

// StringLit is a string literal.
type StringLit struct{ Val string }

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

// DecimalLit is a decimal literal, kept in lexical form for exactness.
type DecimalLit struct{ Val string }

// DoubleLit is a double literal.
type DoubleLit struct{ Val float64 }

// VarRef is a variable reference $name.
type VarRef struct {
	Name dom.QName
	At   Pos
}

// ContextItem is the "." expression.
type ContextItem struct{}

// SeqExpr is the comma operator; with no items it is the empty sequence
// "()".
type SeqExpr struct{ Items []Expr }

// FuncCall is a static function call.
type FuncCall struct {
	Name dom.QName
	Args []Expr
	At   Pos
}

// Ordered is ordered{...} / unordered{...}; we always evaluate in order,
// so it is a transparent wrapper.
type Ordered struct{ X Expr }

// --- Control expressions --------------------------------------------------

// If is the conditional expression.
type If struct {
	Cond, Then, Else Expr
	At               Pos
}

// FLWOR is the for/let/where/order by/return expression.
type FLWOR struct {
	Clauses []Clause // for and let clauses, in order
	Where   Expr     // nil if absent
	OrderBy []OrderSpec
	Return  Expr

	// Join, when non-nil, is the optimizer's equality-join annotation:
	// the clause at Join.Clause can be executed as the build side of a
	// hash join instead of a nested loop. The annotated predicate is
	// removed from Where and kept in Join.Pred, so an evaluator that
	// ignores the annotation (the tree walker) must apply Join.Pred as
	// the leading where conjunct to preserve semantics. Only the
	// optimizer (internal/xquery/plan) writes this field, and only on
	// its own copies of the tree — parsed modules never carry it.
	Join *JoinPlan
}

// JoinPlan annotates a FLWOR with a detected equality join (see
// plan.Optimize). OuterKey depends only on clauses before Clause;
// InnerKey depends only on the clause variable itself. ValueEq
// distinguishes `eq` (value comparison, at-most-one key per tuple)
// from `=` (general comparison, existential over key sequences).
type JoinPlan struct {
	Clause    int  // index of the inner (build-side) for clause
	OuterKey  Expr // probe key, evaluated in the outer tuple's scope
	InnerKey  Expr // build key, evaluated with the clause var bound
	ValueEq   bool // eq (value comp) vs = (general comp)
	OuterLeft bool // OuterKey was the left operand (evaluation-order parity)
	Pred      Expr // the original predicate, for non-hash evaluation
}

// Hoisted marks a loop-invariant subexpression the optimizer lifted
// out of a FLWOR iteration: the compiled backend evaluates it at most
// once per FLWOR entry (memoised at first use, so a zero-iteration
// loop never evaluates it). To every other evaluator it is a
// transparent wrapper, like Ordered. Only the optimizer constructs it.
type Hoisted struct{ X Expr }

// Clause is a for or let clause of a FLWOR.
type Clause struct {
	For    bool
	Var    dom.QName
	PosVar dom.QName // "at $i", zero if absent (for only)
	Type   *xdm.SeqType
	In     Expr // binding sequence (for) or value (let)
	At     Pos  // position of the bound variable
}

// OrderSpec is one key of an order by clause.
type OrderSpec struct {
	Key        Expr
	Descending bool
	EmptyLeast bool
	EmptySet   bool // whether empty greatest/least was written
}

// Quantified is some/every $x in ... satisfies ....
type Quantified struct {
	Every     bool
	Vars      []Clause // For is true for all of them
	Satisfies Expr
}

// Typeswitch is the typeswitch expression.
type Typeswitch struct {
	Operand    Expr
	Cases      []TypeswitchCase
	DefaultVar dom.QName // zero if unnamed
	Default    Expr
	At         Pos
}

// TypeswitchCase is one case of a typeswitch.
type TypeswitchCase struct {
	Var  dom.QName // zero if unnamed
	Type xdm.SeqType
	Body Expr
	At   Pos
}

// --- Operators --------------------------------------------------------------

// Binary covers or, and, arithmetic (+ - * div idiv mod), union (| union),
// intersect and except; Op holds the operator name.
type Binary struct {
	Op   string
	L, R Expr
}

// CompareKind distinguishes the three comparison families.
type CompareKind int

// Comparison families.
const (
	GeneralComp CompareKind = iota // = != < <= > >=
	ValueComp                      // eq ne lt le gt ge
	NodeComp                       // is << >>
)

// Compare is a comparison expression.
type Compare struct {
	Op   string
	Kind CompareKind
	L, R Expr
}

// Unary is a chain of unary +/- collapsed to a single sign.
type Unary struct {
	Neg bool
	X   Expr
}

// Range is the "to" expression.
type Range struct{ L, R Expr }

// InstanceOf is "instance of".
type InstanceOf struct {
	X    Expr
	Type xdm.SeqType
}

// TreatAs is "treat as".
type TreatAs struct {
	X    Expr
	Type xdm.SeqType
}

// CastAs covers "cast as" and "castable as" (Castable flag).
type CastAs struct {
	X        Expr
	Type     xdm.Type
	Optional bool // "?" on the single type
	Castable bool
}

// --- Paths -----------------------------------------------------------------

// Axis enumerates the XPath axes.
type Axis int

// The thirteen axes (namespace excluded).
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisAttribute
	AxisSelf
	AxisDescendantOrSelf
	AxisFollowingSibling
	AxisFollowing
	AxisParent
	AxisAncestor
	AxisPrecedingSibling
	AxisPreceding
	AxisAncestorOrSelf
)

// Reverse reports whether the axis is a reverse axis (affects predicate
// position numbering).
func (a Axis) Reverse() bool {
	switch a {
	case AxisParent, AxisAncestor, AxisPrecedingSibling, AxisPreceding, AxisAncestorOrSelf:
		return true
	}
	return false
}

// String returns the axis name.
func (a Axis) String() string {
	return [...]string{"child", "descendant", "attribute", "self",
		"descendant-or-self", "following-sibling", "following", "parent",
		"ancestor", "preceding-sibling", "preceding", "ancestor-or-self"}[a]
}

// NodeTest selects nodes on an axis. Exactly one of the fields is
// meaningful: a name test (possibly wildcarded), a kind test, or the
// universal node() test.
type NodeTest struct {
	// AnyNode is the node() test.
	AnyNode bool

	// Name test: Local "*" matches any local name; Space "*" (lexical
	// prefix wildcard) matches any namespace.
	Name     dom.QName
	AnySpace bool
	IsName   bool

	// Kind test: one of the node types, zero otherwise. KindName
	// optionally constrains element()/attribute() names; PITarget
	// constrains processing-instruction(target).
	Kind     xdm.Type
	KindName dom.QName
	HasName  bool
	PITarget string
}

// AccessMethod is the path planner's choice of access path for an axis
// step (see internal/xquery/plan). The zero value is AccessScan, so an
// unplanned AST evaluates exactly as before planning existed.
type AccessMethod uint8

// Access methods.
const (
	// AccessScan walks the axis node by node (the default).
	AccessScan AccessMethod = iota
	// AccessIndexName probes the per-document element-name index:
	// candidates are the subtree slice of the name's document-order
	// list instead of a full subtree walk.
	AccessIndexName
	// AccessIndexID probes the per-document "id" attribute index: the
	// step's first predicate pins @id to the string literal recorded
	// in AccessID.
	AccessIndexID
	// AccessFT probes the per-document full-text index: the step's
	// first predicate is an ftcontains over the context item with
	// all-literal sources, and candidates come from posting-list
	// intersection/union instead of a subtree walk.
	AccessFT
)

// String returns the access-method name (profiler/debug output).
func (a AccessMethod) String() string {
	switch a {
	case AccessIndexName:
		return "index-name"
	case AccessIndexID:
		return "index-id"
	case AccessFT:
		return "index-ft"
	default:
		return "scan"
	}
}

// Step is one step of a relative path: either an axis step or a primary
// ("filter") expression, each with trailing predicates.
type Step struct {
	// Axis step (when Primary is nil).
	Axis Axis
	Test NodeTest

	// Filter step.
	Primary Expr

	Preds []Expr

	// Access is the planner's access-path annotation for this step,
	// written exactly once per module by Module.EnsurePlanned before
	// the module is shared; evaluation only reads it. AccessID holds
	// the literal id value for AccessIndexID.
	Access   AccessMethod
	AccessID string
}

// Path is a path expression. Absolute paths start at the root of the
// context node's tree ("/..."); an empty Steps list with Absolute set is
// the "/" expression itself.
type Path struct {
	Absolute bool
	Steps    []Step
}

// --- Constructors ------------------------------------------------------------

// DirElem is a direct element constructor. Attribute and content values
// interleave literal text (StringLit) with enclosed expressions.
type DirElem struct {
	Name    dom.QName
	Attrs   []DirAttr
	Content []Expr // StringLit text runs, nested constructors, enclosed exprs
}

// DirAttr is an attribute of a direct element constructor.
type DirAttr struct {
	Name   dom.QName
	Pieces []Expr // StringLit and enclosed expressions
}

// CompConstructor is a computed constructor. Kind selects the node type;
// for element/attribute/PI either Name or NameExpr gives the name.
type CompConstructor struct {
	Kind     xdm.Type
	Name     dom.QName
	NameExpr Expr
	Content  Expr // nil for empty
}

// --- Update Facility ---------------------------------------------------------

// InsertPos says where an insert places its nodes.
type InsertPos int

// Insert positions.
const (
	Into InsertPos = iota
	IntoFirst
	IntoLast
	Before
	After
)

// Insert is "insert node(s) Source ... Target".
type Insert struct {
	Source Expr
	Target Expr
	Pos    InsertPos
	At     Pos
}

// Delete is "delete node(s) Target".
type Delete struct {
	Target Expr
	At     Pos
}

// Replace is "replace (value of)? node Target with With".
type Replace struct {
	ValueOf bool
	Target  Expr
	With    Expr
	At      Pos
}

// Rename is "rename node Target as NewName".
type Rename struct {
	Target  Expr
	NewName Expr
	At      Pos
}

// Transform is "copy $x := e modify m return r".
type Transform struct {
	Bindings []Clause // Var + In
	Modify   Expr
	Return   Expr
	At       Pos
}

// --- Scripting extension -------------------------------------------------------

// Block is a sequential block "{ stmt; stmt; ... }" (or "block {...}").
// Statements see the side effects of earlier statements.
type Block struct {
	Stmts []Expr
}

// BlockDecl is "declare variable $x := e;" inside a block.
type BlockDecl struct {
	Var  dom.QName
	Type *xdm.SeqType
	Init Expr // nil means empty sequence
	At   Pos
}

// Assign is "set $x := e" or "$x := e".
type Assign struct {
	Var dom.QName
	Val Expr
	At  Pos
}

// While is the scripting while loop.
type While struct {
	Cond Expr
	Body Expr
	At   Pos
}

// Exit is "exit with e" / "exit returning e".
type Exit struct {
	With Expr
	At   Pos
}

// Break is the scripting "break" statement (§3.3).
type Break struct{}

// Continue is the scripting "continue" statement (§3.3).
type Continue struct{}

// --- Browser extensions (paper §4.3, §4.5) -----------------------------------

// EventAttach is "on event E (at|behind) T attach listener F".
type EventAttach struct {
	Event    Expr
	Target   Expr
	Behind   bool // asynchronous-call binding (§4.4)
	Listener dom.QName
	At       Pos
}

// EventDetach is "on event E at T detach listener F".
type EventDetach struct {
	Event    Expr
	Target   Expr
	Listener dom.QName
	At       Pos
}

// EventTrigger is "trigger event E at T".
type EventTrigger struct {
	Event  Expr
	Target Expr
	At     Pos
}

// SetStyle is "set style P of T to V".
type SetStyle struct {
	Prop, Target, Value Expr
	At                  Pos
}

// GetStyle is "get style P of T".
type GetStyle struct {
	Prop, Target Expr
	At           Pos
}

// --- Full text ------------------------------------------------------------------

// FTContains is "X ftcontains Selection".
type FTContains struct {
	X   Expr
	Sel FTSelection
}

// FTSelection is a full-text selection tree.
type FTSelection interface{ ftNode() }

// FTWords matches the words/phrases produced by an expression; each
// string item is a phrase whose tokens must occur consecutively.
type FTWords struct {
	Source Expr
	// AnyAll: "any" (default), "all", "any word", "all words", "phrase".
	AnyAll string
	Opts   FTOptions
}

// FTAnd requires both selections to match.
type FTAnd struct{ L, R FTSelection }

// FTOr requires either selection to match.
type FTOr struct{ L, R FTSelection }

// FTNot is ftnot / not-in negation.
type FTNot struct{ X FTSelection }

// FTOptions are the match options we support (paper uses stemming).
type FTOptions struct {
	Stemming      bool
	CaseSensitive bool
	// Wildcards enables the W3C wildcard constructs ("." with optional
	// "?", "*", "+" or "{n,m}" quantifier) in query words.
	Wildcards bool
}

func (FTWords) ftNode() {}
func (FTAnd) ftNode()   {}
func (FTOr) ftNode()    {}
func (FTNot) ftNode()   {}

// --- Modules ----------------------------------------------------------------------

// Param is a function parameter.
type Param struct {
	Name dom.QName
	Type *xdm.SeqType
}

// FuncDecl is a function declaration from the prolog.
type FuncDecl struct {
	Name       dom.QName
	Params     []Param
	ReturnType *xdm.SeqType
	Body       Expr // nil for external
	Updating   bool
	Sequential bool
	External   bool
	At         Pos
}

// VarDecl is a global variable declaration from the prolog.
type VarDecl struct {
	Name     dom.QName
	Type     *xdm.SeqType
	Init     Expr // nil for external
	External bool
	At       Pos
}

// ModuleImport records "import module namespace p = uri (at hints)?;".
type ModuleImport struct {
	Prefix string
	URI    string
	Hints  []string
}

// Prolog is the query prolog.
type Prolog struct {
	Namespaces    map[string]string // prefix -> URI declared by the query
	DefaultElemNS string
	DefaultFnNS   string
	Vars          []VarDecl
	Functions     []FuncDecl
	Imports       []ModuleImport
	Options       map[string]string // lexical QName -> value
}

// Module is a parsed main or library module.
type Module struct {
	// Library module header: "module namespace p = uri (port:N)?;".
	IsLibrary bool
	Prefix    string
	URI       string
	Port      int // webservice extension (paper §3.4), 0 if absent

	Prolog Prolog
	Body   Expr // nil for library modules

	planOnce sync.Once
}

// EnsurePlanned runs f exactly once over the module's lifetime — the
// hook the path planner uses to annotate Step.Access in place. Parsed
// modules are shared across engines by the program cache and compiled
// concurrently, so the annotation pass needs a happens-before edge to
// every reader; sync.Once provides it. Apart from this single guarded
// pass the AST stays read-only after parse.
func (m *Module) EnsurePlanned(f func()) { m.planOnce.Do(f) }

func (StringLit) exprNode()       {}
func (IntLit) exprNode()          {}
func (DecimalLit) exprNode()      {}
func (DoubleLit) exprNode()       {}
func (VarRef) exprNode()          {}
func (ContextItem) exprNode()     {}
func (SeqExpr) exprNode()         {}
func (FuncCall) exprNode()        {}
func (Ordered) exprNode()         {}
func (If) exprNode()              {}
func (FLWOR) exprNode()           {}
func (Quantified) exprNode()      {}
func (Typeswitch) exprNode()      {}
func (Binary) exprNode()          {}
func (Compare) exprNode()         {}
func (Unary) exprNode()           {}
func (Range) exprNode()           {}
func (InstanceOf) exprNode()      {}
func (TreatAs) exprNode()         {}
func (CastAs) exprNode()          {}
func (Path) exprNode()            {}
func (DirElem) exprNode()         {}
func (CompConstructor) exprNode() {}
func (Insert) exprNode()          {}
func (Delete) exprNode()          {}
func (Replace) exprNode()         {}
func (Rename) exprNode()          {}
func (Transform) exprNode()       {}
func (Block) exprNode()           {}
func (BlockDecl) exprNode()       {}
func (Assign) exprNode()          {}
func (While) exprNode()           {}
func (Exit) exprNode()            {}
func (Break) exprNode()           {}
func (Continue) exprNode()        {}
func (EventAttach) exprNode()     {}
func (EventDetach) exprNode()     {}
func (EventTrigger) exprNode()    {}
func (SetStyle) exprNode()        {}
func (GetStyle) exprNode()        {}
func (FTContains) exprNode()      {}
func (Hoisted) exprNode()         {}
