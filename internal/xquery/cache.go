package xquery

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/xqerr"
	"repro/internal/xquery/analysis"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/parser"
)

// CacheStats is a point-in-time snapshot of cache activity. All
// counters are cumulative since the cache was created.
type CacheStats struct {
	// Compiles counts real compilations performed (program-level misses
	// that ran runtime.Compile).
	Compiles int64 `json:"compiles"`
	// Parses counts real parses performed (module-level misses).
	Parses int64 `json:"parses"`
	// ProgramHits counts lookups served a ready compiled program.
	ProgramHits int64 `json:"program_hits"`
	// ModuleHits counts compilations that skipped parsing because the
	// parsed module was shared (a different engine compiled the same
	// source earlier — the cross-session page-script case).
	ModuleHits int64 `json:"module_hits"`
	// Coalesced counts lookups that joined an in-flight compilation of
	// the same key instead of duplicating it (singleflight).
	Coalesced int64 `json:"coalesced"`
	// Evictions counts LRU evictions across both levels.
	Evictions int64 `json:"evictions"`
	// Quarantined counts lookups refused because the program crashed
	// (panicked) QuarantineThreshold times in a row through this cache.
	Quarantined int64 `json:"quarantined"`
}

// QuarantineThreshold is the number of consecutive internal errors
// (recovered panics, matching xqerr.ErrInternal) after which
// Cache.EvalQuery refuses a program outright. Any other outcome —
// success, a normal query error, even a budget overrun — resets the
// streak: quarantine is for programs that reliably crash the
// evaluator, not ones that merely fail.
const QuarantineThreshold = 3

// ErrQuarantined matches (via errors.Is) lookups refused because the
// program is quarantined.
var ErrQuarantined = errors.New("xquery: program quarantined")

// Cache is a shared compiled-program cache: repeated queries skip
// parse/compile entirely, and concurrent first requests for the same
// key are deduplicated singleflight-style. It is safe for concurrent
// use by any number of goroutines and engines.
//
// Keying has two levels, because compiled programs capture their
// engine's static context (registered built-ins are closures that may
// hold per-host state):
//
//   - programs are keyed on (engine fingerprint, source): a hit is only
//     possible on the same engine, which is the shared-engine serving
//     path (one engine, many requests);
//   - parsed modules are keyed on source alone — parsing is independent
//     of the static context — so per-page host engines compiling the
//     same page script still share the parse.
type Cache struct {
	mu       sync.Mutex
	capacity int
	programs map[string]*list.Element // key → *cacheEntry element
	modules  map[string]*list.Element
	progLRU  *list.List
	modLRU   *list.List
	flights  map[string]*flight

	// panicStreak tracks consecutive internal errors per program key;
	// reaching QuarantineThreshold quarantines the key until any
	// non-internal outcome (never, unless the program is re-admitted by
	// a cache restart). Guarded by mu; bounded at capacity entries.
	panicStreak map[string]int

	compiles    atomic.Int64
	parses      atomic.Int64
	progHits    atomic.Int64
	modHits     atomic.Int64
	coalesced   atomic.Int64
	evictions   atomic.Int64
	quarantined atomic.Int64
}

type cacheEntry struct {
	key  string
	prog *Program
	mod  *ast.Module

	// Static-analysis results, filled lazily on the first Strict access
	// to this entry: the analysis is a pure function of (engine,
	// module), so it is computed at most once per cached program. The
	// stored diagnostics exclude budget warnings (those depend on the
	// per-run MaxSteps and derive from est).
	analyzed bool
	diags    []analysis.Diagnostic
	est      int64
}

// flight is one in-progress compile shared by concurrent callers.
type flight struct {
	done chan struct{}
	prog *Program
	mod  *ast.Module
	err  error
}

// DefaultCacheCapacity bounds each cache level when NewCache is given a
// non-positive capacity.
const DefaultCacheCapacity = 256

// NewCache creates a cache holding up to capacity compiled programs
// (and as many parsed modules). capacity <= 0 uses
// DefaultCacheCapacity.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity:    capacity,
		programs:    map[string]*list.Element{},
		modules:     map[string]*list.Element{},
		progLRU:     list.New(),
		modLRU:      list.New(),
		flights:     map[string]*flight{},
		panicStreak: map[string]int{},
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Compiles:    c.compiles.Load(),
		Parses:      c.parses.Load(),
		ProgramHits: c.progHits.Load(),
		ModuleHits:  c.modHits.Load(),
		Coalesced:   c.coalesced.Load(),
		Evictions:   c.evictions.Load(),
		Quarantined: c.quarantined.Load(),
	}
}

// checkQuarantine refuses keys whose panic streak crossed the
// threshold.
func (c *Cache) checkQuarantine(key string) error {
	c.mu.Lock()
	streak := c.panicStreak[key]
	c.mu.Unlock()
	if streak >= QuarantineThreshold {
		c.quarantined.Add(1)
		return fmt.Errorf("%w after %d consecutive internal errors", ErrQuarantined, streak)
	}
	return nil
}

// noteOutcome updates a key's panic streak from a run outcome: an
// internal error (recovered panic) extends the streak, anything else
// clears it.
func (c *Cache) noteOutcome(key string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil && errors.Is(err, xqerr.ErrInternal) {
		if len(c.panicStreak) >= c.capacity {
			// Bound the bookkeeping like the cache itself: drop an
			// arbitrary streak rather than grow without limit.
			for k := range c.panicStreak {
				delete(c.panicStreak, k)
				break
			}
		}
		c.panicStreak[key]++
		return
	}
	delete(c.panicStreak, key)
}

// Len returns the number of resident compiled programs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.progLRU.Len()
}

// Compile returns the compiled program for src on engine e, consulting
// and populating the cache. Errors are not cached: a failing source is
// recompiled (and its error returned) on every call, though concurrent
// callers of the same failing key share one attempt.
func (c *Cache) Compile(e *Engine, src string) (*Program, error) {
	key := e.Fingerprint() + "\x00" + src

	c.mu.Lock()
	if el, ok := c.programs[key]; ok {
		c.progLRU.MoveToFront(el)
		c.mu.Unlock()
		c.progHits.Add(1)
		return el.Value.(*cacheEntry).prog, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		return f.prog, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	f.prog, f.err = c.compileMiss(e, src)
	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.insert(c.programs, c.progLRU, &cacheEntry{key: key, prog: f.prog})
	}
	c.mu.Unlock()
	close(f.done)
	return f.prog, f.err
}

// compileMiss does the real work of a program-level miss: fetch or
// parse the module, then compile it on e.
func (c *Cache) compileMiss(e *Engine, src string) (*Program, error) {
	m, err := c.parse(src)
	if err != nil {
		return nil, err
	}
	c.compiles.Add(1)
	return e.CompileModule(m)
}

// parse returns the parsed module for src, sharing parses across
// engines (module-level singleflight + LRU).
func (c *Cache) parse(src string) (*ast.Module, error) {
	c.mu.Lock()
	if el, ok := c.modules[src]; ok {
		c.modLRU.MoveToFront(el)
		c.mu.Unlock()
		c.modHits.Add(1)
		return el.Value.(*cacheEntry).mod, nil
	}
	mkey := "m\x00" + src
	if f, ok := c.flights[mkey]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		<-f.done
		return f.mod, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[mkey] = f
	c.mu.Unlock()

	c.parses.Add(1)
	f.mod, f.err = parser.ParseModule(src)
	c.mu.Lock()
	delete(c.flights, mkey)
	if f.err == nil {
		c.insert(c.modules, c.modLRU, &cacheEntry{key: src, mod: f.mod})
	}
	c.mu.Unlock()
	close(f.done)
	return f.mod, f.err
}

// insert adds an entry at the LRU front and evicts the tail past
// capacity. Callers hold c.mu.
func (c *Cache) insert(idx map[string]*list.Element, lru *list.List, e *cacheEntry) {
	if el, ok := idx[e.key]; ok { // lost a benign race; refresh
		el.Value = e
		lru.MoveToFront(el)
		return
	}
	idx[e.key] = lru.PushFront(e)
	for lru.Len() > c.capacity {
		el := lru.Back()
		lru.Remove(el)
		delete(idx, el.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// CompileStrict is Compile gated by the static analyzer: programs with
// error-severity diagnostics are rejected with an *AnalysisError and —
// on the miss path — never admitted to the program cache (the parsed
// module is still shared, so repeated strict attempts reparse nothing).
// On success the analysis result (warnings + step estimate) is returned
// alongside the program and memoised with the cache entry.
func (c *Cache) CompileStrict(e *Engine, src string) (*Program, *analysis.Result, error) {
	key := e.Fingerprint() + "\x00" + src

	c.mu.Lock()
	if el, ok := c.programs[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.progLRU.MoveToFront(el)
		if ent.analyzed {
			prog, res := ent.prog, &analysis.Result{Diagnostics: ent.diags, EstimatedSteps: ent.est}
			c.mu.Unlock()
			c.progHits.Add(1)
			if res.HasErrors() {
				return nil, res, &AnalysisError{Diagnostics: res.Diagnostics}
			}
			return prog, res, nil
		}
		prog := ent.prog
		c.mu.Unlock()
		c.progHits.Add(1)
		// Analyze outside the lock; concurrent first strict accesses may
		// duplicate the work but converge on the same result.
		res := e.AnalyzeModule(prog.Module())
		c.mu.Lock()
		if el, ok := c.programs[key]; ok {
			ent := el.Value.(*cacheEntry)
			ent.analyzed, ent.diags, ent.est = true, res.Diagnostics, res.EstimatedSteps
		}
		c.mu.Unlock()
		if res.HasErrors() {
			// The program entered the cache through the non-strict path;
			// strict callers still refuse to run it.
			return nil, res, &AnalysisError{Diagnostics: res.Diagnostics}
		}
		return prog, res, nil
	}
	c.mu.Unlock()

	m, err := c.parse(src)
	if err != nil {
		return nil, nil, err
	}
	res := e.AnalyzeModule(m)
	if res.HasErrors() {
		return nil, res, &AnalysisError{Diagnostics: res.Diagnostics}
	}
	prog, err := c.Compile(e, src)
	if err != nil {
		return nil, res, err
	}
	c.mu.Lock()
	if el, ok := c.programs[key]; ok {
		ent := el.Value.(*cacheEntry)
		if !ent.analyzed {
			ent.analyzed, ent.diags, ent.est = true, res.Diagnostics, res.EstimatedSteps
		}
	}
	c.mu.Unlock()
	return prog, res, nil
}

// EvalQuery compiles src through the cache and runs it on engine e —
// the cached counterpart of Engine.EvalQueryContext. cfg.ContextItem,
// budgets, Context and the other run parameters apply per run as usual;
// only the compiled program is shared. With cfg.Strict set the compile
// goes through CompileStrict: statically rejected programs fail with an
// *AnalysisError (and stay out of the program cache), and the memoised
// analysis supplies Result.Diagnostics without re-analyzing per run.
//
// EvalQuery is also the quarantine gate: a program whose last
// QuarantineThreshold runs all ended in recovered panics (errors
// matching xqerr.ErrInternal) is refused up front with an error
// matching ErrQuarantined, so a reliably crashing program stops
// burning evaluation budget. Any non-internal outcome resets its
// streak.
func (c *Cache) EvalQuery(e *Engine, src string, cfg RunConfig) (*Result, error) {
	key := e.Fingerprint() + "\x00" + src
	if err := c.checkQuarantine(key); err != nil {
		return nil, err
	}
	if cfg.Strict {
		p, ares, err := c.CompileStrict(e, src)
		if err != nil {
			return nil, err
		}
		runCfg := cfg
		runCfg.Strict = false // analysis already done; don't redo it per run
		res, err := p.Run(runCfg)
		c.noteOutcome(key, err)
		if err != nil {
			return nil, err
		}
		res.Diagnostics = ares.Diagnostics
		if d, ok := analysis.BudgetDiagnostic(ares.EstimatedSteps, cfg.MaxSteps); ok {
			res.Diagnostics = append(append([]Diagnostic(nil), ares.Diagnostics...), d)
		}
		return res, nil
	}
	p, err := c.Compile(e, src)
	if err != nil {
		return nil, err
	}
	res, err := p.Run(cfg)
	c.noteOutcome(key, err)
	return res, err
}
