package xquery

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheProgramHit(t *testing.T) {
	e := New()
	c := NewCache(8)
	src := `for $i in 1 to 3 return $i * $i`

	p1, err := c.Compile(e, src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Compile(e, src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("same engine + source must share the compiled program")
	}
	st := c.Stats()
	if st.Compiles != 1 || st.ProgramHits != 1 || st.Parses != 1 {
		t.Errorf("stats = %+v, want 1 compile / 1 hit / 1 parse", st)
	}

	res, err := p2.Run(RunConfig{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatSequence(res.Value, nil); got != "1 4 9" {
		t.Errorf("cached program result = %q", got)
	}
}

func TestCacheSharesParseAcrossEngines(t *testing.T) {
	c := NewCache(8)
	src := `1 + 1`
	e1, e2 := New(), New()
	if e1.Fingerprint() == e2.Fingerprint() {
		t.Fatal("distinct engines must have distinct fingerprints")
	}
	if _, err := c.Compile(e1, src); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile(e2, src); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Compiles != 2 {
		t.Errorf("compiles = %d, want 2 (programs are engine-specific)", st.Compiles)
	}
	if st.Parses != 1 || st.ModuleHits != 1 {
		t.Errorf("parses = %d moduleHits = %d, want 1 and 1 (parse shared)", st.Parses, st.ModuleHits)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	e := New()
	c := NewCache(2)
	for i := 0; i < 3; i++ {
		if _, err := c.Compile(e, fmt.Sprintf("%d + 0", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got != 2 {
		t.Errorf("resident programs = %d, want capacity 2", got)
	}
	if ev := c.Stats().Evictions; ev == 0 {
		t.Error("expected evictions past capacity")
	}
	// "0 + 0" was the least recently used: recompiling it is a miss.
	before := c.Stats().Compiles
	if _, err := c.Compile(e, "0 + 0"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Compiles; got != before+1 {
		t.Errorf("evicted entry must recompile: compiles %d -> %d", before, got)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	e := New()
	c := NewCache(8)
	for i := 0; i < 2; i++ {
		if _, err := c.Compile(e, "1 +"); err == nil {
			t.Fatal("syntax error must fail")
		}
	}
	if got := c.Len(); got != 0 {
		t.Errorf("failed compiles must not be cached, resident = %d", got)
	}
}

func TestCacheConcurrentSingleflight(t *testing.T) {
	e := New()
	c := NewCache(8)
	src := `for $i in 1 to 10 return $i`
	const workers = 32
	var wg sync.WaitGroup
	progs := make([]*Program, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.Compile(e, src)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	for _, p := range progs[1:] {
		if p != progs[0] {
			t.Fatal("all workers must get the same compiled program")
		}
	}
	st := c.Stats()
	if st.Compiles != 1 || st.Parses != 1 {
		t.Errorf("singleflight must collapse to one compile/parse, got %+v", st)
	}
	if st.ProgramHits+st.Coalesced != workers-1 {
		t.Errorf("hits(%d) + coalesced(%d) must cover the other %d workers",
			st.ProgramHits, st.Coalesced, workers-1)
	}
}
