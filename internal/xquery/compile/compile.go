// Package compile is the third stage of the query pipeline — plan
// (path access methods) → optimize (algebraic rewrites, plan.Optimize)
// → compile (this package): it lowers the optimized AST to Go closures
// of type func(*Ctx) (xdm.Sequence, error), resolving variable slots,
// function targets and index plans once at compile time instead of on
// every evaluation.
//
// The backend compiles the hot core natively — literals, variable
// reads, sequence/if/FLWOR/comparison/arithmetic/range shapes, and
// calls between compiled user functions — and bridges everything else
// (paths, constructors, updates, quantified/typeswitch, full text,
// browser expressions, streaming-capable built-ins) back into the tree
// walker with a compile-time snapshot of the lexical scope. Bridging
// keeps the walker the single source of semantics for the long tail;
// the differential test harness runs every corpus through both
// backends and asserts identical results and PULs.
//
// Two conservatisms, both per FLUX's treatment of side effects:
// a unit (module body or function body) containing scripting
// constructs (assignment, blocks, while, break/continue, exit) is not
// compiled at all — its variables live in mutable boxes whose writes a
// flat frame could miss — and when a snapshot-applying (sequential)
// context is detected at runtime, hoist memoisation and hash joins
// disable themselves, because updates applied between iterations can
// change what an "invariant" expression sees.
package compile

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/plan"
	"repro/internal/xquery/runtime"
)

// Closure is the compiled form of an expression: eager evaluation in a
// compiled context. Bridged closures delegate to the walker.
type Closure func(*Ctx) (xdm.Sequence, error)

// ebvClosure evaluates to an effective boolean value.
type ebvClosure func(*Ctx) (bool, error)

// itemClosure evaluates and atomizes to at most one item (the walker's
// evalAtomizedOne contract).
type itemClosure func(*Ctx) (xdm.Item, error)

// hoistCell memoises one Hoisted subexpression within one FLWOR entry.
type hoistCell struct {
	valid bool
	seq   xdm.Sequence
	b     bool
}

// Ctx is the compiled execution context: the walker context (focus,
// budget, profiler, PUL — everything a bridge needs) plus the flat
// slot-indexed variable frame and the hoist memo cells of the current
// unit invocation.
type Ctx struct {
	R     *runtime.Context
	frame []xdm.Sequence
	hoist []hoistCell
}

// scopeBinding maps a lexical variable to its frame slot.
type scopeBinding struct {
	name dom.QName
	slot int
}

// rctx builds the walker context for a bridge: the unit's base context
// extended with the scope snapshot, outermost first so the innermost
// binding wins lookup.
func (c *Ctx) rctx(scope []scopeBinding) *runtime.Context {
	if len(scope) == 0 {
		return c.R
	}
	bs := make([]runtime.VarBinding, len(scope))
	for i, s := range scope {
		bs[i] = runtime.VarBinding{Name: s.name, Val: c.frame[s.slot]}
	}
	return c.R.WithBindings(bs)
}

// unit is one compiled compilation unit: the module body or a user
// function body.
type unit struct {
	name   dom.QName
	params []ast.Param
	ret    *xdm.SeqType
	nSlots int
	nHoist int
	body   Closure
}

// Compiled is a fully compiled module, ready to run against walker
// contexts produced by the engine.
type Compiled struct {
	body   Closure // nil when the module has no body
	nSlots int
	nHoist int
	stats  plan.Stats
}

// Stats returns the optimizer's rewrite counts for the whole module.
func (cc *Compiled) Stats() plan.Stats { return cc.stats }

// Run evaluates the compiled module body in ctx. Globals must already
// be initialised (the engine runs InitGlobals through the walker, so
// prolog variable semantics are identical across backends).
func (cc *Compiled) Run(ctx *runtime.Context) (xdm.Sequence, error) {
	if cc.body == nil {
		return nil, nil
	}
	c := &Ctx{R: ctx, frame: make([]xdm.Sequence, cc.nSlots), hoist: make([]hoistCell, cc.nHoist)}
	res, err := cc.body(c)
	if v, ok := ctx.ExitValue(err); ok {
		return v, nil
	}
	return res, err
}

// moduleCompiler holds cross-unit state: the compiled-function table
// that lets compiled call sites jump straight to compiled bodies.
type moduleCompiler struct {
	prog  *runtime.Program
	units map[*runtime.Function]*unit
	stats *plan.Stats
}

// Compile lowers a runtime-compiled program to closures. It cannot
// fail: anything it does not understand becomes a bridge into the
// walker, and a module body using scripting state is left to the
// walker entirely (a single whole-body bridge).
func Compile(p *runtime.Program) *Compiled {
	mc := &moduleCompiler{prog: p, units: map[*runtime.Function]*unit{}, stats: &plan.Stats{}}
	m := p.Module

	// Pass 1: shells, so mutually recursive compiled functions can
	// resolve each other before any body exists.
	type pending struct {
		u    *unit
		decl *ast.FuncDecl
	}
	var todo []pending
	for i := range m.Prolog.Functions {
		d := &m.Prolog.Functions[i]
		if d.External || d.Body == nil || poisoned(d.Body) {
			continue
		}
		f := p.Reg.Lookup(d.Name, len(d.Params))
		if f == nil {
			continue
		}
		u := &unit{name: d.Name, params: d.Params, ret: d.ReturnType}
		mc.units[f] = u
		todo = append(todo, pending{u: u, decl: d})
	}

	// Pass 2: bodies, each through the optimizer first.
	for _, pn := range todo {
		uc := &unitCompiler{mc: mc}
		for _, prm := range pn.decl.Params {
			uc.push(prm.Name)
		}
		opt := plan.Optimize(pn.decl.Body, mc.stats)
		pn.u.body = uc.expr(opt)
		pn.u.nSlots, pn.u.nHoist = uc.maxSlots, uc.nHoist
	}

	cc := &Compiled{}
	if m.Body != nil {
		uc := &unitCompiler{mc: mc}
		if poisoned(m.Body) {
			cc.body = uc.bridge(m.Body)
		} else {
			opt := plan.Optimize(m.Body, mc.stats)
			cc.body = uc.expr(opt)
		}
		cc.nSlots, cc.nHoist = uc.maxSlots, uc.nHoist
	}
	cc.stats = *mc.stats
	return cc
}

// poisoned reports whether e contains a scripting construct anywhere:
// such a unit must evaluate wholly in the walker, whose environment
// boxes give assignment its write-through semantics. Unknown node
// kinds answer true (bridge-everything is always safe).
func poisoned(e ast.Expr) bool {
	switch x := e.(type) {
	case nil, ast.StringLit, ast.IntLit, ast.DecimalLit, ast.DoubleLit,
		ast.VarRef, ast.ContextItem:
		return false
	case ast.Assign, ast.BlockDecl, ast.Block, ast.While, ast.Break, ast.Continue, ast.Exit:
		return true
	case ast.SeqExpr:
		for _, it := range x.Items {
			if poisoned(it) {
				return true
			}
		}
		return false
	case ast.Ordered:
		return poisoned(x.X)
	case ast.Hoisted:
		return poisoned(x.X)
	case ast.FuncCall:
		for _, a := range x.Args {
			if poisoned(a) {
				return true
			}
		}
		return false
	case ast.If:
		return poisoned(x.Cond) || poisoned(x.Then) || poisoned(x.Else)
	case ast.FLWOR:
		for _, cl := range x.Clauses {
			if poisoned(cl.In) {
				return true
			}
		}
		if x.Join != nil && (poisoned(x.Join.OuterKey) || poisoned(x.Join.InnerKey) || poisoned(x.Join.Pred)) {
			return true
		}
		for _, os := range x.OrderBy {
			if poisoned(os.Key) {
				return true
			}
		}
		return poisoned(x.Where) || poisoned(x.Return)
	case ast.Quantified:
		for _, cl := range x.Vars {
			if poisoned(cl.In) {
				return true
			}
		}
		return poisoned(x.Satisfies)
	case ast.Typeswitch:
		if poisoned(x.Operand) || poisoned(x.Default) {
			return true
		}
		for _, cs := range x.Cases {
			if poisoned(cs.Body) {
				return true
			}
		}
		return false
	case ast.Binary:
		return poisoned(x.L) || poisoned(x.R)
	case ast.Compare:
		return poisoned(x.L) || poisoned(x.R)
	case ast.Unary:
		return poisoned(x.X)
	case ast.Range:
		return poisoned(x.L) || poisoned(x.R)
	case ast.InstanceOf:
		return poisoned(x.X)
	case ast.TreatAs:
		return poisoned(x.X)
	case ast.CastAs:
		return poisoned(x.X)
	case ast.Path:
		for _, s := range x.Steps {
			if s.Primary != nil && poisoned(s.Primary) {
				return true
			}
			for _, pr := range s.Preds {
				if poisoned(pr) {
					return true
				}
			}
		}
		return false
	case ast.DirElem:
		for _, a := range x.Attrs {
			for _, p := range a.Pieces {
				if poisoned(p) {
					return true
				}
			}
		}
		for _, ch := range x.Content {
			if poisoned(ch) {
				return true
			}
		}
		return false
	case ast.CompConstructor:
		return poisoned(x.NameExpr) || poisoned(x.Content)
	case ast.Insert:
		return poisoned(x.Source) || poisoned(x.Target)
	case ast.Delete:
		return poisoned(x.Target)
	case ast.Replace:
		return poisoned(x.Target) || poisoned(x.With)
	case ast.Rename:
		return poisoned(x.Target) || poisoned(x.NewName)
	case ast.Transform:
		for _, b := range x.Bindings {
			if poisoned(b.In) {
				return true
			}
		}
		return poisoned(x.Modify) || poisoned(x.Return)
	case ast.EventAttach:
		return poisoned(x.Event) || poisoned(x.Target)
	case ast.EventDetach:
		return poisoned(x.Event) || poisoned(x.Target)
	case ast.EventTrigger:
		return poisoned(x.Event) || poisoned(x.Target)
	case ast.SetStyle:
		return poisoned(x.Prop) || poisoned(x.Target) || poisoned(x.Value)
	case ast.GetStyle:
		return poisoned(x.Prop) || poisoned(x.Target)
	case ast.FTContains:
		return poisoned(x.X)
	default:
		return true
	}
}

// unitCompiler compiles one unit: it owns the lexical scope stack, the
// slot watermark and the hoist-slot counter.
type unitCompiler struct {
	mc       *moduleCompiler
	scope    []scopeBinding
	maxSlots int
	nHoist   int
}

func (u *unitCompiler) push(name dom.QName) int {
	slot := len(u.scope)
	u.scope = append(u.scope, scopeBinding{name: name, slot: slot})
	if slot+1 > u.maxSlots {
		u.maxSlots = slot + 1
	}
	return slot
}

func (u *unitCompiler) popTo(mark int) { u.scope = u.scope[:mark] }

func (u *unitCompiler) lookup(name dom.QName) (int, bool) {
	for i := len(u.scope) - 1; i >= 0; i-- {
		if u.scope[i].name.Matches(name) {
			return u.scope[i].slot, true
		}
	}
	return -1, false
}

func (u *unitCompiler) snapshot() []scopeBinding {
	return append([]scopeBinding(nil), u.scope...)
}

// bridge compiles e as a walker delegation with the current scope
// snapshot. The walker does its own budget and profiler accounting.
func (u *unitCompiler) bridge(e ast.Expr) Closure {
	scope := u.snapshot()
	return func(c *Ctx) (xdm.Sequence, error) {
		return c.rctx(scope).Eval(e)
	}
}

// bridgeEBV is the EBV form of a bridge, preserving the walker's
// streaming EBV (at most two items pulled, lazy error visibility).
func (u *unitCompiler) bridgeEBV(e ast.Expr) ebvClosure {
	scope := u.snapshot()
	return func(c *Ctx) (bool, error) {
		return c.rctx(scope).EBV(e)
	}
}

// expr compiles e and wraps native closures with profiler accounting
// under the same kind names the walker uses, so profiles merge across
// backends (satisfying the Compiled column).
func (u *unitCompiler) expr(e ast.Expr) Closure {
	cl, kind := u.compile(e)
	if kind == "" {
		return cl
	}
	return func(c *Ctx) (xdm.Sequence, error) {
		if p := c.R.Profiler; p != nil {
			p.RecordCompiled(kind)
		}
		return cl(c)
	}
}

// atomOne derives the walker's evalAtomizedOne from a compiled
// operand.
func (u *unitCompiler) atomOne(e ast.Expr) itemClosure {
	inner := u.expr(e)
	return func(c *Ctx) (xdm.Item, error) {
		s, err := inner(c)
		if err != nil {
			return nil, err
		}
		return xdm.AtomizeSequence(s).AtMostOne()
	}
}

// compile lowers one node. kind is the profiler label for native
// closures and "" for bridges (the walker records those itself).
func (u *unitCompiler) compile(e ast.Expr) (Closure, string) {
	switch x := e.(type) {
	case ast.StringLit:
		val := xdm.Singleton(xdm.String(x.Val))
		return func(*Ctx) (xdm.Sequence, error) { return val, nil }, "StringLit"
	case ast.IntLit:
		val := xdm.Singleton(xdm.Integer(x.Val))
		return func(*Ctx) (xdm.Sequence, error) { return val, nil }, "IntLit"
	case ast.DoubleLit:
		val := xdm.Singleton(xdm.Double(x.Val))
		return func(*Ctx) (xdm.Sequence, error) { return val, nil }, "DoubleLit"
	case ast.DecimalLit:
		d, err := xdm.DecimalFromString(x.Val)
		if err != nil {
			return func(*Ctx) (xdm.Sequence, error) { return nil, err }, "DecimalLit"
		}
		val := xdm.Singleton(d)
		return func(*Ctx) (xdm.Sequence, error) { return val, nil }, "DecimalLit"
	case ast.VarRef:
		if slot, ok := u.lookup(x.Name); ok {
			return func(c *Ctx) (xdm.Sequence, error) { return c.frame[slot], nil }, "VarRef"
		}
		// Globals and externally bound variables live in the walker
		// environment the unit context carries.
		name := x.Name
		return func(c *Ctx) (xdm.Sequence, error) {
			if v, ok := c.R.Var(name); ok {
				return v, nil
			}
			return nil, fmt.Errorf("xquery: undefined variable $%s", name)
		}, "VarRef"
	case ast.ContextItem:
		return func(c *Ctx) (xdm.Sequence, error) {
			if c.R.Item == nil {
				return nil, fmt.Errorf("xquery: context item is undefined")
			}
			return xdm.Singleton(c.R.Item), nil
		}, "ContextItem"
	case ast.SeqExpr:
		items := make([]Closure, len(x.Items))
		for i, it := range x.Items {
			items[i] = u.expr(it)
		}
		return func(c *Ctx) (xdm.Sequence, error) {
			var out xdm.Sequence
			for _, it := range items {
				s, err := it(c)
				if err != nil {
					return nil, err
				}
				out = append(out, s...)
			}
			return out, nil
		}, "SeqExpr"
	case ast.Ordered:
		inner := u.expr(x.X)
		return func(c *Ctx) (xdm.Sequence, error) { return inner(c) }, "Ordered"
	case ast.Hoisted:
		slot := u.nHoist
		u.nHoist++
		inner := u.expr(x.X)
		return func(c *Ctx) (xdm.Sequence, error) {
			if c.R.SnapshotApply != nil {
				// Sequential mode: updates apply between iterations, so
				// nothing is invariant. Evaluate every time.
				return inner(c)
			}
			cell := &c.hoist[slot]
			if cell.valid {
				return cell.seq, nil
			}
			s, err := inner(c)
			if err != nil {
				return nil, err
			}
			cell.valid, cell.seq = true, s
			return s, nil
		}, "Hoisted"
	case ast.If:
		cond := u.ebv(x.Cond)
		thenC := u.expr(x.Then)
		elseC := u.expr(x.Else)
		return func(c *Ctx) (xdm.Sequence, error) {
			b, err := cond(c)
			if err != nil {
				return nil, err
			}
			if b {
				return thenC(c)
			}
			return elseC(c)
		}, "If"
	case ast.FLWOR:
		return u.flwor(x), "FLWOR"
	case ast.Binary:
		switch x.Op {
		case "and", "or":
			l := u.ebv(x.L)
			r := u.ebv(x.R)
			isOr := x.Op == "or"
			return func(c *Ctx) (xdm.Sequence, error) {
				lb, err := l(c)
				if err != nil {
					return nil, err
				}
				if isOr && lb {
					return xdm.Singleton(xdm.Boolean(true)), nil
				}
				if !isOr && !lb {
					return xdm.Singleton(xdm.Boolean(false)), nil
				}
				rb, err := r(c)
				if err != nil {
					return nil, err
				}
				return xdm.Singleton(xdm.Boolean(rb)), nil
			}, "Binary"
		case "union", "intersect", "except":
			return u.bridge(e), ""
		default: // arithmetic
			l := u.atomOne(x.L)
			r := u.atomOne(x.R)
			op := x.Op
			return func(c *Ctx) (xdm.Sequence, error) {
				lv, err := l(c)
				if err != nil {
					return nil, err
				}
				rv, err := r(c)
				if err != nil {
					return nil, err
				}
				if lv == nil || rv == nil {
					return nil, nil
				}
				res, err := xdm.Arithmetic(op, lv, rv)
				if err != nil {
					return nil, err
				}
				return xdm.Singleton(res), nil
			}, "Binary"
		}
	case ast.Compare:
		return u.comparison(x)
	case ast.Range:
		l := u.atomOne(x.L)
		r := u.atomOne(x.R)
		return func(c *Ctx) (xdm.Sequence, error) {
			lv, err := l(c)
			if err != nil {
				return nil, err
			}
			rv, err := r(c)
			if err != nil {
				return nil, err
			}
			if lv == nil || rv == nil {
				return nil, nil
			}
			li, err := xdm.Cast(lv, xdm.TInteger)
			if err != nil {
				return nil, fmt.Errorf("xquery: range start: %w", err)
			}
			ri, err := xdm.Cast(rv, xdm.TInteger)
			if err != nil {
				return nil, fmt.Errorf("xquery: range end: %w", err)
			}
			lo, hi := int64(li.(xdm.Integer)), int64(ri.(xdm.Integer))
			if lo > hi {
				return nil, nil
			}
			if hi-lo >= 10_000_000 {
				return nil, fmt.Errorf("xquery: range %d to %d is too large", lo, hi)
			}
			out := make(xdm.Sequence, 0, hi-lo+1)
			for v := lo; v <= hi; v++ {
				out = append(out, xdm.Integer(v))
			}
			return out, nil
		}, "Range"
	case ast.FuncCall:
		return u.call(x)
	case ast.Path:
		// Bridged, but with the //-rewrite and step planning resolved
		// now: the walker's per-eval rewrite of the pre-rewritten steps
		// is an identity scan.
		steps := plan.RewriteDescendantSteps(x.Steps)
		return u.bridge(ast.Path{Absolute: x.Absolute, Steps: steps}), ""
	default:
		return u.bridge(e), ""
	}
}

// call compiles a static function call. Three shapes: a compiled user
// function gets a direct closure call with the walker's conversion and
// error contract; an Invoke-only built-in is called natively with
// eagerly compiled arguments; a streaming-capable built-in bridges so
// the walker's lazy-argument machinery keeps working.
func (u *unitCompiler) call(x ast.FuncCall) (Closure, string) {
	f := u.mc.prog.Reg.Lookup(x.Name, len(x.Args))
	if f == nil {
		name := x.Name
		n := len(x.Args)
		return func(*Ctx) (xdm.Sequence, error) {
			return nil, fmt.Errorf("%w %s/%d", runtime.ErrUnknownFunction, name, n)
		}, "FuncCall"
	}
	if cu := u.mc.units[f]; cu != nil {
		args := make([]Closure, len(x.Args))
		for i, a := range x.Args {
			args[i] = u.expr(a)
		}
		return func(c *Ctx) (xdm.Sequence, error) {
			if err := c.R.Budget.Step(); err != nil {
				return nil, err
			}
			argv := make([]xdm.Sequence, len(args))
			for i, a := range args {
				v, err := a(c)
				if err != nil {
					return nil, err
				}
				argv[i] = v
			}
			return callUnit(c, cu, argv)
		}, "FuncCall"
	}
	if f.Stream != nil {
		return u.bridge(x), ""
	}
	args := make([]Closure, len(x.Args))
	for i, a := range x.Args {
		args[i] = u.expr(a)
	}
	scope := u.snapshot()
	fn := f
	return func(c *Ctx) (xdm.Sequence, error) {
		if err := c.R.Budget.Step(); err != nil {
			return nil, err
		}
		argv := make([]xdm.Sequence, len(args))
		for i, a := range args {
			v, err := a(c)
			if err != nil {
				return nil, err
			}
			argv[i] = v
		}
		// Built-ins may read the focus or the environment (fn:position,
		// browser functions), so hand them the fully bound context.
		return fn.Invoke(c.rctx(scope), argv)
	}, "FuncCall"
}

// callUnit invokes a compiled user function: the same preamble,
// conversions and error wrapping as the walker's compiled Invoke, with
// the body running as a closure over a fresh frame.
func callUnit(c *Ctx, cu *unit, argv []xdm.Sequence) (xdm.Sequence, error) {
	calleeR, err := c.R.CalleeContext(cu.name)
	if err != nil {
		return nil, err
	}
	cc := &Ctx{R: calleeR, frame: make([]xdm.Sequence, cu.nSlots), hoist: make([]hoistCell, cu.nHoist)}
	for i, prm := range cu.params {
		v := argv[i]
		if prm.Type != nil {
			cv, err := runtime.ConvertValue(v, *prm.Type)
			if err != nil {
				return nil, fmt.Errorf("xquery: argument $%s of %s: %w", prm.Name.Local, cu.name, err)
			}
			v = cv
		}
		cc.frame[i] = v
	}
	res, err := cu.body(cc)
	if v, ok := calleeR.ExitValue(err); ok {
		res, err = v, nil
	}
	if runtime.IsLoopControl(err) {
		return nil, runtime.LoopControlInFunction(err, cu.name)
	}
	if err != nil {
		return nil, err
	}
	if cu.ret != nil {
		res, err = runtime.ConvertValue(res, *cu.ret)
		if err != nil {
			return nil, fmt.Errorf("xquery: result of %s: %w", cu.name, err)
		}
	}
	return res, nil
}

// comparison compiles value and general comparisons natively; node
// comparisons bridge.
func (u *unitCompiler) comparison(x ast.Compare) (Closure, string) {
	switch x.Kind {
	case ast.ValueComp:
		l := u.atomOne(x.L)
		r := u.atomOne(x.R)
		op := x.Op
		return func(c *Ctx) (xdm.Sequence, error) {
			lv, err := l(c)
			if err != nil {
				return nil, err
			}
			rv, err := r(c)
			if err != nil {
				return nil, err
			}
			if lv == nil || rv == nil {
				return nil, nil
			}
			ok, err := xdm.CompareValues(op, lv, rv)
			if err != nil {
				return nil, err
			}
			return xdm.Singleton(xdm.Boolean(ok)), nil
		}, "Compare"
	case ast.GeneralComp:
		// Mirror the walker exactly: eager both sides under NoStream
		// (left first); otherwise right eager, left streamed through
		// the walker's iterator so existential short-circuits keep
		// their lazy error visibility.
		lC := u.expr(x.L)
		rC := u.expr(x.R)
		scope := u.snapshot()
		lExpr := x.L
		op := x.Op
		return func(c *Ctx) (xdm.Sequence, error) {
			if c.R.NoStream {
				l, err := lC(c)
				if err != nil {
					return nil, err
				}
				r, err := rC(c)
				if err != nil {
					return nil, err
				}
				ok, err := xdm.GeneralCompare(op, l, r)
				if err != nil {
					return nil, err
				}
				return xdm.Singleton(xdm.Boolean(ok)), nil
			}
			r, err := rC(c)
			if err != nil {
				return nil, err
			}
			ok, err := xdm.GeneralCompareStream(op, c.rctx(scope).EvalIter(lExpr), r)
			if err != nil {
				return nil, err
			}
			return xdm.Singleton(xdm.Boolean(ok)), nil
		}, "Compare"
	default:
		return u.bridge(x), ""
	}
}

// ebv compiles the effective-boolean-value form of e. Only shapes
// whose walker EBV is equivalent to eager evaluation are computed
// natively; everything else — in particular sequence expressions,
// whose streaming EBV must not force items beyond the second — goes
// through the walker's streaming EBV.
func (u *unitCompiler) ebv(e ast.Expr) ebvClosure {
	switch x := e.(type) {
	case ast.Hoisted:
		slot := u.nHoist
		u.nHoist++
		inner := u.ebv(x.X)
		return func(c *Ctx) (bool, error) {
			if c.R.SnapshotApply != nil {
				return inner(c)
			}
			cell := &c.hoist[slot]
			if cell.valid {
				return cell.b, nil
			}
			b, err := inner(c)
			if err != nil {
				return false, err
			}
			cell.valid, cell.b = true, b
			return b, nil
		}
	case ast.Ordered:
		return u.ebv(x.X)
	case ast.If:
		cond := u.ebv(x.Cond)
		thenB := u.ebv(x.Then)
		elseB := u.ebv(x.Else)
		return func(c *Ctx) (bool, error) {
			b, err := cond(c)
			if err != nil {
				return false, err
			}
			if b {
				return thenB(c)
			}
			return elseB(c)
		}
	case ast.Binary:
		switch x.Op {
		case "and", "or":
			l := u.ebv(x.L)
			r := u.ebv(x.R)
			isOr := x.Op == "or"
			return func(c *Ctx) (bool, error) {
				lb, err := l(c)
				if err != nil {
					return false, err
				}
				if isOr && lb {
					return true, nil
				}
				if !isOr && !lb {
					return false, nil
				}
				return r(c)
			}
		case "union", "intersect", "except":
			return u.bridgeEBV(e)
		default:
			return u.eagerEBV(e)
		}
	case ast.Compare:
		if x.Kind == ast.NodeComp {
			return u.bridgeEBV(e)
		}
		return u.eagerEBV(e)
	case ast.StringLit, ast.IntLit, ast.DecimalLit, ast.DoubleLit,
		ast.VarRef, ast.ContextItem, ast.FLWOR, ast.Range:
		return u.eagerEBV(e)
	case ast.FuncCall:
		f := u.mc.prog.Reg.Lookup(x.Name, len(x.Args))
		if f != nil && f.Stream != nil && u.mc.units[f] == nil {
			return u.bridgeEBV(e)
		}
		return u.eagerEBV(e)
	default:
		return u.bridgeEBV(e)
	}
}

// eagerEBV evaluates natively and takes the EBV of the materialized
// sequence — only used for shapes where that matches the walker.
func (u *unitCompiler) eagerEBV(e ast.Expr) ebvClosure {
	inner := u.expr(e)
	return func(c *Ctx) (bool, error) {
		s, err := inner(c)
		if err != nil {
			return false, err
		}
		return xdm.EffectiveBooleanValue(s)
	}
}

// stringish reports whether an atom belongs to the string comparison
// class (untypedAtomic, string, anyURI): within it, both `eq` and `=`
// reduce to codepoint string equality, which is what the hash table
// buckets by. Anything else falls back to predicate evaluation.
func stringish(it xdm.Item) bool {
	switch it.Type() {
	case xdm.TUntypedAtomic, xdm.TString, xdm.TAnyURI:
		return true
	}
	return false
}
