package compile

import (
	"fmt"
	"sort"

	"repro/internal/xdm"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/runtime"
)

// cclause is one compiled FLWOR clause: the domain closure plus the
// frame slots its variables resolved to.
type cclause struct {
	isFor    bool
	slot     int
	posSlot  int // -1 when the clause has no positional variable
	typ      *xdm.SeqType
	varLocal string
	dom      Closure
}

// cjoin is the compiled form of an optimizer join annotation. The
// inner-key closures see the build clause's variable; the outer-key
// closures were compiled before it entered scope.
type cjoin struct {
	idx       int // clause index of the inner (build) side
	valueEq   bool
	outerLeft bool
	outerItem itemClosure // eq: outer probe key
	innerItem itemClosure // eq: build key
	outerSeq  Closure     // =: outer probe key sequence
	innerSeq  Closure     // =: build key sequence
	pred      ebvClosure  // original predicate, for the fallback path
}

// flwor compiles a FLWOR expression. For and let variables get frame
// slots; domains evaluate eagerly (the walker streams them, so the two
// backends can differ in how far a failing domain gets before its
// error surfaces — but never in the value produced). A join annotation
// turns the inner for clause into a lazily built hash table keyed by
// string value; keys outside the string comparison class fall back to
// per-tuple predicate evaluation, which is exactly the walker's plan.
func (u *unitCompiler) flwor(f ast.FLWOR) Closure {
	mark := len(u.scope)
	hoistLo := u.nHoist

	var jn *cjoin
	joinIdx := -1
	if f.Join != nil {
		joinIdx = f.Join.Clause
	}

	clauses := make([]cclause, len(f.Clauses))
	for i, cl := range f.Clauses {
		cc := cclause{isFor: cl.For, posSlot: -1, typ: cl.Type, varLocal: cl.Var.Local}
		cc.dom = u.expr(cl.In)
		if i == joinIdx {
			jp := f.Join
			jn = &cjoin{idx: i, valueEq: jp.ValueEq, outerLeft: jp.OuterLeft}
			// The outer key sees only earlier clause variables: compile
			// it before the build variable enters scope.
			if jp.ValueEq {
				jn.outerItem = u.atomOne(jp.OuterKey)
			} else {
				jn.outerSeq = u.expr(jp.OuterKey)
			}
		}
		cc.slot = u.push(cl.Var)
		if cl.For && !cl.PosVar.IsZero() {
			cc.posSlot = u.push(cl.PosVar)
		}
		if i == joinIdx {
			jp := f.Join
			if jp.ValueEq {
				jn.innerItem = u.atomOne(jp.InnerKey)
			} else {
				jn.innerSeq = u.expr(jp.InnerKey)
			}
			jn.pred = u.ebv(jp.Pred)
		}
		clauses[i] = cc
	}

	var whereC ebvClosure
	if f.Where != nil {
		whereC = u.ebv(f.Where)
	}
	ordered := len(f.OrderBy) > 0
	specs := f.OrderBy
	orderKeys := make([]itemClosure, len(f.OrderBy))
	for k, spec := range f.OrderBy {
		orderKeys[k] = u.atomOne(spec.Key)
	}
	retC := u.expr(f.Return)

	u.popTo(mark)
	hoistHi := u.nHoist

	return func(c *Ctx) (xdm.Sequence, error) {
		// A fresh entry invalidates the hoist memos of this FLWOR's
		// subtree: invariance holds within one entry, not across
		// entries (the hoisted expression may read outer variables).
		for i := hoistLo; i < hoistHi; i++ {
			c.hoist[i] = hoistCell{}
		}

		var out xdm.Sequence
		type tuple struct {
			frame []xdm.Sequence
			keys  []xdm.Item
		}
		var tuples []tuple

		// Hash-join state, built at the first arrival at the join
		// clause and living for one FLWOR entry.
		var (
			jReady    bool
			jFallback bool
			jDomain   xdm.Sequence
			jTable    map[string][]int
		)

		var rec func(i int) error

		bindFor := func(cl *cclause, item xdm.Item, pos int, i int) error {
			if err := c.R.Budget.Step(); err != nil {
				return err
			}
			one := xdm.Singleton(item)
			if cl.typ != nil {
				cv, err := runtime.ConvertValue(one, *cl.typ)
				if err != nil {
					return fmt.Errorf("xquery: for $%s: %w", cl.varLocal, err)
				}
				one = cv
			}
			c.frame[cl.slot] = one
			if cl.posSlot >= 0 {
				c.frame[cl.posSlot] = xdm.Singleton(xdm.Integer(pos))
			}
			return rec(i + 1)
		}

		// predLoop is the non-hash path: bind every build-side item and
		// gate on the original predicate, exactly as the walker does.
		predLoop := func(cl *cclause, seq xdm.Sequence, i int) error {
			for _, item := range seq {
				if err := c.R.Budget.Step(); err != nil {
					return err
				}
				c.frame[cl.slot] = xdm.Singleton(item)
				keep, err := jn.pred(c)
				if err != nil {
					return err
				}
				if !keep {
					continue
				}
				if err := rec(i + 1); err != nil {
					return err
				}
			}
			return nil
		}

		// buildJoin evaluates the build domain and its keys once. Key
		// evaluation interleaves with one outer-key evaluation so the
		// first error surfaced matches the walker's comparison order:
		// outerFirst when the walker would evaluate the probe side of
		// the first predicate instance first.
		buildJoin := func(cl *cclause) error {
			jReady = true
			outerFirst := jn.outerLeft
			if !jn.valueEq && !c.R.NoStream {
				// Streaming general comparison evaluates its right
				// operand eagerly first.
				outerFirst = !jn.outerLeft
			}
			seq, err := cl.dom(c)
			if err != nil {
				return err
			}
			jDomain = seq
			if len(seq) == 0 {
				// The predicate never runs on an empty build side, so
				// the walker never evaluates the outer key either.
				return nil
			}
			evalOuterOnce := func() error {
				if jn.valueEq {
					_, err := jn.outerItem(c)
					return err
				}
				_, err := jn.outerSeq(c)
				return err
			}
			if outerFirst {
				if err := evalOuterOnce(); err != nil {
					return err
				}
			}
			jTable = map[string][]int{}
			bucket := func(idx int, it xdm.Item) {
				k := it.String()
				b := jTable[k]
				if n := len(b); n > 0 && b[n-1] == idx {
					return // duplicate atom within one item's key
				}
				jTable[k] = append(b, idx)
			}
			for idx, item := range seq {
				if err := c.R.Budget.Step(); err != nil {
					return err
				}
				c.frame[cl.slot] = xdm.Singleton(item)
				if jn.valueEq {
					it, err := jn.innerItem(c)
					if err != nil {
						return err
					}
					switch {
					case it == nil:
						// empty key: eq never matches, no bucket
					case !stringish(it):
						jFallback = true
					default:
						bucket(idx, it)
					}
				} else {
					s, err := jn.innerSeq(c)
					if err != nil {
						return err
					}
					for _, a := range xdm.AtomizeSequence(s) {
						if !stringish(a) {
							jFallback = true
							break
						}
						bucket(idx, a)
					}
				}
				if idx == 0 && !outerFirst {
					if err := evalOuterOnce(); err != nil {
						return err
					}
				}
				if jFallback {
					jTable = nil
					return nil
				}
			}
			return nil
		}

		emitIdx := func(cl *cclause, idx int, i int) error {
			if err := c.R.Budget.Step(); err != nil {
				return err
			}
			c.frame[cl.slot] = xdm.Singleton(jDomain[idx])
			return rec(i + 1)
		}

		joinStep := func(cl *cclause, i int) error {
			if c.R.SnapshotApply != nil {
				// Sequential mode: updates may apply between
				// iterations, so nothing about the build side is
				// stable. Re-evaluate domain and predicate per tuple.
				seq, err := cl.dom(c)
				if err != nil {
					return err
				}
				return predLoop(cl, seq, i)
			}
			if !jReady {
				if err := buildJoin(cl); err != nil {
					return err
				}
			}
			if len(jDomain) == 0 {
				return nil
			}
			if jFallback {
				return predLoop(cl, jDomain, i)
			}
			if jn.valueEq {
				okey, err := jn.outerItem(c)
				if err != nil {
					return err
				}
				if okey == nil {
					return nil
				}
				if !stringish(okey) {
					// A probe key outside the string class compares by
					// value rules the table cannot answer; this tuple
					// walks the predicate instead.
					return predLoop(cl, jDomain, i)
				}
				for _, idx := range jTable[okey.String()] {
					if err := emitIdx(cl, idx, i); err != nil {
						return err
					}
				}
				return nil
			}
			oseq, err := jn.outerSeq(c)
			if err != nil {
				return err
			}
			atoms := xdm.AtomizeSequence(oseq)
			for _, a := range atoms {
				if !stringish(a) {
					return predLoop(cl, jDomain, i)
				}
			}
			var idxs []int
			seen := map[int]bool{}
			for _, a := range atoms {
				for _, idx := range jTable[a.String()] {
					if !seen[idx] {
						seen[idx] = true
						idxs = append(idxs, idx)
					}
				}
			}
			sort.Ints(idxs) // document (domain) order, not probe order
			for _, idx := range idxs {
				if err := emitIdx(cl, idx, i); err != nil {
					return err
				}
			}
			return nil
		}

		rec = func(i int) error {
			if i == len(clauses) {
				if whereC != nil {
					keep, err := whereC(c)
					if err != nil {
						return err
					}
					if !keep {
						return nil
					}
				}
				if ordered {
					t := tuple{frame: append([]xdm.Sequence(nil), c.frame...)}
					for _, kc := range orderKeys {
						k, err := kc(c)
						if err != nil {
							return err
						}
						t.keys = append(t.keys, k)
					}
					tuples = append(tuples, t)
					return nil
				}
				res, err := retC(c)
				if err != nil {
					return err
				}
				out = append(out, res...)
				return nil
			}
			cl := &clauses[i]
			if !cl.isFor {
				val, err := cl.dom(c)
				if err != nil {
					return err
				}
				if cl.typ != nil {
					if val, err = runtime.ConvertValue(val, *cl.typ); err != nil {
						return fmt.Errorf("xquery: let $%s: %w", cl.varLocal, err)
					}
				}
				c.frame[cl.slot] = val
				return rec(i + 1)
			}
			if jn != nil && i == jn.idx {
				return joinStep(cl, i)
			}
			seq, err := cl.dom(c)
			if err != nil {
				return err
			}
			for pos, item := range seq {
				if err := bindFor(cl, item, pos+1, i); err != nil {
					return err
				}
			}
			return nil
		}

		if err := rec(0); err != nil {
			return nil, err
		}
		if !ordered {
			return out, nil
		}

		var sortErr error
		sort.SliceStable(tuples, func(a, b int) bool {
			if sortErr != nil {
				return false
			}
			for k := range specs {
				cres, err := runtime.CompareOrderKeys(tuples[a].keys[k], tuples[b].keys[k], specs[k])
				if err != nil {
					sortErr = err
					return false
				}
				if cres != 0 {
					return cres < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
		for _, t := range tuples {
			copy(c.frame, t.frame)
			res, err := retC(c)
			if err != nil {
				return nil, err
			}
			out = append(out, res...)
		}
		return out, nil
	}
}
